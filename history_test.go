// Query-history facade tests: the durable trace store exercised through
// the public API exactly as an operator's tooling would use it.
package stethoscope_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"stethoscope"
)

func openHistoryDB(t *testing.T, dir string) *stethoscope.DB {
	t.Helper()
	db, err := stethoscope.Open(
		stethoscope.WithScaleFactor(0.005),
		stethoscope.WithSeed(42),
		stethoscope.WithHistory(dir),
	)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// TestHistoryRoundTrip pins the acceptance criterion: a query executed
// with WithHistory reopens via History.Get/Replay with an event stream
// identical to the live Result trace — including across a process
// "restart" (store reopen).
func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openHistoryDB(t, dir)
	res, err := db.Exec(context.Background(), figure1Query,
		stethoscope.ExecPartitions(4), stethoscope.ExecWorkers(2))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Stats.RunID == 0 {
		t.Fatal("Exec under WithHistory returned RunID 0")
	}
	h := db.History()
	if h == nil {
		t.Fatal("DB.History() = nil with history enabled")
	}

	verify := func(h *stethoscope.History, stage string) {
		t.Helper()
		run, err := h.Get(res.Stats.RunID)
		if err != nil {
			t.Fatalf("%s: Get: %v", stage, err)
		}
		if !reflect.DeepEqual(run.Events(), res.Events()) {
			t.Fatalf("%s: stored event stream differs from the live trace", stage)
		}
		if run.Info.SQL != figure1Query || run.Info.Partitions != 4 || run.Info.Workers != 2 ||
			!run.Info.Complete || run.Info.Rows != res.Rows() {
			t.Fatalf("%s: run info = %+v", stage, run.Info)
		}
		// Replay: the stored run opens as a full analysis session with a
		// complete trace ↔ plan mapping, working coloring and SVG.
		a, err := h.Replay(res.Stats.RunID)
		if err != nil {
			t.Fatalf("%s: Replay: %v", stage, err)
		}
		if !a.MappingComplete() {
			t.Fatalf("%s: replayed mapping incomplete: %s", stage, a.MappingSummary())
		}
		if a.TraceLen() != res.TraceLen() {
			t.Fatalf("%s: replayed trace %d events, want %d", stage, a.TraceLen(), res.TraceLen())
		}
		if svg, err := a.SVG(); err != nil || !strings.Contains(svg, "<svg") {
			t.Fatalf("%s: SVG render on historical trace: %v", stage, err)
		}
	}
	verify(h, "live DB")

	// The stored run also reopens through the generic offline path.
	run, err := h.Get(res.Stats.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := stethoscope.OpenOffline(run.Dot(), run.TraceText()); err != nil || !a.MappingComplete() {
		t.Fatalf("OpenOffline over stored artifacts: %v", err)
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// "Yesterday's" trace: reopen the store standalone.
	h2, err := stethoscope.OpenHistory(dir)
	if err != nil {
		t.Fatalf("OpenHistory: %v", err)
	}
	defer h2.Close()
	verify(h2, "reopened store")
}

// TestHistoryAggregation exercises Queries/TopN/Compare/rollups over a
// small recorded workload.
func TestHistoryAggregation(t *testing.T) {
	db := openHistoryDB(t, t.TempDir())
	defer db.Close()
	ctx := context.Background()
	queries := []string{
		figure1Query,
		"select l_orderkey from lineitem where l_quantity > 30",
		figure1Query,
	}
	var ids []uint64
	for _, q := range queries {
		res, err := db.Exec(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.Stats.RunID)
	}
	h := db.History()
	if got := h.Queries(0); len(got) != 3 || got[0].ID != ids[2] {
		t.Fatalf("Queries(0) = %+v", got)
	}
	if got := h.Queries(2); len(got) != 2 {
		t.Fatalf("Queries(2) returned %d runs", len(got))
	}
	if top := h.TopN(3); len(top) != 3 {
		t.Fatalf("TopN(3) returned %d runs", len(top))
	}
	// Cross-run diff of the two figure-1 executions (second was a plan
	// cache hit, same SQL).
	d, err := h.Compare(ids[0], ids[2])
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if d.A.ID != ids[0] || d.B.ID != ids[2] || len(d.Instrs) == 0 {
		t.Fatalf("diff = %+v", d)
	}
	// Different SQL must refuse.
	if _, err := h.Compare(ids[0], ids[1]); err == nil {
		t.Fatal("Compare across different SQL succeeded")
	}
	mods, err := h.ModuleRollup()
	if err != nil || len(mods) == 0 {
		t.Fatalf("ModuleRollup: %v (%d rows)", err, len(mods))
	}
	if _, err := h.Utilization(ids[0]); err != nil {
		t.Fatalf("Utilization: %v", err)
	}
}

// TestServerHistoryOverTCP covers the HISTORY protocol command: a
// remote client lists past runs, fetches one, and reopens it locally —
// with the trace identical to what the history store recorded.
func TestServerHistoryOverTCP(t *testing.T) {
	db := openHistoryDB(t, t.TempDir())
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := db.Serve(ctx, "hist-test", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	r, err := stethoscope.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer r.Close()
	if _, err := r.Query(figure1Query); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if _, err := r.Query(figure1Query); err != nil {
		t.Fatalf("Query: %v", err)
	}

	lines, err := r.HistoryList(0)
	if err != nil {
		t.Fatalf("HistoryList: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("HistoryList = %d lines, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "id=2") || !strings.Contains(lines[0], "complete=true") {
		t.Fatalf("HistoryList line = %q", lines[0])
	}
	if top, err := r.HistoryTop(1); err != nil || len(top) != 1 {
		t.Fatalf("HistoryTop: %v (%d lines)", err, len(top))
	}
	if diffLines, err := r.HistoryDiff(1, 2); err != nil || len(diffLines) == 0 ||
		!strings.Contains(diffLines[0], "elapsed_delta_us=") {
		t.Fatalf("HistoryDiff: %v %q", err, diffLines)
	}

	// Fetch a past run and reopen it locally.
	traceText, err := r.HistoryTrace(2)
	if err != nil {
		t.Fatalf("HistoryTrace: %v", err)
	}
	dotText, err := r.HistoryDot(2)
	if err != nil {
		t.Fatalf("HistoryDot: %v", err)
	}
	a, err := stethoscope.OpenOffline(dotText, traceText)
	if err != nil {
		t.Fatalf("OpenOffline over fetched run: %v", err)
	}
	if !a.MappingComplete() {
		t.Fatalf("fetched run mapping incomplete: %s", a.MappingSummary())
	}
	// The fetched trace matches the store's byte-for-byte.
	run, err := db.History().Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if traceText != run.TraceText() {
		t.Fatal("trace fetched over TCP differs from the stored trace")
	}
}

// TestStatsCountsBatchedEventsOncePerEvent is the regression test for
// the serving-counter audit: a server QUERY whose trace leaves as
// EVTB-coalesced datagrams must contribute its exact per-event count to
// DB.Stats().Events — not one count per datagram.
func TestStatsCountsBatchedEventsOncePerEvent(t *testing.T) {
	db := openHistoryDB(t, t.TempDir())
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := db.Serve(ctx, "audit-test", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	mon, err := stethoscope.Attach(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	defer mon.Close()
	r, err := stethoscope.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer r.Close()
	if err := r.TraceTo(mon.Addr()); err != nil {
		t.Fatalf("TraceTo: %v", err)
	}
	// 16 partitions make the trace far larger than one 64-event EVTB
	// batch, so per-datagram counting would be visibly wrong.
	if err := r.Configure(16, 1); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	before := db.Stats()
	if _, err := r.Query(figure1Query); err != nil {
		t.Fatalf("Query: %v", err)
	}
	after := db.Stats()

	runs := db.History().Queries(1)
	if len(runs) != 1 {
		t.Fatalf("history has %d runs", len(runs))
	}
	wantEvents := int64(2 * runs[0].Instructions)
	if wantEvents <= 64 {
		t.Fatalf("trace too small to distinguish batching: %d events", wantEvents)
	}
	gotEvents := after.Events - before.Events
	if gotEvents != wantEvents {
		t.Fatalf("Stats().Events grew by %d, want %d (2 per instruction, once per event)", gotEvents, wantEvents)
	}
	if after.Execs-before.Execs != 1 {
		t.Fatalf("Stats().Execs grew by %d, want 1", after.Execs-before.Execs)
	}
	// The stored run agrees with the counter.
	if int64(runs[0].Events) != wantEvents {
		t.Fatalf("history recorded %d events, want %d", runs[0].Events, wantEvents)
	}
}

// TestFilterDoesNotCorruptHistory pins the filter-scoping contract: a
// session's display FILTER narrows only its UDP trace view; the durable
// history record and the serving counters always see the full stream.
func TestFilterDoesNotCorruptHistory(t *testing.T) {
	db := openHistoryDB(t, t.TempDir())
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := db.Serve(ctx, "filter-test", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	mon, err := stethoscope.Attach(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	defer mon.Close()
	r, err := stethoscope.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer r.Close()
	if err := r.TraceTo(mon.Addr()); err != nil {
		t.Fatalf("TraceTo: %v", err)
	}
	// Narrow the UDP view to one module.
	if _, _, err := r.Command("FILTER modules=algebra"); err != nil {
		t.Fatalf("FILTER: %v", err)
	}
	before := db.Stats()
	if _, err := r.Query(figure1Query); err != nil {
		t.Fatalf("Query: %v", err)
	}
	runs := db.History().Queries(1)
	if len(runs) != 1 {
		t.Fatalf("history has %d runs", len(runs))
	}
	full := 2 * runs[0].Instructions
	// The durable record holds the complete trace...
	if runs[0].Events != full {
		t.Fatalf("history recorded %d events under a session filter, want the full %d", runs[0].Events, full)
	}
	// ...the counters count the complete trace...
	if got := db.Stats().Events - before.Events; got != int64(full) {
		t.Fatalf("Stats().Events grew by %d under a session filter, want %d", got, full)
	}
	// ...and the filter still narrowed the UDP stream itself.
	deadline := time.Now().Add(2 * time.Second)
	for {
		sources := mon.Sources()
		if len(sources) > 0 {
			if evs := mon.Events(sources[0]); len(evs) > 0 {
				if len(evs) >= full {
					t.Fatalf("UDP stream carried %d events, filter should have dropped some of %d", len(evs), full)
				}
				for _, e := range evs {
					if !strings.Contains(e.Stmt, "algebra.") {
						t.Fatalf("filtered stream leaked non-algebra event: %s", e.Stmt)
					}
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no filtered events arrived at the monitor")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
