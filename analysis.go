package stethoscope

import (
	"fmt"
	"io"
	"time"

	"stethoscope/internal/ascii"
	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/trace"
)

// ColorAlgo selects the execution-state coloring algorithm.
type ColorAlgo string

// The paper's coloring algorithms: pair-elision (§4.2.1, the online
// default), threshold (user-specified execution-time cutoff), and
// gradient (the §6 future-work ramp).
const (
	ColorPair      ColorAlgo = "pair"
	ColorThreshold ColorAlgo = "threshold"
	ColorGradient  ColorAlgo = "gradient"
)

// ParseColorAlgo parses a CLI spelling of a coloring algorithm.
func ParseColorAlgo(s string) (ColorAlgo, error) {
	switch ColorAlgo(s) {
	case ColorPair, ColorThreshold, ColorGradient:
		return ColorAlgo(s), nil
	}
	return ColorPair, fmt.Errorf("stethoscope: unknown coloring %q (have pair, threshold, gradient)", s)
}

// analyzeConfig collects the Analyze-time settings.
type analyzeConfig struct {
	algo        ColorAlgo
	thresholdUs int64
	dispatch    time.Duration
}

// AnalyzeOption configures Analyze, OpenOffline, Monitor.Analyze, and
// Analysis.Recolor.
type AnalyzeOption func(*analyzeConfig)

// WithColoring selects the coloring algorithm (default pair-elision).
func WithColoring(a ColorAlgo) AnalyzeOption { return func(c *analyzeConfig) { c.algo = a } }

// WithThreshold sets the threshold coloring's cutoff in microseconds
// (default 1000).
func WithThreshold(us int64) AnalyzeOption { return func(c *analyzeConfig) { c.thresholdUs = us } }

// WithDispatchDelay overrides the render queue's per-node dispatch
// latency; zero selects the paper's 150 ms ceiling.
func WithDispatchDelay(d time.Duration) AnalyzeOption {
	return func(c *analyzeConfig) { c.dispatch = d }
}

// Analysis is one visual-analysis window over a plan graph and its
// execution trace: the laid-out glyph space, the pc-to-node mapping, a
// coloring, and a replay controller.
type Analysis struct {
	traceView

	sess   *core.Session
	cfg    analyzeConfig
	colors Coloring
	legend []GradientStop
}

// Analyze opens the visual-analysis session for an executed query — the
// in-process equivalent of writing the dot + trace pair to disk and
// reopening it offline.
func Analyze(res *Result, opts ...AnalyzeOption) (*Analysis, error) {
	return newAnalysis(dot.Export(res.plan), res.store(), opts)
}

// OpenOffline opens a session from dot-file and trace-file content, the
// paper's offline workflow (§4.1).
func OpenOffline(dotText, traceText string, opts ...AnalyzeOption) (*Analysis, error) {
	g, err := dot.Parse(dotText)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: dot file: %w", err)
	}
	st, err := trace.LoadString(traceText)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: trace file: %w", err)
	}
	return newAnalysis(g, st, opts)
}

func newAnalysis(g *dot.Graph, st *trace.Store, opts []AnalyzeOption) (*Analysis, error) {
	cfg := analyzeConfig{algo: ColorPair, thresholdUs: 1000}
	for _, o := range opts {
		o(&cfg)
	}
	sess, err := core.NewSession(g, st, core.SessionOptions{DispatchDelay: cfg.dispatch})
	if err != nil {
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	a := &Analysis{traceView: traceView{tstore: st}, sess: sess, cfg: cfg}
	a.recolor()
	return a, nil
}

// recolor recomputes the coloring from the current configuration.
func (a *Analysis) recolor() {
	events := a.store().Events()
	switch a.cfg.algo {
	case ColorThreshold:
		a.colors = core.Threshold(events, a.cfg.thresholdUs)
		a.legend = nil
	case ColorGradient:
		a.colors, a.legend = core.Gradient(events)
	default:
		a.colors = core.PairElision(events)
		a.legend = nil
	}
}

// Recolor switches the coloring algorithm or threshold in place.
func (a *Analysis) Recolor(opts ...AnalyzeOption) {
	for _, o := range opts {
		o(&a.cfg)
	}
	a.recolor()
}

// Nodes returns the plan graph's node count.
func (a *Analysis) Nodes() int { return len(a.sess.Graph.Nodes) }

// Edges returns the plan graph's edge count.
func (a *Analysis) Edges() int { return len(a.sess.Graph.Edges) }

// Algo returns the active coloring algorithm.
func (a *Analysis) Algo() ColorAlgo { return a.cfg.algo }

// Coloring returns the active coloring (pc → color).
func (a *Analysis) Coloring() Coloring { return a.colors }

// GradientLegend returns the gradient coloring's legend, sorted by
// decreasing duration (nil unless the gradient algorithm is active).
func (a *Analysis) GradientLegend() []GradientStop { return a.legend }

// MappingComplete reports whether every traced pc mapped onto a graph
// node with a matching label.
func (a *Analysis) MappingComplete() bool { return a.sess.Mapping.Complete() }

// MappingSummary describes mapping defects ("" when complete).
func (a *Analysis) MappingSummary() string {
	if a.sess.Mapping.Complete() {
		return ""
	}
	return fmt.Sprintf("%d unmatched pcs, %d label mismatches",
		len(a.sess.Mapping.Unmatched), len(a.sess.Mapping.LabelMismatches))
}

// RenderGraph renders the plan graph with the active coloring — the
// display window.
func (a *Analysis) RenderGraph(o RenderOptions) string {
	return ascii.RenderGraph(a.sess.Graph, a.sess.Layout, a.colors.Fills(), o)
}

// RenderReplay renders the plan graph with the replay controller's
// current node states instead of the coloring.
func (a *Analysis) RenderReplay(o RenderOptions) string {
	return ascii.RenderGraph(a.sess.Graph, a.sess.Layout, a.sess.Fills(), o)
}

// SVG renders the colored display window as an SVG document. The glyph
// space is repainted from the active coloring alone, so colors from an
// earlier algorithm or replay state do not linger.
func (a *Analysis) SVG() (string, error) {
	for _, id := range a.sess.Space.NodeIDs() {
		a.sess.Space.SetNodeColor(id, "")
	}
	for pc, color := range a.colors {
		a.sess.Space.SetNodeColor(fmt.Sprintf("n%d", pc), string(color))
	}
	return a.sess.RenderSVG()
}

// Replay returns the trace replay controller (step, fast-forward,
// rewind, pause, seek).
func (a *Analysis) Replay() *Replay { return a.sess.Replay }

// FlushReplay drains the render queue up to the given time, completing
// pending dispatches after replay stepping.
func (a *Analysis) FlushReplay(now time.Time) { a.sess.Queue.Flush(now) }

// ColorBetween runs pair-elision over the trace window [from, to) — the
// "coloring between two instruction states" replay feature.
func (a *Analysis) ColorBetween(from, to int) (Coloring, error) {
	return a.sess.Replay.ColorBetween(from, to)
}

// NavigateTo animates the session camera to center on an instruction's
// node. viewW is the viewport width in pixels, durMs the transition
// time.
func (a *Analysis) NavigateTo(pc int, viewW, durMs float64) error {
	return a.sess.NavigateTo(pc, viewW, durMs)
}

// ReportOptions controls WriteReport.
type ReportOptions struct {
	// Render is the terminal geometry (zero value selects the default).
	Render RenderOptions
	// TopK bounds the costly-instruction list (default 10).
	TopK int
	// BirdsEyeBuckets sets the birds-eye cluster count (default 8).
	BirdsEyeBuckets int
}

// WriteReport writes the full analysis report: colored plan graph,
// costly instructions, multi-core utilization, birds-eye view, thread
// timeline, micro analysis, and any mapping warnings.
func (a *Analysis) WriteReport(w io.Writer, o ReportOptions) error {
	if o.Render.Width == 0 {
		o.Render.Width = DefaultRender().Width
	}
	if o.TopK == 0 {
		o.TopK = 10
	}
	if o.BirdsEyeBuckets == 0 {
		o.BirdsEyeBuckets = 8
	}
	_, err := fmt.Fprintf(w, "=== plan graph (%d nodes, %d edges; coloring: %s) ===\n%s",
		a.Nodes(), a.Edges(), a.cfg.algo, a.RenderGraph(o.Render))
	if err != nil {
		return err
	}
	sections := []struct {
		title string
		body  string
	}{
		{"costly instructions", RenderCostly(a.Costly(o.TopK), o.Render)},
		{"multi-core utilization", RenderUtilization(a.Utilization(), o.Render)},
		{"birds-eye view", RenderBirdsEye(a.BirdsEye(o.BirdsEyeBuckets), o.Render)},
		{"thread timeline", RenderGantt(a.ThreadTimeline(), o.Render)},
		{"micro analysis", a.MicroReport()},
	}
	for _, s := range sections {
		if _, err := fmt.Fprintf(w, "\n=== %s ===\n%s", s.title, s.body); err != nil {
			return err
		}
	}
	if !a.MappingComplete() {
		if _, err := fmt.Fprintf(w, "\nwarning: %s\n", a.MappingSummary()); err != nil {
			return err
		}
	}
	return nil
}
