package stethoscope

import (
	"context"
	"fmt"
	"time"

	"stethoscope/internal/core"
)

// EventSink receives the events of an online monitoring stream as they
// arrive. source is the streaming server's UDP address.
type EventSink interface {
	OnEvent(source string, e Event)
}

// EventSinkFunc adapts a function to the EventSink interface.
type EventSinkFunc func(source string, e Event)

// OnEvent implements EventSink.
func (f EventSinkFunc) OnEvent(source string, e Event) { f(source, e) }

// monitorConfig collects the Attach-time settings.
type monitorConfig struct {
	ringCap int
	sink    EventSink
}

// MonitorOption configures Attach.
type MonitorOption func(*monitorConfig)

// WithRingCapacity sets the per-server sampling buffer capacity the
// online coloring reads (default 1024).
func WithRingCapacity(n int) MonitorOption { return func(c *monitorConfig) { c.ringCap = n } }

// WithEventSink installs a sink receiving every accepted event — the tee
// that redirects the online stream into a trace file (§4.2).
func WithEventSink(s EventSink) MonitorOption { return func(c *monitorConfig) { c.sink = s } }

// Monitor is the online textual Stethoscope: a UDP listener that
// reassembles dot files and collects execution traces streamed by one or
// more servers (paper §3.2, §4.2).
type Monitor struct {
	ts *core.TextualStethoscope
}

// Attach binds the monitor's UDP listener ("127.0.0.1:0" picks a free
// port). Point servers at Addr with Remote.TraceTo. Canceling ctx shuts
// the listener down; streams received before cancellation stay readable.
func Attach(ctx context.Context, addr string, opts ...MonitorOption) (*Monitor, error) {
	cfg := monitorConfig{ringCap: 1024}
	for _, o := range opts {
		o(&cfg)
	}
	ts, err := core.StartTextualContext(ctx, addr, cfg.ringCap)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	m := &Monitor{ts: ts}
	if cfg.sink != nil {
		m.SetSink(cfg.sink)
	}
	return m, nil
}

// Addr returns the UDP address servers should stream to.
func (m *Monitor) Addr() string { return m.ts.Addr() }

// Close stops the listener.
func (m *Monitor) Close() error { return m.ts.Close() }

// SetSink installs (or, with nil, removes) the event observer. Safe to
// call while traffic flows.
func (m *Monitor) SetSink(s EventSink) {
	if s == nil {
		m.ts.SetOnEvent(nil)
		return
	}
	m.ts.SetOnEvent(s.OnEvent)
}

// Sources lists the streaming server addresses seen so far.
func (m *Monitor) Sources() []string { return m.ts.Servers() }

// SourceName returns the name a source announced ("" when unknown).
func (m *Monitor) SourceName(source string) string {
	ss, ok := m.ts.Server(source)
	if !ok {
		return ""
	}
	return ss.ServerName()
}

// SourceCounts reports how many dot lines and events arrived from a
// source.
func (m *Monitor) SourceCounts(source string) (dotLines, events int, ok bool) {
	ss, ok := m.ts.Server(source)
	if !ok {
		return 0, 0, false
	}
	dotLines, events = ss.Counts()
	return dotLines, events, true
}

// Events returns the accumulated trace of a source.
func (m *Monitor) Events(source string) []Event {
	ss, ok := m.ts.Server(source)
	if !ok {
		return nil
	}
	return ss.Events()
}

// LiveColoring runs the §4.2.1 pair-elision algorithm over a source's
// sampling buffer — the online coloring path.
func (m *Monitor) LiveColoring(source string) Coloring {
	ss, ok := m.ts.Server(source)
	if !ok {
		return Coloring{}
	}
	return ss.LiveColoring()
}

// complete reports whether a source has a parsed dot graph and at least
// one event.
func (m *Monitor) complete(source string) bool {
	ss, ok := m.ts.Server(source)
	if !ok {
		return false
	}
	if _, err := ss.Graph(); err != nil {
		return false
	}
	return len(ss.Events()) > 0
}

// WaitComplete blocks until some source has streamed a complete dot file
// plus at least one trace event, then waits a short settle period for
// stragglers and returns the source address. It fails when ctx expires
// before any complete stream arrives; a source found before cancellation
// wins and is returned (cancellation merely cuts the settle period
// short).
func (m *Monitor) WaitComplete(ctx context.Context) (string, error) {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		for _, source := range m.Sources() {
			if m.complete(source) {
				// Allow in-flight datagrams to drain before analysis.
				select {
				case <-time.After(100 * time.Millisecond):
				case <-ctx.Done():
				}
				return source, nil
			}
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("stethoscope: no complete stream received: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

// Analyze opens a visual-analysis session over a source's streamed dot
// file and trace — the online mode's analysis path.
func (m *Monitor) Analyze(source string, opts ...AnalyzeOption) (*Analysis, error) {
	ss, ok := m.ts.Server(source)
	if !ok {
		return nil, fmt.Errorf("stethoscope: unknown source %s", source)
	}
	g, err := ss.Graph()
	if err != nil {
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	return newAnalysis(g, ss.Store(), opts)
}
