package stethoscope

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"stethoscope/internal/server"
)

// Server is a running mserver front-end: the TCP command protocol
// (SET / TRACE / FILTER / EXPLAIN / ALGEBRA / DOT / QUERY / TABLES) over
// this database.
type Server struct {
	inner *server.Server
}

// Serve starts the TCP front-end on addr ("127.0.0.1:0" picks a free
// port). name is announced to clients. Canceling ctx (or calling Close)
// stops the listener and aborts in-flight query executions.
//
// The server shares the DB's engine, optimizer pipeline, compiled-plan
// cache, shared-work state, and (when enabled) query history: TCP
// sessions and in-process Exec callers serve from (and warm) the same
// plan state, identical concurrent statements single-flight against
// each other across both entry points (and reuse cached outcomes when
// the DB was opened WithResultCache), their executions land in the
// same durable trace store, and all of them count into DB.Stats. With
// history enabled the protocol additionally answers HISTORY
// LIST/TOP/INFO/TRACE/DOT/DIFF.
func (db *DB) Serve(ctx context.Context, name, addr string) (*Server, error) {
	cfg := server.Config{
		Engine:        db.eng,
		Cache:         db.cache,
		NoCache:       db.cache == nil,
		Pipeline:      &db.pipeline,
		PassSpec:      db.passSpec,
		OnQuery:       db.observeQuery,
		Registry:      db.reg,
		Shared:        db.shared,
		CompileFlight: db.planner.Flight,
	}
	if db.hist != nil {
		cfg.History = db.hist.st
	}
	srv := server.NewWithConfig(ctx, name, db.cat, cfg)
	if err := srv.Listen(addr); err != nil {
		srv.Close() // release the derived context
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	return &Server{inner: srv}, nil
}

// Addr returns the bound TCP address.
func (s *Server) Addr() string { return s.inner.Addr() }

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error { return s.inner.Close() }

// Remote is a client connection to an mserver.
type Remote struct {
	c *server.Client
}

// Dial connects to an mserver and consumes its greeting.
func Dial(addr string) (*Remote, error) {
	c, err := server.DialServer(addr)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	return &Remote{c: c}, nil
}

// Close terminates the connection politely.
func (r *Remote) Close() error { return r.c.Close() }

// Command sends one raw protocol line and returns the status line plus
// any multiline payload.
func (r *Remote) Command(line string) (status string, payload []string, err error) {
	return r.c.Command(line)
}

// TraceTo points the server's profiler stream at a monitor's UDP
// address (Monitor.Addr). The server sends each query's dot file before
// execution begins, then the event stream while it runs.
func (r *Remote) TraceTo(udpAddr string) error {
	_, _, err := r.c.Command("TRACE " + udpAddr)
	return err
}

// Configure sets the connection's mitosis partition and dataflow worker
// counts. Pass Auto for either to restore the server's default adaptive
// sizing (the protocol's "SET partitions auto" / "SET workers auto").
func (r *Remote) Configure(partitions, workers int) error {
	setting := func(name string, n int) string {
		if n == Auto {
			return fmt.Sprintf("SET %s auto", name)
		}
		return fmt.Sprintf("SET %s %d", name, n)
	}
	for _, cmd := range []string{setting("partitions", partitions), setting("workers", workers)} {
		if _, _, err := r.c.Command(cmd); err != nil {
			return err
		}
	}
	return nil
}

// Query executes SQL on the server and returns the result lines: a
// tab-separated header followed by the data rows.
func (r *Remote) Query(sql string) ([]string, error) {
	_, rows, err := r.c.Command("QUERY " + sql)
	return rows, err
}

// Explain returns the server's optimized MAL listing for a query.
func (r *Remote) Explain(sql string) (string, error) {
	_, lines, err := r.c.Command("EXPLAIN " + sql)
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// Tables lists the server's catalog tables.
func (r *Remote) Tables() ([]string, error) {
	_, lines, err := r.c.Command("TABLES")
	return lines, err
}

// Metrics fetches the server's metrics registry in the Prometheus text
// exposition format (the METRICS wire command) — the same payload the
// WithMetricsAddr HTTP endpoint serves.
func (r *Remote) Metrics() (string, error) {
	_, lines, err := r.c.Command("METRICS")
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// Progress fetches the live progress of the server's in-flight queries
// (the PROGRESS wire command), one k=v line per run: id, elapsed_us,
// fraction, instr_done/instr_total, rows_scanned/rows_total,
// morsels_done/morsels_total, sql. An idle server returns no lines.
func (r *Remote) Progress() ([]string, error) {
	_, lines, err := r.c.Command("PROGRESS")
	return lines, err
}

// Stats fetches the server's serving counters (the STATS wire command)
// parsed into a flat k=v map: the plan-cache figures plus the
// scheduler/morsel counters (engine_runs, engine_instructions,
// engine_steals, engine_parks, morsels_claimed, morsel_rows_scanned),
// the server-layer counters (sessions, commands, bytes_written), and
// the shared-work counters (sharedwork_led, sharedwork_attached,
// resultcache_hits/misses/len/invalidations).
func (r *Remote) Stats() (map[string]int64, error) {
	_, lines, err := r.c.Command("STATS")
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	for _, line := range lines {
		for _, field := range strings.Fields(line) {
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				continue
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				continue
			}
			out[k] = n
		}
	}
	return out, nil
}

// HistoryList returns the server's recorded runs, most recent first,
// one k=v line per run (id, start, elapsed_us, events, ..., sql).
// n <= 0 lists everything. Requires a server with history enabled.
func (r *Remote) HistoryList(n int) ([]string, error) {
	cmd := "HISTORY LIST"
	if n > 0 {
		cmd = fmt.Sprintf("HISTORY LIST %d", n)
	}
	_, lines, err := r.c.Command(cmd)
	return lines, err
}

// HistoryTop returns the server's n slowest completed runs, slowest
// first, in the HistoryList line format.
func (r *Remote) HistoryTop(n int) ([]string, error) {
	_, lines, err := r.c.Command(fmt.Sprintf("HISTORY TOP %d", n))
	return lines, err
}

// HistoryTrace fetches a recorded run's trace-file content. Pair it
// with HistoryDot to reopen the run locally via OpenOffline.
func (r *Remote) HistoryTrace(id uint64) (string, error) {
	_, lines, err := r.c.Command(fmt.Sprintf("HISTORY TRACE %d", id))
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// HistoryDot fetches a recorded run's plan dot text.
func (r *Remote) HistoryDot(id uint64) (string, error) {
	_, lines, err := r.c.Command(fmt.Sprintf("HISTORY DOT %d", id))
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// HistoryDiff compares two recorded runs of the same SQL on the
// server: a summary line (elapsed_delta_us, regression verdict)
// followed by per-module delta lines.
func (r *Remote) HistoryDiff(a, b uint64) ([]string, error) {
	_, lines, err := r.c.Command(fmt.Sprintf("HISTORY DIFF %d %d", a, b))
	return lines, err
}
