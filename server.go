package stethoscope

import (
	"context"
	"fmt"
	"strings"

	"stethoscope/internal/server"
)

// Server is a running mserver front-end: the TCP command protocol
// (SET / TRACE / FILTER / EXPLAIN / ALGEBRA / DOT / QUERY / TABLES) over
// this database.
type Server struct {
	inner *server.Server
}

// Serve starts the TCP front-end on addr ("127.0.0.1:0" picks a free
// port). name is announced to clients. Canceling ctx (or calling Close)
// stops the listener and aborts in-flight query executions.
//
// The server shares the DB's engine, optimizer pipeline, and compiled-
// plan cache: TCP sessions and in-process Exec callers serve from (and
// warm) the same plan state, and all of them may run concurrently.
func (db *DB) Serve(ctx context.Context, name, addr string) (*Server, error) {
	srv := server.NewWithConfig(ctx, name, db.cat, server.Config{
		Engine:   db.eng,
		Cache:    db.cache,
		NoCache:  db.cache == nil,
		Pipeline: &db.pipeline,
		PassSpec: db.passSpec,
	})
	if err := srv.Listen(addr); err != nil {
		srv.Close() // release the derived context
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	return &Server{inner: srv}, nil
}

// Addr returns the bound TCP address.
func (s *Server) Addr() string { return s.inner.Addr() }

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error { return s.inner.Close() }

// Remote is a client connection to an mserver.
type Remote struct {
	c *server.Client
}

// Dial connects to an mserver and consumes its greeting.
func Dial(addr string) (*Remote, error) {
	c, err := server.DialServer(addr)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	return &Remote{c: c}, nil
}

// Close terminates the connection politely.
func (r *Remote) Close() error { return r.c.Close() }

// Command sends one raw protocol line and returns the status line plus
// any multiline payload.
func (r *Remote) Command(line string) (status string, payload []string, err error) {
	return r.c.Command(line)
}

// TraceTo points the server's profiler stream at a monitor's UDP
// address (Monitor.Addr). The server sends each query's dot file before
// execution begins, then the event stream while it runs.
func (r *Remote) TraceTo(udpAddr string) error {
	_, _, err := r.c.Command("TRACE " + udpAddr)
	return err
}

// Configure sets the connection's mitosis partition and dataflow worker
// counts.
func (r *Remote) Configure(partitions, workers int) error {
	for _, cmd := range []string{
		fmt.Sprintf("SET partitions %d", partitions),
		fmt.Sprintf("SET workers %d", workers),
	} {
		if _, _, err := r.c.Command(cmd); err != nil {
			return err
		}
	}
	return nil
}

// Query executes SQL on the server and returns the result lines: a
// tab-separated header followed by the data rows.
func (r *Remote) Query(sql string) ([]string, error) {
	_, rows, err := r.c.Command("QUERY " + sql)
	return rows, err
}

// Explain returns the server's optimized MAL listing for a query.
func (r *Remote) Explain(sql string) (string, error) {
	_, lines, err := r.c.Command("EXPLAIN " + sql)
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// Tables lists the server's catalog tables.
func (r *Remote) Tables() ([]string, error) {
	_, lines, err := r.c.Command("TABLES")
	return lines, err
}
