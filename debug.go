package stethoscope

import (
	"bufio"
	"fmt"
	"io"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/engine"
	"stethoscope/internal/planner"
	"stethoscope/internal/server"
	"stethoscope/internal/sql"
)

// Debugger is the GDB-like MAL debugger (paper §2) — stepped sequential
// execution with breakpoints by pc or module and mid-run variable
// inspection. The plan is the raw compiler lowering, unoptimized, so
// every variable the SQL produced is inspectable.
type Debugger struct {
	d    *engine.Debugger
	size int
}

// DebugStep describes one executed (or stopped-at) instruction.
type DebugStep struct {
	PC   int
	Name string // "module.function"
}

// Debug compiles a query without optimization and opens a stepping
// session over it. Partition settings pass through the same
// normalization and Auto resolution as Exec and Explain.
func (db *DB) Debug(query string, opts ...ExecOption) (*Debugger, error) {
	ec := db.execConfig(opts)
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: parse: %w", err)
	}
	tree, err := algebra.Bind(stmt, db.cat)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: bind: %w", err)
	}
	partitions, _ := planner.ResolvePartitions(db.cat, ec.partitions, tree)
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: partitions})
	if err != nil {
		return nil, fmt.Errorf("stethoscope: compile: %w", err)
	}
	d, err := engine.NewDebugger(db.eng, plan, nil)
	if err != nil {
		return nil, fmt.Errorf("stethoscope: %w", err)
	}
	return &Debugger{d: d, size: len(plan.Instrs)}, nil
}

// PlanSize returns the instruction count of the debugged plan.
func (d *Debugger) PlanSize() int { return d.size }

// PC returns the program counter of the next instruction to execute.
func (d *Debugger) PC() int { return d.d.PC() }

// Done reports whether the plan has run to completion.
func (d *Debugger) Done() bool { return d.d.Done() }

// Listing renders the plan with a '=>' cursor and '*' breakpoint marks.
func (d *Debugger) Listing() string { return d.d.Listing() }

// Step executes the current instruction and advances. It returns nil
// when the plan had already finished.
func (d *Debugger) Step() (*DebugStep, error) {
	in, ok, err := d.d.Step()
	if !ok || in == nil {
		return nil, err
	}
	return &DebugStep{PC: in.PC, Name: in.Name()}, err
}

// Continue runs until the next breakpoint or the end of the plan. It
// returns the instruction it stopped before (nil at plan end).
func (d *Debugger) Continue() (*DebugStep, error) {
	in, err := d.d.Continue()
	if in == nil {
		return nil, err
	}
	return &DebugStep{PC: in.PC, Name: in.Name()}, err
}

// BreakAt sets a breakpoint on a program counter.
func (d *Debugger) BreakAt(pc int) error { return d.d.BreakAt(pc) }

// BreakModule breaks on every instruction of a MAL module ("algebra").
func (d *Debugger) BreakModule(module string) { d.d.BreakModule(module) }

// ClearBreakpoints removes all breakpoints.
func (d *Debugger) ClearBreakpoints() { d.d.ClearBreakpoints() }

// Inspect describes a variable's current value by display name ("X_3").
func (d *Debugger) Inspect(name string) (string, error) { return d.d.InspectByName(name) }

// WriteResult renders the exported result table after the plan
// completed. It reports false when the plan has not finished.
func (d *Debugger) WriteResult(w io.Writer) (bool, error) {
	res := d.d.Result()
	if res == nil {
		return false, nil
	}
	bw := bufio.NewWriter(w)
	server.WriteResult(bw, res)
	return true, bw.Flush()
}
