package engine

import (
	"fmt"

	"stethoscope/internal/mal"
	"stethoscope/internal/storage"
)

// registerKernels installs the MAL operator set. Names mirror MonetDB's
// modules: sql (catalog and results), algebra (selections, joins,
// projections), batcalc (elementwise math), group/aggr (grouping and
// aggregates), mat (mitosis slice/pack), and the admin modules.
func registerKernels(e *Engine) {
	e.Register("querylog", "define", kNop)
	//stetho:ignore kernelcoverage language.pass is part of the MAL surface for hand-written plans (Engine.RunMAL), not the SQL compiler
	e.Register("language", "pass", kNop)
	e.Register("sql", "mvc", func(ctx *Context, in *mal.Instr) error {
		ctx.setVal(in, 0, mal.Int64(0))
		return nil
	})
	e.Register("sql", "bind", kBind)
	e.Register("sql", "resultSet", kResultSet)
	e.Register("sql", "rsColumn", kRsColumn)
	e.Register("sql", "exportResult", kExportResult)

	e.Register("mat", "slice", kMatSlice)
	e.Register("mat", "pack", kMatPack)
	e.Register("mat", "kmerge", kKMerge)
	e.Register("mat", "morsel", kMorsel)
	//stetho:ignore kernelcoverage bat.mirror serves hand-written MAL plans and tests; the SQL compiler has no use for it yet
	e.Register("bat", "mirror", kMirror)

	e.Register("algebra", "thetaselect", kThetaSelect)
	e.Register("algebra", "select", kRangeSelect)
	e.Register("algebra", "selectTrue", kSelectTrue)
	e.Register("algebra", "leftjoin", kLeftJoin)
	e.Register("algebra", "join", kJoin)
	e.Register("algebra", "hashbuild", kHashBuild)
	e.Register("algebra", "hashprobe", kHashProbe)
	e.Register("algebra", "sortTail", kSortTail)
	e.Register("algebra", "slice", kSlice)

	for name, op := range map[string]storage.ArithOp{
		"add": storage.Add, "sub": storage.Sub, "mul": storage.Mul, "div": storage.Div,
	} {
		e.Register("batcalc", name, makeArith(op))
	}
	for name, op := range map[string]storage.CmpOp{
		"eq": storage.EQ, "ne": storage.NE, "lt": storage.LT,
		"le": storage.LE, "gt": storage.GT, "ge": storage.GE,
	} {
		e.Register("batcalc", name, makeCompare(op))
	}
	e.Register("batcalc", "and", makeBoolCombine(true))
	e.Register("batcalc", "or", makeBoolCombine(false))
	e.Register("batcalc", "not", kNot)
	e.Register("batcalc", "between", kBetween)
	e.Register("batcalc", "const", kConstColumn)
	e.Register("batcalc", "like", kLike)

	e.Register("group", "subgroup", kSubgroup)
	for name, kind := range map[string]storage.AggrKind{
		"sum": storage.AggrSum, "count": storage.AggrCount,
		"min": storage.AggrMin, "max": storage.AggrMax, "avg": storage.AggrAvg,
	} {
		e.Register("aggr", name, makeGlobalAggr(kind))
		e.Register("aggr", "sub"+name, makeSubAggr(kind))
	}
	e.Register("aggr", "subcount", kSubCount)
}

func kNop(ctx *Context, in *mal.Instr) error { return nil }

func kBind(ctx *Context, in *mal.Instr) error {
	schema, err := ctx.str(in, 0)
	if err != nil {
		return err
	}
	table, err := ctx.str(in, 1)
	if err != nil {
		return err
	}
	column, err := ctx.str(in, 2)
	if err != nil {
		return err
	}
	b, err := ctx.eng.cat.Bind(schema, table, column)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, b)
	return nil
}

func kResultSet(ctx *Context, in *mal.Instr) error {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	ctx.results = append(ctx.results, &Result{})
	ctx.setVal(in, 0, mal.Int64(int64(len(ctx.results)-1)))
	return nil
}

func kRsColumn(ctx *Context, in *mal.Instr) error {
	handle, err := ctx.intArg(in, 0)
	if err != nil {
		return err
	}
	name, err := ctx.str(in, 1)
	if err != nil {
		return err
	}
	col, err := ctx.bat(in, 2)
	if err != nil {
		return err
	}
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if handle < 0 || int(handle) >= len(ctx.results) {
		return fmt.Errorf("bad result handle %d", handle)
	}
	rs := ctx.results[handle]
	rs.Names = append(rs.Names, name)
	rs.Cols = append(rs.Cols, col)
	return nil
}

func kExportResult(ctx *Context, in *mal.Instr) error {
	handle, err := ctx.intArg(in, 0)
	if err != nil {
		return err
	}
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if handle < 0 || int(handle) >= len(ctx.results) {
		return fmt.Errorf("bad result handle %d", handle)
	}
	ctx.final = ctx.results[handle]
	return nil
}

// kMatSlice implements mat.slice(col, p, k): horizontal partition p of k.
func kMatSlice(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	p, err := ctx.intArg(in, 1)
	if err != nil {
		return err
	}
	k, err := ctx.intArg(in, 2)
	if err != nil {
		return err
	}
	if k <= 0 || p < 0 || p >= k {
		return fmt.Errorf("bad partition %d of %d", p, k)
	}
	n := int64(b.Len())
	lo := p * n / k
	hi := (p + 1) * n / k
	ctx.setBAT(in, 0, b.Slice(int(lo), int(hi)))
	return nil
}

func kMatPack(ctx *Context, in *mal.Instr) error {
	if len(in.Args) == 0 {
		return fmt.Errorf("pack of nothing")
	}
	// Size the output once: packing 64 partitions into a buffer sized
	// for one would reallocate log-many times per pack on the hot path.
	total := 0
	for i := range in.Args {
		b, err := ctx.bat(in, i)
		if err != nil {
			return err
		}
		total += b.Len()
	}
	first, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	out := storage.New(first.Kind(), total)
	for i := range in.Args {
		b, err := ctx.bat(in, i)
		if err != nil {
			return err
		}
		if err := out.Append(b); err != nil {
			return err
		}
	}
	ctx.setBAT(in, 0, out)
	return nil
}

func kMirror(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, storage.MirrorOIDs(b.Len()))
	return nil
}

var cmpOps = map[string]storage.CmpOp{
	"=": storage.EQ, "!=": storage.NE, "<": storage.LT,
	"<=": storage.LE, ">": storage.GT, ">=": storage.GE,
}

// kThetaSelect handles both arities:
//
//	thetaselect(col, op, val)
//	thetaselect(col, cands, op, val)
func kThetaSelect(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	var cands *storage.BAT
	opIdx := 1
	if len(in.Args) == 4 {
		cands, err = ctx.bat(in, 1)
		if err != nil {
			return err
		}
		opIdx = 2
	}
	opStr, err := ctx.str(in, opIdx)
	if err != nil {
		return err
	}
	op, ok := cmpOps[opStr]
	if !ok {
		return fmt.Errorf("unknown comparison %q", opStr)
	}
	val, err := ctx.scalar(in, opIdx+1)
	if err != nil {
		return err
	}
	out, err := storage.ThetaSelect(b, op, val, cands)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

// kRangeSelect handles both arities:
//
//	select(col, lo, hi, loInc, hiInc)
//	select(col, cands, lo, hi, loInc, hiInc)
func kRangeSelect(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	var cands *storage.BAT
	base := 1
	if len(in.Args) == 6 {
		cands, err = ctx.bat(in, 1)
		if err != nil {
			return err
		}
		base = 2
	}
	lo, err := ctx.scalar(in, base)
	if err != nil {
		return err
	}
	hi, err := ctx.scalar(in, base+1)
	if err != nil {
		return err
	}
	loInc, err := ctx.boolArg(in, base+2)
	if err != nil {
		return err
	}
	hiInc, err := ctx.boolArg(in, base+3)
	if err != nil {
		return err
	}
	out, err := storage.RangeSelect(b, lo, hi, loInc, hiInc, cands)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

func kSelectTrue(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	out, err := storage.SelectTrue(b)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

func kLeftJoin(ctx *Context, in *mal.Instr) error {
	oids, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	col, err := ctx.bat(in, 1)
	if err != nil {
		return err
	}
	out, err := storage.Project(oids, col)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

func kJoin(ctx *Context, in *mal.Instr) error {
	l, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	r, err := ctx.bat(in, 1)
	if err != nil {
		return err
	}
	lo, ro, err := storage.HashJoin(l, r)
	if err != nil {
		return err
	}
	if len(in.Rets) != 2 {
		return fmt.Errorf("join needs two results, has %d", len(in.Rets))
	}
	ctx.setBAT(in, 0, lo)
	ctx.setBAT(in, 1, ro)
	return nil
}

// kHashBuild materializes the build side of a partitioned hash join:
// algebra.hashbuild(keycol) indexes the column once; every probe slice
// shares the handle (storage.JoinHash probes are read-only, so the
// dataflow scheduler may run them concurrently).
func kHashBuild(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	ctx.setVal(in, 0, mal.Value{Type: mal.THash, Col: storage.BuildJoinHash(b)})
	return nil
}

// kHashProbe implements algebra.hashprobe(probecol, hash): one mitosis
// slice of the probe side joined against the shared build handle,
// returning aligned probe/build oid pairs.
func kHashProbe(ctx *Context, in *mal.Instr) error {
	if len(in.Args) < 2 {
		return fmt.Errorf("hashprobe needs a hash argument")
	}
	if len(in.Rets) != 2 {
		return fmt.Errorf("hashprobe needs two results, has %d", len(in.Rets))
	}
	probe, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	h, ok := ctx.value(in.Args[1]).Col.(*storage.JoinHash)
	if !ok {
		return fmt.Errorf("hashprobe argument 1 is not a join hash")
	}
	lo, ro, err := h.Probe(probe)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, lo)
	ctx.setBAT(in, 1, ro)
	return nil
}

// kKMerge implements mat.kmerge, the sort-mitosis recombination: a
// stable k-way merge permutation over per-slice sorted runs. Argument
// layout: nkeys:int, then nkeys ascending:bit flags, then nkeys groups
// of k key columns (group j holds sort key j of every slice, slice
// order). The result indexes the mat.pack concatenation of the slices.
func kKMerge(ctx *Context, in *mal.Instr) error {
	nkeys64, err := ctx.intArg(in, 0)
	if err != nil {
		return err
	}
	nkeys := int(nkeys64)
	if nkeys < 1 {
		return fmt.Errorf("kmerge with %d keys", nkeys)
	}
	rest := len(in.Args) - 1 - nkeys
	if rest < nkeys || rest%nkeys != 0 {
		return fmt.Errorf("kmerge argument count %d does not fit %d keys", len(in.Args), nkeys)
	}
	k := rest / nkeys
	asc := make([]bool, nkeys)
	for j := 0; j < nkeys; j++ {
		if asc[j], err = ctx.boolArg(in, 1+j); err != nil {
			return err
		}
	}
	keys := make([][]*storage.BAT, nkeys)
	base := 1 + nkeys
	for j := 0; j < nkeys; j++ {
		keys[j] = make([]*storage.BAT, k)
		for s := 0; s < k; s++ {
			if keys[j][s], err = ctx.bat(in, base+j*k+s); err != nil {
				return err
			}
		}
	}
	perm, err := storage.MergeRuns(keys, asc)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, perm)
	return nil
}

func kSortTail(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	asc, err := ctx.boolArg(in, 1)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, storage.SortOrder(b, asc))
	return nil
}

func kSlice(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	lo, err := ctx.intArg(in, 1)
	if err != nil {
		return err
	}
	hi, err := ctx.intArg(in, 2)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, b.Slice(int(lo), int(hi)))
	return nil
}

// operandPair classifies (arg0, arg1) into BAT/BAT, BAT/scalar or
// scalar/BAT for the elementwise kernels.
func operandPair(ctx *Context, in *mal.Instr) (l, r *storage.BAT, sv storage.Val, flip, scalarCase bool, err error) {
	v0 := ctx.value(in.Args[0])
	v1 := ctx.value(in.Args[1])
	b0, ok0 := v0.Col.(*storage.BAT)
	b1, ok1 := v1.Col.(*storage.BAT)
	switch {
	case ok0 && ok1:
		return b0, b1, storage.Val{}, false, false, nil
	case ok0:
		sv, err = ctx.scalar(in, 1)
		return b0, nil, sv, false, true, err
	case ok1:
		sv, err = ctx.scalar(in, 0)
		return b1, nil, sv, true, true, err
	}
	return nil, nil, storage.Val{}, false, false, fmt.Errorf("no BAT operand")
}

func makeArith(op storage.ArithOp) Kernel {
	return func(ctx *Context, in *mal.Instr) error {
		l, r, sv, flip, scalar, err := operandPair(ctx, in)
		if err != nil {
			return err
		}
		var out *storage.BAT
		if scalar {
			out, err = storage.ArithScalar(op, l, sv, flip)
		} else {
			out, err = storage.Arith(op, l, r)
		}
		if err != nil {
			return err
		}
		ctx.setBAT(in, 0, out)
		return nil
	}
}

func makeCompare(op storage.CmpOp) Kernel {
	return func(ctx *Context, in *mal.Instr) error {
		l, r, sv, flip, scalar, err := operandPair(ctx, in)
		if err != nil {
			return err
		}
		var out *storage.BAT
		if scalar {
			out, err = storage.CompareScalar(op, l, sv, flip)
		} else {
			out, err = storage.Compare(op, l, r)
		}
		if err != nil {
			return err
		}
		ctx.setBAT(in, 0, out)
		return nil
	}
}

func makeBoolCombine(and bool) Kernel {
	return func(ctx *Context, in *mal.Instr) error {
		l, err := ctx.bat(in, 0)
		if err != nil {
			return err
		}
		r, err := ctx.bat(in, 1)
		if err != nil {
			return err
		}
		out, err := storage.BoolCombine(and, l, r)
		if err != nil {
			return err
		}
		ctx.setBAT(in, 0, out)
		return nil
	}
}

func kNot(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	out, err := storage.BoolNot(b)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

// kBetween computes col >= lo AND col <= hi; bounds may be scalars or
// aligned BATs.
func kBetween(ctx *Context, in *mal.Instr) error {
	col, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	cmpBound := func(i int, op storage.CmpOp) (*storage.BAT, error) {
		v := ctx.value(in.Args[i])
		if b, ok := v.Col.(*storage.BAT); ok {
			return storage.Compare(op, col, b)
		}
		sv, err := ctx.scalar(in, i)
		if err != nil {
			return nil, err
		}
		return storage.CompareScalar(op, col, sv, false)
	}
	ge, err := cmpBound(1, storage.GE)
	if err != nil {
		return err
	}
	le, err := cmpBound(2, storage.LE)
	if err != nil {
		return err
	}
	out, err := storage.BoolCombine(true, ge, le)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

// kConstColumn materializes a constant column aligned with a reference
// column: batcalc.const(val, ref).
func kConstColumn(ctx *Context, in *mal.Instr) error {
	ref, err := ctx.bat(in, 1)
	if err != nil {
		return err
	}
	v := ctx.value(in.Args[0])
	n := ref.Len()
	switch v.Type {
	case mal.TInt, mal.TDate, mal.TOID:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = v.Int
		}
		kind := storage.Int
		if v.Type == mal.TDate {
			kind = storage.Date
		} else if v.Type == mal.TOID {
			kind = storage.OID
		}
		ctx.setBAT(in, 0, storage.FromInts(kind, vals))
	case mal.TFlt:
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = v.Flt
		}
		ctx.setBAT(in, 0, storage.FromFloats(vals))
	case mal.TStr:
		vals := make([]string, n)
		for i := range vals {
			vals[i] = v.Str
		}
		ctx.setBAT(in, 0, storage.FromStrings(vals))
	case mal.TBool:
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = v.Bool
		}
		ctx.setBAT(in, 0, storage.FromBools(vals))
	default:
		return fmt.Errorf("const column of type %s", v.Type)
	}
	return nil
}

// kLike evaluates a SQL LIKE pattern elementwise: batcalc.like(col,
// "pattern").
func kLike(ctx *Context, in *mal.Instr) error {
	col, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	pattern, err := ctx.str(in, 1)
	if err != nil {
		return err
	}
	out, err := storage.LikeMatch(col, pattern)
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

// kSubgroup handles group.subgroup(col) and group.subgroup(col, prev).
func kSubgroup(ctx *Context, in *mal.Instr) error {
	b, err := ctx.bat(in, 0)
	if err != nil {
		return err
	}
	var prev *storage.BAT
	if len(in.Args) == 2 {
		prev, err = ctx.bat(in, 1)
		if err != nil {
			return err
		}
	}
	groups, extents, _, err := storage.Group(b, prev)
	if err != nil {
		return err
	}
	if len(in.Rets) != 2 {
		return fmt.Errorf("subgroup needs two results")
	}
	ctx.setBAT(in, 0, groups)
	ctx.setBAT(in, 1, extents)
	return nil
}

func makeSubAggr(kind storage.AggrKind) Kernel {
	return func(ctx *Context, in *mal.Instr) error {
		col, err := ctx.bat(in, 0)
		if err != nil {
			return err
		}
		groups, err := ctx.bat(in, 1)
		if err != nil {
			return err
		}
		extents, err := ctx.bat(in, 2)
		if err != nil {
			return err
		}
		out, err := storage.Aggr(kind, col, groups, extents.Len())
		if err != nil {
			return err
		}
		ctx.setBAT(in, 0, out)
		return nil
	}
}

// kSubCount handles both arities: subcount(groups, extents) for count(*)
// and subcount(col, groups, extents) for count(col) — the counted column
// is irrelevant to the row count, so both reduce to counting group ids.
func kSubCount(ctx *Context, in *mal.Instr) error {
	base := 0
	if len(in.Args) == 3 {
		base = 1
	}
	groups, err := ctx.bat(in, base)
	if err != nil {
		return err
	}
	extents, err := ctx.bat(in, base+1)
	if err != nil {
		return err
	}
	out, err := storage.Aggr(storage.AggrCount, groups, groups, extents.Len())
	if err != nil {
		return err
	}
	ctx.setBAT(in, 0, out)
	return nil
}

func makeGlobalAggr(kind storage.AggrKind) Kernel {
	return func(ctx *Context, in *mal.Instr) error {
		col, err := ctx.bat(in, 0)
		if err != nil {
			return err
		}
		out, err := storage.Aggr(kind, col, nil, 0)
		if err != nil {
			return err
		}
		ctx.setBAT(in, 0, out)
		return nil
	}
}
