package engine

import (
	"fmt"
	"testing"
)

// Join/sort mitosis sweeps: the build-once/probe-per-slice partitioned
// hash join and the per-slice-sort + mat.kmerge recombination must
// reproduce the sequential kernels exactly — joins and sorts never
// re-associate float math, so every comparison here is byte-identical
// (assertSameResult's float path tolerates nothing at tolerance scale
// for untouched values, and sameCell covers the rest).

// joinSortEdgeQueries covers the awkward shapes over the edge catalog:
// duplicate keys on both sides, an empty build side, an empty probe
// side, probe rows far below the partition count, join output consumed
// partition-wise (filters, aggregates, cascaded joins), multi-key and
// descending sorts, and ORDER BY ... LIMIT with the limit both below
// and above the slice count and row count.
var joinSortEdgeQueries = []string{
	// Joins: tiny (5 rows) probes, dim (4 rows, dup keys) builds.
	"select tiny.v, dim.name from tiny, dim where tiny.k = dim.k",
	"select tiny.v, dim.name from tiny, dim where tiny.k = dim.k and tiny.v > 2",
	"select tiny.v from tiny, nothing where tiny.k = nothing.k",            // empty build side
	"select nothing.v, dim.name from nothing, dim where nothing.k = dim.k", // empty probe side
	"select dim.name, count(*) as n, min(tiny.v) as mn from tiny, dim where tiny.k = dim.k group by dim.name",
	"select tiny.v, dim.name, d2.name from tiny, dim, dim d2 where tiny.k = dim.k and tiny.k = d2.k",
	// Sorts: 5-row and 0-row inputs at up to 64 slices.
	"select v from tiny order by v",
	"select v from tiny order by v desc",
	"select tag, v from tiny order by tag desc, v",
	"select k, tag from tiny order by k, tag desc",
	"select v from tiny where k <> 3 order by v desc",
	"select v * 2 + 1 from tiny order by v * 2 + 1",
	"select k from nothing order by k",
	// ORDER BY ... LIMIT: limit below/above rows and slice count.
	"select v from tiny order by v limit 2",
	"select v from tiny order by v desc limit 99",
	"select tag, v from tiny order by tag, v desc limit 3",
	"select k from nothing order by k limit 3",
	// Join + sort + limit combined.
	"select tiny.v, dim.name from tiny, dim where tiny.k = dim.k order by tiny.v desc, dim.name limit 3",
}

// TestJoinSortMitosisMorePartitionsThanRows slices the 5-row and 0-row
// tables into far more partitions than rows; every join/sort shape must
// agree with the sequential plan exactly.
func TestJoinSortMitosisMorePartitionsThanRows(t *testing.T) {
	for _, q := range joinSortEdgeQueries {
		base := runEdge(t, q, 1, 1)
		for _, parts := range []int{2, 5, 7, 16, 64} {
			got := runEdge(t, q, parts, 1)
			assertSameResult(t, fmt.Sprintf("%q parts=%d", q, parts), base, got)
		}
	}
}

// TestJoinSortMitosisParallelEqualitySweep runs the join/sort shapes
// across worker counts 1/4/8: sequential and dataflow execution of the
// same partitioned plan must agree cell for cell. Under -race (the
// Makefile race target) this doubles as the correctness sweep for
// concurrent probes against one shared JoinHash and concurrent
// per-slice sorts feeding one merge.
func TestJoinSortMitosisParallelEqualitySweep(t *testing.T) {
	for _, q := range joinSortEdgeQueries {
		base := runEdge(t, q, 1, 1)
		for _, parts := range []int{4, 16} {
			for _, workers := range []int{1, 4, 8} {
				got := runEdge(t, q, parts, workers)
				assertSameResult(t, fmt.Sprintf("%q parts=%d workers=%d", q, parts, workers), base, got)
			}
		}
	}
}

// TestJoinSortMitosisTPCHShapes sweeps realistic join/sort pipelines
// over the TPC-H test catalog: probe-side mitosis under a packed build
// (lineitem ⋈ orders), aggregation over partitioned join output, and
// top-k orderings.
func TestJoinSortMitosisTPCHShapes(t *testing.T) {
	queries := []string{
		"select count(*) as n from lineitem, orders where l_orderkey = o_orderkey",
		"select o_orderpriority, count(*) as n from lineitem, orders where l_orderkey = o_orderkey group by o_orderpriority order by o_orderpriority",
		"select l_orderkey, l_extendedprice from lineitem order by l_extendedprice desc, l_orderkey limit 10",
		"select l_returnflag, l_quantity from lineitem where l_quantity > 30 order by l_quantity desc, l_returnflag limit 25",
		"select l_orderkey, o_totalprice from lineitem, orders where l_orderkey = o_orderkey order by o_totalprice desc, l_orderkey limit 20",
	}
	for _, q := range queries {
		base := runQ(t, q, Options{Workers: 1}, 1)
		for _, parts := range []int{4, 8} {
			for _, workers := range []int{1, 4, 8} {
				got := runQ(t, q, Options{Workers: workers}, parts)
				assertSameResult(t, fmt.Sprintf("%q parts=%d workers=%d", q, parts, workers), base, got)
			}
		}
	}
}

// TestJoinSortMitosisByteIdentical pins the exactness claim directly:
// partitioned joins and sorts are bit-for-bit identical to sequential
// execution — floats included, since neither kernel re-associates
// arithmetic — at every partition/worker combination.
func TestJoinSortMitosisByteIdentical(t *testing.T) {
	queries := []string{
		"select l_orderkey, l_extendedprice from lineitem order by l_extendedprice desc, l_orderkey limit 10",
		"select l_orderkey, o_totalprice from lineitem, orders where l_orderkey = o_orderkey order by o_totalprice desc, l_orderkey limit 20",
		"select l_extendedprice from lineitem order by l_extendedprice",
	}
	for _, q := range queries {
		base := runQ(t, q, Options{Workers: 1}, 1)
		for _, parts := range []int{4, 16} {
			for _, workers := range []int{1, 4, 8} {
				got := runQ(t, q, Options{Workers: workers}, parts)
				label := fmt.Sprintf("%q parts=%d workers=%d", q, parts, workers)
				if got.Rows() != base.Rows() || len(got.Cols) != len(base.Cols) {
					t.Fatalf("%s: shape differs", label)
				}
				for c := range base.Cols {
					for i := 0; i < base.Rows(); i++ {
						if !sameCell(base.Cols[c], got.Cols[c], i) {
							t.Fatalf("%s: col %d row %d not byte-identical", label, c, i)
						}
					}
				}
			}
		}
	}
}

// TestMergeRunsKernelTies pins merge stability end to end through the
// engine: sorting a column with heavy duplicates must preserve the
// original order of equal keys (what a stable sequential sort does)
// regardless of partitioning.
func TestMergeRunsKernelTies(t *testing.T) {
	q := "select tag, v from tiny order by tag"
	base := runEdge(t, q, 1, 1)
	for _, parts := range []int{2, 3, 5} {
		got := runEdge(t, q, parts, 4)
		for c := range base.Cols {
			for i := 0; i < base.Rows(); i++ {
				if !sameCell(base.Cols[c], got.Cols[c], i) {
					t.Fatalf("parts=%d: tie order differs at col %d row %d", parts, c, i)
				}
			}
		}
	}
}

// sanity guard for the edge catalog shape the queries above rely on.
func TestEdgeCatalogJoinShape(t *testing.T) {
	dim, ok := edgeCat.Table("sys", "dim")
	if !ok || dim.Rows() != 4 {
		t.Fatalf("dim table missing or resized")
	}
}
