// Engine-level tests of the shared-scan registry (sharedscan.go): the
// attach/detach lifecycle, and the core correctness claim — a run that
// attaches mid-scan and claims its morsels in rotated order (with the
// wrap-around catch-up pass) produces byte-identical results to a
// sequential run, at every attach position and under concurrency.
package engine

import (
	"fmt"
	"sync"
	"testing"

	"stethoscope/internal/mal"
	"stethoscope/internal/metrics"
	"stethoscope/internal/storage"
)

func TestScanShareRegistryLifecycle(t *testing.T) {
	eng := New(testCat)
	b := storage.New(storage.Int, 0)
	k := scanKey{src: b, n: 100, morsel: 10}

	sh1, joined := eng.attachScan(k)
	if joined {
		t.Fatal("first attach reported an in-flight scan")
	}
	sh2, joined := eng.attachScan(k)
	if !joined || sh2 != sh1 {
		t.Fatal("second attach did not join the in-flight share")
	}
	if got := eng.activeScanShares(); got != 1 {
		t.Fatalf("active shares = %d, want 1", got)
	}
	// A different geometry over the same source is a different scan.
	other, joined := eng.attachScan(scanKey{src: b, n: 100, morsel: 20})
	if joined || other == sh1 {
		t.Fatal("different morsel size joined the same share")
	}
	eng.detachScan(scanKey{src: b, n: 100, morsel: 20}, other)

	eng.detachScan(k, sh1)
	if got := eng.activeScanShares(); got != 1 {
		t.Fatalf("share dropped while a participant remained: %d active", got)
	}
	eng.detachScan(k, sh2)
	if got := eng.activeScanShares(); got != 0 {
		t.Fatalf("registry not empty after last detach: %d active", got)
	}
	// After the last detach a new arrival leads a fresh cursor.
	sh3, joined := eng.attachScan(k)
	if joined || sh3 == sh1 {
		t.Fatal("stale share survived the last detach")
	}
	eng.detachScan(k, sh3)
}

// TestSharedScanAttachedRunMatchesSequential pins the byte-identity
// claim deterministically: a share is pre-registered over the scanned
// table at a chosen cursor position, so the run under test attaches and
// claims every morsel in rotated order — first the tail from the attach
// point, then the wrap-around catch-up pass — and its result must still
// equal the sequential run's, cell for cell.
func TestSharedScanAttachedRunMatchesSequential(t *testing.T) {
	queries := []string{
		"select l_orderkey, l_tax from lineitem where l_quantity > 10",
		"select l_returnflag, sum(l_quantity) as s, count(*) as n from lineitem where l_quantity > 10 group by l_returnflag order by l_returnflag",
	}
	tbl, ok := testCat.Table("sys", "lineitem")
	if !ok {
		t.Fatal("no lineitem")
	}
	n := tbl.Rows()
	const morsel = 64
	nM := (n + morsel - 1) / morsel
	if nM < 3 {
		t.Fatalf("test wants >= 3 morsels, have %d", nM)
	}
	for _, q := range queries {
		eng := New(testCat)
		reg := metrics.NewRegistry()
		eng.SetMetrics(reg)
		mplan := compileMorsel(t, q, 4)
		// Unshared baseline at the same geometry: rotation must not
		// change result bytes, so the attached runs below must match it
		// cell for cell.
		seq, err := eng.Run(mplan, Options{Workers: 1, MorselRows: morsel})
		if err != nil {
			t.Fatalf("%s: unshared baseline: %v", q, err)
		}
		for _, start := range []int{1, nM / 2, nM - 1} {
			// Pre-register an in-flight share over every lineitem column:
			// whichever column the fragment scans first, the run attaches
			// at position start.
			keys := make([]scanKey, 0, len(tbl.Columns))
			shares := make([]*scanShare, 0, len(tbl.Columns))
			for _, c := range tbl.Columns {
				b, err := tbl.ColumnData(c.Name)
				if err != nil {
					t.Fatal(err)
				}
				k := scanKey{src: b, n: n, morsel: morsel}
				sh, joined := eng.attachScan(k)
				if joined {
					t.Fatalf("column %s: share already in flight", c.Name)
				}
				sh.pos.Store(int64(start))
				keys = append(keys, k)
				shares = append(shares, sh)
			}
			before := reg.Snapshot().Value("stetho_engine_sharedscan_attached_total")
			res, err := eng.Run(mplan, Options{Workers: 4, MorselRows: morsel})
			if err != nil {
				t.Fatalf("%s: start=%d: %v", q, start, err)
			}
			if got := reg.Snapshot().Value("stetho_engine_sharedscan_attached_total"); got != before+1 {
				t.Fatalf("%s: start=%d: attached counter %d -> %d, want one attach", q, start, before, got)
			}
			// The attached run published its rotated claims into exactly
			// one share (its scan source); that share's hint moved off the
			// seeded position.
			moved := 0
			for _, sh := range shares {
				if sh.pos.Load() != int64(start) {
					moved++
				}
			}
			if moved != 1 {
				t.Fatalf("%s: start=%d: %d shares saw claims, want exactly 1", q, start, moved)
			}
			for i := range keys {
				eng.detachScan(keys[i], shares[i])
			}
			if res.Rows() != seq.Rows() {
				t.Fatalf("%s: start=%d: rows %d != %d", q, start, res.Rows(), seq.Rows())
			}
			for c := range seq.Cols {
				for i := 0; i < seq.Rows(); i++ {
					if !sameCell(res.Cols[c], seq.Cols[c], i) {
						t.Fatalf("%s: start=%d: col %d row %d differs (rotated claim order leaked into the combine)", q, start, c, i)
					}
				}
			}
		}
		if got := eng.activeScanShares(); got != 0 {
			t.Fatalf("%s: registry not drained: %d", q, got)
		}
	}
}

// TestSharedScanConcurrentEquality races several identical and
// overlapping morsel runs — whichever interleaving of leads and
// attaches the scheduler produces, every run's result must match its
// own sequential baseline.
func TestSharedScanConcurrentEquality(t *testing.T) {
	queries := []string{
		"select l_orderkey, l_tax from lineitem where l_quantity > 10",
		"select sum(l_extendedprice) as s from lineitem where l_quantity > 10",
	}
	eng := New(testCat)
	baselines := make([]*Result, len(queries))
	mplans := make([]*mal.Plan, len(queries))
	// The baseline runs the same plan at the same morsel geometry,
	// unshared (no concurrent run to attach to): partitions and morsel
	// size decide how float aggregates associate, worker count and
	// claim order must not.
	for i, q := range queries {
		mplans[i] = compileMorsel(t, q, 4)
		var err error
		baselines[i], err = eng.Run(mplans[i], Options{Workers: 1, MorselRows: 64})
		if err != nil {
			t.Fatal(err)
		}
	}
	const rounds, clients = 4, 8
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		start := make(chan struct{})
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			qi := c % len(queries)
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				<-start
				res, err := eng.Run(mplans[qi], Options{Workers: 2, MorselRows: 64})
				if err != nil {
					errs <- err
					return
				}
				want := baselines[qi]
				if res.Rows() != want.Rows() {
					errs <- fmt.Errorf("%s: rows %d != %d", queries[qi], res.Rows(), want.Rows())
					return
				}
				for ci := range want.Cols {
					for i := 0; i < want.Rows(); i++ {
						if !sameCell(res.Cols[ci], want.Cols[ci], i) {
							errs <- fmt.Errorf("%s: col %d row %d differs", queries[qi], ci, i)
							return
						}
					}
				}
			}(qi)
		}
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	if got := eng.activeScanShares(); got != 0 {
		t.Fatalf("registry not drained after rounds: %d", got)
	}
}
