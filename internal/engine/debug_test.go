package engine

import (
	"strings"
	"testing"

	"stethoscope/internal/profiler"
)

func newDbg(t *testing.T) *Debugger {
	t.Helper()
	eng := New(testCat)
	plan := compileQ(t, "select l_tax from lineitem where l_partkey=1", 1)
	d, err := NewDebugger(eng, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDebuggerStepThrough(t *testing.T) {
	d := newDbg(t)
	steps := 0
	for !d.Done() {
		in, ok, err := d.Step()
		if err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		if !ok || in == nil {
			t.Fatalf("step %d returned no instruction", steps)
		}
		if in.PC != steps {
			t.Fatalf("step %d executed pc=%d", steps, in.PC)
		}
		steps++
	}
	if steps == 0 {
		t.Fatal("no steps executed")
	}
	// Stepping past the end is a clean no-op.
	if _, ok, err := d.Step(); ok || err != nil {
		t.Errorf("step past end: ok=%v err=%v", ok, err)
	}
	res := d.Result()
	if res == nil || res.Rows() == 0 {
		t.Fatal("debugged run produced no result")
	}
}

func TestDebuggerBreakpoints(t *testing.T) {
	d := newDbg(t)
	if err := d.BreakAt(4); err != nil {
		t.Fatal(err)
	}
	stopped, err := d.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if stopped == nil || stopped.PC != 4 {
		t.Fatalf("stopped at %+v, want pc=4", stopped)
	}
	if d.PC() != 4 {
		t.Errorf("cursor at %d", d.PC())
	}
	// Continue again from the breakpoint runs to completion (only one
	// breakpoint).
	stopped, err = d.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if stopped != nil || !d.Done() {
		t.Fatalf("second continue stopped at %+v", stopped)
	}
	if err := d.BreakAt(999); err == nil {
		t.Error("out-of-range breakpoint accepted")
	}
}

func TestDebuggerModuleBreakpoints(t *testing.T) {
	d := newDbg(t)
	d.BreakModule("algebra")
	var stops []int
	for {
		stopped, err := d.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if stopped == nil {
			break
		}
		stops = append(stops, stopped.PC)
	}
	// The plan has one thetaselect and one leftjoin; Continue executes
	// the instruction under the cursor first, so both algebra ops after
	// the start produce stops.
	if len(stops) < 1 {
		t.Fatalf("no module breakpoint hits")
	}
	for _, pc := range stops {
		if d.plan.Instrs[pc].Module != "algebra" {
			t.Errorf("stopped at non-algebra pc=%d", pc)
		}
	}
	d.ClearBreakpoints()
}

func TestDebuggerInspect(t *testing.T) {
	d := newDbg(t)
	// Before execution, variables are unset.
	desc, err := d.Inspect(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "<unset>") {
		t.Errorf("pre-run inspect = %q", desc)
	}
	// Run the binds, then inspect a BAT variable.
	d.BreakModule("algebra")
	if _, err := d.Continue(); err != nil {
		t.Fatal(err)
	}
	found := false
	for id := range d.plan.Vars {
		desc, err := d.Inspect(id)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(desc, "BAT[int]") && strings.Contains(desc, "rows") {
			found = true
		}
	}
	if !found {
		t.Error("no bound BAT variable visible after binds")
	}
	if _, err := d.Inspect(-1); err == nil {
		t.Error("negative variable accepted")
	}
	if _, err := d.InspectByName("X_9999"); err == nil {
		t.Error("unknown name accepted")
	}
	if desc, err := d.InspectByName(d.plan.VarName(0)); err != nil || desc == "" {
		t.Errorf("InspectByName: %q, %v", desc, err)
	}
}

func TestDebuggerListing(t *testing.T) {
	d := newDbg(t)
	d.BreakAt(2)
	d.Step()
	listing := d.Listing()
	lines := strings.Split(strings.TrimSpace(listing), "\n")
	if len(lines) != len(d.plan.Instrs) {
		t.Fatalf("listing lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "=>") {
		t.Errorf("cursor not on line 1: %q", lines[1])
	}
	if !strings.Contains(lines[2], "*") {
		t.Errorf("breakpoint mark missing: %q", lines[2])
	}
}

func TestDebuggerEmitsProfilerEvents(t *testing.T) {
	eng := New(testCat)
	plan := compileQ(t, "select l_tax from lineitem where l_partkey=1", 1)
	sink := &profiler.SliceSink{}
	d, err := NewDebugger(eng, plan, profiler.New(sink))
	if err != nil {
		t.Fatal(err)
	}
	for !d.Done() {
		if _, _, err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sink.Events()); got != 2*len(plan.Instrs) {
		t.Errorf("debugger events = %d, want %d", got, 2*len(plan.Instrs))
	}
}

func TestDebuggerResultMatchesRun(t *testing.T) {
	eng := New(testCat)
	plan := compileQ(t, "select l_returnflag, count(*) from lineitem group by l_returnflag order by l_returnflag", 1)
	want, err := eng.Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDebugger(eng, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(); err != nil {
		t.Fatal(err)
	}
	got := d.Result()
	if got.Rows() != want.Rows() {
		t.Fatalf("debug rows %d != run rows %d", got.Rows(), want.Rows())
	}
	for i := 0; i < got.Rows(); i++ {
		if got.Cols[0].StrAt(i) != want.Cols[0].StrAt(i) || got.Cols[1].IntAt(i) != want.Cols[1].IntAt(i) {
			t.Fatalf("row %d differs", i)
		}
	}
}
