// Shared (cooperative) scans: the engine-level half of the shared-work
// serving story. A mat.morsel instruction over a table scan registers
// its cursor here; a second run that starts scanning the same source
// with the same geometry while the first is still in flight ATTACHES —
// it claims its own full set of morsels, but in rotated order starting
// from the in-flight cursor's current position. Both runs' workers then
// walk the same region of the table together (the attached run reads
// columns the leader just pulled through the cache instead of starting
// cold at row 0), and the attached run's wrap-around over the morsels
// it missed is the catch-up pass. This is the Crescando/DataPath
// cooperative-scan idea reduced to the morsel cursor.
//
// Correctness: attachment changes only the ORDER morsels are claimed
// in, never their extent — every run still executes all of its own
// morsels into results[m] indexed by absolute morsel number, and the
// combine stage packs in morsel order. Results are therefore
// byte-identical to an unshared run. The published position is a
// performance hint with no synchronization role: a stale read merely
// picks a slightly worse starting morsel.
package engine

import (
	"sync/atomic"

	"stethoscope/internal/storage"
)

// scanKey identifies one attachable scan: the identity of the leading
// source column plus the cursor geometry. Pointer identity is exact —
// catalog columns are stable across runs, while per-run intermediates
// are unique pointers, so two runs can only ever share a cursor over
// the same underlying table data. Geometry (row count, morsel size)
// must match for morsel indexes to align between runs.
type scanKey struct {
	src    *storage.BAT
	n      int
	morsel int
}

// scanShare is one in-flight attachable cursor. pos is the latest
// absolute morsel index any participating run claimed — the attach
// hint. refs counts participating runs (guarded by Engine.scanMu).
type scanShare struct {
	pos  atomic.Int64
	refs int
}

// attachScan joins or creates the share for key. It returns the share
// and whether an in-flight scan was already registered (attached=true
// means the caller should start claiming at the share's position).
func (e *Engine) attachScan(key scanKey) (sh *scanShare, attached bool) {
	e.scanMu.Lock()
	defer e.scanMu.Unlock()
	if sh, ok := e.scans[key]; ok {
		sh.refs++
		return sh, true
	}
	sh = &scanShare{}
	sh.refs = 1
	e.scans[key] = sh
	return sh, false
}

// detachScan releases one participant, dropping the share when the
// last one leaves — the registry only ever holds in-flight scans, so
// a run arriving after everything finished leads a fresh cursor.
func (e *Engine) detachScan(key scanKey, sh *scanShare) {
	e.scanMu.Lock()
	defer e.scanMu.Unlock()
	sh.refs--
	if sh.refs <= 0 {
		delete(e.scans, key)
	}
}

// activeScanShares reports the registry occupancy (the
// stetho_engine_sharedscan_active gauge and tests).
func (e *Engine) activeScanShares() int {
	e.scanMu.Lock()
	defer e.scanMu.Unlock()
	return len(e.scans)
}
