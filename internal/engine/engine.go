// Package engine implements the MAL interpreter of the reproduction — the
// Mserver execution core. It executes plans produced by internal/compiler
// over BATs from internal/storage, in two modes: sequential
// interpretation, and multi-core dataflow execution (a dependency-counting
// scheduler over a worker pool, MonetDB's language.dataflow). Every
// instruction execution is bracketed by profiler start/done events so
// Stethoscope can animate the run (paper §3.3).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stethoscope/internal/mal"
	"stethoscope/internal/metrics"
	"stethoscope/internal/profiler"
	"stethoscope/internal/storage"
)

// Result is the table a plan's sql.exportResult produces.
type Result struct {
	Names []string
	Cols  []*storage.BAT
}

// Rows returns the result row count.
func (r *Result) Rows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// Kernel implements one MAL module.function over the execution context.
type Kernel func(ctx *Context, in *mal.Instr) error

// Engine holds the catalog and the kernel registry. One Engine serves
// many concurrent queries; per-query state lives in Context.
//
// Reentrancy contract: Run/RunContext may be called concurrently from
// any number of goroutines. Per-run state (variable slots, result set)
// lives in a private Context; the catalog is read-only during execution
// and the kernel registry is lock-protected, so concurrent runs share
// no mutable state. The caller's obligations are: a *mal.Plan may be
// shared between concurrent runs (kernels never mutate plans) but must
// not be rewritten while any run uses it, and a profiler.Profiler
// instance must not be shared between concurrent runs (RunContext
// resets its clock and sequence numbering).
type Engine struct {
	cat *storage.Catalog

	regMu    sync.RWMutex
	registry map[string]Kernel

	// met holds the scheduler/morsel metric cells when a registry is
	// attached via SetMetrics; nil otherwise. The in-flight progress
	// table (progress.go) is always on.
	met      *engineMetrics
	progMu   sync.Mutex
	progSeq  int64
	inflight map[int64]*runProgress

	// scans is the shared-scan registry (sharedscan.go): in-flight
	// morsel cursors over table scans, keyed by source identity and
	// geometry so overlapping queries co-scan instead of each walking
	// the table cold.
	scanMu sync.Mutex
	scans  map[scanKey]*scanShare
}

// New returns an engine over the catalog with the full kernel set
// registered.
func New(cat *storage.Catalog) *Engine {
	e := &Engine{cat: cat, registry: map[string]Kernel{}, inflight: map[int64]*runProgress{},
		scans: map[scanKey]*scanShare{}}
	registerKernels(e)
	return e
}

// Catalog exposes the engine's catalog (the server's metadata commands
// use it).
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Register installs a kernel for "module.function". Later registrations
// override earlier ones, which tests use for fault injection. Safe to
// call while queries run, but each run resolves its kernels at start,
// so a swap only affects runs that begin after it.
func (e *Engine) Register(module, function string, k Kernel) {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	e.registry[module+"."+function] = k
}

// resolve maps every instruction to its kernel under one registry lock.
// Doing this once per run keeps the per-instruction hot path free of
// lock traffic and of the "module.function" string concatenation.
func (e *Engine) resolve(plan *mal.Plan) ([]Kernel, error) {
	kernels := make([]Kernel, len(plan.Instrs))
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	for i, in := range plan.Instrs {
		k, ok := e.registry[in.Name()]
		if !ok {
			return nil, fmt.Errorf("engine: unknown MAL operator %s at pc=%d", in.Name(), in.PC)
		}
		kernels[i] = k
	}
	return kernels, nil
}

// Options controls one plan execution.
type Options struct {
	// Workers is the dataflow parallelism; <= 1 selects sequential
	// interpretation (every instruction on thread 0). Morsel fragments
	// (mat.morsel) also fan out across this many pulling workers.
	Workers int
	// MorselRows is the morsel size mat.morsel instructions use; <= 0
	// selects DefaultMorselRows. Plans without fragments ignore it.
	MorselRows int
	// Emit, when set, receives result batches as the run produces them.
	// On a streamable plan (every result column computed by one
	// mat.morsel instruction) Emit is called once per non-empty morsel,
	// in morsel order, while the run is still executing; otherwise it
	// is called exactly once with the final result. The BATs passed are
	// owned by the run — consume or copy before returning. An Emit
	// error aborts the run.
	Emit func(names []string, cols []*storage.BAT) error
	// Profiler, when set, receives start/done events per instruction.
	Profiler *profiler.Profiler
	// Label identifies the run in the live progress table (typically
	// the SQL text). Empty labels are fine; the run still appears.
	Label string
}

// Context is the per-execution state: the variable slots, the kernels
// resolved for this run, and the result under construction.
type Context struct {
	Plan    *mal.Plan
	eng     *Engine
	kernels []Kernel // indexed by PC; resolved once per run
	vals    []mal.Value
	mu      sync.Mutex // guards results
	results []*Result
	final   *Result

	// Morsel execution state (see morsel.go): the run's context so
	// morsel workers observe cancellation between morsels, the
	// worker/morsel-size options, and — when a streaming sink is
	// attached — the emission plumbing resolved by streamInfo.
	cctx       context.Context
	workers    int
	morselRows int
	emit       func(names []string, cols []*storage.BAT) error
	streamPC   int
	emitNames  []string
	emitOrder  []int
	streamed   atomic.Bool

	// prog is the run's live progress entry; nil for contexts built
	// outside RunContext (the debugger), whose updates then no-op.
	prog *runProgress
}

// value returns the runtime value of an argument.
func (ctx *Context) value(a mal.Arg) mal.Value {
	if a.IsConst() {
		return a.Const
	}
	return ctx.vals[a.Var]
}

// bat extracts the BAT payload of argument i.
func (ctx *Context) bat(in *mal.Instr, i int) (*storage.BAT, error) {
	if i >= len(in.Args) {
		return nil, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	b, ok := v.Col.(*storage.BAT)
	if !ok {
		return nil, fmt.Errorf("engine: %s: argument %d is not a BAT (type %s)", in.Name(), i, v.Type)
	}
	return b, nil
}

// scalar extracts argument i as a storage comparison operand.
func (ctx *Context) scalar(in *mal.Instr, i int) (storage.Val, error) {
	if i >= len(in.Args) {
		return storage.Val{}, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	switch v.Type {
	case mal.TInt:
		return storage.IntVal(v.Int), nil
	case mal.TFlt:
		return storage.FltVal(v.Flt), nil
	case mal.TStr:
		return storage.StrVal(v.Str), nil
	case mal.TBool:
		return storage.BoolVal(v.Bool), nil
	case mal.TDate:
		return storage.DateVal(v.Int), nil
	case mal.TOID:
		return storage.OIDVal(v.Int), nil
	}
	return storage.Val{}, fmt.Errorf("engine: %s: argument %d is not a scalar", in.Name(), i)
}

// str extracts argument i as a string constant.
func (ctx *Context) str(in *mal.Instr, i int) (string, error) {
	if i >= len(in.Args) {
		return "", fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	if v.Type != mal.TStr {
		return "", fmt.Errorf("engine: %s: argument %d is not a string", in.Name(), i)
	}
	return v.Str, nil
}

// intArg extracts argument i as an int64.
func (ctx *Context) intArg(in *mal.Instr, i int) (int64, error) {
	if i >= len(in.Args) {
		return 0, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	if v.Type != mal.TInt && v.Type != mal.TOID && v.Type != mal.TDate {
		return 0, fmt.Errorf("engine: %s: argument %d is not an integer", in.Name(), i)
	}
	return v.Int, nil
}

// boolArg extracts argument i as a bool.
func (ctx *Context) boolArg(in *mal.Instr, i int) (bool, error) {
	if i >= len(in.Args) {
		return false, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	if v.Type != mal.TBool {
		return false, fmt.Errorf("engine: %s: argument %d is not a bool", in.Name(), i)
	}
	return v.Bool, nil
}

// setBAT stores a BAT result into return slot i.
func (ctx *Context) setBAT(in *mal.Instr, i int, b *storage.BAT) {
	t := ctx.Plan.VarType(in.Rets[i])
	ctx.vals[in.Rets[i]] = mal.Value{Type: t, Col: b}
}

// setVal stores a scalar result into return slot i.
func (ctx *Context) setVal(in *mal.Instr, i int, v mal.Value) {
	ctx.vals[in.Rets[i]] = v
}

// Run executes the plan and returns its exported result (nil for plans
// without sql.exportResult).
func (e *Engine) Run(plan *mal.Plan, opt Options) (*Result, error) {
	return e.RunContext(context.Background(), plan, opt)
}

// RunContext executes the plan under a context: cancellation or deadline
// expiry aborts the run between instructions (sequential mode) or stops
// the dataflow scheduler from dispatching further work, and the context
// error is returned.
func (e *Engine) RunContext(cctx context.Context, plan *mal.Plan, opt Options) (*Result, error) {
	if err := plan.ValidateCached(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := cctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	ctx, err := e.newContext(plan)
	if err != nil {
		return nil, err
	}
	ctx.cctx = cctx
	ctx.workers = opt.Workers
	ctx.morselRows = opt.MorselRows
	ctx.streamPC = -1
	e.met.runCounter().Inc()
	ctx.prog = e.beginProgress(opt.Label, len(plan.Instrs))
	defer e.endProgress(ctx.prog)
	if opt.Emit != nil {
		ctx.emit = opt.Emit
		ctx.streamPC, ctx.emitOrder, ctx.emitNames = streamInfo(plan)
	}
	if opt.Profiler != nil {
		opt.Profiler.Reset()
	}
	if opt.Workers <= 1 {
		err = e.runSequential(cctx, ctx, opt)
	} else {
		err = e.runDataflow(cctx, ctx, opt)
	}
	if err != nil {
		return nil, err
	}
	// Non-streamable plans (and plans without fragments) still serve a
	// streaming consumer: one batch, the final result.
	if opt.Emit != nil && !ctx.streamed.Load() && ctx.final != nil {
		if err := opt.Emit(ctx.final.Names, ctx.final.Cols); err != nil {
			return nil, fmt.Errorf("engine: emit: %w", err)
		}
	}
	return ctx.final, nil
}

// newContext builds the per-run state: fresh variable slots and the
// kernels resolved for every instruction.
func (e *Engine) newContext(plan *mal.Plan) (*Context, error) {
	kernels, err := e.resolve(plan)
	if err != nil {
		return nil, err
	}
	return &Context{Plan: plan, eng: e, kernels: kernels, vals: make([]mal.Value, len(plan.Vars))}, nil
}

// exec runs one instruction on the given logical thread, with profiling
// and metrics/progress accounting.
func (e *Engine) exec(ctx *Context, in *mal.Instr, thread int, prof *profiler.Profiler) error {
	k := ctx.kernels[in.PC]
	var span profiler.Span
	if prof != nil {
		span = prof.Begin(in.PC, thread, in.Module, ctx.Plan.CachedStmt(in))
	}
	em := e.met
	var t0 time.Time
	if em != nil {
		t0 = time.Now()
	}
	err := k(ctx, in)
	if em != nil {
		em.instrUs.Observe(time.Since(t0).Microseconds())
		em.instrs.Inc()
	}
	ctx.prog.instrFinished()
	if prof != nil {
		reads, writes, rss := ctx.accounting(in)
		span.End(rss, reads, writes)
	}
	if err != nil {
		return fmt.Errorf("engine: pc=%d %s: %w", in.PC, in.Name(), err)
	}
	return nil
}

// accounting estimates the profiler's reads/writes/rss fields from the
// instruction's BAT arguments and results.
func (ctx *Context) accounting(in *mal.Instr) (reads, writes, rssKB int64) {
	for _, a := range in.Args {
		if a.IsConst() {
			continue
		}
		if b, ok := ctx.vals[a.Var].Col.(*storage.BAT); ok {
			reads += int64(b.Len())
		}
	}
	for _, r := range in.Rets {
		if b, ok := ctx.vals[r].Col.(*storage.BAT); ok {
			writes += int64(b.Len())
			rssKB += b.FootprintBytes() / 1024
		}
	}
	return reads, writes, rssKB
}

func (e *Engine) runSequential(cctx context.Context, ctx *Context, opt Options) error {
	w0 := e.met.workerCounter(0)
	for _, in := range ctx.Plan.Instrs {
		if err := cctx.Err(); err != nil {
			return fmt.Errorf("engine: canceled at pc=%d: %w", in.PC, err)
		}
		if err := e.exec(ctx, in, 0, opt.Profiler); err != nil {
			return err
		}
		w0.Inc()
	}
	return nil
}

// deque is one worker's ready queue. The owner pushes and pops at the
// back (LIFO: freshly-unblocked instructions reuse the producer's warm
// cache lines); thieves steal from the front (FIFO: the oldest, most
// independent work migrates). Each deque has its own mutex, so the only
// contention is between one owner and an occasional thief — never
// all-workers-on-one-lock.
type deque struct {
	mu    sync.Mutex
	items []int
	hw    *metrics.Gauge // deque depth high-water; nil when metrics are off
}

func (d *deque) push(pc int) {
	d.mu.Lock()
	d.items = append(d.items, pc)
	d.hw.SetMax(int64(len(d.items)))
	d.mu.Unlock()
}

func (d *deque) pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return 0, false
	}
	pc := d.items[n-1]
	d.items = d.items[:n-1]
	return pc, true
}

func (d *deque) steal() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	pc := d.items[0]
	d.items = d.items[1:]
	return pc, true
}

// runDataflow executes the plan's dataflow DAG on opt.Workers goroutines
// using dependency counting: an instruction becomes ready when all its
// producers have finished. Side-effecting instructions additionally chain
// on the previous side-effecting instruction to preserve their order.
//
// Scheduling is built for low contention on wide mitosis plans: pending
// dependency counts are per-instruction atomics (a completion touches
// only its consumers, not a global lock), each worker owns a ready
// deque and steals from its peers when its own runs dry, and a buffered
// token channel — one token per enqueued instruction — is the only
// shared structure, parking idle workers without any lost-wakeup
// window. The run-outcome mutex is touched once per run end, never per
// instruction.
func (e *Engine) runDataflow(cctx context.Context, ctx *Context, opt Options) error {
	plan := ctx.Plan
	n := len(plan.Instrs)
	if n == 0 {
		return nil
	}
	// One dependency-graph walk per run: Uses() would recompute Deps()
	// internally, so transpose the edge list locally instead.
	deps := plan.Deps()
	uses := make([][]int, n)
	for pc, ds := range deps {
		for _, d := range ds {
			uses[d] = append(uses[d], pc)
		}
	}

	// Order-dependent instructions (result-set plumbing, logging) form a
	// chain so rsColumn calls append in plan order.
	pending := make([]atomic.Int32, n)
	lastEffect := -1
	for i, in := range plan.Instrs {
		count := len(deps[i])
		if isOrdered(in) {
			if lastEffect >= 0 {
				count++
				uses[lastEffect] = append(uses[lastEffect], i)
			}
			lastEffect = i
		}
		pending[i].Store(int32(count))
	}

	workers := opt.Workers
	if workers > n {
		workers = n
	}
	// Metric cells resolved once per run; all nil (and no-ops) when no
	// registry is attached.
	em := e.met
	var dequeHW *metrics.Gauge
	if em != nil {
		dequeHW = em.dequeHW
	}
	workerInstrs := make([]*metrics.Counter, workers)
	for w := range workerInstrs {
		workerInstrs[w] = em.workerCounter(w)
	}
	queues := make([]*deque, workers)
	for w := range queues {
		queues[w] = &deque{hw: dequeHW}
	}
	// sem counts enqueued-but-unclaimed instructions. Every push into a
	// deque is followed by exactly one token send; every claim consumes
	// exactly one token first. The channel holds at most n tokens, so
	// sends never block, and a worker that receives a token is
	// guaranteed an instruction exists in some deque.
	sem := make(chan struct{}, n)
	var (
		completed atomic.Int64
		mu        sync.Mutex // guards firstErr/finished at run end only
		firstErr  error
		finished  bool
		wg        sync.WaitGroup
		done      = make(chan struct{})
	)
	finish := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if finished {
			return
		}
		finished = true
		firstErr = err
		close(done)
	}

	// Seed the initial ready set round-robin so every worker starts with
	// local work.
	seeded := 0
	for i := range plan.Instrs {
		if pending[i].Load() == 0 {
			queues[seeded%workers].push(i)
			seeded++
		}
	}
	for i := 0; i < seeded; i++ {
		//stetho:ignore ctxselect sem has capacity n and holds one token per ready instruction; seeding can never block
		sem <- struct{}{}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			own := queues[worker]
			// claim takes one enqueued instruction after a token was
			// received: own deque first, then steal sweeps. The counting
			// invariant (tokens never exceed enqueued instructions)
			// makes the outer loop terminate — an instruction exists
			// somewhere, it can only be mid-flight between a peer's push
			// and our sweep.
			claim := func() (int, bool) {
				for {
					if pc, ok := own.pop(); ok {
						return pc, true
					}
					for i := 1; i < workers; i++ {
						if pc, ok := queues[(worker+i)%workers].steal(); ok {
							if em != nil {
								em.steals.Inc()
							}
							return pc, true
						}
					}
					select {
					case <-done:
						return 0, false
					default:
						runtime.Gosched()
					}
				}
			}
			for {
				// A park is a blocking wait for a token: the worker found
				// no runnable instruction and goes idle until a peer
				// completes one. Counted via a non-blocking first attempt.
				select {
				case <-sem:
				default:
					if em != nil {
						em.parks.Inc()
					}
					select {
					case <-done:
						return
					case <-cctx.Done():
						finish(fmt.Errorf("engine: canceled: %w", cctx.Err()))
						return
					case <-sem:
					}
				}
				pc, ok := claim()
				if !ok {
					return
				}
				// Re-check: the token may have won the race against
				// cancellation or a peer's failure. Workers must not
				// dispatch queued instructions past either point.
				select {
				case <-cctx.Done():
					finish(fmt.Errorf("engine: canceled: %w", cctx.Err()))
					return
				case <-done:
					return
				default:
				}
				if err := e.exec(ctx, plan.Instrs[pc], worker, opt.Profiler); err != nil {
					finish(err)
					return
				}
				workerInstrs[worker].Inc()
				for _, u := range uses[pc] {
					if pending[u].Add(-1) == 0 {
						own.push(u)
						//stetho:ignore ctxselect sem has capacity n and carries at most one token per instruction; the send cannot block
						sem <- struct{}{}
					}
				}
				if completed.Add(1) == int64(n) {
					finish(nil)
					return
				}
			}
		}(w)
	}
	<-done
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// isOrdered reports whether the instruction has side effects whose order
// matters (result-set construction).
func isOrdered(in *mal.Instr) bool {
	switch in.Name() {
	case "sql.resultSet", "sql.rsColumn", "sql.exportResult", "querylog.define":
		return true
	}
	return false
}
