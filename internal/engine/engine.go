// Package engine implements the MAL interpreter of the reproduction — the
// Mserver execution core. It executes plans produced by internal/compiler
// over BATs from internal/storage, in two modes: sequential
// interpretation, and multi-core dataflow execution (a dependency-counting
// scheduler over a worker pool, MonetDB's language.dataflow). Every
// instruction execution is bracketed by profiler start/done events so
// Stethoscope can animate the run (paper §3.3).
package engine

import (
	"context"
	"fmt"
	"sync"

	"stethoscope/internal/mal"
	"stethoscope/internal/profiler"
	"stethoscope/internal/storage"
)

// Result is the table a plan's sql.exportResult produces.
type Result struct {
	Names []string
	Cols  []*storage.BAT
}

// Rows returns the result row count.
func (r *Result) Rows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// Kernel implements one MAL module.function over the execution context.
type Kernel func(ctx *Context, in *mal.Instr) error

// Engine holds the catalog and the kernel registry. One Engine serves
// many concurrent queries; per-query state lives in Context.
//
// Reentrancy contract: Run/RunContext may be called concurrently from
// any number of goroutines. Per-run state (variable slots, result set)
// lives in a private Context; the catalog is read-only during execution
// and the kernel registry is lock-protected, so concurrent runs share
// no mutable state. The caller's obligations are: a *mal.Plan may be
// shared between concurrent runs (kernels never mutate plans) but must
// not be rewritten while any run uses it, and a profiler.Profiler
// instance must not be shared between concurrent runs (RunContext
// resets its clock and sequence numbering).
type Engine struct {
	cat *storage.Catalog

	regMu    sync.RWMutex
	registry map[string]Kernel
}

// New returns an engine over the catalog with the full kernel set
// registered.
func New(cat *storage.Catalog) *Engine {
	e := &Engine{cat: cat, registry: map[string]Kernel{}}
	registerKernels(e)
	return e
}

// Catalog exposes the engine's catalog (the server's metadata commands
// use it).
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Register installs a kernel for "module.function". Later registrations
// override earlier ones, which tests use for fault injection. Safe to
// call while queries run, but each run resolves its kernels at start,
// so a swap only affects runs that begin after it.
func (e *Engine) Register(module, function string, k Kernel) {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	e.registry[module+"."+function] = k
}

// resolve maps every instruction to its kernel under one registry lock.
// Doing this once per run keeps the per-instruction hot path free of
// lock traffic and of the "module.function" string concatenation.
func (e *Engine) resolve(plan *mal.Plan) ([]Kernel, error) {
	kernels := make([]Kernel, len(plan.Instrs))
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	for i, in := range plan.Instrs {
		k, ok := e.registry[in.Name()]
		if !ok {
			return nil, fmt.Errorf("engine: unknown MAL operator %s at pc=%d", in.Name(), in.PC)
		}
		kernels[i] = k
	}
	return kernels, nil
}

// Options controls one plan execution.
type Options struct {
	// Workers is the dataflow parallelism; <= 1 selects sequential
	// interpretation (every instruction on thread 0).
	Workers int
	// Profiler, when set, receives start/done events per instruction.
	Profiler *profiler.Profiler
}

// Context is the per-execution state: the variable slots, the kernels
// resolved for this run, and the result under construction.
type Context struct {
	Plan    *mal.Plan
	eng     *Engine
	kernels []Kernel // indexed by PC; resolved once per run
	vals    []mal.Value
	mu      sync.Mutex // guards results
	results []*Result
	final   *Result
}

// value returns the runtime value of an argument.
func (ctx *Context) value(a mal.Arg) mal.Value {
	if a.IsConst() {
		return a.Const
	}
	return ctx.vals[a.Var]
}

// bat extracts the BAT payload of argument i.
func (ctx *Context) bat(in *mal.Instr, i int) (*storage.BAT, error) {
	if i >= len(in.Args) {
		return nil, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	b, ok := v.Col.(*storage.BAT)
	if !ok {
		return nil, fmt.Errorf("engine: %s: argument %d is not a BAT (type %s)", in.Name(), i, v.Type)
	}
	return b, nil
}

// scalar extracts argument i as a storage comparison operand.
func (ctx *Context) scalar(in *mal.Instr, i int) (storage.Val, error) {
	if i >= len(in.Args) {
		return storage.Val{}, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	switch v.Type {
	case mal.TInt:
		return storage.IntVal(v.Int), nil
	case mal.TFlt:
		return storage.FltVal(v.Flt), nil
	case mal.TStr:
		return storage.StrVal(v.Str), nil
	case mal.TBool:
		return storage.BoolVal(v.Bool), nil
	case mal.TDate:
		return storage.DateVal(v.Int), nil
	case mal.TOID:
		return storage.OIDVal(v.Int), nil
	}
	return storage.Val{}, fmt.Errorf("engine: %s: argument %d is not a scalar", in.Name(), i)
}

// str extracts argument i as a string constant.
func (ctx *Context) str(in *mal.Instr, i int) (string, error) {
	if i >= len(in.Args) {
		return "", fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	if v.Type != mal.TStr {
		return "", fmt.Errorf("engine: %s: argument %d is not a string", in.Name(), i)
	}
	return v.Str, nil
}

// intArg extracts argument i as an int64.
func (ctx *Context) intArg(in *mal.Instr, i int) (int64, error) {
	if i >= len(in.Args) {
		return 0, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	if v.Type != mal.TInt && v.Type != mal.TOID && v.Type != mal.TDate {
		return 0, fmt.Errorf("engine: %s: argument %d is not an integer", in.Name(), i)
	}
	return v.Int, nil
}

// boolArg extracts argument i as a bool.
func (ctx *Context) boolArg(in *mal.Instr, i int) (bool, error) {
	if i >= len(in.Args) {
		return false, fmt.Errorf("engine: %s: missing argument %d", in.Name(), i)
	}
	v := ctx.value(in.Args[i])
	if v.Type != mal.TBool {
		return false, fmt.Errorf("engine: %s: argument %d is not a bool", in.Name(), i)
	}
	return v.Bool, nil
}

// setBAT stores a BAT result into return slot i.
func (ctx *Context) setBAT(in *mal.Instr, i int, b *storage.BAT) {
	t := ctx.Plan.VarType(in.Rets[i])
	ctx.vals[in.Rets[i]] = mal.Value{Type: t, Col: b}
}

// setVal stores a scalar result into return slot i.
func (ctx *Context) setVal(in *mal.Instr, i int, v mal.Value) {
	ctx.vals[in.Rets[i]] = v
}

// Run executes the plan and returns its exported result (nil for plans
// without sql.exportResult).
func (e *Engine) Run(plan *mal.Plan, opt Options) (*Result, error) {
	return e.RunContext(context.Background(), plan, opt)
}

// RunContext executes the plan under a context: cancellation or deadline
// expiry aborts the run between instructions (sequential mode) or stops
// the dataflow scheduler from dispatching further work, and the context
// error is returned.
func (e *Engine) RunContext(cctx context.Context, plan *mal.Plan, opt Options) (*Result, error) {
	if err := plan.ValidateCached(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := cctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	ctx, err := e.newContext(plan)
	if err != nil {
		return nil, err
	}
	if opt.Profiler != nil {
		opt.Profiler.Reset()
	}
	if opt.Workers <= 1 {
		err = e.runSequential(cctx, ctx, opt)
	} else {
		err = e.runDataflow(cctx, ctx, opt)
	}
	if err != nil {
		return nil, err
	}
	return ctx.final, nil
}

// newContext builds the per-run state: fresh variable slots and the
// kernels resolved for every instruction.
func (e *Engine) newContext(plan *mal.Plan) (*Context, error) {
	kernels, err := e.resolve(plan)
	if err != nil {
		return nil, err
	}
	return &Context{Plan: plan, eng: e, kernels: kernels, vals: make([]mal.Value, len(plan.Vars))}, nil
}

// exec runs one instruction on the given logical thread, with profiling.
func (e *Engine) exec(ctx *Context, in *mal.Instr, thread int, prof *profiler.Profiler) error {
	k := ctx.kernels[in.PC]
	var span profiler.Span
	if prof != nil {
		span = prof.Begin(in.PC, thread, in.Module, ctx.Plan.CachedStmt(in))
	}
	err := k(ctx, in)
	if prof != nil {
		reads, writes, rss := ctx.accounting(in)
		span.End(rss, reads, writes)
	}
	if err != nil {
		return fmt.Errorf("engine: pc=%d %s: %w", in.PC, in.Name(), err)
	}
	return nil
}

// accounting estimates the profiler's reads/writes/rss fields from the
// instruction's BAT arguments and results.
func (ctx *Context) accounting(in *mal.Instr) (reads, writes, rssKB int64) {
	for _, a := range in.Args {
		if a.IsConst() {
			continue
		}
		if b, ok := ctx.vals[a.Var].Col.(*storage.BAT); ok {
			reads += int64(b.Len())
		}
	}
	for _, r := range in.Rets {
		if b, ok := ctx.vals[r].Col.(*storage.BAT); ok {
			writes += int64(b.Len())
			rssKB += b.FootprintBytes() / 1024
		}
	}
	return reads, writes, rssKB
}

func (e *Engine) runSequential(cctx context.Context, ctx *Context, opt Options) error {
	for _, in := range ctx.Plan.Instrs {
		if err := cctx.Err(); err != nil {
			return fmt.Errorf("engine: canceled at pc=%d: %w", in.PC, err)
		}
		if err := e.exec(ctx, in, 0, opt.Profiler); err != nil {
			return err
		}
	}
	return nil
}

// runDataflow executes the plan's dataflow DAG on opt.Workers goroutines
// using dependency counting: an instruction becomes ready when all its
// producers have finished. Side-effecting instructions additionally chain
// on the previous side-effecting instruction to preserve their order.
func (e *Engine) runDataflow(cctx context.Context, ctx *Context, opt Options) error {
	plan := ctx.Plan
	n := len(plan.Instrs)
	if n == 0 {
		return nil
	}
	deps := plan.Deps()
	uses := plan.Uses()

	// Order-dependent instructions (result-set plumbing, logging) form a
	// chain so rsColumn calls append in plan order.
	pending := make([]int, n)
	lastEffect := -1
	for i, in := range plan.Instrs {
		pending[i] = len(deps[i])
		if isOrdered(in) {
			if lastEffect >= 0 {
				pending[i]++
				uses[lastEffect] = append(uses[lastEffect], i)
			}
			lastEffect = i
		}
	}

	ready := make(chan int, n)
	for i := range plan.Instrs {
		if pending[i] == 0 {
			ready <- i
		}
	}

	var (
		mu        sync.Mutex
		firstErr  error
		completed int
		finished  bool
		wg        sync.WaitGroup
		done      = make(chan struct{})
	)
	// finish records the run outcome exactly once; callers hold mu.
	finish := func(err error) {
		if finished {
			return
		}
		finished = true
		firstErr = err
		close(done)
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		finish(err)
	}
	complete := func(pc int, err error) {
		if err != nil {
			fail(err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if finished {
			return
		}
		completed++
		for _, u := range uses[pc] {
			pending[u]--
			if pending[u] == 0 {
				ready <- u
			}
		}
		if completed == len(plan.Instrs) {
			finish(nil)
		}
	}

	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// stopped reports whether the run is canceled or finished
			// (including failed), recording cancellation as the run
			// error. Workers must not dispatch queued instructions past
			// either point, and a select with several live cases picks
			// randomly — so every path funnels through this check.
			stopped := func() bool {
				select {
				case <-cctx.Done():
					fail(fmt.Errorf("engine: canceled: %w", cctx.Err()))
					return true
				case <-done:
					return true
				default:
					return false
				}
			}
			for {
				if stopped() {
					return
				}
				select {
				case pc := <-ready:
					// Re-check: ready may have won the race against
					// cancellation or completion.
					if stopped() {
						return
					}
					err := e.exec(ctx, plan.Instrs[pc], worker, opt.Profiler)
					complete(pc, err)
				case <-cctx.Done():
					// Handled by stopped() at the top of the loop.
				case <-done:
				}
			}
		}(w)
	}
	<-done
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// isOrdered reports whether the instruction has side effects whose order
// matters (result-set construction).
func isOrdered(in *mal.Instr) bool {
	switch in.Name() {
	case "sql.resultSet", "sql.rsColumn", "sql.exportResult", "querylog.define":
		return true
	}
	return false
}
