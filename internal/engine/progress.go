// Engine observability: the metric cells the scheduler and the morsel
// kernel feed, and the live per-run progress table — the paper's
// "watch the running query" idea applied to the morsel engine. Progress
// is fed by the morsel cursor (rows scanned / total driver rows,
// morsels done / total) and by instruction completion, all plain atomic
// adds on pre-registered cells, so leaving it on costs a few nanoseconds
// per instruction and per morsel.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stethoscope/internal/metrics"
)

// engineMetrics bundles the engine's hot-path metric cells. A nil
// *engineMetrics (no registry attached) costs one nil check per update
// site; individual cells are additionally nil-safe.
type engineMetrics struct {
	reg            *metrics.Registry
	runs           *metrics.Counter
	instrs         *metrics.Counter
	steals         *metrics.Counter
	parks          *metrics.Counter
	morselsClaimed *metrics.Counter
	morselRows     *metrics.Counter
	scanLeads      *metrics.Counter
	scanAttached   *metrics.Counter
	dequeHW        *metrics.Gauge
	instrUs        *metrics.Histogram

	mu      sync.Mutex
	workers []*metrics.Counter // per-worker instruction counters, grown on demand
}

// SetMetrics attaches (or with nil, detaches) a metrics registry. Call
// before serving queries; it is not synchronized against in-flight runs.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		e.met = nil
		return
	}
	em := &engineMetrics{
		reg:            reg,
		runs:           reg.Counter("stetho_engine_runs_total"),
		instrs:         reg.Counter("stetho_engine_instructions_total"),
		steals:         reg.Counter("stetho_engine_steals_total"),
		parks:          reg.Counter("stetho_engine_parks_total"),
		morselsClaimed: reg.Counter("stetho_engine_morsels_claimed_total"),
		morselRows:     reg.Counter("stetho_engine_morsel_rows_scanned_total"),
		scanLeads:      reg.Counter("stetho_engine_sharedscan_led_total"),
		scanAttached:   reg.Counter("stetho_engine_sharedscan_attached_total"),
		dequeHW:        reg.Gauge("stetho_engine_deque_depth_highwater"),
		instrUs:        reg.Histogram("stetho_engine_instr_duration_us", nil),
	}
	reg.GaugeFunc("stetho_engine_queries_inflight", func() int64 {
		e.progMu.Lock()
		defer e.progMu.Unlock()
		return int64(len(e.inflight))
	})
	reg.GaugeFunc("stetho_engine_sharedscan_active", func() int64 {
		return int64(e.activeScanShares())
	})
	e.met = em
}

// runCounter is the nil-safe accessor for the run counter (nil
// engineMetrics hands out a nil counter, whose Inc no-ops).
func (m *engineMetrics) runCounter() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.runs
}

// workerCounter returns the instruction counter for worker i, creating
// the labeled metric on first use. Called once per worker per run, off
// the per-instruction path.
func (m *engineMetrics) workerCounter(i int) *metrics.Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.workers) <= i {
		m.workers = append(m.workers,
			m.reg.Counter(fmt.Sprintf(`stetho_engine_worker_instructions_total{worker="%d"}`, len(m.workers))))
	}
	return m.workers[i]
}

// runProgress is the live state of one in-flight run. Counters only
// increase; totals are added when the work they cover is discovered
// (instruction total at run start, morsel/row totals when a mat.morsel
// instruction sizes its cursor), so done never exceeds the
// corresponding total.
type runProgress struct {
	id           int64
	label        string
	started      time.Time
	instrTotal   int64
	instrDone    atomic.Int64
	rowsTotal    atomic.Int64
	rowsScanned  atomic.Int64
	morselsTotal atomic.Int64
	morselsDone  atomic.Int64
}

func (p *runProgress) instrFinished() {
	if p != nil {
		p.instrDone.Add(1)
	}
}

// addMorselWork publishes a fragment's cursor dimensions when the
// mat.morsel instruction starts.
func (p *runProgress) addMorselWork(rows, morsels int64) {
	if p != nil {
		p.rowsTotal.Add(rows)
		p.morselsTotal.Add(morsels)
	}
}

// morselFinished records one claimed morsel's completion.
func (p *runProgress) morselFinished(rows int64) {
	if p != nil {
		p.rowsScanned.Add(rows)
		p.morselsDone.Add(1)
	}
}

// QueryProgress is a point-in-time view of one in-flight run. Row and
// morsel figures cover mat.morsel fragments (zero for plans without
// fragments); instruction figures cover the outer plan.
type QueryProgress struct {
	ID      int64
	Label   string
	Started time.Time
	Elapsed time.Duration

	InstrDone  int64
	InstrTotal int64

	RowsScanned int64
	RowsTotal   int64

	MorselsDone  int64
	MorselsTotal int64
}

// Fraction estimates completion in [0,1]: rows scanned over driver rows
// when the run has morsel work, otherwise instructions completed.
func (p QueryProgress) Fraction() float64 {
	if p.RowsTotal > 0 {
		f := float64(p.RowsScanned) / float64(p.RowsTotal)
		if f > 1 {
			f = 1
		}
		return f
	}
	if p.InstrTotal > 0 {
		return float64(p.InstrDone) / float64(p.InstrTotal)
	}
	return 0
}

// beginProgress registers a run in the in-flight table.
func (e *Engine) beginProgress(label string, instrTotal int) *runProgress {
	p := &runProgress{label: label, started: time.Now(), instrTotal: int64(instrTotal)}
	e.progMu.Lock()
	e.progSeq++
	p.id = e.progSeq
	e.inflight[p.id] = p
	e.progMu.Unlock()
	return p
}

func (e *Engine) endProgress(p *runProgress) {
	e.progMu.Lock()
	delete(e.inflight, p.id)
	e.progMu.Unlock()
}

// Progress snapshots every in-flight run, ordered by start (run id).
// Counts are read atomically per field; a snapshot taken mid-run may be
// a few updates behind but each counter is monotonically non-decreasing
// across snapshots of the same run.
func (e *Engine) Progress() []QueryProgress {
	e.progMu.Lock()
	runs := make([]*runProgress, 0, len(e.inflight))
	for _, p := range e.inflight {
		runs = append(runs, p)
	}
	e.progMu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })
	out := make([]QueryProgress, 0, len(runs))
	now := time.Now()
	for _, p := range runs {
		out = append(out, QueryProgress{
			ID:           p.id,
			Label:        p.label,
			Started:      p.started,
			Elapsed:      now.Sub(p.started),
			InstrDone:    p.instrDone.Load(),
			InstrTotal:   p.instrTotal,
			RowsScanned:  p.rowsScanned.Load(),
			RowsTotal:    p.rowsTotal.Load(),
			MorselsDone:  p.morselsDone.Load(),
			MorselsTotal: p.morselsTotal.Load(),
		})
	}
	return out
}
