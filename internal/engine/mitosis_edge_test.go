package engine

import (
	"fmt"
	"testing"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
)

// edgeCat is a catalog with deliberately awkward tables: tiny (fewer
// rows than any realistic partition count) and empty.
var edgeCat = func() *storage.Catalog {
	cat := storage.NewCatalog()
	cat.Define("sys", "tiny",
		[]storage.Column{{Name: "k", Kind: storage.Int}, {Name: "v", Kind: storage.Flt}, {Name: "tag", Kind: storage.Str}},
		map[string]*storage.BAT{
			"k":   storage.FromInts(storage.Int, []int64{1, 2, 1, 3, 2}),
			"v":   storage.FromFloats([]float64{1.5, 2.5, 3.5, 4.5, 5.5}),
			"tag": storage.FromStrings([]string{"a", "b", "a", "c", "b"}),
		})
	cat.Define("sys", "nothing",
		[]storage.Column{{Name: "k", Kind: storage.Int}, {Name: "v", Kind: storage.Flt}},
		map[string]*storage.BAT{
			"k": storage.FromInts(storage.Int, nil),
			"v": storage.FromFloats(nil),
		})
	// dim joins against tiny.k with duplicate keys on both sides and one
	// key (4) that never matches.
	cat.Define("sys", "dim",
		[]storage.Column{{Name: "k", Kind: storage.Int}, {Name: "name", Kind: storage.Str}},
		map[string]*storage.BAT{
			"k":    storage.FromInts(storage.Int, []int64{1, 2, 4, 1}),
			"name": storage.FromStrings([]string{"one", "two", "four", "uno"}),
		})
	return cat
}()

// runEdge compiles q against edgeCat at the given partition count
// (optimized, as every real path runs) and executes it.
func runEdge(t *testing.T, q string, partitions, workers int) *Result {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	tree, err := algebra.Bind(stmt, edgeCat)
	if err != nil {
		t.Fatalf("Bind(%q): %v", q, err)
	}
	plan, err := compiler.Compile(tree, q, compiler.Options{Partitions: partitions})
	if err != nil {
		t.Fatalf("Compile(%q, parts=%d): %v", q, partitions, err)
	}
	plan, _, err = optimizer.Default().Run(plan)
	if err != nil {
		t.Fatalf("Optimize(%q): %v", q, err)
	}
	res, err := New(edgeCat).Run(plan, Options{Workers: workers})
	if err != nil {
		t.Fatalf("Run(%q, parts=%d, workers=%d): %v", q, partitions, workers, err)
	}
	if res == nil {
		t.Fatalf("Run(%q): nil result", q)
	}
	return res
}

// edgeQueries covers every extended mitosis shape: bare scans,
// filters, projected expressions, global aggregates (guarded min/max
// included), group-bys with multiple keys, count forms, and distinct.
var edgeQueries = []string{
	"select k, v from tiny",
	"select v from tiny where k >= 2",
	"select v * 2 + 1 from tiny where k <> 3",
	"select count(*), sum(v), min(v), max(v) from tiny",
	"select min(v), max(v) from tiny where k = 3", // one surviving row, most slices empty
	"select min(v) from tiny where k > 99",        // nothing survives anywhere
	"select tag, sum(v) as s, count(*) as n, min(v) as mn, max(v) as mx from tiny group by tag",
	"select k, tag, count(v) as n from tiny group by k, tag",
	"select tag, avg(v) as a from tiny group by tag", // avg: packed fallback under partitioning
	"select distinct tag from tiny",
	"select distinct k, tag from tiny",
	"select k, v from nothing",
	"select count(*), sum(v), min(v), max(v) from nothing",
	"select k, sum(v) as s from nothing group by k",
	"select distinct k from nothing",
}

// assertSameResult compares cell for cell. Float cells compare under a
// tight relative tolerance: merged float sums re-associate the
// additions (partial sums per slice, then a combining sum — exactly
// what MonetDB's mitosis does), so the last bits may differ from the
// strict left-to-right sequential sum. Counts, min/max, strings and
// integers must match exactly.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s: rows %d != %d", label, got.Rows(), want.Rows())
	}
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: cols %d != %d", label, len(got.Cols), len(want.Cols))
	}
	for c := range want.Cols {
		for i := 0; i < want.Rows(); i++ {
			if want.Cols[c].Kind() == storage.Flt {
				a, b := want.Cols[c].FltAt(i), got.Cols[c].FltAt(i)
				d, scale := a-b, a
				if d < 0 {
					d = -d
				}
				if scale < 0 {
					scale = -scale
				}
				if scale < 1 {
					scale = 1
				}
				if d > 1e-9*scale {
					t.Fatalf("%s: col %d row %d differs: %g vs %g", label, c, i, a, b)
				}
				continue
			}
			if !sameCell(want.Cols[c], got.Cols[c], i) {
				t.Fatalf("%s: col %d row %d differs", label, c, i)
			}
		}
	}
}

// TestMitosisMorePartitionsThanRows partitions 5-row and 0-row tables
// into far more slices than rows — most slices are empty — and checks
// every shape agrees with the sequential plan, exactly.
func TestMitosisMorePartitionsThanRows(t *testing.T) {
	for _, q := range edgeQueries {
		base := runEdge(t, q, 1, 1)
		for _, parts := range []int{2, 5, 7, 16, 64} {
			got := runEdge(t, q, parts, 1)
			assertSameResult(t, fmt.Sprintf("%q parts=%d", q, parts), base, got)
		}
	}
}

// TestMitosisParallelEqualitySweep runs the extended mitosis shapes
// across worker counts: sequential and dataflow execution of the same
// partitioned plan must agree cell for cell. Run under -race (the
// Makefile race target does) this doubles as the scheduler's
// correctness sweep over aggregate plans.
func TestMitosisParallelEqualitySweep(t *testing.T) {
	for _, q := range edgeQueries {
		base := runEdge(t, q, 1, 1)
		for _, parts := range []int{4, 16} {
			for _, workers := range []int{1, 4, 8} {
				got := runEdge(t, q, parts, workers)
				assertSameResult(t, fmt.Sprintf("%q parts=%d workers=%d", q, parts, workers), base, got)
			}
		}
	}
}

// TestMitosisTPCHShapesAcrossWorkers sweeps realistic aggregate
// pipelines over the TPC-H test catalog at Workers 1/4/8.
func TestMitosisTPCHShapesAcrossWorkers(t *testing.T) {
	queries := []string{
		"select sum(l_extendedprice) as revenue, count(*) as matched from lineitem where l_shipdate between date '1994-01-01' and date '1994-12-31' and l_discount between 0.05 and 0.07 and l_quantity < 24",
		"select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, count(*) as n from lineitem where l_shipdate <= date '1998-09-02' group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus",
		"select l_returnflag, min(l_quantity) as mn, max(l_quantity) as mx from lineitem group by l_returnflag order by l_returnflag",
		"select distinct l_shipmode from lineitem order by l_shipmode",
	}
	for _, q := range queries {
		base := runQ(t, q, Options{Workers: 1}, 1)
		for _, parts := range []int{4, 8} {
			for _, workers := range []int{1, 4, 8} {
				got := runQ(t, q, Options{Workers: workers}, parts)
				assertSameResult(t, fmt.Sprintf("%q parts=%d workers=%d", q, parts, workers), base, got)
			}
		}
	}
}

// TestMitosisExactShapesByteIdentical: aggregates that do not
// re-associate float additions — counts, min/max, integral sums, group
// keys, distinct — must be bit-for-bit identical to sequential
// execution at every partition/worker combination.
func TestMitosisExactShapesByteIdentical(t *testing.T) {
	queries := []string{
		"select l_returnflag, count(*) as n, min(l_quantity) as mn, max(l_quantity) as mx from lineitem group by l_returnflag order by l_returnflag",
		"select sum(l_partkey) as s, count(*) as n from lineitem where l_quantity > 25",
		"select min(l_shipdate) as first, max(l_shipdate) as last from lineitem",
		"select distinct l_returnflag, l_linestatus from lineitem",
	}
	for _, q := range queries {
		base := runQ(t, q, Options{Workers: 1}, 1)
		for _, parts := range []int{4, 16} {
			for _, workers := range []int{1, 4, 8} {
				got := runQ(t, q, Options{Workers: workers}, parts)
				label := fmt.Sprintf("%q parts=%d workers=%d", q, parts, workers)
				if got.Rows() != base.Rows() || len(got.Cols) != len(base.Cols) {
					t.Fatalf("%s: shape differs", label)
				}
				for c := range base.Cols {
					for i := 0; i < base.Rows(); i++ {
						if !sameCell(base.Cols[c], got.Cols[c], i) {
							t.Fatalf("%s: col %d row %d not byte-identical", label, c, i)
						}
					}
				}
			}
		}
	}
}
