package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/mal"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

var testCat = func() *storage.Catalog {
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.001, Seed: 11}); err != nil {
		panic(err)
	}
	return cat
}()

func compileQ(t testing.TB, q string, parts int) *mal.Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	tree, err := algebra.Bind(stmt, testCat)
	if err != nil {
		t.Fatalf("Bind(%q): %v", q, err)
	}
	plan, err := compiler.Compile(tree, q, compiler.Options{Partitions: parts})
	if err != nil {
		t.Fatalf("Compile(%q): %v", q, err)
	}
	return plan
}

func runQ(t testing.TB, q string, opt Options, parts int) *Result {
	t.Helper()
	eng := New(testCat)
	res, err := eng.Run(compileQ(t, q, parts), opt)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	if res == nil {
		t.Fatalf("Run(%q): nil result", q)
	}
	return res
}

func TestPaperQueryExecution(t *testing.T) {
	res := runQ(t, "select l_tax from lineitem where l_partkey=1", Options{}, 1)
	if len(res.Names) != 1 || res.Names[0] != "l_tax" {
		t.Fatalf("names = %v", res.Names)
	}
	// Cross-check against direct storage access.
	pk, _ := testCat.Bind("sys", "lineitem", "l_partkey")
	tax, _ := testCat.Bind("sys", "lineitem", "l_tax")
	var want []float64
	for i := 0; i < pk.Len(); i++ {
		if pk.IntAt(i) == 1 {
			want = append(want, tax.FltAt(i))
		}
	}
	if res.Rows() != len(want) {
		t.Fatalf("rows = %d, want %d", res.Rows(), len(want))
	}
	for i, w := range want {
		if res.Cols[0].FltAt(i) != w {
			t.Errorf("row %d = %g, want %g", i, res.Cols[0].FltAt(i), w)
		}
	}
}

func TestPartitionedMatchesUnpartitioned(t *testing.T) {
	queries := []string{
		"select l_tax from lineitem where l_partkey=1",
		"select l_orderkey, l_quantity from lineitem where l_quantity > 25 and l_discount < 0.05",
		"select l_extendedprice from lineitem where l_shipdate between date '1994-01-01' and date '1995-01-01'",
	}
	for _, q := range queries {
		base := runQ(t, q, Options{}, 1)
		for _, parts := range []int{2, 7, 16} {
			part := runQ(t, q, Options{}, parts)
			if part.Rows() != base.Rows() {
				t.Fatalf("%q parts=%d: rows %d != %d", q, parts, part.Rows(), base.Rows())
			}
			for c := range base.Cols {
				for i := 0; i < base.Rows(); i++ {
					if !sameCell(base.Cols[c], part.Cols[c], i) {
						t.Fatalf("%q parts=%d: col %d row %d differs", q, parts, c, i)
					}
				}
			}
		}
	}
}

func TestDataflowMatchesSequential(t *testing.T) {
	queries := []string{
		"select l_tax from lineitem where l_partkey=1",
		"select l_returnflag, sum(l_quantity) as qty, count(*) as n from lineitem group by l_returnflag order by l_returnflag",
		"select o_totalprice, l_tax from orders join lineitem on l_orderkey = o_orderkey where l_quantity > 40 order by o_totalprice limit 10",
	}
	for _, q := range queries {
		seq := runQ(t, q, Options{Workers: 1}, 8)
		par := runQ(t, q, Options{Workers: 8}, 8)
		if seq.Rows() != par.Rows() {
			t.Fatalf("%q: rows %d != %d", q, seq.Rows(), par.Rows())
		}
		for c := range seq.Cols {
			for i := 0; i < seq.Rows(); i++ {
				if !sameCell(seq.Cols[c], par.Cols[c], i) {
					t.Fatalf("%q: col %d row %d differs between sequential and dataflow", q, c, i)
				}
			}
		}
	}
}

func sameCell(a, b *storage.BAT, i int) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case storage.Flt:
		return a.FltAt(i) == b.FltAt(i)
	case storage.Str:
		return a.StrAt(i) == b.StrAt(i)
	case storage.Bool:
		return a.BoolAt(i) == b.BoolAt(i)
	default:
		return a.IntAt(i) == b.IntAt(i)
	}
}

func TestGroupByAggregates(t *testing.T) {
	res := runQ(t,
		"select l_returnflag, sum(l_quantity) as qty, count(*) as n from lineitem group by l_returnflag order by l_returnflag",
		Options{}, 1)
	if res.Rows() == 0 || res.Rows() > 3 {
		t.Fatalf("rows = %d", res.Rows())
	}
	// Cross-check totals.
	rf, _ := testCat.Bind("sys", "lineitem", "l_returnflag")
	qty, _ := testCat.Bind("sys", "lineitem", "l_quantity")
	sums := map[string]float64{}
	counts := map[string]int64{}
	for i := 0; i < rf.Len(); i++ {
		sums[rf.StrAt(i)] += qty.FltAt(i)
		counts[rf.StrAt(i)]++
	}
	var prev string
	for i := 0; i < res.Rows(); i++ {
		flag := res.Cols[0].StrAt(i)
		if i > 0 && flag <= prev {
			t.Errorf("output not ordered: %q after %q", flag, prev)
		}
		prev = flag
		if got := res.Cols[1].FltAt(i); got != sums[flag] {
			t.Errorf("sum[%s] = %g, want %g", flag, got, sums[flag])
		}
		if got := res.Cols[2].IntAt(i); got != counts[flag] {
			t.Errorf("count[%s] = %d, want %d", flag, got, counts[flag])
		}
	}
}

func TestGlobalAggregates(t *testing.T) {
	res := runQ(t, "select count(*) as n, sum(l_quantity) as s, min(l_quantity) as mn, max(l_quantity) as mx, avg(l_quantity) as a from lineitem",
		Options{}, 1)
	if res.Rows() != 1 {
		t.Fatalf("rows = %d", res.Rows())
	}
	qty, _ := testCat.Bind("sys", "lineitem", "l_quantity")
	var sum, mn, mx float64
	mn = 1e18
	mx = -1e18
	for _, v := range qty.Flts() {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if res.Cols[0].IntAt(0) != int64(qty.Len()) {
		t.Errorf("count = %d", res.Cols[0].IntAt(0))
	}
	if res.Cols[1].FltAt(0) != sum {
		t.Errorf("sum = %g, want %g", res.Cols[1].FltAt(0), sum)
	}
	if res.Cols[2].FltAt(0) != mn || res.Cols[3].FltAt(0) != mx {
		t.Errorf("min/max = %g/%g", res.Cols[2].FltAt(0), res.Cols[3].FltAt(0))
	}
	wantAvg := sum / float64(qty.Len())
	if got := res.Cols[4].FltAt(0); got < wantAvg-1e-9 || got > wantAvg+1e-9 {
		t.Errorf("avg = %g, want %g", got, wantAvg)
	}
}

func TestJoinExecution(t *testing.T) {
	res := runQ(t,
		"select o_orderkey, o_totalprice, l_quantity from orders join lineitem on l_orderkey = o_orderkey",
		Options{}, 1)
	li, _ := testCat.Table("sys", "lineitem")
	// Every lineitem row has a matching order, so the join has exactly
	// lineitem-many rows.
	if res.Rows() != li.Rows() {
		t.Fatalf("join rows = %d, want %d", res.Rows(), li.Rows())
	}
	// Spot-check alignment: o_orderkey must equal the l_orderkey of the
	// matching lineitem row everywhere; validate via order totalprice map.
	ok, _ := testCat.Bind("sys", "orders", "o_orderkey")
	op, _ := testCat.Bind("sys", "orders", "o_totalprice")
	prices := map[int64]float64{}
	for i := 0; i < ok.Len(); i++ {
		prices[ok.IntAt(i)] = op.FltAt(i)
	}
	for i := 0; i < res.Rows(); i++ {
		key := res.Cols[0].IntAt(i)
		if res.Cols[1].FltAt(i) != prices[key] {
			t.Fatalf("row %d: totalprice misaligned", i)
		}
	}
}

func TestDistinctExecution(t *testing.T) {
	res := runQ(t, "select distinct l_returnflag from lineitem order by l_returnflag", Options{}, 1)
	seen := map[string]bool{}
	for i := 0; i < res.Rows(); i++ {
		v := res.Cols[0].StrAt(i)
		if seen[v] {
			t.Fatalf("duplicate %q in distinct output", v)
		}
		seen[v] = true
	}
	rf, _ := testCat.Bind("sys", "lineitem", "l_returnflag")
	want := map[string]bool{}
	for _, v := range rf.Strs() {
		want[v] = true
	}
	if len(seen) != len(want) {
		t.Errorf("distinct count = %d, want %d", len(seen), len(want))
	}
}

func TestOrderByLimitExecution(t *testing.T) {
	res := runQ(t, "select l_extendedprice from lineitem order by l_extendedprice desc limit 5", Options{}, 1)
	if res.Rows() != 5 {
		t.Fatalf("rows = %d", res.Rows())
	}
	for i := 1; i < 5; i++ {
		if res.Cols[0].FltAt(i) > res.Cols[0].FltAt(i-1) {
			t.Errorf("not descending at %d", i)
		}
	}
	// Top value must be the true maximum.
	ep, _ := testCat.Bind("sys", "lineitem", "l_extendedprice")
	var mx float64
	for _, v := range ep.Flts() {
		if v > mx {
			mx = v
		}
	}
	if res.Cols[0].FltAt(0) != mx {
		t.Errorf("top = %g, want %g", res.Cols[0].FltAt(0), mx)
	}
}

func TestMultiKeySort(t *testing.T) {
	res := runQ(t, "select l_returnflag, l_quantity from lineitem order by l_returnflag, l_quantity desc limit 50", Options{}, 1)
	for i := 1; i < res.Rows(); i++ {
		f0, f1 := res.Cols[0].StrAt(i-1), res.Cols[0].StrAt(i)
		if f1 < f0 {
			t.Fatalf("primary key out of order at %d", i)
		}
		if f1 == f0 && res.Cols[1].FltAt(i) > res.Cols[1].FltAt(i-1) {
			t.Fatalf("secondary key out of order at %d", i)
		}
	}
}

func TestExpressionQuery(t *testing.T) {
	res := runQ(t, "select l_extendedprice * (1 - l_discount) as revenue from lineitem where l_partkey = 2", Options{}, 1)
	pk, _ := testCat.Bind("sys", "lineitem", "l_partkey")
	ep, _ := testCat.Bind("sys", "lineitem", "l_extendedprice")
	dc, _ := testCat.Bind("sys", "lineitem", "l_discount")
	var want []float64
	for i := 0; i < pk.Len(); i++ {
		if pk.IntAt(i) == 2 {
			want = append(want, ep.FltAt(i)*(1-dc.FltAt(i)))
		}
	}
	if res.Rows() != len(want) {
		t.Fatalf("rows = %d, want %d", res.Rows(), len(want))
	}
	for i, w := range want {
		if got := res.Cols[0].FltAt(i); got < w-1e-9 || got > w+1e-9 {
			t.Errorf("row %d = %g, want %g", i, got, w)
		}
	}
}

func TestDisjunctionQuery(t *testing.T) {
	res := runQ(t, "select l_orderkey from lineitem where l_quantity > 49 or l_discount > 0.09", Options{}, 1)
	qt, _ := testCat.Bind("sys", "lineitem", "l_quantity")
	dc, _ := testCat.Bind("sys", "lineitem", "l_discount")
	want := 0
	for i := 0; i < qt.Len(); i++ {
		if qt.FltAt(i) > 49 || dc.FltAt(i) > 0.09 {
			want++
		}
	}
	if res.Rows() != want {
		t.Errorf("rows = %d, want %d", res.Rows(), want)
	}
}

func TestProfilerEventsPairPerInstruction(t *testing.T) {
	sink := &profiler.SliceSink{}
	prof := profiler.New(sink)
	eng := New(testCat)
	plan := compileQ(t, "select l_tax from lineitem where l_partkey=1", 1)
	if _, err := eng.Run(plan, Options{Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if len(evs) != 2*len(plan.Instrs) {
		t.Fatalf("events = %d, want %d", len(evs), 2*len(plan.Instrs))
	}
	// Sequential: strictly paired start/done per pc.
	for i := 0; i < len(evs); i += 2 {
		if evs[i].State != profiler.StateStart || evs[i+1].State != profiler.StateDone {
			t.Fatalf("event %d not a start/done pair", i)
		}
		if evs[i].PC != evs[i+1].PC {
			t.Fatalf("pair pc mismatch at %d", i)
		}
		if evs[i].Stmt == "" {
			t.Error("empty stmt field")
		}
	}
}

func TestDataflowUsesMultipleThreads(t *testing.T) {
	// Deterministic parallelism check: independent instructions that each
	// take a few milliseconds must be spread over the worker pool.
	sink := &profiler.SliceSink{}
	prof := profiler.New(sink)
	eng := New(testCat)
	eng.Register("test", "work", func(ctx *Context, in *mal.Instr) error {
		time.Sleep(3 * time.Millisecond)
		ctx.setVal(in, 0, mal.Int64(1))
		return nil
	})
	p := mal.NewPlan("")
	for i := 0; i < 16; i++ {
		p.Emit1("test", "work", mal.TInt)
	}
	if _, err := eng.Run(p, Options{Workers: 4, Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	threads := map[int]bool{}
	for _, e := range sink.Events() {
		threads[e.Thread] = true
	}
	if len(threads) < 2 {
		t.Errorf("dataflow used %d threads, want >= 2", len(threads))
	}
}

func TestSequentialUsesOneThread(t *testing.T) {
	sink := &profiler.SliceSink{}
	prof := profiler.New(sink)
	eng := New(testCat)
	plan := compileQ(t, "select l_tax from lineitem where l_partkey=1", 8)
	if _, err := eng.Run(plan, Options{Workers: 1, Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	for _, e := range sink.Events() {
		if e.Thread != 0 {
			t.Fatalf("sequential run on thread %d", e.Thread)
		}
	}
}

func TestUnknownOperatorFails(t *testing.T) {
	p := mal.NewPlan("")
	p.Emit1("nosuch", "op", mal.TInt)
	eng := New(testCat)
	if _, err := eng.Run(p, Options{}); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestKernelErrorPropagatesInDataflow(t *testing.T) {
	eng := New(testCat)
	boom := errors.New("boom")
	eng.Register("test", "fail", func(ctx *Context, in *mal.Instr) error { return boom })
	eng.Register("test", "ok", func(ctx *Context, in *mal.Instr) error {
		ctx.setVal(in, 0, mal.Int64(1))
		return nil
	})
	p := mal.NewPlan("")
	a := p.Emit1("test", "ok", mal.TInt)
	p.Emit1("test", "fail", mal.TInt, mal.VarArg(a))
	p.Emit1("test", "ok2", mal.TInt) // unknown op, but failure should hit first or be reported
	eng.Register("test", "ok2", func(ctx *Context, in *mal.Instr) error {
		ctx.setVal(in, 0, mal.Int64(2))
		return nil
	})
	_, err := eng.Run(p, Options{Workers: 4})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunInvalidPlanRejected(t *testing.T) {
	p := mal.NewPlan("")
	v := p.NewVar(mal.TBATInt)
	p.Emit1("algebra", "selectTrue", mal.TBATOID, mal.VarArg(v))
	eng := New(testCat)
	if _, err := eng.Run(p, Options{}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestAccountingFields(t *testing.T) {
	sink := &profiler.SliceSink{}
	prof := profiler.New(sink)
	eng := New(testCat)
	plan := compileQ(t, "select l_tax from lineitem where l_partkey=1", 1)
	if _, err := eng.Run(plan, Options{Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	li, _ := testCat.Table("sys", "lineitem")
	sawBindWrite := false
	for _, e := range sink.Events() {
		if e.State == profiler.StateDone && e.Writes == int64(li.Rows()) {
			sawBindWrite = true
		}
	}
	if !sawBindWrite {
		t.Error("no done event accounts for a full-column bind write")
	}
}

func TestManyWorkersSmallPlan(t *testing.T) {
	// More workers than instructions must not deadlock.
	res := runQ(t, "select l_tax from lineitem where l_partkey=1", Options{Workers: 32}, 1)
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestCountColumnForm(t *testing.T) {
	res := runQ(t, "select l_returnflag, count(l_quantity) as n from lineitem group by l_returnflag", Options{}, 1)
	var total int64
	for i := 0; i < res.Rows(); i++ {
		total += res.Cols[1].IntAt(i)
	}
	rf, _ := testCat.Bind("sys", "lineitem", "l_returnflag")
	if total != int64(rf.Len()) {
		t.Errorf("counts sum to %d, want %d", total, rf.Len())
	}
}

func ExampleEngine_Run() {
	cat := storage.NewCatalog()
	cat.Define("sys", "t",
		[]storage.Column{{Name: "x", Kind: storage.Int}},
		map[string]*storage.BAT{"x": storage.FromInts(storage.Int, []int64{3, 1, 2})})
	stmt, _ := sql.Parse("select x from t order by x")
	tree, _ := algebra.Bind(stmt, cat)
	plan, _ := compiler.Compile(tree, stmt.Text, compiler.Options{})
	res, _ := New(cat).Run(plan, Options{})
	for i := 0; i < res.Rows(); i++ {
		fmt.Println(res.Cols[0].IntAt(i))
	}
	// Output:
	// 1
	// 2
	// 3
}

func TestLikeQueryExecution(t *testing.T) {
	res := runQ(t, "select p_partkey from part where p_type like 'PROMO%'", Options{}, 1)
	pt, _ := testCat.Bind("sys", "part", "p_type")
	want := 0
	for _, v := range pt.Strs() {
		if len(v) >= 5 && v[:5] == "PROMO" {
			want++
		}
	}
	if res.Rows() != want {
		t.Errorf("like rows = %d, want %d", res.Rows(), want)
	}
	// Negated form is the complement.
	neg := runQ(t, "select p_partkey from part where p_type not like 'PROMO%'", Options{}, 1)
	if res.Rows()+neg.Rows() != pt.Len() {
		t.Errorf("like + not like = %d, want %d", res.Rows()+neg.Rows(), pt.Len())
	}
}

func TestInListExecution(t *testing.T) {
	res := runQ(t, "select l_orderkey from lineitem where l_shipmode in ('MAIL', 'SHIP')", Options{}, 1)
	sm, _ := testCat.Bind("sys", "lineitem", "l_shipmode")
	want := 0
	for _, v := range sm.Strs() {
		if v == "MAIL" || v == "SHIP" {
			want++
		}
	}
	if res.Rows() != want {
		t.Errorf("in rows = %d, want %d", res.Rows(), want)
	}
	neg := runQ(t, "select l_orderkey from lineitem where l_shipmode not in ('MAIL', 'SHIP')", Options{}, 1)
	if res.Rows()+neg.Rows() != sm.Len() {
		t.Errorf("in + not in = %d, want %d", res.Rows()+neg.Rows(), sm.Len())
	}
}

// TestConcurrentRunsShareEngineAndPlan exercises the reentrancy
// contract: one engine executes one shared plan from many goroutines at
// once (sequential and dataflow interleaved) while a test kernel is
// re-registered, and every run must produce the same result. Run under
// -race this is the engine-level half of the serving-layer guarantee.
func TestConcurrentRunsShareEngineAndPlan(t *testing.T) {
	eng := New(testCat)
	plan := compileQ(t, "select l_tax from lineitem where l_partkey=1", 4)
	want, err := eng.Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				workers := 1
				if (g+i)%2 == 1 {
					workers = 4
				}
				sink := &profiler.SliceSink{}
				res, err := eng.Run(plan, Options{Workers: workers, Profiler: profiler.New(sink)})
				if err != nil {
					errs <- err
					return
				}
				if res.Rows() != want.Rows() {
					errs <- fmt.Errorf("run got %d rows, want %d", res.Rows(), want.Rows())
					return
				}
				if len(sink.Events()) != 2*len(plan.Instrs) {
					errs <- fmt.Errorf("trace has %d events, want %d", len(sink.Events()), 2*len(plan.Instrs))
					return
				}
			}
		}(g)
	}
	// Concurrent fault-injection-style registration must not race with
	// the executing goroutines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			eng.Register("language", "pass", kNop)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWorkStealingSpreadsFanOut forces the fan-out case the per-worker
// deques must handle: one producer unblocks many consumers at once, all
// of which land on the finisher's own deque — the other workers only
// get work by stealing it.
func TestWorkStealingSpreadsFanOut(t *testing.T) {
	sink := &profiler.SliceSink{}
	prof := profiler.New(sink)
	eng := New(testCat)
	eng.Register("test", "seed", func(ctx *Context, in *mal.Instr) error {
		ctx.setVal(in, 0, mal.Int64(1))
		return nil
	})
	eng.Register("test", "work", func(ctx *Context, in *mal.Instr) error {
		time.Sleep(2 * time.Millisecond)
		ctx.setVal(in, 0, mal.Int64(1))
		return nil
	})
	p := mal.NewPlan("")
	seed := p.Emit1("test", "seed", mal.TInt)
	for i := 0; i < 16; i++ {
		p.Emit1("test", "work", mal.TInt, mal.VarArg(seed))
	}
	if _, err := eng.Run(p, Options{Workers: 4, Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	threads := map[int]bool{}
	for _, e := range sink.Events() {
		threads[e.Thread] = true
	}
	if len(threads) < 2 {
		t.Errorf("fan-out executed on %d threads, want >= 2 (stealing failed)", len(threads))
	}
}

// TestDataflowCancelMidRun cancels while instructions are executing:
// the scheduler must stop dispatching, return the cancellation error,
// and leave no goroutine behind.
func TestDataflowCancelMidRun(t *testing.T) {
	eng := New(testCat)
	started := make(chan struct{}, 64)
	eng.Register("test", "slow", func(ctx *Context, in *mal.Instr) error {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(time.Millisecond)
		ctx.setVal(in, 0, mal.Int64(1))
		return nil
	})
	p := mal.NewPlan("")
	prev := p.Emit1("test", "slow", mal.TInt)
	for i := 0; i < 63; i++ {
		prev = p.Emit1("test", "slow", mal.TInt, mal.VarArg(prev))
	}
	cctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := eng.RunContext(cctx, p, Options{Workers: 4})
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled dataflow run did not return")
	}
}

// TestDataflowWideMitosisPlan runs a genuinely wide partitioned
// aggregate plan through the scheduler at several worker counts and
// checks the results agree with sequential execution.
func TestDataflowWideMitosisPlan(t *testing.T) {
	q := "select l_returnflag, sum(l_quantity) as s, count(*) as n from lineitem where l_quantity > 10 group by l_returnflag order by l_returnflag"
	plan := compileQ(t, q, 16)
	eng := New(testCat)
	seq, err := eng.Run(plan, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 32} {
		par, err := eng.Run(plan, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Rows() != seq.Rows() {
			t.Fatalf("workers=%d: rows %d != %d", workers, par.Rows(), seq.Rows())
		}
		for c := range seq.Cols {
			for i := 0; i < seq.Rows(); i++ {
				if !sameCell(seq.Cols[c], par.Cols[c], i) {
					t.Fatalf("workers=%d: col %d row %d differs", workers, c, i)
				}
			}
		}
	}
}
