// Morsel-driven fragment execution (mat.morsel): the dynamic
// work-distribution half of the paper's multi-core story. Where mitosis
// cuts a scan into static compile-time slices, a morsel fragment runs
// the whole operator chain above a scan morsel-at-a-time — workers pull
// fixed-size row ranges from a shared atomic cursor, so a skewed range
// no longer straggles on one worker and peak intermediate memory is
// bounded by workers × morsel rows instead of partitions × slice. Only
// the fragment's per-morsel exports materialize, packed across morsels
// in morsel order by the combine stage below.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"stethoscope/internal/adaptive"
	"stethoscope/internal/mal"
	"stethoscope/internal/storage"
)

// DefaultMorselRows is the morsel size used when Options.MorselRows is
// unset, shared with the adaptive tuner.
const DefaultMorselRows = adaptive.DefaultMorselRows

// kMorsel executes one morsel fragment:
//
//	rets := mat.morsel(fragID, nSrc, nCap, src..., cap...)
//
// Cursor semantics: morsel m covers source rows
// [m*morsel, min(n, (m+1)*morsel)); workers claim morsels with an
// atomic fetch-add, so assignment is dynamic but the set of morsels is
// fixed up front. When another run is already scanning the same source
// at the same geometry, this run attaches to it (sharedscan.go) and
// claims the same morsels in rotated order from the in-flight position,
// wrapping around for the rows it missed. An empty input still runs exactly one empty morsel,
// so per-morsel partial aggregates keep the same zero-row placeholder
// semantics as empty static slices. Each worker reuses one fragment
// context; per-morsel values are dropped after the morsel's exports are
// collected, which is what bounds the intermediates. Workers observe
// ctx cancellation between morsels, not just between outer
// instructions. When this instruction is the run's streaming source
// (Context.streamPC), each morsel's exports are emitted in morsel order
// as soon as the prefix is complete.
func kMorsel(ctx *Context, in *mal.Instr) error {
	fid, err := ctx.intArg(in, 0)
	if err != nil {
		return err
	}
	if fid < 0 || int(fid) >= len(ctx.Plan.Frags) {
		return fmt.Errorf("no fragment %d in plan", fid)
	}
	f := ctx.Plan.Frags[fid]
	nSrc, err := ctx.intArg(in, 1)
	if err != nil {
		return err
	}
	nCap, err := ctx.intArg(in, 2)
	if err != nil {
		return err
	}
	if int(nSrc) != len(f.Params) || int(nCap) != len(f.Caps) {
		return fmt.Errorf("fragment %d wants %d params and %d caps, instruction carries %d and %d",
			fid, len(f.Params), len(f.Caps), nSrc, nCap)
	}
	if len(in.Args) != 3+int(nSrc)+int(nCap) {
		return fmt.Errorf("fragment %d: %d arguments, want %d", fid, len(in.Args), 3+nSrc+nCap)
	}
	if len(in.Rets) != len(f.Outs) {
		return fmt.Errorf("fragment %d exports %d columns, instruction returns %d", fid, len(f.Outs), len(in.Rets))
	}

	srcs := make([]*storage.BAT, nSrc)
	for i := range srcs {
		if srcs[i], err = ctx.bat(in, 3+i); err != nil {
			return err
		}
	}
	caps := make([]mal.Value, nCap)
	for i := range caps {
		caps[i] = ctx.value(in.Args[3+int(nSrc)+i])
	}
	n := 0
	if len(srcs) > 0 {
		n = srcs[0].Len()
	}
	for i, s := range srcs {
		if s.Len() != n {
			return fmt.Errorf("fragment %d: source %d has %d rows, source 0 has %d", fid, i, s.Len(), n)
		}
	}

	morsel := ctx.morselRows
	if morsel < 1 {
		morsel = DefaultMorselRows
	}
	nM := (n + morsel - 1) / morsel
	if nM < 1 {
		nM = 1
	}
	fkernels, err := ctx.eng.resolve(f.Plan)
	if err != nil {
		return err
	}
	workers := ctx.workers
	if workers > nM {
		workers = nM
	}
	if workers < 1 {
		workers = 1
	}
	cctx := ctx.cctx
	if cctx == nil {
		cctx = context.Background()
	}
	streaming := ctx.emit != nil && in.PC == ctx.streamPC

	// Publish this fragment's cursor dimensions to the run's live
	// progress entry, and resolve the engine's morsel metric cells once
	// per instruction — the per-morsel accounting below is atomic adds.
	ctx.prog.addMorselWork(int64(n), int64(nM))
	em := ctx.eng.met

	// Shared-scan attach (sharedscan.go): register this cursor so
	// overlapping runs co-scan the source. A run finding the same scan
	// already in flight starts claiming at that scan's current position
	// and wraps around for the morsels it missed (the catch-up pass);
	// claim order changes, morsel extents and the combine below do not,
	// so results stay byte-identical. Streaming runs never rotate —
	// their consumer wants the morsel-order prefix as early as possible.
	var share *scanShare
	scanStart := 0
	if len(srcs) > 0 && n > 0 {
		skey := scanKey{src: srcs[0], n: n, morsel: morsel}
		var joined bool
		share, joined = ctx.eng.attachScan(skey)
		defer ctx.eng.detachScan(skey, share)
		switch {
		case joined && !streaming && nM > 1:
			if p := int(share.pos.Load()); p > 0 && p < nM {
				scanStart = p
			}
			if em != nil {
				em.scanAttached.Inc()
			}
		case !joined:
			if em != nil {
				em.scanLeads.Inc()
			}
		}
	}

	results := make([][]*storage.BAT, nM)
	var (
		cursor   atomic.Int64
		mu       sync.Mutex // guards firstErr, results prefix scan, next
		firstErr error
		next     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	work := func() {
		fctx := &Context{
			Plan:     f.Plan,
			eng:      ctx.eng,
			kernels:  fkernels,
			vals:     make([]mal.Value, len(f.Plan.Vars)),
			streamPC: -1,
		}
		for {
			// The between-morsels cancellation point: a long scan stops
			// at the next morsel boundary, not at the next instruction.
			if err := cctx.Err(); err != nil {
				fail(fmt.Errorf("canceled between morsels: %w", err))
				return
			}
			if failed() {
				return
			}
			// seq is this run's private claim sequence; the absolute
			// morsel index rotates from the shared-scan attach point, and
			// the claim is published as the hint future attachers start
			// from.
			seq := int(cursor.Add(1)) - 1
			if seq >= nM {
				return
			}
			m := seq
			if scanStart != 0 {
				m = (scanStart + seq) % nM
			}
			if share != nil {
				share.pos.Store(int64(m))
			}
			if em != nil {
				em.morselsClaimed.Inc()
			}
			lo := m * morsel
			hi := lo + morsel
			if hi > n {
				hi = n
			}
			for i := range fctx.vals {
				fctx.vals[i] = mal.Value{}
			}
			for i, pv := range f.Params {
				fctx.vals[pv] = mal.Value{Type: f.Plan.VarType(pv), Col: srcs[i].Slice(lo, hi)}
			}
			for i, cv := range f.Caps {
				fctx.vals[cv] = caps[i]
			}
			for _, fin := range f.Plan.Instrs {
				if err := fkernels[fin.PC](fctx, fin); err != nil {
					fail(fmt.Errorf("morsel %d: fragment pc=%d %s: %w", m, fin.PC, fin.Name(), err))
					return
				}
			}
			out := make([]*storage.BAT, len(f.Outs))
			for i, ov := range f.Outs {
				b, ok := fctx.vals[ov].Col.(*storage.BAT)
				if !ok {
					fail(fmt.Errorf("morsel %d: fragment export %d is not a BAT", m, i))
					return
				}
				out[i] = b
			}
			if em != nil {
				em.morselRows.Add(int64(hi - lo))
			}
			ctx.prog.morselFinished(int64(hi - lo))
			mu.Lock()
			if firstErr != nil {
				mu.Unlock()
				return
			}
			results[m] = out
			if streaming {
				// Emit the completed prefix in morsel order. Emitting
				// under the mutex stalls peers that already finished
				// their morsel — that backpressure is what keeps
				// in-flight batches bounded when the consumer is slow.
				for next < nM && results[next] != nil {
					batch := make([]*storage.BAT, len(ctx.emitOrder))
					for bi, oi := range ctx.emitOrder {
						batch[bi] = results[next][oi]
					}
					next++
					if len(batch) > 0 && batch[0].Len() == 0 {
						continue
					}
					if err := ctx.emit(ctx.emitNames, batch); err != nil {
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}
			mu.Unlock()
		}
	}

	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return firstErr
	}
	if streaming {
		ctx.streamed.Store(true)
	}

	// Combine stage: the materialization boundary. Each export packs
	// across morsels in morsel order, which equals sequential row order.
	for i := range f.Outs {
		total := 0
		for m := range results {
			total += results[m][i].Len()
		}
		packed := storage.New(results[0][i].Kind(), total)
		for m := range results {
			if err := packed.Append(results[m][i]); err != nil {
				return fmt.Errorf("fragment %d export %d: %w", fid, i, err)
			}
		}
		ctx.setBAT(in, i, packed)
	}
	return nil
}

// streamInfo decides whether a plan can stream: every result column
// (sql.rsColumn) must be computed by the same single mat.morsel
// instruction. It returns that instruction's PC, the per-result-column
// index into its returns, and the result column names — or -1 when the
// plan only materializes (sorts, packed fallbacks, sequential plans).
func streamInfo(plan *mal.Plan) (streamPC int, order []int, names []string) {
	def := make(map[int]*mal.Instr)
	for _, in := range plan.Instrs {
		for _, r := range in.Rets {
			def[r] = in
		}
	}
	var src *mal.Instr
	for _, in := range plan.Instrs {
		if in.Module != "sql" || in.Function != "rsColumn" || len(in.Args) < 3 {
			continue
		}
		nameArg, colArg := in.Args[1], in.Args[2]
		if !nameArg.IsConst() || colArg.IsConst() {
			return -1, nil, nil
		}
		d := def[colArg.Var]
		if d == nil || d.Module != "mat" || d.Function != "morsel" {
			return -1, nil, nil
		}
		if src == nil {
			src = d
		} else if src != d {
			return -1, nil, nil
		}
		idx := -1
		for i, r := range d.Rets {
			if r == colArg.Var {
				idx = i
				break
			}
		}
		if idx < 0 {
			return -1, nil, nil
		}
		order = append(order, idx)
		names = append(names, nameArg.Const.Str)
	}
	if src == nil {
		return -1, nil, nil
	}
	return src.PC, order, names
}
