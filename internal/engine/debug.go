package engine

import (
	"fmt"
	"strings"

	"stethoscope/internal/mal"
	"stethoscope/internal/profiler"
	"stethoscope/internal/storage"
)

// Debugger is the reproduction of MonetDB's "GDB-like MAL debugger for
// runtime inspection" (paper §2) — the tool Stethoscope improves upon.
// It drives a sequential interpretation of a plan one instruction at a
// time with breakpoints by pc or module, and inspects variable contents
// mid-execution. Stethoscope's debug-options window shows the same
// information visually; keeping the textual debugger lets tests and
// users cross-check both.
type Debugger struct {
	eng  *Engine
	ctx  *Context
	plan *mal.Plan
	pc   int
	prof *profiler.Profiler

	breakPCs     map[int]bool
	breakModules map[string]bool
}

// NewDebugger prepares a plan for stepped execution. The optional
// profiler receives events exactly as a normal run would emit them.
func NewDebugger(eng *Engine, plan *mal.Plan, prof *profiler.Profiler) (*Debugger, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if prof != nil {
		prof.Reset()
	}
	ctx, err := eng.newContext(plan)
	if err != nil {
		return nil, err
	}
	return &Debugger{
		eng:          eng,
		ctx:          ctx,
		plan:         plan,
		prof:         prof,
		breakPCs:     map[int]bool{},
		breakModules: map[string]bool{},
	}, nil
}

// PC returns the program counter of the next instruction to execute.
func (d *Debugger) PC() int { return d.pc }

// Done reports whether the plan has run to completion.
func (d *Debugger) Done() bool { return d.pc >= len(d.plan.Instrs) }

// Current returns the next instruction to execute (nil when done).
func (d *Debugger) Current() *mal.Instr {
	if d.Done() {
		return nil
	}
	return d.plan.Instrs[d.pc]
}

// BreakAt sets a breakpoint on a program counter.
func (d *Debugger) BreakAt(pc int) error {
	if pc < 0 || pc >= len(d.plan.Instrs) {
		return fmt.Errorf("engine: breakpoint pc=%d out of range 0..%d", pc, len(d.plan.Instrs)-1)
	}
	d.breakPCs[pc] = true
	return nil
}

// BreakModule breaks on every instruction of a MAL module ("algebra").
func (d *Debugger) BreakModule(module string) { d.breakModules[module] = true }

// ClearBreakpoints removes all breakpoints.
func (d *Debugger) ClearBreakpoints() {
	d.breakPCs = map[int]bool{}
	d.breakModules = map[string]bool{}
}

// Step executes the current instruction and advances. It returns the
// executed instruction; ok is false when the plan had already finished.
func (d *Debugger) Step() (*mal.Instr, bool, error) {
	if d.Done() {
		return nil, false, nil
	}
	in := d.plan.Instrs[d.pc]
	if err := d.eng.exec(d.ctx, in, 0, d.prof); err != nil {
		return in, true, err
	}
	d.pc++
	return in, true, nil
}

// breaksOn reports whether execution should pause before instruction in.
func (d *Debugger) breaksOn(in *mal.Instr) bool {
	return d.breakPCs[in.PC] || d.breakModules[in.Module]
}

// Continue runs until the next breakpoint or the end of the plan. It
// returns the instruction it stopped *before* (nil at plan end). The
// instruction at the initial pc always executes, so repeated Continue
// calls make progress through back-to-back breakpoints.
func (d *Debugger) Continue() (*mal.Instr, error) {
	first := true
	for !d.Done() {
		in := d.plan.Instrs[d.pc]
		if !first && d.breaksOn(in) {
			return in, nil
		}
		first = false
		if _, _, err := d.Step(); err != nil {
			return in, err
		}
	}
	return nil, nil
}

// Inspect describes the current value of a variable: its declared type
// and, for BATs, kind and row count.
func (d *Debugger) Inspect(varID int) (string, error) {
	if varID < 0 || varID >= len(d.ctx.vals) {
		return "", fmt.Errorf("engine: variable %d out of range", varID)
	}
	v := d.ctx.vals[varID]
	name := d.plan.VarName(varID)
	if b, ok := v.Col.(*storage.BAT); ok {
		return fmt.Sprintf("%s:%s = BAT[%s] %d rows", name, d.plan.VarType(varID), b.Kind(), b.Len()), nil
	}
	if v.Nil() {
		return fmt.Sprintf("%s:%s = <unset>", name, d.plan.VarType(varID)), nil
	}
	return fmt.Sprintf("%s:%s = %s", name, d.plan.VarType(varID), v), nil
}

// InspectByName resolves a variable by display name ("X_3").
func (d *Debugger) InspectByName(name string) (string, error) {
	for id, v := range d.plan.Vars {
		if v.Name == name {
			return d.Inspect(id)
		}
	}
	return "", fmt.Errorf("engine: unknown variable %q", name)
}

// Listing renders the plan with a '=>' cursor and '*' breakpoint marks,
// the debugger's "list" view.
func (d *Debugger) Listing() string {
	var b strings.Builder
	for _, in := range d.plan.Instrs {
		cursor := "  "
		if in.PC == d.pc {
			cursor = "=>"
		}
		bp := " "
		if d.breaksOn(in) {
			bp = "*"
		}
		fmt.Fprintf(&b, "%s%s [%3d] %s\n", cursor, bp, in.PC, d.plan.StmtString(in))
	}
	return b.String()
}

// Result returns the exported result after the plan completed.
func (d *Debugger) Result() *Result {
	if !d.Done() {
		return nil
	}
	return d.ctx.final
}
