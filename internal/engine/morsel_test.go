// Engine-level tests of the morsel scheduler (mat.morsel): dynamic
// cursor claiming matches sequential execution, workers observe
// cancellation between morsels, and streamable plans emit completed
// morsels before the run returns.
package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/mal"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
)

// compileMorsel lowers q through the morsel-driven path (fragments +
// mat.morsel) instead of static mitosis.
func compileMorsel(t testing.TB, q string, parts int) *mal.Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	tree, err := algebra.Bind(stmt, testCat)
	if err != nil {
		t.Fatalf("Bind(%q): %v", q, err)
	}
	plan, err := compiler.Compile(tree, q, compiler.Options{Partitions: parts, Morsel: true})
	if err != nil {
		t.Fatalf("Compile(%q, morsel): %v", q, err)
	}
	return plan
}

// TestMorselMatchesSequential runs morsel plans at several worker
// counts and morsel sizes against the sequential lowering.
func TestMorselMatchesSequential(t *testing.T) {
	queries := []string{
		"select l_tax from lineitem where l_partkey=1",
		"select count(*) as n from lineitem, orders where l_orderkey = o_orderkey",
		"select l_returnflag, sum(l_quantity) as s, count(*) as n from lineitem where l_quantity > 10 group by l_returnflag order by l_returnflag",
		"select distinct l_shipmode from lineitem order by l_shipmode",
		"select l_orderkey, l_extendedprice from lineitem order by l_extendedprice desc limit 7",
	}
	eng := New(testCat)
	for _, q := range queries {
		seq, err := eng.Run(compileQ(t, q, 1), Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential: %v", q, err)
		}
		mplan := compileMorsel(t, q, 4)
		for _, workers := range []int{1, 4} {
			for _, morsel := range []int{64, 1 << 20} {
				res, err := eng.Run(mplan, Options{Workers: workers, MorselRows: morsel})
				if err != nil {
					t.Fatalf("%s: workers=%d morsel=%d: %v", q, workers, morsel, err)
				}
				if res.Rows() != seq.Rows() {
					t.Fatalf("%s: workers=%d morsel=%d: rows %d != %d", q, workers, morsel, res.Rows(), seq.Rows())
				}
				for c := range seq.Cols {
					for i := 0; i < seq.Rows(); i++ {
						if !sameCell(res.Cols[c], seq.Cols[c], i) {
							t.Fatalf("%s: workers=%d morsel=%d: col %d row %d differs", q, workers, morsel, c, i)
						}
					}
				}
			}
		}
	}
}

// TestMorselCancelMidScan pins the between-morsels cancellation point:
// cancel fires after the first morsel's rows are emitted, while the
// scan cursor still has hundreds of morsels to hand out, and the run
// must return context.Canceled instead of finishing the scan. The
// companion TestDataflowCancelMidRun covers cancellation between outer
// instructions; this covers cancellation inside one long mat.morsel.
func TestMorselCancelMidScan(t *testing.T) {
	plan := compileMorsel(t, "select l_tax from lineitem where l_quantity > 0", 1)
	eng := New(testCat)
	for _, workers := range []int{1, 4} {
		cctx, cancel := context.WithCancel(context.Background())
		emits := 0
		_, err := eng.RunContext(cctx, plan, Options{
			Workers:    workers,
			MorselRows: 16, // ~375 morsels over the SF 0.001 lineitem
			Emit: func(names []string, cols []*storage.BAT) error {
				emits++
				if emits == 1 {
					cancel()
				}
				return nil
			},
		})
		cancel()
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Under one worker the between-morsels check is the only
		// cancellation point, so the error must name it; under several,
		// the dataflow scheduler's own check may win the race.
		if workers == 1 && !strings.Contains(err.Error(), "between morsels") {
			t.Errorf("workers=1: err = %v, want the between-morsels cancellation point", err)
		}
	}
}

// TestMorselEmitsBeforeReturn is the engine half of the streaming
// contract: a streamable plan hands completed morsels to Emit while the
// run is still executing — strictly before RunContext returns — in
// morsel (= row) order, and the final result still materializes.
func TestMorselEmitsBeforeReturn(t *testing.T) {
	q := "select l_orderkey from lineitem where l_quantity > 10"
	plan := compileMorsel(t, q, 1)
	eng := New(testCat)
	var (
		batches  int
		streamed []int64
		returned bool
	)
	res, err := eng.RunContext(context.Background(), plan, Options{
		Workers:    4,
		MorselRows: 256,
		Emit: func(names []string, cols []*storage.BAT) error {
			if returned {
				t.Error("Emit called after RunContext returned")
			}
			if len(names) != 1 || names[0] != "l_orderkey" {
				t.Errorf("Emit names = %v", names)
			}
			batches++
			for i := 0; i < cols[0].Len(); i++ {
				streamed = append(streamed, cols[0].IntAt(i))
			}
			return nil
		},
	})
	returned = true
	if err != nil {
		t.Fatal(err)
	}
	if batches < 2 {
		t.Fatalf("streamable plan emitted %d batches, want incremental progress (>= 2)", batches)
	}
	if len(streamed) != res.Rows() {
		t.Fatalf("streamed %d rows, final result has %d", len(streamed), res.Rows())
	}
	for i := range streamed {
		if streamed[i] != res.Cols[0].IntAt(i) {
			t.Fatalf("row %d: streamed %d, materialized %d (morsel order broken)", i, streamed[i], res.Cols[0].IntAt(i))
		}
	}
}

// TestMorselEmitErrorAbortsRun: a failing consumer stops the run and
// surfaces the consumer's error.
func TestMorselEmitErrorAbortsRun(t *testing.T) {
	plan := compileMorsel(t, "select l_orderkey from lineitem", 1)
	eng := New(testCat)
	boom := errors.New("consumer full")
	_, err := eng.RunContext(context.Background(), plan, Options{
		Workers:    2,
		MorselRows: 64,
		Emit: func(names []string, cols []*storage.BAT) error {
			return boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the consumer's error", err)
	}
}
