// Package netproto implements the wire protocol between the MonetDB
// server's profiler and the textual Stethoscope (paper §3.2): profiler
// events and dot-file content are streamed over UDP to the listening
// client. One datagram carries one message; dot files are chunked
// line-wise between begin/end markers so the client's monitoring thread
// can "filter the dot file content, generate a new dot file" (§4.2)
// while trace events interleave on the same stream.
package netproto

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"stethoscope/internal/profiler"
)

// MsgKind tags a datagram.
type MsgKind int

// Message kinds.
const (
	MsgEvent      MsgKind = iota // one profiler event line
	MsgDotBegin                  // start of a dot file; payload = plan name
	MsgDotLine                   // one dot file line
	MsgDotEnd                    // end of a dot file
	MsgHello                     // server announcement; payload = server name
	MsgEventBatch                // several event lines, newline-separated
)

var kindTags = map[MsgKind]string{
	MsgEvent:      "EVT",
	MsgDotBegin:   "DOTB",
	MsgDotLine:    "DOTL",
	MsgDotEnd:     "DOTE",
	MsgHello:      "HELO",
	MsgEventBatch: "EVTB",
}

var tagKinds = func() map[string]MsgKind {
	m := map[string]MsgKind{}
	for k, v := range kindTags {
		m[v] = k
	}
	return m
}()

// Msg is one decoded datagram.
type Msg struct {
	Kind    MsgKind
	Payload string
}

// Encode renders the datagram bytes: "TAG payload".
func Encode(m Msg) []byte {
	tag, ok := kindTags[m.Kind]
	if !ok {
		tag = "EVT"
	}
	return []byte(tag + " " + m.Payload)
}

// Decode parses datagram bytes.
func Decode(b []byte) (Msg, error) {
	s := string(b)
	sp := strings.IndexByte(s, ' ')
	tag, payload := s, ""
	if sp >= 0 {
		tag, payload = s[:sp], s[sp+1:]
	}
	kind, ok := tagKinds[tag]
	if !ok {
		return Msg{}, fmt.Errorf("netproto: unknown message tag %q", tag)
	}
	return Msg{Kind: kind, Payload: payload}, nil
}

// UDPStreamer sends profiler events and dot files to one destination.
// It implements profiler.Sink, so it plugs directly into a Profiler.
// Datagram loss is accepted (UDP semantics, as in the paper); send
// errors are recorded, not fatal.
type UDPStreamer struct {
	mu      sync.Mutex
	conn    *net.UDPConn
	dropped int
}

// Dial connects a streamer to addr ("host:port").
func Dial(addr string) (*UDPStreamer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("netproto: %w", err)
	}
	return &UDPStreamer{conn: conn}, nil
}

// Emit implements profiler.Sink.
func (u *UDPStreamer) Emit(e profiler.Event) {
	u.send(Msg{Kind: MsgEvent, Payload: e.Marshal()})
}

// MaxDatagram bounds the payload of one coalesced datagram. It stays
// well under the 65507-byte UDP maximum so the batch plus its tag never
// needs IP fragmentation tuning on loopback or LAN paths.
const MaxDatagram = 60 * 1024

// EmitBatch implements profiler.BatchSink: events are marshaled and
// packed greedily into as few EVTB datagrams as fit under MaxDatagram,
// replacing one syscall per event with one per batch on the hot trace
// path. An EVTB payload is the event lines joined by '\n'; the listener
// transparently splits them back into MsgEvent deliveries.
func (u *UDPStreamer) EmitBatch(evs []profiler.Event) {
	packEvents(evs, func(payload string) {
		u.send(Msg{Kind: MsgEventBatch, Payload: payload})
	})
}

// packEvents marshals events and greedily packs them into payloads of
// at most MaxDatagram bytes, calling emit once per payload.
func packEvents(evs []profiler.Event, emit func(payload string)) {
	var b strings.Builder
	n := 0
	flush := func() {
		if n == 0 {
			return
		}
		emit(b.String())
		b.Reset()
		n = 0
	}
	for _, e := range evs {
		line := e.Marshal()
		if n > 0 && b.Len()+1+len(line) > MaxDatagram {
			flush()
		}
		if n > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(line)
		n++
	}
	flush()
}

// Hello announces the server to the client.
func (u *UDPStreamer) Hello(serverName string) {
	u.send(Msg{Kind: MsgHello, Payload: serverName})
}

// SendDot streams a dot file (the server emits it "before query
// execution begins", §4.2).
func (u *UDPStreamer) SendDot(planName, dotText string) {
	u.send(Msg{Kind: MsgDotBegin, Payload: planName})
	for _, line := range strings.Split(strings.TrimRight(dotText, "\n"), "\n") {
		u.send(Msg{Kind: MsgDotLine, Payload: line})
	}
	u.send(Msg{Kind: MsgDotEnd})
}

func (u *UDPStreamer) send(m Msg) {
	// The write happens outside the mutex: net.UDPConn serializes
	// concurrent writes itself, and holding u.mu across a socket write
	// would stall every other sender on one slow syscall. The lock only
	// guards the dropped counter.
	_, err := u.conn.Write(Encode(m))
	if err != nil {
		u.mu.Lock()
		u.dropped++
		u.mu.Unlock()
	}
}

// Dropped reports how many datagrams failed to send.
func (u *UDPStreamer) Dropped() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.dropped
}

// Close releases the socket.
func (u *UDPStreamer) Close() error { return u.conn.Close() }

// Handler consumes decoded messages with their source address.
type Handler func(from string, m Msg)

// Listener receives datagrams on a UDP socket and dispatches them to a
// handler — the receive loop of the textual Stethoscope. It supports
// traffic from multiple servers simultaneously (§3.2: "can connect to
// multiple MonetDB servers at the same time"); the source address keys
// the per-server demultiplexing.
type Listener struct {
	conn      *net.UDPConn
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup
}

// Listen opens a UDP socket on addr ("127.0.0.1:0" for an ephemeral
// port) and starts the receive loop.
func Listen(addr string, h Handler) (*Listener, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("netproto: %w", err)
	}
	l := &Listener{conn: conn, closed: make(chan struct{})}
	l.wg.Add(1)
	go l.loop(h)
	return l, nil
}

// Addr returns the bound address, for handing to servers.
func (l *Listener) Addr() string { return l.conn.LocalAddr().String() }

func (l *Listener) loop(h Handler) {
	defer l.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			continue
		}
		m, err := Decode(buf[:n])
		if err != nil {
			continue // ignore malformed datagrams
		}
		if m.Kind == MsgEventBatch {
			// Expand coalesced batches so handlers only ever see the
			// per-event protocol.
			for _, line := range strings.Split(m.Payload, "\n") {
				if line != "" {
					h(from.String(), Msg{Kind: MsgEvent, Payload: line})
				}
			}
			continue
		}
		h(from.String(), m)
	}
}

// Close stops the receive loop and releases the socket. It is
// idempotent and safe for concurrent use: a listener may be shut down
// both by a context watcher and by an explicit Close.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.closeErr = l.conn.Close()
	})
	l.wg.Wait()
	return l.closeErr
}
