package netproto

import (
	"strings"
	"sync"
	"testing"
	"time"

	"stethoscope/internal/profiler"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Kind: MsgEvent, Payload: `event=1 status=start pc=0 stmt="x"`},
		{Kind: MsgDotBegin, Payload: "plan1"},
		{Kind: MsgDotLine, Payload: `  n0 [label="bind"];`},
		{Kind: MsgDotEnd},
		{Kind: MsgHello, Payload: "server-a"},
	}
	for _, m := range msgs {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v", m, err)
		}
		if got != m {
			t.Errorf("round trip %+v -> %+v", m, got)
		}
	}
}

func TestDecodeRejectsUnknownTag(t *testing.T) {
	if _, err := Decode([]byte("WHAT is this")); err == nil {
		t.Error("unknown tag accepted")
	}
}

// collector gathers messages with synchronization for test assertions.
type collector struct {
	mu   sync.Mutex
	msgs []Msg
	from []string
}

func (c *collector) handle(from string, m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
	c.from = append(c.from, from)
}

func (c *collector) waitFor(t *testing.T, n int) []Msg {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]Msg(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("timed out waiting for %d messages, have %d", n, len(c.msgs))
	return nil
}

func TestUDPEventStream(t *testing.T) {
	var col collector
	l, err := Listen("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	streamer, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer streamer.Close()

	prof := profiler.New(streamer)
	prof.Begin(0, 1, "algebra", "stmt-a").End(0, 10, 5)
	prof.Begin(1, 2, "sql", "stmt-b").End(0, 20, 6)

	msgs := col.waitFor(t, 4)
	for _, m := range msgs {
		if m.Kind != MsgEvent {
			t.Fatalf("unexpected kind %v", m.Kind)
		}
		if _, err := profiler.UnmarshalEvent(m.Payload); err != nil {
			t.Fatalf("payload unparseable: %v", err)
		}
	}
	if streamer.Dropped() != 0 {
		t.Errorf("dropped = %d", streamer.Dropped())
	}
}

func TestUDPDotTransfer(t *testing.T) {
	var col collector
	l, err := Listen("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	streamer, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer streamer.Close()

	dotText := "digraph g {\n  n0;\n  n1;\n  n0 -> n1;\n}"
	streamer.SendDot("myplan", dotText)

	// begin + 5 lines + end
	msgs := col.waitFor(t, 7)
	if msgs[0].Kind != MsgDotBegin || msgs[0].Payload != "myplan" {
		t.Fatalf("first = %+v", msgs[0])
	}
	if msgs[len(msgs)-1].Kind != MsgDotEnd {
		t.Fatalf("last = %+v", msgs[len(msgs)-1])
	}
	var lines []string
	for _, m := range msgs[1 : len(msgs)-1] {
		if m.Kind != MsgDotLine {
			t.Fatalf("mid message %+v", m)
		}
		lines = append(lines, m.Payload)
	}
	if strings.Join(lines, "\n") != dotText {
		t.Errorf("reassembled dot:\n%s", strings.Join(lines, "\n"))
	}
}

func TestMultipleServersOneListener(t *testing.T) {
	var col collector
	l, err := Listen("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	s1, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	s1.Hello("server-1")
	s2.Hello("server-2")
	col.waitFor(t, 2)

	col.mu.Lock()
	defer col.mu.Unlock()
	if col.from[0] == col.from[1] {
		t.Error("two servers share a source address")
	}
}

func TestListenerCloseStopsLoop(t *testing.T) {
	var col collector
	l, err := Listen("127.0.0.1:0", col.handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close of conn would error; Close already returned. Sending
	// to the closed socket must not panic the test process.
	if s, err := Dial("127.0.0.1:1"); err == nil {
		s.Emit(profiler.Event{Stmt: "x"})
		s.Close()
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("not-an-address"); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := Listen("not-an-address", func(string, Msg) {}); err == nil {
		t.Error("bad listen address accepted")
	}
}

// TestListenerCloseIdempotent pins the guarantee online monitoring
// relies on: a listener shut down by a context watcher and again by an
// explicit Close (possibly concurrently) must not panic.
func TestListenerCloseIdempotent(t *testing.T) {
	l, err := Listen("127.0.0.1:0", func(string, Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Close()
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
}

func TestEmitBatchCoalescesAndListenerExpands(t *testing.T) {
	var mu sync.Mutex
	var got []profiler.Event
	l, err := Listen("127.0.0.1:0", func(from string, m Msg) {
		if m.Kind != MsgEvent {
			t.Errorf("listener surfaced kind %v; batches must arrive expanded", m.Kind)
			return
		}
		e, err := profiler.UnmarshalEvent(m.Payload)
		if err != nil {
			t.Errorf("bad expanded event: %v", err)
			return
		}
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	batch := make([]profiler.Event, 50)
	for i := range batch {
		batch[i] = profiler.Event{Seq: int64(i), State: profiler.StateDone, PC: i,
			Stmt: `X_5:bat[:oid] := algebra.thetaselect(X_1, "=", 1);`}
	}
	s.EmitBatch(batch)

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(batch) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d batched events", n, len(batch))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, e := range got {
		if e.Seq != int64(i) || e.PC != i {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestPackEventsSplitsOversizedBatches(t *testing.T) {
	big := strings.Repeat("y", 2048)
	evs := make([]profiler.Event, 100)
	for i := range evs {
		evs[i] = profiler.Event{Seq: int64(i), Stmt: big}
	}
	var payloads []string
	packEvents(evs, func(p string) { payloads = append(payloads, p) })
	if len(payloads) < 2 {
		t.Fatalf("expected multiple datagrams, got %d", len(payloads))
	}
	total := 0
	for _, p := range payloads {
		if len(p) > MaxDatagram {
			t.Fatalf("payload of %d bytes exceeds MaxDatagram", len(p))
		}
		for _, line := range strings.Split(p, "\n") {
			e, err := profiler.UnmarshalEvent(line)
			if err != nil {
				t.Fatal(err)
			}
			if e.Seq != int64(total) {
				t.Fatalf("event %d packed out of order (seq %d)", total, e.Seq)
			}
			total++
		}
	}
	if total != len(evs) {
		t.Fatalf("packed %d events, want %d", total, len(evs))
	}
	// The empty batch emits nothing.
	packEvents(nil, func(string) { t.Fatal("empty batch emitted a datagram") })
}
