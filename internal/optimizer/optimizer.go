// Package optimizer implements MAL-plan optimizer passes. In MonetDB, a
// pipeline of optimizers rewrites the MAL program the SQL compiler emits
// (paper §2: "optimizers work on the generated MAL plan to derive an
// optimized MAL plan"). This reproduction ships the passes the demo needs:
// common-subexpression elimination (the compiler's per-column lowering
// duplicates key-expression computations), dead-code elimination, and an
// alias-removal helper. Mitosis/mergetable partitioning is performed at
// lowering time by internal/compiler (Options.Partitions); see DESIGN.md.
package optimizer

import (
	"fmt"
	"strings"

	"stethoscope/internal/mal"
)

// Stats summarizes what a pipeline run changed.
type Stats struct {
	Before  int            // instruction count before
	After   int            // instruction count after
	PerPass map[string]int // instructions removed per pass
}

// Pass is one plan-to-plan rewrite. Passes receive a private clone and
// may mutate it freely; they report how many instructions they removed.
type Pass interface {
	Name() string
	Run(p *mal.Plan) (removed int, err error)
}

// Pipeline is an ordered pass list.
type Pipeline struct {
	Passes []Pass
}

// Default returns the standard pipeline: CSE then dead-code elimination
// (CSE creates dead duplicates that DCE sweeps).
func Default() Pipeline {
	return Pipeline{Passes: []Pass{CSE{}, DeadCode{}}}
}

// Spec names the pipeline canonically, e.g. "cse,deadcode" — the
// plan-cache key component describing which optimizer produced a plan.
func (pl Pipeline) Spec() string {
	names := make([]string, len(pl.Passes))
	for i, p := range pl.Passes {
		names[i] = strings.ToLower(p.Name())
	}
	return strings.Join(names, ",")
}

// Run applies the pipeline to a clone of p and returns the optimized plan.
// The input plan is never mutated so Stethoscope can display both.
func (pl Pipeline) Run(p *mal.Plan) (*mal.Plan, Stats, error) {
	out := p.Clone()
	st := Stats{Before: len(p.Instrs), PerPass: map[string]int{}}
	for _, pass := range pl.Passes {
		n, err := pass.Run(out)
		if err != nil {
			return nil, st, fmt.Errorf("optimizer: pass %s: %w", pass.Name(), err)
		}
		st.PerPass[pass.Name()] += n
		out.Renumber()
		if err := out.Validate(); err != nil {
			return nil, st, fmt.Errorf("optimizer: pass %s broke the plan: %w", pass.Name(), err)
		}
	}
	st.After = len(out.Instrs)
	return out, st, nil
}

// sideEffect reports whether an instruction must be preserved even when
// its results are unused: result-set plumbing, logging, profiling.
func sideEffect(in *mal.Instr) bool {
	switch in.Module {
	case "sql":
		return in.Function != "bind" // bind is a pure catalog read
	case "querylog", "profiler", "language", "transaction":
		return true
	}
	return false
}

// pure reports whether an instruction's results depend only on its
// arguments, making it a CSE candidate. sql.bind is pure within a plan
// (the catalog is immutable during execution).
func pure(in *mal.Instr) bool {
	switch in.Module {
	case "algebra", "batcalc", "group", "aggr", "mat", "calc", "bat":
		return true
	case "sql":
		return in.Function == "bind"
	}
	return false
}

// DeadCode removes side-effect-free instructions whose results are never
// consumed, iterating to a fixpoint.
type DeadCode struct{}

// Name implements Pass.
func (DeadCode) Name() string { return "deadcode" }

// Run implements Pass.
func (DeadCode) Run(p *mal.Plan) (int, error) {
	removed := 0
	for {
		p.Renumber()
		uses := p.Uses()
		keep := p.Instrs[:0]
		n := 0
		for i, in := range p.Instrs {
			if sideEffect(in) || len(uses[i]) > 0 {
				keep = append(keep, in)
				continue
			}
			n++
		}
		if n == 0 {
			break
		}
		removed += n
		p.Instrs = keep
	}
	p.Renumber()
	return removed, nil
}

// CSE rewrites uses of duplicate pure computations to the first
// occurrence. The duplicates become dead and are left for DeadCode.
type CSE struct{}

// Name implements Pass.
func (CSE) Name() string { return "cse" }

// instrKey canonicalizes an instruction's identity for CSE matching.
func instrKey(p *mal.Plan, in *mal.Instr) string {
	var b strings.Builder
	b.WriteString(in.Name())
	for _, a := range in.Args {
		b.WriteByte('|')
		if a.IsConst() {
			b.WriteByte('#')
			b.WriteString(a.Const.Type.String())
			b.WriteByte(':')
			b.WriteString(a.Const.String())
		} else {
			fmt.Fprintf(&b, "v%d", a.Var)
		}
	}
	return b.String()
}

// Run implements Pass.
func (CSE) Run(p *mal.Plan) (int, error) {
	rewrites := 0
	// replacement[v] = canonical variable for v.
	replacement := map[int]int{}
	seen := map[string]*mal.Instr{}
	resolve := func(v int) int {
		for {
			r, ok := replacement[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	for _, in := range p.Instrs {
		// Rewrite args through accumulated replacements first.
		for ai, a := range in.Args {
			if !a.IsConst() {
				if r := resolve(a.Var); r != a.Var {
					in.Args[ai] = mal.VarArg(r)
				}
			}
		}
		if !pure(in) {
			continue
		}
		key := instrKey(p, in)
		if prev, ok := seen[key]; ok && len(prev.Rets) == len(in.Rets) {
			for ri, r := range in.Rets {
				replacement[r] = prev.Rets[ri]
			}
			rewrites++
			continue
		}
		seen[key] = in
	}
	return rewrites, nil
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	var parts []string
	for name, n := range s.PerPass {
		parts = append(parts, fmt.Sprintf("%s:%d", name, n))
	}
	return fmt.Sprintf("optimizer: %d -> %d instructions (%s)", s.Before, s.After, strings.Join(parts, " "))
}
