// Package optimizer implements MAL-plan optimizer passes. In MonetDB, a
// pipeline of optimizers rewrites the MAL program the SQL compiler emits
// (paper §2: "optimizers work on the generated MAL plan to derive an
// optimized MAL plan"). This reproduction ships the passes the demo needs:
// common-subexpression elimination (the compiler's per-column lowering
// duplicates key-expression computations), dead-code elimination, and an
// alias-removal helper. Mitosis/mergetable partitioning is performed at
// lowering time by internal/compiler (Options.Partitions); see DESIGN.md.
package optimizer

import (
	"fmt"
	"strings"

	"stethoscope/internal/mal"
)

// Stats summarizes what a pipeline run changed.
type Stats struct {
	Before  int            // instruction count before
	After   int            // instruction count after
	PerPass map[string]int // instructions removed per pass
}

// Pass is one plan-to-plan rewrite. Passes receive a private clone and
// may mutate it freely; they report how many instructions they removed.
type Pass interface {
	Name() string
	Run(p *mal.Plan) (removed int, err error)
}

// Pipeline is an ordered pass list.
type Pipeline struct {
	Passes []Pass
}

// Default returns the standard pipeline: CSE, then mergetable folding
// (degenerate mitosis fragments the partitioned lowering leaves
// behind), then dead-code elimination (the first two passes create dead
// duplicates that DCE sweeps).
func Default() Pipeline {
	return Pipeline{Passes: []Pass{CSE{}, MatFold{}, DeadCode{}}}
}

// Spec names the pipeline canonically, e.g. "cse,deadcode" — the
// plan-cache key component describing which optimizer produced a plan.
func (pl Pipeline) Spec() string {
	names := make([]string, len(pl.Passes))
	for i, p := range pl.Passes {
		names[i] = strings.ToLower(p.Name())
	}
	return strings.Join(names, ",")
}

// Run applies the pipeline to a clone of p and returns the optimized plan.
// The input plan is never mutated so Stethoscope can display both.
func (pl Pipeline) Run(p *mal.Plan) (*mal.Plan, Stats, error) {
	out := p.Clone()
	st := Stats{Before: len(p.Instrs), PerPass: map[string]int{}}
	for _, pass := range pl.Passes {
		n, err := pass.Run(out)
		if err != nil {
			return nil, st, fmt.Errorf("optimizer: pass %s: %w", pass.Name(), err)
		}
		st.PerPass[pass.Name()] += n
		out.Renumber()
		if err := out.Validate(); err != nil {
			return nil, st, fmt.Errorf("optimizer: pass %s broke the plan: %w", pass.Name(), err)
		}
	}
	st.After = len(out.Instrs)
	return out, st, nil
}

// sideEffect reports whether an instruction must be preserved even when
// its results are unused: result-set plumbing, logging, profiling.
func sideEffect(in *mal.Instr) bool {
	switch in.Module {
	case "sql":
		return in.Function != "bind" // bind is a pure catalog read
	case "querylog", "profiler", "language", "transaction":
		return true
	}
	return false
}

// pure reports whether an instruction's results depend only on its
// arguments, making it a CSE candidate. sql.bind is pure within a plan
// (the catalog is immutable during execution).
func pure(in *mal.Instr) bool {
	switch in.Module {
	case "algebra", "batcalc", "group", "aggr", "mat", "calc", "bat":
		return true
	case "sql":
		return in.Function == "bind"
	}
	return false
}

// DeadCode removes side-effect-free instructions whose results are never
// consumed, iterating to a fixpoint.
type DeadCode struct{}

// Name implements Pass.
func (DeadCode) Name() string { return "deadcode" }

// Run implements Pass.
func (DeadCode) Run(p *mal.Plan) (int, error) {
	removed := 0
	for {
		p.Renumber()
		uses := p.Uses()
		keep := p.Instrs[:0]
		n := 0
		for i, in := range p.Instrs {
			if sideEffect(in) || len(uses[i]) > 0 {
				keep = append(keep, in)
				continue
			}
			n++
		}
		if n == 0 {
			break
		}
		removed += n
		p.Instrs = keep
	}
	p.Renumber()
	return removed, nil
}

// CSE rewrites uses of duplicate pure computations to the first
// occurrence. The duplicates become dead and are left for DeadCode.
type CSE struct{}

// Name implements Pass.
func (CSE) Name() string { return "cse" }

// instrKey canonicalizes an instruction's identity for CSE matching.
func instrKey(p *mal.Plan, in *mal.Instr) string {
	var b strings.Builder
	b.WriteString(in.Name())
	for _, a := range in.Args {
		b.WriteByte('|')
		if a.IsConst() {
			b.WriteByte('#')
			b.WriteString(a.Const.Type.String())
			b.WriteByte(':')
			b.WriteString(a.Const.String())
		} else {
			fmt.Fprintf(&b, "v%d", a.Var)
		}
	}
	return b.String()
}

// Run implements Pass.
func (CSE) Run(p *mal.Plan) (int, error) {
	rewrites := 0
	// replacement[v] = canonical variable for v.
	replacement := map[int]int{}
	seen := map[string]*mal.Instr{}
	resolve := func(v int) int {
		for {
			r, ok := replacement[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	for _, in := range p.Instrs {
		// Rewrite args through accumulated replacements first.
		for ai, a := range in.Args {
			if !a.IsConst() {
				if r := resolve(a.Var); r != a.Var {
					in.Args[ai] = mal.VarArg(r)
				}
			}
		}
		if !pure(in) {
			continue
		}
		key := instrKey(p, in)
		if prev, ok := seen[key]; ok && len(prev.Rets) == len(in.Rets) {
			for ri, r := range in.Rets {
				replacement[r] = prev.Rets[ri]
			}
			rewrites++
			continue
		}
		seen[key] = in
	}
	return rewrites, nil
}

// MatFold removes degenerate mitosis fragments: a mat.pack of a single
// piece is the piece, mat.slice(v, 0, 1) is v, and a mat.pack that
// reassembles every slice of one source in order is the source itself
// (the compiler's partitioned lowering emits that shape for scans no
// operator ever consumed partition-wise). Two join/sort-mitosis cases
// fold degenerate single-slice plans back to the packed kernels: an
// algebra.hashbuild probed by exactly one algebra.hashprobe rewrites
// that probe to the one-shot algebra.join (the build handle dies), and
// a mat.kmerge over a single run is the identity permutation, so
// algebra.leftjoin projections through it collapse to their column
// argument (the compiler only projects a kmerge permutation over the
// pack of the very runs it merges, so the lengths agree by
// construction). Uses are rewritten to the surviving variable; the dead
// instructions are left for DeadCode.
type MatFold struct{}

// Name implements Pass.
func (MatFold) Name() string { return "matfold" }

// constInt extracts an integer constant argument, reporting whether arg
// i exists and is one.
func constInt(in *mal.Instr, i int) (int64, bool) {
	if i >= len(in.Args) || !in.Args[i].IsConst() {
		return 0, false
	}
	c := in.Args[i].Const
	if c.Type != mal.TInt && c.Type != mal.TOID {
		return 0, false
	}
	return c.Int, true
}

// Run implements Pass.
func (MatFold) Run(p *mal.Plan) (int, error) {
	folded := 0
	replacement := map[int]int{}
	resolve := func(v int) int {
		for {
			r, ok := replacement[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	// def maps a variable to its defining instruction, built as we walk
	// (single assignment: definitions precede uses).
	def := map[int]*mal.Instr{}
	// identityPerm marks kmerge results known to be the identity
	// permutation (single-run merges); projections through them fold.
	identityPerm := map[int]bool{}
	for _, in := range p.Instrs {
		for ai, a := range in.Args {
			if !a.IsConst() {
				if r := resolve(a.Var); r != a.Var {
					in.Args[ai] = mal.VarArg(r)
				}
			}
		}
		switch in.Name() {
		case "mat.kmerge":
			// kmerge(nkeys, asc..., one column per key) over a single
			// run: nothing to merge, the permutation is the identity.
			// Only the projections folded through it count as removals;
			// the kmerge itself dies via DeadCode once they do.
			if nk, ok := constInt(in, 0); ok && len(in.Rets) == 1 &&
				nk >= 1 && int64(len(in.Args)) == 1+2*nk {
				identityPerm[in.Rets[0]] = true
			}
		case "algebra.leftjoin":
			if len(in.Rets) == 1 && len(in.Args) == 2 &&
				!in.Args[0].IsConst() && !in.Args[1].IsConst() &&
				identityPerm[in.Args[0].Var] {
				replacement[in.Rets[0]] = in.Args[1].Var
				folded++
			}
		}
		switch in.Name() {
		case "mat.slice":
			// slice(v, 0, 1) is the whole column.
			if pArg, ok := constInt(in, 1); ok && pArg == 0 {
				if kArg, ok := constInt(in, 2); ok && kArg == 1 && len(in.Rets) == 1 && !in.Args[0].IsConst() {
					replacement[in.Rets[0]] = in.Args[0].Var
					folded++
				}
			}
		case "mat.pack":
			if len(in.Rets) != 1 {
				break
			}
			if len(in.Args) == 1 && !in.Args[0].IsConst() {
				// pack of one piece is the piece.
				replacement[in.Rets[0]] = in.Args[0].Var
				folded++
				break
			}
			// pack(slice(v,0,k), ..., slice(v,k-1,k)) is v.
			src := -1
			ok := true
			for i, a := range in.Args {
				if a.IsConst() {
					ok = false
					break
				}
				d := def[a.Var]
				if d == nil || d.Name() != "mat.slice" || d.Args[0].IsConst() {
					ok = false
					break
				}
				pArg, pOK := constInt(d, 1)
				kArg, kOK := constInt(d, 2)
				if !pOK || !kOK || pArg != int64(i) || kArg != int64(len(in.Args)) {
					ok = false
					break
				}
				if src == -1 {
					src = d.Args[0].Var
				} else if d.Args[0].Var != src {
					ok = false
					break
				}
			}
			if ok && src >= 0 {
				replacement[in.Rets[0]] = src
				folded++
			}
		}
		for _, r := range in.Rets {
			def[r] = in
		}
	}

	// Degenerate-join pass: an algebra.hashbuild consumed by exactly one
	// algebra.hashprobe is a plain hash join split in two for no benefit
	// (a single-slice probe side). Rewrite the probe to the one-shot
	// algebra.join over the probe and build-key columns; the unused
	// build handle is left for DeadCode.
	useCount := map[int]int{}
	probes := map[int][]*mal.Instr{} // hash var -> consuming hashprobes
	for _, in := range p.Instrs {
		for _, a := range in.Args {
			if a.IsConst() {
				continue
			}
			useCount[a.Var]++
			if in.Name() == "algebra.hashprobe" && len(in.Args) == 2 && a.Var == in.Args[1].Var {
				probes[a.Var] = append(probes[a.Var], in)
			}
		}
	}
	for _, in := range p.Instrs {
		if in.Name() != "algebra.hashbuild" || len(in.Rets) != 1 || len(in.Args) != 1 || in.Args[0].IsConst() {
			continue
		}
		h := in.Rets[0]
		if useCount[h] != 1 || len(probes[h]) != 1 {
			continue
		}
		probe := probes[h][0]
		probe.Function = "join"
		probe.Args = []mal.Arg{probe.Args[0], mal.VarArg(in.Args[0].Var)}
		folded++
	}
	return folded, nil
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	var parts []string
	for name, n := range s.PerPass {
		parts = append(parts, fmt.Sprintf("%s:%d", name, n))
	}
	return fmt.Sprintf("optimizer: %d -> %d instructions (%s)", s.Before, s.After, strings.Join(parts, " "))
}
