package optimizer

import (
	"strings"
	"testing"

	"stethoscope/internal/mal"
)

// buildDupPlan creates a plan with a duplicated pure computation and one
// dead instruction.
func buildDupPlan() *mal.Plan {
	p := mal.NewPlan("test")
	bind1 := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	bind2 := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	sel1 := p.Emit1("algebra", "thetaselect", mal.TBATOID,
		mal.VarArg(bind1), mal.ConstOf(mal.Str("=")), mal.ConstOf(mal.Int64(1)))
	sel2 := p.Emit1("algebra", "thetaselect", mal.TBATOID,
		mal.VarArg(bind2), mal.ConstOf(mal.Str("=")), mal.ConstOf(mal.Int64(1)))
	// dead: never used, pure
	p.Emit1("batcalc", "add", mal.TBATInt, mal.VarArg(bind1), mal.ConstOf(mal.Int64(7)))
	out1 := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(sel1), mal.VarArg(bind1))
	out2 := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(sel2), mal.VarArg(bind2))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(2)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("a")), mal.VarArg(out1))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("b")), mal.VarArg(out2))
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	return p
}

func TestDeadCodeRemovesUnusedPure(t *testing.T) {
	p := buildDupPlan()
	out, st, err := Pipeline{Passes: []Pass{DeadCode{}}}.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerPass["deadcode"] != 1 {
		t.Errorf("deadcode removed %d, want 1", st.PerPass["deadcode"])
	}
	for _, in := range out.Instrs {
		if in.Name() == "batcalc.add" {
			t.Error("dead batcalc.add survived")
		}
	}
	// Input untouched.
	if len(p.Instrs) != st.Before {
		t.Error("input plan was mutated")
	}
}

func TestDeadCodeKeepsSideEffects(t *testing.T) {
	p := mal.NewPlan("")
	p.Emit0("querylog", "define", mal.ConstOf(mal.Str("q")))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(0)))
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	out, _, err := Pipeline{Passes: []Pass{DeadCode{}}}.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Instrs) != 3 {
		t.Errorf("side-effecting instructions removed: %d left", len(out.Instrs))
	}
}

func TestCSEDeduplicatesChains(t *testing.T) {
	p := buildDupPlan()
	out, st, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// bind2 and sel2 fold into bind1/sel1; leftjoins then become
	// identical too, so one of them folds as well.
	binds, sels, ljs := 0, 0, 0
	for _, in := range out.Instrs {
		switch in.Name() {
		case "sql.bind":
			binds++
		case "algebra.thetaselect":
			sels++
		case "algebra.leftjoin":
			ljs++
		}
	}
	if binds != 1 || sels != 1 || ljs != 1 {
		t.Errorf("after CSE: binds=%d sels=%d leftjoins=%d, want 1/1/1\n%s", binds, sels, ljs, out)
	}
	if st.After >= st.Before {
		t.Errorf("stats: %d -> %d", st.Before, st.After)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both result columns still reference a live variable.
	for _, in := range out.Instrs {
		if in.Name() == "sql.rsColumn" {
			if in.Args[2].IsConst() {
				t.Error("rsColumn lost its column variable")
			}
		}
	}
}

func TestCSEDoesNotMergeDifferentConstants(t *testing.T) {
	p := mal.NewPlan("")
	bind := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	a := p.Emit1("algebra", "thetaselect", mal.TBATOID, mal.VarArg(bind), mal.ConstOf(mal.Str("=")), mal.ConstOf(mal.Int64(1)))
	b := p.Emit1("algebra", "thetaselect", mal.TBATOID, mal.VarArg(bind), mal.ConstOf(mal.Str("=")), mal.ConstOf(mal.Int64(2)))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(2)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("a")), mal.VarArg(a))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("b")), mal.VarArg(b))
	out, _, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	sels := 0
	for _, in := range out.Instrs {
		if in.Name() == "algebra.thetaselect" {
			sels++
		}
	}
	if sels != 2 {
		t.Errorf("distinct selections merged: %d", sels)
	}
}

func TestCSETypeTaggedConstants(t *testing.T) {
	// int 1 and oid 1 print identically; the CSE key must distinguish
	// them by type.
	p := mal.NewPlan("")
	bind := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	a := p.Emit1("batcalc", "add", mal.TBATInt, mal.VarArg(bind), mal.ConstOf(mal.Int64(1)))
	b := p.Emit1("batcalc", "add", mal.TBATInt, mal.VarArg(bind), mal.ConstOf(mal.OID(1)))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(2)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("a")), mal.VarArg(a))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("b")), mal.VarArg(b))
	out, _, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	adds := 0
	for _, in := range out.Instrs {
		if in.Name() == "batcalc.add" {
			adds++
		}
	}
	if adds != 2 {
		t.Errorf("type-distinct constants merged: adds=%d", adds)
	}
}

func TestCSEMultiReturn(t *testing.T) {
	p := mal.NewPlan("")
	bind := p.Emit1("sql", "bind", mal.TBATStr,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	g1 := p.NewVar(mal.TBATOID)
	e1 := p.NewVar(mal.TBATOID)
	p.Emit("group", "subgroup", []int{g1, e1}, mal.VarArg(bind))
	g2 := p.NewVar(mal.TBATOID)
	e2 := p.NewVar(mal.TBATOID)
	p.Emit("group", "subgroup", []int{g2, e2}, mal.VarArg(bind))
	s1 := p.Emit1("aggr", "subcount", mal.TBATInt, mal.VarArg(g1), mal.VarArg(e1))
	s2 := p.Emit1("aggr", "subcount", mal.TBATInt, mal.VarArg(g2), mal.VarArg(e2))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(2)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("a")), mal.VarArg(s1))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("b")), mal.VarArg(s2))
	out, _, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	groups, counts := 0, 0
	for _, in := range out.Instrs {
		switch in.Name() {
		case "group.subgroup":
			groups++
		case "aggr.subcount":
			counts++
		}
	}
	if groups != 1 || counts != 1 {
		t.Errorf("multi-return CSE: groups=%d counts=%d, want 1/1\n%s", groups, counts, out)
	}
}

func TestStatsString(t *testing.T) {
	p := buildDupPlan()
	_, st, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	s := st.String()
	if !strings.Contains(s, "->") {
		t.Errorf("stats string = %q", s)
	}
}

func TestPipelineEmptyPlan(t *testing.T) {
	p := mal.NewPlan("")
	out, st, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Instrs) != 0 || st.Before != 0 || st.After != 0 {
		t.Error("empty plan should pass through")
	}
}

// buildSlicePackPlan emits the degenerate mitosis fragment: every
// column sliced k ways and immediately packed back together.
func buildSlicePackPlan(k int) *mal.Plan {
	p := mal.NewPlan("test")
	bind := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	args := make([]mal.Arg, 0, k)
	for i := 0; i < k; i++ {
		sv := p.Emit1("mat", "slice", mal.TBATInt,
			mal.VarArg(bind), mal.ConstOf(mal.Int64(int64(i))), mal.ConstOf(mal.Int64(int64(k))))
		args = append(args, mal.VarArg(sv))
	}
	packed := p.Emit1("mat", "pack", mal.TBATInt, args...)
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(1)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("c")), mal.VarArg(packed))
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	return p
}

func TestMatFoldCollapsesFullSlicePack(t *testing.T) {
	out, st, err := Default().Run(buildSlicePackPlan(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.PerPass["matfold"] == 0 {
		t.Error("matfold folded nothing")
	}
	for _, in := range out.Instrs {
		if in.Module == "mat" {
			t.Errorf("degenerate %s survived:\n%s", in.Name(), out)
		}
	}
	// The result column now references the bind directly.
	for _, in := range out.Instrs {
		if in.Name() == "sql.rsColumn" && in.Args[2].IsConst() {
			t.Error("rsColumn lost its column variable")
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatFoldSingletonPackAndUnitSlice(t *testing.T) {
	p := mal.NewPlan("test")
	bind := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	sv := p.Emit1("mat", "slice", mal.TBATInt,
		mal.VarArg(bind), mal.ConstOf(mal.Int64(0)), mal.ConstOf(mal.Int64(1)))
	packed := p.Emit1("mat", "pack", mal.TBATInt, mal.VarArg(sv))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(1)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("c")), mal.VarArg(packed))
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	out, st, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerPass["matfold"] != 2 {
		t.Errorf("matfold folded %d, want 2 (unit slice + singleton pack)", st.PerPass["matfold"])
	}
	for _, in := range out.Instrs {
		if in.Module == "mat" {
			t.Errorf("degenerate %s survived", in.Name())
		}
	}
}

func TestMatFoldKeepsPartialPacks(t *testing.T) {
	// A pack of slices 0 and 1 of 4 reassembles only half the relation:
	// it must NOT fold.
	p := mal.NewPlan("test")
	bind := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	s0 := p.Emit1("mat", "slice", mal.TBATInt,
		mal.VarArg(bind), mal.ConstOf(mal.Int64(0)), mal.ConstOf(mal.Int64(4)))
	s1 := p.Emit1("mat", "slice", mal.TBATInt,
		mal.VarArg(bind), mal.ConstOf(mal.Int64(1)), mal.ConstOf(mal.Int64(4)))
	packed := p.Emit1("mat", "pack", mal.TBATInt, mal.VarArg(s0), mal.VarArg(s1))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(1)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("c")), mal.VarArg(packed))
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	out, st, err := Pipeline{Passes: []Pass{MatFold{}, DeadCode{}}}.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerPass["matfold"] != 0 {
		t.Errorf("matfold folded %d, want 0", st.PerPass["matfold"])
	}
	packs := 0
	for _, in := range out.Instrs {
		if in.Name() == "mat.pack" {
			packs++
		}
	}
	if packs != 1 {
		t.Errorf("partial pack removed: packs=%d", packs)
	}
}

func TestMatFoldBareScanQueryEndToEnd(t *testing.T) {
	// The compiler's partitioned lowering of a bare scan (slice k ways,
	// pack straight back) must optimize to the unpartitioned plan shape.
	out, _, err := Default().Run(buildSlicePackPlan(8))
	if err != nil {
		t.Fatal(err)
	}
	// bind + resultSet + rsColumn + exportResult.
	if got := len(out.Instrs); got != 4 {
		t.Errorf("optimized bare-scan plan has %d instructions, want 4", got)
	}
}

// TestMatFoldSingleProbeHashJoin: a hashbuild consumed by exactly one
// hashprobe is a degenerate single-slice partitioned join and must fold
// back to the packed algebra.join kernel.
func TestMatFoldSingleProbeHashJoin(t *testing.T) {
	p := mal.NewPlan("test")
	lk := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("l")), mal.ConstOf(mal.Str("k")), mal.ConstOf(mal.Int64(0)))
	rk := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("r")), mal.ConstOf(mal.Str("k")), mal.ConstOf(mal.Int64(0)))
	h := p.Emit1("algebra", "hashbuild", mal.THash, mal.VarArg(rk))
	lo, ro := p.NewVar(mal.TBATOID), p.NewVar(mal.TBATOID)
	p.Emit("algebra", "hashprobe", []int{lo, ro}, mal.VarArg(lk), mal.VarArg(h))
	lp := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(lo), mal.VarArg(lk))
	rp := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(ro), mal.VarArg(rk))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(2)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("a")), mal.VarArg(lp))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("b")), mal.VarArg(rp))
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	p.Renumber()
	out, st, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerPass["matfold"] == 0 {
		t.Error("matfold folded nothing")
	}
	joins, hashes := 0, 0
	for _, in := range out.Instrs {
		switch in.Name() {
		case "algebra.join":
			joins++
			if in.Args[0].Var != lk || in.Args[1].Var != rk {
				t.Errorf("folded join args = %v, want (lk, rk)", in.Args)
			}
		case "algebra.hashbuild", "algebra.hashprobe":
			hashes++
		}
	}
	if joins != 1 || hashes != 0 {
		t.Errorf("joins=%d hash instrs=%d, want 1/0:\n%s", joins, hashes, out)
	}
}

// TestMatFoldKeepsMultiProbeHashJoin: a build probed by several slices
// is the real partitioned join and must survive untouched.
func TestMatFoldKeepsMultiProbeHashJoin(t *testing.T) {
	p := mal.NewPlan("test")
	lk := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("l")), mal.ConstOf(mal.Str("k")), mal.ConstOf(mal.Int64(0)))
	rk := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("r")), mal.ConstOf(mal.Str("k")), mal.ConstOf(mal.Int64(0)))
	h := p.Emit1("algebra", "hashbuild", mal.THash, mal.VarArg(rk))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(2)))
	for s := 0; s < 2; s++ {
		sl := p.Emit1("mat", "slice", mal.TBATInt,
			mal.VarArg(lk), mal.ConstOf(mal.Int64(int64(s))), mal.ConstOf(mal.Int64(2)))
		lo, ro := p.NewVar(mal.TBATOID), p.NewVar(mal.TBATOID)
		p.Emit("algebra", "hashprobe", []int{lo, ro}, mal.VarArg(sl), mal.VarArg(h))
		lp := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(lo), mal.VarArg(sl))
		rp := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(ro), mal.VarArg(rk))
		p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("a")), mal.VarArg(lp))
		p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("b")), mal.VarArg(rp))
	}
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	p.Renumber()
	out, _, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	builds, probes := 0, 0
	for _, in := range out.Instrs {
		switch in.Name() {
		case "algebra.hashbuild":
			builds++
		case "algebra.hashprobe":
			probes++
		}
	}
	if builds != 1 || probes != 2 {
		t.Errorf("builds=%d probes=%d, want 1/2:\n%s", builds, probes, out)
	}
}

// TestMatFoldIdentityKMerge: a kmerge over a single sorted run is the
// identity permutation; projections through it must collapse so the
// degenerate single-slice sort optimizes back to the packed sort shape.
func TestMatFoldIdentityKMerge(t *testing.T) {
	p := mal.NewPlan("test")
	col := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	perm := p.Emit1("algebra", "sortTail", mal.TBATOID, mal.VarArg(col), mal.ConstOf(mal.Bool(true)))
	sorted := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(perm), mal.VarArg(col))
	mperm := p.Emit1("mat", "kmerge", mal.TBATOID,
		mal.ConstOf(mal.Int64(1)), mal.ConstOf(mal.Bool(true)), mal.VarArg(sorted))
	packed := p.Emit1("mat", "pack", mal.TBATInt, mal.VarArg(sorted))
	merged := p.Emit1("algebra", "leftjoin", mal.TBATInt, mal.VarArg(mperm), mal.VarArg(packed))
	rs := p.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(1)))
	p.Emit0("sql", "rsColumn", mal.VarArg(rs), mal.ConstOf(mal.Str("c")), mal.VarArg(merged))
	p.Emit0("sql", "exportResult", mal.VarArg(rs))
	p.Renumber()
	out, st, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerPass["matfold"] == 0 {
		t.Error("matfold folded nothing")
	}
	for _, in := range out.Instrs {
		if in.Name() == "mat.kmerge" || in.Name() == "mat.pack" {
			t.Errorf("degenerate %s survived:\n%s", in.Name(), out)
		}
	}
	// The result column must now be the per-run sorted column itself.
	for _, in := range out.Instrs {
		if in.Name() == "sql.rsColumn" && in.Args[2].Var != sorted {
			t.Errorf("rsColumn references %d, want the sorted column %d", in.Args[2].Var, sorted)
		}
	}
}
