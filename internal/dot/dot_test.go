package dot

import (
	"strings"
	"testing"

	"stethoscope/internal/mal"
)

func samplePlan(t testing.TB) *mal.Plan {
	t.Helper()
	p := mal.NewPlan("select l_tax from lineitem where l_partkey=1")
	col := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("lineitem")), mal.ConstOf(mal.Str("l_partkey")), mal.ConstOf(mal.Int64(0)))
	sel := p.Emit1("algebra", "thetaselect", mal.TBATOID,
		mal.VarArg(col), mal.ConstOf(mal.Str("=")), mal.ConstOf(mal.Int64(1)))
	tax := p.Emit1("sql", "bind", mal.TBATFlt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("lineitem")), mal.ConstOf(mal.Str("l_tax")), mal.ConstOf(mal.Int64(0)))
	p.Emit1("algebra", "leftjoin", mal.TBATFlt, mal.VarArg(sel), mal.VarArg(tax))
	return p
}

func TestExportStructure(t *testing.T) {
	p := samplePlan(t)
	g := Export(p)
	if len(g.Nodes) != len(p.Instrs) {
		t.Fatalf("nodes = %d, want %d", len(g.Nodes), len(p.Instrs))
	}
	// pc=N <-> node nN with the stmt as label (paper §3.3).
	for _, in := range p.Instrs {
		n, ok := g.Node(NodeID(in.PC))
		if !ok {
			t.Fatalf("missing node n%d", in.PC)
		}
		if n.Label() != p.StmtString(in) {
			t.Errorf("n%d label = %q, want %q", in.PC, n.Label(), p.StmtString(in))
		}
	}
	// Edges: n0->n1, n1->n3, n2->n3.
	wantEdges := map[string]bool{"n0>n1": true, "n1>n3": true, "n2>n3": true}
	if len(g.Edges) != len(wantEdges) {
		t.Fatalf("edges = %d, want %d", len(g.Edges), len(wantEdges))
	}
	for _, e := range g.Edges {
		if !wantEdges[e.From+">"+e.To] {
			t.Errorf("unexpected edge %s -> %s", e.From, e.To)
		}
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	g := Export(samplePlan(t))
	text := g.Marshal()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse:\n%s\n%v", text, err)
	}
	if len(back.Nodes) != len(g.Nodes) || len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			len(back.Nodes), len(g.Nodes), len(back.Edges), len(g.Edges))
	}
	for _, n := range g.Nodes {
		bn, ok := back.Node(n.ID)
		if !ok {
			t.Fatalf("round trip lost node %s", n.ID)
		}
		if bn.Label() != n.Label() {
			t.Errorf("node %s label %q != %q", n.ID, bn.Label(), n.Label())
		}
	}
}

func TestParseHandwrittenDot(t *testing.T) {
	src := `
	// a comment
	strict digraph "my plan" {
	  graph [rankdir=TB];
	  node [shape=box, color=gray]; # defaults
	  n0 [label="X_0 := sql.bind(\"sys\");"];
	  n1 [label="select"]
	  n0 -> n1 -> n2 [style=dashed];
	  /* block
	     comment */
	  n3;
	}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "my plan" {
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(g.Nodes))
	}
	n0, _ := g.Node("n0")
	if !strings.Contains(n0.Label(), `sql.bind("sys")`) {
		t.Errorf("n0 label = %q", n0.Label())
	}
	// Defaults applied to explicit node statements.
	if n0.Attrs["shape"] != "box" || n0.Attrs["color"] != "gray" {
		t.Errorf("defaults not applied: %v", n0.Attrs)
	}
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %d, want 2 (chain expansion)", len(g.Edges))
	}
	if g.Edges[1].Attrs["style"] != "dashed" {
		t.Errorf("chain edge attrs = %v", g.Edges[1].Attrs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"graph-without-keyword { }",
		"digraph {",
		`digraph { n0 [label="unterminated] }`,
		`digraph { n0 [key] }`,
		"digraph { /* unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRootsAndAdjacency(t *testing.T) {
	g := Export(samplePlan(t))
	roots := g.Roots()
	// n0 (bind l_partkey) and n2 (bind l_tax) have no deps.
	if len(roots) != 2 || roots[0] != "n0" || roots[1] != "n2" {
		t.Errorf("roots = %v", roots)
	}
	adj := g.Adjacency()
	if len(adj["n1"]) != 1 || adj["n1"][0] != "n3" {
		t.Errorf("adj[n1] = %v", adj["n1"])
	}
	if len(adj["n3"]) != 0 {
		t.Errorf("adj[n3] = %v", adj["n3"])
	}
}

func TestPCOfNodeID(t *testing.T) {
	for pc := 0; pc < 1500; pc += 37 {
		got, ok := PCOf(NodeID(pc))
		if !ok || got != pc {
			t.Fatalf("PCOf(NodeID(%d)) = %d, %v", pc, got, ok)
		}
	}
	for _, bad := range []string{"", "x3", "n", "n3x", "3"} {
		if _, ok := PCOf(bad); ok {
			t.Errorf("PCOf(%q) accepted", bad)
		}
	}
}

func TestQuoteID(t *testing.T) {
	cases := map[string]string{
		"n0":         "n0",
		"":           `""`,
		"has space":  `"has space"`,
		`q"uote`:     `"q\"uote"`,
		"line\nfeed": `"line\nfeed"`,
	}
	for in, want := range cases {
		if got := quoteID(in); got != want {
			t.Errorf("quoteID(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestLargeGraphRoundTrip(t *testing.T) {
	g := NewGraph("big")
	for i := 0; i < 1200; i++ {
		g.AddNode(NodeID(i), map[string]string{"label": "instr"})
		if i > 0 {
			g.AddEdge(NodeID(i-1), NodeID(i), nil)
		}
	}
	back, err := Parse(g.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != 1200 || len(back.Edges) != 1199 {
		t.Errorf("round trip: %d nodes, %d edges", len(back.Nodes), len(back.Edges))
	}
}

func BenchmarkDotMarshal(b *testing.B) {
	g := NewGraph("bench")
	for i := 0; i < 1000; i++ {
		g.AddNode(NodeID(i), map[string]string{"label": "X_1 := algebra.thetaselect(X_0, \"=\", 1);"})
		if i > 0 {
			g.AddEdge(NodeID(i-1), NodeID(i), nil)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Marshal()
	}
}

func BenchmarkDotParse(b *testing.B) {
	g := NewGraph("bench")
	for i := 0; i < 1000; i++ {
		g.AddNode(NodeID(i), map[string]string{"label": "instr"})
		if i > 0 {
			g.AddEdge(NodeID(i-1), NodeID(i), nil)
		}
	}
	text := g.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}
