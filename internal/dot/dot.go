// Package dot implements the dot-file stage of Stethoscope's pipeline.
// The MonetDB server "generates a dot file representation for each MAL
// plan before execution begins" (paper §3); Stethoscope parses it back
// into a graph structure. This package provides both directions: Export
// writes a MAL plan as a dot digraph (node nN per instruction, labelled
// with the statement text, edges along dataflow dependencies — the §3.3
// mapping), and Parse reads the DOT-language subset those files use.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"stethoscope/internal/mal"
)

// Node is one graph vertex. ID follows the paper's convention: node "n3"
// corresponds to the instruction with pc=3.
type Node struct {
	ID    string
	Attrs map[string]string
}

// Label returns the node's label attribute (the MAL statement).
func (n *Node) Label() string { return n.Attrs["label"] }

// Edge is a directed edge between node IDs.
type Edge struct {
	From, To string
	Attrs    map[string]string
}

// Graph is a parsed or constructed dot digraph.
type Graph struct {
	Name  string
	Nodes []*Node
	Edges []*Edge

	byID map[string]*Node
}

// NewGraph returns an empty digraph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byID: map[string]*Node{}}
}

// AddNode inserts (or updates) a node and returns it.
func (g *Graph) AddNode(id string, attrs map[string]string) *Node {
	if n, ok := g.byID[id]; ok {
		for k, v := range attrs {
			n.Attrs[k] = v
		}
		return n
	}
	n := &Node{ID: id, Attrs: map[string]string{}}
	for k, v := range attrs {
		n.Attrs[k] = v
	}
	g.Nodes = append(g.Nodes, n)
	g.byID[id] = n
	return n
}

// AddEdge inserts a directed edge, implicitly declaring endpoints.
func (g *Graph) AddEdge(from, to string, attrs map[string]string) *Edge {
	g.AddNode(from, nil)
	g.AddNode(to, nil)
	e := &Edge{From: from, To: to, Attrs: map[string]string{}}
	for k, v := range attrs {
		e.Attrs[k] = v
	}
	g.Edges = append(g.Edges, e)
	return e
}

// Node returns the node with the given ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.byID[id]
	return n, ok
}

// Adjacency returns successor lists keyed by node ID.
func (g *Graph) Adjacency() map[string][]string {
	adj := make(map[string][]string, len(g.Nodes))
	for _, n := range g.Nodes {
		adj[n.ID] = nil
	}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	return adj
}

// Roots returns node IDs with no incoming edges, sorted for determinism.
// The paper's workflow keeps "the root node of this graph structure ...
// to traverse the graph at a later stage".
func (g *Graph) Roots() []string {
	indeg := map[string]int{}
	for _, n := range g.Nodes {
		indeg[n.ID] = 0
	}
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	var roots []string
	for id, d := range indeg {
		if d == 0 {
			roots = append(roots, id)
		}
	}
	sort.Strings(roots)
	return roots
}

// Export renders a MAL plan as a dot digraph: one box node per
// instruction labelled with its statement, one edge per dataflow
// dependency.
func Export(p *mal.Plan) *Graph {
	g := NewGraph("malplan")
	for _, in := range p.Instrs {
		g.AddNode(fmt.Sprintf("n%d", in.PC), map[string]string{
			"label": p.StmtString(in),
			"shape": "box",
		})
	}
	for pc, ds := range p.Deps() {
		for _, d := range ds {
			g.AddEdge(fmt.Sprintf("n%d", d), fmt.Sprintf("n%d", pc), nil)
		}
	}
	return g
}

// Marshal renders the graph in DOT syntax.
func (g *Graph) Marshal() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", quoteID(g.Name))
	b.WriteString("  node [shape=box];\n")
	for _, n := range g.Nodes {
		b.WriteString("  ")
		b.WriteString(quoteID(n.ID))
		writeAttrs(&b, n.Attrs)
		b.WriteString(";\n")
	}
	for _, e := range g.Edges {
		b.WriteString("  ")
		b.WriteString(quoteID(e.From))
		b.WriteString(" -> ")
		b.WriteString(quoteID(e.To))
		writeAttrs(&b, e.Attrs)
		b.WriteString(";\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func writeAttrs(b *strings.Builder, attrs map[string]string) {
	if len(attrs) == 0 {
		return
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString(" [")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(quoteID(attrs[k]))
	}
	b.WriteString("]")
}

// quoteID quotes a DOT identifier unless it is a bare word.
func quoteID(s string) string {
	if s == "" {
		return `""`
	}
	bare := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			bare = false
			break
		}
	}
	if bare {
		return s
	}
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// PCOf maps a node ID in the paper's "nN" convention back to a program
// counter; ok is false for non-conforming IDs.
func PCOf(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'n' {
		return 0, false
	}
	pc := 0
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		pc = pc*10 + int(c-'0')
	}
	return pc, true
}

// NodeID renders a program counter in the "nN" convention.
func NodeID(pc int) string { return fmt.Sprintf("n%d", pc) }
