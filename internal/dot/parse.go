package dot

import (
	"fmt"
	"strings"
)

// Parse reads the DOT-language subset Stethoscope's dot files use:
//
//	digraph name {
//	  node [default=attrs];        // defaults applied to later nodes
//	  n0 [label="...", shape=box];
//	  n0 -> n1 [style=dashed];
//	}
//
// Comments (//, /* */, #) are skipped. Edge chains (a -> b -> c) are
// expanded. Unquoted identifiers, quoted strings with escapes, and
// multi-statement lines separated by ';' are supported.
func Parse(input string) (*Graph, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &dotParser{toks: toks}
	return p.parse()
}

type dotToken struct {
	text   string
	quoted bool
}

func lex(input string) ([]dotToken, error) {
	var toks []dotToken
	i, n := 0, len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '/':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("dot: unterminated block comment")
			}
			i += end + 4
		case c == '"':
			var b strings.Builder
			i++
			closed := false
			for i < n {
				if input[i] == '\\' && i+1 < n {
					switch input[i+1] {
					case 'n':
						b.WriteByte('\n')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						b.WriteByte('\\')
						b.WriteByte(input[i+1])
					}
					i += 2
					continue
				}
				if input[i] == '"' {
					closed = true
					i++
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("dot: unterminated string")
			}
			toks = append(toks, dotToken{text: b.String(), quoted: true})
		case c == '-' && i+1 < n && input[i+1] == '>':
			toks = append(toks, dotToken{text: "->"})
			i += 2
		case strings.ContainsRune("{}[];,=", rune(c)):
			toks = append(toks, dotToken{text: string(c)})
			i++
		default:
			start := i
			for i < n && !strings.ContainsRune(" \t\n\r{}[];,=\"", rune(input[i])) &&
				!(input[i] == '-' && i+1 < n && input[i+1] == '>') {
				i++
			}
			if i == start {
				return nil, fmt.Errorf("dot: illegal character %q", c)
			}
			toks = append(toks, dotToken{text: input[start:i]})
		}
	}
	return toks, nil
}

type dotParser struct {
	toks []dotToken
	pos  int
}

func (p *dotParser) cur() (dotToken, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return dotToken{}, false
}

func (p *dotParser) accept(text string) bool {
	if t, ok := p.cur(); ok && !t.quoted && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *dotParser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t, ok := p.cur()
	if !ok {
		return fmt.Errorf("dot: expected %q at end of input", text)
	}
	return fmt.Errorf("dot: expected %q, found %q", text, t.text)
}

func (p *dotParser) ident() (string, error) {
	t, ok := p.cur()
	if !ok {
		return "", fmt.Errorf("dot: unexpected end of input")
	}
	if !t.quoted && strings.ContainsAny(t.text, "{}[];,=") {
		return "", fmt.Errorf("dot: expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *dotParser) parse() (*Graph, error) {
	// Header: [strict] digraph [name] {
	p.accept("strict")
	if !p.accept("digraph") && !p.accept("graph") {
		return nil, fmt.Errorf("dot: input does not start with digraph")
	}
	name := ""
	if t, ok := p.cur(); ok && t.text != "{" {
		var err error
		name, err = p.ident()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	g := NewGraph(name)
	nodeDefaults := map[string]string{}

	for {
		if p.accept("}") {
			break
		}
		if _, ok := p.cur(); !ok {
			return nil, fmt.Errorf("dot: missing closing brace")
		}
		if p.accept(";") {
			continue
		}
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		// graph-level attribute: key = value
		if p.accept("=") {
			if _, err := p.ident(); err != nil {
				return nil, err
			}
			continue
		}
		switch id {
		case "node", "edge", "graph":
			attrs, err := p.attrList()
			if err != nil {
				return nil, err
			}
			if id == "node" {
				for k, v := range attrs {
					nodeDefaults[k] = v
				}
			}
			continue
		}
		// Edge chain?
		if p.acceptArrow() {
			from := id
			for {
				to, err := p.ident()
				if err != nil {
					return nil, err
				}
				attrs := map[string]string{}
				if t, ok := p.cur(); ok && t.text == "[" && !t.quoted {
					attrs, err = p.attrList()
					if err != nil {
						return nil, err
					}
				}
				g.AddEdge(from, to, attrs)
				if !p.acceptArrow() {
					break
				}
				from = to
			}
			continue
		}
		// Node statement.
		attrs := map[string]string{}
		for k, v := range nodeDefaults {
			attrs[k] = v
		}
		if t, ok := p.cur(); ok && t.text == "[" && !t.quoted {
			extra, err := p.attrList()
			if err != nil {
				return nil, err
			}
			for k, v := range extra {
				attrs[k] = v
			}
		}
		g.AddNode(id, attrs)
	}
	return g, nil
}

func (p *dotParser) acceptArrow() bool { return p.accept("->") }

func (p *dotParser) attrList() (map[string]string, error) {
	attrs := map[string]string{}
	if err := p.expect("["); err != nil {
		return nil, err
	}
	for {
		if p.accept("]") {
			return attrs, nil
		}
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.ident()
		if err != nil {
			return nil, err
		}
		attrs[key] = val
		p.accept(",")
		p.accept(";")
	}
}
