// Package profiler reproduces the MAL profiler: the MonetDB kernel
// component that emits one "start" and one "done" event per executed MAL
// instruction (paper §3.3), carrying OS-level measurements (cpu time,
// memory, IO counts) alongside the statement text. Events flow to
// pluggable sinks: an in-memory ring buffer (the online mode's sampling
// buffer), trace files for offline analysis, and UDP streams to the
// textual Stethoscope.
package profiler

import (
	"fmt"
	"strconv"
	"strings"
)

// State is the instruction lifecycle state carried on an event.
type State int

// Lifecycle states. The paper's coloring maps start -> RED, done -> GREEN.
const (
	StateStart State = iota
	StateDone
)

// String returns the trace spelling ("start" / "done").
func (s State) String() string {
	if s == StateDone {
		return "done"
	}
	return "start"
}

// ParseState parses the trace spelling.
func ParseState(s string) (State, error) {
	switch s {
	case "start":
		return StateStart, nil
	case "done":
		return StateDone, nil
	}
	return StateStart, fmt.Errorf("profiler: unknown state %q", s)
}

// Event is one profiler record. Field names follow the paper's trace
// description: "event" is the sequence index used to key the trace store,
// "pc" maps to dot node nN, and "stmt" maps to the dot label (§3.3).
type Event struct {
	Seq    int64  // event: monotonically increasing per profiler
	State  State  // status: start or done
	PC     int    // pc: program counter of the instruction
	Thread int    // thread: worker that executed the instruction
	ClkUs  int64  // clk: microseconds since query start
	DurUs  int64  // usec: instruction execution time (done events)
	RSSKB  int64  // rss: estimated resident set, KiB
	Reads  int64  // reads: input tuples consumed
	Writes int64  // writes: output tuples produced
	Stmt   string // stmt: MAL statement text
}

// Marshal renders the event as one trace line:
//
//	event=3 status=done pc=1 thread=2 clk=120 usec=45 rss=4096 reads=100 writes=10 stmt="X_1 := ...;"
//
// The format is the reproduction's stand-in for the MonetDB profiler's
// stream records (Fig. 3): same fields, line-oriented, parseable.
func (e Event) Marshal() string {
	var b strings.Builder
	fmt.Fprintf(&b, "event=%d status=%s pc=%d thread=%d clk=%d usec=%d rss=%d reads=%d writes=%d stmt=%s",
		e.Seq, e.State, e.PC, e.Thread, e.ClkUs, e.DurUs, e.RSSKB, e.Reads, e.Writes,
		strconv.Quote(e.Stmt))
	return b.String()
}

// UnmarshalEvent parses a line produced by Marshal. Unknown keys are
// ignored so the format can grow.
func UnmarshalEvent(line string) (Event, error) {
	var e Event
	rest := strings.TrimSpace(line)
	if rest == "" {
		return e, fmt.Errorf("profiler: empty trace line")
	}
	seen := map[string]bool{}
	for len(rest) > 0 {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return e, fmt.Errorf("profiler: malformed trace line near %q", rest)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		var val string
		if strings.HasPrefix(rest, `"`) {
			unq, n, err := unquotePrefix(rest)
			if err != nil {
				return e, fmt.Errorf("profiler: bad quoted value for %s: %w", key, err)
			}
			val = unq
			rest = strings.TrimLeft(rest[n:], " ")
			if err := setField(&e, key, val, true); err != nil {
				return e, err
			}
			seen[key] = true
			continue
		}
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			val, rest = rest, ""
		} else {
			val, rest = rest[:sp], strings.TrimLeft(rest[sp:], " ")
		}
		if err := setField(&e, key, val, false); err != nil {
			return e, err
		}
		seen[key] = true
	}
	for _, req := range []string{"event", "status", "pc"} {
		if !seen[req] {
			return e, fmt.Errorf("profiler: trace line missing %s field", req)
		}
	}
	return e, nil
}

func setField(e *Event, key, val string, quoted bool) error {
	num := func() (int64, error) {
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("profiler: bad %s value %q", key, val)
		}
		return n, nil
	}
	switch key {
	case "event":
		n, err := num()
		if err != nil {
			return err
		}
		e.Seq = n
	case "status":
		st, err := ParseState(val)
		if err != nil {
			return err
		}
		e.State = st
	case "pc":
		n, err := num()
		if err != nil {
			return err
		}
		e.PC = int(n)
	case "thread":
		n, err := num()
		if err != nil {
			return err
		}
		e.Thread = int(n)
	case "clk":
		n, err := num()
		if err != nil {
			return err
		}
		e.ClkUs = n
	case "usec":
		n, err := num()
		if err != nil {
			return err
		}
		e.DurUs = n
	case "rss":
		n, err := num()
		if err != nil {
			return err
		}
		e.RSSKB = n
	case "reads":
		n, err := num()
		if err != nil {
			return err
		}
		e.Reads = n
	case "writes":
		n, err := num()
		if err != nil {
			return err
		}
		e.Writes = n
	case "stmt":
		if !quoted {
			return fmt.Errorf("profiler: stmt value must be quoted")
		}
		e.Stmt = val
	}
	return nil
}

// unquotePrefix unquotes the leading Go-quoted string of s and returns
// the value plus the number of input bytes consumed.
func unquotePrefix(s string) (string, int, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", 0, fmt.Errorf("not quoted")
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", 0, err
			}
			return unq, i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("unterminated quote")
}
