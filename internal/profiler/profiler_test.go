package profiler

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEventMarshalRoundTrip(t *testing.T) {
	e := Event{
		Seq: 12, State: StateDone, PC: 3, Thread: 2,
		ClkUs: 1200, DurUs: 345, RSSKB: 4096, Reads: 100, Writes: 50,
		Stmt: `X_5:bat[:oid] := algebra.thetaselect(X_1, "=", 1);`,
	}
	line := e.Marshal()
	got, err := UnmarshalEvent(line)
	if err != nil {
		t.Fatalf("Unmarshal(%q): %v", line, err)
	}
	if got != e {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, e)
	}
}

func TestEventMarshalQuickProperty(t *testing.T) {
	f := func(seq int64, pc, thread uint16, dur int64, stmt string) bool {
		e := Event{
			Seq: seq, State: StateStart, PC: int(pc), Thread: int(thread),
			DurUs: dur, Stmt: stmt,
		}
		got, err := UnmarshalEvent(e.Marshal())
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"",
		"event=1",                   // missing status, pc
		"event=x status=start pc=1", // bad number
		"event=1 status=limbo pc=1", // bad state
		"event=1 status=start pc=1 stmt=unquoted",
		`event=1 status=start pc=1 stmt="unterminated`,
		"garbage",
	}
	for _, line := range bad {
		if _, err := UnmarshalEvent(line); err == nil {
			t.Errorf("UnmarshalEvent(%q) succeeded, want error", line)
		}
	}
}

func TestUnmarshalIgnoresUnknownKeys(t *testing.T) {
	got, err := UnmarshalEvent(`event=1 status=done pc=2 future=42 stmt="x"`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || got.PC != 2 || got.Stmt != "x" {
		t.Errorf("got %+v", got)
	}
}

func TestProfilerBeginEndSequence(t *testing.T) {
	sink := &SliceSink{}
	p := New(sink)
	clock := time.Unix(1000, 0)
	p.SetClock(func() time.Time { return clock })

	sp := p.Begin(0, 1, "algebra", "X_0 := algebra.select(...)")
	clock = clock.Add(5 * time.Millisecond)
	sp.End(128, 1000, 10)

	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].State != StateStart || evs[1].State != StateDone {
		t.Errorf("states = %v %v", evs[0].State, evs[1].State)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Errorf("seqs = %d %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].DurUs != 5000 {
		t.Errorf("dur = %d us, want 5000", evs[1].DurUs)
	}
	if evs[1].Reads != 1000 || evs[1].Writes != 10 || evs[1].RSSKB != 128 {
		t.Errorf("accounting = %+v", evs[1])
	}
}

func TestProfilerReset(t *testing.T) {
	sink := &SliceSink{}
	p := New(sink)
	p.Begin(0, 0, "m", "s").End(0, 0, 0)
	p.Reset()
	p.Begin(1, 0, "m", "s").End(0, 0, 0)
	evs := sink.Events()
	if evs[2].Seq != 0 {
		t.Errorf("post-reset seq = %d", evs[2].Seq)
	}
}

func TestFilterStates(t *testing.T) {
	sink := &SliceSink{}
	p := New(sink)
	p.SetFilter(Filter{States: []State{StateDone}})
	p.Begin(0, 0, "algebra", "s").End(0, 0, 0)
	evs := sink.Events()
	if len(evs) != 1 || evs[0].State != StateDone {
		t.Errorf("filtered events = %+v", evs)
	}
}

func TestFilterModules(t *testing.T) {
	sink := &SliceSink{}
	p := New(sink)
	p.SetFilter(Filter{Modules: []string{"algebra"}})
	p.Begin(0, 0, "algebra", "a").End(0, 0, 0)
	p.Begin(1, 0, "sql", "b").End(0, 0, 0)
	if got := len(sink.Events()); got != 2 {
		t.Errorf("module filter kept %d events, want 2", got)
	}
}

func TestFilterMinDuration(t *testing.T) {
	sink := &SliceSink{}
	p := New(sink)
	clock := time.Unix(0, 0)
	p.SetClock(func() time.Time { return clock })
	p.SetFilter(Filter{MinDurUs: 1000})
	// Fast instruction: start passes, done dropped.
	sp := p.Begin(0, 0, "m", "fast")
	sp.End(0, 0, 0)
	// Slow instruction: both pass.
	sp = p.Begin(1, 0, "m", "slow")
	clock = clock.Add(2 * time.Millisecond)
	sp.End(0, 0, 0)
	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for _, e := range evs {
		if e.State == StateDone && e.Stmt == "fast" {
			t.Error("fast done event not filtered")
		}
	}
}

func TestFilterPCs(t *testing.T) {
	f := Filter{PCs: []int{2, 4}}
	if f.Pass(Event{PC: 3}, "") {
		t.Error("pc 3 passed filter {2,4}")
	}
	if !f.Pass(Event{PC: 4}, "") {
		t.Error("pc 4 blocked by filter {2,4}")
	}
}

func TestRingBufferWrap(t *testing.T) {
	r := NewRingBuffer(3)
	for i := int64(0); i < 5; i++ {
		r.Emit(Event{Seq: i})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	if snap[0].Seq != 2 || snap[2].Seq != 4 {
		t.Errorf("snapshot = %v", snap)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRingBufferPartial(t *testing.T) {
	r := NewRingBuffer(10)
	r.Emit(Event{Seq: 1})
	r.Emit(Event{Seq: 2})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if NewRingBuffer(0).Len() != 0 {
		t.Error("zero-size ring should clamp to 1")
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	s.Emit(Event{Seq: 1, State: StateStart, PC: 0, Stmt: "a"})
	s.Emit(Event{Seq: 2, State: StateDone, PC: 0, Stmt: "a"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, ln := range lines {
		if _, err := UnmarshalEvent(ln); err != nil {
			t.Errorf("line %q unparseable: %v", ln, err)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	sink := &SliceSink{}
	p := New(sink)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				p.Begin(i, w, "m", "s").End(0, 0, 0)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	evs := sink.Events()
	if len(evs) != 1600 {
		t.Fatalf("events = %d, want 1600", len(evs))
	}
	// Sequence numbers must be unique.
	seen := map[int64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// recordingBatchSink copies every delivered batch and counts deliveries.
type recordingBatchSink struct {
	mu      sync.Mutex
	events  []Event
	batches int
}

func (s *recordingBatchSink) EmitBatch(evs []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, evs...)
	s.batches++
}

func (s *recordingBatchSink) snapshot() ([]Event, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...), s.batches
}

func TestBatcherDeliversOnSize(t *testing.T) {
	sink := &recordingBatchSink{}
	b := NewBatcher(sink, 4, 0)
	defer b.Close()
	for i := 0; i < 10; i++ {
		b.Emit(Event{Seq: int64(i)})
	}
	evs, batches := sink.snapshot()
	if len(evs) != 8 || batches != 2 {
		t.Fatalf("delivered %d events in %d batches, want 8 in 2", len(evs), batches)
	}
	if b.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", b.Pending())
	}
	b.Flush()
	evs, batches = sink.snapshot()
	if len(evs) != 10 || batches != 3 {
		t.Fatalf("after flush: %d events in %d batches", len(evs), batches)
	}
	// Order preserved.
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestBatcherCloseDeliversTail(t *testing.T) {
	sink := &recordingBatchSink{}
	b := NewBatcher(sink, 100, 0)
	b.Emit(Event{Seq: 7})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	evs, _ := sink.snapshot()
	if len(evs) != 1 || evs[0].Seq != 7 {
		t.Fatalf("tail not delivered: %v", evs)
	}
}

func TestBatcherPeriodicFlush(t *testing.T) {
	sink := &recordingBatchSink{}
	b := NewBatcher(sink, 1<<20, time.Millisecond)
	defer b.Close()
	b.Emit(Event{Seq: 1})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if evs, _ := sink.snapshot(); len(evs) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic flush never delivered the event")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherConcurrentEmitters(t *testing.T) {
	sink := &recordingBatchSink{}
	b := NewBatcher(sink, 16, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Emit(Event{Seq: int64(w*100 + i)})
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	evs, _ := sink.snapshot()
	if len(evs) != 800 {
		t.Fatalf("events = %d, want 800", len(evs))
	}
	seen := map[int64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestRingBufferEmitBatch(t *testing.T) {
	r := NewRingBuffer(4)
	batch := make([]Event, 10)
	for i := range batch {
		batch[i] = Event{Seq: int64(i)}
	}
	r.EmitBatch(batch)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.Seq != int64(6+i) {
			t.Fatalf("ring[%d].Seq = %d, want %d (oldest-first tail)", i, e.Seq, 6+i)
		}
	}
	// Mixing batch and single emits keeps rotation consistent.
	r.Emit(Event{Seq: 10})
	snap = r.Snapshot()
	if snap[len(snap)-1].Seq != 10 {
		t.Fatalf("tail after single emit = %d", snap[len(snap)-1].Seq)
	}
}

func TestWriterSinkEmitBatch(t *testing.T) {
	var sb strings.Builder
	s := NewWriterSink(&sb)
	s.EmitBatch([]Event{{Seq: 0, PC: 1}, {Seq: 1, PC: 2}})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, l := range lines {
		e, err := UnmarshalEvent(l)
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != int64(i) {
			t.Fatalf("line %d has seq %d", i, e.Seq)
		}
	}
}

// TestBatcherTimerRaceLossless is the regression test for the lazy
// flush deadline: a single emitter races the interval flusher and a
// hostile concurrent Flush caller at an interval short enough that the
// deadline re-arms thousands of times. No event may be dropped or
// duplicated, and order must be preserved — under -race this also
// proves the Emit/Flush/Close paths share no unsynchronized state.
func TestBatcherTimerRaceLossless(t *testing.T) {
	const total = 5000
	sink := &recordingBatchSink{}
	b := NewBatcher(sink, 8, 50*time.Microsecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // hostile flusher
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Flush()
			}
		}
	}()
	for i := 0; i < total; i++ {
		b.Emit(Event{Seq: int64(i)})
		if i%97 == 0 {
			time.Sleep(60 * time.Microsecond) // let the deadline expire mid-stream
		}
	}
	close(stop)
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	evs, _ := sink.snapshot()
	if len(evs) != total {
		t.Fatalf("delivered %d events, want %d (dropped or duplicated)", len(evs), total)
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d: order broken or event duplicated", i, e.Seq)
		}
	}
}

// TestBatcherNoSpuriousEarlyFlush pins the fixed behavior itself: after
// a deadline-triggered delivery, a fresh event must not be flushed
// before its own interval elapses (the old timer Reset race delivered
// it immediately via the stale tick). An early delivery only fails the
// test when the clock confirms the interval had not elapsed, so a
// descheduled goroutine on a loaded machine cannot turn a legitimate
// deadline flush into a false alarm.
func TestBatcherNoSpuriousEarlyFlush(t *testing.T) {
	const interval = 250 * time.Millisecond
	sink := &recordingBatchSink{}
	b := NewBatcher(sink, 1<<20, interval)
	defer b.Close()
	// First event: wait out its deadline flush — the exact state the
	// old implementation left a stale timer tick behind in.
	b.Emit(Event{Seq: 0})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if evs, _ := sink.snapshot(); len(evs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	// Second event immediately after: it must still be pending while
	// its own interval has provably not elapsed.
	emitted := time.Now()
	b.Emit(Event{Seq: 1})
	time.Sleep(10 * time.Millisecond)
	evs, _ := sink.snapshot()
	if elapsed := time.Since(emitted); len(evs) != 1 && elapsed < interval {
		t.Fatalf("event flushed after %v, %v before its deadline (spurious flush)", elapsed, interval-elapsed)
	}
}
