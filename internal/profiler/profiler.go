package profiler

import (
	"bufio"
	"io"
	"sync"
	"time"
)

// Filter selects which events a profiler emits. The paper: "The profiler
// accepts filter options set through Stethoscope, which enables it to
// profile only a subset of event types." A zero Filter passes everything.
type Filter struct {
	// States restricts to the listed states when non-empty.
	States []State
	// Modules restricts to instructions of the listed MAL modules when
	// non-empty (matched against the "module." prefix of the stmt).
	Modules []string
	// MinDurUs drops done events faster than this threshold; start events
	// are unaffected (their duration is unknown yet).
	MinDurUs int64
	// PCs restricts to specific program counters when non-empty.
	PCs []int
}

// Pass reports whether the event passes the filter. module is the
// instruction's MAL module (empty when unknown, which passes).
func (f Filter) Pass(e Event, module string) bool {
	if len(f.States) > 0 {
		ok := false
		for _, s := range f.States {
			if e.State == s {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Modules) > 0 && module != "" {
		ok := false
		for _, m := range f.Modules {
			if m == module {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.MinDurUs > 0 && e.State == StateDone && e.DurUs < f.MinDurUs {
		return false
	}
	if len(f.PCs) > 0 {
		ok := false
		for _, pc := range f.PCs {
			if e.PC == pc {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Sink consumes profiler events.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Profiler instruments a MAL execution: the engine calls Begin/End around
// every instruction and the profiler fans filtered events out to its
// sinks. It is safe for concurrent use by the dataflow scheduler's
// workers.
type Profiler struct {
	mu     sync.Mutex
	seq    int64
	start  time.Time
	filter Filter
	sinks  []Sink
	// now allows tests to control the clock.
	now func() time.Time
}

// New returns a profiler emitting to the given sinks.
func New(sinks ...Sink) *Profiler {
	return &Profiler{start: time.Now(), now: time.Now, sinks: sinks}
}

// SetFilter replaces the event filter (Stethoscope's filter-options
// window drives this).
func (p *Profiler) SetFilter(f Filter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.filter = f
}

// AddSink attaches an additional sink.
func (p *Profiler) AddSink(s Sink) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sinks = append(p.sinks, s)
}

// Reset restarts the clock and sequence numbering for a new query.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq = 0
	p.start = p.now()
}

// SetClock overrides the time source (tests).
func (p *Profiler) SetClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
	p.start = now()
}

// Span tracks one instruction execution between Begin and End.
type Span struct {
	p       *Profiler
	pc      int
	thread  int
	stmt    string
	module  string
	started time.Time
}

// Begin emits the start event for an instruction and returns a span to
// close with End.
func (p *Profiler) Begin(pc, thread int, module, stmt string) *Span {
	p.mu.Lock()
	started := p.now()
	e := Event{
		Seq:    p.seq,
		State:  StateStart,
		PC:     pc,
		Thread: thread,
		ClkUs:  started.Sub(p.start).Microseconds(),
		Stmt:   stmt,
	}
	p.seq++
	p.emitLocked(e, module)
	p.mu.Unlock()
	return &Span{p: p, pc: pc, thread: thread, stmt: stmt, module: module, started: started}
}

// End emits the done event with the measured duration and the supplied
// resource accounting.
func (s *Span) End(rssKB, reads, writes int64) {
	p := s.p
	p.mu.Lock()
	nowT := p.now()
	e := Event{
		Seq:    p.seq,
		State:  StateDone,
		PC:     s.pc,
		Thread: s.thread,
		ClkUs:  nowT.Sub(p.start).Microseconds(),
		DurUs:  nowT.Sub(s.started).Microseconds(),
		RSSKB:  rssKB,
		Reads:  reads,
		Writes: writes,
		Stmt:   s.stmt,
	}
	p.seq++
	p.emitLocked(e, s.module)
	p.mu.Unlock()
}

func (p *Profiler) emitLocked(e Event, module string) {
	if !p.filter.Pass(e, module) {
		return
	}
	for _, s := range p.sinks {
		s.Emit(e)
	}
}

// RingBuffer is a bounded in-memory sink: the online mode's sampling
// buffer (paper §4.2: "as the trace file grows in size, its content is
// sampled in a buffer"). When full, the oldest events are dropped.
type RingBuffer struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRingBuffer returns a ring holding up to n events.
func NewRingBuffer(n int) *RingBuffer {
	if n < 1 {
		n = 1
	}
	return &RingBuffer{buf: make([]Event, n)}
}

// Emit implements Sink.
func (r *RingBuffer) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Snapshot returns the buffered events oldest-first.
func (r *RingBuffer) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports how many events are buffered.
func (r *RingBuffer) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// WriterSink writes marshaled events, one per line, to an io.Writer —
// the trace-file sink used by offline analysis. Flush before reading the
// file back.
type WriterSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{w: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteString(e.Marshal())
	s.w.WriteByte('\n')
}

// Flush drains buffered output.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// SliceSink accumulates events in memory (tests and small traces).
type SliceSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *SliceSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Events returns a copy of the accumulated events.
func (s *SliceSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
