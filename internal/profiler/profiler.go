package profiler

import (
	"bufio"
	"io"
	"strings"
	"sync"
	"time"

	"stethoscope/internal/metrics"
)

// Filter selects which events a profiler emits. The paper: "The profiler
// accepts filter options set through Stethoscope, which enables it to
// profile only a subset of event types." A zero Filter passes everything.
type Filter struct {
	// States restricts to the listed states when non-empty.
	States []State
	// Modules restricts to instructions of the listed MAL modules when
	// non-empty (matched against the "module." prefix of the stmt).
	Modules []string
	// MinDurUs drops done events faster than this threshold; start events
	// are unaffected (their duration is unknown yet).
	MinDurUs int64
	// PCs restricts to specific program counters when non-empty.
	PCs []int
}

// IsZero reports whether the filter passes everything.
func (f Filter) IsZero() bool {
	return len(f.States) == 0 && len(f.Modules) == 0 && f.MinDurUs == 0 && len(f.PCs) == 0
}

// Pass reports whether the event passes the filter. module is the
// instruction's MAL module (empty when unknown, which passes).
func (f Filter) Pass(e Event, module string) bool {
	if len(f.States) > 0 {
		ok := false
		for _, s := range f.States {
			if e.State == s {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Modules) > 0 && module != "" {
		ok := false
		for _, m := range f.Modules {
			if m == module {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.MinDurUs > 0 && e.State == StateDone && e.DurUs < f.MinDurUs {
		return false
	}
	if len(f.PCs) > 0 {
		ok := false
		for _, pc := range f.PCs {
			if e.PC == pc {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Sink consumes profiler events.
type Sink interface {
	Emit(Event)
}

// ModuleOf extracts the MAL module of a statement text ("" when it has
// no module-qualified call), e.g. "algebra" for
// `X_5:bat[:oid] := algebra.thetaselect(X_1, "=", 1);`.
func ModuleOf(stmt string) string {
	s := stmt
	if i := strings.Index(s, ":="); i >= 0 {
		s = strings.TrimSpace(s[i+2:])
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return strings.TrimSpace(s[:i])
	}
	return ""
}

// filteredSink applies a Filter in front of one sink, deriving the
// module from the statement text.
type filteredSink struct {
	f    Filter
	next Sink
}

// Emit implements Sink.
func (s filteredSink) Emit(e Event) {
	if s.f.Pass(e, ModuleOf(e.Stmt)) {
		s.next.Emit(e)
	}
}

// FilterSink scopes a filter to a single sink of a multi-sink
// profiler: the wrapped sink sees only passing events while sibling
// sinks (durable history, counters) see the full stream. A zero filter
// returns the sink unwrapped.
func FilterSink(f Filter, next Sink) Sink {
	if f.IsZero() {
		return next
	}
	return filteredSink{f: f, next: next}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Profiler instruments a MAL execution: the engine calls Begin/End around
// every instruction and the profiler fans filtered events out to its
// sinks. It is safe for concurrent use by the dataflow scheduler's
// workers.
type Profiler struct {
	mu     sync.Mutex
	seq    int64
	start  time.Time
	filter Filter
	sinks  []Sink
	// now allows tests to control the clock.
	now func() time.Time
}

// New returns a profiler emitting to the given sinks.
func New(sinks ...Sink) *Profiler {
	return &Profiler{start: time.Now(), now: time.Now, sinks: sinks}
}

// SetFilter replaces the event filter (Stethoscope's filter-options
// window drives this).
func (p *Profiler) SetFilter(f Filter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.filter = f
}

// AddSink attaches an additional sink.
func (p *Profiler) AddSink(s Sink) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sinks = append(p.sinks, s)
}

// Reset restarts the clock and sequence numbering for a new query.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq = 0
	p.start = p.now()
}

// SetClock overrides the time source (tests).
func (p *Profiler) SetClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
	p.start = now()
}

// Span tracks one instruction execution between Begin and End. It is a
// value, not a handle: the engine brackets millions of instructions per
// second, and a heap-allocated span per instruction would dominate the
// hot path's allocation profile.
type Span struct {
	p       *Profiler
	pc      int
	thread  int
	stmt    string
	module  string
	started time.Time
}

// Begin emits the start event for an instruction and returns a span to
// close with End.
func (p *Profiler) Begin(pc, thread int, module, stmt string) Span {
	p.mu.Lock()
	started := p.now()
	e := Event{
		Seq:    p.seq,
		State:  StateStart,
		PC:     pc,
		Thread: thread,
		ClkUs:  started.Sub(p.start).Microseconds(),
		Stmt:   stmt,
	}
	p.seq++
	p.emitLocked(e, module)
	p.mu.Unlock()
	return Span{p: p, pc: pc, thread: thread, stmt: stmt, module: module, started: started}
}

// End emits the done event with the measured duration and the supplied
// resource accounting.
func (s Span) End(rssKB, reads, writes int64) {
	p := s.p
	p.mu.Lock()
	nowT := p.now()
	e := Event{
		Seq:    p.seq,
		State:  StateDone,
		PC:     s.pc,
		Thread: s.thread,
		ClkUs:  nowT.Sub(p.start).Microseconds(),
		DurUs:  nowT.Sub(s.started).Microseconds(),
		RSSKB:  rssKB,
		Reads:  reads,
		Writes: writes,
		Stmt:   s.stmt,
	}
	p.seq++
	p.emitLocked(e, s.module)
	p.mu.Unlock()
}

func (p *Profiler) emitLocked(e Event, module string) {
	if !p.filter.Pass(e, module) {
		return
	}
	for _, s := range p.sinks {
		s.Emit(e)
	}
}

// OwnedSliceSink is a SliceSink without locking, for the common
// one-profiler-per-run shape: a Profiler serializes all Emit calls
// under its own mutex, so a sink attached to exactly one profiler and
// read only after the run completes needs no lock of its own. Do NOT
// share an OwnedSliceSink between profilers or read it mid-run.
type OwnedSliceSink struct {
	events []Event
}

// NewOwnedSliceSink preallocates for hint events.
func NewOwnedSliceSink(hint int) *OwnedSliceSink {
	if hint < 0 {
		hint = 0
	}
	return &OwnedSliceSink{events: make([]Event, 0, hint)}
}

// Emit implements Sink.
func (s *OwnedSliceSink) Emit(e Event) { s.events = append(s.events, e) }

// Take hands the accumulated events over and resets the sink. Only call
// after the profiled run has completed.
func (s *OwnedSliceSink) Take() []Event {
	evs := s.events
	s.events = nil
	return evs
}

// BatchSink consumes events many at a time — one lock acquisition, one
// write, or one datagram per batch instead of per event. The slice is
// only valid for the duration of the call: the Batcher reuses its
// backing array, so implementations must copy what they keep.
type BatchSink interface {
	EmitBatch([]Event)
}

// Batcher is the hot-path event pipeline: a Sink that accumulates
// events in a reusable buffer and hands them to a BatchSink in slices,
// cutting the per-event allocation and syscall cost of the trace path.
// A batch is delivered when it reaches the configured size, when Flush
// is called (the server flushes at query end), and — when the batcher
// was built with a flush interval — by a deadline armed lazily whenever
// an event lands in an empty buffer, so a stalled query still streams
// while an idle batcher costs nothing. It is safe for concurrent use by
// the dataflow workers; event order is preserved.
//
// The lazy flush is deadline-checked, not timer-driven: the background
// flusher only delivers after verifying under the lock that the armed
// deadline has actually passed. The earlier implementation reset one
// shared time.Timer from Emit, and a timer firing concurrently with
// that Reset left a stale tick in the channel — the flusher then
// delivered a freshly-started batch long before its interval elapsed
// (spurious early flush). Events were never dropped or duplicated
// (delivery always drained the real buffer under the lock), but the
// batching guarantee silently degraded to per-event sends under load.
type Batcher struct {
	sink       BatchSink
	size       int
	flushEvery time.Duration

	mu       sync.Mutex
	buf      []Event
	deadline time.Time // zero when the buffer is empty or no interval is set

	kick      chan struct{} // wakes the flusher when a deadline is armed
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// Metric cells, nil (no-op) until Instrument attaches a registry.
	mEvents  *metrics.Counter
	mFlushes *metrics.Counter
}

// DefaultBatchSize is the batch size used when NewBatcher is given a
// non-positive one.
const DefaultBatchSize = 64

// NewBatcher wraps sink. batchSize <= 0 selects DefaultBatchSize.
// flushEvery > 0 enables the lazy flush deadline; 0 means batches are
// delivered only on size and explicit Flush/Close.
func NewBatcher(sink BatchSink, batchSize int, flushEvery time.Duration) *Batcher {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	b := &Batcher{
		sink:       sink,
		size:       batchSize,
		flushEvery: flushEvery,
		buf:        make([]Event, 0, batchSize),
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	if flushEvery > 0 {
		b.wg.Add(1)
		go b.flusher()
	}
	return b
}

// flusher delivers batches whose deadline has passed. It sleeps until
// the armed deadline (re-reading it each round: a size- or
// Flush-triggered delivery clears it, a later Emit re-arms it) and
// flushes only when the deadline it observed under the lock has truly
// expired — there is no timer channel to go stale.
func (b *Batcher) flusher() {
	defer b.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		b.mu.Lock()
		deadline := b.deadline
		b.mu.Unlock()
		if deadline.IsZero() {
			select {
			case <-b.kick:
				continue
			case <-b.done:
				return
			}
		}
		if wait := time.Until(deadline); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-b.kick:
				if !timer.Stop() {
					<-timer.C
				}
			case <-b.done:
				if !timer.Stop() {
					<-timer.C
				}
				return
			}
			continue
		}
		b.mu.Lock()
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			b.deliverLocked()
		}
		b.mu.Unlock()
	}
}

// Emit implements Sink.
func (b *Batcher) Emit(e Event) {
	b.mu.Lock()
	if len(b.buf) == 0 && b.flushEvery > 0 {
		// First event into an empty buffer arms the flush deadline.
		b.deadline = time.Now().Add(b.flushEvery)
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	b.buf = append(b.buf, e)
	b.mEvents.Inc()
	if len(b.buf) >= b.size {
		b.deliverLocked()
	}
	b.mu.Unlock()
}

// deliverLocked hands the pending batch to the sink, resets the buffer
// for reuse, and disarms the flush deadline. Delivery happens under the
// batcher lock so batches arrive at the sink in event order.
func (b *Batcher) deliverLocked() {
	b.deadline = time.Time{}
	if len(b.buf) == 0 {
		return
	}
	b.sink.EmitBatch(b.buf)
	b.buf = b.buf[:0]
	b.mFlushes.Inc()
}

// Instrument registers the batcher's event/flush counters
// (stetho_profiler_*) in the registry. Call before the batcher starts
// receiving events.
func (b *Batcher) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mEvents = reg.Counter("stetho_profiler_events_total")
	b.mFlushes = reg.Counter("stetho_profiler_batch_flushes_total")
}

// Flush delivers any pending events immediately.
func (b *Batcher) Flush() {
	b.mu.Lock()
	b.deliverLocked()
	b.mu.Unlock()
}

// Pending reports how many events await delivery (tests, monitoring).
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Close stops the background flusher and delivers the final batch. It
// is idempotent; the batcher must not be used after Close.
func (b *Batcher) Close() error {
	b.closeOnce.Do(func() {
		close(b.done)
		b.wg.Wait()
		b.Flush()
	})
	return nil
}

// RingBuffer is a bounded in-memory sink: the online mode's sampling
// buffer (paper §4.2: "as the trace file grows in size, its content is
// sampled in a buffer"). When full, the oldest events are dropped.
type RingBuffer struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRingBuffer returns a ring holding up to n events.
func NewRingBuffer(n int) *RingBuffer {
	if n < 1 {
		n = 1
	}
	return &RingBuffer{buf: make([]Event, n)}
}

// Emit implements Sink.
func (r *RingBuffer) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// EmitBatch implements BatchSink with one lock acquisition per batch.
func (r *RingBuffer) EmitBatch(evs []Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Only the last len(buf) events of the batch can survive.
	if len(evs) > len(r.buf) {
		evs = evs[len(evs)-len(r.buf):]
	}
	for _, e := range evs {
		r.buf[r.next] = e
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
			r.full = true
		}
	}
}

// Snapshot returns the buffered events oldest-first.
func (r *RingBuffer) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports how many events are buffered.
func (r *RingBuffer) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// WriterSink writes marshaled events, one per line, to an io.Writer —
// the trace-file sink used by offline analysis. Flush before reading the
// file back.
type WriterSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{w: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.WriteString(e.Marshal())
	s.w.WriteByte('\n')
}

// EmitBatch implements BatchSink: one lock acquisition per batch.
func (s *WriterSink) EmitBatch(evs []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range evs {
		s.w.WriteString(e.Marshal())
		s.w.WriteByte('\n')
	}
}

// Flush drains buffered output.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// SliceSink accumulates events in memory (tests and small traces).
type SliceSink struct {
	mu     sync.Mutex
	events []Event
}

// NewSliceSink returns a SliceSink preallocated for hint events, so an
// execution with a known plan size appends without regrowth.
func NewSliceSink(hint int) *SliceSink {
	if hint < 0 {
		hint = 0
	}
	return &SliceSink{events: make([]Event, 0, hint)}
}

// Emit implements Sink.
func (s *SliceSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// EmitBatch implements BatchSink. The batch is copied, as the contract
// requires.
func (s *SliceSink) EmitBatch(evs []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, evs...)
}

// Events returns a copy of the accumulated events.
func (s *SliceSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Take hands the accumulated events over without copying and resets the
// sink. The caller owns the returned slice; use it when the sink is
// done receiving (e.g. after a run completes) to avoid duplicating a
// full trace.
func (s *SliceSink) Take() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.events
	s.events = nil
	return evs
}
