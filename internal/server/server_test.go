package server

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"stethoscope/internal/core"
	"stethoscope/internal/profiler"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
	"stethoscope/internal/tracestore"
)

func startServer(t testing.TB) *Server {
	t.Helper()
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.001, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	srv := New("test-server", cat)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dialServer(t testing.TB, srv *Server) *Client {
	t.Helper()
	c, err := DialServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestGreetingAndTables(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	status, payload, err := c.Command("TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if status != "ok" {
		t.Errorf("status = %q", status)
	}
	if len(payload) != 8 {
		t.Errorf("tables = %v", payload)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	_, payload, err := c.Command("QUERY select count(*) as n from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 2 || payload[0] != "n" {
		t.Fatalf("payload = %v", payload)
	}
	li, _ := srv.Engine().Catalog().Table("sys", "lineitem")
	if payload[1] != strconv.Itoa(li.Rows()) {
		t.Errorf("count = %s, want %d", payload[1], li.Rows())
	}
}

func TestExplainAndDot(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	_, listing, err := c.Command("EXPLAIN select l_tax from lineitem where l_partkey=1")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(listing, "\n")
	if !strings.Contains(joined, "algebra.thetaselect") {
		t.Errorf("explain missing selection:\n%s", joined)
	}
	_, dotLines, err := c.Command("DOT select l_tax from lineitem where l_partkey=1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dotLines[0], "digraph") {
		t.Errorf("dot output:\n%s", strings.Join(dotLines, "\n"))
	}
}

func TestSetPartitionsChangesPlan(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	_, base, err := c.Command("DOT select l_tax from lineitem where l_partkey=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Command("SET partitions 8"); err != nil {
		t.Fatal(err)
	}
	_, part, err := c.Command("DOT select l_tax from lineitem where l_partkey=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(part) <= len(base) {
		t.Errorf("partitioned dot not larger: %d vs %d lines", len(part), len(base))
	}
}

func TestErrorResponses(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	if _, _, err := c.Command("QUERY select nope from lineitem"); err == nil {
		t.Error("bad query accepted")
	}
	if _, _, err := c.Command("NONSENSE"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, _, err := c.Command("SET partitions zero"); err == nil {
		t.Error("bad SET accepted")
	}
	if _, _, err := c.Command("FILTER wat"); err == nil {
		t.Error("bad FILTER accepted")
	}
	// Connection still usable after errors.
	if _, _, err := c.Command("TABLES"); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestOnlineEndToEnd(t *testing.T) {
	// Full paper workflow: textual stethoscope listens on UDP, the server
	// streams dot + trace during QUERY, the client builds a session and
	// colors it.
	srv := startServer(t)
	ts, err := core.StartTextual("127.0.0.1:0", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	c := dialServer(t, srv)
	if _, _, err := c.Command("TRACE " + ts.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Command("SET workers 4"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Command("SET partitions 4"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Command("QUERY select l_tax from lineitem where l_partkey=1"); err != nil {
		t.Fatal(err)
	}

	// Wait for the stream to drain.
	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		for _, a := range ts.Servers() {
			ss, _ := ts.Server(a)
			if _, err := ss.Graph(); err == nil && len(ss.Events()) > 0 {
				addr = a
			}
		}
		if addr != "" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		t.Fatal("no complete stream received")
	}
	ss, _ := ts.Server(addr)
	if ss.ServerName() != "test-server" {
		t.Errorf("server name = %q", ss.ServerName())
	}
	sess, err := ts.OpenOnlineSession(addr, core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Graph.Nodes) == 0 {
		t.Error("empty online graph")
	}
	if len(sess.Mapping.Unmatched) != 0 {
		t.Errorf("unmatched pcs: %v", sess.Mapping.Unmatched)
	}
}

func TestServerFilterReducesStream(t *testing.T) {
	srv := startServer(t)
	ts, err := core.StartTextual("127.0.0.1:0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	c := dialServer(t, srv)
	if _, _, err := c.Command("TRACE " + ts.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Command("FILTER states=done"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Command("QUERY select l_tax from lineitem where l_partkey=1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, a := range ts.Servers() {
			ss, _ := ts.Server(a)
			evs := ss.Events()
			if len(evs) > 0 {
				time.Sleep(50 * time.Millisecond) // allow stragglers
				evs = ss.Events()
				for _, e := range evs {
					if e.State.String() != "done" {
						t.Fatalf("filtered stream leaked %v", e.State)
					}
				}
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no events received")
}

func TestAlgebraCommand(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	_, tree, err := c.Command("ALGEBRA select l_returnflag, sum(l_quantity) from lineitem where l_partkey < 5 group by l_returnflag")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tree, "\n")
	for _, want := range []string{"project", "group by", "filter", "scan sys.lineitem"} {
		if !strings.Contains(joined, want) {
			t.Errorf("algebra tree missing %q:\n%s", want, joined)
		}
	}
	if _, _, err := c.Command("ALGEBRA select nope from lineitem"); err == nil {
		t.Error("bad algebra query accepted")
	}
}

// TestCloseUnblocksIdleConnections pins the shutdown liveness guarantee:
// Close must not wait on connection handlers parked in the read loop for
// clients that never hang up.
func TestCloseUnblocksIdleConnections(t *testing.T) {
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.001, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	srv := New("test-server", cat)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := DialServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The client is idle: it sends nothing, so the handler sits in
	// sc.Scan. Close must still return promptly.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle client connection")
	}
}

func TestStatsCommandAndSharedCache(t *testing.T) {
	srv := startServer(t)
	const q = "QUERY select l_tax from lineitem where l_partkey=1"

	// Session one compiles (miss), session two hits the shared cache.
	c1 := dialServer(t, srv)
	if _, _, err := c1.Command(q); err != nil {
		t.Fatal(err)
	}
	c2 := dialServer(t, srv)
	if _, _, err := c2.Command(q); err != nil {
		t.Fatal(err)
	}
	st := srv.CacheStats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("shared cache not consulted across sessions: %+v", st)
	}

	_, payload, err := c2.Command("STATS")
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 4 || !strings.Contains(payload[0], "cache_hits=") {
		t.Fatalf("STATS payload = %q", payload)
	}
	if !strings.Contains(payload[1], "engine_runs=") || !strings.Contains(payload[1], "morsels_claimed=") {
		t.Fatalf("STATS engine line = %q", payload[1])
	}
	if !strings.Contains(payload[2], "sessions_total=") || !strings.Contains(payload[2], "commands=") {
		t.Fatalf("STATS server line = %q", payload[2])
	}
	if !strings.Contains(payload[3], "sharedwork_led=") || !strings.Contains(payload[3], "resultcache_hits=") {
		t.Fatalf("STATS shared-work line = %q", payload[3])
	}

	// Different partition settings must compile separately.
	if _, _, err := c2.Command("SET partitions 4"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Command(q); err != nil {
		t.Fatal(err)
	}
	if after := srv.CacheStats(); after.Misses != st.Misses+1 {
		t.Fatalf("partition change should force a compile: before %+v after %+v", st, after)
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv := startServer(t)
	queries := []string{
		"QUERY select l_tax from lineitem where l_partkey=1",
		"QUERY select l_orderkey from lineitem where l_quantity > 30",
		"QUERY select count(*) from lineitem",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := DialServer(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if g%2 == 1 {
				if _, _, err := c.Command("SET workers 4"); err != nil {
					errs <- err
					return
				}
			}
			for i := 0; i < 5; i++ {
				q := queries[(g+i)%len(queries)]
				if _, rows, err := c.Command(q); err != nil {
					errs <- err
					return
				} else if len(rows) == 0 {
					errs <- fmt.Errorf("%s returned no rows", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("concurrent sessions never hit the shared cache: %+v", st)
	}
}

// startHistoryServer is startServer with a trace store attached and an
// OnQuery observer feeding the counter at *counted.
func startHistoryServer(t testing.TB, counted *int) *Server {
	t.Helper()
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.001, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	store, err := tracestore.Open(tracestore.Options{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	cfg := Config{History: store}
	if counted != nil {
		cfg.OnQuery = func(events int) { *counted += events }
	}
	srv := NewWithConfig(context.Background(), "history-server", cat, cfg)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestHistoryCommand drives the HISTORY protocol: QUERY executions are
// recorded durably and served back over LIST/TOP/INFO/TRACE/DOT/DIFF.
func TestHistoryCommand(t *testing.T) {
	counted := 0
	srv := startHistoryServer(t, &counted)
	c := dialServer(t, srv)
	q := "QUERY select l_tax from lineitem where l_partkey=1"
	for i := 0; i < 2; i++ {
		if _, _, err := c.Command(q); err != nil {
			t.Fatal(err)
		}
	}
	_, lines, err := c.Command("HISTORY LIST")
	if err != nil {
		t.Fatalf("HISTORY LIST: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("HISTORY LIST = %d lines:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	// Most recent first, complete, with the SQL quoted.
	if !strings.Contains(lines[0], "id=2") || !strings.Contains(lines[0], "complete=true") ||
		!strings.Contains(lines[0], `sql="select l_tax`) {
		t.Fatalf("HISTORY LIST line = %q", lines[0])
	}
	if _, lines, err = c.Command("HISTORY TOP 1"); err != nil || len(lines) != 1 {
		t.Fatalf("HISTORY TOP 1: %v (%d lines)", err, len(lines))
	}
	if _, lines, err = c.Command("HISTORY INFO 1"); err != nil || len(lines) != 1 ||
		!strings.Contains(lines[0], "id=1") {
		t.Fatalf("HISTORY INFO 1: %v %q", err, lines)
	}
	// TRACE returns parseable event lines matching the store.
	_, traceLines, err := c.Command("HISTORY TRACE 1")
	if err != nil {
		t.Fatalf("HISTORY TRACE: %v", err)
	}
	evs, err := srv.history.Events(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traceLines) != len(evs) {
		t.Fatalf("HISTORY TRACE = %d lines, store has %d events", len(traceLines), len(evs))
	}
	if _, err := profiler.UnmarshalEvent(traceLines[0]); err != nil {
		t.Fatalf("HISTORY TRACE line does not parse: %v", err)
	}
	// The observer counted exactly the stored events, once each.
	want := 0
	for _, id := range []uint64{1, 2} {
		info, ok := srv.history.Run(id)
		if !ok {
			t.Fatalf("run %d missing from store", id)
		}
		want += info.Events
	}
	if counted != want {
		t.Fatalf("OnQuery counted %d events, store holds %d", counted, want)
	}
	_, dotLines, err := c.Command("HISTORY DOT 2")
	if err != nil || len(dotLines) == 0 || !strings.Contains(dotLines[0], "digraph") {
		t.Fatalf("HISTORY DOT: %v %q", err, dotLines)
	}
	_, diffLines, err := c.Command("HISTORY DIFF 1 2")
	if err != nil || len(diffLines) == 0 || !strings.Contains(diffLines[0], "elapsed_delta_us=") {
		t.Fatalf("HISTORY DIFF: %v %q", err, diffLines)
	}
	// Unknown runs and bad usage answer with err, not a hang.
	if _, _, err := c.Command("HISTORY TRACE 99"); err == nil {
		t.Fatal("HISTORY TRACE 99 succeeded for a missing run")
	}
	if _, _, err := c.Command("HISTORY BOGUS"); err == nil {
		t.Fatal("HISTORY BOGUS succeeded")
	}
}

// TestHistoryDisabled pins the error answer on servers without a store.
func TestHistoryDisabled(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	if _, _, err := c.Command("HISTORY LIST"); err == nil ||
		!strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("HISTORY on a history-less server: %v", err)
	}
}

// TestSetAutoAndClamping: sessions accept "SET partitions auto", clamp
// out-of-range numeric values through the shared normalization rule,
// and never alias the plan cache with un-normalized keys.
func TestSetAutoAndClamping(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	q := "EXPLAIN select l_tax from lineitem where l_partkey=1"

	if _, _, err := c.Command("SET partitions auto"); err != nil {
		t.Fatalf("SET partitions auto: %v", err)
	}
	if _, _, err := c.Command("SET workers auto"); err != nil {
		t.Fatalf("SET workers auto: %v", err)
	}
	if _, _, err := c.Command(q); err != nil {
		t.Fatalf("EXPLAIN under auto: %v", err)
	}

	// partitions=1 and the clamped partitions=0 must share one cache
	// entry (plus the auto entry from above).
	if _, _, err := c.Command("SET partitions 1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Command(q); err != nil {
		t.Fatal(err)
	}
	before := srv.CacheStats().Len
	if _, _, err := c.Command("SET partitions 0"); err != nil {
		t.Fatalf("SET partitions 0 rejected instead of clamped: %v", err)
	}
	if _, _, err := c.Command(q); err != nil {
		t.Fatal(err)
	}
	if after := srv.CacheStats().Len; after != before {
		t.Errorf("clamped partitions=0 added a cache entry: %d -> %d", before, after)
	}

	// Garbage still errors.
	if _, _, err := c.Command("SET partitions zero"); err == nil {
		t.Error("non-numeric SET accepted")
	}
}

// TestSetMorsel: sessions toggle the morsel lowering per connection —
// numeric sizes, "auto", and "off" all round-trip, query results are
// unchanged under every setting, and garbage still errors.
func TestSetMorsel(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	q := "QUERY select l_returnflag, sum(l_quantity) as s from lineitem group by l_returnflag order by l_returnflag"
	_, want, err := c.Command(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"SET morsel 512", "SET morsel auto", "SET morsel 0", "SET morsel off"} {
		if _, _, err := c.Command(set); err != nil {
			t.Fatalf("%s: %v", set, err)
		}
		_, got, err := c.Command(q)
		if err != nil {
			t.Fatalf("QUERY under %q: %v", set, err)
		}
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("results changed under %q:\n%s\nwant:\n%s", set, strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}
	if _, _, err := c.Command("SET morsel tiny"); err == nil {
		t.Error("non-numeric SET morsel accepted")
	}
}

// TestServerDefaultsAreAdaptive: a fresh session executes QUERY without
// any SET and the tiny test catalog resolves to sequential execution —
// the default is auto, not a fixed knob.
func TestServerDefaultsAreAdaptive(t *testing.T) {
	srv := startServer(t)
	c := dialServer(t, srv)
	_, payload, err := c.Command("QUERY select l_returnflag, sum(l_quantity) as s from lineitem group by l_returnflag order by l_returnflag")
	if err != nil {
		t.Fatalf("QUERY under default (auto) settings: %v", err)
	}
	if len(payload) < 2 {
		t.Fatalf("payload = %v", payload)
	}
}
