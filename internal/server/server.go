// Package server implements the Mserver front-end of the reproduction:
// "Mserver is the MonetDB database server ... It listens for the incoming
// client connections on user defined ports. Stethoscope connects to
// Mserver as a client." (paper §3). The protocol is line-oriented over
// TCP: clients set execution options, point the profiler's UDP stream at
// a textual Stethoscope, and submit queries; plan dot files are emitted
// over the UDP stream before execution begins, exactly as §4.2 describes.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"stethoscope/internal/adaptive"
	"stethoscope/internal/algebra"
	"stethoscope/internal/engine"
	"stethoscope/internal/metrics"
	"stethoscope/internal/netproto"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/plancache"
	"stethoscope/internal/planner"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sharedwork"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tracestore"
)

// DefaultPlanCacheSize is the compiled-plan cache capacity a standalone
// server creates when Config.Cache is nil.
const DefaultPlanCacheSize = plancache.DefaultSize

// Server wraps an engine behind the TCP command protocol. Sessions run
// concurrently — each accepted connection gets its own goroutine and
// its own execution settings — against the shared engine and the shared
// compiled-plan cache, so one client's statements warm the cache for
// every other client.
type Server struct {
	Name     string
	eng      *engine.Engine
	cache    *plancache.Cache
	pipeline optimizer.Pipeline
	passSpec string
	planner  planner.Planner
	shared   *sharedwork.Shared
	history  *tracestore.Store
	onQuery  func(events int)

	// Observability: the metrics registry (shared with the facade when
	// the DB injects one, private otherwise) and the server-layer cells.
	reg            *metrics.Registry
	sessionsTotal  *metrics.Counter
	sessionsActive *metrics.Gauge
	commands       *metrics.Counter
	bytesOut       *metrics.Counter
	latency        *metrics.Histogram

	// ctx is the server lifetime: queries execute under it, so Close (or
	// cancellation of the parent context) aborts in-flight executions.
	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	ln    net.Listener
	lnErr error
	wg    sync.WaitGroup
}

// Config customizes what a server shares. Zero values select private
// defaults, which is what standalone mserver processes want; the facade
// injects its own engine, cache, and pipeline so in-process Exec
// callers and TCP sessions serve from the same compiled-plan state.
type Config struct {
	// Engine executes queries; nil builds a fresh engine over the
	// catalog.
	Engine *engine.Engine
	// Cache is the shared compiled-plan cache; nil creates a private
	// cache of DefaultPlanCacheSize entries unless NoCache is set.
	Cache *plancache.Cache
	// NoCache disables plan caching entirely (every statement compiles
	// from scratch).
	NoCache bool
	// Pipeline is the optimizer pipeline; nil selects
	// optimizer.Default().
	Pipeline *optimizer.Pipeline
	// PassSpec is the pipeline's cache-key component; empty derives it
	// from the pipeline (Pipeline.Spec).
	PassSpec string
	// History, when non-nil, durably records every QUERY execution
	// (plan dot text + profiler event stream + completion stats) into
	// the trace store and enables the HISTORY protocol command.
	History *tracestore.Store
	// OnQuery, when non-nil, is called once per successful QUERY with
	// the number of profiler events the execution emitted. The count is
	// taken at the profiler — once per event — never from the transport,
	// so EVTB-coalesced datagrams do not skew it.
	OnQuery func(events int)
	// Registry is the metrics registry the server's session/command/
	// byte counters land in; the facade injects the DB's registry so
	// the METRICS command and the HTTP endpoint expose one unified set.
	// Nil creates a private registry (and instruments the private
	// engine/cache built here, when they are private too).
	Registry *metrics.Registry
	// Shared is the work-deduplication state QUERY executes through:
	// the single-flight execution registry plus the optional result
	// cache. The facade injects the DB's, so TCP sessions and
	// in-process Exec callers dedupe against each other; nil creates a
	// private flight with no result cache.
	Shared *sharedwork.Shared
	// CompileFlight coalesces concurrent cache-miss compilations; the
	// facade injects the DB's so coalescing spans entry points. Nil
	// creates a private flight.
	CompileFlight *planner.CompileFlight
}

// New creates a server over the catalog.
func New(name string, cat *storage.Catalog) *Server {
	return NewContext(context.Background(), name, cat)
}

// NewContext creates a server whose lifetime is bounded by ctx: when ctx
// is canceled the listener shuts down and running queries are aborted.
func NewContext(ctx context.Context, name string, cat *storage.Catalog) *Server {
	return NewWithConfig(ctx, name, cat, Config{})
}

// NewWithConfig is NewContext with shared components injected; see
// Config.
func NewWithConfig(ctx context.Context, name string, cat *storage.Catalog, cfg Config) *Server {
	ctx, cancel := context.WithCancel(ctx)
	s := &Server{Name: name, ctx: ctx, cancel: cancel}
	s.eng = cfg.Engine
	if s.eng == nil {
		s.eng = engine.New(cat)
	}
	s.cache = cfg.Cache
	if s.cache == nil && !cfg.NoCache {
		s.cache = plancache.New(DefaultPlanCacheSize)
	}
	if cfg.Pipeline != nil {
		s.pipeline = *cfg.Pipeline
	} else {
		s.pipeline = optimizer.Default()
	}
	s.passSpec = cfg.PassSpec
	if s.passSpec == "" {
		s.passSpec = s.pipeline.Spec()
	}
	s.history = cfg.History
	s.onQuery = cfg.OnQuery
	s.reg = cfg.Registry
	if s.reg == nil {
		// Standalone server: private registry, and the privately-built
		// engine/cache/history feed it. Injected components are left
		// alone — their owner wired them to its own registry.
		s.reg = metrics.NewRegistry()
		if cfg.Engine == nil {
			s.eng.SetMetrics(s.reg)
		}
		if cfg.Cache == nil && s.cache != nil {
			s.cache.Instrument(s.reg)
		}
	}
	s.sessionsTotal = s.reg.Counter("stetho_server_sessions_total")
	s.sessionsActive = s.reg.Gauge("stetho_server_sessions_active")
	s.commands = s.reg.Counter("stetho_server_commands_total")
	s.bytesOut = s.reg.Counter("stetho_server_bytes_written_total")
	s.latency = s.reg.Histogram("stetho_query_latency_us", nil)
	s.shared = cfg.Shared
	if s.shared == nil {
		// Standalone server: a private single-flight (identical
		// concurrent QUERYs still dedupe) and no result cache. Injected
		// Shared state was instrumented by its owner.
		s.shared = &sharedwork.Shared{Flight: sharedwork.NewFlight()}
		s.shared.Instrument(s.reg)
	}
	s.planner = planner.Planner{Cat: s.eng.Catalog(), Cache: s.cache, Pipeline: s.pipeline,
		PassSpec: s.passSpec, Flight: cfg.CompileFlight}
	if s.planner.Flight == nil {
		s.planner.Flight = planner.NewCompileFlight()
	}
	return s
}

// CacheStats snapshots the shared plan cache's counters (zero when
// caching is disabled).
func (s *Server) CacheStats() plancache.Stats {
	if s.cache == nil {
		return plancache.Stats{}
	}
	return s.cache.Stats()
}

// Engine exposes the underlying engine (examples drive it directly).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Listen binds the TCP port ("127.0.0.1:0" picks a free one) and serves
// until Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.ctx.Done()
		err := ln.Close()
		s.mu.Lock()
		if s.lnErr == nil {
			s.lnErr = err
		}
		s.mu.Unlock()
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bound TCP address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, aborts running queries, and waits for in-flight
// connections. Closing the listener is delegated to the context watcher
// that Listen installs; its error is propagated here.
func (s *Server) Close() error {
	s.cancel()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lnErr
}

// session is per-connection state: execution settings, filter, and the
// profiler stream are isolated per client; the engine, the plan cache,
// and the history store are shared with every other session. The
// profiler itself is built per QUERY (engine runs reset profiler state,
// so a profiler must not span concurrent runs). Sessions default to
// adaptive parallel execution (partitions and workers auto): fan-out is
// sized per query from the scanned tables and the core count; SET
// pins either setting explicitly.
type session struct {
	srv        *Server
	partitions int
	workers    int
	// morsel selects the morsel-driven lowering when non-zero: a
	// concrete morsel size, or adaptive.Auto for per-query sizing. Zero
	// (the default) keeps the static mitosis lowering.
	morsel int
	// resultcache opts this session's QUERYs into the server's shared
	// result cache (on by default; meaningful only when the server has
	// one). "SET resultcache off" forces fresh execution — the escape
	// hatch for a client that must observe current timing, not a reused
	// outcome. In-flight sharing is not affected: identical concurrent
	// statements always dedupe.
	resultcache bool
	filter      profiler.Filter
	streamer    *netproto.UDPStreamer
	batcher     *profiler.Batcher
}

// traceBatch configures the per-session event batching on the UDP
// trace path: events coalesce into multi-event datagrams of up to
// traceBatchSize events, with a periodic flush so a stalled query still
// streams.
const (
	traceBatchSize  = 64
	traceFlushEvery = 2 * time.Millisecond
)

// closeStream tears the session's trace stream down in pipeline order.
func (sess *session) closeStream() {
	if sess.batcher != nil {
		sess.batcher.Close()
		sess.batcher = nil
	}
	if sess.streamer != nil {
		sess.streamer.Close()
		sess.streamer = nil
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	// Unblock the read loop when the server shuts down: without this,
	// Close would wait forever on a handler parked in sc.Scan for an
	// idle client. Closing a net.Conn twice is safe.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-s.ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	s.sessionsTotal.Inc()
	s.sessionsActive.Add(1)
	defer s.sessionsActive.Add(-1)
	sess := &session{srv: s, partitions: adaptive.Auto, workers: adaptive.Auto, resultcache: true}
	defer func() { sess.closeStream() }()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(&countingWriter{w: conn, n: s.bytesOut})
	fmt.Fprintf(w, "ok stethoscope-mserver %s\n", s.Name)
	w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			fmt.Fprintln(w, "ok bye")
			w.Flush()
			return
		}
		sess.dispatch(w, line)
		w.Flush()
	}
}

// countingWriter counts bytes on their way to the connection — the
// stetho_server_bytes_written_total source, placed under the bufio
// layer so it costs one atomic add per flush, not per write.
type countingWriter struct {
	w io.Writer
	n *metrics.Counter
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (sess *session) dispatch(w *bufio.Writer, line string) {
	sess.srv.commands.Inc()
	cmd, rest := line, ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		cmd, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	switch strings.ToUpper(cmd) {
	case "SET":
		sess.cmdSet(w, rest)
	case "TRACE":
		sess.cmdTrace(w, rest)
	case "FILTER":
		sess.cmdFilter(w, rest)
	case "EXPLAIN":
		sess.cmdExplain(w, rest)
	case "ALGEBRA":
		sess.cmdAlgebra(w, rest)
	case "DOT":
		sess.cmdDot(w, rest)
	case "QUERY":
		sess.cmdQuery(w, rest)
	case "HISTORY":
		sess.cmdHistory(w, rest)
	case "STATS":
		sess.cmdStats(w)
	case "METRICS":
		fmt.Fprintln(w, "ok")
		sess.srv.reg.WritePrometheus(w)
		fmt.Fprintln(w, ".")
	case "PROGRESS":
		fmt.Fprintln(w, "ok")
		for _, p := range sess.srv.eng.Progress() {
			fmt.Fprintf(w, "id=%d elapsed_us=%d fraction=%.4f instr_done=%d instr_total=%d rows_scanned=%d rows_total=%d morsels_done=%d morsels_total=%d sql=%s\n",
				p.ID, p.Elapsed.Microseconds(), p.Fraction(),
				p.InstrDone, p.InstrTotal, p.RowsScanned, p.RowsTotal,
				p.MorselsDone, p.MorselsTotal, strconv.Quote(p.Label))
		}
		fmt.Fprintln(w, ".")
	case "TABLES":
		fmt.Fprintln(w, "ok")
		for _, t := range sess.srv.eng.Catalog().TableNames() {
			fmt.Fprintln(w, t)
		}
		fmt.Fprintln(w, ".")
	default:
		fmt.Fprintf(w, "err unknown command %q\n", cmd)
	}
}

// cmdStats renders the serving counters: the plan-cache line the
// command always carried, plus a scheduler/morsel line, a server line
// drawn from the metrics registry, and a shared-work line
// (single-flight leads/attaches, result-cache effectiveness), so
// remote monitors see the engine counters without the HTTP endpoint.
// Clients parse every payload line as flat k=v fields, so added lines
// are backward compatible.
func (sess *session) cmdStats(w *bufio.Writer) {
	st := sess.srv.CacheStats()
	snap := sess.srv.reg.Snapshot()
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "cache_hits=%d cache_misses=%d cache_evictions=%d cache_len=%d cache_cap=%d\n",
		st.Hits, st.Misses, st.Evictions, st.Len, st.Capacity)
	fmt.Fprintf(w, "engine_runs=%d engine_instructions=%d engine_steals=%d engine_parks=%d engine_queries_inflight=%d morsels_claimed=%d morsel_rows_scanned=%d\n",
		snap.Value("stetho_engine_runs_total"),
		snap.Value("stetho_engine_instructions_total"),
		snap.Value("stetho_engine_steals_total"),
		snap.Value("stetho_engine_parks_total"),
		snap.Value("stetho_engine_queries_inflight"),
		snap.Value("stetho_engine_morsels_claimed_total"),
		snap.Value("stetho_engine_morsel_rows_scanned_total"))
	fmt.Fprintf(w, "sessions_total=%d sessions_active=%d commands=%d bytes_written=%d\n",
		snap.Value("stetho_server_sessions_total"),
		snap.Value("stetho_server_sessions_active"),
		snap.Value("stetho_server_commands_total"),
		snap.Value("stetho_server_bytes_written_total"))
	rc := sess.srv.shared.Cache.Stats()
	fmt.Fprintf(w, "sharedwork_led=%d sharedwork_attached=%d resultcache_hits=%d resultcache_misses=%d resultcache_len=%d resultcache_invalidations=%d\n",
		sess.srv.shared.Flight.Led(), sess.srv.shared.Flight.Attached(),
		rc.Hits, rc.Misses, rc.Len, rc.Invalidations)
	fmt.Fprintln(w, ".")
}

func (sess *session) cmdSet(w *bufio.Writer, rest string) {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		fmt.Fprintln(w, "err usage: SET <partitions|workers|morsel|resultcache> <n|auto|on|off>")
		return
	}
	// "auto" is the only spelling of adaptive sizing on the wire;
	// numeric values — including -1, which the Go API reserves as the
	// Auto sentinel — clamp through the shared rule (below 1 becomes
	// 1), so a session can never compile under an out-of-range setting
	// nor switch modes by accident. "SET morsel off" is the one
	// non-numeric extra for the numeric settings: it returns the
	// session to the static lowering. "SET resultcache on|off" is a
	// pure boolean.
	setting, value := strings.ToLower(fields[0]), fields[1]
	if setting == "resultcache" {
		switch strings.ToLower(value) {
		case "on":
			sess.resultcache = true
		case "off":
			sess.resultcache = false
		default:
			fmt.Fprintf(w, "err bad value %q (resultcache wants on or off)\n", value)
			return
		}
		fmt.Fprintln(w, "ok")
		return
	}
	if setting == "morsel" && strings.EqualFold(value, "off") {
		sess.morsel = 0
		fmt.Fprintln(w, "ok")
		return
	}
	n := adaptive.Auto
	if !strings.EqualFold(value, "auto") {
		v, err := strconv.Atoi(value)
		if err != nil {
			fmt.Fprintf(w, "err bad value %q\n", value)
			return
		}
		n = adaptive.Clamp(v)
	}
	switch setting {
	case "partitions":
		sess.partitions = n
	case "workers":
		sess.workers = n
	case "morsel":
		sess.morsel = n
	default:
		fmt.Fprintf(w, "err unknown setting %q\n", fields[0])
		return
	}
	fmt.Fprintln(w, "ok")
}

func (sess *session) cmdTrace(w *bufio.Writer, addr string) {
	if addr == "" {
		fmt.Fprintln(w, "err usage: TRACE <udp host:port>")
		return
	}
	streamer, err := netproto.Dial(addr)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	sess.closeStream()
	sess.streamer = streamer
	// Events coalesce into multi-event datagrams on their way out — one
	// syscall per batch instead of per event on the hot trace path.
	sess.batcher = profiler.NewBatcher(streamer, traceBatchSize, traceFlushEvery)
	sess.batcher.Instrument(sess.srv.reg)
	streamer.Hello(sess.srv.Name)
	fmt.Fprintln(w, "ok tracing to "+addr)
}

// cmdFilter parses "FILTER states=done modules=algebra,sql mindur=100
// pcs=1,2,3"; an empty rest clears the filter. This is the profiler-side
// filtering the paper's filter-options window drives.
func (sess *session) cmdFilter(w *bufio.Writer, rest string) {
	f := profiler.Filter{}
	for _, field := range strings.Fields(rest) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			fmt.Fprintf(w, "err bad filter term %q\n", field)
			return
		}
		switch kv[0] {
		case "states":
			for _, s := range strings.Split(kv[1], ",") {
				st, err := profiler.ParseState(s)
				if err != nil {
					fmt.Fprintf(w, "err %v\n", err)
					return
				}
				f.States = append(f.States, st)
			}
		case "modules":
			f.Modules = strings.Split(kv[1], ",")
		case "mindur":
			n, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "err bad mindur %q\n", kv[1])
				return
			}
			f.MinDurUs = n
		case "pcs":
			for _, s := range strings.Split(kv[1], ",") {
				n, err := strconv.Atoi(s)
				if err != nil {
					fmt.Fprintf(w, "err bad pc %q\n", s)
					return
				}
				f.PCs = append(f.PCs, n)
			}
		default:
			fmt.Fprintf(w, "err unknown filter key %q\n", kv[0])
			return
		}
	}
	sess.filter = f
	fmt.Fprintln(w, "ok")
}

// compile turns SQL into an optimized MAL plan under the session's
// settings through the shared planner flow (internal/planner — the
// same flow the facade's Exec/Explain compile through, so facade
// callers and TCP sessions share auto-compiled plans and their
// memoized resolutions). The session's partition setting is
// pre-normalized by cmdSet; cached plans are shared read-only between
// sessions executing concurrently.
func (sess *session) compile(query string) (planner.Compiled, error) {
	return sess.srv.planner.Compile(query, sess.partitions, sess.morsel != 0)
}

// cmdAlgebra prints the bound relational-algebra tree, the stage between
// SQL and MAL (paper §2).
func (sess *session) cmdAlgebra(w *bufio.Writer, query string) {
	stmt, err := sql.Parse(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	tree, err := algebra.Bind(stmt, sess.srv.eng.Catalog())
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprint(w, algebra.Tree(tree))
	fmt.Fprintln(w, ".")
}

func (sess *session) cmdExplain(w *bufio.Writer, query string) {
	c, err := sess.compile(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprint(w, c.Plan.String())
	fmt.Fprintln(w, ".")
}

func (sess *session) cmdDot(w *bufio.Writer, query string) {
	c, err := sess.compile(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprint(w, plancache.DotText(c.Plan, c.Aux))
	fmt.Fprintln(w, ".")
}

// countingSink counts profiler events one by one — the serving
// counters' source of truth. It deliberately sits at the profiler, not
// the transport: counting flushed EVTB datagrams would undercount by
// the batch factor.
type countingSink struct{ n int }

// Emit implements profiler.Sink.
func (c *countingSink) Emit(profiler.Event) { c.n++ }

// cmdQuery executes one statement. Sessions without a live TRACE
// stream execute through the server's shared-work state: a statement
// whose key (SQL + compile geometry) matches an in-flight execution
// attaches to it and writes the same result bytes without running the
// plan, and — when the server has a result cache and the session has
// not opted out — completed outcomes are reused within their TTL.
// Sessions that are streaming a trace always run solo: the UDP
// dot-then-events protocol is per-session and cannot be replayed from
// a shared outcome.
func (sess *session) cmdQuery(w *bufio.Writer, query string) {
	srv := sess.srv
	c, err := sess.compile(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	workers, autoTuned, tuneReason := c.ResolveExec(sess.workers)
	morselRows, mauto, mreason := c.ResolveMorsel(sess.morsel)
	autoTuned = autoTuned || mauto
	tuneReason = adaptive.JoinReasons(tuneReason, mreason)
	if sess.streamer != nil {
		sess.querySolo(w, query, c, workers, morselRows, autoTuned, tuneReason)
		return
	}
	key := sharedwork.Key{SQL: query, Partitions: sess.partitions,
		Morsel: sess.morsel != 0, MorselRows: morselRows, Passes: srv.passSpec}
	if sess.resultcache {
		if out, ok := srv.shared.Cache.Get(key); ok {
			// A cached outcome ran no plan and emitted no new events.
			if srv.onQuery != nil {
				srv.onQuery(0)
			}
			fmt.Fprintln(w, "ok")
			WriteResult(w, out.Res)
			fmt.Fprintln(w, ".")
			return
		}
	}
	out, err, attached, _ := srv.shared.Flight.Do(srv.ctx, key, func() (*sharedwork.Outcome, error) {
		return sess.runShared(query, c, workers, morselRows, autoTuned, tuneReason)
	})
	if attached && err != nil && srv.ctx.Err() == nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The leader's client canceled; this session is still live, so
		// its statement runs solo.
		out, err = sess.runShared(query, c, workers, morselRows, autoTuned, tuneReason)
		attached = false
	}
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	if srv.onQuery != nil {
		if attached {
			srv.onQuery(0)
		} else {
			srv.onQuery(len(out.Events))
		}
	}
	if !attached && sess.resultcache {
		srv.shared.Cache.Put(key, out)
	}
	fmt.Fprintln(w, "ok")
	WriteResult(w, out.Res)
	fmt.Fprintln(w, ".")
}

// runShared is the flight-leader body of the shared QUERY path. Unlike
// querySolo — where a query nobody observes runs with no profiler —
// the leader always collects the full event trace into an owned sink:
// the outcome may be handed to attached sessions or the result cache,
// whose consumers' serving counters and history pointers expect a
// complete execution record. History is recorded here, inside the
// shared run, so one shared execution is one history record.
func (sess *session) runShared(query string, c planner.Compiled,
	workers, morselRows int, autoTuned bool, tuneReason string) (*sharedwork.Outcome, error) {
	srv := sess.srv
	plan := c.Plan
	sink := profiler.NewOwnedSliceSink(2 * len(plan.Instrs))
	sinks := []profiler.Sink{sink}
	var rec *tracestore.RunWriter
	var hb *profiler.Batcher
	if srv.history != nil {
		var err error
		rec, err = srv.history.Begin(tracestore.RunMeta{
			SQL:          query,
			Dot:          plancache.DotText(plan, c.Aux),
			Partitions:   c.Partitions,
			Workers:      workers,
			Instructions: len(plan.Instrs),
			AutoTuned:    autoTuned,
			TuneReason:   tuneReason,
		})
		if err != nil {
			return nil, fmt.Errorf("history: %w", err)
		}
		hb = profiler.NewBatcher(rec, tracestore.DefaultAppendBatch, 0)
		hb.Instrument(srv.reg)
		sinks = append(sinks, hb)
	}
	start := time.Now()
	res, err := srv.eng.RunContext(srv.ctx, plan, engine.Options{
		Workers:    workers,
		MorselRows: morselRows,
		Profiler:   profiler.New(sinks...),
		Label:      query,
	})
	elapsed := time.Since(start)
	srv.latency.Observe(elapsed.Microseconds())
	if hb != nil {
		hb.Close() // flush the tail batch into the store
	}
	var runID uint64
	if rec != nil {
		st := tracestore.RunStats{ElapsedUs: elapsed.Microseconds()}
		if err != nil {
			st.Err = err.Error()
		} else {
			st.Rows = res.Rows()
			st.CacheHit = c.Cached
		}
		if herr := rec.Finish(st); herr != nil && err == nil {
			return nil, fmt.Errorf("history: %w", herr)
		}
		runID = rec.ID()
	}
	if err != nil {
		return nil, err
	}
	return &sharedwork.Outcome{
		Res:        res,
		Events:     sink.Take(),
		Elapsed:    elapsed,
		RunID:      runID,
		Partitions: c.Partitions,
		Workers:    workers,
		MorselRows: morselRows,
		AutoTuned:  autoTuned,
		TuneReason: tuneReason,
		CacheHit:   c.Cached,
	}, nil
}

// querySolo is the unshared QUERY path, used by sessions with a live
// TRACE stream.
func (sess *session) querySolo(w *bufio.Writer, query string, c planner.Compiled,
	workers, morselRows int, autoTuned bool, tuneReason string) {
	srv := sess.srv
	plan := c.Plan
	var err error
	var dotText string
	if sess.streamer != nil || srv.history != nil {
		dotText = plancache.DotText(plan, c.Aux)
	}
	// The server generates the dot file and sends it over the UDP stream
	// before query execution begins (§4.2).
	if sess.streamer != nil {
		sess.streamer.SendDot(query, dotText)
	}
	// Assemble the per-query profiler pipeline: the session's UDP
	// batcher (TRACE) behind the session's display filter, a durable
	// sink teeing batched events into the history store, and the
	// per-event counter for the serving stats. The filter scopes to the
	// UDP stream only — the history record and the counters always see
	// the full trace. A query nobody observes runs with no profiler at
	// all.
	var sinks []profiler.Sink
	if sess.batcher != nil {
		sinks = append(sinks, profiler.FilterSink(sess.filter, sess.batcher))
	}
	var rec *tracestore.RunWriter
	var hb *profiler.Batcher
	if srv.history != nil {
		rec, err = srv.history.Begin(tracestore.RunMeta{
			SQL:          query,
			Dot:          dotText,
			Partitions:   c.Partitions,
			Workers:      workers,
			Instructions: len(plan.Instrs),
			AutoTuned:    autoTuned,
			TuneReason:   tuneReason,
		})
		if err != nil {
			fmt.Fprintf(w, "err history: %v\n", err)
			return
		}
		hb = profiler.NewBatcher(rec, tracestore.DefaultAppendBatch, 0)
		hb.Instrument(srv.reg)
		sinks = append(sinks, hb)
	}
	var count *countingSink
	var prof *profiler.Profiler
	if len(sinks) > 0 {
		if srv.onQuery != nil {
			count = &countingSink{}
			sinks = append(sinks, count)
		}
		prof = profiler.New(sinks...)
	}
	start := time.Now()
	res, err := srv.eng.RunContext(srv.ctx, plan, engine.Options{
		Workers:    workers,
		MorselRows: morselRows,
		Profiler:   prof,
		Label:      query,
	})
	elapsed := time.Since(start)
	srv.latency.Observe(elapsed.Microseconds())
	if hb != nil {
		hb.Close() // flush the tail batch into the store
	}
	// Push the tail of the event batch out before answering, so the
	// monitor sees the complete trace as soon as the client sees "ok".
	if sess.batcher != nil {
		sess.batcher.Flush()
	}
	if rec != nil {
		st := tracestore.RunStats{ElapsedUs: elapsed.Microseconds()}
		if err != nil {
			st.Err = err.Error()
		} else {
			st.Rows = res.Rows()
			st.CacheHit = c.Cached
		}
		if herr := rec.Finish(st); herr != nil && err == nil {
			fmt.Fprintf(w, "err history: %v\n", herr)
			return
		}
	}
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	if srv.onQuery != nil {
		n := 0
		if count != nil {
			n = count.n
		}
		srv.onQuery(n)
	}
	fmt.Fprintln(w, "ok")
	WriteResult(w, res)
	fmt.Fprintln(w, ".")
}

// runLine renders one run as a k=v protocol line. The quoted,
// space-containing fields (sql, err, tune) come last, so everything
// before sql= splits cleanly on spaces.
func runLine(r tracestore.RunInfo) string {
	return fmt.Sprintf("id=%d start=%s elapsed_us=%d events=%d rows=%d partitions=%d workers=%d auto=%t complete=%t cache_hit=%t sql=%s err=%s tune=%s",
		r.ID, r.Start.UTC().Format(time.RFC3339Nano), r.ElapsedUs, r.Events, r.Rows,
		r.Partitions, r.Workers, r.AutoTuned, r.Complete, r.CacheHit,
		strconv.Quote(r.SQL), strconv.Quote(r.Err), strconv.Quote(r.TuneReason))
}

// cmdHistory serves the query-history protocol:
//
//	HISTORY LIST [n]   — recorded runs, most recent first
//	HISTORY TOP [n]    — slowest completed runs, slowest first
//	HISTORY INFO <id>  — one run's metadata line
//	HISTORY TRACE <id> — one run's trace-file lines
//	HISTORY DOT <id>   — one run's plan dot text
//	HISTORY DIFF <a> <b> — cross-run comparison of two runs of one SQL
func (sess *session) cmdHistory(w *bufio.Writer, rest string) {
	hs := sess.srv.history
	if hs == nil {
		fmt.Fprintln(w, "err history is not enabled on this server")
		return
	}
	fields := strings.Fields(rest)
	sub := "LIST"
	if len(fields) > 0 {
		sub = strings.ToUpper(fields[0])
		fields = fields[1:]
	}
	argN := func(def int) int {
		if len(fields) == 0 {
			return def
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			return def
		}
		return n
	}
	argID := func(i int) (uint64, bool) {
		if len(fields) <= i {
			return 0, false
		}
		id, err := strconv.ParseUint(fields[i], 10, 64)
		return id, err == nil
	}
	switch sub {
	case "LIST":
		runs := hs.Runs()
		n := argN(0)
		fmt.Fprintln(w, "ok")
		for i := len(runs) - 1; i >= 0; i-- {
			if n > 0 && len(runs)-1-i >= n {
				break
			}
			fmt.Fprintln(w, runLine(runs[i]))
		}
		fmt.Fprintln(w, ".")
	case "TOP":
		fmt.Fprintln(w, "ok")
		for _, r := range hs.TopN(argN(10)) {
			fmt.Fprintln(w, runLine(r))
		}
		fmt.Fprintln(w, ".")
	case "INFO":
		id, ok := argID(0)
		if !ok {
			fmt.Fprintln(w, "err usage: HISTORY INFO <id>")
			return
		}
		r, found := hs.Run(id)
		if !found {
			fmt.Fprintf(w, "err unknown run %d\n", id)
			return
		}
		fmt.Fprintln(w, "ok")
		fmt.Fprintln(w, runLine(r))
		fmt.Fprintln(w, ".")
	case "TRACE":
		id, ok := argID(0)
		if !ok {
			fmt.Fprintln(w, "err usage: HISTORY TRACE <id>")
			return
		}
		evs, err := hs.Events(id)
		if err != nil {
			fmt.Fprintf(w, "err %v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
		for _, e := range evs {
			fmt.Fprintln(w, e.Marshal())
		}
		fmt.Fprintln(w, ".")
	case "DOT":
		id, ok := argID(0)
		if !ok {
			fmt.Fprintln(w, "err usage: HISTORY DOT <id>")
			return
		}
		dotText, err := hs.Dot(id)
		if err != nil {
			fmt.Fprintf(w, "err %v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
		fmt.Fprint(w, dotText)
		if !strings.HasSuffix(dotText, "\n") {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, ".")
	case "DIFF":
		a, okA := argID(0)
		b, okB := argID(1)
		if !okA || !okB {
			fmt.Fprintln(w, "err usage: HISTORY DIFF <a> <b>")
			return
		}
		d, err := hs.Compare(a, b)
		if err != nil {
			fmt.Fprintf(w, "err %v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
		fmt.Fprintf(w, "elapsed_delta_us=%d regression=%t a=%d b=%d sql=%s\n",
			d.ElapsedDeltaUs, d.Regression, d.A.ID, d.B.ID, strconv.Quote(d.A.SQL))
		for _, m := range d.Modules {
			fmt.Fprintf(w, "module=%s a_us=%d b_us=%d delta_us=%d\n", m.Module, m.AUs, m.BUs, m.DeltaUs)
		}
		fmt.Fprintln(w, ".")
	default:
		fmt.Fprintf(w, "err unknown HISTORY subcommand %q (have LIST, TOP, INFO, TRACE, DOT, DIFF)\n", sub)
	}
}

// WriteResult renders a result table as tab-separated text with a header
// line.
func WriteResult(w *bufio.Writer, res *engine.Result) {
	if res == nil {
		return
	}
	fmt.Fprintln(w, strings.Join(res.Names, "\t"))
	for i := 0; i < res.Rows(); i++ {
		for c, col := range res.Cols {
			if c > 0 {
				w.WriteByte('\t')
			}
			w.WriteString(cellString(col, i))
		}
		w.WriteByte('\n')
	}
}

func cellString(b *storage.BAT, i int) string {
	switch b.Kind() {
	case storage.Flt:
		return strconv.FormatFloat(b.FltAt(i), 'g', -1, 64)
	case storage.Str:
		return b.StrAt(i)
	case storage.Bool:
		return strconv.FormatBool(b.BoolAt(i))
	case storage.Date:
		return sql.FormatDate(b.IntAt(i))
	default:
		return strconv.FormatInt(b.IntAt(i), 10)
	}
}

// Client is a minimal protocol client for tools and tests.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// DialServer connects and consumes the greeting.
func DialServer(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn)}
	greeting, err := c.r.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: %w", err)
	}
	if !strings.HasPrefix(greeting, "ok ") {
		conn.Close()
		return nil, fmt.Errorf("server: unexpected greeting %q", greeting)
	}
	return c, nil
}

// Command sends one line and collects the response: status plus payload
// lines up to the "." terminator for multiline responses.
func (c *Client) Command(line string) (string, []string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", nil, err
	}
	status, err := c.r.ReadString('\n')
	if err != nil {
		return "", nil, err
	}
	status = strings.TrimSpace(status)
	if strings.HasPrefix(status, "err") {
		return status, nil, fmt.Errorf("server: %s", status)
	}
	cmd := strings.ToUpper(strings.Fields(line)[0])
	if cmd != "EXPLAIN" && cmd != "ALGEBRA" && cmd != "DOT" && cmd != "QUERY" && cmd != "TABLES" && cmd != "STATS" && cmd != "HISTORY" && cmd != "METRICS" && cmd != "PROGRESS" {
		return status, nil, nil
	}
	var payload []string
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			return status, payload, err
		}
		l = strings.TrimRight(l, "\n")
		if l == "." {
			return status, payload, nil
		}
		payload = append(payload, l)
	}
}

// Close terminates the connection politely.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "quit")
	return c.conn.Close()
}
