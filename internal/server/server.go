// Package server implements the Mserver front-end of the reproduction:
// "Mserver is the MonetDB database server ... It listens for the incoming
// client connections on user defined ports. Stethoscope connects to
// Mserver as a client." (paper §3). The protocol is line-oriented over
// TCP: clients set execution options, point the profiler's UDP stream at
// a textual Stethoscope, and submit queries; plan dot files are emitted
// over the UDP stream before execution begins, exactly as §4.2 describes.
package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/dot"
	"stethoscope/internal/engine"
	"stethoscope/internal/mal"
	"stethoscope/internal/netproto"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
)

// Server wraps an engine behind the TCP command protocol.
type Server struct {
	Name string
	eng  *engine.Engine

	// ctx is the server lifetime: queries execute under it, so Close (or
	// cancellation of the parent context) aborts in-flight executions.
	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	ln    net.Listener
	lnErr error
	wg    sync.WaitGroup
}

// New creates a server over the catalog.
func New(name string, cat *storage.Catalog) *Server {
	return NewContext(context.Background(), name, cat)
}

// NewContext creates a server whose lifetime is bounded by ctx: when ctx
// is canceled the listener shuts down and running queries are aborted.
func NewContext(ctx context.Context, name string, cat *storage.Catalog) *Server {
	ctx, cancel := context.WithCancel(ctx)
	return &Server{Name: name, eng: engine.New(cat), ctx: ctx, cancel: cancel}
}

// Engine exposes the underlying engine (examples drive it directly).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Listen binds the TCP port ("127.0.0.1:0" picks a free one) and serves
// until Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.ctx.Done()
		err := ln.Close()
		s.mu.Lock()
		if s.lnErr == nil {
			s.lnErr = err
		}
		s.mu.Unlock()
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bound TCP address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, aborts running queries, and waits for in-flight
// connections. Closing the listener is delegated to the context watcher
// that Listen installs; its error is propagated here.
func (s *Server) Close() error {
	s.cancel()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lnErr
}

// session is per-connection state.
type session struct {
	srv        *Server
	partitions int
	workers    int
	filter     profiler.Filter
	streamer   *netproto.UDPStreamer
	prof       *profiler.Profiler
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	// Unblock the read loop when the server shuts down: without this,
	// Close would wait forever on a handler parked in sc.Scan for an
	// idle client. Closing a net.Conn twice is safe.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-s.ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	sess := &session{srv: s, partitions: 1, workers: 1}
	defer func() {
		if sess.streamer != nil {
			sess.streamer.Close()
		}
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	fmt.Fprintf(w, "ok stethoscope-mserver %s\n", s.Name)
	w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			fmt.Fprintln(w, "ok bye")
			w.Flush()
			return
		}
		sess.dispatch(w, line)
		w.Flush()
	}
}

func (sess *session) dispatch(w *bufio.Writer, line string) {
	cmd, rest := line, ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		cmd, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	switch strings.ToUpper(cmd) {
	case "SET":
		sess.cmdSet(w, rest)
	case "TRACE":
		sess.cmdTrace(w, rest)
	case "FILTER":
		sess.cmdFilter(w, rest)
	case "EXPLAIN":
		sess.cmdExplain(w, rest)
	case "ALGEBRA":
		sess.cmdAlgebra(w, rest)
	case "DOT":
		sess.cmdDot(w, rest)
	case "QUERY":
		sess.cmdQuery(w, rest)
	case "TABLES":
		fmt.Fprintln(w, "ok")
		for _, t := range sess.srv.eng.Catalog().TableNames() {
			fmt.Fprintln(w, t)
		}
		fmt.Fprintln(w, ".")
	default:
		fmt.Fprintf(w, "err unknown command %q\n", cmd)
	}
}

func (sess *session) cmdSet(w *bufio.Writer, rest string) {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		fmt.Fprintln(w, "err usage: SET <partitions|workers> <n>")
		return
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 {
		fmt.Fprintf(w, "err bad value %q\n", fields[1])
		return
	}
	switch strings.ToLower(fields[0]) {
	case "partitions":
		sess.partitions = n
	case "workers":
		sess.workers = n
	default:
		fmt.Fprintf(w, "err unknown setting %q\n", fields[0])
		return
	}
	fmt.Fprintln(w, "ok")
}

func (sess *session) cmdTrace(w *bufio.Writer, addr string) {
	if addr == "" {
		fmt.Fprintln(w, "err usage: TRACE <udp host:port>")
		return
	}
	streamer, err := netproto.Dial(addr)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	if sess.streamer != nil {
		sess.streamer.Close()
	}
	sess.streamer = streamer
	sess.prof = profiler.New(streamer)
	sess.prof.SetFilter(sess.filter)
	streamer.Hello(sess.srv.Name)
	fmt.Fprintln(w, "ok tracing to "+addr)
}

// cmdFilter parses "FILTER states=done modules=algebra,sql mindur=100
// pcs=1,2,3"; an empty rest clears the filter. This is the profiler-side
// filtering the paper's filter-options window drives.
func (sess *session) cmdFilter(w *bufio.Writer, rest string) {
	f := profiler.Filter{}
	for _, field := range strings.Fields(rest) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			fmt.Fprintf(w, "err bad filter term %q\n", field)
			return
		}
		switch kv[0] {
		case "states":
			for _, s := range strings.Split(kv[1], ",") {
				st, err := profiler.ParseState(s)
				if err != nil {
					fmt.Fprintf(w, "err %v\n", err)
					return
				}
				f.States = append(f.States, st)
			}
		case "modules":
			f.Modules = strings.Split(kv[1], ",")
		case "mindur":
			n, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "err bad mindur %q\n", kv[1])
				return
			}
			f.MinDurUs = n
		case "pcs":
			for _, s := range strings.Split(kv[1], ",") {
				n, err := strconv.Atoi(s)
				if err != nil {
					fmt.Fprintf(w, "err bad pc %q\n", s)
					return
				}
				f.PCs = append(f.PCs, n)
			}
		default:
			fmt.Fprintf(w, "err unknown filter key %q\n", kv[0])
			return
		}
	}
	sess.filter = f
	if sess.prof != nil {
		sess.prof.SetFilter(f)
	}
	fmt.Fprintln(w, "ok")
}

// compile turns SQL into an optimized MAL plan under the session's
// settings.
func (sess *session) compile(query string) (*mal.Plan, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	tree, err := algebra.Bind(stmt, sess.srv.eng.Catalog())
	if err != nil {
		return nil, err
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: sess.partitions})
	if err != nil {
		return nil, err
	}
	opt, _, err := optimizer.Default().Run(plan)
	if err != nil {
		return nil, err
	}
	return opt, nil
}

// cmdAlgebra prints the bound relational-algebra tree, the stage between
// SQL and MAL (paper §2).
func (sess *session) cmdAlgebra(w *bufio.Writer, query string) {
	stmt, err := sql.Parse(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	tree, err := algebra.Bind(stmt, sess.srv.eng.Catalog())
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprint(w, algebra.Tree(tree))
	fmt.Fprintln(w, ".")
}

func (sess *session) cmdExplain(w *bufio.Writer, query string) {
	plan, err := sess.compile(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprint(w, plan.String())
	fmt.Fprintln(w, ".")
}

func (sess *session) cmdDot(w *bufio.Writer, query string) {
	plan, err := sess.compile(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprint(w, dot.Export(plan).Marshal())
	fmt.Fprintln(w, ".")
}

func (sess *session) cmdQuery(w *bufio.Writer, query string) {
	plan, err := sess.compile(query)
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	// The server generates the dot file and sends it over the UDP stream
	// before query execution begins (§4.2).
	if sess.streamer != nil {
		sess.streamer.SendDot(query, dot.Export(plan).Marshal())
	}
	res, err := sess.srv.eng.RunContext(sess.srv.ctx, plan, engine.Options{
		Workers:  sess.workers,
		Profiler: sess.prof,
	})
	if err != nil {
		fmt.Fprintf(w, "err %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
	WriteResult(w, res)
	fmt.Fprintln(w, ".")
}

// WriteResult renders a result table as tab-separated text with a header
// line.
func WriteResult(w *bufio.Writer, res *engine.Result) {
	if res == nil {
		return
	}
	fmt.Fprintln(w, strings.Join(res.Names, "\t"))
	for i := 0; i < res.Rows(); i++ {
		for c, col := range res.Cols {
			if c > 0 {
				w.WriteByte('\t')
			}
			w.WriteString(cellString(col, i))
		}
		w.WriteByte('\n')
	}
}

func cellString(b *storage.BAT, i int) string {
	switch b.Kind() {
	case storage.Flt:
		return strconv.FormatFloat(b.FltAt(i), 'g', -1, 64)
	case storage.Str:
		return b.StrAt(i)
	case storage.Bool:
		return strconv.FormatBool(b.BoolAt(i))
	case storage.Date:
		return sql.FormatDate(b.IntAt(i))
	default:
		return strconv.FormatInt(b.IntAt(i), 10)
	}
}

// Client is a minimal protocol client for tools and tests.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// DialServer connects and consumes the greeting.
func DialServer(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn)}
	greeting, err := c.r.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: %w", err)
	}
	if !strings.HasPrefix(greeting, "ok ") {
		conn.Close()
		return nil, fmt.Errorf("server: unexpected greeting %q", greeting)
	}
	return c, nil
}

// Command sends one line and collects the response: status plus payload
// lines up to the "." terminator for multiline responses.
func (c *Client) Command(line string) (string, []string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", nil, err
	}
	status, err := c.r.ReadString('\n')
	if err != nil {
		return "", nil, err
	}
	status = strings.TrimSpace(status)
	if strings.HasPrefix(status, "err") {
		return status, nil, fmt.Errorf("server: %s", status)
	}
	cmd := strings.ToUpper(strings.Fields(line)[0])
	if cmd != "EXPLAIN" && cmd != "ALGEBRA" && cmd != "DOT" && cmd != "QUERY" && cmd != "TABLES" {
		return status, nil, nil
	}
	var payload []string
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			return status, payload, err
		}
		l = strings.TrimRight(l, "\n")
		if l == "." {
			return status, payload, nil
		}
		payload = append(payload, l)
	}
}

// Close terminates the connection politely.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "quit")
	return c.conn.Close()
}
