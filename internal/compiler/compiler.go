// Package compiler lowers a bound relational-algebra tree to a MAL plan,
// the representation Stethoscope visualizes. Code generation follows
// MonetDB's column-at-a-time style: every relational operator expands into
// per-column MAL instructions (sql.bind, algebra.select, algebra.leftjoin,
// group.subgroup, aggr.sub*, ...), so even modest queries produce the rich
// dataflow DAGs the paper's figures show.
//
// The Partitions option implements mitosis + mergetable: scan/filter
// pipelines are split into horizontal slices (mat.slice), processed
// independently, and reassembled (mat.pack). MonetDB performs this as a
// MAL optimizer; we perform it at lowering time, which yields the same
// plan shape — wide independent slices that the engine's dataflow
// scheduler runs on multiple cores (experiments F2 and E7).
package compiler

import (
	"fmt"

	"stethoscope/internal/algebra"
	"stethoscope/internal/mal"
	"stethoscope/internal/storage"
)

// Options controls code generation.
type Options struct {
	// Partitions is the mitosis fan-out; values <= 1 disable partitioning.
	Partitions int
}

// Compile lowers the tree to MAL. queryText is carried on the plan for
// display (the paper shows it as a header comment on the listing).
func Compile(tree algebra.Node, queryText string, opt Options) (*mal.Plan, error) {
	if opt.Partitions < 1 {
		opt.Partitions = 1
	}
	c := &compiler{plan: mal.NewPlan(queryText), opt: opt}
	c.prologue(queryText)
	r, err := c.lower(tree)
	if err != nil {
		return nil, err
	}
	c.epilogue(r)
	c.plan.Renumber()
	if err := c.plan.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: generated invalid plan: %w", err)
	}
	return c.plan, nil
}

// rel is a materialized intermediate relation: one aligned MAL BAT
// variable per schema column.
type rel struct {
	schema algebra.Schema
	cols   []int
}

type compiler struct {
	plan *mal.Plan
	opt  Options
}

// operand is a compiled scalar-or-column expression: either a MAL
// variable holding a BAT or an inline constant.
type operand struct {
	varID int // -1 when constant
	cnst  mal.Value
	kind  storage.Kind
}

func (o operand) isConst() bool { return o.varID < 0 }

func (o operand) arg() mal.Arg {
	if o.isConst() {
		return mal.ConstOf(o.cnst)
	}
	return mal.VarArg(o.varID)
}

func kindToMAL(k storage.Kind) mal.Type {
	switch k {
	case storage.Int:
		return mal.TInt
	case storage.Flt:
		return mal.TFlt
	case storage.Str:
		return mal.TStr
	case storage.Bool:
		return mal.TBool
	case storage.Date:
		return mal.TDate
	default:
		return mal.TOID
	}
}

func kindToBAT(k storage.Kind) mal.Type { return mal.BATOf(kindToMAL(k)) }

func constValue(c *algebra.Const) mal.Value {
	switch c.K {
	case storage.Flt:
		return mal.Float64(c.F)
	case storage.Str:
		return mal.Str(c.S)
	case storage.Bool:
		return mal.Bool(c.B)
	case storage.Date:
		return mal.Date(c.I)
	default:
		return mal.Int64(c.I)
	}
}

func (c *compiler) prologue(queryText string) {
	c.plan.Emit0("querylog", "define", mal.ConstOf(mal.Str(queryText)))
	c.plan.Emit1("sql", "mvc", mal.TInt)
}

func (c *compiler) epilogue(r rel) {
	rs := c.plan.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(int64(len(r.cols)))))
	for i, v := range r.cols {
		c.plan.Emit0("sql", "rsColumn",
			mal.VarArg(rs),
			mal.ConstOf(mal.Str(r.schema[i].Name)),
			mal.VarArg(v))
	}
	c.plan.Emit0("sql", "exportResult", mal.VarArg(rs))
}

func (c *compiler) lower(n algebra.Node) (rel, error) {
	switch t := n.(type) {
	case *algebra.Scan:
		return c.lowerScan(t), nil
	case *algebra.Filter:
		return c.lowerFilter(t)
	case *algebra.Join:
		return c.lowerJoin(t)
	case *algebra.GroupAgg:
		return c.lowerGroupAgg(t)
	case *algebra.Project:
		return c.lowerProject(t)
	case *algebra.Distinct:
		return c.lowerDistinct(t)
	case *algebra.Sort:
		return c.lowerSort(t)
	case *algebra.Limit:
		return c.lowerLimit(t)
	}
	return rel{}, fmt.Errorf("compiler: unsupported node %T", n)
}

func (c *compiler) bindScan(s *algebra.Scan) rel {
	r := rel{schema: s.Out}
	for _, col := range s.Out {
		v := c.plan.Emit1("sql", "bind", kindToBAT(col.Kind),
			mal.ConstOf(mal.Str(s.SchemaName)),
			mal.ConstOf(mal.Str(s.Table)),
			mal.ConstOf(mal.Str(col.Name)),
			mal.ConstOf(mal.Int64(0)))
		r.cols = append(r.cols, v)
	}
	return r
}

func (c *compiler) lowerScan(s *algebra.Scan) rel { return c.bindScan(s) }

// lowerFilter applies mitosis when the filter sits directly on a scan and
// partitioning is enabled; otherwise it filters the materialized input.
func (c *compiler) lowerFilter(f *algebra.Filter) (rel, error) {
	if scan, ok := f.Input.(*algebra.Scan); ok && c.opt.Partitions > 1 {
		return c.lowerPartitionedFilter(scan, f.Pred)
	}
	in, err := c.lower(f.Input)
	if err != nil {
		return rel{}, err
	}
	return c.applyFilter(in, f.Pred)
}

// applyFilter narrows rel to the rows satisfying pred and re-materializes
// every column through the resulting candidate list.
func (c *compiler) applyFilter(in rel, pred algebra.Expr) (rel, error) {
	cands, err := c.candidates(in, pred)
	if err != nil {
		return rel{}, err
	}
	return c.projectAll(in, cands), nil
}

// projectAll gathers all columns of in through the candidate list.
func (c *compiler) projectAll(in rel, cands int) rel {
	out := rel{schema: in.schema}
	for i, v := range in.cols {
		p := c.plan.Emit1("algebra", "leftjoin", kindToBAT(in.schema[i].Kind),
			mal.VarArg(cands), mal.VarArg(v))
		out.cols = append(out.cols, p)
	}
	return out
}

// candidates compiles pred into an oid candidate list over in. Simple
// conjunctions of single-column comparisons chain algebra.thetaselect /
// algebra.select with shrinking candidate lists (MonetDB's fast path);
// anything else falls back to elementwise boolean evaluation plus
// algebra.selectTrue.
func (c *compiler) candidates(in rel, pred algebra.Expr) (int, error) {
	conj := splitAnd(pred)
	if allSimple(conj) {
		cands := -1
		for _, p := range conj {
			next, err := c.simpleSelect(in, p, cands)
			if err != nil {
				return 0, err
			}
			cands = next
		}
		return cands, nil
	}
	boolVar, err := c.boolExpr(in, pred)
	if err != nil {
		return 0, err
	}
	return c.plan.Emit1("algebra", "selectTrue", mal.TBATOID, mal.VarArg(boolVar)), nil
}

// splitAnd flattens a conjunction.
func splitAnd(e algebra.Expr) []algebra.Expr {
	if b, ok := e.(*algebra.Bin); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []algebra.Expr{e}
}

// simple predicates: ColIdx cmp Const, Const cmp ColIdx, or
// Between(ColIdx, Const, Const).
func isSimple(e algebra.Expr) bool {
	switch t := e.(type) {
	case *algebra.Bin:
		switch t.Op {
		case "=", "!=", "<", "<=", ">", ">=":
		default:
			return false
		}
		if _, ok := t.L.(*algebra.ColIdx); ok {
			_, cok := t.R.(*algebra.Const)
			return cok
		}
		if _, ok := t.R.(*algebra.ColIdx); ok {
			_, cok := t.L.(*algebra.Const)
			return cok
		}
		return false
	case *algebra.Between:
		if _, ok := t.E.(*algebra.ColIdx); !ok {
			return false
		}
		_, lok := t.Lo.(*algebra.Const)
		_, hok := t.Hi.(*algebra.Const)
		return lok && hok
	}
	return false
}

func allSimple(conj []algebra.Expr) bool {
	for _, p := range conj {
		if !isSimple(p) {
			return false
		}
	}
	return true
}

var flipOp = map[string]string{"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

// simpleSelect emits a theta/range selection for one simple predicate,
// refining cands (-1 means "all rows").
func (c *compiler) simpleSelect(in rel, p algebra.Expr, cands int) (int, error) {
	switch t := p.(type) {
	case *algebra.Bin:
		col, ok := t.L.(*algebra.ColIdx)
		cst, _ := t.R.(*algebra.Const)
		op := t.Op
		if !ok {
			col = t.R.(*algebra.ColIdx)
			cst = t.L.(*algebra.Const)
			op = flipOp[op]
		}
		args := []mal.Arg{mal.VarArg(in.cols[col.Idx])}
		if cands >= 0 {
			args = append(args, mal.VarArg(cands))
		}
		args = append(args, mal.ConstOf(mal.Str(op)), mal.ConstOf(constValue(cst)))
		return c.plan.Emit1("algebra", "thetaselect", mal.TBATOID, args...), nil
	case *algebra.Between:
		col := t.E.(*algebra.ColIdx)
		lo := t.Lo.(*algebra.Const)
		hi := t.Hi.(*algebra.Const)
		args := []mal.Arg{mal.VarArg(in.cols[col.Idx])}
		if cands >= 0 {
			args = append(args, mal.VarArg(cands))
		}
		args = append(args,
			mal.ConstOf(constValue(lo)), mal.ConstOf(constValue(hi)),
			mal.ConstOf(mal.Bool(true)), mal.ConstOf(mal.Bool(true)))
		return c.plan.Emit1("algebra", "select", mal.TBATOID, args...), nil
	}
	return 0, fmt.Errorf("compiler: not a simple predicate: %s", p)
}

// boolExpr evaluates pred elementwise into a bat[:bit] column.
func (c *compiler) boolExpr(in rel, pred algebra.Expr) (int, error) {
	op, err := c.expr(in, pred)
	if err != nil {
		return 0, err
	}
	if op.isConst() {
		return 0, fmt.Errorf("compiler: constant predicate %s not supported as filter", pred)
	}
	if op.kind != storage.Bool {
		return 0, fmt.Errorf("compiler: predicate of kind %s", op.kind)
	}
	return op.varID, nil
}

var cmpFunc = map[string]string{"=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
var arithFunc = map[string]string{"+": "add", "-": "sub", "*": "mul", "/": "div"}

// expr compiles a scalar expression over the aligned columns of in into
// batcalc instructions, constant-folding pure-constant subtrees.
func (c *compiler) expr(in rel, e algebra.Expr) (operand, error) {
	switch t := e.(type) {
	case *algebra.ColIdx:
		return operand{varID: in.cols[t.Idx], kind: t.Col.Kind}, nil
	case *algebra.Const:
		return operand{varID: -1, cnst: constValue(t), kind: t.K}, nil
	case *algebra.Not:
		inner, err := c.expr(in, t.E)
		if err != nil {
			return operand{}, err
		}
		if inner.isConst() {
			return operand{varID: -1, cnst: mal.Bool(!inner.cnst.Bool), kind: storage.Bool}, nil
		}
		v := c.plan.Emit1("batcalc", "not", mal.TBATBool, mal.VarArg(inner.varID))
		return operand{varID: v, kind: storage.Bool}, nil
	case *algebra.Between:
		col, err := c.expr(in, t.E)
		if err != nil {
			return operand{}, err
		}
		lo, err := c.expr(in, t.Lo)
		if err != nil {
			return operand{}, err
		}
		hi, err := c.expr(in, t.Hi)
		if err != nil {
			return operand{}, err
		}
		v := c.plan.Emit1("batcalc", "between", mal.TBATBool, col.arg(), lo.arg(), hi.arg())
		return operand{varID: v, kind: storage.Bool}, nil
	case *algebra.Like:
		inner, err := c.expr(in, t.E)
		if err != nil {
			return operand{}, err
		}
		if inner.isConst() {
			return operand{}, fmt.Errorf("compiler: like over a constant")
		}
		v := c.plan.Emit1("batcalc", "like", mal.TBATBool,
			mal.VarArg(inner.varID), mal.ConstOf(mal.Str(t.Pattern)))
		return operand{varID: v, kind: storage.Bool}, nil
	case *algebra.Bin:
		l, err := c.expr(in, t.L)
		if err != nil {
			return operand{}, err
		}
		r, err := c.expr(in, t.R)
		if err != nil {
			return operand{}, err
		}
		if l.isConst() && r.isConst() {
			folded, err := foldConst(t.Op, l, r, t.K)
			if err != nil {
				return operand{}, err
			}
			return folded, nil
		}
		var fn string
		switch t.Op {
		case "+", "-", "*", "/":
			fn = arithFunc[t.Op]
		case "=", "!=", "<", "<=", ">", ">=":
			fn = cmpFunc[t.Op]
		case "and", "or":
			fn = t.Op
		default:
			return operand{}, fmt.Errorf("compiler: unknown operator %q", t.Op)
		}
		v := c.plan.Emit1("batcalc", fn, kindToBAT(t.K), l.arg(), r.arg())
		return operand{varID: v, kind: t.K}, nil
	}
	return operand{}, fmt.Errorf("compiler: cannot compile expression %T", e)
}

// foldConst evaluates constant-constant operations at compile time.
func foldConst(op string, l, r operand, k storage.Kind) (operand, error) {
	lf := func(o operand) float64 {
		if o.cnst.Type == mal.TFlt {
			return o.cnst.Flt
		}
		return float64(o.cnst.Int)
	}
	switch op {
	case "+", "-", "*", "/":
		a, b := lf(l), lf(r)
		var v float64
		switch op {
		case "+":
			v = a + b
		case "-":
			v = a - b
		case "*":
			v = a * b
		default:
			if b != 0 {
				v = a / b
			}
		}
		if k == storage.Flt {
			return operand{varID: -1, cnst: mal.Float64(v), kind: k}, nil
		}
		return operand{varID: -1, cnst: mal.Int64(int64(v)), kind: k}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		var cmp int
		if l.kind == storage.Str {
			switch {
			case l.cnst.Str < r.cnst.Str:
				cmp = -1
			case l.cnst.Str > r.cnst.Str:
				cmp = 1
			}
		} else {
			a, b := lf(l), lf(r)
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
		}
		var v bool
		switch op {
		case "=":
			v = cmp == 0
		case "!=":
			v = cmp != 0
		case "<":
			v = cmp < 0
		case "<=":
			v = cmp <= 0
		case ">":
			v = cmp > 0
		default:
			v = cmp >= 0
		}
		return operand{varID: -1, cnst: mal.Bool(v), kind: storage.Bool}, nil
	case "and":
		return operand{varID: -1, cnst: mal.Bool(l.cnst.Bool && r.cnst.Bool), kind: storage.Bool}, nil
	case "or":
		return operand{varID: -1, cnst: mal.Bool(l.cnst.Bool || r.cnst.Bool), kind: storage.Bool}, nil
	}
	return operand{}, fmt.Errorf("compiler: cannot fold %q", op)
}

// lowerPartitionedFilter is the mitosis path: slice every scanned column
// into Partitions horizontal pieces (mat.slice), run the selection and
// projection chain per slice, and reassemble with mat.pack (mergetable).
func (c *compiler) lowerPartitionedFilter(scan *algebra.Scan, pred algebra.Expr) (rel, error) {
	base := c.bindScan(scan)
	k := c.opt.Partitions

	// Per-partition output vars, per column.
	parts := make([][]int, len(base.cols))
	for p := 0; p < k; p++ {
		sliced := rel{schema: base.schema}
		for _, v := range base.cols {
			sv := c.plan.Emit1("mat", "slice", c.plan.VarType(v),
				mal.VarArg(v), mal.ConstOf(mal.Int64(int64(p))), mal.ConstOf(mal.Int64(int64(k))))
			sliced.cols = append(sliced.cols, sv)
		}
		cands, err := c.candidates(sliced, pred)
		if err != nil {
			return rel{}, err
		}
		for i, v := range sliced.cols {
			pv := c.plan.Emit1("algebra", "leftjoin", kindToBAT(base.schema[i].Kind),
				mal.VarArg(cands), mal.VarArg(v))
			parts[i] = append(parts[i], pv)
		}
	}
	out := rel{schema: base.schema}
	for i := range base.cols {
		args := make([]mal.Arg, len(parts[i]))
		for j, pv := range parts[i] {
			args[j] = mal.VarArg(pv)
		}
		packed := c.plan.Emit1("mat", "pack", kindToBAT(base.schema[i].Kind), args...)
		out.cols = append(out.cols, packed)
	}
	return out, nil
}

func (c *compiler) lowerJoin(j *algebra.Join) (rel, error) {
	l, err := c.lower(j.L)
	if err != nil {
		return rel{}, err
	}
	r, err := c.lower(j.R)
	if err != nil {
		return rel{}, err
	}
	lo := c.plan.NewVar(mal.TBATOID)
	ro := c.plan.NewVar(mal.TBATOID)
	c.plan.Emit("algebra", "join", []int{lo, ro},
		mal.VarArg(l.cols[j.LKey]), mal.VarArg(r.cols[j.RKey]))
	out := rel{schema: j.Schema()}
	for i, v := range l.cols {
		p := c.plan.Emit1("algebra", "leftjoin", kindToBAT(l.schema[i].Kind),
			mal.VarArg(lo), mal.VarArg(v))
		out.cols = append(out.cols, p)
	}
	for i, v := range r.cols {
		p := c.plan.Emit1("algebra", "leftjoin", kindToBAT(r.schema[i].Kind),
			mal.VarArg(ro), mal.VarArg(v))
		out.cols = append(out.cols, p)
	}
	return out, nil
}

var aggrFunc = map[storage.AggrKind]string{
	storage.AggrSum:   "sum",
	storage.AggrCount: "count",
	storage.AggrMin:   "min",
	storage.AggrMax:   "max",
	storage.AggrAvg:   "avg",
}

func (c *compiler) lowerGroupAgg(g *algebra.GroupAgg) (rel, error) {
	in, err := c.lower(g.Input)
	if err != nil {
		return rel{}, err
	}
	out := rel{schema: g.Schema()}

	if len(g.Keys) == 0 {
		// Global aggregates: one-row results.
		for _, a := range g.Aggs {
			v, err := c.globalAggr(in, a)
			if err != nil {
				return rel{}, err
			}
			out.cols = append(out.cols, v)
		}
		return out, nil
	}

	// Chain group.subgroup over the key expressions.
	groups, extents := -1, -1
	for _, kx := range g.Keys {
		kv, err := c.exprVar(in, kx)
		if err != nil {
			return rel{}, err
		}
		ng := c.plan.NewVar(mal.TBATOID)
		ne := c.plan.NewVar(mal.TBATOID)
		args := []mal.Arg{mal.VarArg(kv)}
		if groups >= 0 {
			args = append(args, mal.VarArg(groups))
		}
		c.plan.Emit("group", "subgroup", []int{ng, ne}, args...)
		groups, extents = ng, ne
	}
	// Key output columns: representative rows via extents.
	for i, kx := range g.Keys {
		kv, err := c.exprVar(in, kx)
		if err != nil {
			return rel{}, err
		}
		v := c.plan.Emit1("algebra", "leftjoin", kindToBAT(g.Keys[i].Kind()),
			mal.VarArg(extents), mal.VarArg(kv))
		out.cols = append(out.cols, v)
	}
	for _, a := range g.Aggs {
		var v int
		if a.CountStar {
			v = c.plan.Emit1("aggr", "subcount", mal.TBATInt,
				mal.VarArg(groups), mal.VarArg(extents))
		} else {
			av, err := c.exprVar(in, a.Arg)
			if err != nil {
				return rel{}, err
			}
			v = c.plan.Emit1("aggr", "sub"+aggrFunc[a.Func], kindToBAT(a.K),
				mal.VarArg(av), mal.VarArg(groups), mal.VarArg(extents))
		}
		out.cols = append(out.cols, v)
	}
	return out, nil
}

func (c *compiler) globalAggr(in rel, a algebra.AggSpec) (int, error) {
	if a.CountStar {
		return c.plan.Emit1("aggr", "count", mal.TBATInt, mal.VarArg(in.cols[0])), nil
	}
	av, err := c.exprVar(in, a.Arg)
	if err != nil {
		return 0, err
	}
	return c.plan.Emit1("aggr", aggrFunc[a.Func], kindToBAT(a.K), mal.VarArg(av)), nil
}

// exprVar compiles an expression and forces a BAT variable result
// (constants are not legal as full columns here).
func (c *compiler) exprVar(in rel, e algebra.Expr) (int, error) {
	op, err := c.expr(in, e)
	if err != nil {
		return 0, err
	}
	if op.isConst() {
		// Materialize a constant column aligned with the relation.
		v := c.plan.Emit1("batcalc", "const", kindToBAT(op.kind),
			mal.ConstOf(op.cnst), mal.VarArg(in.cols[0]))
		return v, nil
	}
	return op.varID, nil
}

func (c *compiler) lowerProject(p *algebra.Project) (rel, error) {
	in, err := c.lower(p.Input)
	if err != nil {
		return rel{}, err
	}
	out := rel{schema: p.Schema()}
	for _, e := range p.Exprs {
		v, err := c.exprVar(in, e)
		if err != nil {
			return rel{}, err
		}
		out.cols = append(out.cols, v)
	}
	return out, nil
}

func (c *compiler) lowerDistinct(d *algebra.Distinct) (rel, error) {
	in, err := c.lower(d.Input)
	if err != nil {
		return rel{}, err
	}
	groups, extents := -1, -1
	for _, v := range in.cols {
		ng := c.plan.NewVar(mal.TBATOID)
		ne := c.plan.NewVar(mal.TBATOID)
		args := []mal.Arg{mal.VarArg(v)}
		if groups >= 0 {
			args = append(args, mal.VarArg(groups))
		}
		c.plan.Emit("group", "subgroup", []int{ng, ne}, args...)
		groups, extents = ng, ne
	}
	return c.projectAll(in, extents), nil
}

func (c *compiler) lowerSort(s *algebra.Sort) (rel, error) {
	in, err := c.lower(s.Input)
	if err != nil {
		return rel{}, err
	}
	// Stable multi-key sort: apply keys from least to most significant;
	// each pass permutes every column through the sort order.
	cur := in
	for i := len(s.Keys) - 1; i >= 0; i-- {
		k := s.Keys[i]
		perm := c.plan.Emit1("algebra", "sortTail", mal.TBATOID,
			mal.VarArg(cur.cols[k.Idx]), mal.ConstOf(mal.Bool(!k.Desc)))
		cur = c.projectAll(cur, perm)
	}
	return cur, nil
}

func (c *compiler) lowerLimit(l *algebra.Limit) (rel, error) {
	in, err := c.lower(l.Input)
	if err != nil {
		return rel{}, err
	}
	out := rel{schema: in.schema}
	for i, v := range in.cols {
		s := c.plan.Emit1("algebra", "slice", kindToBAT(in.schema[i].Kind),
			mal.VarArg(v), mal.ConstOf(mal.Int64(0)), mal.ConstOf(mal.Int64(l.N)))
		out.cols = append(out.cols, s)
	}
	return out, nil
}
