// Package compiler lowers a bound relational-algebra tree to a MAL plan,
// the representation Stethoscope visualizes. Code generation follows
// MonetDB's column-at-a-time style: every relational operator expands into
// per-column MAL instructions (sql.bind, algebra.select, algebra.leftjoin,
// group.subgroup, aggr.sub*, ...), so even modest queries produce the rich
// dataflow DAGs the paper's figures show.
//
// The Partitions option implements mitosis + mergetable: scans are split
// into horizontal slices (mat.slice) and the operators above them —
// filters, projections, aggregations, group-bys, distinct, join probes,
// sorts — run once per slice, reassembling (mat.pack) only where an
// operator genuinely needs the whole relation (the build side of a
// join, limits, the result set). Partial results recombine
// mergetable-style: partial sums and counts are summed, partial
// minima/maxima re-minimized (skipping empty slices), per-slice group
// representatives are regrouped, per-slice join-probe outputs
// concatenate in slice order, per-slice sorted runs merge through the
// stable mat.kmerge kernel (with ORDER BY ... LIMIT truncating each run
// to the limit first). MonetDB performs this as a MAL optimizer; we
// perform it at lowering time, which yields the same plan shape — wide
// independent slices that the engine's dataflow scheduler runs on
// multiple cores (experiments F2 and E7). Degenerate fragments this
// lowering can leave behind (packs of one slice, packs that reassemble
// an unmodified scan, builds probed exactly once) are folded away by
// the optimizer's matfold pass.
package compiler

import (
	"fmt"

	"stethoscope/internal/algebra"
	"stethoscope/internal/mal"
	"stethoscope/internal/storage"
)

// Options controls code generation.
type Options struct {
	// Partitions is the mitosis fan-out; values <= 1 disable partitioning.
	Partitions int
	// Morsel selects morsel-driven lowering: instead of static mitosis
	// slices, the operator chain above each scan is compiled into a
	// fragment (mal.Fragment) that a single mat.morsel instruction runs
	// morsel-at-a-time — workers pull fixed-size row ranges from a
	// shared cursor and run the whole filter/project/probe/partial-agg
	// chain per morsel, so intermediates stay bounded by
	// workers × morsel rows. The combine stages (mergetable
	// recombination, k-way sort merge) are the same ones the static
	// path uses; sorts in particular close the fragment and reuse the
	// static slice/sort/kmerge lowering unchanged.
	Morsel bool
}

// Compile lowers the tree to MAL. queryText is carried on the plan for
// display (the paper shows it as a header comment on the listing).
func Compile(tree algebra.Node, queryText string, opt Options) (*mal.Plan, error) {
	if opt.Partitions < 1 {
		opt.Partitions = 1
	}
	c := &compiler{plan: mal.NewPlan(queryText), opt: opt}
	c.prologue(queryText)
	r, err := c.lower(tree)
	if err != nil {
		return nil, err
	}
	c.epilogue(c.packed(r))
	c.plan.Renumber()
	if err := c.plan.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: generated invalid plan: %w", err)
	}
	return c.plan, nil
}

// rel is an intermediate relation in one of three shapes. Packed: one
// aligned MAL BAT variable per schema column (cols). Partitioned (the
// mitosis form): parts[p][i] holds column i of horizontal slice p; the
// slices concatenated in order are the relation. Lazily partitioned
// (sliceable): a scan whose bound columns sit in cols and whose
// slicing is deferred — the first operator that actually works
// partition-wise materializes the mat.slice instructions
// (forcePartitioned), while a consumer that needs the whole relation
// takes the bound columns as-is, so scans nothing exploits never pay a
// slice/pack chain regardless of which optimizer passes run. Operators
// that work row-at-a-time (filter, project) consume and produce the
// partitioned form unchanged; aggregation merges it; everything else
// packs first.
type rel struct {
	schema algebra.Schema
	cols   []int
	parts  [][]int
	// sliceable marks cols as a scan eligible for deferred mitosis
	// slicing into opt.Partitions pieces.
	sliceable bool
	// morselable marks cols as a scan eligible for deferred morsel
	// lowering (the morsel-mode analogue of sliceable): the first
	// operator that works morsel-wise opens a fragment over the bound
	// columns, while a consumer that needs the whole relation takes
	// them as-is.
	morselable bool
	// frag, when non-nil, is the morsel form: cols are variable ids in
	// the fragment's own plan, and the relation's rows are whatever the
	// fragment computes per morsel, concatenated in morsel order.
	frag *fragBuild
}

func (r rel) partitioned() bool { return r.parts != nil || r.sliceable }

// morselish reports the morsel form (open fragment or a scan eligible
// to open one).
func (r rel) morselish() bool { return r.frag != nil || r.morselable }

// part views one slice of a partitioned rel as a packed rel.
func (r rel) part(p int) rel { return rel{schema: r.schema, cols: r.parts[p]} }

// forcePartitioned materializes the mitosis form: a lazily-sliceable
// scan emits its mat.slice instructions now; an already-partitioned
// rel passes through.
func (c *compiler) forcePartitioned(r rel) rel {
	if !r.sliceable {
		return r
	}
	k := c.opt.Partitions
	out := rel{schema: r.schema, parts: make([][]int, k)}
	for p := 0; p < k; p++ {
		for _, v := range r.cols {
			sv := c.plan.Emit1("mat", "slice", c.plan.VarType(v),
				mal.VarArg(v), mal.ConstOf(mal.Int64(int64(p))), mal.ConstOf(mal.Int64(int64(k))))
			out.parts[p] = append(out.parts[p], sv)
		}
	}
	return out
}

// packed reassembles a partitioned rel with one mat.pack per column
// (mergetable). A lazily-sliceable scan is already whole — its bound
// columns are returned directly, with no instructions emitted — and
// packed input passes through untouched.
func (c *compiler) packed(r rel) rel {
	if r.frag != nil {
		return c.closeFrag(r)
	}
	if r.sliceable || r.morselable {
		return rel{schema: r.schema, cols: r.cols}
	}
	if r.parts == nil {
		return r
	}
	out := rel{schema: r.schema}
	for i := range r.schema {
		args := make([]mal.Arg, len(r.parts))
		for p := range r.parts {
			args[p] = mal.VarArg(r.parts[p][i])
		}
		out.cols = append(out.cols, c.plan.Emit1("mat", "pack", kindToBAT(r.schema[i].Kind), args...))
	}
	return out
}

type compiler struct {
	plan *mal.Plan
	opt  Options
}

// fragBuild accumulates one morsel fragment while operators lower into
// it: f is the fragment under construction, srcs/caps are the OUTER
// plan variables feeding its Params/Caps (in order), capIdx dedups
// captures so a value used by several operators rides in once.
type fragBuild struct {
	f      *mal.Fragment
	srcs   []int
	caps   []int
	capIdx map[int]int
}

// forceMorsel opens a fragment over a morselable scan: one fragment
// parameter per bound column, typed like the outer variable. A rel
// whose fragment is already open passes through.
func (c *compiler) forceMorsel(r rel) rel {
	if r.frag != nil || !r.morselable {
		return r
	}
	fb := &fragBuild{f: &mal.Fragment{Plan: mal.NewPlan("")}, capIdx: map[int]int{}}
	out := rel{schema: r.schema, frag: fb}
	for _, v := range r.cols {
		fv := fb.f.Plan.NewVar(c.plan.VarType(v))
		fb.f.Params = append(fb.f.Params, fv)
		fb.srcs = append(fb.srcs, v)
		out.cols = append(out.cols, fv)
	}
	return out
}

// capture imports an outer value (a hash table, a packed build column)
// into the fragment as a Cap, deduplicating repeat captures.
func (c *compiler) capture(fb *fragBuild, outer int) int {
	if fv, ok := fb.capIdx[outer]; ok {
		return fv
	}
	fv := fb.f.Plan.NewVar(c.plan.VarType(outer))
	fb.f.Caps = append(fb.f.Caps, fv)
	fb.caps = append(fb.caps, outer)
	fb.capIdx[outer] = fv
	return fv
}

// inFrag runs fn with the compiler's emission target swapped to the
// fragment's plan, so every lowering helper (applyFilter, exprVar,
// subgroupChain, ...) works unchanged inside fragments.
func (c *compiler) inFrag(fb *fragBuild, fn func() error) error {
	saved := c.plan
	c.plan = fb.f.Plan
	err := fn()
	c.plan = saved
	return err
}

// closeFragVars registers the fragment with outs as its per-morsel
// exports and emits the outer mat.morsel instruction:
//
//	rets := mat.morsel(fragID, nSrc, nCap, src..., cap...)
//
// returning one outer variable per export, holding the exports packed
// across morsels in morsel order.
func (c *compiler) closeFragVars(fb *fragBuild, outs []int) []int {
	fb.f.Outs = append([]int(nil), outs...)
	id := len(c.plan.Frags)
	c.plan.Frags = append(c.plan.Frags, fb.f)
	args := []mal.Arg{
		mal.ConstOf(mal.Int64(int64(id))),
		mal.ConstOf(mal.Int64(int64(len(fb.srcs)))),
		mal.ConstOf(mal.Int64(int64(len(fb.caps)))),
	}
	for _, v := range fb.srcs {
		args = append(args, mal.VarArg(v))
	}
	for _, v := range fb.caps {
		args = append(args, mal.VarArg(v))
	}
	rets := make([]int, len(outs))
	for i, fv := range outs {
		rets[i] = c.plan.NewVar(fb.f.Plan.VarType(fv))
	}
	c.plan.Emit("mat", "morsel", rets, args...)
	return rets
}

// closeFrag closes a morsel rel: its fragment columns become the
// fragment's exports and the rel continues packed on the mat.morsel
// returns.
func (c *compiler) closeFrag(r rel) rel {
	return rel{schema: r.schema, cols: c.closeFragVars(r.frag, r.cols)}
}

// operand is a compiled scalar-or-column expression: either a MAL
// variable holding a BAT or an inline constant.
type operand struct {
	varID int // -1 when constant
	cnst  mal.Value
	kind  storage.Kind
}

func (o operand) isConst() bool { return o.varID < 0 }

func (o operand) arg() mal.Arg {
	if o.isConst() {
		return mal.ConstOf(o.cnst)
	}
	return mal.VarArg(o.varID)
}

func kindToMAL(k storage.Kind) mal.Type {
	switch k {
	case storage.Int:
		return mal.TInt
	case storage.Flt:
		return mal.TFlt
	case storage.Str:
		return mal.TStr
	case storage.Bool:
		return mal.TBool
	case storage.Date:
		return mal.TDate
	default:
		return mal.TOID
	}
}

func kindToBAT(k storage.Kind) mal.Type { return mal.BATOf(kindToMAL(k)) }

func constValue(c *algebra.Const) mal.Value {
	switch c.K {
	case storage.Flt:
		return mal.Float64(c.F)
	case storage.Str:
		return mal.Str(c.S)
	case storage.Bool:
		return mal.Bool(c.B)
	case storage.Date:
		return mal.Date(c.I)
	default:
		return mal.Int64(c.I)
	}
}

func (c *compiler) prologue(queryText string) {
	c.plan.Emit0("querylog", "define", mal.ConstOf(mal.Str(queryText)))
	c.plan.Emit1("sql", "mvc", mal.TInt)
}

func (c *compiler) epilogue(r rel) {
	rs := c.plan.Emit1("sql", "resultSet", mal.TInt, mal.ConstOf(mal.Int64(int64(len(r.cols)))))
	for i, v := range r.cols {
		c.plan.Emit0("sql", "rsColumn",
			mal.VarArg(rs),
			mal.ConstOf(mal.Str(r.schema[i].Name)),
			mal.VarArg(v))
	}
	c.plan.Emit0("sql", "exportResult", mal.VarArg(rs))
}

func (c *compiler) lower(n algebra.Node) (rel, error) {
	switch t := n.(type) {
	case *algebra.Scan:
		return c.lowerScan(t), nil
	case *algebra.Filter:
		return c.lowerFilter(t)
	case *algebra.Join:
		return c.lowerJoin(t)
	case *algebra.GroupAgg:
		return c.lowerGroupAgg(t)
	case *algebra.Project:
		return c.lowerProject(t)
	case *algebra.Distinct:
		return c.lowerDistinct(t)
	case *algebra.Sort:
		return c.lowerSort(t)
	case *algebra.Limit:
		return c.lowerLimit(t)
	}
	return rel{}, fmt.Errorf("compiler: unsupported node %T", n)
}

func (c *compiler) bindScan(s *algebra.Scan) rel {
	r := rel{schema: s.Out}
	for _, col := range s.Out {
		v := c.plan.Emit1("sql", "bind", kindToBAT(col.Kind),
			mal.ConstOf(mal.Str(s.SchemaName)),
			mal.ConstOf(mal.Str(s.Table)),
			mal.ConstOf(mal.Str(col.Name)),
			mal.ConstOf(mal.Int64(0)))
		r.cols = append(r.cols, v)
	}
	return r
}

// lowerScan binds the table columns and, with partitioning enabled,
// marks them sliceable: the first downstream operator that works
// partition-wise (filters, projections, aggregates, join probes,
// sorts) materializes the mitosis slices and runs once per slice until
// something forces a pack, while consumers that need the whole
// relation (a join's build side, plain limits, the result epilogue)
// take the bound columns directly with no mitosis overhead at all.
func (c *compiler) lowerScan(s *algebra.Scan) rel {
	base := c.bindScan(s)
	if c.opt.Morsel {
		base.morselable = true
		return base
	}
	if c.opt.Partitions <= 1 {
		return base
	}
	base.sliceable = true
	return base
}

// lowerFilter filters each partition independently when the input is in
// the mitosis form (selection is row-local), and the packed relation
// otherwise.
func (c *compiler) lowerFilter(f *algebra.Filter) (rel, error) {
	in, err := c.lower(f.Input)
	if err != nil {
		return rel{}, err
	}
	if in.morselish() {
		in = c.forceMorsel(in)
		out := rel{frag: in.frag}
		err := c.inFrag(in.frag, func() error {
			fr, ferr := c.applyFilter(in, f.Pred)
			out.schema, out.cols = fr.schema, fr.cols
			return ferr
		})
		return out, err
	}
	if !in.partitioned() {
		return c.applyFilter(in, f.Pred)
	}
	in = c.forcePartitioned(in)
	out := rel{schema: in.schema, parts: make([][]int, len(in.parts))}
	for p := range in.parts {
		fp, err := c.applyFilter(in.part(p), f.Pred)
		if err != nil {
			return rel{}, err
		}
		out.parts[p] = fp.cols
	}
	return out, nil
}

// applyFilter narrows rel to the rows satisfying pred and re-materializes
// every column through the resulting candidate list.
func (c *compiler) applyFilter(in rel, pred algebra.Expr) (rel, error) {
	cands, err := c.candidates(in, pred)
	if err != nil {
		return rel{}, err
	}
	return c.projectAll(in, cands), nil
}

// projectAll gathers all columns of in through the candidate list.
func (c *compiler) projectAll(in rel, cands int) rel {
	out := rel{schema: in.schema}
	for i, v := range in.cols {
		p := c.plan.Emit1("algebra", "leftjoin", kindToBAT(in.schema[i].Kind),
			mal.VarArg(cands), mal.VarArg(v))
		out.cols = append(out.cols, p)
	}
	return out
}

// candidates compiles pred into an oid candidate list over in. Simple
// conjunctions of single-column comparisons chain algebra.thetaselect /
// algebra.select with shrinking candidate lists (MonetDB's fast path);
// anything else falls back to elementwise boolean evaluation plus
// algebra.selectTrue.
func (c *compiler) candidates(in rel, pred algebra.Expr) (int, error) {
	conj := splitAnd(pred)
	if allSimple(conj) {
		cands := -1
		for _, p := range conj {
			next, err := c.simpleSelect(in, p, cands)
			if err != nil {
				return 0, err
			}
			cands = next
		}
		return cands, nil
	}
	boolVar, err := c.boolExpr(in, pred)
	if err != nil {
		return 0, err
	}
	return c.plan.Emit1("algebra", "selectTrue", mal.TBATOID, mal.VarArg(boolVar)), nil
}

// splitAnd flattens a conjunction.
func splitAnd(e algebra.Expr) []algebra.Expr {
	if b, ok := e.(*algebra.Bin); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []algebra.Expr{e}
}

// simple predicates: ColIdx cmp Const, Const cmp ColIdx, or
// Between(ColIdx, Const, Const).
func isSimple(e algebra.Expr) bool {
	switch t := e.(type) {
	case *algebra.Bin:
		switch t.Op {
		case "=", "!=", "<", "<=", ">", ">=":
		default:
			return false
		}
		if _, ok := t.L.(*algebra.ColIdx); ok {
			_, cok := t.R.(*algebra.Const)
			return cok
		}
		if _, ok := t.R.(*algebra.ColIdx); ok {
			_, cok := t.L.(*algebra.Const)
			return cok
		}
		return false
	case *algebra.Between:
		if _, ok := t.E.(*algebra.ColIdx); !ok {
			return false
		}
		_, lok := t.Lo.(*algebra.Const)
		_, hok := t.Hi.(*algebra.Const)
		return lok && hok
	}
	return false
}

func allSimple(conj []algebra.Expr) bool {
	for _, p := range conj {
		if !isSimple(p) {
			return false
		}
	}
	return true
}

var flipOp = map[string]string{"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

// simpleSelect emits a theta/range selection for one simple predicate,
// refining cands (-1 means "all rows").
func (c *compiler) simpleSelect(in rel, p algebra.Expr, cands int) (int, error) {
	switch t := p.(type) {
	case *algebra.Bin:
		col, ok := t.L.(*algebra.ColIdx)
		cst, _ := t.R.(*algebra.Const)
		op := t.Op
		if !ok {
			col = t.R.(*algebra.ColIdx)
			cst = t.L.(*algebra.Const)
			op = flipOp[op]
		}
		args := []mal.Arg{mal.VarArg(in.cols[col.Idx])}
		if cands >= 0 {
			args = append(args, mal.VarArg(cands))
		}
		args = append(args, mal.ConstOf(mal.Str(op)), mal.ConstOf(constValue(cst)))
		return c.plan.Emit1("algebra", "thetaselect", mal.TBATOID, args...), nil
	case *algebra.Between:
		col := t.E.(*algebra.ColIdx)
		lo := t.Lo.(*algebra.Const)
		hi := t.Hi.(*algebra.Const)
		args := []mal.Arg{mal.VarArg(in.cols[col.Idx])}
		if cands >= 0 {
			args = append(args, mal.VarArg(cands))
		}
		args = append(args,
			mal.ConstOf(constValue(lo)), mal.ConstOf(constValue(hi)),
			mal.ConstOf(mal.Bool(true)), mal.ConstOf(mal.Bool(true)))
		return c.plan.Emit1("algebra", "select", mal.TBATOID, args...), nil
	}
	return 0, fmt.Errorf("compiler: not a simple predicate: %s", p)
}

// boolExpr evaluates pred elementwise into a bat[:bit] column.
func (c *compiler) boolExpr(in rel, pred algebra.Expr) (int, error) {
	op, err := c.expr(in, pred)
	if err != nil {
		return 0, err
	}
	if op.isConst() {
		return 0, fmt.Errorf("compiler: constant predicate %s not supported as filter", pred)
	}
	if op.kind != storage.Bool {
		return 0, fmt.Errorf("compiler: predicate of kind %s", op.kind)
	}
	return op.varID, nil
}

var cmpFunc = map[string]string{"=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
var arithFunc = map[string]string{"+": "add", "-": "sub", "*": "mul", "/": "div"}

// expr compiles a scalar expression over the aligned columns of in into
// batcalc instructions, constant-folding pure-constant subtrees.
func (c *compiler) expr(in rel, e algebra.Expr) (operand, error) {
	switch t := e.(type) {
	case *algebra.ColIdx:
		return operand{varID: in.cols[t.Idx], kind: t.Col.Kind}, nil
	case *algebra.Const:
		return operand{varID: -1, cnst: constValue(t), kind: t.K}, nil
	case *algebra.Not:
		inner, err := c.expr(in, t.E)
		if err != nil {
			return operand{}, err
		}
		if inner.isConst() {
			return operand{varID: -1, cnst: mal.Bool(!inner.cnst.Bool), kind: storage.Bool}, nil
		}
		v := c.plan.Emit1("batcalc", "not", mal.TBATBool, mal.VarArg(inner.varID))
		return operand{varID: v, kind: storage.Bool}, nil
	case *algebra.Between:
		col, err := c.expr(in, t.E)
		if err != nil {
			return operand{}, err
		}
		lo, err := c.expr(in, t.Lo)
		if err != nil {
			return operand{}, err
		}
		hi, err := c.expr(in, t.Hi)
		if err != nil {
			return operand{}, err
		}
		v := c.plan.Emit1("batcalc", "between", mal.TBATBool, col.arg(), lo.arg(), hi.arg())
		return operand{varID: v, kind: storage.Bool}, nil
	case *algebra.Like:
		inner, err := c.expr(in, t.E)
		if err != nil {
			return operand{}, err
		}
		if inner.isConst() {
			return operand{}, fmt.Errorf("compiler: like over a constant")
		}
		v := c.plan.Emit1("batcalc", "like", mal.TBATBool,
			mal.VarArg(inner.varID), mal.ConstOf(mal.Str(t.Pattern)))
		return operand{varID: v, kind: storage.Bool}, nil
	case *algebra.Bin:
		l, err := c.expr(in, t.L)
		if err != nil {
			return operand{}, err
		}
		r, err := c.expr(in, t.R)
		if err != nil {
			return operand{}, err
		}
		if l.isConst() && r.isConst() {
			folded, err := foldConst(t.Op, l, r, t.K)
			if err != nil {
				return operand{}, err
			}
			return folded, nil
		}
		var fn string
		switch t.Op {
		case "+", "-", "*", "/":
			fn = arithFunc[t.Op]
		case "=", "!=", "<", "<=", ">", ">=":
			fn = cmpFunc[t.Op]
		case "and", "or":
			fn = t.Op
		default:
			return operand{}, fmt.Errorf("compiler: unknown operator %q", t.Op)
		}
		v := c.plan.Emit1("batcalc", fn, kindToBAT(t.K), l.arg(), r.arg())
		return operand{varID: v, kind: t.K}, nil
	}
	return operand{}, fmt.Errorf("compiler: cannot compile expression %T", e)
}

// foldConst evaluates constant-constant operations at compile time.
func foldConst(op string, l, r operand, k storage.Kind) (operand, error) {
	lf := func(o operand) float64 {
		if o.cnst.Type == mal.TFlt {
			return o.cnst.Flt
		}
		return float64(o.cnst.Int)
	}
	switch op {
	case "+", "-", "*", "/":
		a, b := lf(l), lf(r)
		var v float64
		switch op {
		case "+":
			v = a + b
		case "-":
			v = a - b
		case "*":
			v = a * b
		default:
			if b != 0 {
				v = a / b
			}
		}
		if k == storage.Flt {
			return operand{varID: -1, cnst: mal.Float64(v), kind: k}, nil
		}
		return operand{varID: -1, cnst: mal.Int64(int64(v)), kind: k}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		var cmp int
		if l.kind == storage.Str {
			switch {
			case l.cnst.Str < r.cnst.Str:
				cmp = -1
			case l.cnst.Str > r.cnst.Str:
				cmp = 1
			}
		} else {
			a, b := lf(l), lf(r)
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
		}
		var v bool
		switch op {
		case "=":
			v = cmp == 0
		case "!=":
			v = cmp != 0
		case "<":
			v = cmp < 0
		case "<=":
			v = cmp <= 0
		case ">":
			v = cmp > 0
		default:
			v = cmp >= 0
		}
		return operand{varID: -1, cnst: mal.Bool(v), kind: storage.Bool}, nil
	case "and":
		return operand{varID: -1, cnst: mal.Bool(l.cnst.Bool && r.cnst.Bool), kind: storage.Bool}, nil
	case "or":
		return operand{varID: -1, cnst: mal.Bool(l.cnst.Bool || r.cnst.Bool), kind: storage.Bool}, nil
	}
	return operand{}, fmt.Errorf("compiler: cannot fold %q", op)
}

// lowerJoin compiles the equi-join. The build side (right input, the
// hashed one) is always packed — one hash table per join. When the
// probe side (left input) is in the mitosis form, the join itself
// partitions: algebra.hashbuild indexes the build key once, and each
// probe slice runs an independent algebra.hashprobe + projections, so
// the probe phase — where TPC-H-shaped plans spend their join time —
// fans out across the dataflow workers. The per-slice outputs
// concatenated in slice order equal the packed join's probe-order
// output exactly, so the result stays in the partitioned form and
// downstream operators (filters, aggregates, further joins) keep
// consuming it slice-wise. A packed probe side falls back to the
// one-shot algebra.join kernel.
func (c *compiler) lowerJoin(j *algebra.Join) (rel, error) {
	l, err := c.lower(j.L)
	if err != nil {
		return rel{}, err
	}
	r, err := c.lower(j.R)
	if err != nil {
		return rel{}, err
	}
	r = c.packed(r)
	if l.morselish() {
		return c.lowerMorselJoin(j, c.forceMorsel(l), r)
	}
	if l.partitioned() {
		return c.lowerPartitionedJoin(j, c.forcePartitioned(l), r), nil
	}
	l = c.packed(l)
	lo := c.plan.NewVar(mal.TBATOID)
	ro := c.plan.NewVar(mal.TBATOID)
	c.plan.Emit("algebra", "join", []int{lo, ro},
		mal.VarArg(l.cols[j.LKey]), mal.VarArg(r.cols[j.RKey]))
	out := rel{schema: j.Schema()}
	for i, v := range l.cols {
		p := c.plan.Emit1("algebra", "leftjoin", kindToBAT(l.schema[i].Kind),
			mal.VarArg(lo), mal.VarArg(v))
		out.cols = append(out.cols, p)
	}
	for i, v := range r.cols {
		p := c.plan.Emit1("algebra", "leftjoin", kindToBAT(r.schema[i].Kind),
			mal.VarArg(ro), mal.VarArg(v))
		out.cols = append(out.cols, p)
	}
	return out, nil
}

// lowerPartitionedJoin emits the build-once/probe-per-slice form: l is
// partitioned (the probe side), r packed (the build side). Probe-slice
// oids are slice-local, so left columns project from the slice's own
// columns while build-side oids project from the packed build columns.
func (c *compiler) lowerPartitionedJoin(j *algebra.Join, l, r rel) rel {
	h := c.plan.Emit1("algebra", "hashbuild", mal.THash, mal.VarArg(r.cols[j.RKey]))
	out := rel{schema: j.Schema(), parts: make([][]int, len(l.parts))}
	for p := range l.parts {
		lp := l.part(p)
		lo := c.plan.NewVar(mal.TBATOID)
		ro := c.plan.NewVar(mal.TBATOID)
		c.plan.Emit("algebra", "hashprobe", []int{lo, ro},
			mal.VarArg(lp.cols[j.LKey]), mal.VarArg(h))
		for i, v := range lp.cols {
			out.parts[p] = append(out.parts[p], c.plan.Emit1("algebra", "leftjoin",
				kindToBAT(l.schema[i].Kind), mal.VarArg(lo), mal.VarArg(v)))
		}
		for i, v := range r.cols {
			out.parts[p] = append(out.parts[p], c.plan.Emit1("algebra", "leftjoin",
				kindToBAT(r.schema[i].Kind), mal.VarArg(ro), mal.VarArg(v)))
		}
	}
	return out
}

// lowerMorselJoin is the morsel form of the build-once/probe-per-slice
// join: the hash is built once in the outer plan over the packed build
// key, then the hash table and the packed build columns are captured
// into the probe side's fragment, where every morsel runs its own
// algebra.hashprobe + projections. Morsel probe outputs concatenated in
// morsel order equal the packed join's probe-order output exactly, so
// the result stays in the morsel form.
func (c *compiler) lowerMorselJoin(j *algebra.Join, l, r rel) (rel, error) {
	h := c.plan.Emit1("algebra", "hashbuild", mal.THash, mal.VarArg(r.cols[j.RKey]))
	fb := l.frag
	hv := c.capture(fb, h)
	rcaps := make([]int, len(r.cols))
	for i, v := range r.cols {
		rcaps[i] = c.capture(fb, v)
	}
	out := rel{schema: j.Schema(), frag: fb}
	err := c.inFrag(fb, func() error {
		lo := c.plan.NewVar(mal.TBATOID)
		ro := c.plan.NewVar(mal.TBATOID)
		c.plan.Emit("algebra", "hashprobe", []int{lo, ro},
			mal.VarArg(l.cols[j.LKey]), mal.VarArg(hv))
		for i, v := range l.cols {
			out.cols = append(out.cols, c.plan.Emit1("algebra", "leftjoin",
				kindToBAT(l.schema[i].Kind), mal.VarArg(lo), mal.VarArg(v)))
		}
		for i, v := range rcaps {
			out.cols = append(out.cols, c.plan.Emit1("algebra", "leftjoin",
				kindToBAT(r.schema[i].Kind), mal.VarArg(ro), mal.VarArg(v)))
		}
		return nil
	})
	return out, err
}

var aggrFunc = map[storage.AggrKind]string{
	storage.AggrSum:   "sum",
	storage.AggrCount: "count",
	storage.AggrMin:   "min",
	storage.AggrMax:   "max",
	storage.AggrAvg:   "avg",
}

// mergeable reports whether every aggregate of the list decomposes into
// per-partition partials plus a recombination step: sum and count
// partials are summed, min/max partials re-minimized. Avg does not
// decompose losslessly in this instruction set (sum/count division
// would change the output type for integer columns), so its presence
// routes the group-by through the packed path.
func mergeable(aggs []algebra.AggSpec) bool {
	for _, a := range aggs {
		if !a.CountStar && a.Func == storage.AggrAvg {
			return false
		}
	}
	return true
}

func (c *compiler) lowerGroupAgg(g *algebra.GroupAgg) (rel, error) {
	in, err := c.lower(g.Input)
	if err != nil {
		return rel{}, err
	}
	if in.morselish() && mergeable(g.Aggs) {
		return c.lowerMorselGroupAgg(g, c.forceMorsel(in))
	}
	if in.partitioned() && mergeable(g.Aggs) {
		return c.lowerMergedGroupAgg(g, c.forcePartitioned(in))
	}
	in = c.packed(in)
	out := rel{schema: g.Schema()}

	if len(g.Keys) == 0 {
		// Global aggregates: one-row results.
		for _, a := range g.Aggs {
			v, err := c.globalAggr(in, a)
			if err != nil {
				return rel{}, err
			}
			out.cols = append(out.cols, v)
		}
		return out, nil
	}

	kvs, err := c.keyVars(in, g.Keys)
	if err != nil {
		return rel{}, err
	}
	groups, extents := c.subgroupChain(kvs)
	// Key output columns: representative rows via extents.
	for i, kv := range kvs {
		v := c.plan.Emit1("algebra", "leftjoin", kindToBAT(g.Keys[i].Kind()),
			mal.VarArg(extents), mal.VarArg(kv))
		out.cols = append(out.cols, v)
	}
	for _, a := range g.Aggs {
		v, err := c.subAggr(in, a, groups, extents)
		if err != nil {
			return rel{}, err
		}
		out.cols = append(out.cols, v)
	}
	return out, nil
}

// keyVars compiles the group-key expressions over in.
func (c *compiler) keyVars(in rel, keys []algebra.Expr) ([]int, error) {
	kvs := make([]int, len(keys))
	for j, kx := range keys {
		kv, err := c.exprVar(in, kx)
		if err != nil {
			return nil, err
		}
		kvs[j] = kv
	}
	return kvs, nil
}

// subgroupChain chains group.subgroup over the key columns, refining
// the grouping left to right; it returns the final groups/extents vars
// (-1/-1 for an empty key list).
func (c *compiler) subgroupChain(keys []int) (groups, extents int) {
	groups, extents = -1, -1
	for _, kv := range keys {
		ng := c.plan.NewVar(mal.TBATOID)
		ne := c.plan.NewVar(mal.TBATOID)
		args := []mal.Arg{mal.VarArg(kv)}
		if groups >= 0 {
			args = append(args, mal.VarArg(groups))
		}
		c.plan.Emit("group", "subgroup", []int{ng, ne}, args...)
		groups, extents = ng, ne
	}
	return groups, extents
}

// subAggr emits one grouped aggregate of a over in under the grouping.
func (c *compiler) subAggr(in rel, a algebra.AggSpec, groups, extents int) (int, error) {
	if a.CountStar {
		return c.plan.Emit1("aggr", "subcount", mal.TBATInt,
			mal.VarArg(groups), mal.VarArg(extents)), nil
	}
	av, err := c.exprVar(in, a.Arg)
	if err != nil {
		return 0, err
	}
	return c.plan.Emit1("aggr", "sub"+aggrFunc[a.Func], kindToBAT(a.K),
		mal.VarArg(av), mal.VarArg(groups), mal.VarArg(extents)), nil
}

// partialType is the BAT type of a per-partition partial aggregate:
// counts are integral regardless of the input column, everything else
// keeps the aggregate's output kind.
func partialType(a algebra.AggSpec) mal.Type {
	if a.CountStar || a.Func == storage.AggrCount {
		return mal.TBATInt
	}
	return kindToBAT(a.K)
}

// packCol packs per-partition column vars into one BAT.
func (c *compiler) packCol(parts []int, t mal.Type) int {
	args := make([]mal.Arg, len(parts))
	for i, v := range parts {
		args[i] = mal.VarArg(v)
	}
	return c.plan.Emit1("mat", "pack", t, args...)
}

// lowerMergedGroupAgg is the mergetable aggregation path: each slice is
// pre-aggregated independently, the per-slice results are packed, and a
// combine stage recomputes the final aggregates over the (tiny) packed
// partials — partial sums and counts are summed, partial minima and
// maxima re-minimized. The merged grouping preserves the sequential
// plan's first-appearance group order, so counts, min/max, integral
// sums and key columns are byte-identical to the unpartitioned
// lowering; float sums re-associate the additions (partial sums per
// slice) and may differ in the last bits, as MonetDB's mitosis does.
func (c *compiler) lowerMergedGroupAgg(g *algebra.GroupAgg, in rel) (rel, error) {
	out := rel{schema: g.Schema()}
	k := len(in.parts)

	if len(g.Keys) == 0 {
		for _, a := range g.Aggs {
			v, err := c.mergedGlobalAggr(in, a)
			if err != nil {
				return rel{}, err
			}
			out.cols = append(out.cols, v)
		}
		return out, nil
	}

	// Per-partition pre-aggregation: local grouping, one representative
	// row per local group, one partial per aggregate per local group.
	keyParts := make([][]int, len(g.Keys)) // keyParts[j][p]
	aggParts := make([][]int, len(g.Aggs)) // aggParts[ai][p]
	for p := 0; p < k; p++ {
		pr := in.part(p)
		kvs, err := c.keyVars(pr, g.Keys)
		if err != nil {
			return rel{}, err
		}
		groups, extents := c.subgroupChain(kvs)
		for j, kv := range kvs {
			keyParts[j] = append(keyParts[j], c.plan.Emit1("algebra", "leftjoin",
				kindToBAT(g.Keys[j].Kind()), mal.VarArg(extents), mal.VarArg(kv)))
		}
		for ai, a := range g.Aggs {
			pv, err := c.subAggr(pr, a, groups, extents)
			if err != nil {
				return rel{}, err
			}
			aggParts[ai] = append(aggParts[ai], pv)
		}
	}

	// Combine: pack the per-slice group representatives, regroup them
	// (first appearance over the packed order equals first appearance
	// over the full relation), and recombine the packed partials under
	// the merged grouping.
	packedKeys := make([]int, len(g.Keys))
	for j := range g.Keys {
		packedKeys[j] = c.packCol(keyParts[j], kindToBAT(g.Keys[j].Kind()))
	}
	packedAggs := make([]int, len(g.Aggs))
	for ai, a := range g.Aggs {
		packedAggs[ai] = c.packCol(aggParts[ai], partialType(a))
	}
	out.cols = c.combineGroupedPartials(g, packedKeys, packedAggs)
	return out, nil
}

// combineGroupedPartials is the mergetable recombination stage shared
// by the static-slice and morsel group-by paths: regroup the packed
// per-slice (or per-morsel) group representatives and recombine the
// packed partials under the merged grouping — partial counts and sums
// summed, partial minima/maxima re-minimized.
func (c *compiler) combineGroupedPartials(g *algebra.GroupAgg, packedKeys, packedAggs []int) []int {
	var cols []int
	groups, extents := c.subgroupChain(packedKeys)
	for j, pk := range packedKeys {
		cols = append(cols, c.plan.Emit1("algebra", "leftjoin",
			kindToBAT(g.Keys[j].Kind()), mal.VarArg(extents), mal.VarArg(pk)))
	}
	for ai, a := range g.Aggs {
		fn := aggrFunc[a.Func]
		if a.CountStar || a.Func == storage.AggrCount || a.Func == storage.AggrSum {
			fn = "sum" // partial counts and sums recombine by summation
		}
		cols = append(cols, c.plan.Emit1("aggr", "sub"+fn, partialType(a),
			mal.VarArg(packedAggs[ai]), mal.VarArg(groups), mal.VarArg(extents)))
	}
	return cols
}

// lowerMorselGroupAgg is the morsel aggregation path: the fragment
// pre-aggregates each morsel (local grouping, one representative row
// and one partial per aggregate per local group), mat.morsel packs the
// per-morsel partials in morsel order, and the combine stage is the
// same mergetable recombination the static path uses. Global
// aggregates mirror mergedGlobalAggr, including the empty-partial
// guard for min/max.
func (c *compiler) lowerMorselGroupAgg(g *algebra.GroupAgg, in rel) (rel, error) {
	out := rel{schema: g.Schema()}
	fb := in.frag

	if len(g.Keys) == 0 {
		// One partial (plus a row count guarding min/max) per aggregate
		// per morsel; empty morsels contribute zero-valued placeholders
		// with count 0, exactly like empty static slices.
		var fouts []int
		guarded := make([]bool, len(g.Aggs))
		err := c.inFrag(fb, func() error {
			for ai, a := range g.Aggs {
				if a.CountStar {
					fouts = append(fouts, c.plan.Emit1("aggr", "count", mal.TBATInt,
						mal.VarArg(in.cols[0])))
					continue
				}
				av, err := c.exprVar(in, a.Arg)
				if err != nil {
					return err
				}
				fouts = append(fouts, c.plan.Emit1("aggr", aggrFunc[a.Func],
					partialType(a), mal.VarArg(av)))
				if a.Func == storage.AggrMin || a.Func == storage.AggrMax {
					guarded[ai] = true
					fouts = append(fouts, c.plan.Emit1("aggr", "count", mal.TBATInt,
						mal.VarArg(av)))
				}
			}
			return nil
		})
		if err != nil {
			return rel{}, err
		}
		packed := c.closeFragVars(fb, fouts)
		i := 0
		for ai, a := range g.Aggs {
			pv := packed[i]
			i++
			if !guarded[ai] {
				// Partial counts and sums both recombine by summation.
				out.cols = append(out.cols, c.plan.Emit1("aggr", "sum",
					partialType(a), mal.VarArg(pv)))
				continue
			}
			cv := packed[i]
			i++
			live := c.plan.Emit1("algebra", "thetaselect", mal.TBATOID,
				mal.VarArg(cv), mal.ConstOf(mal.Str(">")), mal.ConstOf(mal.Int64(0)))
			liveVals := c.plan.Emit1("algebra", "leftjoin", partialType(a),
				mal.VarArg(live), mal.VarArg(pv))
			out.cols = append(out.cols, c.plan.Emit1("aggr", aggrFunc[a.Func],
				partialType(a), mal.VarArg(liveVals)))
		}
		return out, nil
	}

	var fouts []int
	err := c.inFrag(fb, func() error {
		kvs, err := c.keyVars(in, g.Keys)
		if err != nil {
			return err
		}
		groups, extents := c.subgroupChain(kvs)
		for j, kv := range kvs {
			fouts = append(fouts, c.plan.Emit1("algebra", "leftjoin",
				kindToBAT(g.Keys[j].Kind()), mal.VarArg(extents), mal.VarArg(kv)))
		}
		for _, a := range g.Aggs {
			pv, err := c.subAggr(in, a, groups, extents)
			if err != nil {
				return err
			}
			fouts = append(fouts, pv)
		}
		return nil
	})
	if err != nil {
		return rel{}, err
	}
	packed := c.closeFragVars(fb, fouts)
	out.cols = c.combineGroupedPartials(g, packed[:len(g.Keys)], packed[len(g.Keys):])
	return out, nil
}

// mergedGlobalAggr computes one global aggregate over a partitioned
// relation: per-slice partials packed and recombined. Min/max guard
// against empty slices, whose partials are zero-valued placeholders
// that must not participate in the recombination: the per-slice row
// counts select the live partials (thetaselect > 0) first.
func (c *compiler) mergedGlobalAggr(in rel, a algebra.AggSpec) (int, error) {
	k := len(in.parts)
	needGuard := !a.CountStar && (a.Func == storage.AggrMin || a.Func == storage.AggrMax)
	partials := make([]int, k)
	counts := make([]int, k)
	for p := 0; p < k; p++ {
		pr := in.part(p)
		if a.CountStar {
			partials[p] = c.plan.Emit1("aggr", "count", mal.TBATInt, mal.VarArg(pr.cols[0]))
			continue
		}
		av, err := c.exprVar(pr, a.Arg)
		if err != nil {
			return 0, err
		}
		partials[p] = c.plan.Emit1("aggr", aggrFunc[a.Func], partialType(a), mal.VarArg(av))
		if needGuard {
			counts[p] = c.plan.Emit1("aggr", "count", mal.TBATInt, mal.VarArg(av))
		}
	}
	packed := c.packCol(partials, partialType(a))
	if !needGuard {
		// Partial counts and sums both recombine by summation.
		return c.plan.Emit1("aggr", "sum", partialType(a), mal.VarArg(packed)), nil
	}
	packedCounts := c.packCol(counts, mal.TBATInt)
	live := c.plan.Emit1("algebra", "thetaselect", mal.TBATOID,
		mal.VarArg(packedCounts), mal.ConstOf(mal.Str(">")), mal.ConstOf(mal.Int64(0)))
	liveVals := c.plan.Emit1("algebra", "leftjoin", partialType(a),
		mal.VarArg(live), mal.VarArg(packed))
	return c.plan.Emit1("aggr", aggrFunc[a.Func], partialType(a), mal.VarArg(liveVals)), nil
}

func (c *compiler) globalAggr(in rel, a algebra.AggSpec) (int, error) {
	if a.CountStar {
		return c.plan.Emit1("aggr", "count", mal.TBATInt, mal.VarArg(in.cols[0])), nil
	}
	av, err := c.exprVar(in, a.Arg)
	if err != nil {
		return 0, err
	}
	return c.plan.Emit1("aggr", aggrFunc[a.Func], kindToBAT(a.K), mal.VarArg(av)), nil
}

// exprVar compiles an expression and forces a BAT variable result
// (constants are not legal as full columns here).
func (c *compiler) exprVar(in rel, e algebra.Expr) (int, error) {
	op, err := c.expr(in, e)
	if err != nil {
		return 0, err
	}
	if op.isConst() {
		// Materialize a constant column aligned with the relation.
		v := c.plan.Emit1("batcalc", "const", kindToBAT(op.kind),
			mal.ConstOf(op.cnst), mal.VarArg(in.cols[0]))
		return v, nil
	}
	return op.varID, nil
}

// lowerProject computes the output expressions per partition when the
// input is in the mitosis form (expressions are row-local), and over
// the packed relation otherwise.
func (c *compiler) lowerProject(p *algebra.Project) (rel, error) {
	in, err := c.lower(p.Input)
	if err != nil {
		return rel{}, err
	}
	if in.morselish() {
		in = c.forceMorsel(in)
		out := rel{schema: p.Schema(), frag: in.frag}
		err := c.inFrag(in.frag, func() error {
			for _, e := range p.Exprs {
				v, verr := c.exprVar(in, e)
				if verr != nil {
					return verr
				}
				out.cols = append(out.cols, v)
			}
			return nil
		})
		return out, err
	}
	if in.partitioned() {
		in = c.forcePartitioned(in)
		out := rel{schema: p.Schema(), parts: make([][]int, len(in.parts))}
		for pi := range in.parts {
			pr := in.part(pi)
			for _, e := range p.Exprs {
				v, err := c.exprVar(pr, e)
				if err != nil {
					return rel{}, err
				}
				out.parts[pi] = append(out.parts[pi], v)
			}
		}
		return out, nil
	}
	out := rel{schema: p.Schema()}
	for _, e := range p.Exprs {
		v, err := c.exprVar(in, e)
		if err != nil {
			return rel{}, err
		}
		out.cols = append(out.cols, v)
	}
	return out, nil
}

// lowerDistinct deduplicates each partition locally first (mergetable:
// the merged dedup then runs over the per-slice survivors, not the full
// relation), then deduplicates the packed survivors. First-appearance
// order of the packed survivors equals first-appearance order of the
// full relation, so the output matches the sequential lowering.
func (c *compiler) lowerDistinct(d *algebra.Distinct) (rel, error) {
	in, err := c.lower(d.Input)
	if err != nil {
		return rel{}, err
	}
	if in.morselish() {
		// Morsel-local dedup first (the packed dedup then runs over the
		// per-morsel survivors); first-appearance order of the packed
		// survivors equals first-appearance order of the full relation.
		in = c.forceMorsel(in)
		var fouts []int
		if err := c.inFrag(in.frag, func() error {
			_, extents := c.subgroupChain(in.cols)
			fouts = c.projectAll(in, extents).cols
			return nil
		}); err != nil {
			return rel{}, err
		}
		in = rel{schema: in.schema, cols: c.closeFragVars(in.frag, fouts)}
	} else if in.partitioned() {
		in = c.forcePartitioned(in)
		dp := rel{schema: in.schema, parts: make([][]int, len(in.parts))}
		for p := range in.parts {
			pr := in.part(p)
			_, extents := c.subgroupChain(pr.cols)
			dp.parts[p] = c.projectAll(pr, extents).cols
		}
		in = c.packed(dp)
	}
	_, extents := c.subgroupChain(in.cols)
	return c.projectAll(in, extents), nil
}

func (c *compiler) lowerSort(s *algebra.Sort) (rel, error) {
	return c.lowerSortTopK(s, 0)
}

// lowerSortTopK compiles a sort. topK > 0 is the ORDER BY ... LIMIT
// fusion hint from lowerLimit: the partitioned path then truncates
// every sorted slice to its first topK rows before the merge (no slice
// can contribute more than topK rows to the global first topK), so the
// merge, the packs and the permutation projections all run over at most
// partitions*topK rows instead of the full relation. The caller still
// applies the final global limit; topK changes cost, never results.
func (c *compiler) lowerSortTopK(s *algebra.Sort, topK int64) (rel, error) {
	in, err := c.lower(s.Input)
	if err != nil {
		return rel{}, err
	}
	if in.morselish() {
		// Sorting needs the whole relation: close the fragment (its
		// packed output is in sequential row order, so results stay
		// byte-identical) and hand the materialized columns to the
		// static slice/sort/kmerge machinery unchanged.
		in = c.packed(in)
		in.sliceable = c.opt.Partitions > 1
	}
	if in.partitioned() {
		in = c.forcePartitioned(in)
		if len(in.parts) > 1 {
			return c.lowerMergedSort(s, in, topK), nil
		}
	}
	return c.sortPacked(c.packed(in), s.Keys), nil
}

// sortPacked is the sequential sort: stable multi-key, applying keys
// from least to most significant; each pass permutes every column
// through the sort order.
func (c *compiler) sortPacked(in rel, keys []algebra.SortKey) rel {
	cur := in
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		perm := c.plan.Emit1("algebra", "sortTail", mal.TBATOID,
			mal.VarArg(cur.cols[k.Idx]), mal.ConstOf(mal.Bool(!k.Desc)))
		cur = c.projectAll(cur, perm)
	}
	return cur
}

// lowerMergedSort is sort mitosis: every slice is stable-sorted
// independently (the parallel phase, where the n·log n work is), then
// one mat.kmerge computes the stable merge permutation over the
// per-slice sorted key columns and every column is packed and permuted
// through it. Per-slice stable sorts plus a stable merge reproduce the
// global stable sort's permutation exactly, so partitioned sorts are
// byte-identical to the sequential lowering. The output is packed: a
// sorted relation has no meaningful slice decomposition left.
func (c *compiler) lowerMergedSort(s *algebra.Sort, in rel, topK int64) rel {
	k := len(in.parts)
	sorted := make([]rel, k)
	for p := 0; p < k; p++ {
		cur := c.sortPacked(in.part(p), s.Keys)
		if topK > 0 {
			trunc := rel{schema: cur.schema}
			for i, v := range cur.cols {
				trunc.cols = append(trunc.cols, c.plan.Emit1("algebra", "slice",
					kindToBAT(cur.schema[i].Kind),
					mal.VarArg(v), mal.ConstOf(mal.Int64(0)), mal.ConstOf(mal.Int64(topK))))
			}
			cur = trunc
		}
		sorted[p] = cur
	}
	// Merge permutation: nkeys, per-key ascending flags, then per key
	// the sorted slice columns in slice order.
	args := []mal.Arg{mal.ConstOf(mal.Int64(int64(len(s.Keys))))}
	for _, key := range s.Keys {
		args = append(args, mal.ConstOf(mal.Bool(!key.Desc)))
	}
	for _, key := range s.Keys {
		for p := 0; p < k; p++ {
			args = append(args, mal.VarArg(sorted[p].cols[key.Idx]))
		}
	}
	perm := c.plan.Emit1("mat", "kmerge", mal.TBATOID, args...)
	packedParts := rel{schema: in.schema, parts: make([][]int, k)}
	for p := 0; p < k; p++ {
		packedParts.parts[p] = sorted[p].cols
	}
	return c.projectAll(c.packed(packedParts), perm)
}

func (c *compiler) lowerLimit(l *algebra.Limit) (rel, error) {
	var in rel
	var err error
	if s, ok := l.Input.(*algebra.Sort); ok {
		// ORDER BY ... LIMIT: hand the limit to the sort lowering so the
		// partitioned path truncates per slice before the merge.
		in, err = c.lowerSortTopK(s, l.N)
	} else {
		in, err = c.lower(l.Input)
	}
	if err != nil {
		return rel{}, err
	}
	in = c.packed(in)
	out := rel{schema: in.schema}
	for i, v := range in.cols {
		s := c.plan.Emit1("algebra", "slice", kindToBAT(in.schema[i].Kind),
			mal.VarArg(v), mal.ConstOf(mal.Int64(0)), mal.ConstOf(mal.Int64(l.N)))
		out.cols = append(out.cols, s)
	}
	return out, nil
}
