package compiler

import (
	"strings"
	"testing"

	"stethoscope/internal/algebra"
	"stethoscope/internal/mal"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

var testCat = func() *storage.Catalog {
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.0005, Seed: 3}); err != nil {
		panic(err)
	}
	return cat
}()

func compileQuery(t testing.TB, q string, opt Options) *mal.Plan {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tree, err := algebra.Bind(stmt, testCat)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	plan, err := Compile(tree, q, opt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v\n%s", err, plan)
	}
	return plan
}

func countInstrs(p *mal.Plan, name string) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Name() == name {
			n++
		}
	}
	return n
}

func TestPaperQueryPlanShape(t *testing.T) {
	// Figure 1's query must lower to bind -> thetaselect -> leftjoin.
	plan := compileQuery(t, "select l_tax from lineitem where l_partkey=1", Options{})
	if n := countInstrs(plan, "sql.bind"); n != 2 {
		t.Errorf("sql.bind count = %d, want 2 (l_partkey, l_tax)", n)
	}
	if n := countInstrs(plan, "algebra.thetaselect"); n != 1 {
		t.Errorf("thetaselect count = %d, want 1", n)
	}
	if n := countInstrs(plan, "algebra.leftjoin"); n != 2 {
		t.Errorf("leftjoin count = %d, want 2", n)
	}
	if n := countInstrs(plan, "sql.exportResult"); n != 1 {
		t.Errorf("exportResult count = %d", n)
	}
	text := plan.String()
	if !strings.Contains(text, "select l_tax from lineitem") {
		t.Error("plan listing should carry the query text")
	}
}

func TestMitosisPartitioning(t *testing.T) {
	q := "select l_tax from lineitem where l_partkey=1"
	base := compileQuery(t, q, Options{Partitions: 1})
	part := compileQuery(t, q, Options{Partitions: 8})
	if len(part.Instrs) <= len(base.Instrs) {
		t.Fatalf("partitioned plan not larger: %d vs %d", len(part.Instrs), len(base.Instrs))
	}
	// 2 columns x 8 partitions slices.
	if n := countInstrs(part, "mat.slice"); n != 16 {
		t.Errorf("mat.slice count = %d, want 16", n)
	}
	// One thetaselect per partition.
	if n := countInstrs(part, "algebra.thetaselect"); n != 8 {
		t.Errorf("thetaselect count = %d, want 8", n)
	}
	// One pack for the single projected output column: the projection
	// runs per partition, so the filtered l_partkey column is never
	// reassembled at all.
	if n := countInstrs(part, "mat.pack"); n != 1 {
		t.Errorf("mat.pack count = %d, want 1", n)
	}
}

func TestMitosisBareScan(t *testing.T) {
	// Even without a filter, a scan is sliced and reassembled; the
	// matfold optimizer pass later collapses the degenerate
	// slice-then-pack chain (tested in internal/optimizer).
	plan := compileQuery(t, "select l_tax from lineitem", Options{Partitions: 4})
	if n := countInstrs(plan, "mat.slice"); n != 4 {
		t.Errorf("mat.slice count = %d, want 4", n)
	}
	if n := countInstrs(plan, "mat.pack"); n != 1 {
		t.Errorf("mat.pack count = %d, want 1", n)
	}
}

func TestMitosisGlobalAggregate(t *testing.T) {
	// sum over a filtered scan: per-partition filter + partial sums,
	// one pack of the partials, one combining sum.
	plan := compileQuery(t,
		"select sum(l_quantity) from lineitem where l_partkey < 100", Options{Partitions: 4})
	if n := countInstrs(plan, "aggr.sum"); n != 5 {
		t.Errorf("aggr.sum count = %d, want 5 (4 partials + 1 combine)", n)
	}
	if n := countInstrs(plan, "mat.pack"); n != 1 {
		t.Errorf("mat.pack count = %d, want 1 (packed partials)", n)
	}
	if n := countInstrs(plan, "algebra.thetaselect"); n != 4 {
		t.Errorf("thetaselect count = %d, want 4 (per-partition filter)", n)
	}
}

func TestMitosisGlobalMinGuardsEmptySlices(t *testing.T) {
	// min/max recombination must skip empty slices: the partial of an
	// empty slice is a zero-valued placeholder. The plan therefore
	// carries per-slice counts and a thetaselect > 0 over them.
	plan := compileQuery(t, "select min(l_quantity) from lineitem", Options{Partitions: 4})
	if n := countInstrs(plan, "aggr.min"); n != 5 {
		t.Errorf("aggr.min count = %d, want 5 (4 partials + 1 combine)", n)
	}
	if n := countInstrs(plan, "aggr.count"); n != 4 {
		t.Errorf("aggr.count count = %d, want 4 (per-slice liveness)", n)
	}
	if n := countInstrs(plan, "algebra.thetaselect"); n != 1 {
		t.Errorf("thetaselect count = %d, want 1 (live-slice guard)", n)
	}
}

func TestMitosisGroupBy(t *testing.T) {
	plan := compileQuery(t,
		"select l_returnflag, sum(l_quantity), count(*) from lineitem group by l_returnflag",
		Options{Partitions: 4})
	// One subgroup per partition plus the merge regroup.
	if n := countInstrs(plan, "group.subgroup"); n != 5 {
		t.Errorf("subgroup count = %d, want 5", n)
	}
	// Partial sums per partition, then one combining subsum for the sum
	// aggregate and one for the count partials (counts recombine by
	// summation).
	if n := countInstrs(plan, "aggr.subsum"); n != 6 {
		t.Errorf("subsum count = %d, want 6 (4 partials + 2 combines)", n)
	}
	if n := countInstrs(plan, "aggr.subcount"); n != 4 {
		t.Errorf("subcount count = %d, want 4 (per-partition partials)", n)
	}
	// Packs: key representatives, sum partials, count partials.
	if n := countInstrs(plan, "mat.pack"); n != 3 {
		t.Errorf("mat.pack count = %d, want 3", n)
	}
}

func TestMitosisAvgFallsBackToPackedGroupBy(t *testing.T) {
	// avg does not decompose into partials in this instruction set: the
	// group-by must run over the packed relation (one subgroup total).
	plan := compileQuery(t,
		"select l_returnflag, avg(l_quantity) from lineitem group by l_returnflag",
		Options{Partitions: 4})
	if n := countInstrs(plan, "aggr.subavg"); n != 1 {
		t.Errorf("subavg count = %d, want 1", n)
	}
	if n := countInstrs(plan, "group.subgroup"); n != 1 {
		t.Errorf("subgroup count = %d, want 1 (packed fallback)", n)
	}
	// The scan was never sliced: its deferred mitosis form hands the
	// bound columns to the fallback directly, with no slice/pack chain.
	if n := countInstrs(plan, "mat.pack") + countInstrs(plan, "mat.slice"); n != 0 {
		t.Errorf("mat instruction count = %d, want 0 (lazy scan, packed fallback)", n)
	}
}

func TestMitosisDistinct(t *testing.T) {
	plan := compileQuery(t, "select distinct l_returnflag from lineitem", Options{Partitions: 4})
	// Per-partition dedup (4) plus the merged dedup over the packed
	// survivors.
	if n := countInstrs(plan, "group.subgroup"); n != 5 {
		t.Errorf("subgroup count = %d, want 5", n)
	}
}

func TestGroupAggLowering(t *testing.T) {
	plan := compileQuery(t,
		"select l_returnflag, sum(l_quantity), count(*) from lineitem group by l_returnflag", Options{})
	if n := countInstrs(plan, "group.subgroup"); n != 1 {
		t.Errorf("subgroup count = %d", n)
	}
	if n := countInstrs(plan, "aggr.subsum"); n != 1 {
		t.Errorf("subsum count = %d", n)
	}
	if n := countInstrs(plan, "aggr.subcount"); n != 1 {
		t.Errorf("subcount count = %d", n)
	}
}

func TestGlobalAggLowering(t *testing.T) {
	plan := compileQuery(t, "select count(*), sum(l_quantity) from lineitem", Options{})
	if n := countInstrs(plan, "aggr.count"); n != 1 {
		t.Errorf("aggr.count = %d", n)
	}
	if n := countInstrs(plan, "aggr.sum"); n != 1 {
		t.Errorf("aggr.sum = %d", n)
	}
	if n := countInstrs(plan, "group.subgroup"); n != 0 {
		t.Errorf("unexpected grouping: %d", n)
	}
}

func TestJoinLowering(t *testing.T) {
	plan := compileQuery(t,
		"select o_totalprice, l_tax from orders join lineitem on l_orderkey = o_orderkey", Options{})
	if n := countInstrs(plan, "algebra.join"); n != 1 {
		t.Fatalf("join count = %d", n)
	}
	// The join has two result variables.
	for _, in := range plan.Instrs {
		if in.Name() == "algebra.join" {
			if len(in.Rets) != 2 {
				t.Errorf("join rets = %d", len(in.Rets))
			}
		}
	}
}

func TestSortAndLimitLowering(t *testing.T) {
	plan := compileQuery(t, "select l_tax from lineitem order by l_tax desc limit 5", Options{})
	if n := countInstrs(plan, "algebra.sortTail"); n != 1 {
		t.Errorf("sortTail = %d", n)
	}
	if n := countInstrs(plan, "algebra.slice"); n != 1 {
		t.Errorf("slice = %d", n)
	}
	// Multi-key sort emits one sortTail per key.
	plan = compileQuery(t, "select l_tax, l_quantity from lineitem order by l_tax, l_quantity desc", Options{})
	if n := countInstrs(plan, "algebra.sortTail"); n != 2 {
		t.Errorf("multi-key sortTail = %d", n)
	}
}

func TestDistinctLowering(t *testing.T) {
	plan := compileQuery(t, "select distinct l_returnflag from lineitem", Options{})
	if n := countInstrs(plan, "group.subgroup"); n != 1 {
		t.Errorf("distinct subgroup = %d", n)
	}
}

func TestComplexExpressionLowering(t *testing.T) {
	plan := compileQuery(t,
		"select l_extendedprice * (1 - l_discount) as revenue from lineitem", Options{})
	// 1 - l_discount needs a flipped scalar sub, then a mul.
	if n := countInstrs(plan, "batcalc.sub"); n != 1 {
		t.Errorf("batcalc.sub = %d", n)
	}
	if n := countInstrs(plan, "batcalc.mul"); n != 1 {
		t.Errorf("batcalc.mul = %d", n)
	}
}

func TestDisjunctionFallsBackToBoolPath(t *testing.T) {
	plan := compileQuery(t,
		"select l_tax from lineitem where l_partkey = 1 or l_quantity > 49", Options{})
	if n := countInstrs(plan, "batcalc.or"); n != 1 {
		t.Errorf("batcalc.or = %d", n)
	}
	if n := countInstrs(plan, "algebra.selectTrue"); n != 1 {
		t.Errorf("selectTrue = %d", n)
	}
	if n := countInstrs(plan, "algebra.thetaselect"); n != 0 {
		t.Errorf("unexpected thetaselect = %d", n)
	}
}

func TestConstantFolding(t *testing.T) {
	plan := compileQuery(t, "select l_quantity * (2 + 3) from lineitem", Options{})
	// 2+3 folds; only the mul against the column remains.
	if n := countInstrs(plan, "batcalc.add"); n != 0 {
		t.Errorf("unfolded add = %d", n)
	}
	if n := countInstrs(plan, "batcalc.mul"); n != 1 {
		t.Errorf("mul = %d", n)
	}
	found := false
	for _, in := range plan.Instrs {
		if in.Name() == "batcalc.mul" {
			for _, a := range in.Args {
				if a.IsConst() && a.Const.Int == 5 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("folded constant 5 not found in mul args")
	}
}

func TestBetweenLowering(t *testing.T) {
	plan := compileQuery(t,
		"select l_tax from lineitem where l_shipdate between date '1993-01-01' and date '1994-01-01'", Options{})
	if n := countInstrs(plan, "algebra.select"); n != 1 {
		t.Errorf("range select = %d", n)
	}
}

func TestPrologueAndEpilogue(t *testing.T) {
	plan := compileQuery(t, "select l_tax from lineitem", Options{})
	if plan.Instrs[0].Name() != "querylog.define" {
		t.Errorf("first instr = %s", plan.Instrs[0].Name())
	}
	last := plan.Instrs[len(plan.Instrs)-1]
	if last.Name() != "sql.exportResult" {
		t.Errorf("last instr = %s", last.Name())
	}
	if n := countInstrs(plan, "sql.rsColumn"); n != 1 {
		t.Errorf("rsColumn = %d", n)
	}
}

func TestLargePlanViaPartitions(t *testing.T) {
	// F2 backing: a multi-column filter at high partition count must
	// exceed 1000 instructions.
	q := `select l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice, l_discount, l_tax, l_shipdate
		from lineitem where l_quantity > 10 and l_discount < 0.05`
	plan := compileQuery(t, q, Options{Partitions: 64})
	if len(plan.Instrs) < 1000 {
		t.Errorf("partitioned plan has %d instructions, want > 1000", len(plan.Instrs))
	}
}

func TestDepsFormDAG(t *testing.T) {
	plan := compileQuery(t,
		"select l_returnflag, sum(l_quantity) from lineitem where l_partkey < 100 group by l_returnflag order by l_returnflag", Options{Partitions: 4})
	deps := plan.Deps()
	for pc, ds := range deps {
		for _, d := range ds {
			if d >= pc {
				t.Fatalf("instruction %d depends on later instruction %d", pc, d)
			}
		}
	}
}

func TestLikeLowering(t *testing.T) {
	plan := compileQuery(t, "select p_partkey from part where p_type like 'PROMO%'", Options{})
	if n := countInstrs(plan, "batcalc.like"); n != 1 {
		t.Errorf("batcalc.like = %d", n)
	}
	if n := countInstrs(plan, "algebra.selectTrue"); n != 1 {
		t.Errorf("selectTrue = %d", n)
	}
}

func TestInLowering(t *testing.T) {
	// IN desugars to an equality disjunction in the binder, which the
	// compiler lowers through the boolean path.
	plan := compileQuery(t, "select l_orderkey from lineitem where l_shipmode in ('MAIL', 'SHIP', 'AIR')", Options{})
	if n := countInstrs(plan, "batcalc.eq"); n != 3 {
		t.Errorf("batcalc.eq = %d, want 3", n)
	}
	if n := countInstrs(plan, "batcalc.or"); n != 2 {
		t.Errorf("batcalc.or = %d, want 2", n)
	}
}

// TestPartitionedJoinPlanShape: a join whose probe side sits above a
// sliced scan compiles to build-once/probe-per-slice — exactly one
// algebra.hashbuild, one algebra.hashprobe per slice, and no packed
// algebra.join.
func TestPartitionedJoinPlanShape(t *testing.T) {
	q := "select l_tax, o_totalprice from lineitem, orders where l_orderkey = o_orderkey"
	plan := compileQuery(t, q, Options{Partitions: 8})
	if n := countInstrs(plan, "algebra.hashbuild"); n != 1 {
		t.Errorf("hashbuild count = %d, want 1 (build once)", n)
	}
	if n := countInstrs(plan, "algebra.hashprobe"); n != 8 {
		t.Errorf("hashprobe count = %d, want 8 (one per probe slice)", n)
	}
	if n := countInstrs(plan, "algebra.join"); n != 0 {
		t.Errorf("packed algebra.join count = %d, want 0", n)
	}
	// Probe-side scan sliced, build side bound whole.
	if n := countInstrs(plan, "mat.slice"); n != 16 { // 2 probe columns x 8
		t.Errorf("mat.slice count = %d, want 16", n)
	}
	// Sequential fallback keeps the packed kernel.
	seq := compileQuery(t, q, Options{Partitions: 1})
	if n := countInstrs(seq, "algebra.join"); n != 1 {
		t.Errorf("sequential join count = %d, want 1", n)
	}
	if n := countInstrs(seq, "algebra.hashbuild") + countInstrs(seq, "algebra.hashprobe"); n != 0 {
		t.Errorf("sequential plan has %d hash instructions, want 0", n)
	}
}

// TestPartitionedJoinOutputStaysPartitioned: aggregation above a
// partitioned join consumes the per-slice join outputs without an
// intervening pack-per-column of the join result (the only packs are
// the mergetable partial-aggregate recombinations).
func TestPartitionedJoinOutputStaysPartitioned(t *testing.T) {
	q := "select o_orderpriority, count(*) as n from lineitem, orders where l_orderkey = o_orderkey group by o_orderpriority"
	plan := compileQuery(t, q, Options{Partitions: 4})
	if n := countInstrs(plan, "algebra.hashprobe"); n != 4 {
		t.Fatalf("hashprobe count = %d, want 4", n)
	}
	// Per-slice grouping on the join output: one subgroup per slice plus
	// one merge regrouping.
	if n := countInstrs(plan, "group.subgroup"); n != 5 {
		t.Errorf("subgroup count = %d, want 5 (4 slices + merge)", n)
	}
}

// TestMergedSortPlanShape: a sort above a sliced scan compiles to one
// stable sort per slice plus a single mat.kmerge recombination.
func TestMergedSortPlanShape(t *testing.T) {
	q := "select l_orderkey, l_extendedprice from lineitem order by l_extendedprice"
	plan := compileQuery(t, q, Options{Partitions: 8})
	if n := countInstrs(plan, "algebra.sortTail"); n != 8 {
		t.Errorf("sortTail count = %d, want 8 (one per slice)", n)
	}
	if n := countInstrs(plan, "mat.kmerge"); n != 1 {
		t.Errorf("kmerge count = %d, want 1", n)
	}
	// kmerge carries nkeys + asc + 8 key columns.
	for _, in := range plan.Instrs {
		if in.Name() == "mat.kmerge" && len(in.Args) != 1+1+8 {
			t.Errorf("kmerge has %d args, want 10", len(in.Args))
		}
	}
	seq := compileQuery(t, q, Options{Partitions: 1})
	if n := countInstrs(seq, "mat.kmerge"); n != 0 {
		t.Errorf("sequential sort emitted %d kmerge instructions", n)
	}
	if n := countInstrs(seq, "algebra.sortTail"); n != 1 {
		t.Errorf("sequential sortTail count = %d, want 1", n)
	}
}

// TestMergedSortMultiKeyPlanShape: every key sorts per slice (least to
// most significant) and the merge receives one column group per key.
func TestMergedSortMultiKeyPlanShape(t *testing.T) {
	q := "select l_orderkey, l_extendedprice from lineitem order by l_extendedprice desc, l_orderkey"
	plan := compileQuery(t, q, Options{Partitions: 4})
	if n := countInstrs(plan, "algebra.sortTail"); n != 8 {
		t.Errorf("sortTail count = %d, want 8 (2 keys x 4 slices)", n)
	}
	for _, in := range plan.Instrs {
		if in.Name() == "mat.kmerge" {
			if len(in.Args) != 1+2+2*4 {
				t.Errorf("kmerge has %d args, want 11 (nkeys + 2 asc + 2x4 cols)", len(in.Args))
			}
			if !in.Args[1].IsConst() || in.Args[1].Const.Bool { // first key desc
				t.Errorf("kmerge first asc flag = %v, want false", in.Args[1])
			}
			if !in.Args[2].IsConst() || !in.Args[2].Const.Bool { // second key asc
				t.Errorf("kmerge second asc flag = %v, want true", in.Args[2])
			}
		}
	}
}

// TestTopKFusionPlanShape: ORDER BY ... LIMIT truncates every sorted
// slice before the merge — one algebra.slice per column per slice plus
// the final global limit slices.
func TestTopKFusionPlanShape(t *testing.T) {
	q := "select l_orderkey, l_extendedprice from lineitem order by l_extendedprice desc limit 10"
	plan := compileQuery(t, q, Options{Partitions: 8})
	// 8 slices x 2 columns truncated + 2 final limit slices.
	if n := countInstrs(plan, "algebra.slice"); n != 18 {
		t.Errorf("algebra.slice count = %d, want 18 (per-slice top-k + global limit)", n)
	}
	if n := countInstrs(plan, "mat.kmerge"); n != 1 {
		t.Errorf("kmerge count = %d, want 1", n)
	}
	// Without the limit there is no per-slice truncation.
	noLimit := compileQuery(t, "select l_orderkey, l_extendedprice from lineitem order by l_extendedprice desc", Options{Partitions: 8})
	if n := countInstrs(noLimit, "algebra.slice"); n != 0 {
		t.Errorf("plain sort emitted %d algebra.slice instructions, want 0", n)
	}
	// A limit over a non-sort input is untouched by the fusion.
	plain := compileQuery(t, "select l_orderkey from lineitem limit 10", Options{Partitions: 8})
	if n := countInstrs(plain, "algebra.slice"); n != 1 {
		t.Errorf("plain limit slice count = %d, want 1", n)
	}
}
