package mal

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads a textual MAL listing in the format produced by Plan.String
// and reconstructs the plan. Variable types are taken from the result
// annotations; variables that only appear as arguments default to TVoid
// until their defining statement is seen (forward references are rejected
// by Validate, which Parse runs before returning).
func Parse(r io.Reader) (*Plan, error) {
	p := NewPlan("")
	names := map[string]int{} // variable display name -> index
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "function ") || strings.HasPrefix(line, "end "):
			continue
		case strings.HasPrefix(line, "#"):
			if p.Query == "" {
				p.Query = strings.TrimSpace(line[1:])
			}
			continue
		}
		if err := parseStmt(p, names, line); err != nil {
			return nil, fmt.Errorf("mal: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mal: %w", err)
	}
	p.Renumber()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseString is Parse over an in-memory listing.
func ParseString(s string) (*Plan, error) { return Parse(strings.NewReader(s)) }

func parseStmt(p *Plan, names map[string]int, line string) error {
	line = strings.TrimSuffix(line, ";")
	var retsPart, callPart string
	if i := strings.Index(line, ":="); i >= 0 {
		retsPart = strings.TrimSpace(line[:i])
		callPart = strings.TrimSpace(line[i+2:])
	} else {
		callPart = line
	}

	var rets []int
	if retsPart != "" {
		retsPart = strings.TrimPrefix(retsPart, "(")
		retsPart = strings.TrimSuffix(retsPart, ")")
		for _, f := range splitTop(retsPart) {
			id, err := declVar(p, names, strings.TrimSpace(f))
			if err != nil {
				return err
			}
			rets = append(rets, id)
		}
	}

	open := strings.Index(callPart, "(")
	if open < 0 || !strings.HasSuffix(callPart, ")") {
		return fmt.Errorf("malformed call %q", callPart)
	}
	qual := callPart[:open]
	dot := strings.Index(qual, ".")
	if dot < 0 {
		return fmt.Errorf("call %q lacks module qualifier", qual)
	}
	module, function := qual[:dot], qual[dot+1:]

	var args []Arg
	inner := callPart[open+1 : len(callPart)-1]
	if strings.TrimSpace(inner) != "" {
		for _, f := range splitTop(inner) {
			f = strings.TrimSpace(f)
			if id, ok := names[stripType(f)]; ok && !looksLiteral(f) {
				args = append(args, VarArg(id))
				continue
			}
			v, err := ParseLiteral(f)
			if err != nil {
				return fmt.Errorf("argument %q: %w", f, err)
			}
			args = append(args, ConstOf(v))
		}
	}
	p.Emit(module, function, rets, args...)
	return nil
}

// declVar registers (or reuses) a variable from a "name:type" declaration.
func declVar(p *Plan, names map[string]int, decl string) (int, error) {
	name := decl
	t := TVoid
	if i := strings.Index(decl, ":"); i >= 0 {
		name = decl[:i]
		var err error
		t, err = ParseType(strings.TrimSpace(decl[i+1:]))
		if err != nil {
			return 0, err
		}
	}
	if id, ok := names[name]; ok {
		if t != TVoid {
			p.Vars[id].Type = t
		}
		return id, nil
	}
	id := p.NewNamedVar(name, t)
	names[name] = id
	return id, nil
}

func stripType(s string) string {
	if i := strings.Index(s, ":"); i >= 0 && !strings.HasPrefix(s, `"`) {
		return s[:i]
	}
	return s
}

func looksLiteral(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '"' || c == '-' || (c >= '0' && c <= '9') ||
		s == "true" || s == "false" || s == "nil" || strings.HasPrefix(s, "date(")
}

// splitTop splits a comma-separated list at the top nesting level,
// respecting quoted strings and parentheses (for date(n) literals).
func splitTop(s string) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}
