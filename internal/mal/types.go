// Package mal implements the MonetDB Assembly Language (MAL) used as the
// intermediate representation for query plans in this Stethoscope
// reproduction. A MAL plan is a sequence of instructions of the form
//
//	X_3 := algebra.select(X_1, 1, 1);
//
// where "algebra" is a module, "select" a function in that module, and the
// X_n literals are single-assignment variables. Plans form a dataflow DAG:
// an instruction depends on the instructions that defined its argument
// variables. Stethoscope renders that DAG and animates execution traces on
// top of it.
package mal

import "fmt"

// Type describes the value type carried by a MAL variable.
type Type int

// The MAL type lattice used by this reproduction. BAT types are columns
// (MonetDB Binary Association Tables) whose tail carries the element type.
const (
	TVoid Type = iota // no value (control instructions)
	TInt              // 64-bit integer scalar
	TFlt              // 64-bit float scalar
	TStr              // string scalar
	TBool             // boolean scalar
	TDate             // date scalar, days since epoch
	TOID              // object identifier scalar (row position)

	TBATInt  // BAT with int64 tail
	TBATFlt  // BAT with float64 tail
	TBATStr  // BAT with string tail
	TBATBool // BAT with bool tail
	TBATDate // BAT with date tail
	TBATOID  // BAT with oid tail (candidate/selection vectors)

	THash // opaque join-hash handle (partitioned join build side)
)

var typeNames = map[Type]string{
	TVoid:    "void",
	TInt:     "int",
	TFlt:     "flt",
	TStr:     "str",
	TBool:    "bit",
	TDate:    "date",
	TOID:     "oid",
	TBATInt:  "bat[:int]",
	TBATFlt:  "bat[:flt]",
	TBATStr:  "bat[:str]",
	TBATBool: "bat[:bit]",
	TBATDate: "bat[:date]",
	TBATOID:  "bat[:oid]",
	THash:    "hash",
}

// String returns the MAL notation for the type, e.g. "bat[:int]".
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// IsBAT reports whether the type denotes a column (BAT) rather than a scalar.
func (t Type) IsBAT() bool {
	switch t {
	case TBATInt, TBATFlt, TBATStr, TBATBool, TBATDate, TBATOID:
		return true
	}
	return false
}

// Elem returns the scalar element type of a BAT type. For scalar types it
// returns the type itself.
func (t Type) Elem() Type {
	switch t {
	case TBATInt:
		return TInt
	case TBATFlt:
		return TFlt
	case TBATStr:
		return TStr
	case TBATBool:
		return TBool
	case TBATDate:
		return TDate
	case TBATOID:
		return TOID
	}
	return t
}

// BATOf returns the BAT type whose tail carries the given scalar type.
// BATOf(TVoid) returns TVoid.
func BATOf(elem Type) Type {
	switch elem {
	case TInt:
		return TBATInt
	case TFlt:
		return TBATFlt
	case TStr:
		return TBATStr
	case TBool:
		return TBATBool
	case TDate:
		return TBATDate
	case TOID:
		return TBATOID
	}
	return TVoid
}

// ParseType parses the MAL notation produced by Type.String.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return TVoid, fmt.Errorf("mal: unknown type %q", s)
}
