package mal

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSimplePlan(t *testing.T) *Plan {
	t.Helper()
	p := NewPlan("select l_tax from lineitem where l_partkey=1")
	col := p.Emit1("sql", "bind", TBATInt, ConstOf(Str("sys")), ConstOf(Str("lineitem")), ConstOf(Str("l_partkey")), ConstOf(Int64(0)))
	sel := p.Emit1("algebra", "select", TBATOID, VarArg(col), ConstOf(Int64(1)), ConstOf(Int64(1)))
	tax := p.Emit1("sql", "bind", TBATFlt, ConstOf(Str("sys")), ConstOf(Str("lineitem")), ConstOf(Str("l_tax")), ConstOf(Int64(0)))
	prj := p.Emit1("algebra", "leftjoin", TBATFlt, VarArg(sel), VarArg(tax))
	p.Emit0("sql", "resultSet", VarArg(prj))
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestPlanBuildAndValidate(t *testing.T) {
	p := buildSimplePlan(t)
	if got := len(p.Instrs); got != 5 {
		t.Fatalf("instr count = %d, want 5", got)
	}
	for i, in := range p.Instrs {
		if in.PC != i {
			t.Errorf("instr %d has pc %d", i, in.PC)
		}
	}
}

func TestStmtString(t *testing.T) {
	p := buildSimplePlan(t)
	got := p.StmtString(p.Instrs[1])
	want := `X_1:bat[:oid] := algebra.select(X_0, 1, 1);`
	if got != want {
		t.Errorf("StmtString = %q, want %q", got, want)
	}
}

func TestStmtStringMultiReturn(t *testing.T) {
	p := NewPlan("")
	a := p.NewVar(TBATOID)
	b := p.NewVar(TBATOID)
	src := p.Emit1("sql", "bind", TBATInt, ConstOf(Str("t")))
	p.Emit("group", "subgroup", []int{a, b}, VarArg(src))
	got := p.StmtString(p.Instrs[1])
	if !strings.HasPrefix(got, "(X_0:bat[:oid], X_1:bat[:oid]) := group.subgroup(") {
		t.Errorf("multi-return StmtString = %q", got)
	}
}

func TestDeps(t *testing.T) {
	p := buildSimplePlan(t)
	deps := p.Deps()
	cases := []struct {
		pc   int
		want []int
	}{
		{0, nil},
		{1, []int{0}},
		{2, nil},
		{3, []int{1, 2}},
		{4, []int{3}},
	}
	for _, c := range cases {
		if !equalInts(deps[c.pc], c.want) {
			t.Errorf("deps[%d] = %v, want %v", c.pc, deps[c.pc], c.want)
		}
	}
}

func TestUsesIsTransposeOfDeps(t *testing.T) {
	p := buildSimplePlan(t)
	deps, uses := p.Deps(), p.Uses()
	for pc, ds := range deps {
		for _, d := range ds {
			if !containsInt(uses[d], pc) {
				t.Errorf("uses[%d] missing %d", d, pc)
			}
		}
	}
	for pc, us := range uses {
		for _, u := range us {
			if !containsInt(deps[u], pc) {
				t.Errorf("deps[%d] missing %d", u, pc)
			}
		}
	}
}

func TestValidateRejectsUseBeforeDef(t *testing.T) {
	p := NewPlan("")
	v := p.NewVar(TBATInt)
	p.Emit1("algebra", "select", TBATOID, VarArg(v))
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted use-before-def")
	}
}

func TestValidateRejectsDoubleAssign(t *testing.T) {
	p := NewPlan("")
	v := p.NewVar(TBATInt)
	p.Emit("sql", "bind", []int{v}, ConstOf(Str("a")))
	p.Emit("sql", "bind", []int{v}, ConstOf(Str("b")))
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted double assignment")
	}
}

func TestValidateRejectsBadPC(t *testing.T) {
	p := buildSimplePlan(t)
	p.Instrs[2].PC = 99
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted wrong pc")
	}
	p.Renumber()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after Renumber: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildSimplePlan(t)
	q := p.Clone()
	q.Instrs[0].Module = "changed"
	q.Instrs[0].Args[0] = ConstOf(Str("zzz"))
	q.Vars[0].Name = "Y_0"
	if p.Instrs[0].Module == "changed" {
		t.Error("Clone shares Instr structs")
	}
	if p.Instrs[0].Args[0].Const.Str == "zzz" {
		t.Error("Clone shares Args slices")
	}
	if p.Vars[0].Name == "Y_0" {
		t.Error("Clone shares Vars slice")
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := buildSimplePlan(t)
	text := p.String()
	q, err := ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v\nlisting:\n%s", err, text)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("round-trip instr count = %d, want %d", len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if got, want := q.StmtString(q.Instrs[i]), p.StmtString(p.Instrs[i]); got != want {
			t.Errorf("instr %d: %q != %q", i, got, want)
		}
	}
	if q.Query != p.Query {
		t.Errorf("query comment = %q, want %q", q.Query, p.Query)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"X_0 := nomodule(1);",
		"X_0 := a.b(unclosed;",
		"a.b(X_9);", // undefined variable -> literal parse failure
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestTypeStringParseRoundTrip(t *testing.T) {
	for _, typ := range []Type{TVoid, TInt, TFlt, TStr, TBool, TDate, TOID,
		TBATInt, TBATFlt, TBATStr, TBATBool, TBATDate, TBATOID} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("round trip %v -> %v", typ, got)
		}
	}
}

func TestBATOfElem(t *testing.T) {
	for _, el := range []Type{TInt, TFlt, TStr, TBool, TDate, TOID} {
		b := BATOf(el)
		if !b.IsBAT() {
			t.Errorf("BATOf(%v) = %v not a BAT", el, b)
		}
		if b.Elem() != el {
			t.Errorf("Elem(BATOf(%v)) = %v", el, b.Elem())
		}
	}
	if BATOf(TVoid) != TVoid {
		t.Error("BATOf(TVoid) should be TVoid")
	}
}

func TestValueLiteralRoundTrip(t *testing.T) {
	vals := []Value{
		Int64(0), Int64(-42), Int64(1 << 40),
		Float64(3.5), Float64(-0.25), Float64(2),
		Str("hello"), Str(`with "quotes" and, comma`), Str(""),
		Bool(true), Bool(false),
		Date(19000), OID(7),
		{},
	}
	for _, v := range vals {
		s := v.String()
		got, err := ParseLiteral(s)
		if err != nil {
			t.Fatalf("ParseLiteral(%q): %v", s, err)
		}
		// OID parses back as TInt (same wire representation); normalize.
		if v.Type == TOID {
			v.Type = TInt
		}
		if got != v {
			t.Errorf("literal round trip %q: got %+v want %+v", s, got, v)
		}
	}
}

func TestValueLiteralQuickProperty(t *testing.T) {
	f := func(n int64, fl float64, s string, b bool) bool {
		for _, v := range []Value{Int64(n), Str(s), Bool(b)} {
			got, err := ParseLiteral(v.String())
			if err != nil || got != v {
				return false
			}
		}
		// Floats: NaN/Inf are not valid MAL literals; skip them.
		if fl == fl && fl < 1e308 && fl > -1e308 {
			v := Float64(fl)
			got, err := ParseLiteral(v.String())
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPruneRemovesAdminKeepsProducers(t *testing.T) {
	p := NewPlan("q")
	p.Emit0("querylog", "define", ConstOf(Str("q")))
	col := p.Emit1("sql", "bind", TBATInt, ConstOf(Str("sys")), ConstOf(Str("t")), ConstOf(Str("c")), ConstOf(Int64(0)))
	sel := p.Emit1("algebra", "select", TBATOID, VarArg(col), ConstOf(Int64(1)))
	p.Emit0("sql", "resultSet", VarArg(sel))
	p.Emit0("language", "pass", VarArg(col))

	q, remap := Prune(p)
	if err := q.Validate(); err != nil {
		t.Fatalf("pruned plan invalid: %v", err)
	}
	// querylog.define and language.pass gone; sql.resultSet consumes sel so
	// it is admin but... resultSet is admin and a *consumer*, not producer,
	// so it is pruned too. bind+select survive.
	for _, in := range q.Instrs {
		if in.Module == "querylog" || in.Name() == "language.pass" {
			t.Errorf("admin instruction survived: %s", in.Name())
		}
	}
	if len(q.Instrs) != 2 {
		t.Fatalf("pruned plan has %d instrs, want 2:\n%s", len(q.Instrs), q)
	}
	if _, ok := remap[1]; !ok {
		t.Error("remap missing pc=1 (bind)")
	}
	if _, ok := remap[0]; ok {
		t.Error("remap contains pruned pc=0")
	}
}

func TestPruneKeepsAdminProducerFeedingData(t *testing.T) {
	p := NewPlan("")
	// bat.new is classified admin, but its result feeds a data op.
	nb := p.Emit1("bat", "new", TBATInt)
	p.Emit1("algebra", "select", TBATOID, VarArg(nb), ConstOf(Int64(0)))
	q, _ := Prune(p)
	if len(q.Instrs) != 2 {
		t.Fatalf("producer was pruned; got %d instrs", len(q.Instrs))
	}
}

func TestIsAdmin(t *testing.T) {
	cases := []struct {
		mod, fn string
		want    bool
	}{
		{"language", "pass", true},
		{"querylog", "define", true},
		{"algebra", "select", false},
		{"sql", "bind", false},
		{"sql", "resultSet", true},
		{"group", "subgroup", false},
		{"profiler", "anything", true},
	}
	for _, c := range cases {
		in := &Instr{Module: c.mod, Function: c.fn}
		if got := in.IsAdmin(); got != c.want {
			t.Errorf("IsAdmin(%s.%s) = %v, want %v", c.mod, c.fn, got, c.want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}
