package mal

// Administrative-instruction classification. The paper's future-work list
// (§6) includes "selective pruning of MAL plan to remove unimportant
// administrative instructions"; experiment E11 implements it. An
// instruction is administrative when it neither moves nor transforms data:
// bookkeeping around transactions, result-set plumbing, and language
// control.

// adminFuncs lists module.function pairs that are pure bookkeeping.
var adminFuncs = map[string]bool{
	"language.pass":      true,
	"language.dataflow":  true,
	"querylog.define":    true,
	"sql.mvc":            true,
	"sql.resultSet":      true,
	"sql.rsColumn":       true,
	"sql.exportResult":   true,
	"bat.new":            true,
	"profiler.start":     true,
	"profiler.stop":      true,
	"transaction.begin":  true,
	"transaction.commit": true,
}

// IsAdmin reports whether the instruction is administrative bookkeeping
// rather than a data-bearing operator.
func (in *Instr) IsAdmin() bool {
	if adminFuncs[in.Name()] {
		return true
	}
	// Module-wide admin namespaces.
	switch in.Module {
	case "querylog", "transaction", "profiler":
		return true
	}
	return false
}

// Prune returns a copy of the plan with administrative instructions
// removed, except those whose results feed a surviving data instruction
// (removing a producer would break the dataflow DAG). PCs are renumbered;
// the mapping old-pc -> new-pc is returned so trace events can be remapped
// onto the pruned graph.
func Prune(p *Plan) (*Plan, map[int]int) {
	keep := make([]bool, len(p.Instrs))
	for i, in := range p.Instrs {
		keep[i] = !in.IsAdmin()
	}
	// A pruned instruction whose result is consumed by a kept instruction
	// must itself be kept: iterate to fixpoint (bounded by plan length).
	deps := p.Deps()
	for changed := true; changed; {
		changed = false
		for i := range p.Instrs {
			if !keep[i] {
				continue
			}
			for _, d := range deps[i] {
				if !keep[d] {
					keep[d] = true
					changed = true
				}
			}
		}
	}

	q := &Plan{Query: p.Query, Vars: append([]Variable(nil), p.Vars...)}
	remap := make(map[int]int)
	for i, in := range p.Instrs {
		if !keep[i] {
			continue
		}
		cp := &Instr{
			Module:   in.Module,
			Function: in.Function,
			Rets:     append([]int(nil), in.Rets...),
			Args:     append([]Arg(nil), in.Args...),
		}
		remap[in.PC] = len(q.Instrs)
		q.Instrs = append(q.Instrs, cp)
	}
	q.Renumber()
	return q, remap
}
