package mal

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a runtime MAL value: a scalar or an opaque column handle. The
// mal package stays independent of the storage layer, so BAT payloads are
// carried as an opaque reference set by the engine.
type Value struct {
	Type Type
	Int  int64   // TInt, TDate (days since 1970-01-01), TOID
	Flt  float64 // TFlt
	Str  string  // TStr
	Bool bool    // TBool
	Col  any     // BAT payload for TBAT* types, owned by the engine
}

// Int64 constructs an integer value.
func Int64(v int64) Value { return Value{Type: TInt, Int: v} }

// Float64 constructs a float value.
func Float64(v float64) Value { return Value{Type: TFlt, Flt: v} }

// Str constructs a string value.
func Str(v string) Value { return Value{Type: TStr, Str: v} }

// Bool constructs a boolean value.
func Bool(v bool) Value { return Value{Type: TBool, Bool: v} }

// Date constructs a date value from days since the Unix epoch.
func Date(days int64) Value { return Value{Type: TDate, Int: days} }

// OID constructs an object-identifier value.
func OID(v int64) Value { return Value{Type: TOID, Int: v} }

// Nil reports whether the value is the zero Value (type void, no payload).
func (v Value) Nil() bool { return v.Type == TVoid && v.Col == nil }

// String renders the value as a MAL literal. BAT handles render as
// "<bat>" placeholders since their contents live in the engine.
func (v Value) String() string {
	switch v.Type {
	case TVoid:
		return "nil"
	case TInt, TOID:
		return strconv.FormatInt(v.Int, 10)
	case TDate:
		return fmt.Sprintf("date(%d)", v.Int)
	case TFlt:
		s := strconv.FormatFloat(v.Flt, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case TStr:
		return strconv.Quote(v.Str)
	case TBool:
		if v.Bool {
			return "true"
		}
		return "false"
	default:
		return "<bat>"
	}
}

// ParseLiteral parses a MAL literal as printed by Value.String: integers,
// floats, quoted strings, booleans, date(n), and nil.
func ParseLiteral(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "nil":
		return Value{}, nil
	case s == "true":
		return Bool(true), nil
	case s == "false":
		return Bool(false), nil
	case strings.HasPrefix(s, `"`):
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("mal: bad string literal %s: %w", s, err)
		}
		return Str(u), nil
	case strings.HasPrefix(s, "date(") && strings.HasSuffix(s, ")"):
		n, err := strconv.ParseInt(s[5:len(s)-1], 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("mal: bad date literal %s: %w", s, err)
		}
		return Date(n), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int64(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float64(f), nil
	}
	return Value{}, fmt.Errorf("mal: unrecognized literal %q", s)
}
