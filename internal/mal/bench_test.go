package mal

import (
	"fmt"
	"testing"
)

// widePlan builds an n-instruction mitosis-shaped plan for benchmarks.
func widePlan(n int) *Plan {
	p := NewPlan("bench")
	bind := p.Emit1("sql", "bind", TBATInt,
		ConstOf(Str("sys")), ConstOf(Str("t")), ConstOf(Str("c")), ConstOf(Int64(0)))
	var outs []int
	for len(p.Instrs) < n-1 {
		s := p.Emit1("mat", "slice", TBATInt, VarArg(bind),
			ConstOf(Int64(int64(len(outs)))), ConstOf(Int64(64)))
		sel := p.Emit1("algebra", "thetaselect", TBATOID, VarArg(s),
			ConstOf(Str("<")), ConstOf(Int64(100)))
		outs = append(outs, p.Emit1("algebra", "leftjoin", TBATInt, VarArg(sel), VarArg(s)))
	}
	args := make([]Arg, len(outs))
	for i, o := range outs {
		args[i] = VarArg(o)
	}
	p.Emit1("mat", "pack", TBATInt, args...)
	return p
}

func BenchmarkPlanPrint(b *testing.B) {
	p := widePlan(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.String()
	}
}

func BenchmarkPlanParse(b *testing.B) {
	text := widePlan(500).String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeps(b *testing.B) {
	for _, n := range []int{100, 1000} {
		p := widePlan(n)
		b.Run(fmt.Sprintf("instrs=%d", len(p.Instrs)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Deps()
			}
		})
	}
}

func BenchmarkPrune(b *testing.B) {
	p := widePlan(500)
	p.Emit0("querylog", "define", ConstOf(Str("q")))
	p.Renumber()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prune(p)
	}
}
