package mal

import (
	"fmt"
	"strings"
	"sync"
)

// Variable is a single-assignment MAL variable slot within a plan.
type Variable struct {
	Name string // display name, "X_<id>" by default
	Type Type
}

// Arg is an instruction operand: either a reference to a plan variable
// (Var >= 0) or an inline constant (Var == ConstArg).
type Arg struct {
	Var   int // variable index, or ConstArg for a constant
	Const Value
}

// ConstArg marks an Arg as carrying an inline constant rather than a
// variable reference.
const ConstArg = -1

// VarArg returns an Arg referencing variable id.
func VarArg(id int) Arg { return Arg{Var: id} }

// ConstOf returns an Arg carrying the constant v.
func ConstOf(v Value) Arg { return Arg{Var: ConstArg, Const: v} }

// IsConst reports whether the operand is an inline constant.
func (a Arg) IsConst() bool { return a.Var == ConstArg }

// Instr is one MAL statement: module.function applied to Args, assigning
// results to the variables in Rets. PC is the program counter, the
// instruction's position in the plan; the paper's trace-to-dot mapping is
// "pc=N maps to dot node nN".
type Instr struct {
	PC       int
	Module   string
	Function string
	Rets     []int
	Args     []Arg
}

// Name returns the qualified "module.function" name.
func (in *Instr) Name() string { return in.Module + "." + in.Function }

// Plan is a MAL program: an ordered instruction list over a shared
// single-assignment variable table. Plans are built by the compiler,
// rewritten by the optimizer, interpreted by the engine, and rendered by
// Stethoscope as a dataflow DAG.
type Plan struct {
	// Query is the source SQL text, carried for display purposes.
	Query  string
	Vars   []Variable
	Instrs []*Instr

	// Frags are the morsel fragments referenced by mat.morsel
	// instructions, indexed by fragment id. Fragments are immutable
	// once the compiler finishes; optimizer clones share them.
	Frags []*Fragment

	// stmts caches the rendered statement text per PC for the
	// execution hot path; see CachedStmt.
	stmtsOnce sync.Once
	stmts     []string

	// validateOnce memoizes Validate for finalized plans; see
	// ValidateCached.
	validateOnce sync.Once
	validateErr  error
}

// NewPlan returns an empty plan for the given source query text.
func NewPlan(query string) *Plan { return &Plan{Query: query} }

// Fragment is a per-morsel sub-plan: the instruction chain a morsel
// worker runs over one slice of the driver table (filter, project,
// hash-probe, partial aggregate) before the combine stage materializes.
// Fragments are referenced from the outer plan by a mat.morsel
// instruction carrying the fragment id as its first constant argument.
//
// A fragment's variable table is separate from the outer plan's.
// Params and Caps are fragment variable ids with no defining
// instruction — the morsel scheduler presets them before running the
// fragment's instructions: Params receive the current morsel's slice of
// each source column (in the morsel instruction's source-argument
// order), Caps receive whole outer values captured once per run (hash
// tables, packed build sides). Outs are the fragment variables exported
// per morsel; the scheduler packs them across morsels, in morsel order,
// into the morsel instruction's return variables.
type Fragment struct {
	Plan   *Plan
	Params []int
	Caps   []int
	Outs   []int
}

// NewVar appends a fresh variable of type t and returns its index. The
// variable is named X_<index> in MAL notation.
func (p *Plan) NewVar(t Type) int {
	id := len(p.Vars)
	p.Vars = append(p.Vars, Variable{Name: fmt.Sprintf("X_%d", id), Type: t})
	return id
}

// NewNamedVar appends a fresh variable with an explicit display name.
func (p *Plan) NewNamedVar(name string, t Type) int {
	id := len(p.Vars)
	p.Vars = append(p.Vars, Variable{Name: name, Type: t})
	return id
}

// VarType returns the declared type of variable id.
func (p *Plan) VarType(id int) Type {
	if id < 0 || id >= len(p.Vars) {
		return TVoid
	}
	return p.Vars[id].Type
}

// VarName returns the display name of variable id.
func (p *Plan) VarName(id int) string {
	if id < 0 || id >= len(p.Vars) {
		return fmt.Sprintf("X_?%d", id)
	}
	return p.Vars[id].Name
}

// Emit appends an instruction and returns it. PC is assigned to the
// instruction's position.
func (p *Plan) Emit(module, function string, rets []int, args ...Arg) *Instr {
	in := &Instr{
		PC:       len(p.Instrs),
		Module:   module,
		Function: function,
		Rets:     rets,
		Args:     args,
	}
	p.Instrs = append(p.Instrs, in)
	return in
}

// Emit1 appends an instruction with a single fresh result variable of type
// t and returns the new variable's index.
func (p *Plan) Emit1(module, function string, t Type, args ...Arg) int {
	ret := p.NewVar(t)
	p.Emit(module, function, []int{ret}, args...)
	return ret
}

// Emit0 appends a result-less (void) instruction.
func (p *Plan) Emit0(module, function string, args ...Arg) *Instr {
	return p.Emit(module, function, nil, args...)
}

// Renumber reassigns PCs to match instruction positions. Optimizer passes
// that delete or reorder instructions must call this before the plan is
// executed or exported to dot, because Stethoscope's pc-to-node mapping
// relies on PC == position.
func (p *Plan) Renumber() {
	for i, in := range p.Instrs {
		in.PC = i
	}
}

// DefSites returns, for every variable, the PC of the instruction that
// defines it, or -1 if the variable is never assigned (e.g. only used as a
// constant placeholder).
func (p *Plan) DefSites() []int {
	def := make([]int, len(p.Vars))
	for i := range def {
		def[i] = -1
	}
	for _, in := range p.Instrs {
		for _, r := range in.Rets {
			if r >= 0 && r < len(def) && def[r] == -1 {
				def[r] = in.PC
			}
		}
	}
	return def
}

// Deps returns, per instruction, the PCs of the instructions whose results
// it consumes — the dataflow edges of the DAG Stethoscope draws. The
// result is indexed by PC and each dependency list is sorted ascending with
// duplicates removed.
func (p *Plan) Deps() [][]int {
	def := p.DefSites()
	deps := make([][]int, len(p.Instrs))
	for i, in := range p.Instrs {
		seen := map[int]bool{}
		for _, a := range in.Args {
			if a.IsConst() {
				continue
			}
			d := -1
			if a.Var >= 0 && a.Var < len(def) {
				d = def[a.Var]
			}
			if d >= 0 && d != in.PC && !seen[d] {
				seen[d] = true
				deps[i] = append(deps[i], d)
			}
		}
		sortInts(deps[i])
	}
	return deps
}

// Uses returns the transpose of Deps: per instruction, the PCs of
// instructions that consume one of its results.
func (p *Plan) Uses() [][]int {
	deps := p.Deps()
	uses := make([][]int, len(p.Instrs))
	for pc, ds := range deps {
		for _, d := range ds {
			uses[d] = append(uses[d], pc)
		}
	}
	return uses
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Validate checks plan well-formedness: every argument variable is defined
// by an earlier instruction, every variable is assigned at most once
// (single assignment), and variable indices are in range.
func (p *Plan) Validate() error {
	assigned := make([]bool, len(p.Vars))
	for i, in := range p.Instrs {
		if in.PC != i {
			return fmt.Errorf("mal: instruction %d has pc=%d; call Renumber", i, in.PC)
		}
		for _, a := range in.Args {
			if a.IsConst() {
				continue
			}
			if a.Var < 0 || a.Var >= len(p.Vars) {
				return fmt.Errorf("mal: pc=%d %s: argument variable %d out of range", i, in.Name(), a.Var)
			}
			if !assigned[a.Var] {
				return fmt.Errorf("mal: pc=%d %s: variable %s used before assignment", i, in.Name(), p.VarName(a.Var))
			}
		}
		for _, r := range in.Rets {
			if r < 0 || r >= len(p.Vars) {
				return fmt.Errorf("mal: pc=%d %s: result variable %d out of range", i, in.Name(), r)
			}
			if assigned[r] {
				return fmt.Errorf("mal: pc=%d %s: variable %s assigned twice", i, in.Name(), p.VarName(r))
			}
			assigned[r] = true
		}
	}
	return nil
}

// StmtString renders instruction in as a single MAL statement line, e.g.
//
//	X_3:bat[:oid] := algebra.select(X_1, 1);
//
// This string is what the profiler places in the trace "stmt" field and
// what the dot exporter places in node labels (paper §3.3).
func (p *Plan) StmtString(in *Instr) string {
	var b strings.Builder
	switch len(in.Rets) {
	case 0:
	case 1:
		r := in.Rets[0]
		fmt.Fprintf(&b, "%s:%s := ", p.VarName(r), p.VarType(r))
	default:
		b.WriteByte('(')
		for i, r := range in.Rets {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s:%s", p.VarName(r), p.VarType(r))
		}
		b.WriteString(") := ")
	}
	b.WriteString(in.Module)
	b.WriteByte('.')
	b.WriteString(in.Function)
	b.WriteByte('(')
	for i, a := range in.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		if a.IsConst() {
			b.WriteString(a.Const.String())
		} else {
			b.WriteString(p.VarName(a.Var))
		}
	}
	b.WriteString(");")
	return b.String()
}

// ValidateCached memoizes Validate. Like CachedStmt it is for
// finalized plans only: the engine validates every execution, and
// re-walking an immutable cached plan on each of them is pure hot-path
// overhead. Rewriting a plan after the first call would serve a stale
// verdict. Safe for concurrent use.
func (p *Plan) ValidateCached() error {
	p.validateOnce.Do(func() { p.validateErr = p.Validate() })
	return p.validateErr
}

// CachedStmt returns StmtString(in) from a per-plan cache rendered once
// on first use. The profiler attaches the statement text to every
// start/done event, so re-executions of a cached plan would otherwise
// re-render every instruction on every run; with the cache the text is
// built once per plan lifetime. Only call this on finalized plans (the
// engine does, post-Validate): rewriting a plan after the first
// CachedStmt call would serve stale text. Safe for concurrent use.
func (p *Plan) CachedStmt(in *Instr) string {
	p.stmtsOnce.Do(func() {
		s := make([]string, len(p.Instrs))
		for i, instr := range p.Instrs {
			s[i] = p.StmtString(instr)
		}
		p.stmts = s
	})
	if in.PC >= 0 && in.PC < len(p.stmts) {
		return p.stmts[in.PC]
	}
	return p.StmtString(in)
}

// String renders the whole plan as a MAL listing wrapped in a
// function user.main() block, matching the paper's Figure 1 presentation.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("function user.main();\n")
	if p.Query != "" {
		fmt.Fprintf(&b, "# %s\n", p.Query)
	}
	for _, in := range p.Instrs {
		b.WriteString("    ")
		b.WriteString(p.StmtString(in))
		b.WriteByte('\n')
	}
	b.WriteString("end user.main;\n")
	for id, f := range p.Frags {
		fmt.Fprintf(&b, "fragment %d (params=%d, caps=%d, outs=%d);\n",
			id, len(f.Params), len(f.Caps), len(f.Outs))
		for _, in := range f.Plan.Instrs {
			b.WriteString("    ")
			b.WriteString(f.Plan.StmtString(in))
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "end fragment %d;\n", id)
	}
	return b.String()
}

// Clone returns a deep copy of the plan. Optimizer passes operate on
// clones so the unoptimized plan remains available for side-by-side
// display.
func (p *Plan) Clone() *Plan {
	q := &Plan{Query: p.Query, Vars: append([]Variable(nil), p.Vars...)}
	q.Frags = append([]*Fragment(nil), p.Frags...)
	q.Instrs = make([]*Instr, len(p.Instrs))
	for i, in := range p.Instrs {
		cp := &Instr{
			PC:       in.PC,
			Module:   in.Module,
			Function: in.Function,
			Rets:     append([]int(nil), in.Rets...),
			Args:     append([]Arg(nil), in.Args...),
		}
		q.Instrs[i] = cp
	}
	return q
}
