// Fixture for the kernelcoverage analyzer, rewrite side: the
// optimizer's in-place `instr.Function = "name"` rewrites must land on
// a registered kernel name.
package optimizer

type instr struct {
	Module   string
	Function string
}

func fuseJoin(probe *instr) {
	probe.Function = "join"
}

func badRewrite(p *instr) {
	p.Function = "nothere" // want "rewritten to .nothere. but no registered kernel has that name"
}
