// Fixture for the kernelcoverage analyzer, register side: the same
// idioms internal/engine uses — literal pairs, range over map-literal
// keys, and "sub"+name concatenation.
package engine

type Engine struct{}

func (e *Engine) Register(mod, fn string, k func()) {}

func registerKernels(e *Engine) {
	e.Register("algebra", "select", nil)
	e.Register("algebra", "join", nil)
	e.Register("bat", "mirror", nil) // want "kernel bat.mirror is registered but neither compiler nor optimizer can emit it"
	for name := range map[string]int{"add": 0, "sub": 1} {
		e.Register("batcalc", name, nil)
		e.Register("aggr", "sub"+name, nil)
	}
	e.Register("batcalc", "and", nil)
	//stetho:ignore kernelcoverage kept for hand-written MAL plans fed straight to the engine
	e.Register("language", "pass", nil)
}
