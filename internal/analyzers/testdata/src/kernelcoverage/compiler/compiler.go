// Fixture for the kernelcoverage analyzer, emit side: literals,
// map-indexed names, "sub"+x concatenation, the fn-from-switch-case
// idiom, and the two failure modes (unregistered opcode, unresolvable
// opcode expression).
package compiler

type plan struct{}

func (p *plan) Emit(mod, fn string, args ...int)      {}
func (p *plan) Emit1(mod, fn string, args ...int) int { return 0 }

var aggrFunc = map[int]string{0: "add", 1: "sub"}

var arithFunc = map[string]string{"+": "add", "-": "sub"}

func lower(p *plan, kind int, op string) {
	p.Emit("algebra", "select")
	p.Emit1("aggr", "sub"+aggrFunc[kind])

	var fn string
	switch op {
	case "+", "-":
		fn = arithFunc[op]
	case "and":
		fn = op
	}
	p.Emit1("batcalc", fn)

	p.Emit("calc", "missing") // want "mal opcode calc.missing is emitted here but registerKernels installs no such kernel"

	p.Emit("algebra", opOf(kind)) // want "cannot statically resolve the mal opcode"
}

func opOf(kind int) string { return "select" }
