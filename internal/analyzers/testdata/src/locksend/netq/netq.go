// Fixture for the locksend analyzer: no blocking channel send and no
// network write while a mutex is held.
package netq

import "sync"

type Q struct {
	mu   sync.Mutex
	out  chan int
	conn interface{ Write(b []byte) (int, error) }
}

func (q *Q) sendUnderDefer(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.out <- v // want "channel send while q.mu is held"
}

func (q *Q) sendBetweenLockUnlock(v int) {
	q.mu.Lock()
	q.out <- v // want "channel send while q.mu is held"
	q.mu.Unlock()
}

func (q *Q) writeUnderLock(b []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.conn.Write(b) // want "network write on q.conn while q.mu is held"
}

func (q *Q) unlockBeforeSend(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.out <- v
}

func (q *Q) nonBlockingKick() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.out <- 1:
	default:
	}
}

func (q *Q) blockingSelectSend() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.out <- 1: // want "blocking select send while q.mu is held"
	}
}

func (q *Q) spawnedGoroutine(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.out <- v
	}()
}

func (q *Q) writeOutsideLock(b []byte) {
	q.conn.Write(b)
	q.mu.Lock()
	defer q.mu.Unlock()
}

func (q *Q) suppressed(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//stetho:ignore locksend the consumer never takes q.mu and the channel is buffered beyond the producer count
	q.out <- v
}
