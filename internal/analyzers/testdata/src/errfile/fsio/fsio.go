// Fixture: fsio itself is under the same discipline when it has a path
// or handle in scope.
package fsio

import (
	"fmt"
	"os"
)

func truncateTail(f *os.File, off int64) error {
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	return nil
}

func implausibleLength(f *os.File, n uint32) error {
	if n > 1<<20 {
		return fmt.Errorf("fsio: implausible record length %d", n) // want "error does not name the file"
	}
	return nil
}
