// Fixture: wrapping fsio's deliberately path-agnostic framing errors
// without naming the file is flagged; the caller owns the naming.
package tracestore

import (
	"fmt"
	"os"
)

func readAt(f *os.File, off int64) ([]byte, error) {
	payload, err := fsio.ReadRecordAt(f, off, 1024)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err) // want "error does not name the file"
	}
	return payload, nil
}

func readAtNamed(f *os.File, off int64) ([]byte, error) {
	payload, err := fsio.ReadRecordAt(f, off, 1024)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %s: %w", f.Name(), err)
	}
	return payload, nil
}

func statSize(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("tracestore: %w", err)
	}
	return info.Size(), nil
}
