// Fixture for the errfile analyzer: in the durable-store packages an
// error built while a path is in scope must name the file.
package batstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

func openManifest(dir string) error {
	path := filepath.Join(dir, "manifest.json")
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("batstore: %w", err)
	}
	defer f.Close()
	return nil
}

func checkManifest(path string, data []byte) error {
	if len(data) == 0 {
		return errors.New("batstore: empty manifest") // want "error does not name the file"
	}
	if data[0] != '{' {
		return fmt.Errorf("batstore: %s: manifest is not json", path)
	}
	return nil
}

func verifyChecksum(f *os.File, sum, expect uint32) error {
	if sum != expect {
		return fmt.Errorf("batstore: checksum mismatch") // want "error does not name the file"
	}
	return nil
}

func verifyChecksumNamed(f *os.File, sum, expect uint32) error {
	if sum != expect {
		return fmt.Errorf("batstore: %s: checksum mismatch", f.Name())
	}
	return nil
}

func compareRows(a, b int) error {
	if a != b {
		return errors.New("batstore: row counts differ")
	}
	return nil
}

func requireDir(dir string) error {
	if dir == "" {
		//stetho:ignore errfile the rejected dir is the empty string; there is no file to name
		return errors.New("batstore: dir is required")
	}
	return nil
}
