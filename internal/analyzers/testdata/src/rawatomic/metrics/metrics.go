// Fixture: internal/metrics is the one package that may always use
// sync/atomic — its cells are the sanctioned counters.
package metrics

import "sync/atomic"

type Counter struct{ v atomic.Int64 }

func (c *Counter) Inc() { c.v.Add(1) }
