// Fixture: the allowlist is per-file — engine/cache.go is not on it, so
// the import is flagged even inside the engine package.
package engine

import "sync/atomic" // want "engine/cache.go imports sync/atomic outside internal/metrics"

var hits atomic.Int64
