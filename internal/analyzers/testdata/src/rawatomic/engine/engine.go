// Fixture: engine/engine.go is on the hot-path allowlist, so its
// sync/atomic import passes without a suppression.
package engine

import "sync/atomic"

var pending atomic.Int64

func claim() int64 { return pending.Add(-1) }
