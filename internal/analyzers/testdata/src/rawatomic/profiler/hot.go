// Fixture: a reasoned suppression on the import line is honored.
package profiler

import (
	//stetho:ignore rawatomic reviewed hot path; a registry cell adds a pointer indirection per event
	"sync/atomic"
)

var ticks atomic.Int64
