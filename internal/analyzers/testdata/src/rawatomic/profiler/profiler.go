// Fixture: any other package importing sync/atomic is flagged; the
// suppressed file shows the escape hatch.
package profiler

import "sync/atomic" // want "profiler/profiler.go imports sync/atomic outside internal/metrics"

var events atomic.Int64
