// Fixture for the ctxselect analyzer: blocking channel operations in
// worker loops of context-taking functions must select on cancellation.
package engine

import "context"

func nakedSend(ctx context.Context, jobs <-chan int, out chan<- int) {
	for j := range jobs {
		out <- j // want "blocking channel send in a worker loop"
	}
}

func nakedRecv(ctx context.Context, in <-chan int) {
	for {
		v := <-in // want "blocking channel receive in a worker loop"
		_ = v
	}
}

func selectWithDone(ctx context.Context, jobs <-chan int, out chan<- int) {
	for j := range jobs {
		select {
		case out <- j:
		case <-ctx.Done():
			return
		}
	}
}

func selectWithDefault(ctx context.Context, kick chan struct{}) {
	for i := 0; i < 3; i++ {
		select {
		case kick <- struct{}{}:
		default:
		}
	}
}

func selectWithoutCancel(ctx context.Context, a, b chan int) {
	for {
		select { // want "select in a worker loop has no ctx.Done"
		case v := <-a:
			_ = v
		case v := <-b:
			_ = v
		}
	}
}

func cancelNamedChannel(ctx context.Context, done chan struct{}, out chan<- int) {
	for i := 0; ; i++ {
		select {
		case out <- i:
		case <-done:
			return
		}
	}
}

func noContextInScope(jobs <-chan int, out chan<- int) {
	for j := range jobs {
		out <- j
	}
}

func outsideAnyLoop(ctx context.Context, out chan<- int) {
	out <- 1
}

func workerClosure(ctx context.Context, out chan<- int) {
	go func() {
		for i := 0; ; i++ {
			out <- i // want "blocking channel send in a worker loop"
		}
	}()
}

func suppressedAbove(ctx context.Context, out chan<- int) {
	for i := 0; i < 2; i++ {
		//stetho:ignore ctxselect the channel has capacity 2 and is drained before this runs; the send cannot block
		out <- i
	}
}

func suppressedSameLine(ctx context.Context, out chan<- int) {
	for i := 0; i < 2; i++ {
		out <- i //stetho:ignore ctxselect capacity equals the loop bound; the send cannot block
	}
}
