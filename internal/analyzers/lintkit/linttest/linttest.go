// Package linttest runs lintkit analyzers over testdata fixtures, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// sources annotate the lines an analyzer must flag with
//
//	code() // want "regexp matching the diagnostic"
//
// and Run fails the test on any unmatched expectation or unexpected
// diagnostic. Suppressions (//stetho:ignore) are applied exactly as the
// stethovet driver applies them, so fixtures also prove the suppression
// mechanism is honored.
package linttest

import (
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"stethoscope/internal/analyzers/lintkit"
)

// expectation is one `// want "re"` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)

// Run loads the fixture tree rooted at dir (import paths rooted at the
// directory's base name), runs the analyzers, and matches findings
// against the fixtures' want annotations.
func Run(t *testing.T, dir string, analyzers ...*lintkit.Analyzer) {
	t.Helper()
	fset, pkgs, err := lintkit.LoadTree(dir, filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s holds no packages", dir)
	}
	wants := collectWants(t, fset, pkgs)
	findings, err := lintkit.RunAnalyzers(fset, pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	for _, f := range findings {
		if !match(wants, f) {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", f.Pos, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.text)
		}
	}
}

// match marks and reports the first unmet expectation covering f.
func match(wants []*expectation, f lintkit.Finding) bool {
	for _, w := range wants {
		if w.met || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.met = true
			return true
		}
	}
	return false
}

// collectWants scans every fixture file for want annotations. The scan
// re-tokenizes the raw source rather than walking ast comment groups so
// a want on any line — including inside general declarations — is seen.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*lintkit.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			wants = append(wants, fileWants(t, name)...)
		}
	}
	return wants
}

func fileWants(t *testing.T, filename string) []*expectation {
	t.Helper()
	src, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	fset := token.NewFileSet()
	file := fset.AddFile(filename, -1, len(src))
	var sc scanner.Scanner
	sc.Init(file, src, nil, scanner.ScanComments)
	var wants []*expectation
	for {
		pos, tok, lit := sc.Scan()
		if tok == token.EOF {
			break
		}
		if tok != token.COMMENT {
			continue
		}
		m := wantRE.FindStringSubmatch(lit)
		if m == nil {
			continue
		}
		pattern, err := strconv.Unquote(m[1])
		if err != nil {
			t.Fatalf("%s: bad want annotation %s: %v", fset.Position(pos), m[1], err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", fset.Position(pos), pattern, err)
		}
		wants = append(wants, &expectation{
			file: filename,
			line: fset.Position(pos).Line,
			re:   re,
			text: m[1],
		})
	}
	return wants
}
