package lintkit

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses the packages of the module rooted at root that match the
// go-style patterns ("./..." for the whole module, "./internal/engine"
// for one package, "./internal/..." for a subtree). Only non-test
// sources are loaded — the invariants stethovet enforces are production
// contracts, and test files register fixture kernels that would skew
// the cross-package sets. Comments are kept (the suppression syntax
// lives in them).
func Load(root string, patterns ...string) (*token.FileSet, []*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || pat == ".":
			if err := walkGoDirs(root, dirs); err != nil {
				return nil, nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			if err := walkGoDirs(filepath.Join(root, strings.TrimSuffix(pat, "/...")), dirs); err != nil {
				return nil, nil, err
			}
		default:
			dirs[filepath.Join(root, pat)] = true
		}
	}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := parseDir(fset, dir, importPath(modPath, root, dir))
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return fset, pkgs, nil
}

// LoadTree loads every package under root with import paths rooted at
// base — the fixture loader linttest uses (base names the fixture, so
// package-matching analyzers see predictable path segments).
func LoadTree(root, base string) (*token.FileSet, []*Package, error) {
	dirs := map[string]bool{}
	if err := walkGoDirs(root, dirs); err != nil {
		return nil, nil, err
	}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := parseDir(fset, dir, importPath(base, root, dir))
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return fset, pkgs, nil
}

// modulePath reads the module path out of root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lintkit: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lintkit: no module line in %s", filepath.Join(root, "go.mod"))
}

// importPath maps a directory to its import path under base.
func importPath(base, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return base
	}
	return base + "/" + filepath.ToSlash(rel)
}

// walkGoDirs collects every directory under root that holds .go files,
// skipping testdata, vendor, and hidden directories.
func walkGoDirs(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

// parseDir parses the non-test .go files of dir into one Package (nil
// when the directory holds only test files).
func parseDir(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lintkit: %w", err)
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %w", err)
		}
		pkg.Name = f.Name.Name
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}
