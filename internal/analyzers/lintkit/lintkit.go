// Package lintkit is the minimal analysis framework under stethovet,
// the project's invariant linter. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic, a driver
// that runs analyzers over loaded packages — built on the standard
// library's go/ast alone so the tree lints offline, with no module
// downloads. Analyzers are purely syntactic: each one encodes one
// engine invariant precise enough to check from the AST (see package
// analyzers for the suite).
//
// The one suppression mechanism is the comment
//
//	//stetho:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: an ignore without one is itself reported. This keeps
// every suppression in the tree self-documenting.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check. Exactly one of Run or RunModule is set:
// Run inspects a single package at a time; RunModule runs once over
// every loaded package (cross-package invariants like kernel coverage).
type Analyzer struct {
	Name string
	Doc  string

	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Package is one parsed (not type-checked) package: its import path,
// directory, and syntax trees with comments.
type Package struct {
	Path  string // import path, e.g. "stethoscope/internal/engine"
	Dir   string
	Name  string // package name from the source
	Files []*ast.File
}

// Seg returns the final import-path segment — the analyzers' unit of
// package matching ("engine", "batstore", ...).
func (p *Package) Seg() string {
	if i := strings.LastIndexByte(p.Path, '/'); i >= 0 {
		return p.Path[i+1:]
	}
	return p.Path
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ModulePass carries one module-scope analyzer run over every package.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position, owning analyzer, message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// IgnorePrefix introduces a suppression comment.
const IgnorePrefix = "//stetho:ignore"

// ignore is one parsed suppression comment.
type ignore struct {
	analyzer string
	reason   string
	line     int
}

// parseIgnores collects the //stetho:ignore comments of a file, keyed
// by line. Malformed ignores (no analyzer, or no reason) are returned
// as findings so they fail the lint run instead of silently ignoring
// nothing.
func parseIgnores(fset *token.FileSet, file *ast.File) ([]ignore, []Finding) {
	var igs []ignore
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			pos := fset.Position(c.Pos())
			if name == "" || reason == "" {
				bad = append(bad, Finding{
					Analyzer: "stetho-ignore",
					Pos:      pos,
					Message:  "stetho:ignore needs an analyzer name and a reason: //stetho:ignore <analyzer> <reason>",
				})
				continue
			}
			igs = append(igs, ignore{analyzer: name, reason: reason, line: pos.Line})
		}
	}
	return igs, bad
}

// RunAnalyzers runs every analyzer over the loaded packages, applies
// the //stetho:ignore suppressions, and returns the surviving findings
// sorted by position. An analyzer returning an error aborts the run.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	// Suppressions are collected once, over every file of every package.
	type fileKey struct {
		file string
		line int
	}
	suppressed := map[fileKey][]string{} // file:line -> analyzer names
	var findings []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			igs, bad := parseIgnores(fset, f)
			findings = append(findings, bad...)
			for _, ig := range igs {
				name := fset.Position(f.Pos()).Filename
				// An ignore suppresses its own line and the line below
				// (standalone comment above the flagged statement).
				for _, line := range []int{ig.line, ig.line + 1} {
					k := fileKey{name, line}
					suppressed[k] = append(suppressed[k], ig.analyzer)
				}
			}
		}
	}
	keep := func(name string, pos token.Position) bool {
		for _, a := range suppressed[fileKey{pos.Filename, pos.Line}] {
			if a == name {
				return false
			}
		}
		return true
	}

	for _, a := range analyzers {
		report := func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if keep(a.Name, pos) {
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
		switch {
		case a.RunModule != nil:
			if err := a.RunModule(&ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs, Report: report}); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range pkgs {
				if err := a.Run(&Pass{Analyzer: a, Fset: fset, Pkg: pkg, Report: report}); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		default:
			return nil, fmt.Errorf("%s: analyzer has neither Run nor RunModule", a.Name)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, nil
}
