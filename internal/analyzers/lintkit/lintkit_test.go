package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// sendFlagger reports every channel send — a minimal analyzer to drive
// the suppression machinery.
var sendFlagger = &Analyzer{
	Name: "sendflag",
	Doc:  "flags every channel send",
	Run: func(p *Pass) error {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.SendStmt); ok {
					p.Reportf(s.Pos(), "send")
				}
				return true
			})
		}
		return nil
	},
}

func parsePkg(t *testing.T, src string) (*token.FileSet, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*Package{{Path: "fix", Name: f.Name.Name, Files: []*ast.File{f}}}
}

func run(t *testing.T, src string) []Finding {
	t.Helper()
	fset, pkgs := parsePkg(t, src)
	findings, err := RunAnalyzers(fset, pkgs, []*Analyzer{sendFlagger})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return findings
}

func TestFindingReported(t *testing.T) {
	findings := run(t, `package p
func f(ch chan int) {
	ch <- 1
}
`)
	if len(findings) != 1 || findings[0].Analyzer != "sendflag" {
		t.Fatalf("want one sendflag finding, got %v", findings)
	}
	if findings[0].Pos.Line != 3 {
		t.Fatalf("finding on line %d, want 3", findings[0].Pos.Line)
	}
}

func TestSuppressionOwnLineAndLineAbove(t *testing.T) {
	findings := run(t, `package p
func f(ch chan int) {
	ch <- 1 //stetho:ignore sendflag reason on the same line
	//stetho:ignore sendflag reason on the line above
	ch <- 2
	ch <- 3
}
`)
	if len(findings) != 1 {
		t.Fatalf("want only the unsuppressed send, got %v", findings)
	}
	if findings[0].Pos.Line != 6 {
		t.Fatalf("surviving finding on line %d, want 6", findings[0].Pos.Line)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	findings := run(t, `package p
func f(ch chan int) {
	//stetho:ignore otheranalyzer reason for a different check
	ch <- 1
}
`)
	if len(findings) != 1 {
		t.Fatalf("an ignore for another analyzer must not suppress, got %v", findings)
	}
}

func TestMalformedIgnoreIsReported(t *testing.T) {
	findings := run(t, `package p
//stetho:ignore sendflag
func f() {}
`)
	if len(findings) != 1 || findings[0].Analyzer != "stetho-ignore" {
		t.Fatalf("want one stetho-ignore finding for the missing reason, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "needs an analyzer name and a reason") {
		t.Fatalf("unexpected message %q", findings[0].Message)
	}
}

func TestSeg(t *testing.T) {
	for path, want := range map[string]string{
		"stethoscope/internal/engine": "engine",
		"stethoscope":                 "stethoscope",
	} {
		if got := (&Package{Path: path}).Seg(); got != want {
			t.Errorf("Seg(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestLoadPatterns loads this module through the three pattern shapes
// the stethovet CLI accepts.
func TestLoadPatterns(t *testing.T) {
	_, one, err := Load("../../..", "./internal/analyzers/lintkit")
	if err != nil {
		t.Fatalf("single-dir load: %v", err)
	}
	if len(one) != 1 || one[0].Seg() != "lintkit" {
		t.Fatalf("single-dir load returned %d packages", len(one))
	}
	_, tree, err := Load("../../..", "./internal/analyzers/...")
	if err != nil {
		t.Fatalf("subtree load: %v", err)
	}
	if len(tree) < 3 { // analyzers, lintkit, linttest at least
		t.Fatalf("subtree load returned %d packages, want >= 3", len(tree))
	}
	for _, p := range tree {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("testdata package leaked into the load: %s", p.Path)
		}
	}
}
