package analyzers

import (
	"go/ast"
	"strings"

	"stethoscope/internal/analyzers/lintkit"
)

// ErrFile enforces the durable stores' error discipline — "never silent
// wrong answers: name the exact segment file". In internal/fsio,
// internal/batstore, and internal/tracestore, a function that has a
// path at hand (a path/dir parameter, a filepath.Join/segPath local, an
// *os.File handle) must interpolate it into every error it constructs.
// Wrapping an error that already carries the path — one produced by a
// call that was given the path or a file handle, like os.Open(path) or
// f.Stat() — is fine; building a fresh message ("checksum mismatch",
// "catalog does not resolve") without naming the file is not: that is
// the message an operator sees when a store is corrupt, and it must say
// which file to look at.
var ErrFile = &lintkit.Analyzer{
	Name: "errfile",
	Doc:  "store errors must name the exact file when a path is in scope",
	Run:  runErrFile,
}

// errfilePackages are the durable-store packages under the discipline.
var errfilePackages = []string{"fsio", "batstore", "tracestore"}

func runErrFile(pass *lintkit.Pass) error {
	if !pkgMatches(pass.Pkg, errfilePackages...) {
		return nil
	}
	for _, fd := range funcDecls(pass.Pkg) {
		checkErrFileFunc(pass, fd)
	}
	return nil
}

// pathyName reports whether an identifier reads as a filesystem path.
func pathyName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "path") || strings.Contains(l, "dir") ||
		strings.Contains(l, "file") || strings.Contains(l, "fname") || l == "tmp"
}

// errFileScope is the per-function knowledge: identifiers that hold
// paths or open file handles, and error variables known to carry a path
// because their producing call was given one.
type errFileScope struct {
	fileIdents map[string]bool // *os.File params and os.Open/OpenFile/Create locals
	pathErrs   map[string]bool // err idents whose source call saw a path
}

func checkErrFileFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	sc := &errFileScope{fileIdents: map[string]bool{}, pathErrs: map[string]bool{}}

	// Parameters: *os.File handles carry their path (f.Name()).
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if exprString(f.Type) == "*os.File" {
				for _, n := range f.Names {
					sc.fileIdents[n.Name] = true
				}
			}
		}
	}

	// First sweep: locals holding file handles, error sources, and
	// whether any path-like expression appears in the function at all
	// (the analyzer only speaks up when the function could have named a
	// file).
	inScope := len(sc.fileIdents) > 0
	ast.Inspect(fd, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.Ident:
			if pathyName(t.Name) {
				inScope = true
			}
		case *ast.SelectorExpr:
			if pathyName(t.Sel.Name) {
				inScope = true
			}
		case *ast.AssignStmt:
			if len(t.Rhs) != 1 {
				return true
			}
			call, ok := t.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name := calleeName(call)
			opensFile := (recv == "os" && (name == "Open" || name == "OpenFile" || name == "Create"))
			bearing := sc.pathBearingCall(call)
			for _, lhs := range t.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if opensFile && !strings.Contains(strings.ToLower(id.Name), "err") {
					sc.fileIdents[id.Name] = true
				}
				if strings.Contains(strings.ToLower(id.Name), "err") && bearing {
					sc.pathErrs[id.Name] = true
				}
			}
		}
		return true
	})
	if !inScope {
		return
	}

	// Second sweep: vet every error construction.
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := calleeName(call)
		isErrorf := recv == "fmt" && name == "Errorf"
		isNew := recv == "errors" && name == "New"
		if !isErrorf && !isNew {
			return true
		}
		var args []ast.Expr
		if isErrorf {
			if len(call.Args) == 0 {
				return true
			}
			if _, ok := strLit(call.Args[0]); !ok {
				return true // dynamic format (a fail helper); not checkable
			}
			args = call.Args[1:]
		}
		for _, a := range args {
			if sc.pathBearing(a) {
				return true
			}
		}
		pass.Reportf(call.Pos(), "error does not name the file although a path is in scope; interpolate the exact path (or wrap an error produced with it)")
		return true
	})
}

// pathBearing reports whether the expression mentions a path: a pathy
// identifier or selector, a file handle, a call to a path-producing
// function (filepath.Join, segPath, f.Name), or an error variable whose
// source already saw the path.
func (sc *errFileScope) pathBearing(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.Ident:
			if pathyName(t.Name) || sc.fileIdents[t.Name] || sc.pathErrs[t.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if pathyName(t.Sel.Name) {
				found = true
			}
		case *ast.CallExpr:
			if sc.pathBearingCall(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// pathBearingCall reports whether a call was handed a path: its callee
// is path-named (filepath.Join, s.segPath), it is a method on a file
// handle (f.Stat, f.Name), or any argument is path-bearing.
func (sc *errFileScope) pathBearingCall(call *ast.CallExpr) bool {
	recv, name := calleeName(call)
	// The fsio framing layer is deliberately path-agnostic: its
	// checksum/torn-record errors never name a file, whatever it was
	// handed. Callers own the naming — which is the point of this check.
	if (recv == "fsio" || recv == "") &&
		(strings.HasPrefix(name, "ReadRecord") || strings.HasPrefix(name, "WriteRecord")) {
		return false
	}
	if pathyName(name) {
		return true
	}
	if recv != "" {
		// Method on (or chained through) a file handle: f.Stat(), f.Name().
		root := recv
		if i := strings.IndexByte(recv, '.'); i >= 0 {
			root = recv[:i]
		}
		if sc.fileIdents[root] || pathyName(recv) {
			return true
		}
	}
	for _, a := range call.Args {
		if sc.pathBearing(a) {
			return true
		}
	}
	return false
}
