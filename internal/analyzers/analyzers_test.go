package analyzers

import (
	"strings"
	"testing"

	"stethoscope/internal/analyzers/lintkit"
	"stethoscope/internal/analyzers/lintkit/linttest"
)

func TestCtxSelect(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxselect", CtxSelect)
}

func TestLockSend(t *testing.T) {
	linttest.Run(t, "testdata/src/locksend", LockSend)
}

func TestRawAtomic(t *testing.T) {
	linttest.Run(t, "testdata/src/rawatomic", RawAtomic)
}

func TestErrFile(t *testing.T) {
	linttest.Run(t, "testdata/src/errfile", ErrFile)
}

func TestKernelCoverage(t *testing.T) {
	linttest.Run(t, "testdata/src/kernelcoverage", KernelCoverage)
}

// TestKernelCoverageRealTree runs the opcode-contract check against the
// actual compiler/optimizer/engine packages. With suppressions applied
// the tree must be clean; without them the analyzer must resolve every
// emit site and report exactly the known intentionally-dead kernels —
// proving it understands the real registration and emission idioms
// rather than silently resolving nothing.
func TestKernelCoverageRealTree(t *testing.T) {
	fset, pkgs, err := lintkit.Load("../..", "./internal/engine", "./internal/compiler", "./internal/optimizer")
	if err != nil {
		t.Fatalf("loading real packages: %v", err)
	}

	findings, err := lintkit.RunAnalyzers(fset, pkgs, []*lintkit.Analyzer{KernelCoverage})
	if err != nil {
		t.Fatalf("running kernelcoverage: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding on the real tree: %s", f)
	}

	// Raw run, bypassing suppressions: the two MAL-surface kernels are
	// the complete dead set, and nothing is unresolvable or missing.
	var raw []lintkit.Diagnostic
	pass := &lintkit.ModulePass{
		Analyzer: KernelCoverage,
		Fset:     fset,
		Pkgs:     pkgs,
		Report:   func(d lintkit.Diagnostic) { raw = append(raw, d) },
	}
	if err := runKernelCoverage(pass); err != nil {
		t.Fatalf("raw kernelcoverage run: %v", err)
	}
	wantDead := map[string]bool{"language.pass": false, "bat.mirror": false}
	for _, d := range raw {
		matched := false
		for name := range wantDead {
			if strings.Contains(d.Message, "kernel "+name+" is registered") {
				wantDead[name] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected raw diagnostic at %s: %s", fset.Position(d.Pos), d.Message)
		}
	}
	for name, seen := range wantDead {
		if !seen {
			t.Errorf("expected the raw run to report dead kernel %s", name)
		}
	}
}

// TestRealTreeClean runs the whole suite over the repository exactly as
// `make lint` does: the tree must be clean under its checked-in
// suppressions.
func TestRealTreeClean(t *testing.T) {
	fset, pkgs, err := lintkit.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := lintkit.RunAnalyzers(fset, pkgs, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("tree is not stethovet-clean: %s", f)
	}
}
