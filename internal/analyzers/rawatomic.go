package analyzers

import (
	"go/ast"
	"path/filepath"

	"stethoscope/internal/analyzers/lintkit"
)

// atomicAllowlist names the files (as "<package segment>/<file>") that
// may use sync/atomic directly, each with the reason it is exempt. This
// is the complete sanctioned set: the engine's per-run hot paths, where
// an execution-local atomic is the data structure itself rather than a
// counter (the metrics registry is the home for counters — its cells
// are the only sanctioned process-wide atomics). Adding a file here is
// a review decision, the same as adding a suppression comment.
var atomicAllowlist = map[string]string{
	"engine/engine.go":     "dataflow scheduler: per-run pending/completed cells are the scheduling state, not metrics",
	"engine/morsel.go":     "morsel cursor: the shared scan cursor is claimed with one atomic add per morsel",
	"engine/progress.go":   "live progress: per-run counters read lock-free by DB.Progress while workers run",
	"engine/sharedscan.go": "shared-scan registry: the published cursor position is a lock-free attach hint, not a metric",
}

// RawAtomic flags direct sync/atomic use outside internal/metrics and
// the explicit hot-path allowlist above. Everything else that wants a
// process-wide counter, gauge, or rate must go through a metrics
// registry cell, so the METRICS command, the Prometheus endpoint, and
// DB.Stats stay the one source of truth.
var RawAtomic = &lintkit.Analyzer{
	Name: "rawatomic",
	Doc:  "sync/atomic is reserved for internal/metrics cells and allowlisted engine hot paths",
	Run:  runRawAtomic,
}

func runRawAtomic(pass *lintkit.Pass) error {
	if pkgMatches(pass.Pkg, "metrics") {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		var imported bool
		var importPos ast.Node
		for _, imp := range file.Imports {
			if path, ok := strLit(imp.Path); ok && path == "sync/atomic" {
				imported, importPos = true, imp
				break
			}
		}
		if !imported {
			continue
		}
		key := pass.Pkg.Seg() + "/" + filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if _, ok := atomicAllowlist[key]; ok {
			continue
		}
		pass.Reportf(importPos.Pos(),
			"%s imports sync/atomic outside internal/metrics and the hot-path allowlist; use a metrics registry cell (Counter/Gauge/Rate) or add the file to atomicAllowlist with a reason", key)
	}
	return nil
}
