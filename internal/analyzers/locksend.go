package analyzers

import (
	"go/ast"
	"sort"
	"strings"

	"stethoscope/internal/analyzers/lintkit"
)

// LockSend enforces the streaming contract the morsel scheduler
// introduced: never perform a blocking channel send, and never write to
// a network connection, while holding a sync.Mutex/RWMutex. A send that
// blocks under a lock deadlocks the moment the consumer needs that lock
// (the scheduler-mutex incident class); a socket write under a lock
// turns one slow client into a server-wide stall. Non-blocking sends
// (select with default) pass — that is the sanctioned kick pattern.
//
// The check is intra-procedural and name-based: a held region opens at
// x.Lock()/x.RLock() and closes at the matching Unlock (a deferred
// Unlock holds to function end); network writes are recognized as
// Write/WriteTo/WriteString calls on a receiver whose name contains
// "conn".
var LockSend = &lintkit.Analyzer{
	Name: "locksend",
	Doc:  "no blocking channel send or net.Conn write while a mutex is held",
	Run:  runLockSend,
}

func runLockSend(pass *lintkit.Pass) error {
	for _, fd := range funcDecls(pass.Pkg) {
		lw := &lockWalker{pass: pass}
		lw.block(fd.Body.List, map[string]bool{})
	}
	return nil
}

type lockWalker struct {
	pass *lintkit.Pass
}

// block walks one statement list in order, threading the held-lock set
// through it. Nested blocks get a copy: a lock released inside a branch
// is conservatively still considered held after it.
func (lw *lockWalker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		lw.stmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func heldNames(held map[string]bool) string {
	var names []string
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// lockCall classifies x.Lock()/x.Unlock() style calls, returning the
// receiver and +1 (acquire) / -1 (release) / 0 (neither).
func lockCall(call *ast.CallExpr) (recv string, dir int) {
	recv, name := calleeName(call)
	if recv == "" || len(call.Args) != 0 {
		return "", 0
	}
	switch name {
	case "Lock", "RLock":
		return recv, 1
	case "Unlock", "RUnlock":
		return recv, -1
	}
	return "", 0
}

func (lw *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch t := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := t.X.(*ast.CallExpr); ok {
			if recv, dir := lockCall(call); dir != 0 {
				if dir > 0 {
					held[recv] = true
				} else {
					delete(held, recv)
				}
				return
			}
		}
		lw.expr(t.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held for the rest of the
		// function body — exactly the region the check must cover.
		if _, dir := lockCall(t.Call); dir != 0 {
			return
		}
		lw.expr(t.Call, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			lw.pass.Reportf(t.Pos(), "channel send while %s is held; release the lock first or use a select with default", heldNames(held))
		}
		lw.expr(t.Value, held)
	case *ast.SelectStmt:
		lw.selectStmt(t, held)
	case *ast.BlockStmt:
		lw.block(t.List, copyHeld(held))
	case *ast.IfStmt:
		lw.stmt(t.Init, held)
		lw.expr(t.Cond, held)
		lw.block(t.Body.List, copyHeld(held))
		lw.stmt(t.Else, held)
	case *ast.ForStmt:
		lw.stmt(t.Init, held)
		lw.expr(t.Cond, held)
		inner := copyHeld(held)
		lw.block(t.Body.List, inner)
		lw.stmt(t.Post, inner)
	case *ast.RangeStmt:
		lw.expr(t.X, held)
		lw.block(t.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		lw.stmt(t.Init, held)
		lw.expr(t.Tag, held)
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		lw.stmt(t.Init, held)
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			lw.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			lw.expr(e, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine runs with its own stack; locks held here
		// are not held there.
		lw.expr(t.Call.Fun, map[string]bool{})
	case *ast.LabeledStmt:
		lw.stmt(t.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						lw.expr(e, held)
					}
				}
			}
		}
	}
}

// selectStmt: a default case makes every send in the select
// non-blocking; without one, sends under a held lock are flagged.
func (lw *lockWalker) selectStmt(s *ast.SelectStmt, held map[string]bool) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault && len(held) > 0 {
			lw.pass.Reportf(send.Pos(), "blocking select send while %s is held; add a default case or release the lock", heldNames(held))
		}
		lw.block(cc.Body, copyHeld(held))
	}
}

// expr flags network writes under a held lock and walks closures with a
// fresh lock set.
func (lw *lockWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			inner := &lockWalker{pass: lw.pass}
			inner.block(t.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			recv, name := calleeName(t)
			if recv == "" {
				return true
			}
			switch name {
			case "Write", "WriteTo", "WriteString":
				last := recv
				if i := strings.LastIndexByte(recv, '.'); i >= 0 {
					last = recv[i+1:]
				}
				if strings.Contains(strings.ToLower(last), "conn") {
					lw.pass.Reportf(t.Pos(), "network write on %s while %s is held; move the write outside the critical section", recv, heldNames(held))
				}
			}
		}
		return true
	})
}
