// Package analyzers is stethovet's check suite: five lintkit analyzers
// that enforce the engine's own cross-cutting invariants at lint time —
// contracts the packages document in prose and reviews used to re-check
// by hand:
//
//   - kernelcoverage: every mal opcode internal/compiler and
//     internal/optimizer emit has a kernel registered by the engine's
//     registerKernels, and every registered kernel is reachable — the
//     runtime "unknown kernel" failure class becomes a lint error.
//   - ctxselect: blocking channel operations inside loops of the
//     engine/server packages select on ctx.Done(), so worker loops
//     cannot outlive a canceled run.
//   - errfile: error construction in the durable stores (fsio,
//     batstore, tracestore) names the exact file when a path is in
//     scope — the "never silent wrong answers" discipline.
//   - rawatomic: sync/atomic stays inside internal/metrics plus an
//     explicit hot-path allowlist; new counters must be registry cells.
//   - locksend: no blocking channel send and no network write while a
//     sync.Mutex/RWMutex is held — the scheduler-mutex streaming
//     contract.
//
// Each check is syntactic (lintkit parses, it does not type-check), so
// the rules are written against the codebase's actual idioms and stay
// cheap enough for every CI run. The single suppression mechanism is
// lintkit's //stetho:ignore <analyzer> <reason>.
package analyzers

import (
	"go/ast"
	"go/token"
	"strconv"

	"stethoscope/internal/analyzers/lintkit"
)

// All returns the full stethovet suite.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		KernelCoverage,
		CtxSelect,
		ErrFile,
		RawAtomic,
		LockSend,
	}
}

// exprString renders an expression in canonical source form — the
// analyzers' identity for receivers ("u.mu") and switch tags ("t.Op").
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	case *ast.ParenExpr:
		return exprString(t.X)
	case *ast.StarExpr:
		return "*" + exprString(t.X)
	case *ast.IndexExpr:
		return exprString(t.X) + "[" + exprString(t.Index) + "]"
	case *ast.CallExpr:
		return exprString(t.Fun) + "()"
	case *ast.BasicLit:
		return t.Value
	}
	return ""
}

// strLit unwraps a string literal.
func strLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// calleeName splits a call's function into (receiver, method) for
// method calls ("e.Register" -> "e", "Register") or ("", name) for
// plain calls.
func calleeName(call *ast.CallExpr) (recv, name string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		return exprString(fn.X), fn.Sel.Name
	}
	return "", ""
}

// funcDecls yields every function declaration of a package with a body.
func funcDecls(pkg *lintkit.Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// pkgMatches reports whether the package's final import-path segment is
// in the set.
func pkgMatches(pkg *lintkit.Package, segs ...string) bool {
	s := pkg.Seg()
	for _, want := range segs {
		if s == want {
			return true
		}
	}
	return false
}
