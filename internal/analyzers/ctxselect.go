package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"stethoscope/internal/analyzers/lintkit"
)

// CtxSelect enforces the worker-loop cancellation contract in the
// execution and serving packages (internal/engine, internal/server, and
// the facade): inside a loop of a function that takes a
// context.Context, a blocking channel operation must sit in a select
// that also watches ctx.Done() (or a local cancellation channel — done,
// stop, closed, quit), so a canceled run can never leave a worker
// parked on a channel. Non-blocking selects (with default) pass.
var CtxSelect = &lintkit.Analyzer{
	Name: "ctxselect",
	Doc:  "blocking channel ops in engine/server worker loops must select on ctx.Done()",
	Run:  runCtxSelect,
}

// ctxselectPackages are the final import-path segments the contract
// covers: the scheduler/morsel loops, the TCP server's session loops,
// and the facade's streaming producers.
var ctxselectPackages = []string{"engine", "server", "stethoscope"}

// cancelNames are channel names accepted as cancellation signals in a
// select, alongside ctx.Done() calls.
var cancelNames = map[string]bool{"done": true, "stop": true, "closed": true, "quit": true}

func runCtxSelect(pass *lintkit.Pass) error {
	if !pkgMatches(pass.Pkg, ctxselectPackages...) {
		return nil
	}
	for _, fd := range funcDecls(pass.Pkg) {
		w := &ctxWalker{pass: pass, ctxInScope: hasCtxParam(fd.Type)}
		w.stmt(fd.Body, 0)
	}
	return nil
}

// hasCtxParam reports whether the signature takes a context.Context.
func hasCtxParam(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if exprString(f.Type) == "context.Context" {
			return true
		}
	}
	return false
}

// ctxWalker tracks loop depth and context visibility down the lexical
// tree. FuncLits inherit the enclosing scope (the engine's workers are
// closures over the run context) but reset loop depth — their bodies
// run once per call.
type ctxWalker struct {
	pass       *lintkit.Pass
	ctxInScope bool
}

func (w *ctxWalker) stmt(s ast.Stmt, loop int) {
	switch t := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range t.List {
			w.stmt(st, loop)
		}
	case *ast.ForStmt:
		w.stmt(t.Init, loop)
		w.expr(t.Cond, loop+1)
		w.stmt(t.Post, loop+1)
		w.stmt(t.Body, loop+1)
	case *ast.RangeStmt:
		w.expr(t.X, loop)
		w.stmt(t.Body, loop+1)
	case *ast.SelectStmt:
		w.selectStmt(t, loop)
	case *ast.IfStmt:
		w.stmt(t.Init, loop)
		w.expr(t.Cond, loop)
		w.stmt(t.Body, loop)
		w.stmt(t.Else, loop)
	case *ast.SwitchStmt:
		w.stmt(t.Init, loop)
		w.expr(t.Tag, loop)
		w.stmt(t.Body, loop)
	case *ast.TypeSwitchStmt:
		w.stmt(t.Init, loop)
		w.stmt(t.Assign, loop)
		w.stmt(t.Body, loop)
	case *ast.CaseClause:
		for _, e := range t.List {
			w.expr(e, loop)
		}
		for _, st := range t.Body {
			w.stmt(st, loop)
		}
	case *ast.CommClause:
		// Reached only via a select the walker already vetted (or
		// rejected); the comm op itself is not re-flagged.
		for _, st := range t.Body {
			w.stmt(st, loop)
		}
	case *ast.SendStmt:
		if loop > 0 && w.ctxInScope {
			w.pass.Reportf(t.Pos(), "blocking channel send in a worker loop outside a select with ctx.Done(); wrap it in a select that also watches cancellation")
		}
		w.expr(t.Value, loop)
	case *ast.ExprStmt:
		w.expr(t.X, loop)
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			w.expr(e, loop)
		}
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, loop)
					}
				}
			}
		}
	case *ast.GoStmt:
		w.expr(t.Call, loop)
	case *ast.DeferStmt:
		w.expr(t.Call, loop)
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			w.expr(e, loop)
		}
	case *ast.LabeledStmt:
		w.stmt(t.Stmt, loop)
	}
}

// expr flags blocking receives (<-ch) and descends into closures.
func (w *ctxWalker) expr(e ast.Expr, loop int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			inner := &ctxWalker{pass: w.pass, ctxInScope: w.ctxInScope || hasCtxParam(t.Type)}
			inner.stmt(t.Body, 0)
			return false
		case *ast.SelectStmt:
			w.selectStmt(t, loop)
			return false
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && loop > 0 && w.ctxInScope {
				w.pass.Reportf(t.Pos(), "blocking channel receive in a worker loop outside a select with ctx.Done(); wrap it in a select that also watches cancellation")
			}
		}
		return true
	})
}

// selectStmt vets one select: fine when non-blocking (default case) or
// when some case receives a cancellation signal.
func (w *ctxWalker) selectStmt(s *ast.SelectStmt, loop int) {
	ok := loop == 0 || !w.ctxInScope
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil { // default:
			ok = true
			continue
		}
		if recvsCancellation(cc.Comm) {
			ok = true
		}
	}
	if !ok {
		w.pass.Reportf(s.Pos(), "select in a worker loop has no ctx.Done() or cancellation-channel case and no default")
	}
	for _, c := range s.Body.List {
		w.stmt(c, loop)
	}
}

// recvsCancellation reports whether the comm statement receives from
// ctx.Done() or a channel named like a cancellation signal.
func recvsCancellation(s ast.Stmt) bool {
	var recv ast.Expr
	switch t := s.(type) {
	case *ast.ExprStmt:
		recv = t.X
	case *ast.AssignStmt:
		if len(t.Rhs) == 1 {
			recv = t.Rhs[0]
		}
	}
	ue, ok := recv.(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return false
	}
	switch x := ue.X.(type) {
	case *ast.CallExpr:
		_, name := calleeName(x)
		return name == "Done"
	case *ast.Ident:
		return cancelNames[strings.ToLower(x.Name)]
	case *ast.SelectorExpr:
		return cancelNames[strings.ToLower(x.Sel.Name)]
	}
	return false
}
