package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"stethoscope/internal/analyzers/lintkit"
)

// KernelCoverage is the cross-package opcode contract: the set of
// module.function opcodes the plan builders (internal/compiler,
// internal/optimizer) can emit must be a subset of the kernels the
// engine installs in registerKernels, and every registered kernel must
// be reachable from some emit site. What used to surface at runtime as
// "unknown kernel" on a rare query shape is a lint error here; a kernel
// nobody can emit is dead weight flagged at its Register call.
//
// Both sets are computed by a small abstract interpreter over the
// packages' actual idioms: string literals, "prefix"+x concatenation,
// indexing into map[...]string literals, range over map-literal keys,
// and `x = tag` assignments inside a `switch tag` case with literal
// labels. An opcode expression the resolver cannot bound is itself a
// finding — emit sites must stay statically analyzable.
var KernelCoverage = &lintkit.Analyzer{
	Name:      "kernelcoverage",
	Doc:       "every emitted mal opcode has a registered kernel; every registered kernel is reachable",
	RunModule: runKernelCoverage,
}

// Package roles, matched on the final import-path segment.
var (
	kernelEmitPackages     = []string{"compiler", "optimizer"}
	kernelRegisterPackages = []string{"engine"}
)

// opcodeUse is one resolved (module, function) use or registration.
type opcodeUse struct {
	mod, fn string
	pos     token.Pos
}

func runKernelCoverage(pass *lintkit.ModulePass) error {
	var registered, emitted []opcodeUse
	var fnAssigns []opcodeUse // X.Function = "lit" rewrites (module unknown)
	sawRegister, sawEmit := false, false

	for _, pkg := range pass.Pkgs {
		switch {
		case pkgMatches(pkg, kernelRegisterPackages...):
			sawRegister = true
			collectOpcodeCalls(pass, pkg, "Register", &registered)
		case pkgMatches(pkg, kernelEmitPackages...):
			sawEmit = true
			collectOpcodeCalls(pass, pkg, "Emit", &emitted)
			collectFunctionRewrites(pkg, &fnAssigns)
		}
	}
	// A partial load (linting one package) cannot check the contract.
	if !sawRegister || !sawEmit {
		return nil
	}

	regSet := map[string]token.Pos{}
	regFns := map[string]bool{}
	for _, r := range registered {
		regSet[r.mod+"."+r.fn] = r.pos
		regFns[r.fn] = true
	}
	used := map[string]bool{}
	for _, e := range emitted {
		name := e.mod + "." + e.fn
		used[name] = true
		if _, ok := regSet[name]; !ok {
			pass.Reportf(e.pos, "mal opcode %s is emitted here but registerKernels installs no such kernel", name)
		}
	}
	for _, a := range fnAssigns {
		// Module-preserving rewrite: accept when any registered kernel
		// has this function name, and mark them all reachable.
		if !regFns[a.fn] {
			pass.Reportf(a.pos, "instruction function is rewritten to %q but no registered kernel has that name", a.fn)
			continue
		}
		for name := range regSet {
			if strings.HasSuffix(name, "."+a.fn) {
				used[name] = true
			}
		}
	}
	var dead []string
	for name := range regSet {
		if !used[name] {
			dead = append(dead, name)
		}
	}
	sort.Strings(dead)
	for _, name := range dead {
		pass.Reportf(regSet[name], "kernel %s is registered but neither compiler nor optimizer can emit it (dead kernel; delete it or suppress with the reason it stays)", name)
	}
	return nil
}

// collectOpcodeCalls gathers (module, function) pairs from method calls
// whose name is methodPrefix ("Register", or the "Emit" family — Emit,
// Emit0, Emit1, EmitN) and whose first two arguments are the opcode.
func collectOpcodeCalls(pass *lintkit.ModulePass, pkg *lintkit.Package, methodPrefix string, out *[]opcodeUse) {
	globals := packageStringMaps(pkg)
	for _, fd := range funcDecls(pkg) {
		res := &strResolver{fn: fd, globals: globals}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name := calleeName(call)
			if recv == "" || !strings.HasPrefix(name, methodPrefix) || len(call.Args) < 2 {
				return true
			}
			if rest := strings.TrimPrefix(name, methodPrefix); rest != "" && !isDigits(rest) {
				return true // EmitBatch etc. — not the opcode family
			}
			mods, ok1 := res.resolve(call.Args[0])
			fns, ok2 := res.resolve(call.Args[1])
			if !ok1 || !ok2 {
				pass.Reportf(call.Pos(), "cannot statically resolve the mal opcode of this %s call; use literals, map[...]string literals, or prefix+rangekey so kernelcoverage can check it", name)
				return true
			}
			for _, m := range mods {
				for _, f := range fns {
					*out = append(*out, opcodeUse{mod: m, fn: f, pos: call.Pos()})
				}
			}
			return true
		})
	}
}

// collectFunctionRewrites gathers `x.Function = "lit"` assignments (the
// optimizer's in-place module-preserving rewrites).
func collectFunctionRewrites(pkg *lintkit.Package, out *[]opcodeUse) {
	for _, fd := range funcDecls(pkg) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			sel, ok := as.Lhs[0].(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Function" {
				return true
			}
			if s, ok := strLit(as.Rhs[0]); ok {
				*out = append(*out, opcodeUse{fn: s, pos: as.Pos()})
			}
			return true
		})
	}
}

func isDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// packageStringMaps indexes package-level `var m = map[...]string{...}`
// declarations by name — the compiler's cmpFunc/arithFunc/aggrFunc
// tables.
func packageStringMaps(pkg *lintkit.Package) map[string]*ast.CompositeLit {
	maps := map[string]*ast.CompositeLit{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok && isMapLit(cl) {
						maps[name.Name] = cl
					}
				}
			}
		}
	}
	return maps
}

func isMapLit(cl *ast.CompositeLit) bool {
	_, ok := cl.Type.(*ast.MapType)
	return ok
}

// strResolver bounds the possible string values of an expression inside
// one function, against the function's assignments and the package's
// string-map tables.
type strResolver struct {
	fn      *ast.FuncDecl
	globals map[string]*ast.CompositeLit
	depth   int
}

const maxResolveDepth = 8

// resolve returns the complete set of values expr can take, or ok=false
// when the expression is not statically bounded.
func (r *strResolver) resolve(expr ast.Expr) ([]string, bool) {
	if r.depth > maxResolveDepth {
		return nil, false
	}
	r.depth++
	defer func() { r.depth-- }()

	switch t := expr.(type) {
	case *ast.BasicLit:
		s, ok := strLit(t)
		if !ok {
			return nil, false
		}
		return []string{s}, true
	case *ast.ParenExpr:
		return r.resolve(t.X)
	case *ast.BinaryExpr:
		if t.Op != token.ADD {
			return nil, false
		}
		ls, ok := r.resolve(t.X)
		if !ok {
			return nil, false
		}
		rs, ok := r.resolve(t.Y)
		if !ok {
			return nil, false
		}
		var out []string
		for _, a := range ls {
			for _, b := range rs {
				out = append(out, a+b)
			}
		}
		return out, true
	case *ast.IndexExpr:
		// m[k] over a map[...]string literal: all values.
		if cl := r.mapLit(t.X); cl != nil {
			return mapLitValues(cl)
		}
		return nil, false
	case *ast.Ident:
		return r.resolveIdent(t)
	}
	return nil, false
}

// bindingReaches reports whether a binding found in the function body
// can flow into a use of the variable at usePos. Range keys and := are
// scoped: a `for k := range m` key only exists inside that statement,
// and a := definition only reaches uses after it. Plain = mutates an
// outer variable and is taken conservatively from anywhere.
func bindingReaches(binding ast.Node, tok token.Token, usePos token.Pos) bool {
	switch tok {
	case token.RANGE:
		return binding.Pos() <= usePos && usePos <= binding.End()
	case token.DEFINE:
		return binding.Pos() <= usePos
	default:
		return true
	}
}

// mapLit resolves an expression to a map composite literal: inline, a
// package-level table, or a local `m := map[...]...{...}`.
func (r *strResolver) mapLit(e ast.Expr) *ast.CompositeLit {
	switch t := e.(type) {
	case *ast.CompositeLit:
		if isMapLit(t) {
			return t
		}
	case *ast.Ident:
		if cl, ok := r.globals[t.Name]; ok {
			return cl
		}
		var found *ast.CompositeLit
		ast.Inspect(r.fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == t.Name {
				if cl, ok := as.Rhs[0].(*ast.CompositeLit); ok && isMapLit(cl) {
					found = cl
				}
			}
			return true
		})
		return found
	}
	return nil
}

func mapLitValues(cl *ast.CompositeLit) ([]string, bool) {
	var out []string
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		s, ok := strLit(kv.Value)
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

func mapLitKeys(cl *ast.CompositeLit) ([]string, bool) {
	var out []string
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		s, ok := strLit(kv.Key)
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

// resolveIdent bounds a variable: the union of every value it can hold
// at the use site — range-over-map keys (scoped to their loop), :=
// definitions reaching the use, plain = assignments anywhere, and
// `x = tag` inside `switch tag { case "a", "b": }`.
func (r *strResolver) resolveIdent(id *ast.Ident) ([]string, bool) {
	var out []string
	bounded := true
	sawBinding := false

	ast.Inspect(r.fn.Body, func(n ast.Node) bool {
		if !bounded {
			return false
		}
		switch t := n.(type) {
		case *ast.RangeStmt:
			key, ok := t.Key.(*ast.Ident)
			if !ok || key.Name != id.Name || !bindingReaches(t, token.RANGE, id.Pos()) {
				return true
			}
			sawBinding = true
			cl := r.mapLit(t.X)
			if cl == nil {
				bounded = false
				return false
			}
			keys, ok := mapLitKeys(cl)
			if !ok {
				bounded = false
				return false
			}
			out = append(out, keys...)
		case *ast.AssignStmt:
			for i, lhs := range t.Lhs {
				l, ok := lhs.(*ast.Ident)
				if !ok || l.Name != id.Name || i >= len(t.Rhs) {
					continue
				}
				if !bindingReaches(t, t.Tok, id.Pos()) {
					continue
				}
				sawBinding = true
				rhs := t.Rhs[i]
				if vals, ok := r.resolve(rhs); ok {
					out = append(out, vals...)
					continue
				}
				if vals, ok := r.switchCaseValues(t, rhs); ok {
					out = append(out, vals...)
					continue
				}
				bounded = false
			}
		}
		return true
	})
	if !bounded || !sawBinding {
		return nil, false
	}
	return out, true
}

// switchCaseValues handles `x = tag` inside a case of `switch tag`: the
// value set is the case's literal labels.
func (r *strResolver) switchCaseValues(assign *ast.AssignStmt, rhs ast.Expr) ([]string, bool) {
	rhsStr := exprString(rhs)
	if rhsStr == "" {
		return nil, false
	}
	var out []string
	found := false
	ast.Inspect(r.fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil || exprString(sw.Tag) != rhsStr {
			return true
		}
		for _, c := range sw.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if !containsNode(cc, assign) {
				continue
			}
			for _, label := range cc.List {
				s, ok := strLit(label)
				if !ok {
					return true
				}
				out = append(out, s)
			}
			found = true
		}
		return true
	})
	return out, found
}

// containsNode reports whether outer's source range encloses inner.
func containsNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}
