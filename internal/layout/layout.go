// Package layout is the reproduction's GraphViz substitute: a layered
// (Sugiyama-style) layout engine that positions the nodes of a MAL-plan
// digraph. The paper feeds dot files through the GraphViz library to
// obtain coordinates; this package computes them natively with the
// classic three phases — longest-path ranking, barycenter crossing
// reduction, and coordinate assignment — and is tuned to stay fast beyond
// the paper's ">1000 nodes" claim (feature #5, experiment F2).
package layout

import (
	"fmt"
	"sort"

	"stethoscope/internal/dot"
)

// Rect is a node's placed box in layout coordinates (y grows downward).
type Rect struct {
	X, Y, W, H float64
}

// CenterX returns the horizontal center.
func (r Rect) CenterX() float64 { return r.X + r.W/2 }

// CenterY returns the vertical center.
func (r Rect) CenterY() float64 { return r.Y + r.H/2 }

// Options tunes the geometry.
type Options struct {
	CharWidth  float64 // label width per character
	MinWidth   float64 // minimum node width
	MaxWidth   float64 // clamp for very long labels
	NodeHeight float64
	HGap       float64 // horizontal gap between nodes in a rank
	VGap       float64 // vertical gap between ranks
	Sweeps     int     // barycenter passes (each pass = down + up)
}

// DefaultOptions returns geometry that matches typical dot output.
func DefaultOptions() Options {
	return Options{
		CharWidth:  7,
		MinWidth:   40,
		MaxWidth:   420,
		NodeHeight: 28,
		HGap:       24,
		VGap:       48,
		Sweeps:     4,
	}
}

// Layout is the computed placement.
type Layout struct {
	Positions map[string]Rect
	Ranks     map[string]int
	Order     [][]string // node IDs per rank, left to right
	Width     float64
	Height    float64
	Crossings int // edge crossings after ordering, for quality metrics
}

// Compute lays out the graph. The graph must be acyclic (MAL dataflow
// graphs are); a cycle is reported as an error.
func Compute(g *dot.Graph, opt Options) (*Layout, error) {
	if opt.Sweeps <= 0 {
		opt = DefaultOptions()
	}
	n := len(g.Nodes)
	if n == 0 {
		return &Layout{Positions: map[string]Rect{}, Ranks: map[string]int{}}, nil
	}

	idx := make(map[string]int, n)
	for i, node := range g.Nodes {
		idx[node.ID] = i
	}
	succ := make([][]int, n)
	pred := make([][]int, n)
	for _, e := range g.Edges {
		f, okF := idx[e.From]
		t, okT := idx[e.To]
		if !okF || !okT {
			return nil, fmt.Errorf("layout: edge references unknown node %s -> %s", e.From, e.To)
		}
		if f == t {
			continue // ignore self loops
		}
		succ[f] = append(succ[f], t)
		pred[t] = append(pred[t], f)
	}

	rank, err := longestPathRanks(n, succ, pred)
	if err != nil {
		return nil, err
	}
	maxRank := 0
	for _, r := range rank {
		if r > maxRank {
			maxRank = r
		}
	}

	order := initialOrder(n, rank, maxRank, succ)
	barycenterSweeps(order, rank, succ, pred, opt.Sweeps)

	// Coordinate assignment.
	lay := &Layout{
		Positions: make(map[string]Rect, n),
		Ranks:     make(map[string]int, n),
	}
	widths := make([]float64, n)
	for i, node := range g.Nodes {
		w := opt.MinWidth
		if label := node.Label(); label != "" {
			lw := float64(len(label))*opt.CharWidth + 16
			if lw > w {
				w = lw
			}
		}
		if w > opt.MaxWidth {
			w = opt.MaxWidth
		}
		widths[i] = w
	}
	rowWidths := make([]float64, maxRank+1)
	for r, row := range order {
		var total float64
		for _, v := range row {
			total += widths[v] + opt.HGap
		}
		if len(row) > 0 {
			total -= opt.HGap
		}
		rowWidths[r] = total
		if total > lay.Width {
			lay.Width = total
		}
	}
	lay.Order = make([][]string, maxRank+1)
	for r, row := range order {
		x := (lay.Width - rowWidths[r]) / 2
		y := float64(r) * (opt.NodeHeight + opt.VGap)
		for _, v := range row {
			id := g.Nodes[v].ID
			lay.Positions[id] = Rect{X: x, Y: y, W: widths[v], H: opt.NodeHeight}
			lay.Ranks[id] = r
			lay.Order[r] = append(lay.Order[r], id)
			x += widths[v] + opt.HGap
		}
	}
	lay.Height = float64(maxRank)*(opt.NodeHeight+opt.VGap) + opt.NodeHeight
	lay.Crossings = countCrossings(order, rank, succ)
	return lay, nil
}

// longestPathRanks assigns each node the length of the longest path from
// any root, via Kahn topological order; an unprocessable remainder means
// a cycle.
func longestPathRanks(n int, succ, pred [][]int) ([]int, error) {
	rank := make([]int, n)
	indeg := make([]int, n)
	for v := range pred {
		indeg[v] = len(pred[v])
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		processed++
		for _, w := range succ[v] {
			if rank[v]+1 > rank[w] {
				rank[w] = rank[v] + 1
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if processed != n {
		return nil, fmt.Errorf("layout: graph contains a cycle (%d of %d nodes ranked)", processed, n)
	}
	return rank, nil
}

// initialOrder seeds per-rank left-to-right order by BFS discovery.
func initialOrder(n int, rank []int, maxRank int, succ [][]int) [][]int {
	order := make([][]int, maxRank+1)
	visited := make([]bool, n)
	var queue []int
	for v := 0; v < n; v++ {
		if rank[v] == 0 {
			queue = append(queue, v)
			visited[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order[rank[v]] = append(order[rank[v]], v)
		for _, w := range succ[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	// Disconnected leftovers (shouldn't happen for ranked DAGs, but be
	// safe).
	for v := 0; v < n; v++ {
		if !visited[v] {
			order[rank[v]] = append(order[rank[v]], v)
		}
	}
	return order
}

// barycenterSweeps reduces crossings: alternate downward passes (order
// each rank by the mean position of predecessors) and upward passes
// (by successors).
func barycenterSweeps(order [][]int, rank []int, succ, pred [][]int, sweeps int) {
	n := len(rank)
	pos := make([]int, n)
	refresh := func() {
		for _, row := range order {
			for i, v := range row {
				pos[v] = i
			}
		}
	}
	refresh()
	medianOf := func(v int, neighbors []int) float64 {
		if len(neighbors) == 0 {
			return float64(pos[v])
		}
		sum := 0
		for _, w := range neighbors {
			sum += pos[w]
		}
		return float64(sum) / float64(len(neighbors))
	}
	for s := 0; s < sweeps; s++ {
		// Downward: ranks 1..max ordered by predecessor barycenter.
		for r := 1; r < len(order); r++ {
			row := order[r]
			sort.SliceStable(row, func(i, j int) bool {
				return medianOf(row[i], pred[row[i]]) < medianOf(row[j], pred[row[j]])
			})
			for i, v := range row {
				pos[v] = i
			}
		}
		// Upward: ranks max-1..0 ordered by successor barycenter.
		for r := len(order) - 2; r >= 0; r-- {
			row := order[r]
			sort.SliceStable(row, func(i, j int) bool {
				return medianOf(row[i], succ[row[i]]) < medianOf(row[j], succ[row[j]])
			})
			for i, v := range row {
				pos[v] = i
			}
		}
	}
}

// countCrossings counts pairwise edge crossings between adjacent ranks
// (the standard layered-crossing metric), used as a layout quality
// indicator in benchmarks.
func countCrossings(order [][]int, rank []int, succ [][]int) int {
	n := len(rank)
	pos := make([]int, n)
	for _, row := range order {
		for i, v := range row {
			pos[v] = i
		}
	}
	total := 0
	for r := 0; r+1 < len(order); r++ {
		// Collect edges rank r -> r+1 as (posFrom, posTo).
		type pt struct{ a, b int }
		var edges []pt
		for _, v := range order[r] {
			for _, w := range succ[v] {
				if rank[w] == r+1 {
					edges = append(edges, pt{pos[v], pos[w]})
				}
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].a != edges[j].a {
				return edges[i].a < edges[j].a
			}
			return edges[i].b < edges[j].b
		})
		// Count inversions in the b sequence.
		for i := 0; i < len(edges); i++ {
			for j := i + 1; j < len(edges); j++ {
				if edges[j].b < edges[i].b {
					total++
				}
			}
		}
	}
	return total
}
