package layout

import (
	"fmt"
	"math/rand"
	"testing"

	"stethoscope/internal/dot"
)

// randomDAG builds a random layered DAG: edges always point from a lower
// to a higher node index, guaranteeing acyclicity.
func randomDAG(r *rand.Rand, nodes, edges int) *dot.Graph {
	g := dot.NewGraph("random")
	for i := 0; i < nodes; i++ {
		g.AddNode(fmt.Sprintf("v%d", i), map[string]string{"label": "op"})
	}
	for e := 0; e < edges; e++ {
		a := r.Intn(nodes - 1)
		b := a + 1 + r.Intn(nodes-a-1)
		g.AddEdge(fmt.Sprintf("v%d", a), fmt.Sprintf("v%d", b), nil)
	}
	return g
}

// TestRandomDAGInvariants checks the layout invariants on many random
// DAGs: every node is placed, no two nodes overlap, and every edge points
// strictly downward in rank.
func TestRandomDAGInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nodes := 2 + r.Intn(60)
		edges := r.Intn(3 * nodes)
		g := randomDAG(r, nodes, edges)
		lay, err := Compute(g, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(lay.Positions) != nodes {
			t.Fatalf("trial %d: placed %d of %d", trial, len(lay.Positions), nodes)
		}
		// Rank monotonicity along edges.
		for _, e := range g.Edges {
			if e.From == e.To {
				continue
			}
			if lay.Ranks[e.To] <= lay.Ranks[e.From] {
				t.Fatalf("trial %d: edge %s->%s ranks %d->%d",
					trial, e.From, e.To, lay.Ranks[e.From], lay.Ranks[e.To])
			}
		}
		// No overlaps within any rank (cross-rank can't overlap by
		// construction of Y).
		for _, row := range lay.Order {
			for i := 0; i < len(row); i++ {
				for j := i + 1; j < len(row); j++ {
					a, b := lay.Positions[row[i]], lay.Positions[row[j]]
					if a.X < b.X+b.W && b.X < a.X+a.W {
						t.Fatalf("trial %d: %s and %s overlap in rank", trial, row[i], row[j])
					}
				}
			}
		}
		// Bounds contain every node.
		for id, rect := range lay.Positions {
			if rect.X < -1e-9 || rect.Y < -1e-9 || rect.X+rect.W > lay.Width+1e-9 || rect.Y+rect.H > lay.Height+1e-9 {
				t.Fatalf("trial %d: %s outside bounds", trial, id)
			}
		}
	}
}

// TestRandomGraphDotRoundTrip pushes random DAGs through marshal/parse.
func TestRandomGraphDotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, 2+r.Intn(40), r.Intn(80))
		back, err := dot.Parse(g.Marshal())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(back.Nodes) != len(g.Nodes) || len(back.Edges) != len(g.Edges) {
			t.Fatalf("trial %d: %d/%d nodes, %d/%d edges",
				trial, len(back.Nodes), len(g.Nodes), len(back.Edges), len(g.Edges))
		}
	}
}

func BenchmarkLayoutRandom500(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := randomDAG(r, 500, 1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
