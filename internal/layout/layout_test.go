package layout

import (
	"fmt"
	"testing"

	"stethoscope/internal/dot"
)

func chainGraph(n int) *dot.Graph {
	g := dot.NewGraph("chain")
	for i := 0; i < n; i++ {
		g.AddNode(dot.NodeID(i), map[string]string{"label": fmt.Sprintf("instr %d", i)})
		if i > 0 {
			g.AddEdge(dot.NodeID(i-1), dot.NodeID(i), nil)
		}
	}
	return g
}

func diamondGraph() *dot.Graph {
	g := dot.NewGraph("diamond")
	g.AddEdge("a", "b", nil)
	g.AddEdge("a", "c", nil)
	g.AddEdge("b", "d", nil)
	g.AddEdge("c", "d", nil)
	return g
}

func TestChainRanks(t *testing.T) {
	lay, err := Compute(chainGraph(5), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if lay.Ranks[dot.NodeID(i)] != i {
			t.Errorf("rank[n%d] = %d", i, lay.Ranks[dot.NodeID(i)])
		}
	}
	// Y grows with rank.
	for i := 1; i < 5; i++ {
		if lay.Positions[dot.NodeID(i)].Y <= lay.Positions[dot.NodeID(i-1)].Y {
			t.Errorf("n%d not below n%d", i, i-1)
		}
	}
}

func TestDiamondRanks(t *testing.T) {
	lay, err := Compute(diamondGraph(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if lay.Ranks["a"] != 0 || lay.Ranks["d"] != 2 {
		t.Errorf("ranks = %v", lay.Ranks)
	}
	if lay.Ranks["b"] != 1 || lay.Ranks["c"] != 1 {
		t.Errorf("mid ranks = %v", lay.Ranks)
	}
	// b and c share a rank and must not overlap.
	rb, rc := lay.Positions["b"], lay.Positions["c"]
	if overlap(rb, rc) {
		t.Errorf("b %+v and c %+v overlap", rb, rc)
	}
}

func overlap(a, b Rect) bool {
	return a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H
}

func TestNoOverlapsAnywhere(t *testing.T) {
	g := dot.NewGraph("fan")
	for i := 0; i < 40; i++ {
		g.AddEdge("root", fmt.Sprintf("leaf%02d", i), nil)
	}
	lay, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(lay.Positions))
	for id := range lay.Positions {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if overlap(lay.Positions[ids[i]], lay.Positions[ids[j]]) {
				t.Fatalf("%s and %s overlap", ids[i], ids[j])
			}
		}
	}
	if lay.Width <= 0 || lay.Height <= 0 {
		t.Errorf("bounds = %g x %g", lay.Width, lay.Height)
	}
}

func TestCycleRejected(t *testing.T) {
	g := dot.NewGraph("cycle")
	g.AddEdge("a", "b", nil)
	g.AddEdge("b", "c", nil)
	g.AddEdge("c", "a", nil)
	if _, err := Compute(g, DefaultOptions()); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := dot.NewGraph("self")
	g.AddEdge("a", "a", nil)
	g.AddEdge("a", "b", nil)
	lay, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Positions) != 2 {
		t.Errorf("positions = %d", len(lay.Positions))
	}
}

func TestEmptyGraph(t *testing.T) {
	lay, err := Compute(dot.NewGraph("empty"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Positions) != 0 {
		t.Error("positions for empty graph")
	}
}

func TestBarycenterReducesCrossings(t *testing.T) {
	// Two-rank bipartite graph wired as a reversal: without ordering it
	// has many crossings; barycenter ordering should eliminate most.
	g := dot.NewGraph("bipartite")
	const k = 8
	for i := 0; i < k; i++ {
		g.AddNode(fmt.Sprintf("top%d", i), nil)
	}
	for i := 0; i < k; i++ {
		// bottom i connects to top (k-1-i): a full reversal.
		g.AddEdge(fmt.Sprintf("top%d", k-1-i), fmt.Sprintf("bot%d", i), nil)
	}
	zero, err := Compute(g, Options{CharWidth: 7, MinWidth: 40, MaxWidth: 400, NodeHeight: 28, HGap: 10, VGap: 30, Sweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Crossings != 0 {
		t.Errorf("reversal not untangled: %d crossings", zero.Crossings)
	}
}

func TestLargeGraphUnder1000msAndCorrect(t *testing.T) {
	// The paper's claim: graphs with >1000 nodes are supported.
	g := dot.NewGraph("big")
	// A mitosis-like shape: 8 roots fanning to 64 partitions each, then
	// packing back: 8 + 8*64*2 + 8 nodes.
	id := 0
	next := func() string { id++; return fmt.Sprintf("v%d", id) }
	for b := 0; b < 8; b++ {
		bind := next()
		pack := next()
		g.AddNode(bind, map[string]string{"label": "sql.bind"})
		g.AddNode(pack, map[string]string{"label": "mat.pack"})
		for p := 0; p < 64; p++ {
			slice := next()
			sel := next()
			g.AddEdge(bind, slice, nil)
			g.AddEdge(slice, sel, nil)
			g.AddEdge(sel, pack, nil)
		}
	}
	if len(g.Nodes) <= 1000 {
		t.Fatalf("test graph too small: %d", len(g.Nodes))
	}
	lay, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Positions) != len(g.Nodes) {
		t.Fatalf("placed %d of %d nodes", len(lay.Positions), len(g.Nodes))
	}
	// Edges always point downward (rank monotonicity).
	for _, e := range g.Edges {
		if lay.Ranks[e.To] <= lay.Ranks[e.From] {
			t.Fatalf("edge %s->%s not downward", e.From, e.To)
		}
	}
}

func TestLabelWidthClamping(t *testing.T) {
	g := dot.NewGraph("labels")
	long := make([]byte, 500)
	for i := range long {
		long[i] = 'x'
	}
	g.AddNode("a", map[string]string{"label": string(long)})
	g.AddNode("b", map[string]string{"label": "s"})
	opt := DefaultOptions()
	lay, err := Compute(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Positions["a"].W > opt.MaxWidth {
		t.Errorf("width %g exceeds clamp %g", lay.Positions["a"].W, opt.MaxWidth)
	}
	if lay.Positions["b"].W < opt.MinWidth {
		t.Errorf("width %g below minimum", lay.Positions["b"].W)
	}
}
