// Package trace implements trace-file handling and the trace ↔ dot-file
// mapping of paper §3.3: each MAL instruction appears in the trace as a
// "start" and a "done" event; the pc field maps to dot node "nN" and the
// stmt field maps to the node's label. The Store indexes a parsed trace
// by its "event" attribute (sequence number) and by pc, the two access
// paths Stethoscope's replay and coloring use.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"stethoscope/internal/dot"
	"stethoscope/internal/profiler"
)

// Store holds an ordered trace with per-pc indexes. Traces produced by
// executing a plan have small dense PCs (0..n-1), so the index is a
// slice keyed by pc; traces loaded from arbitrary files fall back to a
// map when their PCs are sparse or negative.
type Store struct {
	events []profiler.Event
	dense  [][]int       // pc index; nil when the sparse fallback is active
	sparse map[int][]int // fallback index for sparse/negative PCs
	pcs    []int         // distinct pcs (ascending on the dense path)
}

// FromEvents builds a store from in-memory events (online mode's buffer).
func FromEvents(events []profiler.Event) *Store {
	return FromEventsOwned(append([]profiler.Event(nil), events...))
}

// FromEventsOwned builds a store taking ownership of the slice — no
// copy, so the hot Exec path can hand a full trace over for free. The
// caller must not modify events afterwards.
func FromEventsOwned(events []profiler.Event) *Store {
	s := &Store{events: events}
	maxPC, dense := -1, true
	for _, e := range events {
		if e.PC < 0 {
			dense = false
			break
		}
		if e.PC > maxPC {
			maxPC = e.PC
		}
	}
	if dense && maxPC >= 8*len(events)+1024 {
		dense = false // pathological pc range; don't size a slice by it
	}
	if !dense {
		s.sparse = make(map[int][]int, len(events)/2+1)
		for i, e := range events {
			s.sparse[e.PC] = append(s.sparse[e.PC], i)
		}
		s.pcs = make([]int, 0, len(s.sparse))
		for pc := range s.sparse {
			s.pcs = append(s.pcs, pc)
		}
		sortInts(s.pcs)
		return s
	}
	// Dense path: group indices by pc in two passes over one shared
	// backing array — appending into per-pc slices directly would cost
	// one small allocation per distinct PC (thousands per plan).
	counts := make([]int, maxPC+1)
	npcs := 0
	for _, e := range events {
		if counts[e.PC] == 0 {
			npcs++
		}
		counts[e.PC]++
	}
	s.dense = make([][]int, maxPC+1)
	s.pcs = make([]int, 0, npcs)
	backing := make([]int, 0, len(events))
	for pc, n := range counts {
		if n == 0 {
			continue
		}
		s.dense[pc] = backing[len(backing) : len(backing) : len(backing)+n]
		backing = backing[:len(backing)+n]
		s.pcs = append(s.pcs, pc)
	}
	for i, e := range events {
		s.dense[e.PC] = append(s.dense[e.PC], i)
	}
	return s
}

// idxsOf returns the event indexes of one pc, in trace order.
func (s *Store) idxsOf(pc int) []int {
	if s.dense != nil {
		if pc < 0 || pc >= len(s.dense) {
			return nil
		}
		return s.dense[pc]
	}
	return s.sparse[pc]
}

// Load parses a trace file: one marshaled event per line, blank lines and
// '#' comments skipped.
func Load(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []profiler.Event
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := profiler.UnmarshalEvent(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineno, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return FromEvents(events), nil
}

// LoadString is Load over a string.
func LoadString(s string) (*Store, error) { return Load(strings.NewReader(s)) }

// Len returns the event count.
func (s *Store) Len() int { return len(s.events) }

// Events returns the trace in order.
func (s *Store) Events() []profiler.Event { return s.events }

// At returns event i.
func (s *Store) At(i int) profiler.Event { return s.events[i] }

// ByPC returns the events of one instruction, in trace order.
func (s *Store) ByPC(pc int) []profiler.Event {
	idxs := s.idxsOf(pc)
	out := make([]profiler.Event, len(idxs))
	for i, idx := range idxs {
		out[i] = s.events[idx]
	}
	return out
}

// PCs returns the distinct program counters present.
func (s *Store) PCs() []int {
	return append([]int(nil), s.pcs...)
}

// DurationUs returns the summed execution time of an instruction across
// its done events (partitioned plans execute a pc once; the sum is
// defensive for replayed traces).
func (s *Store) DurationUs(pc int) int64 {
	var total int64
	for _, i := range s.idxsOf(pc) {
		if s.events[i].State == profiler.StateDone {
			total += s.events[i].DurUs
		}
	}
	return total
}

// Mapping links a trace to a dot graph per §3.3.
type Mapping struct {
	// NodeOf maps pc to the dot node ID ("nN").
	NodeOf map[int]string
	// Unmatched lists pcs present in the trace with no graph node — a
	// stale dot file or truncated plan.
	Unmatched []int
	// LabelMismatches lists pcs whose trace stmt differs from the node
	// label (both non-empty).
	LabelMismatches []int
}

// MapToGraph resolves every traced pc against the graph.
func MapToGraph(s *Store, g *dot.Graph) Mapping {
	m := Mapping{NodeOf: map[int]string{}}
	for _, pc := range s.pcs {
		id := dot.NodeID(pc)
		node, ok := g.Node(id)
		if !ok {
			m.Unmatched = append(m.Unmatched, pc)
			continue
		}
		m.NodeOf[pc] = id
		stmt := ""
		for _, i := range s.idxsOf(pc) {
			if s.events[i].Stmt != "" {
				stmt = s.events[i].Stmt
				break
			}
		}
		if stmt != "" && node.Label() != "" && stmt != node.Label() {
			m.LabelMismatches = append(m.LabelMismatches, pc)
		}
	}
	sortInts(m.Unmatched)
	sortInts(m.LabelMismatches)
	return m
}

// Complete reports whether every traced pc mapped to a node with a
// matching label.
func (m Mapping) Complete() bool {
	return len(m.Unmatched) == 0 && len(m.LabelMismatches) == 0
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
