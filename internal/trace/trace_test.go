package trace

import (
	"strings"
	"testing"

	"stethoscope/internal/dot"
	"stethoscope/internal/mal"
	"stethoscope/internal/profiler"
)

func sampleEvents() []profiler.Event {
	return []profiler.Event{
		{Seq: 0, State: profiler.StateStart, PC: 0, Stmt: "a"},
		{Seq: 1, State: profiler.StateDone, PC: 0, DurUs: 100, Stmt: "a"},
		{Seq: 2, State: profiler.StateStart, PC: 1, Stmt: "b"},
		{Seq: 3, State: profiler.StateDone, PC: 1, DurUs: 300, Stmt: "b"},
		{Seq: 4, State: profiler.StateStart, PC: 2, Stmt: "c"},
	}
}

func TestStoreIndexes(t *testing.T) {
	s := FromEvents(sampleEvents())
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.ByPC(1); len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Errorf("ByPC(1) = %v", got)
	}
	if got := s.ByPC(99); len(got) != 0 {
		t.Errorf("ByPC(99) = %v", got)
	}
	if len(s.PCs()) != 3 {
		t.Errorf("PCs = %v", s.PCs())
	}
	if s.DurationUs(1) != 300 {
		t.Errorf("DurationUs(1) = %d", s.DurationUs(1))
	}
	if s.DurationUs(2) != 0 {
		t.Errorf("DurationUs(2) = %d (start only)", s.DurationUs(2))
	}
}

func TestLoadTraceFile(t *testing.T) {
	var b strings.Builder
	b.WriteString("# trace header comment\n\n")
	for _, e := range sampleEvents() {
		b.WriteString(e.Marshal())
		b.WriteByte('\n')
	}
	s, err := LoadString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.At(4).PC != 2 {
		t.Errorf("At(4) = %+v", s.At(4))
	}
}

func TestLoadRejectsBadLines(t *testing.T) {
	if _, err := LoadString("not a trace line\n"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMappingMatchesPaperConvention(t *testing.T) {
	// Build a plan, export dot, generate a trace with matching stmts.
	p := mal.NewPlan("q")
	col := p.Emit1("sql", "bind", mal.TBATInt, mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("t")), mal.ConstOf(mal.Str("c")), mal.ConstOf(mal.Int64(0)))
	p.Emit1("algebra", "thetaselect", mal.TBATOID, mal.VarArg(col), mal.ConstOf(mal.Str("=")), mal.ConstOf(mal.Int64(1)))
	g := dot.Export(p)
	var events []profiler.Event
	for _, in := range p.Instrs {
		stmt := p.StmtString(in)
		events = append(events,
			profiler.Event{Seq: int64(2 * in.PC), State: profiler.StateStart, PC: in.PC, Stmt: stmt},
			profiler.Event{Seq: int64(2*in.PC + 1), State: profiler.StateDone, PC: in.PC, Stmt: stmt})
	}
	s := FromEvents(events)
	m := MapToGraph(s, g)
	if !m.Complete() {
		t.Fatalf("mapping incomplete: %+v", m)
	}
	if m.NodeOf[0] != "n0" || m.NodeOf[1] != "n1" {
		t.Errorf("NodeOf = %v", m.NodeOf)
	}
}

func TestMappingDetectsUnmatchedAndMismatched(t *testing.T) {
	g := dot.NewGraph("g")
	g.AddNode("n0", map[string]string{"label": "real stmt"})
	s := FromEvents([]profiler.Event{
		{Seq: 0, State: profiler.StateStart, PC: 0, Stmt: "different stmt"},
		{Seq: 1, State: profiler.StateStart, PC: 7, Stmt: "x"},
	})
	m := MapToGraph(s, g)
	if m.Complete() {
		t.Fatal("mapping reported complete")
	}
	if len(m.Unmatched) != 1 || m.Unmatched[0] != 7 {
		t.Errorf("Unmatched = %v", m.Unmatched)
	}
	if len(m.LabelMismatches) != 1 || m.LabelMismatches[0] != 0 {
		t.Errorf("LabelMismatches = %v", m.LabelMismatches)
	}
}

func TestRoundTripThroughFile(t *testing.T) {
	var b strings.Builder
	sink := profiler.NewWriterSink(&b)
	for _, e := range sampleEvents() {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := LoadString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sampleEvents() {
		if s.At(i) != want {
			t.Errorf("event %d: %+v != %+v", i, s.At(i), want)
		}
	}
}
