package core

import (
	"fmt"
	"time"

	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
	"stethoscope/internal/zvtm"
)

// Replay is the offline trace-replay controller: "Fast-forward, rewind,
// and pause functionality of the trace replay" plus the step-by-step
// walk-through of the offline demo. It advances a cursor through the
// trace store and drives node coloring through the render queue, exactly
// as the online mode would.
type Replay struct {
	store *trace.Store
	queue *zvtm.RenderQueue
	pos   int // next event index to apply
	// paused gates Play-driven advancement; Step works regardless.
	paused bool
	// colored tracks nodes tinted so far, so Rewind can recompute.
	vs *zvtm.VirtualSpace
}

// NewReplay wires a trace to a virtual space through a render queue.
func NewReplay(store *trace.Store, vs *zvtm.VirtualSpace, queue *zvtm.RenderQueue) *Replay {
	return &Replay{store: store, queue: queue, vs: vs, paused: true}
}

// Position returns the cursor (events applied so far).
func (r *Replay) Position() int { return r.pos }

// Len returns the trace length.
func (r *Replay) Len() int { return r.store.Len() }

// Paused reports the pause state.
func (r *Replay) Paused() bool { return r.paused }

// Pause stops Play-driven advancement.
func (r *Replay) Pause() { r.paused = true }

// Play resumes advancement.
func (r *Replay) Play() { r.paused = false }

// Step applies the next event and returns it; ok is false at the end of
// the trace. start events color RED, done events color GREEN, matching
// the paper's state mapping.
func (r *Replay) Step(now time.Time) (profiler.Event, bool) {
	if r.pos >= r.store.Len() {
		return profiler.Event{}, false
	}
	e := r.store.At(r.pos)
	r.pos++
	color := ColorRed
	if e.State == profiler.StateDone {
		color = ColorGreen
	}
	r.queue.Enqueue(nodeID(e.PC), string(color), now)
	return e, true
}

// Tick advances the replay while playing: it applies every event up to
// `count` and flushes the render queue at `now`. It returns the number
// of events applied.
func (r *Replay) Tick(now time.Time, count int) int {
	if r.paused {
		r.queue.Flush(now)
		return 0
	}
	applied := 0
	for applied < count {
		if _, ok := r.Step(now); !ok {
			break
		}
		applied++
	}
	r.queue.Flush(now)
	return applied
}

// FastForward jumps the cursor forward by n events, applying their final
// colors immediately (bypassing the queue's pacing, as a user skipping
// ahead expects).
func (r *Replay) FastForward(n int) {
	target := r.pos + n
	if target > r.store.Len() {
		target = r.store.Len()
	}
	r.applyRange(0, target)
	r.pos = target
}

// Rewind moves the cursor back by n events and recomputes the display
// state from the beginning of the trace (coloring is not invertible:
// rewinding past a done event must restore the RED of its start).
func (r *Replay) Rewind(n int) {
	target := r.pos - n
	if target < 0 {
		target = 0
	}
	r.applyRange(0, target)
	r.pos = target
}

// SeekTo positions the cursor at an absolute event index.
func (r *Replay) SeekTo(idx int) error {
	if idx < 0 || idx > r.store.Len() {
		return fmt.Errorf("core: seek %d out of range 0..%d", idx, r.store.Len())
	}
	r.applyRange(0, idx)
	r.pos = idx
	return nil
}

// applyRange recomputes node colors as of events [from, to) and applies
// them directly to the virtual space.
func (r *Replay) applyRange(from, to int) {
	// Reset every previously colored node.
	for _, id := range r.vs.NodeIDs() {
		r.vs.SetNodeColor(id, "")
	}
	state := map[int]Color{}
	for i := from; i < to; i++ {
		e := r.store.At(i)
		if e.State == profiler.StateDone {
			state[e.PC] = ColorGreen
		} else {
			state[e.PC] = ColorRed
		}
	}
	for pc, c := range state {
		r.vs.SetNodeColor(nodeID(pc), string(c))
	}
}

// ColorBetween runs the pair-elision algorithm over the trace window
// between two event indexes — the offline demo's "finding costly
// instructions by coloring during trace replay between two instruction
// states".
func (r *Replay) ColorBetween(from, to int) (Coloring, error) {
	if from < 0 || to > r.store.Len() || from > to {
		return nil, fmt.Errorf("core: window [%d,%d) out of range 0..%d", from, to, r.store.Len())
	}
	window := make([]profiler.Event, 0, to-from)
	for i := from; i < to; i++ {
		window = append(window, r.store.At(i))
	}
	return PairElision(window), nil
}

func nodeID(pc int) string { return fmt.Sprintf("n%d", pc) }
