package core

import (
	"fmt"
	"sort"
	"strings"

	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
)

// This file implements the paper's future-work item (§6): "an analytic
// interface for micro analysis of trace" — structured breakdowns of where
// time, memory and data volume went, beyond the per-node coloring.

// ModuleStat aggregates one MAL module's share of an execution.
type ModuleStat struct {
	Module string
	Calls  int
	BusyUs int64
	Reads  int64
	Writes int64
	// Share is the fraction of total busy time, 0..1.
	Share float64
}

// ModuleBreakdown aggregates done events per MAL module, sorted by busy
// time descending.
func ModuleBreakdown(s *trace.Store) []ModuleStat {
	byMod := map[string]*ModuleStat{}
	var total int64
	for _, e := range s.Events() {
		if e.State != profiler.StateDone {
			continue
		}
		m := moduleOf(e.Stmt)
		st, ok := byMod[m]
		if !ok {
			st = &ModuleStat{Module: m}
			byMod[m] = st
		}
		st.Calls++
		st.BusyUs += e.DurUs
		st.Reads += e.Reads
		st.Writes += e.Writes
		total += e.DurUs
	}
	out := make([]ModuleStat, 0, len(byMod))
	for _, st := range byMod {
		if total > 0 {
			st.Share = float64(st.BusyUs) / float64(total)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusyUs != out[j].BusyUs {
			return out[i].BusyUs > out[j].BusyUs
		}
		return out[i].Module < out[j].Module
	})
	return out
}

// MemPoint is one sample of the memory timeline.
type MemPoint struct {
	ClkUs int64
	RSSKB int64 // cumulative rss of results produced up to this point
}

// MemoryTimeline accumulates the rss accounting of done events over
// time, bucketed into n samples — the "memory usage by operators" view
// of the offline demo.
func MemoryTimeline(s *trace.Store, n int) []MemPoint {
	if n <= 0 || s.Len() == 0 {
		return nil
	}
	// Collect (clk, rss) of done events in clk order.
	type pt struct{ clk, rss int64 }
	var pts []pt
	var maxClk int64
	for _, e := range s.Events() {
		if e.State == profiler.StateDone {
			pts = append(pts, pt{e.ClkUs, e.RSSKB})
		}
		if e.ClkUs > maxClk {
			maxClk = e.ClkUs
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].clk < pts[j].clk })
	out := make([]MemPoint, 0, n)
	var cum int64
	pi := 0
	for b := 1; b <= n; b++ {
		limit := maxClk * int64(b) / int64(n)
		for pi < len(pts) && pts[pi].clk <= limit {
			cum += pts[pi].rss
			pi++
		}
		out = append(out, MemPoint{ClkUs: limit, RSSKB: cum})
	}
	return out
}

// Segment is one instruction execution on the thread timeline.
type Segment struct {
	Thread int
	PC     int
	FromUs int64
	ToUs   int64
	Stmt   string
}

// ThreadTimeline pairs start/done events per pc into per-thread
// execution segments, ordered by start time within each thread — the
// data behind a Gantt view of "utilization distribution of threads".
func ThreadTimeline(s *trace.Store) map[int][]Segment {
	started := map[int]profiler.Event{}
	out := map[int][]Segment{}
	for _, e := range s.Events() {
		switch e.State {
		case profiler.StateStart:
			started[e.PC] = e
		case profiler.StateDone:
			st, ok := started[e.PC]
			if !ok {
				// Done without a start in window: synthesize from duration.
				st = profiler.Event{PC: e.PC, Thread: e.Thread, ClkUs: e.ClkUs - e.DurUs}
			}
			out[e.Thread] = append(out[e.Thread], Segment{
				Thread: e.Thread,
				PC:     e.PC,
				FromUs: st.ClkUs,
				ToUs:   e.ClkUs,
				Stmt:   e.Stmt,
			})
			delete(started, e.PC)
		}
	}
	for th := range out {
		segs := out[th]
		sort.Slice(segs, func(i, j int) bool { return segs[i].FromUs < segs[j].FromUs })
	}
	return out
}

// VariableFlow summarizes the data volume that flowed through an
// instruction: tuples in (reads) and out (writes).
type VariableFlow struct {
	PC     int
	Stmt   string
	Reads  int64
	Writes int64
	// Selectivity is writes/reads for filtering operators (0 when reads
	// is 0).
	Selectivity float64
}

// DataFlowProfile returns per-instruction tuple flow sorted by
// descending read volume, answering "which operators touch the most
// data".
func DataFlowProfile(s *trace.Store) []VariableFlow {
	byPC := map[int]*VariableFlow{}
	for _, e := range s.Events() {
		if e.State != profiler.StateDone {
			continue
		}
		f, ok := byPC[e.PC]
		if !ok {
			f = &VariableFlow{PC: e.PC, Stmt: e.Stmt}
			byPC[e.PC] = f
		}
		f.Reads += e.Reads
		f.Writes += e.Writes
	}
	out := make([]VariableFlow, 0, len(byPC))
	for _, f := range byPC {
		if f.Reads > 0 {
			f.Selectivity = float64(f.Writes) / float64(f.Reads)
		}
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reads != out[j].Reads {
			return out[i].Reads > out[j].Reads
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// MicroReport renders the full micro-analysis as text.
func MicroReport(s *trace.Store) string {
	var b strings.Builder
	b.WriteString("module breakdown:\n")
	for _, m := range ModuleBreakdown(s) {
		fmt.Fprintf(&b, "  %-10s %5d calls %10dus %5.1f%%  reads %d writes %d\n",
			m.Module, m.Calls, m.BusyUs, m.Share*100, m.Reads, m.Writes)
	}
	b.WriteString("top data flows:\n")
	flows := DataFlowProfile(s)
	if len(flows) > 5 {
		flows = flows[:5]
	}
	for _, f := range flows {
		fmt.Fprintf(&b, "  pc=%-5d reads %-10d writes %-10d sel %.3f\n", f.PC, f.Reads, f.Writes, f.Selectivity)
	}
	tl := ThreadTimeline(s)
	threads := make([]int, 0, len(tl))
	for th := range tl {
		threads = append(threads, th)
	}
	sort.Ints(threads)
	b.WriteString("thread timelines:\n")
	for _, th := range threads {
		fmt.Fprintf(&b, "  thread %d: %d segments\n", th, len(tl[th]))
	}
	return b.String()
}
