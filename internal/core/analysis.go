package core

import (
	"fmt"
	"sort"
	"strings"

	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
)

// Utilization summarizes how a query execution exploited the cores — the
// online demo's "multi-core utilization analysis exhibits degree of
// multi-threaded parallelization of MAL instructions".
type Utilization struct {
	// BusyUs is the summed instruction time per thread.
	BusyUs map[int]int64
	// SpanUs is the wall-clock span of the trace (first start to last
	// done).
	SpanUs int64
	// Parallelism is total busy time divided by span: ~1 for sequential
	// execution, approaching the worker count for well-parallelized
	// plans.
	Parallelism float64
	// Threads is the number of distinct executing threads.
	Threads int
}

// Utilize computes per-thread utilization from a trace.
func Utilize(s *trace.Store) Utilization {
	u := Utilization{BusyUs: map[int]int64{}}
	var minClk, maxClk int64
	minClk = 1<<63 - 1
	for _, e := range s.Events() {
		if e.ClkUs < minClk {
			minClk = e.ClkUs
		}
		if e.ClkUs > maxClk {
			maxClk = e.ClkUs
		}
		if e.State == profiler.StateDone {
			u.BusyUs[e.Thread] += e.DurUs
		}
	}
	if s.Len() > 0 {
		u.SpanUs = maxClk - minClk
	}
	u.Threads = len(u.BusyUs)
	var total int64
	for _, b := range u.BusyUs {
		total += b
	}
	if u.SpanUs > 0 {
		u.Parallelism = float64(total) / float64(u.SpanUs)
	} else if total > 0 {
		u.Parallelism = 1
	}
	return u
}

// SequentialAnomaly reports whether a trace that should have run
// multi-threaded executed (almost) sequentially — the case the paper
// reports uncovering: "sequential execution of a MAL plan where
// multithreaded execution was expected." expectedThreads is the worker
// count the plan was scheduled for.
func SequentialAnomaly(u Utilization, expectedThreads int) bool {
	if expectedThreads <= 1 {
		return false
	}
	return u.Threads <= 1
}

// String renders a compact utilization report.
func (u Utilization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span=%dus threads=%d parallelism=%.2f\n", u.SpanUs, u.Threads, u.Parallelism)
	threads := make([]int, 0, len(u.BusyUs))
	for t := range u.BusyUs {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	for _, t := range threads {
		fmt.Fprintf(&b, "  thread %d: busy %dus\n", t, u.BusyUs[t])
	}
	return b.String()
}

// Cluster is one birds-eye bucket: a contiguous slice of the trace
// summarized by its dominant MAL module — "birds eye view of the entire
// trace, to understand the sequence of instruction execution clustering."
type Cluster struct {
	FromSeq, ToSeq int64
	Events         int
	BusyUs         int64
	// Module is the dominant module in the bucket (by done-event time).
	Module string
}

// BirdsEye splits the trace into n sequential buckets and summarizes
// each.
func BirdsEye(s *trace.Store, n int) []Cluster {
	if n <= 0 || s.Len() == 0 {
		return nil
	}
	evs := s.Events()
	if n > len(evs) {
		n = len(evs)
	}
	out := make([]Cluster, 0, n)
	for b := 0; b < n; b++ {
		lo := b * len(evs) / n
		hi := (b + 1) * len(evs) / n
		if lo == hi {
			continue
		}
		c := Cluster{FromSeq: evs[lo].Seq, ToSeq: evs[hi-1].Seq, Events: hi - lo}
		moduleBusy := map[string]int64{}
		for _, e := range evs[lo:hi] {
			if e.State != profiler.StateDone {
				continue
			}
			c.BusyUs += e.DurUs
			moduleBusy[moduleOf(e.Stmt)] += e.DurUs
		}
		var bestMod string
		var bestBusy int64 = -1
		mods := make([]string, 0, len(moduleBusy))
		for m := range moduleBusy {
			mods = append(mods, m)
		}
		sort.Strings(mods)
		for _, m := range mods {
			if moduleBusy[m] > bestBusy {
				bestBusy = moduleBusy[m]
				bestMod = m
			}
		}
		c.Module = bestMod
		out = append(out, c)
	}
	return out
}

// moduleOf extracts the MAL module from a statement string like
// "X_3:bat[:oid] := algebra.select(...);".
func moduleOf(stmt string) string {
	s := stmt
	if i := strings.Index(s, ":="); i >= 0 {
		s = strings.TrimSpace(s[i+2:])
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return strings.TrimSpace(s[:i])
	}
	return ""
}

// CostlyInstr is one entry of the costly-instruction report.
type CostlyInstr struct {
	PC    int
	DurUs int64
	Stmt  string
}

// TopCostly returns the k slowest instructions — the core question the
// tool answers ("where time goes").
func TopCostly(s *trace.Store, k int) []CostlyInstr {
	byPC := map[int]*CostlyInstr{}
	for _, e := range s.Events() {
		if e.State != profiler.StateDone {
			continue
		}
		ci, ok := byPC[e.PC]
		if !ok {
			ci = &CostlyInstr{PC: e.PC, Stmt: e.Stmt}
			byPC[e.PC] = ci
		}
		ci.DurUs += e.DurUs
	}
	out := make([]CostlyInstr, 0, len(byPC))
	for _, ci := range byPC {
		out = append(out, *ci)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurUs != out[j].DurUs {
			return out[i].DurUs > out[j].DurUs
		}
		return out[i].PC < out[j].PC
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Tooltip renders the hover text for one instruction: statement,
// execution time and resource accounting — the "tool tip text display"
// of the demo.
func Tooltip(s *trace.Store, pc int) string {
	evs := s.ByPC(pc)
	if len(evs) == 0 {
		return fmt.Sprintf("pc=%d: no trace events", pc)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pc=%d %s", pc, evs[0].Stmt)
	for _, e := range evs {
		if e.State == profiler.StateDone {
			fmt.Fprintf(&b, "\n  done in %dus (thread %d, rss %dKB, reads %d, writes %d)",
				e.DurUs, e.Thread, e.RSSKB, e.Reads, e.Writes)
		}
	}
	if evs[len(evs)-1].State == profiler.StateStart {
		fmt.Fprintf(&b, "\n  still running (started at clk=%dus, thread %d)",
			evs[len(evs)-1].ClkUs, evs[len(evs)-1].Thread)
	}
	return b.String()
}

// DebugInfo is the structured content of the demo's "debug options
// window" for one instruction.
type DebugInfo struct {
	PC     int
	Stmt   string
	Events []profiler.Event
	DurUs  int64
	Done   bool
}

// Debug collects per-instruction detail.
func Debug(s *trace.Store, pc int) DebugInfo {
	evs := s.ByPC(pc)
	d := DebugInfo{PC: pc, Events: evs}
	for _, e := range evs {
		if d.Stmt == "" {
			d.Stmt = e.Stmt
		}
		if e.State == profiler.StateDone {
			d.Done = true
			d.DurUs += e.DurUs
		}
	}
	return d
}
