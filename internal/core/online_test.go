package core

import (
	"sync"
	"testing"
	"time"

	"stethoscope/internal/netproto"
	"stethoscope/internal/profiler"
)

func waitUntil(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestE8OnlineStreamDotAndTrace(t *testing.T) {
	ts, err := StartTextual("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	streamer, err := netproto.Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer streamer.Close()

	dotText, traceText := buildFixture(t)
	streamer.Hello("mserver-test")
	streamer.SendDot("plan", dotText)

	waitUntil(t, func() bool {
		for _, addr := range ts.Servers() {
			ss, _ := ts.Server(addr)
			if _, err := ss.Graph(); err == nil {
				return true
			}
		}
		return false
	}, "dot reassembly")

	// Stream trace events through a profiler wired to the UDP sink.
	prof := profiler.New(streamer)
	prof.Begin(0, 0, "sql", "X_0:bat[:int] := sql.bind(\"sys\", \"lineitem\", \"l_partkey\", 0);").End(1, 2, 3)
	prof.Begin(1, 1, "algebra", "X_1:bat[:oid] := algebra.thetaselect(X_0, \"=\", 1);").End(4, 5, 6)

	var addr string
	waitUntil(t, func() bool {
		for _, a := range ts.Servers() {
			ss, _ := ts.Server(a)
			if len(ss.Events()) >= 4 {
				addr = a
				return true
			}
		}
		return false
	}, "trace events")

	ss, _ := ts.Server(addr)
	if ss.ServerName() != "mserver-test" {
		t.Errorf("server name = %q", ss.ServerName())
	}
	// Build a session from the streamed content.
	sess, err := ts.OpenOnlineSession(addr, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Graph.Nodes) != 4 {
		t.Errorf("online session nodes = %d", len(sess.Graph.Nodes))
	}
	// Live coloring runs over the sampling buffer without error.
	_ = ss.LiveColoring()
	_ = traceText
}

func TestE8MultiServerFilter(t *testing.T) {
	ts, err := StartTextual("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	s1, err := netproto.Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := netproto.Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	s1.Hello("server-1")
	s2.Hello("server-2")
	waitUntil(t, func() bool { return len(ts.Servers()) == 2 }, "two servers")

	// Per-server filters: server-1 keeps only done events.
	var s1addr, s2addr string
	for _, a := range ts.Servers() {
		ss, _ := ts.Server(a)
		if ss.ServerName() == "server-1" {
			s1addr = a
		} else {
			s2addr = a
		}
	}
	ss1, _ := ts.Server(s1addr)
	ss1.SetFilter(profiler.Filter{States: []profiler.State{profiler.StateDone}})

	p1 := profiler.New(s1)
	p2 := profiler.New(s2)
	for i := 0; i < 5; i++ {
		p1.Begin(i, 0, "algebra", "a.b();").End(0, 0, 0)
		p2.Begin(i, 0, "algebra", "a.b();").End(0, 0, 0)
	}

	waitUntil(t, func() bool {
		ss2, _ := ts.Server(s2addr)
		return len(ss2.Events()) == 10 && len(ss1.Events()) == 5
	}, "filtered streams")

	for _, e := range ss1.Events() {
		if e.State != profiler.StateDone {
			t.Fatalf("filtered stream leaked %v", e.State)
		}
	}
}

func TestOnEventTee(t *testing.T) {
	ts, err := StartTextual("127.0.0.1:0", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	var mu sync.Mutex
	var teed []profiler.Event
	ts.SetOnEvent(func(addr string, e profiler.Event) {
		mu.Lock()
		teed = append(teed, e)
		mu.Unlock()
	})

	s, err := netproto.Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	prof := profiler.New(s)
	prof.Begin(0, 0, "m", "s();").End(0, 0, 0)

	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(teed) == 2
	}, "teed events")
}

func TestOpenOnlineSessionErrors(t *testing.T) {
	ts, err := StartTextual("127.0.0.1:0", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if _, err := ts.OpenOnlineSession("1.2.3.4:5", SessionOptions{}); err == nil {
		t.Error("unknown server accepted")
	}
}

func TestRingBufferSampling(t *testing.T) {
	ts, err := StartTextual("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	s, err := netproto.Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	prof := profiler.New(s)
	for i := 0; i < 10; i++ {
		prof.Begin(i, 0, "m", "s();").End(0, 0, 0)
	}
	waitUntil(t, func() bool {
		for _, a := range ts.Servers() {
			ss, _ := ts.Server(a)
			if len(ss.Events()) == 20 {
				return true
			}
		}
		return false
	}, "all events")
	for _, a := range ts.Servers() {
		ss, _ := ts.Server(a)
		if got := len(ss.Buffer()); got != 4 {
			t.Errorf("sampling buffer holds %d, want 4 (capacity)", got)
		}
		// Full log retains everything.
		if got := len(ss.Events()); got != 20 {
			t.Errorf("event log holds %d", got)
		}
	}
}
