package core

import (
	"testing"

	"stethoscope/internal/profiler"
)

func ev(state profiler.State, pc int, seq int64) profiler.Event {
	return profiler.Event{Seq: seq, State: state, PC: pc}
}

// TestE5PairElisionPaperExample reproduces the paper's worked example
// verbatim (§4.2.1): buffer {start,1},{done,1},{start,2},{done,2},
// {start,3},{start,4} — "The graph nodes corresponding to first four
// statements will not be colored ... However, the graph node
// corresponding to the fifth instruction with pc=3 will be colored in
// RED."
func TestE5PairElisionPaperExample(t *testing.T) {
	buf := []profiler.Event{
		ev(profiler.StateStart, 1, 0),
		ev(profiler.StateDone, 1, 1),
		ev(profiler.StateStart, 2, 2),
		ev(profiler.StateDone, 2, 3),
		ev(profiler.StateStart, 3, 4),
		ev(profiler.StateStart, 4, 5),
	}
	c := PairElision(buf)
	if c[1] != ColorNone {
		t.Errorf("pc=1 colored %q, want uncolored", c[1])
	}
	if c[2] != ColorNone {
		t.Errorf("pc=2 colored %q, want uncolored", c[2])
	}
	if c[3] != ColorRed {
		t.Errorf("pc=3 colored %q, want RED", c[3])
	}
	// pc=4 is the tail start: its done may simply not have arrived.
	if c[4] != ColorNone {
		t.Errorf("pc=4 colored %q, want uncolored (indeterminate)", c[4])
	}
}

func TestPairElisionLateDoneIsGreen(t *testing.T) {
	// start,5 ... other events ... done,5: pc=5 ran long and finished.
	buf := []profiler.Event{
		ev(profiler.StateStart, 5, 0),
		ev(profiler.StateStart, 6, 1),
		ev(profiler.StateDone, 6, 2),
		ev(profiler.StateDone, 5, 3),
	}
	c := PairElision(buf)
	if c[5] != ColorGreen {
		t.Errorf("pc=5 = %q, want GREEN (late done)", c[5])
	}
	if c[6] != ColorNone {
		t.Errorf("pc=6 = %q, want uncolored (adjacent pair)", c[6])
	}
}

func TestPairElisionEmptyAndSingle(t *testing.T) {
	if c := PairElision(nil); len(c) != 0 {
		t.Errorf("empty buffer colored %v", c)
	}
	c := PairElision([]profiler.Event{ev(profiler.StateStart, 0, 0)})
	if len(c) != 0 {
		t.Errorf("lone tail start colored %v", c)
	}
	c = PairElision([]profiler.Event{ev(profiler.StateDone, 0, 0)})
	if c[0] != ColorGreen {
		t.Errorf("lone done = %q", c[0])
	}
}

func TestPairElisionAllFastPairs(t *testing.T) {
	var buf []profiler.Event
	for pc := 0; pc < 50; pc++ {
		buf = append(buf,
			ev(profiler.StateStart, pc, int64(2*pc)),
			ev(profiler.StateDone, pc, int64(2*pc+1)))
	}
	if c := PairElision(buf); len(c) != 0 {
		t.Errorf("fast trace colored %d nodes", len(c))
	}
}

func TestThresholdColoring(t *testing.T) {
	buf := []profiler.Event{
		{Seq: 0, State: profiler.StateStart, PC: 1, ClkUs: 0},
		{Seq: 1, State: profiler.StateDone, PC: 1, ClkUs: 50, DurUs: 50},
		{Seq: 2, State: profiler.StateStart, PC: 2, ClkUs: 60},
		{Seq: 3, State: profiler.StateDone, PC: 2, ClkUs: 5060, DurUs: 5000},
		{Seq: 4, State: profiler.StateStart, PC: 3, ClkUs: 100},
		// trace ends at clk 5060 with pc=3 still running (elapsed 4960).
	}
	c := Threshold(buf, 1000)
	if c[1] != ColorNone {
		t.Errorf("fast pc=1 = %q", c[1])
	}
	if c[2] != ColorGreen {
		t.Errorf("slow finished pc=2 = %q", c[2])
	}
	if c[3] != ColorRed {
		t.Errorf("long-running pc=3 = %q", c[3])
	}
	// Higher threshold hides the runner.
	c = Threshold(buf, 100000)
	if len(c) != 0 {
		t.Errorf("high threshold colored %v", c)
	}
}

func TestGradientColoring(t *testing.T) {
	buf := []profiler.Event{
		{Seq: 0, State: profiler.StateDone, PC: 1, DurUs: 100},
		{Seq: 1, State: profiler.StateDone, PC: 2, DurUs: 1000},
		{Seq: 2, State: profiler.StateDone, PC: 3, DurUs: 10},
		{Seq: 3, State: profiler.StateStart, PC: 4},
	}
	c, stops := Gradient(buf)
	if len(c) != 3 {
		t.Fatalf("colored %d nodes, want 3 (done only)", len(c))
	}
	if stops[0].PC != 2 || stops[len(stops)-1].PC != 3 {
		t.Errorf("legend order = %v", stops)
	}
	// The slowest is pure red.
	if string(c[2]) != "#ff2626" && string(c[2]) != "#ff2727" {
		// exact value depends on rounding; check red dominance instead
		hex := string(c[2])
		if hex[:3] != "#ff" {
			t.Errorf("slowest color = %s", hex)
		}
	}
	// Faster nodes are lighter (higher green/blue component).
	if string(c[3]) <= string(c[2]) {
		t.Errorf("fast %s not lighter than slow %s", c[3], c[2])
	}
}

func TestColoringFills(t *testing.T) {
	c := Coloring{3: ColorRed, 7: ColorGreen, 9: ColorNone}
	fills := c.Fills()
	if fills["n3"] != string(ColorRed) || fills["n7"] != string(ColorGreen) {
		t.Errorf("fills = %v", fills)
	}
	if _, ok := fills["n9"]; ok {
		t.Error("uncolored pc in fills")
	}
}

// TestPairElisionRandomProperties checks invariants on random traces:
// (1) only pcs present in the buffer are colored; (2) a trace consisting
// solely of adjacent start/done pairs is never colored; (3) colors are
// only RED or GREEN.
func TestPairElisionRandomProperties(t *testing.T) {
	rnd := func(seed int64) func() int64 {
		s := uint64(seed)
		return func() int64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int64(s % 97)
		}
	}
	next := rnd(42)
	for trial := 0; trial < 50; trial++ {
		var buf []profiler.Event
		present := map[int]bool{}
		n := int(next()%40) + 1
		for i := 0; i < n; i++ {
			pc := int(next() % 20)
			st := profiler.StateStart
			if next()%2 == 0 {
				st = profiler.StateDone
			}
			buf = append(buf, profiler.Event{Seq: int64(i), State: st, PC: pc})
			present[pc] = true
		}
		c := PairElision(buf)
		for pc, color := range c {
			if !present[pc] {
				t.Fatalf("trial %d: colored absent pc %d", trial, pc)
			}
			if color != ColorRed && color != ColorGreen {
				t.Fatalf("trial %d: invalid color %q", trial, color)
			}
		}
	}
	// Purely paired traces stay uncolored regardless of pc sequence.
	next = rnd(7)
	for trial := 0; trial < 20; trial++ {
		var buf []profiler.Event
		for i := 0; i < int(next()%30)+1; i++ {
			pc := int(next() % 50)
			buf = append(buf,
				profiler.Event{Seq: int64(2 * i), State: profiler.StateStart, PC: pc},
				profiler.Event{Seq: int64(2*i + 1), State: profiler.StateDone, PC: pc})
		}
		if c := PairElision(buf); len(c) != 0 {
			t.Fatalf("trial %d: paired trace colored %v", trial, c)
		}
	}
}

// TestThresholdMonotonicity: raising the threshold can only shrink the
// colored set.
func TestThresholdMonotonicity(t *testing.T) {
	var buf []profiler.Event
	clk := int64(0)
	for i := 0; i < 30; i++ {
		dur := int64((i * 37) % 1000)
		buf = append(buf,
			profiler.Event{Seq: int64(2 * i), State: profiler.StateStart, PC: i, ClkUs: clk})
		clk += dur
		buf = append(buf,
			profiler.Event{Seq: int64(2*i + 1), State: profiler.StateDone, PC: i, ClkUs: clk, DurUs: dur})
	}
	prev := Threshold(buf, 0)
	for _, th := range []int64{100, 300, 500, 900, 2000} {
		cur := Threshold(buf, th)
		for pc := range cur {
			if _, ok := prev[pc]; !ok {
				t.Fatalf("threshold %d colored pc %d that lower threshold missed", th, pc)
			}
		}
		if len(cur) > len(prev) {
			t.Fatalf("threshold %d colored more (%d) than lower threshold (%d)", th, len(cur), len(prev))
		}
		prev = cur
	}
}
