package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"stethoscope/internal/dot"
	"stethoscope/internal/netproto"
	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
)

// ServerStream is the per-server state of the textual Stethoscope: the
// dot file under reassembly, the sampled event buffer, and the full
// event log (the redirected "trace file" of §4.2).
type ServerStream struct {
	Addr string

	mu        sync.Mutex
	name      string
	dotLines  []string
	dotName   string
	dotDone   bool
	events    []profiler.Event
	ring      *profiler.RingBuffer
	filter    profiler.Filter
	graph     *dot.Graph
	dotErr    error
	dotSeen   int
	eventSeen int
}

// ServerName returns the name the server announced with HELO, if any.
func (ss *ServerStream) ServerName() string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.name
}

// Graph returns the reassembled plan graph once the dot stream
// completed.
func (ss *ServerStream) Graph() (*dot.Graph, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if !ss.dotDone {
		return nil, fmt.Errorf("core: dot file for %s not complete", ss.Addr)
	}
	return ss.graph, ss.dotErr
}

// Events returns the accumulated trace.
func (ss *ServerStream) Events() []profiler.Event {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]profiler.Event(nil), ss.events...)
}

// Buffer returns the sampling ring's current window — the input of the
// online coloring algorithm.
func (ss *ServerStream) Buffer() []profiler.Event {
	return ss.ring.Snapshot()
}

// Store builds a trace store over everything received so far.
func (ss *ServerStream) Store() *trace.Store {
	return trace.FromEvents(ss.Events())
}

// LiveColoring runs pair-elision over the sampling buffer, the §4.2.1
// online path.
func (ss *ServerStream) LiveColoring() Coloring {
	return PairElision(ss.Buffer())
}

// SetFilter installs a client-side display filter on this stream.
func (ss *ServerStream) SetFilter(f profiler.Filter) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.filter = f
}

// Counts reports how many dot lines and events arrived (monitoring and
// tests).
func (ss *ServerStream) Counts() (dotLines, events int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.dotSeen, ss.eventSeen
}

// TextualStethoscope is the UDP-listening client of §3.2: "It uses a UDP
// socket interface to connect to MonetDB server, for receiving the
// MonetDB execution trace. The textual Stethoscope can connect to
// multiple MonetDB servers at the same time to receive execution traces
// from all (distributed) sources. Its filter options allow for selective
// tracing of execution states on each of the connected servers."
type TextualStethoscope struct {
	listener *netproto.Listener
	// stop releases the context watcher when the stethoscope is closed
	// before its context is canceled.
	stop     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	servers map[string]*ServerStream
	ringCap int
	onEvent func(addr string, e profiler.Event)
}

// SetOnEvent installs an observer called for every accepted event — the
// tee that redirects the online stream into a trace file, as the §4.2
// workflow describes. Safe to call while traffic flows.
func (ts *TextualStethoscope) SetOnEvent(fn func(addr string, e profiler.Event)) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.onEvent = fn
}

// StartTextual binds the UDP listener ("127.0.0.1:0" picks a free port).
// ringCap is the per-server sampling buffer capacity.
func StartTextual(addr string, ringCap int) (*TextualStethoscope, error) {
	return StartTextualContext(context.Background(), addr, ringCap)
}

// StartTextualContext is StartTextual bounded by a context: when ctx is
// canceled the UDP listener shuts down and no further events are
// accepted. Streams received so far remain readable.
func StartTextualContext(ctx context.Context, addr string, ringCap int) (*TextualStethoscope, error) {
	if ringCap <= 0 {
		ringCap = 1024
	}
	ts := &TextualStethoscope{
		servers: map[string]*ServerStream{},
		ringCap: ringCap,
		stop:    make(chan struct{}),
	}
	l, err := netproto.Listen(addr, ts.handle)
	if err != nil {
		return nil, err
	}
	ts.listener = l
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				l.Close()
			case <-ts.stop:
			}
		}()
	}
	return ts, nil
}

// Addr returns the UDP address servers should stream to.
func (ts *TextualStethoscope) Addr() string { return ts.listener.Addr() }

// Close stops the listener and releases the context watcher.
func (ts *TextualStethoscope) Close() error {
	ts.stopOnce.Do(func() { close(ts.stop) })
	return ts.listener.Close()
}

// Servers lists the source addresses seen so far.
func (ts *TextualStethoscope) Servers() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]string, 0, len(ts.servers))
	for a := range ts.servers {
		out = append(out, a)
	}
	return out
}

// Server returns the stream state for one source.
func (ts *TextualStethoscope) Server(addr string) (*ServerStream, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ss, ok := ts.servers[addr]
	return ss, ok
}

func (ts *TextualStethoscope) stream(addr string) *ServerStream {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ss, ok := ts.servers[addr]
	if !ok {
		ss = &ServerStream{Addr: addr, ring: profiler.NewRingBuffer(ts.ringCap)}
		ts.servers[addr] = ss
	}
	return ss
}

// handle is the monitoring thread of §4.2: it demultiplexes dot-file
// content from trace content arriving on the same UDP stream.
func (ts *TextualStethoscope) handle(from string, m netproto.Msg) {
	ss := ts.stream(from)
	switch m.Kind {
	case netproto.MsgHello:
		ss.mu.Lock()
		ss.name = m.Payload
		ss.mu.Unlock()
	case netproto.MsgDotBegin:
		ss.mu.Lock()
		ss.dotName = m.Payload
		ss.dotLines = ss.dotLines[:0]
		ss.dotDone = false
		ss.graph = nil
		ss.dotErr = nil
		ss.mu.Unlock()
	case netproto.MsgDotLine:
		ss.mu.Lock()
		ss.dotLines = append(ss.dotLines, m.Payload)
		ss.dotSeen++
		ss.mu.Unlock()
	case netproto.MsgDotEnd:
		ss.mu.Lock()
		text := strings.Join(ss.dotLines, "\n")
		g, err := dot.Parse(text)
		ss.graph, ss.dotErr = g, err
		ss.dotDone = true
		ss.mu.Unlock()
	case netproto.MsgEvent:
		e, err := profiler.UnmarshalEvent(m.Payload)
		if err != nil {
			return
		}
		ss.mu.Lock()
		pass := ss.filter.Pass(e, moduleOf(e.Stmt))
		if pass {
			ss.events = append(ss.events, e)
			ss.eventSeen++
		}
		ss.mu.Unlock()
		ts.mu.Lock()
		onEvent := ts.onEvent
		ts.mu.Unlock()
		if pass {
			ss.ring.Emit(e)
			if onEvent != nil {
				onEvent(from, e)
			}
		}
	}
}

// OpenOnlineSession builds a Session from a completed server stream:
// graph from the streamed dot file, trace from the events so far. The
// live coloring can then be applied on top via LiveColoring().Fills().
func (ts *TextualStethoscope) OpenOnlineSession(addr string, opt SessionOptions) (*Session, error) {
	ss, ok := ts.Server(addr)
	if !ok {
		return nil, fmt.Errorf("core: unknown server %s", addr)
	}
	g, err := ss.Graph()
	if err != nil {
		return nil, err
	}
	return NewSession(g, ss.Store(), opt)
}
