package core

import (
	"strings"
	"testing"
	"time"

	"stethoscope/internal/dot"
	"stethoscope/internal/mal"
	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
)

// buildFixture produces a small plan's dot text and a matching trace.
func buildFixture(t testing.TB) (string, string) {
	t.Helper()
	p := mal.NewPlan("select l_tax from lineitem where l_partkey=1")
	col := p.Emit1("sql", "bind", mal.TBATInt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("lineitem")), mal.ConstOf(mal.Str("l_partkey")), mal.ConstOf(mal.Int64(0)))
	sel := p.Emit1("algebra", "thetaselect", mal.TBATOID,
		mal.VarArg(col), mal.ConstOf(mal.Str("=")), mal.ConstOf(mal.Int64(1)))
	tax := p.Emit1("sql", "bind", mal.TBATFlt,
		mal.ConstOf(mal.Str("sys")), mal.ConstOf(mal.Str("lineitem")), mal.ConstOf(mal.Str("l_tax")), mal.ConstOf(mal.Int64(0)))
	p.Emit1("algebra", "leftjoin", mal.TBATFlt, mal.VarArg(sel), mal.VarArg(tax))

	g := dot.Export(p)
	var tb strings.Builder
	clk := int64(0)
	seq := int64(0)
	for _, in := range p.Instrs {
		stmt := p.StmtString(in)
		dur := int64(100 * (in.PC + 1))
		start := profiler.Event{Seq: seq, State: profiler.StateStart, PC: in.PC, Thread: in.PC % 2, ClkUs: clk, Stmt: stmt}
		seq++
		clk += dur
		done := profiler.Event{Seq: seq, State: profiler.StateDone, PC: in.PC, Thread: in.PC % 2, ClkUs: clk, DurUs: dur, RSSKB: 8, Reads: 100, Writes: 50, Stmt: stmt}
		seq++
		tb.WriteString(start.Marshal() + "\n" + done.Marshal() + "\n")
	}
	return g.Marshal(), tb.String()
}

func openFixture(t testing.TB) *Session {
	t.Helper()
	dotText, traceText := buildFixture(t)
	s, err := OpenOffline(dotText, traceText, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenOfflinePipeline(t *testing.T) {
	s := openFixture(t)
	if len(s.Graph.Nodes) != 4 {
		t.Errorf("graph nodes = %d", len(s.Graph.Nodes))
	}
	// Glyph accounting: 2 glyphs per node + edges.
	if got := len(s.Space.Glyphs()); got != 2*4+len(s.Graph.Edges) {
		t.Errorf("glyphs = %d", got)
	}
	if !s.Mapping.Complete() {
		t.Errorf("mapping incomplete: %+v", s.Mapping)
	}
	if s.Trace.Len() != 8 {
		t.Errorf("trace len = %d", s.Trace.Len())
	}
}

func TestOpenOfflineErrors(t *testing.T) {
	if _, err := OpenOffline("not dot", "", SessionOptions{}); err == nil {
		t.Error("bad dot accepted")
	}
	dotText, _ := buildFixture(t)
	if _, err := OpenOffline(dotText, "bad trace line", SessionOptions{}); err == nil {
		t.Error("bad trace accepted")
	}
}

func TestE9ReplayControls(t *testing.T) {
	s := openFixture(t)
	r := s.Replay
	now := time.Unix(0, 0)

	// Step-by-step walk-through.
	e, ok := r.Step(now)
	if !ok || e.Seq != 0 {
		t.Fatalf("step 1 = %+v", e)
	}
	s.Queue.Flush(now.Add(time.Second))
	if c := s.Space.NodeColor("n0"); c != string(ColorRed) {
		t.Errorf("n0 after start = %q", c)
	}
	r.Step(now)
	s.Queue.Flush(now.Add(2 * time.Second))
	if c := s.Space.NodeColor("n0"); c != string(ColorGreen) {
		t.Errorf("n0 after done = %q", c)
	}

	// Fast-forward to the end: everything green.
	r.FastForward(100)
	if r.Position() != r.Len() {
		t.Fatalf("position = %d", r.Position())
	}
	for pc := 0; pc < 4; pc++ {
		if c := s.Space.NodeColor(dot.NodeID(pc)); c != string(ColorGreen) {
			t.Errorf("n%d after ffwd = %q", pc, c)
		}
	}

	// Rewind into the middle: n1 should be RED (its start applied, done
	// not yet).
	r.Rewind(5) // position 3: events 0,1,2 applied => n0 green, n1 red
	if r.Position() != 3 {
		t.Fatalf("position after rewind = %d", r.Position())
	}
	if c := s.Space.NodeColor("n1"); c != string(ColorRed) {
		t.Errorf("n1 after rewind = %q", c)
	}
	if c := s.Space.NodeColor("n3"); c != "" {
		t.Errorf("n3 after rewind = %q, want uncolored", c)
	}

	// Pause gates Tick.
	r.Pause()
	if n := r.Tick(now, 10); n != 0 {
		t.Errorf("paused tick applied %d", n)
	}
	r.Play()
	if n := r.Tick(now, 2); n != 2 {
		t.Errorf("tick applied %d", n)
	}

	// Seek.
	if err := r.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	if err := r.SeekTo(999); err == nil {
		t.Error("out-of-range seek accepted")
	}
}

func TestColorBetween(t *testing.T) {
	s := openFixture(t)
	// The full trace is all adjacent pairs: pair-elision colors nothing.
	c, err := s.Replay.ColorBetween(0, s.Trace.Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 0 {
		t.Errorf("fast trace colored %v", c)
	}
	// A window splitting a pair: [1, 4) = done0, start1, done1 —
	// done0 is a lone done (green); start1/done1 pair elided.
	c, err = s.Replay.ColorBetween(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != ColorGreen {
		t.Errorf("window coloring = %v", c)
	}
	if _, err := s.Replay.ColorBetween(5, 2); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestRenderSVGCarriesColors(t *testing.T) {
	s := openFixture(t)
	s.Replay.FastForward(3) // n0 green, n1 red
	out, err := s.RenderSVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, string(ColorGreen)) || !strings.Contains(out, string(ColorRed)) {
		t.Error("rendered svg missing state colors")
	}
}

func TestNavigateTo(t *testing.T) {
	s := openFixture(t)
	if err := s.NavigateTo(2, 800, 200); err != nil {
		t.Fatal(err)
	}
	if !s.Animator.Active() {
		t.Fatal("no animation queued")
	}
	for s.Animator.Tick(16) {
	}
	g := s.Space.NodeGlyphs("n2")[0]
	if s.Camera.CX != g.CenterX() || s.Camera.CY != g.CenterY() {
		t.Errorf("camera at (%g,%g), want glyph center (%g,%g)",
			s.Camera.CX, s.Camera.CY, g.CenterX(), g.CenterY())
	}
	if err := s.NavigateTo(99, 800, 100); err == nil {
		t.Error("navigation to unknown pc accepted")
	}
}

func TestPickTooltip(t *testing.T) {
	s := openFixture(t)
	g := s.Space.NodeGlyphs("n1")[0]
	tip, ok := s.PickTooltip(g.CenterX(), g.CenterY())
	if !ok {
		t.Fatal("no tooltip")
	}
	if !strings.Contains(tip, "pc=1") || !strings.Contains(tip, "thetaselect") {
		t.Errorf("tooltip = %q", tip)
	}
	if _, ok := s.PickTooltip(-9999, -9999); ok {
		t.Error("tooltip in empty space")
	}
}

func TestTooltipAndDebug(t *testing.T) {
	s := openFixture(t)
	tip := Tooltip(s.Trace, 2)
	if !strings.Contains(tip, "done in 300us") {
		t.Errorf("tooltip = %q", tip)
	}
	if !strings.Contains(Tooltip(s.Trace, 42), "no trace events") {
		t.Error("missing-pc tooltip wrong")
	}
	d := Debug(s.Trace, 2)
	if !d.Done || d.DurUs != 300 || len(d.Events) != 2 {
		t.Errorf("debug = %+v", d)
	}
	// Running instruction tooltip.
	st := trace.FromEvents([]profiler.Event{
		{Seq: 0, State: profiler.StateStart, PC: 0, ClkUs: 5, Stmt: "x"},
	})
	if !strings.Contains(Tooltip(st, 0), "still running") {
		t.Error("running tooltip wrong")
	}
}

func TestSessionViewNavigation(t *testing.T) {
	s := openFixture(t)
	nav := s.View(800, 600)
	// The overview shows every node.
	if got := len(nav.Visible()); got != len(s.Graph.Nodes) {
		t.Errorf("overview shows %d of %d nodes", got, len(s.Graph.Nodes))
	}
	// Zoom to a node and render the view.
	if !nav.ZoomToNode("n1", 0.5) {
		t.Fatal("zoom failed")
	}
	out, err := s.RenderViewSVG(nil, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `id="n1"`) {
		t.Error("focused node missing from view render")
	}
	// Replay colors show up in the view too.
	s.Replay.FastForward(2)
	out, err = s.RenderViewSVG(nil, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, string(ColorGreen)) {
		t.Error("view render missing replay colors")
	}
}
