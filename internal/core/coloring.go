// Package core implements Stethoscope itself: the interactive visual
// analysis platform of the paper. It ties the substrates together —
// dot/layout/svg for the plan graph, zvtm for glyphs and navigation,
// trace/profiler for execution data, netproto for the online stream —
// and adds the paper's contributions: execution-state coloring (§4.2.1),
// trace replay with fast-forward/rewind/pause, birds-eye clustering,
// per-thread utilization analysis, tooltips and the debug window, and
// the online textual Stethoscope.
package core

import (
	"fmt"
	"sort"

	"stethoscope/internal/profiler"
)

// Color is a node execution-state color.
type Color string

// The paper's palette: "A node is colored RED or GREEN based on the
// instruction status of 'start' or 'done' respectively."
const (
	ColorNone  Color = ""
	ColorRed   Color = "#e03131" // running / long-running (start)
	ColorGreen Color = "#2f9e44" // completed (done)
)

// Coloring maps program counters to their display colors. Absent pcs are
// uncolored.
type Coloring map[int]Color

// PairElision implements the paper's §4.2.1 online coloring algorithm
// over an event buffer: "Most instructions in the execution trace occur
// in sequence of pairs of 'start' and 'done' events. A consecutive
// 'start' and 'done' event status for the same instruction, with presence
// of more instructions afterwards, indicates that the instruction under
// analysis executed in least time. Hence, it is not a costly instruction.
// All such instructions are not colored. An instruction which does not
// appear in a sequence of pairs of 'start' and 'done' event is colored."
//
// Concretely, scanning the buffer in order:
//   - a start immediately followed by the same instruction's done is an
//     adjacent pair: elided (not colored);
//   - a start NOT immediately followed by its done, with at least one
//     later event, marks a long-running instruction: colored RED (this is
//     the paper's worked example, where pc=3 turns red);
//   - a start that is the buffer's final event is indeterminate — its
//     done may simply not have arrived — and stays uncolored;
//   - a done whose start was displaced earlier in the buffer means the
//     instruction finished after running long: colored GREEN.
func PairElision(events []profiler.Event) Coloring {
	out := Coloring{}
	n := len(events)
	for i := 0; i < n; i++ {
		e := events[i]
		switch e.State {
		case profiler.StateStart:
			if i+1 < n && events[i+1].State == profiler.StateDone && events[i+1].PC == e.PC {
				// Adjacent pair: fast instruction, elided.
				i++
				continue
			}
			if i == n-1 {
				// Tail start: indeterminate, leave uncolored.
				continue
			}
			out[e.PC] = ColorRed
		case profiler.StateDone:
			// A done reached outside an adjacent pair: the instruction ran
			// long enough for other events to interleave.
			out[e.PC] = ColorGreen
		}
	}
	return out
}

// Threshold implements the paper's second algorithm: "another algorithm
// which allows the user to specify an instruction execution threshold
// time." Instructions whose measured duration is at least thresholdUs are
// colored GREEN (finished, costly); instructions still running at the end
// of the buffer whose elapsed time already exceeds the threshold are
// colored RED.
func Threshold(events []profiler.Event, thresholdUs int64) Coloring {
	out := Coloring{}
	startClk := map[int]int64{}
	done := map[int]bool{}
	var lastClk int64
	for _, e := range events {
		if e.ClkUs > lastClk {
			lastClk = e.ClkUs
		}
		switch e.State {
		case profiler.StateStart:
			startClk[e.PC] = e.ClkUs
		case profiler.StateDone:
			done[e.PC] = true
			if e.DurUs >= thresholdUs {
				out[e.PC] = ColorGreen
			}
		}
	}
	for pc, clk := range startClk {
		if done[pc] {
			continue
		}
		if lastClk-clk >= thresholdUs {
			out[pc] = ColorRed
		}
	}
	return out
}

// GradientStop is one entry of a gradient legend.
type GradientStop struct {
	PC    int
	DurUs int64
	Hex   string
}

// Gradient implements the paper's future-work feature (§6): "gradient
// coloring of graph nodes to display a range of execution times."
// Completed instructions are colored on a white-to-red ramp scaled by
// the slowest instruction in the buffer. It returns the per-pc colors
// and a legend sorted by decreasing duration.
func Gradient(events []profiler.Event) (Coloring, []GradientStop) {
	dur := map[int]int64{}
	var max int64
	for _, e := range events {
		if e.State == profiler.StateDone {
			dur[e.PC] += e.DurUs
			if dur[e.PC] > max {
				max = dur[e.PC]
			}
		}
	}
	out := Coloring{}
	var stops []GradientStop
	for pc, d := range dur {
		f := 0.0
		if max > 0 {
			f = float64(d) / float64(max)
		}
		hex := rampHex(f)
		out[pc] = Color(hex)
		stops = append(stops, GradientStop{PC: pc, DurUs: d, Hex: hex})
	}
	sort.Slice(stops, func(i, j int) bool {
		if stops[i].DurUs != stops[j].DurUs {
			return stops[i].DurUs > stops[j].DurUs
		}
		return stops[i].PC < stops[j].PC
	})
	return out, stops
}

// rampHex interpolates white (f=0) to red (f=1).
func rampHex(f float64) string {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	g := int(255 * (1 - f*0.85))
	return fmt.Sprintf("#ff%02x%02x", g, g)
}

// Fills converts a coloring to the node-fill map consumed by the svg
// renderer, using the paper's nN node-id convention.
func (c Coloring) Fills() map[string]string {
	out := make(map[string]string, len(c))
	for pc, color := range c {
		if color != ColorNone {
			out[fmt.Sprintf("n%d", pc)] = string(color)
		}
	}
	return out
}
