package core

import (
	"strings"
	"testing"

	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
)

func microTrace() *trace.Store {
	mk := func(seq int64, state profiler.State, pc, th int, clk, dur, rss, reads, writes int64, mod string) profiler.Event {
		return profiler.Event{Seq: seq, State: state, PC: pc, Thread: th, ClkUs: clk,
			DurUs: dur, RSSKB: rss, Reads: reads, Writes: writes,
			Stmt: "X_1 := " + mod + ".op(X_0);"}
	}
	return trace.FromEvents([]profiler.Event{
		mk(0, profiler.StateStart, 0, 0, 0, 0, 0, 0, 0, "sql"),
		mk(1, profiler.StateDone, 0, 0, 100, 100, 64, 1000, 1000, "sql"),
		mk(2, profiler.StateStart, 1, 1, 100, 0, 0, 0, 0, "algebra"),
		mk(3, profiler.StateDone, 1, 1, 1000, 900, 8, 1000, 10, "algebra"),
		mk(4, profiler.StateStart, 2, 0, 1000, 0, 0, 0, 0, "algebra"),
		mk(5, profiler.StateDone, 2, 0, 1100, 100, 4, 10, 10, "algebra"),
	})
}

func TestModuleBreakdown(t *testing.T) {
	stats := ModuleBreakdown(microTrace())
	if len(stats) != 2 {
		t.Fatalf("modules = %d", len(stats))
	}
	// algebra (1000us) dominates sql (100us).
	if stats[0].Module != "algebra" || stats[0].BusyUs != 1000 || stats[0].Calls != 2 {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	if stats[1].Module != "sql" || stats[1].BusyUs != 100 {
		t.Errorf("stats[1] = %+v", stats[1])
	}
	wantShare := 1000.0 / 1100.0
	if d := stats[0].Share - wantShare; d > 1e-9 || d < -1e-9 {
		t.Errorf("share = %g, want %g", stats[0].Share, wantShare)
	}
	if stats[0].Reads != 1010 || stats[0].Writes != 20 {
		t.Errorf("algebra io = %d/%d", stats[0].Reads, stats[0].Writes)
	}
}

func TestMemoryTimelineCumulative(t *testing.T) {
	pts := MemoryTimeline(microTrace(), 4)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Monotone non-decreasing cumulative rss, ending at 64+8+4.
	var prev int64 = -1
	for _, p := range pts {
		if p.RSSKB < prev {
			t.Fatalf("timeline not monotone: %v", pts)
		}
		prev = p.RSSKB
	}
	if pts[len(pts)-1].RSSKB != 76 {
		t.Errorf("final rss = %d, want 76", pts[len(pts)-1].RSSKB)
	}
	if MemoryTimeline(trace.FromEvents(nil), 4) != nil {
		t.Error("empty trace timeline not nil")
	}
	if MemoryTimeline(microTrace(), 0) != nil {
		t.Error("zero buckets timeline not nil")
	}
}

func TestThreadTimeline(t *testing.T) {
	tl := ThreadTimeline(microTrace())
	if len(tl) != 2 {
		t.Fatalf("threads = %d", len(tl))
	}
	t0 := tl[0]
	if len(t0) != 2 {
		t.Fatalf("thread 0 segments = %d", len(t0))
	}
	// Ordered by start time.
	if t0[0].FromUs != 0 || t0[0].ToUs != 100 || t0[0].PC != 0 {
		t.Errorf("segment = %+v", t0[0])
	}
	if t0[1].FromUs != 1000 || t0[1].PC != 2 {
		t.Errorf("segment = %+v", t0[1])
	}
	t1 := tl[1]
	if len(t1) != 1 || t1[0].FromUs != 100 || t1[0].ToUs != 1000 {
		t.Errorf("thread 1 = %+v", t1)
	}
}

func TestThreadTimelineDoneWithoutStart(t *testing.T) {
	st := trace.FromEvents([]profiler.Event{
		{Seq: 0, State: profiler.StateDone, PC: 5, Thread: 2, ClkUs: 500, DurUs: 200, Stmt: "a.b();"},
	})
	tl := ThreadTimeline(st)
	segs := tl[2]
	if len(segs) != 1 || segs[0].FromUs != 300 || segs[0].ToUs != 500 {
		t.Errorf("synthesized segment = %+v", segs)
	}
}

func TestDataFlowProfile(t *testing.T) {
	flows := DataFlowProfile(microTrace())
	if len(flows) != 3 {
		t.Fatalf("flows = %d", len(flows))
	}
	// Sorted by reads descending; pc 0 and 1 both read 1000, ties by pc.
	if flows[0].PC != 0 || flows[1].PC != 1 || flows[2].PC != 2 {
		t.Errorf("order = %v", flows)
	}
	// Selectivity of the selection at pc=1: 10/1000.
	if d := flows[1].Selectivity - 0.01; d > 1e-9 || d < -1e-9 {
		t.Errorf("selectivity = %g", flows[1].Selectivity)
	}
}

func TestMicroReport(t *testing.T) {
	rep := MicroReport(microTrace())
	for _, want := range []string{"module breakdown", "algebra", "top data flows", "thread timelines", "thread 0"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
