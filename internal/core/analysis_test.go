package core

import (
	"testing"

	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
)

func utilTrace(threads int, perThreadBusyUs int64) *trace.Store {
	var events []profiler.Event
	seq := int64(0)
	for th := 0; th < threads; th++ {
		stmt := "X_0 := algebra.select(X_1);"
		events = append(events,
			profiler.Event{Seq: seq, State: profiler.StateStart, PC: th, Thread: th, ClkUs: 0, Stmt: stmt},
			profiler.Event{Seq: seq + 1, State: profiler.StateDone, PC: th, Thread: th, ClkUs: perThreadBusyUs, DurUs: perThreadBusyUs, Stmt: stmt})
		seq += 2
	}
	return trace.FromEvents(events)
}

func TestUtilizeParallel(t *testing.T) {
	// 4 threads each busy 1000us over a 1000us span: parallelism 4.
	u := Utilize(utilTrace(4, 1000))
	if u.Threads != 4 {
		t.Errorf("threads = %d", u.Threads)
	}
	if u.SpanUs != 1000 {
		t.Errorf("span = %d", u.SpanUs)
	}
	if u.Parallelism < 3.9 || u.Parallelism > 4.1 {
		t.Errorf("parallelism = %g", u.Parallelism)
	}
	if u.BusyUs[2] != 1000 {
		t.Errorf("thread 2 busy = %d", u.BusyUs[2])
	}
}

func TestUtilizeSequential(t *testing.T) {
	// One thread executing back-to-back.
	events := []profiler.Event{
		{Seq: 0, State: profiler.StateStart, PC: 0, Thread: 0, ClkUs: 0},
		{Seq: 1, State: profiler.StateDone, PC: 0, Thread: 0, ClkUs: 500, DurUs: 500},
		{Seq: 2, State: profiler.StateStart, PC: 1, Thread: 0, ClkUs: 500},
		{Seq: 3, State: profiler.StateDone, PC: 1, Thread: 0, ClkUs: 1000, DurUs: 500},
	}
	u := Utilize(trace.FromEvents(events))
	if u.Threads != 1 {
		t.Errorf("threads = %d", u.Threads)
	}
	if u.Parallelism < 0.9 || u.Parallelism > 1.1 {
		t.Errorf("parallelism = %g", u.Parallelism)
	}
}

func TestE7SequentialAnomaly(t *testing.T) {
	seq := Utilize(utilTrace(1, 1000))
	par := Utilize(utilTrace(4, 1000))
	if !SequentialAnomaly(seq, 4) {
		t.Error("sequential run not flagged")
	}
	if SequentialAnomaly(par, 4) {
		t.Error("parallel run flagged")
	}
	if SequentialAnomaly(seq, 1) {
		t.Error("expected-sequential run flagged")
	}
}

func TestUtilizationString(t *testing.T) {
	s := Utilize(utilTrace(2, 100)).String()
	if s == "" || !contains(s, "threads=2") {
		t.Errorf("report = %q", s)
	}
}

func TestUtilizeEmpty(t *testing.T) {
	u := Utilize(trace.FromEvents(nil))
	if u.Threads != 0 || u.SpanUs != 0 || u.Parallelism != 0 {
		t.Errorf("empty utilization = %+v", u)
	}
}

func TestBirdsEyeClustering(t *testing.T) {
	var events []profiler.Event
	seq := int64(0)
	add := func(module string, n int, dur int64) {
		for i := 0; i < n; i++ {
			stmt := "X_1 := " + module + ".op(X_0);"
			events = append(events,
				profiler.Event{Seq: seq, State: profiler.StateStart, PC: int(seq / 2), Stmt: stmt},
				profiler.Event{Seq: seq + 1, State: profiler.StateDone, PC: int(seq / 2), DurUs: dur, Stmt: stmt})
			seq += 2
		}
	}
	add("sql", 10, 10)      // phase 1: binds
	add("algebra", 10, 100) // phase 2: selections
	add("aggr", 10, 50)     // phase 3: aggregation

	clusters := BirdsEye(trace.FromEvents(events), 3)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	want := []string{"sql", "algebra", "aggr"}
	for i, c := range clusters {
		if c.Module != want[i] {
			t.Errorf("cluster %d module = %q, want %q", i, c.Module, want[i])
		}
		if c.Events != 20 {
			t.Errorf("cluster %d events = %d", i, c.Events)
		}
	}
	// Monotone seq ranges.
	for i := 1; i < len(clusters); i++ {
		if clusters[i].FromSeq <= clusters[i-1].ToSeq-1 && clusters[i].FromSeq < clusters[i-1].FromSeq {
			t.Error("cluster ranges overlap")
		}
	}
}

func TestBirdsEyeDegenerate(t *testing.T) {
	if c := BirdsEye(trace.FromEvents(nil), 5); c != nil {
		t.Errorf("empty trace clusters = %v", c)
	}
	st := trace.FromEvents([]profiler.Event{{Seq: 0, State: profiler.StateDone, DurUs: 5, Stmt: "a.b();"}})
	if c := BirdsEye(st, 10); len(c) != 1 {
		t.Errorf("one-event clustering = %v", c)
	}
	if c := BirdsEye(st, 0); c != nil {
		t.Errorf("zero buckets = %v", c)
	}
}

func TestTopCostly(t *testing.T) {
	events := []profiler.Event{
		{Seq: 0, State: profiler.StateDone, PC: 1, DurUs: 100, Stmt: "fast"},
		{Seq: 1, State: profiler.StateDone, PC: 2, DurUs: 9000, Stmt: "slow"},
		{Seq: 2, State: profiler.StateDone, PC: 3, DurUs: 500, Stmt: "mid"},
		{Seq: 3, State: profiler.StateStart, PC: 4, Stmt: "running"},
	}
	top := TopCostly(trace.FromEvents(events), 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].PC != 2 || top[1].PC != 3 {
		t.Errorf("order = %v", top)
	}
	all := TopCostly(trace.FromEvents(events), 0)
	if len(all) != 3 {
		t.Errorf("unlimited top = %d", len(all))
	}
}

func TestModuleOf(t *testing.T) {
	cases := map[string]string{
		"X_3:bat[:oid] := algebra.select(X_1);": "algebra",
		"sql.exportResult(X_9);":                "sql",
		"(X_1, X_2) := group.subgroup(X_0);":    "group",
		"weird":                                 "",
	}
	for stmt, want := range cases {
		if got := moduleOf(stmt); got != want {
			t.Errorf("moduleOf(%q) = %q, want %q", stmt, got, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
