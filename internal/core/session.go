package core

import (
	"fmt"
	"time"

	"stethoscope/internal/dot"
	"stethoscope/internal/layout"
	"stethoscope/internal/svg"
	"stethoscope/internal/trace"
	"stethoscope/internal/zvtm"
)

// Session is one analysis window: the plan graph with its layout, the
// glyph space observed through a camera, the trace with its pc-to-node
// mapping, and a replay controller. Offline mode opens a session from a
// pre-existing dot file and trace file (paper §4.1); online mode builds
// the same structure from streamed content (§4.2).
type Session struct {
	Graph   *dot.Graph
	Layout  *layout.Layout
	Space   *zvtm.VirtualSpace
	Camera  *zvtm.Camera
	Queue   *zvtm.RenderQueue
	Trace   *trace.Store
	Mapping trace.Mapping
	Replay  *Replay
	// Animator drives camera transitions for the navigation features.
	Animator *zvtm.Animator
}

// SessionOptions tunes session construction.
type SessionOptions struct {
	// DispatchDelay is the render queue's per-node latency; zero selects
	// the paper's 150 ms.
	DispatchDelay time.Duration
	// Layout overrides the default layout geometry.
	Layout layout.Options
}

// OpenOffline builds a session from dot-file and trace-file content, the
// offline workflow of §4: parse dot → layout → intermediate svg → parse
// svg → in-memory glyph structure, then index the trace and map pcs to
// nodes.
func OpenOffline(dotText, traceText string, opt SessionOptions) (*Session, error) {
	g, err := dot.Parse(dotText)
	if err != nil {
		return nil, fmt.Errorf("core: dot file: %w", err)
	}
	st, err := trace.LoadString(traceText)
	if err != nil {
		return nil, fmt.Errorf("core: trace file: %w", err)
	}
	return newSession(g, st, opt)
}

// NewSession builds a session from already-parsed components (the online
// mode's path once the dot stream completes).
func NewSession(g *dot.Graph, st *trace.Store, opt SessionOptions) (*Session, error) {
	return newSession(g, st, opt)
}

func newSession(g *dot.Graph, st *trace.Store, opt SessionOptions) (*Session, error) {
	layOpt := opt.Layout
	if layOpt.Sweeps == 0 {
		layOpt = layout.DefaultOptions()
	}
	lay, err := layout.Compute(g, layOpt)
	if err != nil {
		return nil, fmt.Errorf("core: layout: %w", err)
	}
	// The paper's pipeline goes through an intermediate svg that is
	// parsed back; reproducing that exactly keeps the glyph geometry
	// identical to what a file-based exchange would produce.
	rendered, err := svg.RenderString(g, lay, nil, svg.DefaultStyle())
	if err != nil {
		return nil, fmt.Errorf("core: svg render: %w", err)
	}
	doc, err := svg.ParseString(rendered)
	if err != nil {
		return nil, fmt.Errorf("core: svg parse: %w", err)
	}
	vs, err := zvtm.FromSVG(g.Name, doc)
	if err != nil {
		return nil, fmt.Errorf("core: glyphs: %w", err)
	}
	queue := zvtm.NewRenderQueue(vs, opt.DispatchDelay)
	s := &Session{
		Graph:    g,
		Layout:   lay,
		Space:    vs,
		Camera:   &zvtm.Camera{CX: doc.Width / 2, CY: doc.Height / 2},
		Queue:    queue,
		Trace:    st,
		Mapping:  trace.MapToGraph(st, g),
		Animator: &zvtm.Animator{},
	}
	s.Replay = NewReplay(st, vs, queue)
	return s, nil
}

// Fills returns the current node-fill map of the glyph space for
// rendering (colored nodes only).
func (s *Session) Fills() map[string]string {
	out := map[string]string{}
	for _, id := range s.Space.NodeIDs() {
		if c := s.Space.NodeColor(id); c != "" {
			out[id] = c
		}
	}
	return out
}

// RenderSVG renders the current display state (graph + colors) as SVG —
// the reproduction's "display window" (Figure 4).
func (s *Session) RenderSVG() (string, error) {
	return svg.RenderString(s.Graph, s.Layout, s.Fills(), svg.DefaultStyle())
}

// NavigateTo animates the camera to center on an instruction's node, the
// "interactive animated navigation in complex query plans" feature.
// durMs is the transition time.
func (s *Session) NavigateTo(pc int, viewW float64, durMs float64) error {
	id := dot.NodeID(pc)
	glyphs := s.Space.NodeGlyphs(id)
	if len(glyphs) == 0 {
		return fmt.Errorf("core: no node for pc=%d", pc)
	}
	g := glyphs[0]
	// Target altitude: node at 40% of viewport width.
	target := &zvtm.Camera{}
	target.CenterOnGlyph(g, viewW, 0.4)
	s.Animator.AnimateCameraTo(s.Camera, target.CX, target.CY, target.Alt, durMs)
	return nil
}

// PickTooltip returns the tooltip for the node under a world coordinate,
// if any.
func (s *Session) PickTooltip(x, y float64) (string, bool) {
	id, ok := s.Space.PickNode(x, y)
	if !ok {
		return "", false
	}
	pc, ok := dot.PCOf(id)
	if !ok {
		return "", false
	}
	return Tooltip(s.Trace, pc), true
}

// View creates a navigation controller over the session's glyph space
// for a viewport of the given pixel size — the interactive window
// (keyboard/scroll navigation, zoom-to-node, viewport-culled rendering).
func (s *Session) View(viewW, viewH float64) *zvtm.NavController {
	nav := zvtm.NewNavController(s.Space, viewW, viewH)
	nav.Cam = s.Camera // share the session camera so animations apply
	nav.FitToView()
	return nav
}

// RenderViewSVG renders the camera's current view (with optional
// fisheye lens) — the zoomed/lensed display window, as opposed to
// RenderSVG's full-plan poster.
func (s *Session) RenderViewSVG(lens *zvtm.FisheyeLens, viewW, viewH float64) (string, error) {
	return zvtm.RenderViewString(s.Space, s.Camera, lens, viewW, viewH)
}
