package svg

import (
	"strings"
	"testing"

	"stethoscope/internal/dot"
	"stethoscope/internal/layout"
)

func renderSample(t testing.TB, fills map[string]string) (string, *dot.Graph, *layout.Layout) {
	t.Helper()
	g := dot.NewGraph("sample")
	g.AddNode("n0", map[string]string{"label": "X_0 := sql.bind();"})
	g.AddNode("n1", map[string]string{"label": "X_1 := algebra.select(X_0);"})
	g.AddEdge("n0", "n1", nil)
	lay, err := layout.Compute(g, layout.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderString(g, lay, fills, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	return out, g, lay
}

func TestRenderContainsNodesAndEdges(t *testing.T) {
	out, _, _ := renderSample(t, nil)
	for _, want := range []string{`id="n0"`, `id="n1"`, "<line", "<rect", "<text"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if !strings.HasPrefix(out, "<svg") {
		t.Error("not an svg document")
	}
}

func TestRenderFillOverride(t *testing.T) {
	out, _, _ := renderSample(t, map[string]string{"n0": "#ff0000"})
	if !strings.Contains(out, `fill="#ff0000"`) {
		t.Error("fill override not applied")
	}
}

func TestParseRoundTrip(t *testing.T) {
	out, g, lay := renderSample(t, map[string]string{"n1": "#00ff00"})
	doc, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != len(g.Nodes) {
		t.Fatalf("parsed %d nodes, want %d", len(doc.Nodes), len(g.Nodes))
	}
	if len(doc.Edges) != len(g.Edges) {
		t.Fatalf("parsed %d edges, want %d", len(doc.Edges), len(g.Edges))
	}
	n1 := doc.Nodes["n1"]
	if n1 == nil {
		t.Fatal("n1 missing")
	}
	if n1.Fill != "#00ff00" {
		t.Errorf("n1 fill = %q", n1.Fill)
	}
	// Geometry survives within the 8px padding offset.
	want := lay.Positions["n1"]
	if n1.W != want.W || n1.H != want.H {
		t.Errorf("n1 box = %gx%g, want %gx%g", n1.W, n1.H, want.W, want.H)
	}
	if n1.X != want.X+8 || n1.Y != want.Y+8 {
		t.Errorf("n1 at (%g,%g), want (%g,%g)", n1.X, n1.Y, want.X+8, want.Y+8)
	}
	if n1.Label == "" {
		t.Error("n1 label lost")
	}
}

func TestLabelEscaping(t *testing.T) {
	g := dot.NewGraph("esc")
	g.AddNode("n0", map[string]string{"label": `a < b & "c"`})
	lay, err := layout.Compute(g, layout.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderString(g, lay, nil, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseString(out)
	if err != nil {
		t.Fatalf("escaped svg unparseable: %v", err)
	}
	if !strings.Contains(doc.Nodes["n0"].Label, "<") {
		t.Errorf("label = %q", doc.Nodes["n0"].Label)
	}
}

func TestTruncateLongLabels(t *testing.T) {
	g := dot.NewGraph("long")
	long := strings.Repeat("abcdefgh", 50)
	g.AddNode("n0", map[string]string{"label": long})
	lay, err := layout.Compute(g, layout.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderString(g, lay, nil, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes["n0"].Label) >= len(long) {
		t.Error("long label not truncated")
	}
	if !strings.HasSuffix(doc.Nodes["n0"].Label, "…") {
		t.Errorf("truncation marker missing: %q", doc.Nodes["n0"].Label)
	}
}

func TestRenderErrorOnMissingLayout(t *testing.T) {
	g := dot.NewGraph("bad")
	g.AddNode("n0", nil)
	empty := &layout.Layout{Positions: map[string]layout.Rect{}}
	var b strings.Builder
	if err := Render(&b, g, empty, nil, DefaultStyle()); err == nil {
		t.Error("missing layout accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseString("<svg><unclosed"); err == nil {
		t.Error("malformed xml accepted")
	}
}

func TestEmptyGraphRenders(t *testing.T) {
	g := dot.NewGraph("empty")
	lay, _ := layout.Compute(g, layout.DefaultOptions())
	out, err := RenderString(g, lay, nil, DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 0 || len(doc.Edges) != 0 {
		t.Error("phantom content in empty render")
	}
}
