// Package svg implements the SVG stage of Stethoscope's workflow. The
// paper (§4): "As a first step the dot file gets parsed and an
// intermediate scalar vector graphics (svg) representation gets created.
// In the next step, the svg file gets parsed and an in memory graph
// structure gets created." Render produces the intermediate SVG from a
// laid-out graph (with per-node fill colors for execution-state display),
// and Parse reads that SVG subset back into an in-memory form the zvtm
// glyph builder consumes.
package svg

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"stethoscope/internal/dot"
	"stethoscope/internal/layout"
)

// Style selects rendering colors.
type Style struct {
	Background string
	NodeFill   string // default fill when no per-node color is given
	NodeStroke string
	EdgeStroke string
	TextColor  string
	FontSize   float64
}

// DefaultStyle matches a plain dot rendering.
func DefaultStyle() Style {
	return Style{
		Background: "#ffffff",
		NodeFill:   "#f2f2f2",
		NodeStroke: "#333333",
		EdgeStroke: "#888888",
		TextColor:  "#111111",
		FontSize:   11,
	}
}

// Render writes the laid-out graph as SVG. fills optionally overrides the
// fill color per node ID — Stethoscope's RED/GREEN execution states.
func Render(w io.Writer, g *dot.Graph, lay *layout.Layout, fills map[string]string, style Style) error {
	if style.FontSize == 0 {
		style = DefaultStyle()
	}
	pad := 8.0
	width := lay.Width + 2*pad
	height := lay.Height + 2*pad
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="%s"/>`+"\n", width, height, style.Background)

	// Edges first so nodes draw on top.
	fmt.Fprintf(w, `<g class="edges" stroke="%s">`+"\n", style.EdgeStroke)
	for _, e := range g.Edges {
		f, okF := lay.Positions[e.From]
		t, okT := lay.Positions[e.To]
		if !okF || !okT {
			return fmt.Errorf("svg: edge endpoint not laid out: %s -> %s", e.From, e.To)
		}
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
			f.CenterX()+pad, f.Y+f.H+pad, t.CenterX()+pad, t.Y+pad)
	}
	fmt.Fprintln(w, "</g>")

	fmt.Fprintln(w, `<g class="nodes">`)
	// Deterministic order.
	nodes := append([]*dot.Node(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		r, ok := lay.Positions[n.ID]
		if !ok {
			return fmt.Errorf("svg: node %s not laid out", n.ID)
		}
		fill := style.NodeFill
		if f, ok := fills[n.ID]; ok && f != "" {
			fill = f
		}
		fmt.Fprintf(w, `<g id="%s" class="node">`+"\n", xmlEscape(n.ID))
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s"/>`+"\n",
			r.X+pad, r.Y+pad, r.W, r.H, fill, style.NodeStroke)
		label := n.Label()
		if label == "" {
			label = n.ID
		}
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="%.0f" fill="%s" text-anchor="middle">%s</text>`+"\n",
			r.CenterX()+pad, r.CenterY()+pad+style.FontSize/3, style.FontSize, style.TextColor,
			xmlEscape(truncateLabel(label, r.W, style.FontSize)))
		fmt.Fprintln(w, "</g>")
	}
	fmt.Fprintln(w, "</g>")
	fmt.Fprintln(w, "</svg>")
	return nil
}

// RenderString is Render into a string.
func RenderString(g *dot.Graph, lay *layout.Layout, fills map[string]string, style Style) (string, error) {
	var b strings.Builder
	if err := Render(&b, g, lay, fills, style); err != nil {
		return "", err
	}
	return b.String(), nil
}

// truncateLabel shortens a label to roughly fit its box.
func truncateLabel(s string, w, fontSize float64) string {
	maxChars := int(w / (fontSize * 0.62))
	if maxChars < 4 {
		maxChars = 4
	}
	if len(s) <= maxChars {
		return s
	}
	return s[:maxChars-1] + "…"
}

func xmlEscape(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

// Doc is the parsed form of a rendered SVG: the in-memory structure the
// glyph builder consumes.
type Doc struct {
	Width  float64
	Height float64
	Nodes  map[string]*NodeBox
	Edges  []Line
}

// NodeBox is a parsed node group: its rectangle, fill and label text.
type NodeBox struct {
	ID    string
	X, Y  float64
	W, H  float64
	Fill  string
	Label string
}

// Line is a parsed edge segment.
type Line struct {
	X1, Y1, X2, Y2 float64
}

// Parse reads SVG produced by Render back into a Doc.
func Parse(r io.Reader) (*Doc, error) {
	dec := xml.NewDecoder(r)
	doc := &Doc{Nodes: map[string]*NodeBox{}}
	var current *NodeBox
	depthInNode := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("svg: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			attrs := attrMap(t.Attr)
			switch t.Name.Local {
			case "svg":
				doc.Width = num(attrs["width"])
				doc.Height = num(attrs["height"])
			case "g":
				if attrs["class"] == "node" {
					current = &NodeBox{ID: attrs["id"]}
					depthInNode = 1
				} else if current != nil {
					depthInNode++
				}
			case "rect":
				if current != nil {
					current.X = num(attrs["x"])
					current.Y = num(attrs["y"])
					current.W = num(attrs["width"])
					current.H = num(attrs["height"])
					current.Fill = attrs["fill"]
				}
			case "line":
				doc.Edges = append(doc.Edges, Line{
					X1: num(attrs["x1"]), Y1: num(attrs["y1"]),
					X2: num(attrs["x2"]), Y2: num(attrs["y2"]),
				})
			case "text":
				if current != nil {
					var label strings.Builder
					for {
						inner, err := dec.Token()
						if err != nil {
							return nil, fmt.Errorf("svg: %w", err)
						}
						if cd, ok := inner.(xml.CharData); ok {
							label.Write(cd)
							continue
						}
						if end, ok := inner.(xml.EndElement); ok && end.Name.Local == "text" {
							break
						}
					}
					current.Label = label.String()
				}
			}
		case xml.EndElement:
			if t.Name.Local == "g" && current != nil {
				depthInNode--
				if depthInNode == 0 {
					doc.Nodes[current.ID] = current
					current = nil
				}
			}
		}
	}
	return doc, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Doc, error) { return Parse(strings.NewReader(s)) }

func attrMap(attrs []xml.Attr) map[string]string {
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Name.Local] = a.Value
	}
	return m
}

func num(s string) float64 {
	var f float64
	fmt.Sscanf(s, "%f", &f)
	return f
}
