package ascii

import (
	"strings"
	"testing"

	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/layout"
)

func sampleLayout(t testing.TB) (*dot.Graph, *layout.Layout) {
	t.Helper()
	g := dot.NewGraph("sample")
	g.AddNode("n0", map[string]string{"label": "bind"})
	g.AddNode("n1", map[string]string{"label": "select"})
	g.AddNode("n2", map[string]string{"label": "bind2"})
	g.AddEdge("n0", "n1", nil)
	g.AddEdge("n2", "n1", nil)
	lay, err := layout.Compute(g, layout.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g, lay
}

func TestRenderGraphPlain(t *testing.T) {
	g, lay := sampleLayout(t)
	out := RenderGraph(g, lay, nil, DefaultOptions())
	for _, want := range []string{"[n0 ]", "[n1 ]", "[n2 ]", "3 nodes, 2 edges"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Two ranks: n0 and n2 on rank 0, n1 on rank 1.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "r00") || !strings.HasPrefix(lines[1], "r01") {
		t.Errorf("rank lines:\n%s", out)
	}
	if !strings.Contains(lines[0], "n0") || !strings.Contains(lines[0], "n2") {
		t.Errorf("rank 0 = %q", lines[0])
	}
}

func TestRenderGraphStateMarkers(t *testing.T) {
	g, lay := sampleLayout(t)
	fills := map[string]string{
		"n0": string(core.ColorGreen),
		"n1": string(core.ColorRed),
	}
	out := RenderGraph(g, lay, fills, DefaultOptions())
	if !strings.Contains(out, "[n0+]") {
		t.Errorf("done marker missing:\n%s", out)
	}
	if !strings.Contains(out, "[n1*]") {
		t.Errorf("running marker missing:\n%s", out)
	}
}

func TestRenderGraphANSI(t *testing.T) {
	g, lay := sampleLayout(t)
	fills := map[string]string{"n1": string(core.ColorRed)}
	out := RenderGraph(g, lay, fills, Options{Width: 100, ANSI: true})
	if !strings.Contains(out, "\x1b[41") || !strings.Contains(out, "\x1b[0m") {
		t.Errorf("no ANSI escapes:\n%q", out)
	}
}

func TestRenderGraphEmpty(t *testing.T) {
	g := dot.NewGraph("empty")
	lay, _ := layout.Compute(g, layout.DefaultOptions())
	if out := RenderGraph(g, lay, nil, DefaultOptions()); !strings.Contains(out, "empty") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderGraphNarrowWidthClamped(t *testing.T) {
	g, lay := sampleLayout(t)
	out := RenderGraph(g, lay, nil, Options{Width: 1})
	if out == "" {
		t.Fatal("no output at clamped width")
	}
}

func TestRenderUtilization(t *testing.T) {
	u := core.Utilization{
		BusyUs:      map[int]int64{0: 1000, 1: 500, 3: 0},
		SpanUs:      1100,
		Parallelism: 1.36,
		Threads:     3,
	}
	out := RenderUtilization(u, DefaultOptions())
	if !strings.Contains(out, "thread  0") || !strings.Contains(out, "thread  3") {
		t.Errorf("threads missing:\n%s", out)
	}
	// Busiest thread has the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	bar0 := strings.Count(lines[1], "#")
	bar1 := strings.Count(lines[2], "#")
	if bar0 <= bar1 {
		t.Errorf("bar lengths %d <= %d:\n%s", bar0, bar1, out)
	}
	// Empty utilization renders header only.
	if out := RenderUtilization(core.Utilization{}, DefaultOptions()); !strings.Contains(out, "0 threads") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderBirdsEye(t *testing.T) {
	clusters := []core.Cluster{
		{FromSeq: 0, ToSeq: 9, Events: 10, BusyUs: 100, Module: "sql"},
		{FromSeq: 10, ToSeq: 19, Events: 10, BusyUs: 900, Module: "algebra"},
	}
	out := RenderBirdsEye(clusters, DefaultOptions())
	if !strings.Contains(out, "sql") || !strings.Contains(out, "algebra") {
		t.Errorf("modules missing:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") {
		t.Errorf("percentages missing:\n%s", out)
	}
	if out := RenderBirdsEye(nil, DefaultOptions()); !strings.Contains(out, "empty") {
		t.Errorf("empty birds-eye = %q", out)
	}
}

func TestRenderCostly(t *testing.T) {
	items := []core.CostlyInstr{
		{PC: 5, DurUs: 9000, Stmt: "X_5 := algebra.join(X_1, X_2);"},
		{PC: 2, DurUs: 100, Stmt: strings.Repeat("long ", 100)},
	}
	out := RenderCostly(items, DefaultOptions())
	if !strings.Contains(out, "pc=5") || !strings.Contains(out, "9000us") {
		t.Errorf("costly table:\n%s", out)
	}
	// Long statements truncate.
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 130 {
			t.Errorf("line too long: %d chars", len(line))
		}
	}
	if out := RenderCostly(nil, DefaultOptions()); !strings.Contains(out, "no completed") {
		t.Errorf("empty costly = %q", out)
	}
}

func TestRenderGantt(t *testing.T) {
	timeline := map[int][]core.Segment{
		0: {{Thread: 0, PC: 0, FromUs: 0, ToUs: 500}, {Thread: 0, PC: 2, FromUs: 600, ToUs: 1000}},
		1: {{Thread: 1, PC: 1, FromUs: 100, ToUs: 900}},
	}
	out := RenderGantt(timeline, DefaultOptions())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "thread  0") || !strings.Contains(lines[0], "#") {
		t.Errorf("thread 0 row = %q", lines[0])
	}
	// Thread 0 has a gap between its segments.
	if !strings.Contains(lines[0], ".") {
		t.Errorf("no idle gap in row: %q", lines[0])
	}
	if out := RenderGantt(nil, DefaultOptions()); !strings.Contains(out, "no segments") {
		t.Errorf("empty gantt = %q", out)
	}
}

func TestRenderMemoryTimeline(t *testing.T) {
	pts := []core.MemPoint{{ClkUs: 100, RSSKB: 10}, {ClkUs: 200, RSSKB: 100}}
	out := RenderMemoryTimeline(pts, DefaultOptions())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") <= strings.Count(lines[0], "#") {
		t.Error("larger rss should have longer bar")
	}
	if out := RenderMemoryTimeline(nil, DefaultOptions()); !strings.Contains(out, "no memory") {
		t.Errorf("empty timeline = %q", out)
	}
}
