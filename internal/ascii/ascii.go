// Package ascii renders Stethoscope's display surfaces for terminals: the
// plan graph with execution-state colors (the reproduction's stand-in for
// the paper's Figure 4 display window), per-thread utilization bars, and
// the birds-eye trace strip. ANSI color output is optional so tests and
// files get plain text.
package ascii

import (
	"fmt"
	"sort"
	"strings"

	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/layout"
)

// Options controls rendering.
type Options struct {
	Width int  // target character width (minimum 40)
	ANSI  bool // emit ANSI color escapes
}

// DefaultOptions renders 100 columns wide without color.
func DefaultOptions() Options { return Options{Width: 100} }

// ansiFor maps a fill color to an ANSI escape. The Stethoscope palette is
// red/green; gradient hexes map to red intensity.
func ansiFor(hex string) string {
	switch {
	case hex == "":
		return ""
	case hex == string(core.ColorRed):
		return "\x1b[41;97m" // red background
	case hex == string(core.ColorGreen):
		return "\x1b[42;97m" // green background
	case strings.HasPrefix(hex, "#ff"):
		return "\x1b[101;30m" // bright red-ish (gradient)
	default:
		return "\x1b[47;30m"
	}
}

const ansiReset = "\x1b[0m"

// marker returns a one-character state marker for plain output: start
// (red) '*', done (green) '+', uncolored ' '.
func marker(hex string) byte {
	switch hex {
	case "":
		return ' '
	case string(core.ColorRed):
		return '*'
	case string(core.ColorGreen):
		return '+'
	default:
		return '~'
	}
}

// RenderGraph draws the laid-out graph rank by rank. Each node renders
// as [id|m] where m is its state marker; horizontal placement follows the
// layout proportionally, so the picture preserves the plan's shape.
func RenderGraph(g *dot.Graph, lay *layout.Layout, fills map[string]string, opt Options) string {
	if opt.Width < 40 {
		opt.Width = 40
	}
	if lay.Width <= 0 || len(lay.Order) == 0 {
		return "(empty plan)\n"
	}
	var b strings.Builder
	scale := float64(opt.Width-2) / lay.Width
	for r, row := range lay.Order {
		line := make([]byte, opt.Width)
		for i := range line {
			line[i] = ' '
		}
		type span struct {
			at    int
			token string
			fill  string
		}
		var spans []span
		for _, id := range row {
			rect := lay.Positions[id]
			token := "[" + id + string(marker(fills[id])) + "]"
			at := int(rect.CenterX()*scale) - len(token)/2
			if at < 0 {
				at = 0
			}
			if at+len(token) > opt.Width {
				at = opt.Width - len(token)
			}
			spans = append(spans, span{at: at, token: token, fill: fills[id]})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].at < spans[j].at })
		// Resolve collisions by pushing right.
		cursor := 0
		for i := range spans {
			if spans[i].at < cursor {
				spans[i].at = cursor
			}
			cursor = spans[i].at + len(spans[i].token) + 1
		}
		// Plain placement first.
		for _, s := range spans {
			if s.at+len(s.token) <= len(line) {
				copy(line[s.at:], s.token)
			}
		}
		if opt.ANSI {
			// Re-emit with color escapes.
			var colored strings.Builder
			last := 0
			for _, s := range spans {
				if s.at+len(s.token) > len(line) {
					continue
				}
				colored.WriteString(string(line[last:s.at]))
				if esc := ansiFor(s.fill); esc != "" {
					colored.WriteString(esc)
					colored.WriteString(s.token)
					colored.WriteString(ansiReset)
				} else {
					colored.WriteString(s.token)
				}
				last = s.at + len(s.token)
			}
			colored.WriteString(strings.TrimRight(string(line[last:]), " "))
			fmt.Fprintf(&b, "r%02d %s\n", r, colored.String())
		} else {
			fmt.Fprintf(&b, "r%02d %s\n", r, strings.TrimRight(string(line), " "))
		}
	}
	fmt.Fprintf(&b, "(%d nodes, %d edges; * running, + done)\n", len(g.Nodes), len(g.Edges))
	return b.String()
}

// RenderUtilization draws per-thread busy-time bars — the online demo's
// multi-core utilization view.
func RenderUtilization(u core.Utilization, opt Options) string {
	if opt.Width < 40 {
		opt.Width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "span %dus, %d threads, parallelism %.2f\n", u.SpanUs, u.Threads, u.Parallelism)
	if len(u.BusyUs) == 0 {
		return b.String()
	}
	threads := make([]int, 0, len(u.BusyUs))
	var max int64
	for t, busy := range u.BusyUs {
		threads = append(threads, t)
		if busy > max {
			max = busy
		}
	}
	sort.Ints(threads)
	barW := opt.Width - 24
	for _, t := range threads {
		busy := u.BusyUs[t]
		n := 0
		if max > 0 {
			n = int(int64(barW) * busy / max)
		}
		fmt.Fprintf(&b, "thread %2d %8dus %s\n", t, busy, strings.Repeat("#", n))
	}
	return b.String()
}

// RenderBirdsEye draws the trace clustering strip: one segment per
// cluster labeled with its dominant module.
func RenderBirdsEye(clusters []core.Cluster, opt Options) string {
	if len(clusters) == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder
	var totalBusy int64
	for _, c := range clusters {
		totalBusy += c.BusyUs
	}
	for i, c := range clusters {
		frac := 0.0
		if totalBusy > 0 {
			frac = float64(c.BusyUs) / float64(totalBusy)
		}
		fmt.Fprintf(&b, "seg %2d seq[%d..%d] %4d events %8dus %5.1f%% %s\n",
			i, c.FromSeq, c.ToSeq, c.Events, c.BusyUs, frac*100, c.Module)
	}
	return b.String()
}

// RenderCostly draws the costly-instruction table.
func RenderCostly(items []core.CostlyInstr, opt Options) string {
	if len(items) == 0 {
		return "(no completed instructions)\n"
	}
	var b strings.Builder
	for i, it := range items {
		stmt := it.Stmt
		if max := opt.Width - 24; max > 10 && len(stmt) > max {
			stmt = stmt[:max-1] + "…"
		}
		fmt.Fprintf(&b, "%2d. pc=%-5d %8dus  %s\n", i+1, it.PC, it.DurUs, stmt)
	}
	return b.String()
}

// RenderGantt draws the per-thread execution segments as a time-scaled
// Gantt chart: one row per thread, '#' runs for busy intervals. The data
// comes from core.ThreadTimeline.
func RenderGantt(timeline map[int][]core.Segment, opt Options) string {
	if opt.Width < 40 {
		opt.Width = 40
	}
	if len(timeline) == 0 {
		return "(no segments)\n"
	}
	var maxUs int64
	threads := make([]int, 0, len(timeline))
	for th, segs := range timeline {
		threads = append(threads, th)
		for _, s := range segs {
			if s.ToUs > maxUs {
				maxUs = s.ToUs
			}
		}
	}
	sort.Ints(threads)
	if maxUs == 0 {
		maxUs = 1
	}
	barW := opt.Width - 12
	var b strings.Builder
	for _, th := range threads {
		row := make([]byte, barW)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range timeline[th] {
			lo := int(s.FromUs * int64(barW) / maxUs)
			hi := int(s.ToUs * int64(barW) / maxUs)
			if hi == lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < barW; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "thread %2d |%s|\n", th, string(row))
	}
	fmt.Fprintf(&b, "          0%sus\n", strings.Repeat(" ", barW-len(fmt.Sprint(maxUs)))+fmt.Sprint(maxUs))
	return b.String()
}

// RenderMemoryTimeline draws the cumulative rss curve as a bar series.
func RenderMemoryTimeline(pts []core.MemPoint, opt Options) string {
	if len(pts) == 0 {
		return "(no memory samples)\n"
	}
	if opt.Width < 40 {
		opt.Width = 40
	}
	var max int64
	for _, p := range pts {
		if p.RSSKB > max {
			max = p.RSSKB
		}
	}
	if max == 0 {
		max = 1
	}
	barW := opt.Width - 28
	var b strings.Builder
	for _, p := range pts {
		n := int(p.RSSKB * int64(barW) / max)
		fmt.Fprintf(&b, "clk %10dus %8dKB %s\n", p.ClkUs, p.RSSKB, strings.Repeat("#", n))
	}
	return b.String()
}
