// Package metrics is the engine-wide observability substrate: named,
// typed, always-on metrics with an allocation-free hot path. The paper
// observes query execution through per-run traces; this package is the
// complementary whole-process view — counters, gauges, and fixed-bucket
// latency histograms that the scheduler, the morsel cursor, the plan
// cache, the stores, and the server all feed while serving, cheap
// enough to leave on in production.
//
// Concurrency contract: every mutation (Counter.Inc/Add, Gauge.Set/Add/
// SetMax, Histogram.Observe, Rate.Add) is a handful of atomic operations
// on pre-registered cells — no locks, no allocation, no map lookups.
// The registry's mutex guards only registration and snapshotting, which
// are off the hot path. Snapshots are taken metric-by-metric with atomic
// loads: a snapshot is internally consistent per metric (a histogram's
// buckets are read in one sweep and its count recomputed from them, so
// bucket sums never exceed the reported count) but not across metrics —
// two counters incremented together may differ by in-flight updates.
// That is the standard Prometheus exposition contract.
//
// Nil-safety: all mutating and reading methods are no-ops (or zero) on
// nil receivers, so components can be instrumented unconditionally and
// wired to a registry only where one exists — an un-instrumented
// plancache or Batcher pays a nil check per update and nothing else.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a programming error; they are applied
// as-is, keeping Add branch-free).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, with a high-water helper.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to n if n is larger — the high-water-mark
// update (deque depth, in-flight peaks). Lock-free CAS loop.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBucketsUs is the fixed bucket layout the engine's
// latency histograms use: microsecond upper bounds in a roughly
// logarithmic ladder from 10µs to 10s. Fixed buckets keep Observe
// allocation-free and snapshots mergeable across processes.
var DefaultLatencyBucketsUs = []int64{
	10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000,
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative in
// snapshots (Prometheus convention); Observe is one binary search plus
// three atomic adds.
type Histogram struct {
	bounds []int64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// snapshotInto appends the histogram's cumulative buckets.
func (h *Histogram) snapshot() (buckets []Bucket, count, sum int64) {
	buckets = make([]Bucket, 0, len(h.bounds)+1)
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		upper := int64(math.MaxInt64)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		buckets = append(buckets, Bucket{Upper: upper, Count: cum})
	}
	return buckets, cum, h.sum.Load()
}

// Kind tags a snapshot sample.
type Kind int

// Sample kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Bucket is one cumulative histogram bucket; Upper == math.MaxInt64 is
// the +Inf bucket.
type Bucket struct {
	Upper int64
	Count int64
}

// Sample is one metric's point-in-time value.
type Sample struct {
	// Name is the registered name, which may carry a fixed label set in
	// Prometheus syntax, e.g. `stetho_engine_worker_instructions_total{worker="3"}`.
	Name string
	Kind Kind
	// Value holds counters and gauges.
	Value int64
	// Count, Sum, and Buckets hold histograms.
	Count   int64
	Sum     int64
	Buckets []Bucket
}

// Snapshot is a point-in-time view of a registry, sorted by name.
type Snapshot []Sample

// Get returns the named sample.
func (s Snapshot) Get(name string) (Sample, bool) {
	for _, m := range s {
		if m.Name == name {
			return m, true
		}
	}
	return Sample{}, false
}

// Value returns the named counter/gauge value, 0 when absent.
func (s Snapshot) Value(name string) int64 {
	m, _ := s.Get(name)
	return m.Value
}

// metric is a registered entry.
type metric struct {
	kind Kind
	c    *Counter
	g    *Gauge
	gf   func() int64
	h    *Histogram
}

// Registry is a named set of metrics. Registration (Counter, Gauge,
// Histogram, GaugeFunc) is get-or-create and idempotent per name;
// re-registering a name as a different kind panics, naming the clash —
// metric names are program constants, so a clash is a programming
// error, not input. All registration and snapshot methods are safe for
// concurrent use; the returned cells are the lock-free hot-path
// handles.
type Registry struct {
	mu sync.Mutex
	m  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]*metric{}}
}

func (r *Registry) get(name string, kind Kind) *metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.m[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &metric{kind: kind}
	r.m[name] = e
	return e
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	e := r.get(name, KindCounter)
	if e == nil {
		return nil
	}
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	e := r.get(name, KindGauge)
	if e == nil {
		return nil
	}
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// GaugeFunc registers a gauge sampled by calling fn at snapshot time —
// for values another component already tracks (cache occupancy,
// in-flight runs) that would be redundant to mirror on the hot path.
// Later registrations under the same name replace the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	e := r.get(name, KindGauge)
	if e == nil {
		return
	}
	e.gf = fn
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given upper bounds on first use (nil bounds select
// DefaultLatencyBucketsUs). Bounds are fixed at creation; subsequent
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	e := r.get(name, KindHistogram)
	if e == nil {
		return nil
	}
	if e.h == nil {
		if bounds == nil {
			bounds = DefaultLatencyBucketsUs
		}
		e.h = newHistogram(bounds)
	}
	return e.h
}

// Snapshot returns every registered metric's current value, sorted by
// name. See the package comment for the consistency contract.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	entries := make([]*metric, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		entries = append(entries, r.m[n])
	}
	r.mu.Unlock()

	out := make(Snapshot, 0, len(names))
	for i, n := range names {
		e := entries[i]
		s := Sample{Name: n, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = e.c.Load()
		case KindGauge:
			if e.gf != nil {
				s.Value = e.gf()
			} else {
				s.Value = e.g.Load()
			}
		case KindHistogram:
			s.Buckets, s.Count, s.Sum = e.h.snapshot()
		}
		out = append(out, s)
	}
	return out
}

// baseName strips a fixed label set off a registered name:
// `x_total{worker="3"}` -> `x_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labeledName splits a registered name into base and the label braces
// (including them), for exposition lines that append suffixes before
// the labels (histogram _bucket lines).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (text/plain; version 0.0.4): one # TYPE line per metric family
// (label variants of one base name share a family), histogram
// _bucket/_sum/_count expansion with le labels, +Inf spelled out.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var lastFamily string
	for _, s := range snap {
		family := baseName(s.Name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, s.Kind); err != nil {
				return err
			}
			lastFamily = family
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, s.Value); err != nil {
				return err
			}
		case KindHistogram:
			base, labels := splitLabels(s.Name)
			for _, b := range s.Buckets {
				le := "+Inf"
				if b.Upper != math.MaxInt64 {
					le = fmt.Sprintf("%d", b.Upper)
				}
				lbl := fmt.Sprintf(`{le="%s"}`, le)
				if labels != "" {
					lbl = labels[:len(labels)-1] + fmt.Sprintf(`,le="%s"}`, le)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, lbl, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, s.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
