package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("c_total"); same != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Load(); got != 11 {
		t.Fatalf("SetMax = %d, want 11", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rate *Rate
	var reg *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(5)
	rate.Add(1)
	if c.Load() != 0 || g.Load() != 0 || rate.PerSec() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if reg.Counter("x") != nil || reg.Snapshot() != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("name")
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	m, ok := s.Get("lat_us")
	if !ok || m.Kind != KindHistogram {
		t.Fatalf("snapshot missing histogram: %+v", s)
	}
	if m.Count != 6 || m.Sum != 5+10+11+99+100+5000 {
		t.Fatalf("count=%d sum=%d", m.Count, m.Sum)
	}
	want := []Bucket{{10, 2}, {100, 5}, {1000, 5}, {math.MaxInt64, 6}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", m.Buckets)
	}
	for i, b := range want {
		if m.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, m.Buckets[i], b)
		}
	}
}

func TestSnapshotSortedAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a").Set(1)
	r.GaugeFunc("z_len", func() int64 { return 42 })
	s := r.Snapshot()
	var names []string
	for _, m := range s {
		names = append(names, m.Name)
	}
	if strings.Join(names, ",") != "a,b_total,z_len" {
		t.Fatalf("snapshot order = %v", names)
	}
	if s.Value("z_len") != 42 {
		t.Fatalf("GaugeFunc value = %d", s.Value("z_len"))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("stetho_x_total").Add(3)
	r.Counter(`stetho_worker_total{worker="0"}`).Add(1)
	r.Counter(`stetho_worker_total{worker="1"}`).Add(2)
	r.Histogram("stetho_lat_us", []int64{100}).Observe(50)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stetho_x_total counter\nstetho_x_total 3\n",
		"# TYPE stetho_worker_total counter\n",
		`stetho_worker_total{worker="0"} 1`,
		`stetho_worker_total{worker="1"} 2`,
		`stetho_lat_us_bucket{le="100"} 1`,
		`stetho_lat_us_bucket{le="+Inf"} 1`,
		"stetho_lat_us_sum 50",
		"stetho_lat_us_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, not per label variant.
	if strings.Count(out, "# TYPE stetho_worker_total") != 1 {
		t.Fatalf("label variants must share one TYPE line:\n%s", out)
	}
}

func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h_us", nil)
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.SetMax(int64(w*1000 + i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	s := r.Snapshot()
	m, _ := s.Get("h_us")
	if m.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", m.Count)
	}
	if g.Load() != 7999 {
		t.Fatalf("gauge high-water = %d, want 7999", g.Load())
	}
}

func TestRateWindowed(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	r := NewRate(10 * time.Second)
	r.SetClock(func() time.Time { return now })

	// A burst long ago must not dilute (or inflate) the current reading.
	r.Add(500)
	now = now.Add(2 * time.Hour)
	if got := r.PerSec(); got != 0 {
		t.Fatalf("rate after 2h idle = %g, want 0 (lifetime averaging would report >0)", got)
	}

	// A fresh burst reports against the window, not the lifetime.
	r.Add(100)
	got := r.PerSec()
	if got < 9 || got > 11 {
		t.Fatalf("rate after fresh 100-event burst = %g, want ~10/s over the 10s window", got)
	}

	// Events age out of the window.
	now = now.Add(11 * time.Second)
	if got := r.PerSec(); got != 0 {
		t.Fatalf("rate after window passed = %g, want 0", got)
	}
}

func TestRateYoungerThanWindow(t *testing.T) {
	now := time.Unix(2_000_000, 0)
	r := NewRate(10 * time.Second)
	r.SetClock(func() time.Time { return now })
	now = now.Add(2 * time.Second)
	r.Add(20)
	got := r.PerSec()
	if got < 9 || got > 21 {
		t.Fatalf("young rate = %g, want ~10/s (20 events over 2s of life)", got)
	}
}

func TestRateConcurrent(t *testing.T) {
	r := NewRate(5 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != 8000 {
		t.Fatalf("windowed total = %d, want 8000 (single-second run must not lose events)", got)
	}
}
