package metrics

import (
	"sync/atomic"
	"time"
)

// DefaultRateWindow is the sliding window Rate uses unless configured
// otherwise, and the window DBStats.EventsPerSec is averaged over.
const DefaultRateWindow = 10 * time.Second

// Rate measures a recent-events-per-second rate over a sliding window
// of one-second buckets, lock-free on the Add path. Unlike a
// lifetime average (events / uptime), the reported rate reflects only
// the last window: a server that idles for an hour and then bursts
// reports the burst, not a decayed near-zero.
//
// Implementation: a ring of (second, count) bucket pairs indexed by
// wall-clock second modulo the ring size. Add stamps the bucket's
// second with a CAS and resets its count when the bucket is reused for
// a new second; the tiny race between an Add that wins the CAS and a
// concurrent Add into the stale count can undercount a handful of
// events at a bucket boundary, which is acceptable for a monitoring
// rate and keeps the path lock-free.
type Rate struct {
	window  int // seconds
	started time.Time
	now     func() time.Time
	secs    []atomic.Int64
	counts  []atomic.Int64
}

// NewRate returns a rate measured over the given window (rounded up to
// whole seconds, minimum 1s; 0 selects DefaultRateWindow).
func NewRate(window time.Duration) *Rate {
	if window <= 0 {
		window = DefaultRateWindow
	}
	secs := int((window + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	// One spare bucket beyond the window so the bucket being overwritten
	// for the current second never sits inside the summed range.
	n := secs + 1
	r := &Rate{window: secs, now: time.Now, secs: make([]atomic.Int64, n), counts: make([]atomic.Int64, n)}
	r.started = r.now()
	for i := range r.secs {
		r.secs[i].Store(-1)
	}
	return r
}

// SetClock overrides the time source (tests). Not safe to call
// concurrently with Add or PerSec.
func (r *Rate) SetClock(now func() time.Time) {
	r.now = now
	r.started = now()
}

// Add records n events at the current time.
func (r *Rate) Add(n int64) {
	if r == nil || n == 0 {
		return
	}
	sec := r.now().Unix()
	i := int(sec % int64(len(r.secs)))
	for {
		s := r.secs[i].Load()
		if s == sec {
			break
		}
		if r.secs[i].CompareAndSwap(s, sec) {
			r.counts[i].Store(0)
			break
		}
	}
	r.counts[i].Add(n)
}

// PerSec reports the windowed rate: events recorded in the last window
// seconds divided by the window (or by the elapsed lifetime when the
// rate is younger than its window, so early readings are not diluted).
func (r *Rate) PerSec() float64 {
	if r == nil {
		return 0
	}
	now := r.now()
	sec := now.Unix()
	var total int64
	for i := range r.secs {
		s := r.secs[i].Load()
		if s >= 0 && sec-s < int64(r.window) {
			total += r.counts[i].Load()
		}
	}
	denom := float64(r.window)
	if alive := now.Sub(r.started).Seconds(); alive < denom {
		if alive < 1 {
			alive = 1
		}
		denom = alive
	}
	return float64(total) / denom
}

// Total is the windowed event count (diagnostics and tests).
func (r *Rate) Total() int64 {
	if r == nil {
		return 0
	}
	sec := r.now().Unix()
	var total int64
	for i := range r.secs {
		s := r.secs[i].Load()
		if s >= 0 && sec-s < int64(r.window) {
			total += r.counts[i].Load()
		}
	}
	return total
}
