// Package tpch generates deterministic TPC-H-shaped data. The paper
// demonstrates Stethoscope on TPC-H queries; the official dbgen tool and
// its data are replaced here by a synthetic generator that reproduces the
// schema (all eight tables), the key relationships (orderkey/partkey/
// suppkey/custkey foreign keys) and plausible value distributions. Plan
// shapes — the thing Stethoscope visualizes — depend on the schema and
// query, not on exact dbgen values, so this substitution preserves the
// demo's behaviour.
package tpch

import (
	"fmt"
	"math"

	"stethoscope/internal/storage"
)

// Config controls generation. SF is the TPC-H scale factor: SF=1
// corresponds to 6M lineitem rows; the demo and tests use small fractions.
// Seed makes runs reproducible.
type Config struct {
	SF   float64
	Seed uint64
}

// DefaultConfig is the scale used by the examples: about 60k lineitem rows.
func DefaultConfig() Config { return Config{SF: 0.01, Seed: 42} }

// splitmix64 is a tiny deterministic PRNG, good enough for synthetic data.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// rangeInt returns a value in [lo, hi].
func (r *rng) rangeInt(lo, hi int64) int64 { return lo + r.intn(hi-lo+1) }

// rangeFlt returns a value in [lo, hi) quantized to cents.
func (r *rng) rangeFlt(lo, hi float64) float64 {
	f := float64(r.next()%1_000_000) / 1_000_000
	v := lo + f*(hi-lo)
	return math.Round(v*100) / 100
}

func (r *rng) pick(opts []string) string { return opts[r.intn(int64(len(opts)))] }

// Cardinalities per the TPC-H specification, scaled by SF. Region and
// nation are fixed-size.
const (
	baseSupplier = 10_000
	baseCustomer = 150_000
	basePart     = 200_000
	basePartSupp = 800_000
	baseOrders   = 1_500_000
	baseLineitem = 6_000_000 // approximate: 1-7 lines per order
)

// Rows returns the generated row count for a table at scale factor sf.
// Lineitem is approximate before generation (lines per order vary).
func Rows(table string, sf float64) int {
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	switch table {
	case "region":
		return 5
	case "nation":
		return 25
	case "supplier":
		return scale(baseSupplier)
	case "customer":
		return scale(baseCustomer)
	case "part":
		return scale(basePart)
	case "partsupp":
		return scale(basePartSupp)
	case "orders":
		return scale(baseOrders)
	case "lineitem":
		return scale(baseLineitem)
	}
	return 0
}

// Date range used by TPC-H: orders span 1992-01-01 .. 1998-08-02.
// Dates are days since the Unix epoch.
const (
	dateLo = 8035  // 1992-01-01
	dateHi = 10440 // 1998-08-02
)

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	returnFlags  = []string{"R", "A", "N"}
	lineStatuses = []string{"O", "F"}
	shipModes    = []string{"TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "REG AIR", "FOB"}
	shipInstr    = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	orderStatus  = []string{"O", "F", "P"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	partTypes    = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL", "LARGE BRUSHED STEEL", "ECONOMY POLISHED BRASS", "PROMO BURNISHED COPPER"}
	containers   = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"}
	brands       = []string{"Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#55"}
)

// Load generates all eight TPC-H tables at cfg.SF and defines them in cat
// under schema "sys". Generation is deterministic for a given Config.
func Load(cat *storage.Catalog, cfg Config) error {
	if cfg.SF <= 0 {
		return fmt.Errorf("tpch: scale factor must be positive, got %g", cfg.SF)
	}
	if err := loadRegion(cat); err != nil {
		return err
	}
	if err := loadNation(cat); err != nil {
		return err
	}
	if err := loadSupplier(cat, cfg); err != nil {
		return err
	}
	if err := loadCustomer(cat, cfg); err != nil {
		return err
	}
	if err := loadPart(cat, cfg); err != nil {
		return err
	}
	if err := loadPartSupp(cat, cfg); err != nil {
		return err
	}
	return loadOrdersAndLineitem(cat, cfg)
}

func loadRegion(cat *storage.Catalog) error {
	n := 5
	key := make([]int64, n)
	name := make([]string, n)
	comment := make([]string, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		name[i] = regionNames[i]
		comment[i] = "synthetic region " + regionNames[i]
	}
	return cat.Define("sys", "region",
		[]storage.Column{{Name: "r_regionkey", Kind: storage.Int}, {Name: "r_name", Kind: storage.Str}, {Name: "r_comment", Kind: storage.Str}},
		map[string]*storage.BAT{
			"r_regionkey": storage.FromInts(storage.Int, key),
			"r_name":      storage.FromStrings(name),
			"r_comment":   storage.FromStrings(comment),
		})
}

func loadNation(cat *storage.Catalog) error {
	n := 25
	key := make([]int64, n)
	name := make([]string, n)
	region := make([]int64, n)
	comment := make([]string, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		name[i] = nationNames[i]
		region[i] = nationRegion[i]
		comment[i] = "synthetic nation " + nationNames[i]
	}
	return cat.Define("sys", "nation",
		[]storage.Column{{Name: "n_nationkey", Kind: storage.Int}, {Name: "n_name", Kind: storage.Str}, {Name: "n_regionkey", Kind: storage.Int}, {Name: "n_comment", Kind: storage.Str}},
		map[string]*storage.BAT{
			"n_nationkey": storage.FromInts(storage.Int, key),
			"n_name":      storage.FromStrings(name),
			"n_regionkey": storage.FromInts(storage.Int, region),
			"n_comment":   storage.FromStrings(comment),
		})
}

func loadSupplier(cat *storage.Catalog, cfg Config) error {
	n := Rows("supplier", cfg.SF)
	r := newRNG(cfg.Seed ^ 0x5151)
	key := make([]int64, n)
	name := make([]string, n)
	nation := make([]int64, n)
	acctbal := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i + 1)
		name[i] = fmt.Sprintf("Supplier#%09d", i+1)
		nation[i] = r.intn(25)
		acctbal[i] = r.rangeFlt(-999.99, 9999.99)
	}
	return cat.Define("sys", "supplier",
		[]storage.Column{
			{Name: "s_suppkey", Kind: storage.Int},
			{Name: "s_name", Kind: storage.Str},
			{Name: "s_nationkey", Kind: storage.Int},
			{Name: "s_acctbal", Kind: storage.Flt},
		},
		map[string]*storage.BAT{
			"s_suppkey":   storage.FromInts(storage.Int, key),
			"s_name":      storage.FromStrings(name),
			"s_nationkey": storage.FromInts(storage.Int, nation),
			"s_acctbal":   storage.FromFloats(acctbal),
		})
}

func loadCustomer(cat *storage.Catalog, cfg Config) error {
	n := Rows("customer", cfg.SF)
	r := newRNG(cfg.Seed ^ 0xC0C0)
	key := make([]int64, n)
	name := make([]string, n)
	nation := make([]int64, n)
	segment := make([]string, n)
	acctbal := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i + 1)
		name[i] = fmt.Sprintf("Customer#%09d", i+1)
		nation[i] = r.intn(25)
		segment[i] = r.pick(segments)
		acctbal[i] = r.rangeFlt(-999.99, 9999.99)
	}
	return cat.Define("sys", "customer",
		[]storage.Column{
			{Name: "c_custkey", Kind: storage.Int},
			{Name: "c_name", Kind: storage.Str},
			{Name: "c_nationkey", Kind: storage.Int},
			{Name: "c_mktsegment", Kind: storage.Str},
			{Name: "c_acctbal", Kind: storage.Flt},
		},
		map[string]*storage.BAT{
			"c_custkey":    storage.FromInts(storage.Int, key),
			"c_name":       storage.FromStrings(name),
			"c_nationkey":  storage.FromInts(storage.Int, nation),
			"c_mktsegment": storage.FromStrings(segment),
			"c_acctbal":    storage.FromFloats(acctbal),
		})
}

func loadPart(cat *storage.Catalog, cfg Config) error {
	n := Rows("part", cfg.SF)
	r := newRNG(cfg.Seed ^ 0xAAAA)
	key := make([]int64, n)
	name := make([]string, n)
	brand := make([]string, n)
	typ := make([]string, n)
	size := make([]int64, n)
	container := make([]string, n)
	price := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i + 1)
		name[i] = fmt.Sprintf("part %06d", i+1)
		brand[i] = r.pick(brands)
		typ[i] = r.pick(partTypes)
		size[i] = r.rangeInt(1, 50)
		container[i] = r.pick(containers)
		price[i] = r.rangeFlt(900, 2100)
	}
	return cat.Define("sys", "part",
		[]storage.Column{
			{Name: "p_partkey", Kind: storage.Int},
			{Name: "p_name", Kind: storage.Str},
			{Name: "p_brand", Kind: storage.Str},
			{Name: "p_type", Kind: storage.Str},
			{Name: "p_size", Kind: storage.Int},
			{Name: "p_container", Kind: storage.Str},
			{Name: "p_retailprice", Kind: storage.Flt},
		},
		map[string]*storage.BAT{
			"p_partkey":     storage.FromInts(storage.Int, key),
			"p_name":        storage.FromStrings(name),
			"p_brand":       storage.FromStrings(brand),
			"p_type":        storage.FromStrings(typ),
			"p_size":        storage.FromInts(storage.Int, size),
			"p_container":   storage.FromStrings(container),
			"p_retailprice": storage.FromFloats(price),
		})
}

func loadPartSupp(cat *storage.Catalog, cfg Config) error {
	nPart := Rows("part", cfg.SF)
	nSupp := Rows("supplier", cfg.SF)
	r := newRNG(cfg.Seed ^ 0x9595)
	// 4 suppliers per part, per the spec.
	n := nPart * 4
	partkey := make([]int64, 0, n)
	suppkey := make([]int64, 0, n)
	availqty := make([]int64, 0, n)
	supplycost := make([]float64, 0, n)
	for p := 1; p <= nPart; p++ {
		for s := 0; s < 4; s++ {
			partkey = append(partkey, int64(p))
			suppkey = append(suppkey, r.rangeInt(1, int64(nSupp)))
			availqty = append(availqty, r.rangeInt(1, 9999))
			supplycost = append(supplycost, r.rangeFlt(1, 1000))
		}
	}
	return cat.Define("sys", "partsupp",
		[]storage.Column{
			{Name: "ps_partkey", Kind: storage.Int},
			{Name: "ps_suppkey", Kind: storage.Int},
			{Name: "ps_availqty", Kind: storage.Int},
			{Name: "ps_supplycost", Kind: storage.Flt},
		},
		map[string]*storage.BAT{
			"ps_partkey":    storage.FromInts(storage.Int, partkey),
			"ps_suppkey":    storage.FromInts(storage.Int, suppkey),
			"ps_availqty":   storage.FromInts(storage.Int, availqty),
			"ps_supplycost": storage.FromFloats(supplycost),
		})
}

func loadOrdersAndLineitem(cat *storage.Catalog, cfg Config) error {
	nOrders := Rows("orders", cfg.SF)
	nCust := Rows("customer", cfg.SF)
	nPart := Rows("part", cfg.SF)
	nSupp := Rows("supplier", cfg.SF)
	r := newRNG(cfg.Seed ^ 0x0DD5)

	oKey := make([]int64, nOrders)
	oCust := make([]int64, nOrders)
	oStatus := make([]string, nOrders)
	oTotal := make([]float64, nOrders)
	oDate := make([]int64, nOrders)
	oPriority := make([]string, nOrders)

	lOrder := make([]int64, 0, nOrders*4)
	lPart := make([]int64, 0, nOrders*4)
	lSupp := make([]int64, 0, nOrders*4)
	lLineNo := make([]int64, 0, nOrders*4)
	lQty := make([]float64, 0, nOrders*4)
	lPrice := make([]float64, 0, nOrders*4)
	lDiscount := make([]float64, 0, nOrders*4)
	lTax := make([]float64, 0, nOrders*4)
	lRetFlag := make([]string, 0, nOrders*4)
	lStatus := make([]string, 0, nOrders*4)
	lShip := make([]int64, 0, nOrders*4)
	lCommit := make([]int64, 0, nOrders*4)
	lReceipt := make([]int64, 0, nOrders*4)
	lInstruct := make([]string, 0, nOrders*4)
	lMode := make([]string, 0, nOrders*4)

	for i := 0; i < nOrders; i++ {
		oKey[i] = int64(i + 1)
		oCust[i] = r.rangeInt(1, int64(nCust))
		oStatus[i] = r.pick(orderStatus)
		oDate[i] = r.rangeInt(dateLo, dateHi-121)
		oPriority[i] = r.pick(priorities)

		lines := int(r.rangeInt(1, 7))
		var total float64
		for ln := 1; ln <= lines; ln++ {
			qty := float64(r.rangeInt(1, 50))
			price := r.rangeFlt(900, 104950)
			disc := float64(r.rangeInt(0, 10)) / 100
			tax := float64(r.rangeInt(0, 8)) / 100
			ship := oDate[i] + r.rangeInt(1, 121)
			lOrder = append(lOrder, oKey[i])
			lPart = append(lPart, r.rangeInt(1, int64(nPart)))
			lSupp = append(lSupp, r.rangeInt(1, int64(nSupp)))
			lLineNo = append(lLineNo, int64(ln))
			lQty = append(lQty, qty)
			lPrice = append(lPrice, price)
			lDiscount = append(lDiscount, disc)
			lTax = append(lTax, tax)
			lRetFlag = append(lRetFlag, r.pick(returnFlags))
			lStatus = append(lStatus, r.pick(lineStatuses))
			lShip = append(lShip, ship)
			lCommit = append(lCommit, ship+r.rangeInt(-30, 30))
			lReceipt = append(lReceipt, ship+r.rangeInt(1, 30))
			lInstruct = append(lInstruct, r.pick(shipInstr))
			lMode = append(lMode, r.pick(shipModes))
			total += price * qty
		}
		oTotal[i] = math.Round(total*100) / 100
	}

	if err := cat.Define("sys", "orders",
		[]storage.Column{
			{Name: "o_orderkey", Kind: storage.Int},
			{Name: "o_custkey", Kind: storage.Int},
			{Name: "o_orderstatus", Kind: storage.Str},
			{Name: "o_totalprice", Kind: storage.Flt},
			{Name: "o_orderdate", Kind: storage.Date},
			{Name: "o_orderpriority", Kind: storage.Str},
		},
		map[string]*storage.BAT{
			"o_orderkey":      storage.FromInts(storage.Int, oKey),
			"o_custkey":       storage.FromInts(storage.Int, oCust),
			"o_orderstatus":   storage.FromStrings(oStatus),
			"o_totalprice":    storage.FromFloats(oTotal),
			"o_orderdate":     storage.FromInts(storage.Date, oDate),
			"o_orderpriority": storage.FromStrings(oPriority),
		}); err != nil {
		return err
	}

	return cat.Define("sys", "lineitem",
		[]storage.Column{
			{Name: "l_orderkey", Kind: storage.Int},
			{Name: "l_partkey", Kind: storage.Int},
			{Name: "l_suppkey", Kind: storage.Int},
			{Name: "l_linenumber", Kind: storage.Int},
			{Name: "l_quantity", Kind: storage.Flt},
			{Name: "l_extendedprice", Kind: storage.Flt},
			{Name: "l_discount", Kind: storage.Flt},
			{Name: "l_tax", Kind: storage.Flt},
			{Name: "l_returnflag", Kind: storage.Str},
			{Name: "l_linestatus", Kind: storage.Str},
			{Name: "l_shipdate", Kind: storage.Date},
			{Name: "l_commitdate", Kind: storage.Date},
			{Name: "l_receiptdate", Kind: storage.Date},
			{Name: "l_shipinstruct", Kind: storage.Str},
			{Name: "l_shipmode", Kind: storage.Str},
		},
		map[string]*storage.BAT{
			"l_orderkey":      storage.FromInts(storage.Int, lOrder),
			"l_partkey":       storage.FromInts(storage.Int, lPart),
			"l_suppkey":       storage.FromInts(storage.Int, lSupp),
			"l_linenumber":    storage.FromInts(storage.Int, lLineNo),
			"l_quantity":      storage.FromFloats(lQty),
			"l_extendedprice": storage.FromFloats(lPrice),
			"l_discount":      storage.FromFloats(lDiscount),
			"l_tax":           storage.FromFloats(lTax),
			"l_returnflag":    storage.FromStrings(lRetFlag),
			"l_linestatus":    storage.FromStrings(lStatus),
			"l_shipdate":      storage.FromInts(storage.Date, lShip),
			"l_commitdate":    storage.FromInts(storage.Date, lCommit),
			"l_receiptdate":   storage.FromInts(storage.Date, lReceipt),
			"l_shipinstruct":  storage.FromStrings(lInstruct),
			"l_shipmode":      storage.FromStrings(lMode),
		})
}
