package tpch

import (
	"testing"

	"stethoscope/internal/storage"
)

func loadSmall(t testing.TB) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	if err := Load(cat, Config{SF: 0.001, Seed: 7}); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return cat
}

func TestLoadDefinesAllTables(t *testing.T) {
	cat := loadSmall(t)
	want := []string{"sys.customer", "sys.lineitem", "sys.nation", "sys.orders",
		"sys.part", "sys.partsupp", "sys.region", "sys.supplier"}
	got := cat.TableNames()
	if len(got) != len(want) {
		t.Fatalf("tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("table[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestFixedCardinalities(t *testing.T) {
	cat := loadSmall(t)
	region, _ := cat.Table("sys", "region")
	if region.Rows() != 5 {
		t.Errorf("region rows = %d", region.Rows())
	}
	nation, _ := cat.Table("sys", "nation")
	if nation.Rows() != 25 {
		t.Errorf("nation rows = %d", nation.Rows())
	}
}

func TestScaledCardinalities(t *testing.T) {
	cat := loadSmall(t)
	orders, _ := cat.Table("sys", "orders")
	if got, want := orders.Rows(), Rows("orders", 0.001); got != want {
		t.Errorf("orders rows = %d, want %d", got, want)
	}
	li, _ := cat.Table("sys", "lineitem")
	// 1..7 lines per order.
	if li.Rows() < orders.Rows() || li.Rows() > orders.Rows()*7 {
		t.Errorf("lineitem rows = %d outside [%d, %d]", li.Rows(), orders.Rows(), orders.Rows()*7)
	}
	ps, _ := cat.Table("sys", "partsupp")
	part, _ := cat.Table("sys", "part")
	if ps.Rows() != part.Rows()*4 {
		t.Errorf("partsupp rows = %d, want 4x part %d", ps.Rows(), part.Rows())
	}
}

func TestDeterminism(t *testing.T) {
	a := storage.NewCatalog()
	b := storage.NewCatalog()
	cfg := Config{SF: 0.001, Seed: 99}
	if err := Load(a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Load(b, cfg); err != nil {
		t.Fatal(err)
	}
	ba, _ := a.Bind("sys", "lineitem", "l_extendedprice")
	bb, _ := b.Bind("sys", "lineitem", "l_extendedprice")
	if ba.Len() != bb.Len() {
		t.Fatalf("lengths differ: %d vs %d", ba.Len(), bb.Len())
	}
	for i := 0; i < ba.Len(); i++ {
		if ba.FltAt(i) != bb.FltAt(i) {
			t.Fatalf("row %d differs: %g vs %g", i, ba.FltAt(i), bb.FltAt(i))
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a := storage.NewCatalog()
	b := storage.NewCatalog()
	if err := Load(a, Config{SF: 0.001, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Load(b, Config{SF: 0.001, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	ba, _ := a.Bind("sys", "lineitem", "l_partkey")
	bb, _ := b.Bind("sys", "lineitem", "l_partkey")
	same := ba.Len() == bb.Len()
	if same {
		n := ba.Len()
		diff := false
		for i := 0; i < n; i++ {
			if ba.IntAt(i) != bb.IntAt(i) {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical l_partkey column")
		}
	}
}

func TestForeignKeysInRange(t *testing.T) {
	cat := loadSmall(t)
	sf := 0.001
	nPart := int64(Rows("part", sf))
	nSupp := int64(Rows("supplier", sf))
	nCust := int64(Rows("customer", sf))
	nOrders := int64(Rows("orders", sf))

	lp, _ := cat.Bind("sys", "lineitem", "l_partkey")
	for _, v := range lp.Ints() {
		if v < 1 || v > nPart {
			t.Fatalf("l_partkey %d out of [1,%d]", v, nPart)
		}
	}
	ls, _ := cat.Bind("sys", "lineitem", "l_suppkey")
	for _, v := range ls.Ints() {
		if v < 1 || v > nSupp {
			t.Fatalf("l_suppkey %d out of [1,%d]", v, nSupp)
		}
	}
	lo, _ := cat.Bind("sys", "lineitem", "l_orderkey")
	for _, v := range lo.Ints() {
		if v < 1 || v > nOrders {
			t.Fatalf("l_orderkey %d out of [1,%d]", v, nOrders)
		}
	}
	oc, _ := cat.Bind("sys", "orders", "o_custkey")
	for _, v := range oc.Ints() {
		if v < 1 || v > nCust {
			t.Fatalf("o_custkey %d out of [1,%d]", v, nCust)
		}
	}
	nr, _ := cat.Bind("sys", "nation", "n_regionkey")
	for _, v := range nr.Ints() {
		if v < 0 || v > 4 {
			t.Fatalf("n_regionkey %d out of [0,4]", v)
		}
	}
}

func TestValueDomains(t *testing.T) {
	cat := loadSmall(t)
	disc, _ := cat.Bind("sys", "lineitem", "l_discount")
	for _, v := range disc.Flts() {
		if v < 0 || v > 0.10 {
			t.Fatalf("l_discount %g out of [0, 0.10]", v)
		}
	}
	tax, _ := cat.Bind("sys", "lineitem", "l_tax")
	for _, v := range tax.Flts() {
		if v < 0 || v > 0.08 {
			t.Fatalf("l_tax %g out of [0, 0.08]", v)
		}
	}
	qty, _ := cat.Bind("sys", "lineitem", "l_quantity")
	for _, v := range qty.Flts() {
		if v < 1 || v > 50 {
			t.Fatalf("l_quantity %g out of [1, 50]", v)
		}
	}
	ship, _ := cat.Bind("sys", "lineitem", "l_shipdate")
	for _, v := range ship.Ints() {
		if v < dateLo || v > dateHi+1 {
			t.Fatalf("l_shipdate %d out of range", v)
		}
	}
	rf, _ := cat.Bind("sys", "lineitem", "l_returnflag")
	for _, v := range rf.Strs() {
		if v != "R" && v != "A" && v != "N" {
			t.Fatalf("l_returnflag %q invalid", v)
		}
	}
}

func TestBadScaleFactor(t *testing.T) {
	cat := storage.NewCatalog()
	if err := Load(cat, Config{SF: 0}); err == nil {
		t.Error("SF=0 accepted")
	}
	if err := Load(cat, Config{SF: -1}); err == nil {
		t.Error("SF=-1 accepted")
	}
}

func TestRowsUnknownTable(t *testing.T) {
	if Rows("nosuch", 1) != 0 {
		t.Error("unknown table should report 0 rows")
	}
	if Rows("supplier", 0.000001) != 1 {
		t.Error("tiny SF should clamp to 1 row")
	}
}
