package tpch

// The paper demonstrates Stethoscope "while analyzing long running TPC-H
// queries". This file carries the TPC-H query set adapted to the
// reproduction's SQL subset (no CASE, no LIKE, no subqueries, explicit
// join syntax where the original uses comma joins with WHERE equalities —
// both forms are accepted by the parser). Each query preserves the plan
// shape that matters to the visualizer: which tables are scanned, what is
// filtered, joined, grouped and ordered.

// Query is one benchmark query with its provenance.
type Query struct {
	// ID is the TPC-H query number ("Q1") or a reproduction-specific tag.
	ID string
	// Name is a short description.
	Name string
	// SQL is the query text in the supported subset.
	SQL string
	// Adapted notes how the text deviates from the official TPC-H query.
	Adapted string
}

// Queries returns the adapted TPC-H workload, ordered by query number.
func Queries() []Query {
	return []Query{
		{
			ID:   "Q1",
			Name: "pricing summary report",
			SQL: `select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty,
				sum(l_extendedprice) as sum_base_price, avg(l_quantity) as avg_qty,
				avg(l_extendedprice) as avg_price, avg(l_discount) as avg_disc, count(*) as count_order
				from lineitem
				where l_shipdate <= date '1998-09-02'
				group by l_returnflag, l_linestatus
				order by l_returnflag, l_linestatus`,
			Adapted: "sum(price*(1-disc)) composite aggregates dropped (aggregates over expressions are restricted to plain columns); date arithmetic folded to a literal",
		},
		{
			ID:   "Q3",
			Name: "shipping priority",
			SQL: `select l_orderkey, sum(l_extendedprice) as revenue, o_orderdate
				from customer
				join orders on c_custkey = o_custkey
				join lineitem on l_orderkey = o_orderkey
				where c_mktsegment = 'BUILDING' and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15'
				group by l_orderkey, o_orderdate
				order by revenue desc, o_orderdate
				limit 10`,
			Adapted: "revenue is sum(extendedprice) instead of sum(extendedprice*(1-discount)); o_shippriority column not generated",
		},
		{
			ID:   "Q5",
			Name: "local supplier volume",
			SQL: `select n_name, sum(l_extendedprice) as revenue
				from region
				join nation on n_regionkey = r_regionkey
				join supplier on s_nationkey = n_nationkey
				join lineitem on l_suppkey = s_suppkey
				join orders on o_orderkey = l_orderkey
				where r_name = 'ASIA' and o_orderdate between date '1994-01-01' and date '1995-01-01'
				group by n_name
				order by revenue desc`,
			Adapted: "customer-nation equality dropped (single join path per table); revenue simplified as in Q3",
		},
		{
			ID:   "Q6",
			Name: "forecasting revenue change",
			SQL: `select sum(l_extendedprice) as revenue, count(*) as matched
				from lineitem
				where l_shipdate between date '1994-01-01' and date '1994-12-31'
				and l_discount between 0.05 and 0.07 and l_quantity < 24`,
			Adapted: "sum(extendedprice*discount) simplified to sum(extendedprice) plus a row count",
		},
		{
			ID:   "Q10",
			Name: "returned item reporting",
			SQL: `select c_custkey, c_name, sum(l_extendedprice) as revenue, n_name
				from customer
				join orders on o_custkey = c_custkey
				join lineitem on l_orderkey = o_orderkey
				join nation on n_nationkey = c_nationkey
				where l_returnflag = 'R' and o_orderdate between date '1993-10-01' and date '1994-01-01'
				group by c_custkey, c_name, n_name
				order by revenue desc
				limit 20`,
			Adapted: "revenue simplified; address/phone/comment columns not generated",
		},
		{
			ID:   "Q12",
			Name: "shipping modes and order priority",
			SQL: `select l_shipmode, count(*) as line_count
				from orders
				join lineitem on l_orderkey = o_orderkey
				where l_shipmode in ('MAIL', 'SHIP')
				and l_receiptdate between date '1994-01-01' and date '1994-12-31'
				and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
				group by l_shipmode
				order by l_shipmode`,
			Adapted: "high/low-priority CASE split dropped; single count per mode",
		},
		{
			ID:   "Q14",
			Name: "promotion effect",
			SQL: `select count(*) as promo_lines, sum(l_extendedprice) as promo_revenue
				from lineitem
				join part on p_partkey = l_partkey
				where p_type like 'PROMO%'
				and l_shipdate between date '1995-09-01' and date '1995-10-01'`,
			Adapted: "ratio computed by the caller; LIKE supported natively",
		},
		{
			ID:   "Q19",
			Name: "discounted revenue (disjunctive predicate)",
			SQL: `select sum(l_extendedprice) as revenue
				from lineitem
				join part on p_partkey = l_partkey
				where (p_brand = 'Brand#12' and l_quantity between 1 and 11)
				or (p_brand = 'Brand#23' and l_quantity between 10 and 20)
				or (p_brand = 'Brand#34' and l_quantity between 20 and 30)`,
			Adapted: "container/shipmode terms dropped; keeps the disjunctive structure that exercises the boolean-column path",
		},
		{
			ID:      "QX1",
			Name:    "paper Figure 1 query",
			SQL:     "select l_tax from lineitem where l_partkey=1",
			Adapted: "verbatim from the paper",
		},
		{
			ID:   "QX2",
			Name: "wide projection for large plans (Figure 2 driver)",
			SQL: `select l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice, l_discount, l_tax, l_shipdate
				from lineitem where l_quantity > 10 and l_discount < 0.05`,
			Adapted: "reproduction-specific: at 64 mitosis partitions this exceeds 1000 plan nodes",
		},
	}
}

// QueryByID looks a query up by its ID.
func QueryByID(id string) (Query, bool) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}
