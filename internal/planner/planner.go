// Package planner owns the serving layer's shared statement-compilation
// flow: plan-cache lookup, parse, bind, adaptive partition resolution,
// MAL lowering, optimizer pipeline, and cache insertion. The facade
// (DB.Exec/Explain) and every server session compile through one
// Planner-shaped flow, so the cache-key discipline (normalized
// partition counts, the Auto sentinel as its own key) and the
// memoization of auto resolutions (Entry.Partitions/TuneReason) cannot
// drift between entry points.
package planner

import (
	"fmt"
	"sync"

	"stethoscope/internal/adaptive"
	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/mal"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/plancache"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
)

// Planner binds the shared compilation inputs: the catalog to resolve
// tables (and auto fan-outs) against, the shared plan cache (nil
// disables caching), the optimizer pipeline with its cache-key spec,
// and the compile flight that coalesces concurrent cache misses.
type Planner struct {
	Cat      *storage.Catalog
	Cache    *plancache.Cache
	Pipeline optimizer.Pipeline
	PassSpec string
	// Flight, when non-nil, single-flights cache-miss compilations:
	// concurrent Compile calls for the same key (identical Exec,
	// Explain, or server QUERY/EXPLAIN statements) run the parse → bind
	// → compile → optimize chain once instead of racing to populate the
	// plan cache. The facade and its servers share one flight so the
	// coalescing spans entry points; a nil flight compiles every miss
	// independently (correct, just duplicated work).
	Flight *CompileFlight
}

// compileCall is one in-flight compilation.
type compileCall struct {
	done chan struct{}
	c    Compiled
	err  error
}

// CompileFlight coalesces concurrent compilations of the same cache
// key. It holds only in-flight work — entries are removed before their
// outcome is published, so it never caches (the plan cache does that).
type CompileFlight struct {
	mu    sync.Mutex
	calls map[plancache.Key]*compileCall
}

// NewCompileFlight returns an empty flight.
func NewCompileFlight() *CompileFlight {
	return &CompileFlight{calls: map[plancache.Key]*compileCall{}}
}

// do runs compile under single-flight semantics for key. Followers
// block until the leader finishes (compilation is CPU-bound and quick;
// there is no cancellation point) and report coalesced=true.
func (f *CompileFlight) do(key plancache.Key, compile func() (Compiled, error)) (c Compiled, coalesced bool, err error) {
	f.mu.Lock()
	if call, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-call.done
		return call.c, true, call.err
	}
	call := &compileCall{done: make(chan struct{})}
	f.calls[key] = call
	f.mu.Unlock()

	call.c, call.err = compile()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(call.done)
	return call.c, false, call.err
}

// Compiled is one compilation outcome: the optimized plan plus what it
// was compiled with and why.
type Compiled struct {
	Plan *mal.Plan
	Opt  optimizer.Stats
	Aux  *plancache.Aux // nil when caching is disabled
	// Partitions is the mitosis fan-out compiled into the plan; it
	// differs from the request only under Auto, where TuneReason then
	// records the selection inputs and outcome.
	Partitions int
	TuneReason string
	Cached     bool
	// Rows is the bound tree's driver-row count (algebra.DriverRows),
	// measured when the compilation needed it (Auto partitions or
	// morsel mode) and memoized through the cache; ResolveMorsel sizes
	// Auto morsels from it at execution time.
	Rows int
}

// ResolveExec applies a session's worker setting to this compilation:
// Auto resolves against the compiled partition fan-out, explicit counts
// pass through. It returns the concrete worker count, whether any
// setting was adaptively chosen, and the combined tuning note — the one
// resolution both Result.Stats and the history RunMeta record, shared
// by the facade Exec path and the server QUERY path so the two can
// never diverge.
func (c Compiled) ResolveExec(requestedWorkers int) (workers int, autoTuned bool, reason string) {
	workers, wreason := adaptive.ResolveWorkers(requestedWorkers, c.Partitions)
	autoTuned = c.TuneReason != "" || requestedWorkers == adaptive.Auto
	return workers, autoTuned, adaptive.JoinReasons(c.TuneReason, wreason)
}

// ResolveMorsel turns a session's morsel setting into the engine's
// MorselRows option: 0 means morsel mode off (the plan was compiled
// without fragments and the option is ignored anyway), Auto sizes the
// morsel from the compiled plan's driver rows, and explicit sizes pass
// through clamped. Shared by the facade Exec/Stream paths and the
// server QUERY path so the recorded resolutions can never diverge.
func (c Compiled) ResolveMorsel(requested int) (morselRows int, autoTuned bool, reason string) {
	switch {
	case requested == 0:
		return 0, false, ""
	case requested == adaptive.Auto:
		m, r := adaptive.MorselRowsFor(c.Rows, adaptive.Procs())
		return m, true, r
	default:
		return adaptive.Clamp(requested), false, ""
	}
}

// ResolvePartitions turns an Auto partition request into a concrete
// fan-out for the bound tree; explicit counts pass through with an
// empty reason. The fan-out is sized from the rows that actually
// parallelize under the tree's cost shape (algebra.DriverRows): the
// probe-side rows for join plans — the packed build side must not
// inflate the fan-out — and the sorted input's rows for sort plans. The
// shape is recorded in the tuning note so Result.Stats.TuneReason and
// the history RunMeta show which cost model sized the plan.
func ResolvePartitions(cat *storage.Catalog, requested int, tree algebra.Node) (int, string) {
	if requested != adaptive.Auto {
		return requested, ""
	}
	rows, shape := algebra.DriverRows(tree, cat)
	return adaptive.PartitionsFor(rows, adaptive.Procs(), shape)
}

// Compile lowers SQL to an optimized MAL plan, consulting the cache
// first. partitions must be normalized by the caller (adaptive.
// Normalize / adaptive.Clamp); the Auto sentinel keys the cache
// directly and is resolved here — after bind — with the resolution
// memoized in the entry. Cached plans are shared between concurrent
// executions and must be treated as immutable; Aux memoizes derived
// artifacts (the dot export the history store records) across every
// session sharing the entry.
func (p *Planner) Compile(query string, partitions int, morsel bool) (Compiled, error) {
	key := plancache.Key{SQL: query, Partitions: partitions, Morsel: morsel, Passes: p.PassSpec}
	if p.Cache != nil {
		if e, ok := p.Cache.Get(key); ok {
			return Compiled{Plan: e.Plan, Opt: e.Opt, Aux: e.Aux,
				Partitions: e.Partitions, TuneReason: e.TuneReason, Rows: e.Rows, Cached: true}, nil
		}
	}
	if p.Flight == nil {
		return p.compileMiss(key, query, partitions, morsel)
	}
	c, coalesced, err := p.Flight.do(key, func() (Compiled, error) {
		return p.compileMiss(key, query, partitions, morsel)
	})
	if err != nil {
		return Compiled{}, err
	}
	if coalesced {
		// The follower's plan was compiled by a concurrent identical
		// call — compilation was skipped exactly as on a cache hit.
		c.Cached = true
	}
	return c, nil
}

// compileMiss is the cache-miss compilation chain.
func (p *Planner) compileMiss(key plancache.Key, query string, partitions int, morsel bool) (Compiled, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return Compiled{}, fmt.Errorf("parse: %w", err)
	}
	tree, err := algebra.Bind(stmt, p.Cat)
	if err != nil {
		return Compiled{}, fmt.Errorf("bind: %w", err)
	}
	// Driver rows feed the Auto partition fan-out and, in morsel mode,
	// the per-run Auto morsel sizing; measure them once and memoize.
	var rows int
	resolved, reason := partitions, ""
	if partitions == adaptive.Auto || morsel {
		var shape string
		rows, shape = algebra.DriverRows(tree, p.Cat)
		if partitions == adaptive.Auto {
			resolved, reason = adaptive.PartitionsFor(rows, adaptive.Procs(), shape)
		}
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: resolved, Morsel: morsel})
	if err != nil {
		return Compiled{}, fmt.Errorf("compile: %w", err)
	}
	plan, stats, err := p.Pipeline.Run(plan)
	if err != nil {
		return Compiled{}, fmt.Errorf("optimize: %w", err)
	}
	c := Compiled{Plan: plan, Opt: stats, Partitions: resolved, TuneReason: reason, Rows: rows}
	if p.Cache != nil {
		c.Aux = &plancache.Aux{}
		p.Cache.Put(key, plancache.Entry{Plan: plan, Opt: stats, Aux: c.Aux,
			Partitions: resolved, TuneReason: reason, Rows: rows})
	}
	return c, nil
}
