package planner

import (
	"sync"
	"sync/atomic"
	"testing"

	"stethoscope/internal/mal"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/plancache"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
)

var testCat = func() *storage.Catalog {
	cat := storage.NewCatalog()
	if err := tpch.Load(cat, tpch.Config{SF: 0.001, Seed: 7}); err != nil {
		panic(err)
	}
	return cat
}()

// countingPass counts how many compilations reach the optimizer — the
// observable "the chain actually ran" probe for coalescing tests.
type countingPass struct{ n *atomic.Int64 }

func (c countingPass) Name() string               { return "counting" }
func (c countingPass) Run(*mal.Plan) (int, error) { c.n.Add(1); return 0, nil }

// TestCompileFlightCoalescesConcurrentMisses pins the single-flight
// bugfix: concurrent identical Compile calls (the Explain race) must
// run the compilation chain once, not once per caller.
func TestCompileFlightCoalescesConcurrentMisses(t *testing.T) {
	var compiles atomic.Int64
	p := &Planner{
		Cat:      testCat,
		Cache:    plancache.New(8),
		Pipeline: optimizer.Pipeline{Passes: []optimizer.Pass{countingPass{&compiles}}},
		PassSpec: "counting",
		Flight:   NewCompileFlight(),
	}
	const callers = 16
	q := "select l_tax from lineitem where l_partkey=1"
	var wg sync.WaitGroup
	start := make(chan struct{})
	var cached atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c, err := p.Compile(q, 1, false)
			if err != nil {
				t.Error(err)
				return
			}
			if c.Plan == nil {
				t.Error("nil plan")
			}
			if c.Cached {
				cached.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	// Some callers may arrive after the leader published to the cache
	// (cache hit), the rest coalesce through the flight; either way the
	// chain runs exactly once.
	if got := compiles.Load(); got != 1 {
		t.Fatalf("compilation chain ran %d times for %d concurrent identical calls, want 1", got, callers)
	}
	if got := cached.Load(); got != callers-1 {
		t.Fatalf("%d of %d callers reported Cached, want %d (everyone but the leader)", got, callers, callers-1)
	}
	if len(p.Flight.calls) != 0 {
		t.Fatalf("flight not drained: %d in flight", len(p.Flight.calls))
	}
}

// TestCompileFlightNilIsSolo: a Planner without a flight compiles every
// miss independently (the pre-existing behavior, still correct).
func TestCompileFlightNilIsSolo(t *testing.T) {
	var compiles atomic.Int64
	p := &Planner{
		Cat:      testCat,
		Pipeline: optimizer.Pipeline{Passes: []optimizer.Pass{countingPass{&compiles}}},
		PassSpec: "counting",
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Compile("select l_tax from lineitem", 1, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := compiles.Load(); got != 3 {
		t.Fatalf("no-cache no-flight planner compiled %d times, want 3", got)
	}
}

// TestCompileFlightDistinctKeys: different options are different keys
// and never coalesce.
func TestCompileFlightDistinctKeys(t *testing.T) {
	var compiles atomic.Int64
	p := &Planner{
		Cat:      testCat,
		Cache:    plancache.New(8),
		Pipeline: optimizer.Pipeline{Passes: []optimizer.Pass{countingPass{&compiles}}},
		PassSpec: "counting",
		Flight:   NewCompileFlight(),
	}
	q := "select l_tax from lineitem"
	if _, err := p.Compile(q, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compile(q, 2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compile(q, 1, true); err != nil {
		t.Fatal(err)
	}
	if got := compiles.Load(); got != 3 {
		t.Fatalf("3 distinct keys compiled %d times, want 3", got)
	}
}
