package zvtm

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// RenderView draws what the camera currently sees as a standalone SVG:
// glyphs are projected through the camera (and optionally distorted by a
// fisheye lens) into a viewport of the given pixel size, with
// out-of-view glyphs culled. This is the zoomable, lens-equipped view
// ZGrviewer presents (§3.1), produced headlessly.
func RenderView(w io.Writer, vs *VirtualSpace, cam *Camera, lens *FisheyeLens, viewW, viewH float64) error {
	if viewW <= 0 || viewH <= 0 {
		return fmt.Errorf("zvtm: viewport %gx%g", viewW, viewH)
	}
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		viewW, viewH, viewW, viewH)
	fmt.Fprintf(w, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#ffffff"/>`+"\n", viewW, viewH)

	// Project a world point through the optional lens then the camera.
	project := func(x, y float64) (float64, float64) {
		if lens != nil {
			x, y = lens.Transform(x, y)
		}
		return cam.Project(x, y, viewW, viewH)
	}
	inView := func(x1, y1, x2, y2 float64) bool {
		lo := func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		}
		hi := func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		}
		return lo(x1, x2) < viewW && hi(x1, x2) > 0 && lo(y1, y2) < viewH && hi(y1, y2) > 0
	}

	// Edges under nodes.
	fmt.Fprintln(w, `<g class="edges" stroke="#888888">`)
	for _, g := range vs.glyphs {
		if g.Kind != EdgeGlyph {
			continue
		}
		x1, y1 := project(g.X, g.Y)
		x2, y2 := project(g.X2, g.Y2)
		if !inView(x1, y1, x2, y2) {
			continue
		}
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x1, y1, x2, y2)
	}
	fmt.Fprintln(w, "</g>")

	fmt.Fprintln(w, `<g class="nodes">`)
	ids := vs.NodeIDs()
	sort.Strings(ids)
	z := cam.Zoom()
	for _, id := range ids {
		var shape, text *Glyph
		for _, g := range vs.byNode[id] {
			switch g.Kind {
			case ShapeGlyph:
				shape = g
			case TextGlyph:
				text = g
			}
		}
		if shape == nil {
			continue
		}
		// Project the box corners; with a lens, the box is distorted, so
		// project the corners and use their bounding box.
		x1, y1 := project(shape.X, shape.Y)
		x2, y2 := project(shape.X+shape.W, shape.Y+shape.H)
		if !inView(x1, y1, x2, y2) {
			continue
		}
		fill := shape.Color
		if fill == "" {
			fill = "#f2f2f2"
		}
		fmt.Fprintf(w, `<g id="%s" class="node">`+"\n", escape(id))
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333333"/>`+"\n",
			minF(x1, x2), minF(y1, y2), absF(x2-x1), absF(y2-y1), fill)
		// Labels only when legible (the original suppresses text at low
		// zoom, an LoD optimization that matters past 1000 nodes).
		fontPx := 11 * z
		if lens != nil {
			d := math.Hypot(shape.CenterX()-lens.FX, shape.CenterY()-lens.FY)
			fontPx *= lens.Magnification(d)
		}
		if text != nil && text.Text != "" && fontPx >= 6 {
			cx, cy := project(shape.CenterX(), shape.CenterY())
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="%.1f" text-anchor="middle">%s</text>`+"\n",
				cx, cy+fontPx/3, fontPx, escape(text.Text))
		}
		fmt.Fprintln(w, "</g>")
	}
	fmt.Fprintln(w, "</g>")
	fmt.Fprintln(w, "</svg>")
	return nil
}

// RenderViewString is RenderView into a string.
func RenderViewString(vs *VirtualSpace, cam *Camera, lens *FisheyeLens, viewW, viewH float64) (string, error) {
	var b strings.Builder
	if err := RenderView(&b, vs, cam, lens, viewW, viewH); err != nil {
		return "", err
	}
	return b.String(), nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func absF(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
