package zvtm

import (
	"math"
	"testing"
)

func gridSpace(t testing.TB, cols, rows int) *VirtualSpace {
	t.Helper()
	vs := NewVirtualSpace("grid")
	vs.W = float64(cols * 100)
	vs.H = float64(rows * 60)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := nodeName(r, c)
			if err := vs.Add(&Glyph{
				ID: "shape:" + id, Kind: ShapeGlyph, NodeID: id,
				X: float64(c*100 + 10), Y: float64(r*60 + 10), W: 80, H: 40,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return vs
}

func nodeName(r, c int) string {
	return "n" + string(rune('a'+r)) + string(rune('a'+c))
}

func TestFitToViewShowsEverything(t *testing.T) {
	vs := gridSpace(t, 10, 6) // 1000 x 360 world
	n := NewNavController(vs, 500, 300)
	x, y, w, h := n.Cam.VisibleBounds(n.ViewW, n.ViewH)
	if x > 0 || y > 0 || x+w < vs.W || y+h < vs.H {
		t.Errorf("overview (%g,%g,%g,%g) does not cover %gx%g", x, y, w, h, vs.W, vs.H)
	}
	if len(n.Visible()) != 60 {
		t.Errorf("visible = %d, want all 60", len(n.Visible()))
	}
}

func TestFitToViewDoesNotMagnifyTinySpaces(t *testing.T) {
	vs := gridSpace(t, 1, 1)
	n := NewNavController(vs, 1000, 1000)
	if n.Cam.Zoom() > 1+1e-9 {
		t.Errorf("overview zoom = %g, want <= 1", n.Cam.Zoom())
	}
}

func TestKeyPanAndHome(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 500, 300)
	cx, cy := n.Cam.CX, n.Cam.CY
	n.HandleKey(KeyRight)
	if n.Cam.CX <= cx {
		t.Error("right pan did not move camera right")
	}
	n.HandleKey(KeyDown)
	if n.Cam.CY <= cy {
		t.Error("down pan did not move camera down")
	}
	n.HandleKey(KeyHome)
	if n.Cam.CX != cx || n.Cam.CY != cy {
		t.Error("home did not restore the overview")
	}
}

func TestKeyZoomChangesVisibleSet(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 500, 300)
	before := len(n.Visible())
	for i := 0; i < 12; i++ {
		n.HandleKey(KeyZoomIn)
	}
	after := len(n.Visible())
	if after >= before {
		t.Errorf("zooming in kept %d of %d nodes visible", after, before)
	}
	for i := 0; i < 20; i++ {
		n.HandleKey(KeyZoomOut)
	}
	if got := len(n.Visible()); got != 60 {
		t.Errorf("zoomed out visible = %d", got)
	}
}

func TestScrollZoomKeepsCursorPointFixed(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 500, 300)
	sx, sy := 400.0, 100.0 // arbitrary cursor position
	wxBefore, wyBefore := n.Cam.Unproject(sx, sy, n.ViewW, n.ViewH)
	n.HandleScroll(sx, sy, 3)
	wxAfter, wyAfter := n.Cam.Unproject(sx, sy, n.ViewW, n.ViewH)
	if math.Abs(wxAfter-wxBefore) > 1e-6 || math.Abs(wyAfter-wyBefore) > 1e-6 {
		t.Errorf("cursor anchor moved: (%g,%g) -> (%g,%g)", wxBefore, wyBefore, wxAfter, wyAfter)
	}
	if n.Cam.Zoom() <= 0.5 {
		t.Errorf("zoom after 3 clicks = %g", n.Cam.Zoom())
	}
	// Scrolling out anchors too.
	n.HandleScroll(sx, sy, -2)
	wx2, wy2 := n.Cam.Unproject(sx, sy, n.ViewW, n.ViewH)
	if math.Abs(wx2-wxBefore) > 1e-6 || math.Abs(wy2-wyBefore) > 1e-6 {
		t.Error("cursor anchor moved on zoom out")
	}
	n.HandleScroll(sx, sy, 0) // no-op
}

func TestDragPansInWorldUnits(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 500, 300)
	z := n.Cam.Zoom()
	cx := n.Cam.CX
	n.HandleDrag(50, 0) // drag content right: camera moves left
	want := cx - 50/z
	if math.Abs(n.Cam.CX-want) > 1e-9 {
		t.Errorf("CX = %g, want %g", n.Cam.CX, want)
	}
}

func TestClickNode(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 500, 300)
	// Project the center of node (0,0) into the viewport and click it.
	g := vs.NodeGlyphs(nodeName(0, 0))[0]
	sx, sy := n.Cam.Project(g.CenterX(), g.CenterY(), n.ViewW, n.ViewH)
	id, ok := n.ClickNode(sx, sy)
	if !ok || id != nodeName(0, 0) {
		t.Errorf("click = %q, %v", id, ok)
	}
	if _, ok := n.ClickNode(-10000, -10000); ok {
		t.Error("click in the void hit a node")
	}
}

func TestZoomToNode(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 500, 300)
	if !n.ZoomToNode(nodeName(2, 3), 0.5) {
		t.Fatal("ZoomToNode failed")
	}
	g := vs.NodeGlyphs(nodeName(2, 3))[0]
	if n.Cam.CX != g.CenterX() || n.Cam.CY != g.CenterY() {
		t.Error("camera not centered on node")
	}
	// The node now spans half the viewport width.
	sx1, _ := n.Cam.Project(g.X, g.Y, n.ViewW, n.ViewH)
	sx2, _ := n.Cam.Project(g.X+g.W, g.Y, n.ViewW, n.ViewH)
	if math.Abs((sx2-sx1)-250) > 1e-6 {
		t.Errorf("node spans %g px, want 250", sx2-sx1)
	}
	if n.ZoomToNode("absent", 0.5) {
		t.Error("zoom to unknown node succeeded")
	}
}

func TestVisibleCulling(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 500, 300)
	n.ZoomToNode(nodeName(0, 0), 0.8)
	vis := n.Visible()
	if len(vis) == 0 || len(vis) >= 60 {
		t.Errorf("culled visible = %d", len(vis))
	}
	found := false
	for _, id := range vis {
		if id == nodeName(0, 0) {
			found = true
		}
	}
	if !found {
		t.Error("focused node not visible")
	}
}
