package zvtm

// NavController maps input gestures to camera operations, reproducing
// ZGrviewer's "keyboard and mouse scroll based navigation with zooming
// ability on individual nodes and edges" (paper §3.1). It is a pure
// state machine over the camera — the terminal/headless front ends feed
// it decoded key and scroll events.

// Key identifies a navigation key.
type Key int

// Navigation keys.
const (
	KeyUp Key = iota
	KeyDown
	KeyLeft
	KeyRight
	KeyZoomIn  // '+'
	KeyZoomOut // '-'
	KeyHome    // reset to overview
)

// NavController drives a camera over a virtual space through key and
// scroll events.
type NavController struct {
	Cam   *Camera
	Space *VirtualSpace
	// ViewW and ViewH are the viewport dimensions used for projections.
	ViewW, ViewH float64
	// PanFraction is the pan step as a fraction of the visible extent
	// (default 0.15).
	PanFraction float64
	// ZoomFraction is the zoom step (default 0.2).
	ZoomFraction float64

	home Camera
}

// NewNavController positions the camera for an overview of the space
// (fit-to-view) and remembers it as home.
func NewNavController(vs *VirtualSpace, viewW, viewH float64) *NavController {
	cam := &Camera{}
	n := &NavController{
		Cam: cam, Space: vs, ViewW: viewW, ViewH: viewH,
		PanFraction: 0.15, ZoomFraction: 0.2,
	}
	n.FitToView()
	n.home = *cam
	return n
}

// FitToView centers the camera on the space and zooms so everything is
// visible.
func (n *NavController) FitToView() {
	if n.Space.W <= 0 || n.Space.H <= 0 {
		n.Cam.CX, n.Cam.CY, n.Cam.Alt = 0, 0, 0
		return
	}
	n.Cam.CenterOn(n.Space.W/2, n.Space.H/2)
	// Required zoom: view covers the full extent in both axes.
	zx := n.ViewW / n.Space.W
	zy := n.ViewH / n.Space.H
	z := zx
	if zy < z {
		z = zy
	}
	if z > 1 {
		z = 1 // don't magnify small graphs for the overview
	}
	n.Cam.Alt = focal/z - focal
}

// HandleKey applies one key press.
func (n *NavController) HandleKey(k Key) {
	_, _, visW, visH := n.Cam.VisibleBounds(n.ViewW, n.ViewH)
	switch k {
	case KeyUp:
		n.Cam.CY -= visH * n.PanFraction
	case KeyDown:
		n.Cam.CY += visH * n.PanFraction
	case KeyLeft:
		n.Cam.CX -= visW * n.PanFraction
	case KeyRight:
		n.Cam.CX += visW * n.PanFraction
	case KeyZoomIn:
		n.Cam.ZoomIn(n.ZoomFraction)
	case KeyZoomOut:
		n.Cam.ZoomOut(n.ZoomFraction)
	case KeyHome:
		*n.Cam = n.home
	}
}

// HandleScroll zooms by wheel clicks keeping the world point under the
// cursor fixed — ZVTM's scroll-to-zoom. sx, sy are viewport coordinates;
// positive clicks zoom in.
func (n *NavController) HandleScroll(sx, sy float64, clicks int) {
	if clicks == 0 {
		return
	}
	// The world point under the cursor before zooming...
	wx, wy := n.Cam.Unproject(sx, sy, n.ViewW, n.ViewH)
	steps := clicks
	if steps < 0 {
		steps = -steps
	}
	for i := 0; i < steps; i++ {
		if clicks > 0 {
			n.Cam.ZoomIn(n.ZoomFraction)
		} else {
			n.Cam.ZoomOut(n.ZoomFraction)
		}
	}
	// ...must stay under the cursor afterwards: solve for the camera
	// center that projects (wx, wy) back to (sx, sy).
	z := n.Cam.Zoom()
	n.Cam.CX = wx - (sx-n.ViewW/2)/z
	n.Cam.CY = wy - (sy-n.ViewH/2)/z
}

// HandleDrag pans by a viewport-space delta (mouse drag).
func (n *NavController) HandleDrag(dxPx, dyPx float64) {
	z := n.Cam.Zoom()
	if z == 0 {
		return
	}
	n.Cam.CX -= dxPx / z
	n.Cam.CY -= dyPx / z
}

// ClickNode picks the node under a viewport coordinate.
func (n *NavController) ClickNode(sx, sy float64) (string, bool) {
	wx, wy := n.Cam.Unproject(sx, sy, n.ViewW, n.ViewH)
	return n.Space.PickNode(wx, wy)
}

// ZoomToNode centers and magnifies one node — the demo's "zooming
// ability on individual nodes".
func (n *NavController) ZoomToNode(nodeID string, frac float64) bool {
	gs := n.Space.NodeGlyphs(nodeID)
	if len(gs) == 0 {
		return false
	}
	n.Cam.CenterOnGlyph(gs[0], n.ViewW, frac)
	return true
}

// Visible returns the node IDs whose shapes intersect the current view,
// for viewport-culled rendering of >1000-node graphs.
func (n *NavController) Visible() []string {
	x, y, w, h := n.Cam.VisibleBounds(n.ViewW, n.ViewH)
	var out []string
	for _, id := range n.Space.NodeIDs() {
		for _, g := range n.Space.NodeGlyphs(id) {
			if g.Kind != ShapeGlyph {
				continue
			}
			if g.X < x+w && x < g.X+g.W && g.Y < y+h && y < g.Y+g.H {
				out = append(out, id)
			}
			break
		}
	}
	return out
}
