// Package zvtm reproduces the object model of the ZVTM toolkit and its
// ZGrviewer component, the GUI substrate of the original Stethoscope
// (paper §3.1). ZVTM represents every drawable as a Glyph — "for our
// example graph, ZGrviewer maintains following objects, shape (two
// objects), text (two objects), and edge (one object)" — placed in a
// VirtualSpace (an infinite canvas) observed through a Camera that
// provides pan/zoom navigation, plus lenses such as the fisheye.
//
// The original is a Java/Swing GUI; Go has no comparable native toolkit
// (repro note in DESIGN.md), so this package implements the geometry and
// object model headlessly. Every interaction the demo shows — zoom to a
// node, color a node, pick under the cursor, animate a transition — is a
// deterministic, testable API call, and rendering goes through
// internal/svg or internal/ascii instead of a window.
package zvtm

import (
	"fmt"
	"sort"

	"stethoscope/internal/svg"
)

// GlyphKind discriminates the three fundamental ZVTM graphical objects.
type GlyphKind int

// Glyph kinds, per the paper's shape/text/edge enumeration.
const (
	ShapeGlyph GlyphKind = iota
	TextGlyph
	EdgeGlyph
)

// String names the kind.
func (k GlyphKind) String() string {
	switch k {
	case ShapeGlyph:
		return "shape"
	case TextGlyph:
		return "text"
	default:
		return "edge"
	}
}

// Glyph is one graphical object in a virtual space. Shapes and texts
// carry a bounding box; edges carry both endpoints. NodeID links the
// glyph back to its dot node ("n3"), the hook Stethoscope's coloring and
// tooltips use.
type Glyph struct {
	ID     string
	Kind   GlyphKind
	NodeID string // owning graph node, empty for edges

	X, Y, W, H float64 // box (shapes, texts)
	X2, Y2     float64 // second endpoint (edges; X,Y is the first)

	Text  string // label contents (texts)
	Color string // current fill/stroke color
}

// CenterX returns the horizontal center of a box glyph.
func (g *Glyph) CenterX() float64 { return g.X + g.W/2 }

// CenterY returns the vertical center of a box glyph.
func (g *Glyph) CenterY() float64 { return g.Y + g.H/2 }

// Contains reports whether a world point hits the glyph (box glyphs
// only).
func (g *Glyph) Contains(x, y float64) bool {
	if g.Kind == EdgeGlyph {
		return false
	}
	return x >= g.X && x <= g.X+g.W && y >= g.Y && y <= g.Y+g.H
}

// VirtualSpace is the canvas holding all glyphs, indexed by owning node.
type VirtualSpace struct {
	Name   string
	W, H   float64
	glyphs []*Glyph
	byNode map[string][]*Glyph
	byID   map[string]*Glyph
}

// NewVirtualSpace returns an empty space.
func NewVirtualSpace(name string) *VirtualSpace {
	return &VirtualSpace{Name: name, byNode: map[string][]*Glyph{}, byID: map[string]*Glyph{}}
}

// Add inserts a glyph. Duplicate IDs are rejected.
func (vs *VirtualSpace) Add(g *Glyph) error {
	if _, ok := vs.byID[g.ID]; ok {
		return fmt.Errorf("zvtm: duplicate glyph id %q", g.ID)
	}
	vs.glyphs = append(vs.glyphs, g)
	vs.byID[g.ID] = g
	if g.NodeID != "" {
		vs.byNode[g.NodeID] = append(vs.byNode[g.NodeID], g)
	}
	return nil
}

// Glyphs returns all glyphs in insertion order.
func (vs *VirtualSpace) Glyphs() []*Glyph { return vs.glyphs }

// Glyph looks a glyph up by ID.
func (vs *VirtualSpace) Glyph(id string) (*Glyph, bool) {
	g, ok := vs.byID[id]
	return g, ok
}

// NodeGlyphs returns the glyphs belonging to a graph node.
func (vs *VirtualSpace) NodeGlyphs(nodeID string) []*Glyph { return vs.byNode[nodeID] }

// NodeIDs returns all node IDs with glyphs, sorted.
func (vs *VirtualSpace) NodeIDs() []string {
	ids := make([]string, 0, len(vs.byNode))
	for id := range vs.byNode {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CountKind counts glyphs of one kind — used to verify the paper's
// object accounting (2 shapes + 2 texts + 1 edge for a 2-node/1-edge
// graph).
func (vs *VirtualSpace) CountKind(k GlyphKind) int {
	n := 0
	for _, g := range vs.glyphs {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// SetNodeColor recolors every shape glyph of a node; it reports whether
// the node exists. This is the primitive Stethoscope's execution-state
// coloring drives.
func (vs *VirtualSpace) SetNodeColor(nodeID, color string) bool {
	gs := vs.byNode[nodeID]
	if len(gs) == 0 {
		return false
	}
	for _, g := range gs {
		if g.Kind == ShapeGlyph {
			g.Color = color
		}
	}
	return true
}

// NodeColor returns the shape color of a node ("" when absent).
func (vs *VirtualSpace) NodeColor(nodeID string) string {
	for _, g := range vs.byNode[nodeID] {
		if g.Kind == ShapeGlyph {
			return g.Color
		}
	}
	return ""
}

// PickNode returns the node whose shape contains the world point,
// topmost (last added) first — ZVTM picking for tooltips and the debug
// window.
func (vs *VirtualSpace) PickNode(x, y float64) (string, bool) {
	for i := len(vs.glyphs) - 1; i >= 0; i-- {
		g := vs.glyphs[i]
		if g.Kind == ShapeGlyph && g.Contains(x, y) {
			return g.NodeID, true
		}
	}
	return "", false
}

// FromSVG builds the virtual space from a parsed SVG document, the final
// step of the paper's dot -> svg -> in-memory pipeline: one shape glyph
// and one text glyph per node, one edge glyph per line.
func FromSVG(name string, doc *svg.Doc) (*VirtualSpace, error) {
	vs := NewVirtualSpace(name)
	vs.W, vs.H = doc.Width, doc.Height
	ids := make([]string, 0, len(doc.Nodes))
	for id := range doc.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := doc.Nodes[id]
		shape := &Glyph{
			ID: "shape:" + id, Kind: ShapeGlyph, NodeID: id,
			X: n.X, Y: n.Y, W: n.W, H: n.H, Color: n.Fill,
		}
		if err := vs.Add(shape); err != nil {
			return nil, err
		}
		text := &Glyph{
			ID: "text:" + id, Kind: TextGlyph, NodeID: id,
			X: n.X, Y: n.Y, W: n.W, H: n.H, Text: n.Label,
		}
		if err := vs.Add(text); err != nil {
			return nil, err
		}
	}
	for i, e := range doc.Edges {
		edge := &Glyph{
			ID: fmt.Sprintf("edge:%d", i), Kind: EdgeGlyph,
			X: e.X1, Y: e.Y1, X2: e.X2, Y2: e.Y2,
		}
		if err := vs.Add(edge); err != nil {
			return nil, err
		}
	}
	return vs, nil
}
