package zvtm

import (
	"strings"
	"testing"
)

func TestRenderViewOverview(t *testing.T) {
	vs := gridSpace(t, 4, 3)
	n := NewNavController(vs, 800, 600)
	out, err := RenderViewString(vs, n.Cam, nil, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	// All 12 nodes visible in the overview.
	if got := strings.Count(out, `class="node"`); got != 12 {
		t.Errorf("rendered %d nodes, want 12", got)
	}
	if !strings.HasPrefix(out, "<svg") {
		t.Error("not an svg document")
	}
}

func TestRenderViewCullsOffscreen(t *testing.T) {
	vs := gridSpace(t, 10, 6)
	n := NewNavController(vs, 400, 300)
	n.ZoomToNode(nodeName(0, 0), 0.5)
	out, err := RenderViewString(vs, n.Cam, nil, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	rendered := strings.Count(out, `class="node"`)
	if rendered == 0 || rendered >= 60 {
		t.Errorf("culling rendered %d of 60", rendered)
	}
	if !strings.Contains(out, `id="`+nodeName(0, 0)+`"`) {
		t.Error("focused node missing from view")
	}
}

func TestRenderViewColorsAndLabels(t *testing.T) {
	vs := NewVirtualSpace("v")
	vs.W, vs.H = 200, 100
	vs.Add(&Glyph{ID: "shape:n0", Kind: ShapeGlyph, NodeID: "n0", X: 10, Y: 10, W: 100, H: 30, Color: "#e03131"})
	vs.Add(&Glyph{ID: "text:n0", Kind: TextGlyph, NodeID: "n0", X: 10, Y: 10, W: 100, H: 30, Text: `a < "b"`})
	cam := &Camera{CX: 100, CY: 50}
	out, err := RenderViewString(vs, cam, nil, 400, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `fill="#e03131"`) {
		t.Error("state color not rendered")
	}
	if !strings.Contains(out, "a &lt; &quot;b&quot;") {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestRenderViewLabelLoD(t *testing.T) {
	// At very low zoom the labels are suppressed.
	vs := gridSpace(t, 10, 6)
	cam := &Camera{CX: 500, CY: 180, Alt: 5000} // zoom ~0.02
	vs.Add(&Glyph{ID: "text:" + nodeName(0, 0), Kind: TextGlyph, NodeID: nodeName(0, 0), Text: "label"})
	out, err := RenderViewString(vs, cam, nil, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<text") {
		t.Error("labels rendered at illegible zoom")
	}
}

func TestRenderViewWithFisheye(t *testing.T) {
	vs := gridSpace(t, 6, 4)
	n := NewNavController(vs, 800, 600)
	g := vs.NodeGlyphs(nodeName(1, 1))[0]
	lens := &FisheyeLens{FX: g.CenterX(), FY: g.CenterY(), Radius: 200, Mag: 3}
	plain, err := RenderViewString(vs, n.Cam, nil, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	lensed, err := RenderViewString(vs, n.Cam, lens, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	if plain == lensed {
		t.Error("fisheye lens had no effect on the rendering")
	}
}

func TestRenderViewBadViewport(t *testing.T) {
	vs := NewVirtualSpace("v")
	if _, err := RenderViewString(vs, &Camera{}, nil, 0, 100); err == nil {
		t.Error("zero-width viewport accepted")
	}
}
