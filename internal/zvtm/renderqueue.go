package zvtm

import (
	"sync"
	"time"
)

// RenderRequest is one queued node recoloring.
type RenderRequest struct {
	NodeID     string
	Color      string
	EnqueuedAt time.Time
}

// Dispatched records when a request was actually rendered.
type Dispatched struct {
	RenderRequest
	DispatchedAt time.Time
}

// RenderQueue emulates the Java Event Dispatch Thread queuing that the
// original Stethoscope must work around: "Coloring graph nodes in an
// online stream is a complex task due to rendering limitations from the
// Java system. The Stethoscope uses the Java Event Dispatch thread
// queuing framework for queuing up nodes to render. This introduces a
// delay of up-to 150ms between rendering of consecutive nodes." (§4.2.1)
//
// Requests are applied to the virtual space at most one per Delay
// interval; coalescing keeps only the newest color per node while it
// waits. The queue's existence is why the online coloring algorithm must
// elide short-lived start/done pairs (experiment E6).
type RenderQueue struct {
	mu        sync.Mutex
	vs        *VirtualSpace
	delay     time.Duration
	pending   []RenderRequest
	byNode    map[string]int // pending index per node for coalescing
	lastFlush time.Time
	history   []Dispatched
}

// DefaultDispatchDelay is the paper's 150 ms ceiling.
const DefaultDispatchDelay = 150 * time.Millisecond

// NewRenderQueue wraps a virtual space. delay <= 0 selects the paper's
// 150 ms.
func NewRenderQueue(vs *VirtualSpace, delay time.Duration) *RenderQueue {
	if delay <= 0 {
		delay = DefaultDispatchDelay
	}
	return &RenderQueue{vs: vs, delay: delay, byNode: map[string]int{}}
}

// Delay returns the configured per-dispatch latency.
func (q *RenderQueue) Delay() time.Duration { return q.delay }

// Enqueue schedules a node recoloring at time now. A pending request for
// the same node is overwritten (the EDT coalesces repaint events).
func (q *RenderQueue) Enqueue(nodeID, color string, now time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if i, ok := q.byNode[nodeID]; ok {
		q.pending[i].Color = color
		q.pending[i].EnqueuedAt = now
		return
	}
	q.byNode[nodeID] = len(q.pending)
	q.pending = append(q.pending, RenderRequest{NodeID: nodeID, Color: color, EnqueuedAt: now})
}

// Flush dispatches every request whose turn has come by `now`: one
// request per delay interval since the previous dispatch. It returns the
// requests rendered by this call.
func (q *RenderQueue) Flush(now time.Time) []Dispatched {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Dispatched
	for len(q.pending) > 0 {
		next := q.lastFlush.Add(q.delay)
		if q.lastFlush.IsZero() {
			next = q.pending[0].EnqueuedAt
		}
		if next.Before(q.pending[0].EnqueuedAt) {
			next = q.pending[0].EnqueuedAt
		}
		if next.After(now) {
			break
		}
		req := q.pending[0]
		q.pending = q.pending[1:]
		delete(q.byNode, req.NodeID)
		for n, i := range q.byNode {
			q.byNode[n] = i - 1
		}
		q.vs.SetNodeColor(req.NodeID, req.Color)
		d := Dispatched{RenderRequest: req, DispatchedAt: next}
		q.history = append(q.history, d)
		out = append(out, d)
		q.lastFlush = next
	}
	return out
}

// PendingLen reports how many requests wait for dispatch.
func (q *RenderQueue) PendingLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// History returns all dispatches so far.
func (q *RenderQueue) History() []Dispatched {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]Dispatched(nil), q.history...)
}

// InterRenderDelays returns the gaps between consecutive dispatches,
// the quantity the paper bounds at 150 ms (experiment E6).
func (q *RenderQueue) InterRenderDelays() []time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []time.Duration
	for i := 1; i < len(q.history); i++ {
		out = append(out, q.history[i].DispatchedAt.Sub(q.history[i-1].DispatchedAt))
	}
	return out
}
