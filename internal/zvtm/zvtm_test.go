package zvtm

import (
	"math"
	"testing"
	"time"

	"stethoscope/internal/dot"
	"stethoscope/internal/layout"
	"stethoscope/internal/svg"
)

// twoNodeSpace reproduces the paper's worked example: a two-node graph
// with one edge.
func twoNodeSpace(t testing.TB) *VirtualSpace {
	t.Helper()
	g := dot.NewGraph("pair")
	g.AddNode("n0", map[string]string{"label": "first"})
	g.AddNode("n1", map[string]string{"label": "second"})
	g.AddEdge("n0", "n1", nil)
	lay, err := layout.Compute(g, layout.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := svg.RenderString(g, lay, nil, svg.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := svg.ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := FromSVG("pair", doc)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestPaperGlyphAccounting(t *testing.T) {
	// "ZGrviewer maintains following objects, shape (two objects), text
	// (two objects), and edge (one object)." — §3.1
	vs := twoNodeSpace(t)
	if got := vs.CountKind(ShapeGlyph); got != 2 {
		t.Errorf("shape glyphs = %d, want 2", got)
	}
	if got := vs.CountKind(TextGlyph); got != 2 {
		t.Errorf("text glyphs = %d, want 2", got)
	}
	if got := vs.CountKind(EdgeGlyph); got != 1 {
		t.Errorf("edge glyphs = %d, want 1", got)
	}
}

func TestNodeColorRoundTrip(t *testing.T) {
	vs := twoNodeSpace(t)
	if !vs.SetNodeColor("n0", "#ff0000") {
		t.Fatal("SetNodeColor failed")
	}
	if got := vs.NodeColor("n0"); got != "#ff0000" {
		t.Errorf("color = %q", got)
	}
	if vs.SetNodeColor("nope", "#000") {
		t.Error("coloring unknown node succeeded")
	}
	if got := vs.NodeColor("nope"); got != "" {
		t.Errorf("unknown node color = %q", got)
	}
}

func TestPickNode(t *testing.T) {
	vs := twoNodeSpace(t)
	shape := vs.NodeGlyphs("n1")[0]
	id, ok := vs.PickNode(shape.CenterX(), shape.CenterY())
	if !ok || id != "n1" {
		t.Errorf("pick = %q, %v", id, ok)
	}
	if _, ok := vs.PickNode(-1000, -1000); ok {
		t.Error("picked in empty space")
	}
}

func TestDuplicateGlyphRejected(t *testing.T) {
	vs := NewVirtualSpace("x")
	if err := vs.Add(&Glyph{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := vs.Add(&Glyph{ID: "a"}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestCameraProjectUnprojectInverse(t *testing.T) {
	cam := &Camera{CX: 50, CY: 80, Alt: 120}
	for _, pt := range [][2]float64{{0, 0}, {50, 80}, {-30, 200}, {999, -1}} {
		sx, sy := cam.Project(pt[0], pt[1], 800, 600)
		wx, wy := cam.Unproject(sx, sy, 800, 600)
		if math.Abs(wx-pt[0]) > 1e-9 || math.Abs(wy-pt[1]) > 1e-9 {
			t.Errorf("round trip (%g,%g) -> (%g,%g)", pt[0], pt[1], wx, wy)
		}
	}
}

func TestCameraZoomSemantics(t *testing.T) {
	cam := &Camera{}
	if cam.Zoom() != 1 {
		t.Errorf("zoom at alt 0 = %g", cam.Zoom())
	}
	cam.ZoomOut(0.5)
	if cam.Zoom() >= 1 {
		t.Error("zooming out did not reduce magnification")
	}
	z := cam.Zoom()
	cam.ZoomIn(0.5)
	if cam.Zoom() <= z {
		t.Error("zooming in did not increase magnification")
	}
	// Altitude may go negative (zoom > 1) but never reaches the
	// degenerate -focal limit.
	for i := 0; i < 500; i++ {
		cam.ZoomIn(0.9)
	}
	if cam.Zoom() <= 0 || math.IsInf(cam.Zoom(), 0) {
		t.Errorf("zoom degenerated to %g", cam.Zoom())
	}
}

func TestCameraVisibleBounds(t *testing.T) {
	cam := &Camera{CX: 100, CY: 100, Alt: 100} // zoom = 0.5
	x, y, w, h := cam.VisibleBounds(400, 300)
	if w != 800 || h != 600 {
		t.Errorf("visible size = %gx%g", w, h)
	}
	if x != -300 || y != -200 {
		t.Errorf("visible origin = (%g,%g)", x, y)
	}
}

func TestCenterOnGlyph(t *testing.T) {
	cam := &Camera{Alt: 500}
	g := &Glyph{ID: "s", Kind: ShapeGlyph, X: 100, Y: 200, W: 50, H: 20}
	cam.CenterOnGlyph(g, 800, 0.5)
	if cam.CX != 125 || cam.CY != 210 {
		t.Errorf("camera at (%g,%g)", cam.CX, cam.CY)
	}
	// Glyph should now project to half the viewport width: zoom = 8.
	if math.Abs(cam.Zoom()-8) > 1e-9 {
		t.Errorf("zoom = %g, want 8", cam.Zoom())
	}
}

func TestFisheyeLensProperties(t *testing.T) {
	l := &FisheyeLens{FX: 0, FY: 0, Radius: 100, Mag: 3}
	// Focus is a fixpoint.
	if x, y := l.Transform(0, 0); x != 0 || y != 0 {
		t.Errorf("focus moved to (%g,%g)", x, y)
	}
	// Points outside the radius are unchanged.
	if x, y := l.Transform(150, 0); x != 150 || y != 0 {
		t.Errorf("outside point moved to (%g,%g)", x, y)
	}
	// The boundary is continuous: g(1) = 1.
	if x, _ := l.Transform(100, 0); math.Abs(x-100) > 1e-9 {
		t.Errorf("boundary discontinuity: %g", x)
	}
	// Inside points are pushed outward, monotonically.
	prev := 0.0
	for d := 10.0; d < 100; d += 10 {
		x, _ := l.Transform(d, 0)
		if x <= d {
			t.Errorf("point at %g not magnified outward (%g)", d, x)
		}
		if x <= prev {
			t.Errorf("fisheye not monotonic at %g", d)
		}
		prev = x
	}
	// Center magnification matches Mag.
	if m := l.Magnification(0); math.Abs(m-3) > 1e-9 {
		t.Errorf("center magnification = %g", m)
	}
	if m := l.Magnification(200); m != 1 {
		t.Errorf("outside magnification = %g", m)
	}
}

func TestAnimatorReachesTargetExactly(t *testing.T) {
	cam := &Camera{CX: 0, CY: 0, Alt: 100}
	var a Animator
	a.AnimateCameraTo(cam, 100, 50, 0, 100)
	steps := 0
	for a.Tick(7) {
		steps++
		if steps > 1000 {
			t.Fatal("animation never ends")
		}
	}
	if cam.CX != 100 || cam.CY != 50 || cam.Alt != 0 {
		t.Errorf("final camera = (%g,%g,%g)", cam.CX, cam.CY, cam.Alt)
	}
}

func TestAnimatorQueuesSequentially(t *testing.T) {
	cam := &Camera{}
	var a Animator
	a.AnimateCameraTo(cam, 10, 0, 0, 50)
	a.AnimateCameraTo(cam, 20, 0, 0, 50)
	// Run the first to completion.
	a.Tick(50)
	if cam.CX != 10 {
		t.Errorf("after first animation CX = %g", cam.CX)
	}
	if !a.Active() {
		t.Fatal("second animation lost")
	}
	a.Tick(50)
	if cam.CX != 20 {
		t.Errorf("after second animation CX = %g", cam.CX)
	}
	if a.Active() {
		t.Error("animator still active")
	}
}

func TestAnimatorMidpointIsSmooth(t *testing.T) {
	cam := &Camera{}
	var a Animator
	a.AnimateCameraTo(cam, 100, 0, 0, 100)
	a.Tick(50)
	// smoothstep(0.5) = 0.5 exactly.
	if math.Abs(cam.CX-50) > 1e-9 {
		t.Errorf("midpoint CX = %g", cam.CX)
	}
}

func TestRenderQueueDispatchPacing(t *testing.T) {
	vs := twoNodeSpace(t)
	q := NewRenderQueue(vs, 150*time.Millisecond)
	t0 := time.Unix(0, 0)
	q.Enqueue("n0", "red", t0)
	q.Enqueue("n1", "red", t0)

	// At t0, only the first dispatches.
	out := q.Flush(t0)
	if len(out) != 1 || out[0].NodeID != "n0" {
		t.Fatalf("first flush = %+v", out)
	}
	if vs.NodeColor("n0") != "red" {
		t.Error("color not applied")
	}
	if vs.NodeColor("n1") == "red" {
		t.Error("second applied too early")
	}
	// 149ms later: still waiting.
	if out := q.Flush(t0.Add(149 * time.Millisecond)); len(out) != 0 {
		t.Fatalf("early flush dispatched %d", len(out))
	}
	// 150ms later: second dispatches.
	out = q.Flush(t0.Add(150 * time.Millisecond))
	if len(out) != 1 || out[0].NodeID != "n1" {
		t.Fatalf("second flush = %+v", out)
	}
	// Inter-render delays never exceed the configured ceiling given a
	// saturated queue.
	for _, d := range q.InterRenderDelays() {
		if d > 150*time.Millisecond {
			t.Errorf("inter-render delay %v exceeds ceiling", d)
		}
	}
}

func TestRenderQueueCoalescesPerNode(t *testing.T) {
	vs := twoNodeSpace(t)
	q := NewRenderQueue(vs, 150*time.Millisecond)
	t0 := time.Unix(0, 0)
	q.Enqueue("n0", "red", t0)
	q.Enqueue("n0", "green", t0.Add(time.Millisecond))
	if q.PendingLen() != 1 {
		t.Fatalf("pending = %d, want 1 (coalesced)", q.PendingLen())
	}
	out := q.Flush(t0.Add(time.Second))
	if len(out) != 1 || out[0].Color != "green" {
		t.Fatalf("dispatched = %+v", out)
	}
	if vs.NodeColor("n0") != "green" {
		t.Error("latest color not applied")
	}
}

func TestRenderQueueDefaultDelay(t *testing.T) {
	q := NewRenderQueue(NewVirtualSpace("x"), 0)
	if q.Delay() != DefaultDispatchDelay {
		t.Errorf("default delay = %v", q.Delay())
	}
}

func TestRenderQueueBurstThroughput(t *testing.T) {
	vs := twoNodeSpace(t)
	q := NewRenderQueue(vs, 10*time.Millisecond)
	t0 := time.Unix(100, 0)
	// Alternate colors on two nodes rapidly; coalescing bounds pending at 2.
	for i := 0; i < 100; i++ {
		q.Enqueue("n0", "red", t0.Add(time.Duration(i)*time.Millisecond))
		q.Enqueue("n1", "green", t0.Add(time.Duration(i)*time.Millisecond))
	}
	if q.PendingLen() != 2 {
		t.Fatalf("pending = %d", q.PendingLen())
	}
	out := q.Flush(t0.Add(time.Second))
	if len(out) != 2 {
		t.Fatalf("dispatched = %d", len(out))
	}
}
