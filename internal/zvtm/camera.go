package zvtm

import (
	"math"
)

// focal is the ZVTM camera focal constant: zoom = focal / (focal + alt).
const focal = 100.0

// Camera observes a virtual space from (CX, CY) at altitude Alt. ZVTM
// semantics: altitude 0 is 1:1; higher altitudes zoom out. "A camera
// object ... shows different views at different zoom levels, in a virtual
// space" (paper §3.1).
type Camera struct {
	CX, CY float64
	Alt    float64
}

// Zoom returns the current magnification factor.
func (c *Camera) Zoom() float64 { return focal / (focal + c.Alt) }

// Project maps a world point to viewport coordinates for a viewport of
// the given size centered on the camera.
func (c *Camera) Project(wx, wy, viewW, viewH float64) (sx, sy float64) {
	z := c.Zoom()
	return (wx-c.CX)*z + viewW/2, (wy-c.CY)*z + viewH/2
}

// Unproject maps viewport coordinates back to world coordinates.
func (c *Camera) Unproject(sx, sy, viewW, viewH float64) (wx, wy float64) {
	z := c.Zoom()
	return (sx-viewW/2)/z + c.CX, (sy-viewH/2)/z + c.CY
}

// VisibleBounds returns the world rectangle visible through a viewport.
func (c *Camera) VisibleBounds(viewW, viewH float64) (x, y, w, h float64) {
	z := c.Zoom()
	w = viewW / z
	h = viewH / z
	return c.CX - w/2, c.CY - h/2, w, h
}

// minAlt bounds magnification: altitude may go negative (zoom > 1, as
// in ZVTM) but must stay above -focal where the projection degenerates.
const minAlt = -focal + 1e-6

// ZoomIn lowers the altitude by fraction f of the distance to the
// degenerate limit, increasing magnification.
func (c *Camera) ZoomIn(f float64) {
	c.Alt -= (c.Alt + focal) * f
	if c.Alt < minAlt {
		c.Alt = minAlt
	}
}

// ZoomOut raises altitude by fraction f of the focal constant, so
// zooming out from altitude 0 works.
func (c *Camera) ZoomOut(f float64) {
	c.Alt += (c.Alt + focal) * f
}

// CenterOn pans the camera to the world point.
func (c *Camera) CenterOn(x, y float64) { c.CX, c.CY = x, y }

// CenterOnGlyph pans to a glyph's center and optionally sets the
// altitude so the glyph fills frac of the viewport width.
func (c *Camera) CenterOnGlyph(g *Glyph, viewW, frac float64) {
	c.CenterOn(g.CenterX(), g.CenterY())
	if frac > 0 && g.W > 0 {
		// zoom needed: g.W * zoom = viewW * frac.
		z := viewW * frac / g.W
		if z > 0 {
			c.Alt = focal/z - focal
			if c.Alt < minAlt {
				c.Alt = minAlt
			}
		}
	}
}

// FisheyeLens is a graphical fisheye (Sarkar–Brown style): points within
// Radius of the focus are pushed outward, magnifying the center. ZVTM
// ships "a set of lenses viz. fish eye lens, etc." (paper §3.1).
type FisheyeLens struct {
	FX, FY float64 // focus in world coordinates
	Radius float64
	Mag    float64 // magnification at the focus, > 1
}

// Transform distorts a world point. Points outside the radius are
// unchanged; the focus itself is a fixpoint; in between, points are
// displaced outward with magnification falling off linearly.
func (l *FisheyeLens) Transform(x, y float64) (float64, float64) {
	dx, dy := x-l.FX, y-l.FY
	d := math.Hypot(dx, dy)
	if d >= l.Radius || d == 0 || l.Radius <= 0 {
		return x, y
	}
	// Normalized distance and its magnified image.
	nd := d / l.Radius
	m := l.Mag
	if m < 1 {
		m = 1
	}
	// g(nd) = (m*nd) / ((m-1)*nd + 1): g(0)=0, g(1)=1, slope m at 0.
	g := (m * nd) / ((m-1)*nd + 1)
	scale := g / nd
	return l.FX + dx*scale, l.FY + dy*scale
}

// Magnification returns the local magnification factor at distance d
// from the focus (1 outside the radius).
func (l *FisheyeLens) Magnification(d float64) float64 {
	if d >= l.Radius || l.Radius <= 0 {
		return 1
	}
	nd := d / l.Radius
	m := l.Mag
	if m < 1 {
		m = 1
	}
	den := (m-1)*nd + 1
	return m / (den * den)
}

// CameraAnimation interpolates the camera between two poses with
// smoothstep easing — the "animation effects such as change of zoom
// level ... and transition time between highlights of nodes" of the demo.
type CameraAnimation struct {
	cam              *Camera
	fromX, fromY     float64
	fromAlt          float64
	toX, toY, toAlt  float64
	durMs, elapsedMs float64
}

// Animator steps queued animations with an explicit clock, keeping
// behavior deterministic in tests and headless replays.
type Animator struct {
	queue []*CameraAnimation
}

// AnimateCameraTo queues a camera move to (x, y, alt) over durMs
// milliseconds. Queued animations run one after another.
func (a *Animator) AnimateCameraTo(cam *Camera, x, y, alt, durMs float64) {
	if durMs <= 0 {
		durMs = 1
	}
	a.queue = append(a.queue, &CameraAnimation{
		cam: cam, toX: x, toY: y, toAlt: alt, durMs: durMs,
		fromX: math.NaN(), // captured when the animation starts
	})
}

// Active reports whether animations remain.
func (a *Animator) Active() bool { return len(a.queue) > 0 }

// Tick advances the current animation by dtMs milliseconds and reports
// whether any animation is still active afterwards.
func (a *Animator) Tick(dtMs float64) bool {
	if len(a.queue) == 0 {
		return false
	}
	an := a.queue[0]
	if math.IsNaN(an.fromX) {
		an.fromX, an.fromY, an.fromAlt = an.cam.CX, an.cam.CY, an.cam.Alt
	}
	an.elapsedMs += dtMs
	t := an.elapsedMs / an.durMs
	if t >= 1 {
		an.cam.CX, an.cam.CY, an.cam.Alt = an.toX, an.toY, an.toAlt
		a.queue = a.queue[1:]
		return len(a.queue) > 0
	}
	s := t * t * (3 - 2*t) // smoothstep
	an.cam.CX = an.fromX + (an.toX-an.fromX)*s
	an.cam.CY = an.fromY + (an.toY-an.fromY)*s
	an.cam.Alt = an.fromAlt + (an.toAlt-an.fromAlt)*s
	return true
}
