package sql

import (
	"fmt"
	"strings"
)

// Expr is a SQL expression node.
type Expr interface {
	fmt.Stringer
	expr()
}

// ColRef references a column, optionally qualified by table or alias.
type ColRef struct {
	Table  string // optional qualifier
	Column string
}

func (c *ColRef) expr() {}
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

func (l *IntLit) expr()          {}
func (l *IntLit) String() string { return fmt.Sprintf("%d", l.Value) }

// FltLit is a floating-point literal.
type FltLit struct{ Value float64 }

func (l *FltLit) expr()          {}
func (l *FltLit) String() string { return fmt.Sprintf("%g", l.Value) }

// StrLit is a string literal.
type StrLit struct{ Value string }

func (l *StrLit) expr()          {}
func (l *StrLit) String() string { return "'" + strings.ReplaceAll(l.Value, "'", "''") + "'" }

// DateLit is a date literal written date 'YYYY-MM-DD', stored as days
// since the Unix epoch.
type DateLit struct {
	Days int64
	Text string // original YYYY-MM-DD spelling
}

func (l *DateLit) expr()          {}
func (l *DateLit) String() string { return "date '" + l.Text + "'" }

// BinExpr is a binary operation: arithmetic (+ - * /), comparison
// (= != < <= > >=) or boolean (and, or).
type BinExpr struct {
	Op   string
	L, R Expr
}

func (b *BinExpr) expr() {}
func (b *BinExpr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// NotExpr is boolean negation.
type NotExpr struct{ E Expr }

func (n *NotExpr) expr()          {}
func (n *NotExpr) String() string { return "not " + n.E.String() }

// BetweenExpr is "e between lo and hi" (inclusive both ends).
type BetweenExpr struct {
	E, Lo, Hi Expr
}

func (b *BetweenExpr) expr() {}
func (b *BetweenExpr) String() string {
	return b.E.String() + " between " + b.Lo.String() + " and " + b.Hi.String()
}

// LikeExpr is "e [not] like 'pattern'" with SQL wildcards % and _.
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
}

func (l *LikeExpr) expr() {}
func (l *LikeExpr) String() string {
	op := " like "
	if l.Not {
		op = " not like "
	}
	return l.E.String() + op + "'" + strings.ReplaceAll(l.Pattern, "'", "''") + "'"
}

// InExpr is "e [not] in (v1, v2, ...)".
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

func (i *InExpr) expr() {}
func (i *InExpr) String() string {
	var b strings.Builder
	b.WriteString(i.E.String())
	if i.Not {
		b.WriteString(" not")
	}
	b.WriteString(" in (")
	for k, e := range i.List {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString(")")
	return b.String()
}

// AggExpr is an aggregate call: sum/count/min/max/avg. Star marks
// count(*).
type AggExpr struct {
	Func string
	Arg  Expr // nil when Star
	Star bool
}

func (a *AggExpr) expr() {}
func (a *AggExpr) String() string {
	if a.Star {
		return a.Func + "(*)"
	}
	return a.Func + "(" + a.Arg.String() + ")"
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return s.Expr.String() + " as " + s.Alias
	}
	return s.Expr.String()
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// JoinClause is one "join T on cond" step applied after the first table.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one order-by key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is the parsed query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Text     string
}

// String reconstructs a canonical SQL rendering of the statement.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Distinct {
		b.WriteString("distinct ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" from ")
	b.WriteString(s.From.String())
	for _, j := range s.Joins {
		b.WriteString(" join ")
		b.WriteString(j.Table.String())
		b.WriteString(" on ")
		b.WriteString(j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" where ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" order by ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" desc")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " limit %d", s.Limit)
	}
	return b.String()
}
