package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("select l_tax from lineitem where l_partkey = 1")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokKeyword, TokIdent, TokKeyword, TokIdent, TokOp, TokNumber, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("tok[%d] kind = %v, want %v (%q)", i, toks[i].Kind, k, toks[i].Text)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex("select 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokString || toks[1].Text != "it's" {
		t.Errorf("string = %q", toks[1].Text)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select 'oops"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("select @x"); err == nil {
		t.Error("illegal character accepted")
	}
}

func TestParsePaperQuery(t *testing.T) {
	// The exact query from the paper's Figure 1.
	stmt := mustParse(t, "select l_tax from lineitem where l_partkey=1")
	if len(stmt.Items) != 1 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	col, ok := stmt.Items[0].Expr.(*ColRef)
	if !ok || col.Column != "l_tax" {
		t.Errorf("item = %v", stmt.Items[0])
	}
	if stmt.From.Name != "lineitem" {
		t.Errorf("from = %q", stmt.From.Name)
	}
	cmp, ok := stmt.Where.(*BinExpr)
	if !ok || cmp.Op != "=" {
		t.Fatalf("where = %v", stmt.Where)
	}
	if l, ok := cmp.L.(*ColRef); !ok || l.Column != "l_partkey" {
		t.Errorf("where lhs = %v", cmp.L)
	}
	if r, ok := cmp.R.(*IntLit); !ok || r.Value != 1 {
		t.Errorf("where rhs = %v", cmp.R)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	stmt := mustParse(t, `select l_returnflag, sum(l_quantity) as qty, count(*) as n
		from lineitem group by l_returnflag order by l_returnflag`)
	if len(stmt.Items) != 3 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	agg, ok := stmt.Items[1].Expr.(*AggExpr)
	if !ok || agg.Func != "sum" || stmt.Items[1].Alias != "qty" {
		t.Errorf("sum item = %v", stmt.Items[1])
	}
	star, ok := stmt.Items[2].Expr.(*AggExpr)
	if !ok || !star.Star || star.Func != "count" {
		t.Errorf("count(*) item = %v", stmt.Items[2])
	}
	if len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 1 {
		t.Errorf("groupby=%d orderby=%d", len(stmt.GroupBy), len(stmt.OrderBy))
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, `select o_orderkey from orders
		join lineitem on l_orderkey = o_orderkey
		join customer on o_custkey = c_custkey`)
	if len(stmt.Joins) != 2 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	if stmt.Joins[0].Table.Name != "lineitem" || stmt.Joins[0].On == nil {
		t.Errorf("join[0] = %+v", stmt.Joins[0])
	}
	// Comma join without ON.
	stmt = mustParse(t, "select a from t1, t2 where x = y")
	if len(stmt.Joins) != 1 || stmt.Joins[0].On != nil {
		t.Errorf("comma join = %+v", stmt.Joins)
	}
	// inner join keyword form.
	stmt = mustParse(t, "select a from t1 inner join t2 on x = y")
	if len(stmt.Joins) != 1 || stmt.Joins[0].On == nil {
		t.Errorf("inner join = %+v", stmt.Joins)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "select a + b * c from t")
	add, ok := stmt.Items[0].Expr.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top = %v", stmt.Items[0].Expr)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Errorf("rhs = %v", add.R)
	}
	// and binds tighter than or.
	stmt = mustParse(t, "select a from t where x = 1 or y = 2 and z = 3")
	or, ok := stmt.Where.(*BinExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("where = %v", stmt.Where)
	}
	and, ok := or.R.(*BinExpr)
	if !ok || and.Op != "and" {
		t.Errorf("or rhs = %v", or.R)
	}
	// Parentheses override.
	stmt = mustParse(t, "select (a + b) * c from t")
	mul2, ok := stmt.Items[0].Expr.(*BinExpr)
	if !ok || mul2.Op != "*" {
		t.Errorf("paren expr = %v", stmt.Items[0].Expr)
	}
}

func TestParseBetweenAndDates(t *testing.T) {
	stmt := mustParse(t, "select a from t where d between date '1994-01-01' and date '1995-01-01'")
	bt, ok := stmt.Where.(*BetweenExpr)
	if !ok {
		t.Fatalf("where = %v", stmt.Where)
	}
	lo, ok := bt.Lo.(*DateLit)
	if !ok {
		t.Fatalf("lo = %v", bt.Lo)
	}
	if FormatDate(lo.Days) != "1994-01-01" {
		t.Errorf("date round trip = %s", FormatDate(lo.Days))
	}
	hi := bt.Hi.(*DateLit)
	if hi.Days-lo.Days != 365 {
		t.Errorf("1994 span = %d days", hi.Days-lo.Days)
	}
}

func TestParseNegativeNumbersAndNot(t *testing.T) {
	stmt := mustParse(t, "select a from t where x > -5 and not y = 2.5")
	and := stmt.Where.(*BinExpr)
	gt := and.L.(*BinExpr)
	if lit, ok := gt.R.(*IntLit); !ok || lit.Value != -5 {
		t.Errorf("negative literal = %v", gt.R)
	}
	not, ok := and.R.(*NotExpr)
	if !ok {
		t.Fatalf("not = %v", and.R)
	}
	eq := not.E.(*BinExpr)
	if lit, ok := eq.R.(*FltLit); !ok || lit.Value != 2.5 {
		t.Errorf("float literal = %v", eq.R)
	}
}

func TestParseDistinctAndLimit(t *testing.T) {
	stmt := mustParse(t, "select distinct a from t limit 10")
	if !stmt.Distinct || stmt.Limit != 10 {
		t.Errorf("distinct=%v limit=%d", stmt.Distinct, stmt.Limit)
	}
	stmt = mustParse(t, "select a from t")
	if stmt.Limit != -1 {
		t.Errorf("absent limit = %d", stmt.Limit)
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, "select l.l_tax t from lineitem l")
	if stmt.From.Alias != "l" {
		t.Errorf("table alias = %q", stmt.From.Alias)
	}
	if stmt.Items[0].Alias != "t" {
		t.Errorf("bare alias = %q", stmt.Items[0].Alias)
	}
	col := stmt.Items[0].Expr.(*ColRef)
	if col.Table != "l" || col.Column != "l_tax" {
		t.Errorf("qualified col = %v", col)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"update t set x = 1",
		"select",
		"select a from",
		"select a from t where",
		"select a from t limit -1",
		"select a from t group",
		"select count( from t",
		"select a from t join u",
		"select a from t where d between 1",
		"select a from t where d = date 'not-a-date'",
		"select a from t extra garbage",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestStringRoundTripReparses(t *testing.T) {
	queries := []string{
		"select l_tax from lineitem where l_partkey=1",
		"select distinct a, b + 1 as c from t where x > 2 and y < 3 order by a desc limit 5",
		"select sum(a) from t join u on t.x = u.y group by b",
		"select a from t where d between date '1994-01-01' and date '1995-01-01'",
	}
	for _, q := range queries {
		s1 := mustParse(t, q)
		text := s1.String()
		s2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q -> %q failed: %v", q, text, err)
		}
		if s2.String() != text {
			t.Errorf("unstable round trip:\n  %q\n  %q", text, s2.String())
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	stmt := mustParse(t, "SELECT L_TAX FROM LineItem WHERE l_partkey = 1")
	if stmt.From.Name != "lineitem" {
		t.Errorf("table name = %q", stmt.From.Name)
	}
	col := stmt.Items[0].Expr.(*ColRef)
	if col.Column != "l_tax" {
		t.Errorf("column = %q", col.Column)
	}
	if !strings.Contains(stmt.Text, "SELECT") {
		t.Error("original text should be preserved")
	}
}

func TestParseLikeAndIn(t *testing.T) {
	stmt := mustParse(t, "select a from t where p_type like 'PROMO%' and m in ('AIR', 'MAIL')")
	and := stmt.Where.(*BinExpr)
	like, ok := and.L.(*LikeExpr)
	if !ok || like.Pattern != "PROMO%" || like.Not {
		t.Fatalf("like = %+v", and.L)
	}
	in, ok := and.R.(*InExpr)
	if !ok || len(in.List) != 2 || in.Not {
		t.Fatalf("in = %+v", and.R)
	}
	// Negated forms.
	stmt = mustParse(t, "select a from t where x not like 'y%' and z not in (1, 2)")
	and = stmt.Where.(*BinExpr)
	if nl := and.L.(*LikeExpr); !nl.Not {
		t.Error("not like lost its negation")
	}
	if ni := and.R.(*InExpr); !ni.Not {
		t.Error("not in lost its negation")
	}
	// Round trip.
	text := stmt.String()
	if _, err := Parse(text); err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	// Errors.
	for _, bad := range []string{
		"select a from t where x not 5",
		"select a from t where x like 5",
		"select a from t where x in 1",
		"select a from t where x in ()",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}
