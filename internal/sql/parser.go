package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse parses a single SELECT statement.
func Parse(query string) (*SelectStmt, error) {
	toks, err := Lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: query}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	stmt.Text = strings.TrimSpace(query)
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %q, found %q", text, p.cur().Text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: column %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(TokKeyword, "distinct")

	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e}
		if p.accept(TokKeyword, "as") {
			t, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			item.Alias = t.Text
		} else if p.at(TokIdent, "") {
			item.Alias = p.next().Text
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}

	if _, err := p.expect(TokKeyword, "from"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = tr

	for {
		// Comma joins and explicit joins both become JoinClauses; comma
		// joins carry a nil On (cross product restricted by WHERE).
		if p.accept(TokOp, ",") {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, JoinClause{Table: tr})
			continue
		}
		if p.accept(TokKeyword, "inner") {
			if _, err := p.expect(TokKeyword, "join"); err != nil {
				return nil, err
			}
		} else if !p.accept(TokKeyword, "join") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on})
	}

	if p.accept(TokKeyword, "where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.accept(TokKeyword, "group") {
		if _, err := p.expect(TokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "order") {
		if _, err := p.expect(TokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "desc") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "limit") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad limit %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: strings.ToLower(t.Text)}
	if p.at(TokIdent, "") {
		tr.Alias = strings.ToLower(p.next().Text)
	}
	return tr, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or -> and ("or" and)*
//	and -> not ("and" not)*
//	not -> "not" not | cmp
//	cmp -> add (( "=" | "!=" | "<>" | "<" | "<=" | ">" | ">=" ) add
//	      | "between" add "and" add)?
//	add -> mul (("+" | "-") mul)*
//	mul -> unary (("*" | "/") unary)*
//	unary -> "-" unary | primary
//	primary -> literal | aggregate | colref | "(" or ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Postfix NOT for "e not like ..." / "e not in (...)".
	negated := false
	if p.at(TokKeyword, "not") {
		next := p.toks[p.pos+1]
		if next.Kind == TokKeyword && (next.Text == "like" || next.Text == "in") {
			p.next()
			negated = true
		}
	}
	if p.accept(TokKeyword, "like") {
		t, err := p.expect(TokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: t.Text, Not: negated}, nil
	}
	if p.accept(TokKeyword, "in") {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: negated}, nil
	}
	if negated {
		return nil, p.errf("expected like or in after not")
	}
	if p.accept(TokKeyword, "between") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(TokOp, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "+"):
			op = "+"
		case p.accept(TokOp, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "*"):
			op = "*"
		case p.accept(TokOp, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch lit := e.(type) {
		case *IntLit:
			lit.Value = -lit.Value
			return lit, nil
		case *FltLit:
			lit.Value = -lit.Value
			return lit, nil
		}
		return &BinExpr{Op: "-", L: &IntLit{Value: 0}, R: e}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]bool{"sum": true, "count": true, "min": true, "max": true, "avg": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &FltLit{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &IntLit{Value: n}, nil
	case TokString:
		p.next()
		return &StrLit{Value: t.Text}, nil
	case TokKeyword:
		if t.Text == "date" {
			p.next()
			s, err := p.expect(TokString, "")
			if err != nil {
				return nil, err
			}
			days, err := parseDate(s.Text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &DateLit{Days: days, Text: s.Text}, nil
		}
		if aggFuncs[t.Text] {
			p.next()
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			if t.Text == "count" && p.accept(TokOp, "*") {
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
				return &AggExpr{Func: "count", Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &AggExpr{Func: t.Text, Arg: arg}, nil
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case TokIdent:
		p.next()
		name := strings.ToLower(t.Text)
		if p.accept(TokOp, ".") {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Column: strings.ToLower(col.Text)}, nil
		}
		return &ColRef{Column: name}, nil
	case TokOp:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.Text)
}

// parseDate converts YYYY-MM-DD to days since the Unix epoch.
func parseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("bad date literal %q (want YYYY-MM-DD)", s)
	}
	return t.Unix() / 86400, nil
}

// FormatDate converts days since the Unix epoch back to YYYY-MM-DD, used
// by result printing and the DateLit round trip.
func FormatDate(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02")
}
