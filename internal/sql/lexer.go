// Package sql implements the SQL front-end of the reproduction: a lexer
// and recursive-descent parser for the query subset the Stethoscope demo
// exercises (TPC-H-style select/project/filter/join/group/order/limit).
// The parser produces an AST which internal/algebra binds against the
// catalog and internal/compiler lowers to MAL.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // operators and punctuation
)

// Token is a lexical unit with its source position (1-based column).
type Token struct {
	Kind TokenKind
	Text string // keywords are lowercased; identifiers preserve case
	Pos  int
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"order": true, "limit": true, "and": true, "or": true, "not": true,
	"as": true, "asc": true, "desc": true, "join": true, "on": true,
	"inner": true, "distinct": true, "between": true, "date": true,
	"like": true, "in": true,
	"sum": true, "count": true, "min": true, "max": true, "avg": true,
}

// Lex tokenizes a SQL string. It returns an error on unterminated strings
// or illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at column %d", start+1)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start + 1})
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start + 1})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			lower := strings.ToLower(word)
			if keywords[lower] {
				toks = append(toks, Token{Kind: TokKeyword, Text: lower, Pos: start + 1})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start + 1})
			}
		default:
			start := i
			var op string
			switch {
			case strings.HasPrefix(input[i:], "<="), strings.HasPrefix(input[i:], ">="),
				strings.HasPrefix(input[i:], "<>"), strings.HasPrefix(input[i:], "!="):
				op = input[i : i+2]
				i += 2
			case strings.ContainsRune("+-*/(),.=<>", rune(c)):
				op = string(c)
				i++
			default:
				return nil, fmt.Errorf("sql: illegal character %q at column %d", c, i+1)
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start + 1})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n + 1})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}
