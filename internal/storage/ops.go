package storage

import "fmt"

// Val is a scalar comparison operand for selections, typed by Kind.
type Val struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// IntVal, FltVal, StrVal and BoolVal construct comparison operands.
func IntVal(v int64) Val   { return Val{Kind: Int, I: v} }
func FltVal(v float64) Val { return Val{Kind: Flt, F: v} }
func StrVal(v string) Val  { return Val{Kind: Str, S: v} }
func BoolVal(v bool) Val   { return Val{Kind: Bool, B: v} }
func DateVal(d int64) Val  { return Val{Kind: Date, I: d} }
func OIDVal(o int64) Val   { return Val{Kind: OID, I: o} }
func (v Val) String() string {
	switch v.Kind {
	case Flt:
		return fmt.Sprintf("%g", v.F)
	case Str:
		return fmt.Sprintf("%q", v.S)
	case Bool:
		return fmt.Sprintf("%v", v.B)
	default:
		return fmt.Sprintf("%d", v.I)
	}
}

// CmpOp is a comparison operator for theta-selections.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// cmp compares row i of b against v: -1, 0 or +1. Kinds must be
// compatible (checked by callers); numeric comparisons promote integer
// operands to float when either side is Flt.
func (b *BAT) cmp(i int, v Val) int {
	switch b.kind {
	case Flt:
		f := v.F
		if v.Kind.usesInts() {
			f = float64(v.I)
		}
		switch x := b.flts[i]; {
		case x < f:
			return -1
		case x > f:
			return 1
		}
		return 0
	case Str:
		switch x := b.strs[i]; {
		case x < v.S:
			return -1
		case x > v.S:
			return 1
		}
		return 0
	case Bool:
		x, y := b.bools[i], v.B
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	default:
		if v.Kind == Flt {
			switch x := float64(b.ints[i]); {
			case x < v.F:
				return -1
			case x > v.F:
				return 1
			}
			return 0
		}
		switch x := b.ints[i]; {
		case x < v.I:
			return -1
		case x > v.I:
			return 1
		}
		return 0
	}
}

func compatible(k Kind, v Val) bool {
	if k == v.Kind {
		return true
	}
	// Numeric kinds (integer family and Flt) are mutually comparable;
	// integer operands promote to float against Flt columns.
	numK := k == Flt || k.usesInts()
	numV := v.Kind == Flt || v.Kind.usesInts()
	return numK && numV
}

// ThetaSelect scans b (restricted to the candidate oids in cands when
// non-nil) and returns the oids of rows satisfying "row op v". This is
// MAL's algebra.thetaselect.
// maxSelectCap bounds how much a selection preallocates for its result.
// Small inputs (mitosis partitions) get exactly-sized buffers — no
// regrowth on the hot path; huge inputs with selective predicates must
// not pin an input-sized buffer for a handful of OIDs, so beyond the
// bound the result grows normally from this starting capacity.
const maxSelectCap = 1 << 16

// selectCap sizes a selection's result buffer.
func selectCap(b, cands *BAT) int {
	n := b.Len()
	if cands != nil {
		n = cands.Len()
	}
	if n > maxSelectCap {
		n = maxSelectCap
	}
	return n
}

func ThetaSelect(b *BAT, op CmpOp, v Val, cands *BAT) (*BAT, error) {
	if !compatible(b.kind, v) {
		return nil, fmt.Errorf("storage: thetaselect %s against %s operand", b.kind, v.Kind)
	}
	out := New(OID, selectCap(b, cands))
	test := func(c int) bool {
		switch op {
		case EQ:
			return c == 0
		case NE:
			return c != 0
		case LT:
			return c < 0
		case LE:
			return c <= 0
		case GT:
			return c > 0
		default:
			return c >= 0
		}
	}
	if cands == nil {
		for i, n := 0, b.Len(); i < n; i++ {
			if test(b.cmp(i, v)) {
				out.AppendInt(int64(i))
			}
		}
		return out, nil
	}
	if cands.kind != OID {
		return nil, fmt.Errorf("storage: candidate list has kind %s, want oid", cands.kind)
	}
	for _, oid := range cands.ints {
		if oid < 0 || int(oid) >= b.Len() {
			return nil, fmt.Errorf("storage: candidate oid %d out of range 0..%d", oid, b.Len()-1)
		}
		if test(b.cmp(int(oid), v)) {
			out.AppendInt(oid)
		}
	}
	return out, nil
}

// RangeSelect returns oids of rows with lo <= row <= hi (bound inclusivity
// controlled by loInc/hiInc), restricted to cands when non-nil. This is
// MAL's algebra.select(b, lo, hi).
func RangeSelect(b *BAT, lo, hi Val, loInc, hiInc bool, cands *BAT) (*BAT, error) {
	if !compatible(b.kind, lo) || !compatible(b.kind, hi) {
		return nil, fmt.Errorf("storage: select bounds %s/%s against %s column", lo.Kind, hi.Kind, b.kind)
	}
	out := New(OID, selectCap(b, cands))
	ok := func(i int) bool {
		cl := b.cmp(i, lo)
		if cl < 0 || (cl == 0 && !loInc) {
			return false
		}
		ch := b.cmp(i, hi)
		if ch > 0 || (ch == 0 && !hiInc) {
			return false
		}
		return true
	}
	if cands == nil {
		for i, n := 0, b.Len(); i < n; i++ {
			if ok(i) {
				out.AppendInt(int64(i))
			}
		}
		return out, nil
	}
	if cands.kind != OID {
		return nil, fmt.Errorf("storage: candidate list has kind %s, want oid", cands.kind)
	}
	for _, oid := range cands.ints {
		if oid < 0 || int(oid) >= b.Len() {
			return nil, fmt.Errorf("storage: candidate oid %d out of range", oid)
		}
		if ok(int(oid)) {
			out.AppendInt(oid)
		}
	}
	return out, nil
}

// Project gathers tail[oid] for every oid in oids, producing a column
// aligned with oids. This is MAL's algebra.leftjoin(cands, col) /
// algebra.projection.
func Project(oids, tail *BAT) (*BAT, error) {
	if oids.kind != OID {
		return nil, fmt.Errorf("storage: project with %s oids", oids.kind)
	}
	out := New(tail.kind, len(oids.ints))
	n := tail.Len()
	for _, oid := range oids.ints {
		if oid < 0 || int(oid) >= n {
			return nil, fmt.Errorf("storage: project oid %d out of range 0..%d", oid, n-1)
		}
	}
	// Typed loops: one kind dispatch per column, not per row.
	switch {
	case tail.kind.usesInts():
		for _, oid := range oids.ints {
			out.ints = append(out.ints, tail.ints[oid])
		}
	case tail.kind == Flt:
		for _, oid := range oids.ints {
			out.flts = append(out.flts, tail.flts[oid])
		}
	case tail.kind == Str:
		for _, oid := range oids.ints {
			out.strs = append(out.strs, tail.strs[oid])
		}
	default:
		for _, oid := range oids.ints {
			out.bools = append(out.bools, tail.bools[oid])
		}
	}
	return out, nil
}

type joinKey struct {
	i int64
	f float64
	s string
	b bool
}

func (b *BAT) keyAt(i int) joinKey {
	switch {
	case b.kind.usesInts():
		return joinKey{i: b.ints[i]}
	case b.kind == Flt:
		return joinKey{f: b.flts[i]}
	case b.kind == Str:
		return joinKey{s: b.strs[i]}
	default:
		return joinKey{b: b.bools[i]}
	}
}

// JoinHash is the materialized build side of a hash join: the value
// index of one key column. Build once with BuildJoinHash, then Probe
// any number of times — probes are read-only, so one JoinHash may be
// probed concurrently from multiple goroutines (the partitioned join
// probes every mitosis slice against the same build in parallel).
type JoinHash struct {
	idx  map[joinKey][]int64
	kind Kind
}

// BuildJoinHash indexes the build-side key column r (MAL's
// algebra.hashbuild). Per-key oid lists keep build order, so probe
// output for equal keys matches the nested-order the packed join emits.
func BuildJoinHash(r *BAT) *JoinHash {
	idx := make(map[joinKey][]int64, r.Len())
	for i, n := 0, r.Len(); i < n; i++ {
		k := r.keyAt(i)
		idx[k] = append(idx[k], int64(i))
	}
	return &JoinHash{idx: idx, kind: r.kind}
}

// Probe matches the probe-side key column l against the build index and
// returns matching oid pairs (aligned probe/build oid BATs), ordered by
// probe oid — the order downstream projections rely on for stable
// results. Safe for concurrent use.
func (h *JoinHash) Probe(l *BAT) (lOIDs, rOIDs *BAT, err error) {
	if l.kind != h.kind && !(l.kind.usesInts() && h.kind.usesInts()) {
		return nil, nil, fmt.Errorf("storage: join %s with %s", l.kind, h.kind)
	}
	lo, ro := New(OID, 0), New(OID, 0)
	for i, n := 0, l.Len(); i < n; i++ {
		for _, ri := range h.idx[l.keyAt(i)] {
			lo.AppendInt(int64(i))
			ro.AppendInt(ri)
		}
	}
	return lo, ro, nil
}

// HashJoin computes the equi-join of l and r on value equality and returns
// matching oid pairs (aligned left and right oid BATs). The right side
// is hashed; the left side probes, keeping the output ordered by left
// oid. This is MAL's algebra.join — the packed form of
// BuildJoinHash + Probe.
func HashJoin(l, r *BAT) (lOIDs, rOIDs *BAT, err error) {
	return BuildJoinHash(r).Probe(l)
}

// Group assigns a dense group id to each row of b, optionally refining an
// existing grouping (MAL's group.subgroup with a previous groups column).
// It returns the per-row group ids, the extents (the oid of the first row
// of each group), and the number of groups.
func Group(b, prev *BAT) (groups, extents *BAT, ngroups int, err error) {
	n := b.Len()
	if prev != nil && prev.Len() != n {
		return nil, nil, 0, fmt.Errorf("storage: group input %d rows, prev grouping %d rows", n, prev.Len())
	}
	type gkey struct {
		prev int64
		k    joinKey
	}
	ids := make(map[gkey]int64, 64)
	groups = New(OID, n)
	extents = New(OID, 0)
	for i := 0; i < n; i++ {
		var pk int64
		if prev != nil {
			pk = prev.ints[i]
		}
		key := gkey{prev: pk, k: b.keyAt(i)}
		id, ok := ids[key]
		if !ok {
			id = int64(len(ids))
			ids[key] = id
			extents.AppendInt(int64(i))
		}
		groups.AppendInt(id)
	}
	return groups, extents, len(ids), nil
}

// AggrKind selects an aggregate function.
type AggrKind int

// Aggregates supported by Aggr.
const (
	AggrSum AggrKind = iota
	AggrCount
	AggrMin
	AggrMax
	AggrAvg
)

// String returns the SQL spelling.
func (a AggrKind) String() string {
	switch a {
	case AggrSum:
		return "sum"
	case AggrCount:
		return "count"
	case AggrMin:
		return "min"
	case AggrMax:
		return "max"
	case AggrAvg:
		return "avg"
	}
	return "?"
}

// Aggr computes a grouped aggregate of b under the per-row group ids in
// groups (ngroups distinct ids, dense from 0). Sum/avg over integer
// columns yield Int/Flt respectively; count always yields Int. Min/max
// preserve the input kind. A nil groups computes a single global group.
func Aggr(kind AggrKind, b, groups *BAT, ngroups int) (*BAT, error) {
	n := b.Len()
	if groups == nil {
		g := New(OID, n)
		for i := 0; i < n; i++ {
			g.AppendInt(0)
		}
		groups = g
		ngroups = 1
	}
	if groups.Len() != n {
		return nil, fmt.Errorf("storage: aggr over %d rows with %d group ids", n, groups.Len())
	}
	if kind == AggrCount {
		counts := make([]int64, ngroups)
		for _, g := range groups.ints {
			counts[g]++
		}
		return FromInts(Int, counts), nil
	}
	switch b.kind {
	case Flt:
		sums := make([]float64, ngroups)
		mins := make([]float64, ngroups)
		maxs := make([]float64, ngroups)
		counts := make([]int64, ngroups)
		seen := make([]bool, ngroups)
		for i := 0; i < n; i++ {
			g := groups.ints[i]
			v := b.flts[i]
			sums[g] += v
			counts[g]++
			if !seen[g] || v < mins[g] {
				mins[g] = v
			}
			if !seen[g] || v > maxs[g] {
				maxs[g] = v
			}
			seen[g] = true
		}
		switch kind {
		case AggrSum:
			return FromFloats(sums), nil
		case AggrMin:
			return FromFloats(mins), nil
		case AggrMax:
			return FromFloats(maxs), nil
		case AggrAvg:
			avgs := make([]float64, ngroups)
			for g := range avgs {
				if counts[g] > 0 {
					avgs[g] = sums[g] / float64(counts[g])
				}
			}
			return FromFloats(avgs), nil
		}
	case Str:
		if kind != AggrMin && kind != AggrMax {
			return nil, fmt.Errorf("storage: %s over string column", kind)
		}
		vals := make([]string, ngroups)
		seen := make([]bool, ngroups)
		for i := 0; i < n; i++ {
			g := groups.ints[i]
			v := b.strs[i]
			if !seen[g] || (kind == AggrMin && v < vals[g]) || (kind == AggrMax && v > vals[g]) {
				vals[g] = v
			}
			seen[g] = true
		}
		return FromStrings(vals), nil
	case Bool:
		return nil, fmt.Errorf("storage: %s over bool column", kind)
	default: // integer family
		sums := make([]int64, ngroups)
		mins := make([]int64, ngroups)
		maxs := make([]int64, ngroups)
		counts := make([]int64, ngroups)
		seen := make([]bool, ngroups)
		for i := 0; i < n; i++ {
			g := groups.ints[i]
			v := b.ints[i]
			sums[g] += v
			counts[g]++
			if !seen[g] || v < mins[g] {
				mins[g] = v
			}
			if !seen[g] || v > maxs[g] {
				maxs[g] = v
			}
			seen[g] = true
		}
		switch kind {
		case AggrSum:
			return FromInts(Int, sums), nil
		case AggrMin:
			return FromInts(b.kind, mins), nil
		case AggrMax:
			return FromInts(b.kind, maxs), nil
		case AggrAvg:
			avgs := make([]float64, ngroups)
			for g := range avgs {
				if counts[g] > 0 {
					avgs[g] = float64(sums[g]) / float64(counts[g])
				}
			}
			return FromFloats(avgs), nil
		}
	}
	return nil, fmt.Errorf("storage: unsupported aggregate %s over %s", kind, b.kind)
}

// SortOrder returns the permutation of b's oids that orders the column
// ascending (or descending). The sort is stable so multi-key ordering can
// be built by sorting from the least significant key to the most
// significant one, threading the permutation through Project.
func SortOrder(b *BAT, asc bool) *BAT {
	n := b.Len()
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	less := func(x, y int64) bool {
		var c int
		switch b.kind {
		case Flt:
			switch {
			case b.flts[x] < b.flts[y]:
				c = -1
			case b.flts[x] > b.flts[y]:
				c = 1
			}
		case Str:
			switch {
			case b.strs[x] < b.strs[y]:
				c = -1
			case b.strs[x] > b.strs[y]:
				c = 1
			}
		case Bool:
			switch {
			case !b.bools[x] && b.bools[y]:
				c = -1
			case b.bools[x] && !b.bools[y]:
				c = 1
			}
		default:
			switch {
			case b.ints[x] < b.ints[y]:
				c = -1
			case b.ints[x] > b.ints[y]:
				c = 1
			}
		}
		if asc {
			return c < 0
		}
		return c > 0
	}
	stableSortInt64(perm, less)
	return FromInts(OID, perm)
}

// stableSortInt64 is a merge sort over int64 with a custom strict-weak
// ordering; stability is required for multi-key sorts.
func stableSortInt64(a []int64, less func(x, y int64) bool) {
	if len(a) < 2 {
		return
	}
	buf := make([]int64, len(a))
	mergeSortInt64(a, buf, less)
}

func mergeSortInt64(a, buf []int64, less func(x, y int64) bool) {
	n := len(a)
	if n < 16 {
		// Insertion sort for small runs.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && less(a[j], a[j-1]); j-- {
				a[j-1], a[j] = a[j], a[j-1]
			}
		}
		return
	}
	mid := n / 2
	mergeSortInt64(a[:mid], buf[:mid], less)
	mergeSortInt64(a[mid:], buf[mid:], less)
	copy(buf, a[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if less(a[j], buf[i]) {
			a[k] = a[j]
			j++
		} else {
			a[k] = buf[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = buf[i]
		i++
		k++
	}
}

// MirrorOIDs returns the dense oid sequence 0..n-1, MAL's bat.mirror: the
// full candidate list over a column of n rows.
func MirrorOIDs(n int) *BAT {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return FromInts(OID, v)
}
