package storage

import "fmt"

// ArithOp is an elementwise arithmetic operator used by batcalc kernels.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String returns the operator symbol.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

// numeric promotion: any Flt operand promotes the result to Flt.

func fltAt(b *BAT, i int) float64 {
	if b.kind == Flt {
		return b.flts[i]
	}
	return float64(b.ints[i])
}

func isNumeric(k Kind) bool { return k == Flt || k.usesInts() }

// Arith computes l op r elementwise over equal-length numeric BATs
// (MAL's batcalc.+ etc.). Integer inputs stay integer except for Div,
// which always produces Flt, matching SQL semantics for "/" in this
// reproduction. Division by zero yields 0 with no error, mirroring
// MonetDB's nil-propagation simplified to a zero default.
func Arith(op ArithOp, l, r *BAT) (*BAT, error) {
	if !isNumeric(l.kind) || !isNumeric(r.kind) {
		return nil, fmt.Errorf("storage: arithmetic over %s and %s", l.kind, r.kind)
	}
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("storage: arithmetic over %d and %d rows", l.Len(), r.Len())
	}
	n := l.Len()
	if op == Div || l.kind == Flt || r.kind == Flt {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := fltAt(l, i), fltAt(r, i)
			switch op {
			case Add:
				out[i] = a + b
			case Sub:
				out[i] = a - b
			case Mul:
				out[i] = a * b
			default:
				if b != 0 {
					out[i] = a / b
				}
			}
		}
		return FromFloats(out), nil
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		a, b := l.ints[i], r.ints[i]
		switch op {
		case Add:
			out[i] = a + b
		case Sub:
			out[i] = a - b
		default:
			out[i] = a * b
		}
	}
	return FromInts(Int, out), nil
}

// ArithScalar computes b op v (or v op b when flip) elementwise against a
// scalar, MAL's batcalc with one constant operand.
func ArithScalar(op ArithOp, b *BAT, v Val, flip bool) (*BAT, error) {
	if !isNumeric(b.kind) || !isNumeric(v.Kind) {
		return nil, fmt.Errorf("storage: scalar arithmetic over %s and %s", b.kind, v.Kind)
	}
	n := b.Len()
	scalarF := v.F
	if v.Kind.usesInts() {
		scalarF = float64(v.I)
	}
	if op == Div || b.kind == Flt || v.Kind == Flt {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			a, c := fltAt(b, i), scalarF
			if flip {
				a, c = c, a
			}
			switch op {
			case Add:
				out[i] = a + c
			case Sub:
				out[i] = a - c
			case Mul:
				out[i] = a * c
			default:
				if c != 0 {
					out[i] = a / c
				}
			}
		}
		return FromFloats(out), nil
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		a, c := b.ints[i], v.I
		if flip {
			a, c = c, a
		}
		switch op {
		case Add:
			out[i] = a + c
		case Sub:
			out[i] = a - c
		default:
			out[i] = a * c
		}
	}
	return FromInts(Int, out), nil
}

// Compare evaluates l op r elementwise and returns a Bool BAT, MAL's
// batcalc comparison kernels, used for disjunctive predicates that cannot
// be expressed as candidate-list selections.
func Compare(op CmpOp, l, r *BAT) (*BAT, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("storage: compare over %d and %d rows", l.Len(), r.Len())
	}
	if l.kind != r.kind && !(isNumeric(l.kind) && isNumeric(r.kind)) {
		return nil, fmt.Errorf("storage: compare %s with %s", l.kind, r.kind)
	}
	n := l.Len()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		var c int
		switch {
		case l.kind == Str:
			switch {
			case l.strs[i] < r.strs[i]:
				c = -1
			case l.strs[i] > r.strs[i]:
				c = 1
			}
		case l.kind == Bool:
			switch {
			case !l.bools[i] && r.bools[i]:
				c = -1
			case l.bools[i] && !r.bools[i]:
				c = 1
			}
		case l.kind == Flt || r.kind == Flt:
			a, b := fltAt(l, i), fltAt(r, i)
			switch {
			case a < b:
				c = -1
			case a > b:
				c = 1
			}
		default:
			switch {
			case l.ints[i] < r.ints[i]:
				c = -1
			case l.ints[i] > r.ints[i]:
				c = 1
			}
		}
		switch op {
		case EQ:
			out[i] = c == 0
		case NE:
			out[i] = c != 0
		case LT:
			out[i] = c < 0
		case LE:
			out[i] = c <= 0
		case GT:
			out[i] = c > 0
		default:
			out[i] = c >= 0
		}
	}
	return FromBools(out), nil
}

// BoolCombine computes the elementwise AND/OR of two Bool BATs.
func BoolCombine(and bool, l, r *BAT) (*BAT, error) {
	if l.kind != Bool || r.kind != Bool {
		return nil, fmt.Errorf("storage: boolean combine over %s and %s", l.kind, r.kind)
	}
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("storage: boolean combine over %d and %d rows", l.Len(), r.Len())
	}
	out := make([]bool, l.Len())
	for i := range out {
		if and {
			out[i] = l.bools[i] && r.bools[i]
		} else {
			out[i] = l.bools[i] || r.bools[i]
		}
	}
	return FromBools(out), nil
}

// SelectTrue returns the oids of true rows in a Bool BAT, bridging
// elementwise predicates back into candidate lists.
func SelectTrue(b *BAT) (*BAT, error) {
	if b.kind != Bool {
		return nil, fmt.Errorf("storage: selectTrue over %s", b.kind)
	}
	out := New(OID, 0)
	for i, v := range b.bools {
		if v {
			out.AppendInt(int64(i))
		}
	}
	return out, nil
}

// CompareScalar evaluates b op v (or v op b when flip) elementwise and
// returns a Bool BAT, the scalar-operand variant of Compare.
func CompareScalar(op CmpOp, b *BAT, v Val, flip bool) (*BAT, error) {
	if !compatible(b.kind, v) {
		return nil, fmt.Errorf("storage: compare %s against %s operand", b.kind, v.Kind)
	}
	n := b.Len()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		c := b.cmp(i, v)
		if flip {
			c = -c
		}
		switch op {
		case EQ:
			out[i] = c == 0
		case NE:
			out[i] = c != 0
		case LT:
			out[i] = c < 0
		case LE:
			out[i] = c <= 0
		case GT:
			out[i] = c > 0
		default:
			out[i] = c >= 0
		}
	}
	return FromBools(out), nil
}

// BoolNot negates a Bool BAT elementwise.
func BoolNot(b *BAT) (*BAT, error) {
	if b.kind != Bool {
		return nil, fmt.Errorf("storage: not over %s", b.kind)
	}
	out := make([]bool, b.Len())
	for i, v := range b.bools {
		out[i] = !v
	}
	return FromBools(out), nil
}

// LikeMatch evaluates a SQL LIKE pattern ('%' = any run, '_' = any one
// byte) against every row of a string column, returning a Bool BAT.
func LikeMatch(b *BAT, pattern string) (*BAT, error) {
	if b.kind != Str {
		return nil, fmt.Errorf("storage: like over %s", b.kind)
	}
	out := make([]bool, len(b.strs))
	for i, s := range b.strs {
		out[i] = likeMatch(s, pattern)
	}
	return FromBools(out), nil
}

// likeMatch implements LIKE with iterative backtracking over '%' (the
// classic wildcard-match algorithm, linear in practice).
func likeMatch(s, p string) bool {
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
