package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Column describes one column of a cataloged table.
type Column struct {
	Name string
	Kind Kind
}

// Table is a named collection of equal-length BATs.
type Table struct {
	Schema  string
	Name    string
	Columns []Column
	bats    map[string]*BAT
}

// Rows returns the table's row count (0 for a column-less table).
func (t *Table) Rows() int {
	for _, b := range t.bats {
		return b.Len()
	}
	return 0
}

// Column returns the BAT backing the named column.
func (t *Table) Column(name string) (*BAT, bool) {
	b, ok := t.bats[name]
	return b, ok
}

// ColumnKind returns the declared kind of the named column.
func (t *Table) ColumnKind(name string) (Kind, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c.Kind, true
		}
	}
	return Int, false
}

// Catalog is the in-memory schema registry the SQL binder and the MAL
// sql.bind kernel resolve against. It is safe for concurrent readers and
// writers.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table // key: schema.name
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

func key(schema, name string) string { return schema + "." + name }

// Define registers a table with its columns; the data BATs must all have
// the same length and match the declared kinds.
func (c *Catalog) Define(schema, name string, cols []Column, data map[string]*BAT) error {
	if len(cols) == 0 {
		return fmt.Errorf("storage: table %s.%s has no columns", schema, name)
	}
	rows := -1
	for _, col := range cols {
		b, ok := data[col.Name]
		if !ok {
			return fmt.Errorf("storage: table %s.%s missing data for column %s", schema, name, col.Name)
		}
		if b.Kind() != col.Kind {
			return fmt.Errorf("storage: table %s.%s column %s declared %s but data is %s",
				schema, name, col.Name, col.Kind, b.Kind())
		}
		if rows == -1 {
			rows = b.Len()
		} else if b.Len() != rows {
			return fmt.Errorf("storage: table %s.%s column %s has %d rows, want %d",
				schema, name, col.Name, b.Len(), rows)
		}
	}
	t := &Table{Schema: schema, Name: name, Columns: append([]Column(nil), cols...), bats: make(map[string]*BAT, len(cols))}
	for _, col := range cols {
		t.bats[col.Name] = data[col.Name]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[key(schema, name)] = t
	return nil
}

// Table looks up a table by schema and name.
func (c *Catalog) Table(schema, name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(schema, name)]
	return t, ok
}

// Bind resolves schema.table.column to its backing BAT, the MAL sql.bind
// primitive.
func (c *Catalog) Bind(schema, table, column string) (*BAT, error) {
	t, ok := c.Table(schema, table)
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %s.%s", schema, table)
	}
	b, ok := t.Column(column)
	if !ok {
		return nil, fmt.Errorf("storage: unknown column %s.%s.%s", schema, table, column)
	}
	return b, nil
}

// TableNames returns the sorted list of "schema.table" keys, for catalogs
// dumps and the server's metadata command.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for k := range c.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
