package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Column describes one column of a cataloged table.
type Column struct {
	Name string
	Kind Kind
}

// Table is a named collection of equal-length BATs. A table is either
// fully materialized (Define) or lazily loaded (DefineLazy): the schema
// and row count are always resident, but a lazy table's column data is
// materialized on first access through the registered loader — the hook
// persisted datasets (internal/batstore) use so opening a catalog costs
// a manifest read, not a full data load.
type Table struct {
	Schema  string
	Name    string
	Columns []Column
	rows    int

	mu   sync.Mutex
	bats map[string]*BAT
	load func(column string) (*BAT, error) // nil when fully materialized
}

// Rows returns the table's row count. It never triggers a lazy load:
// the count comes from the declared data (Define) or the manifest
// (DefineLazy), so the adaptive planner can size mitosis fan-out
// without touching column files.
func (t *Table) Rows() int { return t.rows }

// Column returns the BAT backing the named column, materializing a lazy
// column on first access. A failed lazy load reports as absent; callers
// that must distinguish corruption from an unknown name (the engine's
// bind path) use ColumnData.
func (t *Table) Column(name string) (*BAT, bool) {
	b, err := t.ColumnData(name)
	return b, err == nil
}

// ColumnData is Column with the lazy-load error surfaced: a corrupt or
// unreadable column file yields the loader's error (naming the segment
// file) instead of a silent miss.
func (t *Table) ColumnData(name string) (*BAT, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.bats[name]; ok {
		return b, nil
	}
	if t.load == nil {
		return nil, fmt.Errorf("storage: unknown column %s.%s.%s", t.Schema, t.Name, name)
	}
	if _, ok := t.ColumnKind(name); !ok {
		return nil, fmt.Errorf("storage: unknown column %s.%s.%s", t.Schema, t.Name, name)
	}
	b, err := t.load(name)
	if err != nil {
		return nil, err
	}
	if kind, _ := t.ColumnKind(name); b.Kind() != kind {
		return nil, fmt.Errorf("storage: lazy column %s.%s.%s loaded as %s, declared %s",
			t.Schema, t.Name, name, b.Kind(), kind)
	}
	if b.Len() != t.rows {
		return nil, fmt.Errorf("storage: lazy column %s.%s.%s loaded %d rows, manifest declares %d",
			t.Schema, t.Name, name, b.Len(), t.rows)
	}
	t.bats[name] = b
	return b, nil
}

// ColumnKind returns the declared kind of the named column.
func (t *Table) ColumnKind(name string) (Kind, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c.Kind, true
		}
	}
	return Int, false
}

// Catalog is the in-memory schema registry the SQL binder and the MAL
// sql.bind kernel resolve against. It is safe for concurrent readers and
// writers.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table // key: schema.name
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

func key(schema, name string) string { return schema + "." + name }

// Define registers a table with its columns; the data BATs must all have
// the same length and match the declared kinds.
func (c *Catalog) Define(schema, name string, cols []Column, data map[string]*BAT) error {
	if len(cols) == 0 {
		return fmt.Errorf("storage: table %s.%s has no columns", schema, name)
	}
	rows := -1
	for _, col := range cols {
		b, ok := data[col.Name]
		if !ok {
			return fmt.Errorf("storage: table %s.%s missing data for column %s", schema, name, col.Name)
		}
		if b.Kind() != col.Kind {
			return fmt.Errorf("storage: table %s.%s column %s declared %s but data is %s",
				schema, name, col.Name, col.Kind, b.Kind())
		}
		if rows == -1 {
			rows = b.Len()
		} else if b.Len() != rows {
			return fmt.Errorf("storage: table %s.%s column %s has %d rows, want %d",
				schema, name, col.Name, b.Len(), rows)
		}
	}
	t := &Table{Schema: schema, Name: name, Columns: append([]Column(nil), cols...), rows: rows, bats: make(map[string]*BAT, len(cols))}
	for _, col := range cols {
		t.bats[col.Name] = data[col.Name]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[key(schema, name)] = t
	return nil
}

// DefineLazy registers a table whose column data materializes on first
// access: load is called once per column (under the table's lock) and
// must return a BAT of the declared kind with exactly rows rows. This
// is how a persisted dataset appears in the catalog without an upfront
// full load — binds pull columns in as queries actually scan them.
func (c *Catalog) DefineLazy(schema, name string, cols []Column, rows int, load func(column string) (*BAT, error)) error {
	if len(cols) == 0 {
		return fmt.Errorf("storage: table %s.%s has no columns", schema, name)
	}
	if rows < 0 {
		return fmt.Errorf("storage: table %s.%s has negative row count %d", schema, name, rows)
	}
	if load == nil {
		return fmt.Errorf("storage: table %s.%s registered without a loader", schema, name)
	}
	t := &Table{Schema: schema, Name: name, Columns: append([]Column(nil), cols...), rows: rows,
		bats: make(map[string]*BAT, len(cols)), load: load}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[key(schema, name)] = t
	return nil
}

// Table looks up a table by schema and name.
func (c *Catalog) Table(schema, name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(schema, name)]
	return t, ok
}

// Bind resolves schema.table.column to its backing BAT, the MAL sql.bind
// primitive. On a lazily-loaded table this is where column data comes
// off disk, and a corrupt segment surfaces here as the loader's error —
// a failed scan, never a silent wrong answer.
func (c *Catalog) Bind(schema, table, column string) (*BAT, error) {
	t, ok := c.Table(schema, table)
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %s.%s", schema, table)
	}
	return t.ColumnData(column)
}

// TableNames returns the sorted list of "schema.table" keys, for catalogs
// dumps and the server's metadata command.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for k := range c.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
