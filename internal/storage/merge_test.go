package storage

import (
	"math/rand"
	"testing"
)

// mergeRef sorts the concatenation of the runs with the existing stable
// SortOrder/Project machinery — the sequential path MergeRuns must
// reproduce exactly.
func mergeRef(t *testing.T, keyRuns [][]*BAT, asc []bool) *BAT {
	t.Helper()
	// Concatenate each key column.
	packed := make([]*BAT, len(keyRuns))
	for j, runs := range keyRuns {
		out := New(runs[0].Kind(), 0)
		for _, r := range runs {
			if err := out.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		packed[j] = out
	}
	// Stable multi-key sort: least significant key first.
	perm := MirrorOIDs(packed[0].Len())
	for j := len(packed) - 1; j >= 0; j-- {
		col, err := Project(perm, packed[j])
		if err != nil {
			t.Fatal(err)
		}
		order := SortOrder(col, asc[j])
		perm, err = Project(order, perm)
		if err != nil {
			t.Fatal(err)
		}
	}
	return perm
}

// sortRun stable-sorts one run's key columns (least significant first)
// and returns the sorted columns.
func sortRun(t *testing.T, cols []*BAT, asc []bool) []*BAT {
	t.Helper()
	perm := MirrorOIDs(cols[0].Len())
	for j := len(cols) - 1; j >= 0; j-- {
		col, err := Project(perm, cols[j])
		if err != nil {
			t.Fatal(err)
		}
		order := SortOrder(col, asc[j])
		perm, err = Project(order, perm)
		if err != nil {
			t.Fatal(err)
		}
	}
	out := make([]*BAT, len(cols))
	for j, c := range cols {
		s, err := Project(perm, c)
		if err != nil {
			t.Fatal(err)
		}
		out[j] = s
	}
	return out
}

func TestMergeRunsSingleKey(t *testing.T) {
	runs := [][]*BAT{{
		FromInts(Int, []int64{1, 4, 7}),
		FromInts(Int, []int64{2, 3, 9}),
		FromInts(Int, []int64{}),
		FromInts(Int, []int64{5}),
	}}
	perm, err := MergeRuns(runs, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 3, 4, 1, 6, 2, 5}
	if len(perm.Ints()) != len(want) {
		t.Fatalf("perm len = %d, want %d", perm.Len(), len(want))
	}
	for i, w := range want {
		if perm.IntAt(i) != w {
			t.Fatalf("perm[%d] = %d, want %d (%v)", i, perm.IntAt(i), w, perm.Ints())
		}
	}
}

// TestMergeRunsMatchesGlobalStableSort: per-run stable sorts + MergeRuns
// must reproduce the global stable sort's permutation values exactly,
// across kinds, directions, duplicate-heavy keys and empty runs.
func TestMergeRunsMatchesGlobalStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		asc := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
		strRuns := make([]*BAT, k)
		intRuns := make([]*BAT, k)
		for s := 0; s < k; s++ {
			n := rng.Intn(9) // empty runs included
			sv := make([]string, n)
			iv := make([]int64, n)
			for i := 0; i < n; i++ {
				sv[i] = tags[rng.Intn(len(tags))]
				iv[i] = int64(rng.Intn(4))
			}
			sorted := sortRun(t, []*BAT{FromStrings(sv), FromInts(Int, iv)}, asc)
			strRuns[s], intRuns[s] = sorted[0], sorted[1]
		}
		keyRuns := [][]*BAT{strRuns, intRuns}
		got, err := MergeRuns(keyRuns, asc)
		if err != nil {
			t.Fatal(err)
		}
		// The reference sorts the same concatenation, so both produce
		// permutations of the same positions; stability makes them equal.
		want := mergeRef(t, keyRuns, asc)
		if got.Len() != want.Len() {
			t.Fatalf("trial %d: merged %d rows, want %d", trial, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if got.IntAt(i) != want.IntAt(i) {
				t.Fatalf("trial %d: perm[%d] = %d, want %d\ngot  %v\nwant %v",
					trial, i, got.IntAt(i), want.IntAt(i), got.Ints(), want.Ints())
			}
		}
	}
}

func TestMergeRunsErrors(t *testing.T) {
	if _, err := MergeRuns(nil, nil); err == nil {
		t.Error("merge of no key groups succeeded")
	}
	if _, err := MergeRuns([][]*BAT{{}}, []bool{true}); err == nil {
		t.Error("merge of zero runs succeeded")
	}
	if _, err := MergeRuns([][]*BAT{
		{FromInts(Int, []int64{1})},
		{FromInts(Int, []int64{1}), FromInts(Int, []int64{2})},
	}, []bool{true, true}); err == nil {
		t.Error("mismatched run counts succeeded")
	}
	if _, err := MergeRuns([][]*BAT{
		{FromInts(Int, []int64{1, 2})},
		{FromInts(Int, []int64{1})},
	}, []bool{true, true}); err == nil {
		t.Error("mismatched run lengths succeeded")
	}
}

// TestJoinHashBuildOnceProbeMany: one build probed slice-by-slice must
// reproduce the packed HashJoin pairs exactly, including duplicate keys
// on both sides and empty probes.
func TestJoinHashBuildOnceProbeMany(t *testing.T) {
	build := FromInts(Int, []int64{2, 1, 2, 5})
	probe := FromInts(Int, []int64{1, 2, 2, 7, 5, 1})
	wantL, wantR, err := HashJoin(probe, build)
	if err != nil {
		t.Fatal(err)
	}
	h := BuildJoinHash(build)
	var gotL, gotR []int64
	for _, bounds := range [][2]int{{0, 2}, {2, 2}, {2, 6}} { // empty middle slice
		lo, ro, err := h.Probe(probe.Slice(bounds[0], bounds[1]))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < lo.Len(); i++ {
			gotL = append(gotL, lo.IntAt(i)+int64(bounds[0]))
			gotR = append(gotR, ro.IntAt(i))
		}
	}
	if len(gotL) != wantL.Len() {
		t.Fatalf("probe-per-slice found %d pairs, packed join %d", len(gotL), wantL.Len())
	}
	for i := range gotL {
		if gotL[i] != wantL.IntAt(i) || gotR[i] != wantR.IntAt(i) {
			t.Fatalf("pair %d: got (%d,%d), want (%d,%d)", i, gotL[i], gotR[i], wantL.IntAt(i), wantR.IntAt(i))
		}
	}
	if _, _, err := h.Probe(FromStrings([]string{"x"})); err == nil {
		t.Error("kind-mismatched probe succeeded")
	}
}
