// Package storage implements the columnar substrate of the reproduction:
// BATs (Binary Association Tables), MonetDB's storage unit. A BAT here is a
// dense-headed column — the head is the implicit row position (oid 0..n-1)
// and the tail is a typed value array. Candidate lists (selection results)
// are OID BATs. The engine's MAL operator kernels are thin wrappers over
// the columnar operators in this package.
package storage

import "fmt"

// Kind is the tail type of a BAT.
type Kind int

// Supported tail kinds. Date is stored as days since the Unix epoch and
// OID as an int64 row position; both share the integer array.
const (
	Int Kind = iota
	Flt
	Str
	Bool
	Date
	OID
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Flt:
		return "flt"
	case Str:
		return "str"
	case Bool:
		return "bit"
	case Date:
		return "date"
	case OID:
		return "oid"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a kind name produced by Kind.String — the
// spelling persisted dataset manifests use.
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "int":
		return Int, true
	case "flt":
		return Flt, true
	case "str":
		return Str, true
	case "bit":
		return Bool, true
	case "date":
		return Date, true
	case "oid":
		return OID, true
	}
	return Int, false
}

func (k Kind) usesInts() bool { return k == Int || k == Date || k == OID }

// BAT is a single column. The zero value is not usable; construct with New.
type BAT struct {
	kind  Kind
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
}

// New returns an empty BAT of the given kind with capacity hint cap.
func New(k Kind, capacity int) *BAT {
	b := &BAT{kind: k}
	switch {
	case k.usesInts():
		b.ints = make([]int64, 0, capacity)
	case k == Flt:
		b.flts = make([]float64, 0, capacity)
	case k == Str:
		b.strs = make([]string, 0, capacity)
	case k == Bool:
		b.bools = make([]bool, 0, capacity)
	}
	return b
}

// FromInts wraps an int64 slice as a BAT of kind k (Int, Date or OID).
// The slice is not copied.
func FromInts(k Kind, v []int64) *BAT {
	if !k.usesInts() {
		panic("storage: FromInts with non-integer kind " + k.String())
	}
	return &BAT{kind: k, ints: v}
}

// FromFloats wraps a float64 slice as a Flt BAT without copying.
func FromFloats(v []float64) *BAT { return &BAT{kind: Flt, flts: v} }

// FromStrings wraps a string slice as a Str BAT without copying.
func FromStrings(v []string) *BAT { return &BAT{kind: Str, strs: v} }

// FromBools wraps a bool slice as a Bool BAT without copying.
func FromBools(v []bool) *BAT { return &BAT{kind: Bool, bools: v} }

// Kind returns the tail kind.
func (b *BAT) Kind() Kind { return b.kind }

// Len returns the number of rows.
func (b *BAT) Len() int {
	switch {
	case b.kind.usesInts():
		return len(b.ints)
	case b.kind == Flt:
		return len(b.flts)
	case b.kind == Str:
		return len(b.strs)
	default:
		return len(b.bools)
	}
}

// AppendInt appends to an integer-family BAT (Int, Date, OID).
func (b *BAT) AppendInt(v int64) { b.ints = append(b.ints, v) }

// AppendFlt appends to a Flt BAT.
func (b *BAT) AppendFlt(v float64) { b.flts = append(b.flts, v) }

// AppendStr appends to a Str BAT.
func (b *BAT) AppendStr(v string) { b.strs = append(b.strs, v) }

// AppendBool appends to a Bool BAT.
func (b *BAT) AppendBool(v bool) { b.bools = append(b.bools, v) }

// IntAt returns row i of an integer-family BAT.
func (b *BAT) IntAt(i int) int64 { return b.ints[i] }

// FltAt returns row i of a Flt BAT.
func (b *BAT) FltAt(i int) float64 { return b.flts[i] }

// StrAt returns row i of a Str BAT.
func (b *BAT) StrAt(i int) string { return b.strs[i] }

// BoolAt returns row i of a Bool BAT.
func (b *BAT) BoolAt(i int) bool { return b.bools[i] }

// Ints exposes the backing int64 array of an integer-family BAT.
func (b *BAT) Ints() []int64 { return b.ints }

// Flts exposes the backing float64 array of a Flt BAT.
func (b *BAT) Flts() []float64 { return b.flts }

// Strs exposes the backing string array of a Str BAT.
func (b *BAT) Strs() []string { return b.strs }

// Bools exposes the backing bool array of a Bool BAT.
func (b *BAT) Bools() []bool { return b.bools }

// Slice returns the rows [lo, hi) as a BAT sharing the backing array.
// This is the primitive behind the optimizer's mitosis partitioning.
func (b *BAT) Slice(lo, hi int) *BAT {
	n := b.Len()
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	out := &BAT{kind: b.kind}
	switch {
	case b.kind.usesInts():
		out.ints = b.ints[lo:hi]
	case b.kind == Flt:
		out.flts = b.flts[lo:hi]
	case b.kind == Str:
		out.strs = b.strs[lo:hi]
	default:
		out.bools = b.bools[lo:hi]
	}
	return out
}

// Clone returns a deep copy.
func (b *BAT) Clone() *BAT {
	out := &BAT{kind: b.kind}
	out.ints = append([]int64(nil), b.ints...)
	out.flts = append([]float64(nil), b.flts...)
	out.strs = append([]string(nil), b.strs...)
	out.bools = append([]bool(nil), b.bools...)
	return out
}

// Append concatenates other onto b in place. This is the mergetable
// "pack" primitive that reassembles mitosis partitions. It returns an
// error on kind mismatch.
func (b *BAT) Append(other *BAT) error {
	if b.kind != other.kind {
		return fmt.Errorf("storage: append %s onto %s", other.kind, b.kind)
	}
	b.ints = append(b.ints, other.ints...)
	b.flts = append(b.flts, other.flts...)
	b.strs = append(b.strs, other.strs...)
	b.bools = append(b.bools, other.bools...)
	return nil
}

// FootprintBytes estimates the heap footprint of the BAT, used by the
// profiler's rss accounting.
func (b *BAT) FootprintBytes() int64 {
	var n int64
	n += int64(cap(b.ints)) * 8
	n += int64(cap(b.flts)) * 8
	n += int64(cap(b.bools))
	for _, s := range b.strs {
		n += int64(len(s)) + 16
	}
	return n
}
