package storage

import "fmt"

// This file implements the recombination kernel of sort mitosis: a
// stable k-way merge over per-slice sorted runs (MAL's mat.kmerge in
// this reproduction). The compiler sorts every mitosis slice
// independently, then one merge computes the permutation that
// interleaves the runs into the globally sorted order.

// cmpCells compares a[i] against b[j] under the columns' shared kind
// family (a and b are the same logical column from two different
// slices). Returns -1, 0 or 1.
func cmpCells(a *BAT, i int, b *BAT, j int) int {
	switch {
	case a.kind.usesInts():
		x, y := a.ints[i], b.ints[j]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case a.kind == Flt:
		x, y := a.flts[i], b.flts[j]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case a.kind == Str:
		x, y := a.strs[i], b.strs[j]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	default:
		x, y := a.bools[i], b.bools[j]
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
	}
	return 0
}

// MergeRuns computes the permutation that merges k sorted runs into one
// globally sorted sequence. keys[j][s] is sort key j (most significant
// first) of run s, already sorted run-locally under the same keys;
// asc[j] gives key j's direction. The returned oid BAT indexes the
// concatenation of the runs in run order (run 0's rows first), i.e. the
// column layout mat.pack produces.
//
// Stability contract: ties across runs resolve to the lower run index,
// and rows within a run keep their run-local order. Because the
// concatenated run order equals the original row order, a stable
// per-run sort followed by MergeRuns yields the exact permutation a
// stable sort of the whole relation produces — partitioned sorts are
// byte-identical to the sequential path, never approximately equal.
func MergeRuns(keys [][]*BAT, asc []bool) (*BAT, error) {
	if len(keys) == 0 || len(keys) != len(asc) {
		return nil, fmt.Errorf("storage: merge with %d key groups, %d directions", len(keys), len(asc))
	}
	k := len(keys[0])
	if k == 0 {
		return nil, fmt.Errorf("storage: merge of zero runs")
	}
	total := 0
	lens := make([]int, k)
	for s := 0; s < k; s++ {
		lens[s] = keys[0][s].Len()
		total += lens[s]
	}
	for j := 1; j < len(keys); j++ {
		if len(keys[j]) != k {
			return nil, fmt.Errorf("storage: merge key %d has %d runs, key 0 has %d", j, len(keys[j]), k)
		}
		for s := 0; s < k; s++ {
			if keys[j][s].Len() != lens[s] {
				return nil, fmt.Errorf("storage: merge run %d: key %d has %d rows, key 0 has %d", s, j, keys[j][s].Len(), lens[s])
			}
		}
	}

	// offsets[s] is run s's first position in the concatenated layout.
	offsets := make([]int64, k)
	for s := 1; s < k; s++ {
		offsets[s] = offsets[s-1] + int64(lens[s-1])
	}
	cursor := make([]int, k)

	// less orders run heads: keys most-significant first with per-key
	// direction, ties to the lower run index (stability).
	less := func(r1, r2 int) bool {
		for j := range keys {
			c := cmpCells(keys[j][r1], cursor[r1], keys[j][r2], cursor[r2])
			if c != 0 {
				if asc[j] {
					return c < 0
				}
				return c > 0
			}
		}
		return r1 < r2
	}

	// Binary min-heap of run indices with live heads: total cost
	// O(n log k) comparisons, so wide fan-outs (k up to 64) do not
	// degrade the merge into an O(n*k) scan.
	heap := make([]int, 0, k)
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				return
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for s := 0; s < k; s++ {
		if lens[s] > 0 {
			heap = append(heap, s)
			up(len(heap) - 1)
		}
	}

	out := New(OID, total)
	for len(heap) > 0 {
		s := heap[0]
		out.AppendInt(offsets[s] + int64(cursor[s]))
		cursor[s]++
		if cursor[s] >= lens[s] {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return out, nil
}
