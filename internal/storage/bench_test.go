package storage

import (
	"fmt"
	"testing"
)

func benchColumn(n int) *BAT {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * 7 % 1000)
	}
	return FromInts(Int, vals)
}

func BenchmarkThetaSelect(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		col := benchColumn(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ThetaSelect(col, LT, IntVal(500), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProject(b *testing.B) {
	col := benchColumn(100_000)
	oids, _ := ThetaSelect(col, LT, IntVal(500), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Project(oids, col); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	l := benchColumn(50_000)
	r := benchColumn(1_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := HashJoin(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupAggr(b *testing.B) {
	col := benchColumn(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, extents, n, err := Group(col, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Aggr(AggrSum, col, groups, n); err != nil {
			b.Fatal(err)
		}
		_ = extents
	}
}

func BenchmarkSortOrder(b *testing.B) {
	col := benchColumn(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SortOrder(col, true)
	}
}

func BenchmarkLikeMatch(b *testing.B) {
	vals := make([]string, 10_000)
	for i := range vals {
		vals[i] = fmt.Sprintf("PROMO BURNISHED COPPER %d", i)
	}
	col := FromStrings(vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LikeMatch(col, "%BURNISHED%"); err != nil {
			b.Fatal(err)
		}
	}
}
