package storage

import (
	"testing"
	"testing/quick"
)

func intBAT(vs ...int64) *BAT { return FromInts(Int, vs) }

func TestBATBasics(t *testing.T) {
	b := New(Int, 4)
	for i := int64(0); i < 5; i++ {
		b.AppendInt(i * 10)
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.IntAt(3) != 30 {
		t.Fatalf("IntAt(3) = %d", b.IntAt(3))
	}
	s := b.Slice(1, 3)
	if s.Len() != 2 || s.IntAt(0) != 10 || s.IntAt(1) != 20 {
		t.Fatalf("Slice = %v", s.Ints())
	}
	// Out-of-range slices clamp.
	if b.Slice(-5, 100).Len() != 5 {
		t.Error("Slice should clamp bounds")
	}
	if b.Slice(4, 2).Len() != 0 {
		t.Error("inverted Slice should be empty")
	}
}

func TestBATAppendKinds(t *testing.T) {
	f := New(Flt, 0)
	f.AppendFlt(1.5)
	s := New(Str, 0)
	s.AppendStr("x")
	bo := New(Bool, 0)
	bo.AppendBool(true)
	if f.FltAt(0) != 1.5 || s.StrAt(0) != "x" || !bo.BoolAt(0) {
		t.Fatal("typed append/get broken")
	}
	if err := f.Append(s); err == nil {
		t.Error("Append across kinds should fail")
	}
	f2 := FromFloats([]float64{2.5})
	if err := f.Append(f2); err != nil || f.Len() != 2 {
		t.Errorf("Append: %v len=%d", err, f.Len())
	}
}

func TestThetaSelect(t *testing.T) {
	b := intBAT(5, 1, 3, 5, 2)
	cases := []struct {
		op   CmpOp
		v    int64
		want []int64
	}{
		{EQ, 5, []int64{0, 3}},
		{NE, 5, []int64{1, 2, 4}},
		{LT, 3, []int64{1, 4}},
		{LE, 3, []int64{1, 2, 4}},
		{GT, 3, []int64{0, 3}},
		{GE, 3, []int64{0, 2, 3}},
	}
	for _, c := range cases {
		got, err := ThetaSelect(b, c.op, IntVal(c.v), nil)
		if err != nil {
			t.Fatalf("%v %d: %v", c.op, c.v, err)
		}
		if !equalI64(got.Ints(), c.want) {
			t.Errorf("ThetaSelect %v %d = %v, want %v", c.op, c.v, got.Ints(), c.want)
		}
	}
}

func TestThetaSelectWithCandidates(t *testing.T) {
	b := intBAT(5, 1, 3, 5, 2)
	cands := FromInts(OID, []int64{0, 2, 4})
	got, err := ThetaSelect(b, GE, IntVal(3), cands)
	if err != nil {
		t.Fatal(err)
	}
	if !equalI64(got.Ints(), []int64{0, 2}) {
		t.Errorf("got %v", got.Ints())
	}
	// Bad candidate oid errors out.
	bad := FromInts(OID, []int64{99})
	if _, err := ThetaSelect(b, EQ, IntVal(1), bad); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	// Kind mismatch errors out.
	if _, err := ThetaSelect(b, EQ, StrVal("x"), nil); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestRangeSelectInclusivity(t *testing.T) {
	b := intBAT(1, 2, 3, 4, 5)
	got, _ := RangeSelect(b, IntVal(2), IntVal(4), true, true, nil)
	if !equalI64(got.Ints(), []int64{1, 2, 3}) {
		t.Errorf("[2,4] = %v", got.Ints())
	}
	got, _ = RangeSelect(b, IntVal(2), IntVal(4), false, false, nil)
	if !equalI64(got.Ints(), []int64{2}) {
		t.Errorf("(2,4) = %v", got.Ints())
	}
	got, _ = RangeSelect(b, IntVal(2), IntVal(4), true, false, nil)
	if !equalI64(got.Ints(), []int64{1, 2}) {
		t.Errorf("[2,4) = %v", got.Ints())
	}
}

func TestRangeSelectStrings(t *testing.T) {
	b := FromStrings([]string{"apple", "pear", "fig", "plum"})
	got, err := RangeSelect(b, StrVal("b"), StrVal("q"), true, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	// "pear", "fig" and "plum" all sort within [b, q); "apple" does not.
	if !equalI64(got.Ints(), []int64{1, 2, 3}) {
		t.Errorf("got %v", got.Ints())
	}
}

func TestProject(t *testing.T) {
	col := FromFloats([]float64{0.1, 0.2, 0.3, 0.4})
	oids := FromInts(OID, []int64{3, 0, 3})
	got, err := Project(oids, col)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4, 0.1, 0.4}
	for i, v := range want {
		if got.FltAt(i) != v {
			t.Errorf("row %d = %g, want %g", i, got.FltAt(i), v)
		}
	}
	if _, err := Project(FromInts(OID, []int64{9}), col); err == nil {
		t.Error("out-of-range oid accepted")
	}
	if _, err := Project(col, col); err == nil {
		t.Error("non-oid head accepted")
	}
}

func TestHashJoin(t *testing.T) {
	l := intBAT(1, 2, 3, 2)
	r := intBAT(2, 4, 1, 2)
	lo, ro, err := HashJoin(l, r)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ l, r int64 }
	got := map[pair]bool{}
	for i := range lo.Ints() {
		got[pair{lo.IntAt(i), ro.IntAt(i)}] = true
	}
	want := []pair{{0, 2}, {1, 0}, {1, 3}, {3, 0}, {3, 3}}
	if len(got) != len(want) {
		t.Fatalf("join produced %d pairs, want %d: %v", len(got), len(want), got)
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
	// Output is ordered by left oid.
	for i := 1; i < lo.Len(); i++ {
		if lo.IntAt(i) < lo.IntAt(i-1) {
			t.Error("join output not ordered by left oid")
		}
	}
}

func TestHashJoinStringsAndMismatch(t *testing.T) {
	l := FromStrings([]string{"a", "b"})
	r := FromStrings([]string{"b", "b"})
	lo, ro, err := HashJoin(l, r)
	if err != nil || lo.Len() != 2 || ro.Len() != 2 {
		t.Fatalf("string join: %v len=%d", err, lo.Len())
	}
	if _, _, err := HashJoin(l, intBAT(1)); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestGroupAndRefinement(t *testing.T) {
	b := FromStrings([]string{"x", "y", "x", "y", "x"})
	groups, extents, n, err := Group(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ngroups = %d", n)
	}
	if !equalI64(groups.Ints(), []int64{0, 1, 0, 1, 0}) {
		t.Errorf("groups = %v", groups.Ints())
	}
	if !equalI64(extents.Ints(), []int64{0, 1}) {
		t.Errorf("extents = %v", extents.Ints())
	}
	// Refine by a second column.
	c := intBAT(1, 1, 2, 1, 1)
	g2, _, n2, err := Group(c, groups)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 3 {
		t.Fatalf("refined ngroups = %d", n2)
	}
	// rows 0 and 4 share (x,1); row 2 is (x,2) alone; rows 1,3 share (y,1).
	if g2.IntAt(0) != g2.IntAt(4) || g2.IntAt(1) != g2.IntAt(3) || g2.IntAt(2) == g2.IntAt(0) {
		t.Errorf("refined groups = %v", g2.Ints())
	}
}

func TestAggregates(t *testing.T) {
	vals := FromFloats([]float64{1, 2, 3, 4})
	groups := FromInts(OID, []int64{0, 1, 0, 1})
	sum, err := Aggr(AggrSum, vals, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FltAt(0) != 4 || sum.FltAt(1) != 6 {
		t.Errorf("sum = %v", sum.Flts())
	}
	cnt, _ := Aggr(AggrCount, vals, groups, 2)
	if cnt.IntAt(0) != 2 || cnt.IntAt(1) != 2 {
		t.Errorf("count = %v", cnt.Ints())
	}
	mn, _ := Aggr(AggrMin, vals, groups, 2)
	mx, _ := Aggr(AggrMax, vals, groups, 2)
	if mn.FltAt(0) != 1 || mx.FltAt(1) != 4 {
		t.Errorf("min=%v max=%v", mn.Flts(), mx.Flts())
	}
	avg, _ := Aggr(AggrAvg, vals, groups, 2)
	if avg.FltAt(0) != 2 || avg.FltAt(1) != 3 {
		t.Errorf("avg = %v", avg.Flts())
	}
}

func TestAggregatesGlobalAndInt(t *testing.T) {
	vals := intBAT(5, 7, 9)
	sum, err := Aggr(AggrSum, vals, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.IntAt(0) != 21 {
		t.Errorf("global int sum = %d", sum.IntAt(0))
	}
	avg, _ := Aggr(AggrAvg, vals, nil, 0)
	if avg.FltAt(0) != 7 {
		t.Errorf("global avg = %g", avg.FltAt(0))
	}
	strs := FromStrings([]string{"b", "a"})
	mn, err := Aggr(AggrMin, strs, nil, 0)
	if err != nil || mn.StrAt(0) != "a" {
		t.Errorf("string min: %v %q", err, mn.StrAt(0))
	}
	if _, err := Aggr(AggrSum, strs, nil, 0); err == nil {
		t.Error("sum over strings accepted")
	}
}

func TestSortOrderStable(t *testing.T) {
	b := intBAT(3, 1, 2, 1, 3)
	ord := SortOrder(b, true)
	if !equalI64(ord.Ints(), []int64{1, 3, 2, 0, 4}) {
		t.Errorf("asc order = %v", ord.Ints())
	}
	ord = SortOrder(b, false)
	if !equalI64(ord.Ints(), []int64{0, 4, 2, 1, 3}) {
		t.Errorf("desc order = %v", ord.Ints())
	}
}

func TestSortOrderQuickPermutationProperty(t *testing.T) {
	f := func(vs []int64) bool {
		b := FromInts(Int, vs)
		ord := SortOrder(b, true)
		if ord.Len() != len(vs) {
			return false
		}
		seen := make([]bool, len(vs))
		var prev int64
		for i := 0; i < ord.Len(); i++ {
			oid := ord.IntAt(i)
			if oid < 0 || int(oid) >= len(vs) || seen[oid] {
				return false
			}
			seen[oid] = true
			v := vs[oid]
			if i > 0 && v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArith(t *testing.T) {
	l := intBAT(10, 20, 30)
	r := intBAT(3, 4, 5)
	sum, err := Arith(Add, l, r)
	if err != nil || !equalI64(sum.Ints(), []int64{13, 24, 35}) {
		t.Errorf("add: %v %v", err, sum.Ints())
	}
	div, err := Arith(Div, l, r)
	if err != nil || div.Kind() != Flt {
		t.Fatalf("div: %v kind=%v", err, div.Kind())
	}
	if div.FltAt(1) != 5 {
		t.Errorf("20/4 = %g", div.FltAt(1))
	}
	// Mixed promotes to float.
	f := FromFloats([]float64{0.5, 0.5, 0.5})
	mul, err := Arith(Mul, l, f)
	if err != nil || mul.Kind() != Flt || mul.FltAt(2) != 15 {
		t.Errorf("mixed mul: %v", mul.Flts())
	}
	// Div by zero yields 0.
	z := intBAT(0, 1, 0)
	dz, _ := Arith(Div, l, z)
	if dz.FltAt(0) != 0 || dz.FltAt(2) != 0 {
		t.Errorf("div-by-zero = %v", dz.Flts())
	}
	if _, err := Arith(Add, l, FromStrings([]string{"a", "b", "c"})); err == nil {
		t.Error("string arithmetic accepted")
	}
	if _, err := Arith(Add, l, intBAT(1)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestArithScalar(t *testing.T) {
	b := intBAT(1, 2, 3)
	got, err := ArithScalar(Mul, b, IntVal(10), false)
	if err != nil || !equalI64(got.Ints(), []int64{10, 20, 30}) {
		t.Errorf("scalar mul: %v %v", err, got.Ints())
	}
	// flip: v - b
	got, err = ArithScalar(Sub, b, IntVal(10), true)
	if err != nil || !equalI64(got.Ints(), []int64{9, 8, 7}) {
		t.Errorf("flipped sub: %v %v", err, got.Ints())
	}
	got, err = ArithScalar(Add, b, FltVal(0.5), false)
	if err != nil || got.Kind() != Flt || got.FltAt(0) != 1.5 {
		t.Errorf("float scalar: %v", got.Flts())
	}
}

func TestCompareAndBoolOps(t *testing.T) {
	l := intBAT(1, 5, 3)
	r := intBAT(2, 5, 1)
	lt, err := Compare(LT, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if !lt.BoolAt(0) || lt.BoolAt(1) || lt.BoolAt(2) {
		t.Errorf("lt = %v", lt.Bools())
	}
	eq, _ := Compare(EQ, l, r)
	or, err := BoolCombine(false, lt, eq)
	if err != nil {
		t.Fatal(err)
	}
	oids, err := SelectTrue(or)
	if err != nil {
		t.Fatal(err)
	}
	if !equalI64(oids.Ints(), []int64{0, 1}) {
		t.Errorf("le via or = %v", oids.Ints())
	}
	if _, err := SelectTrue(l); err == nil {
		t.Error("SelectTrue over ints accepted")
	}
}

func TestMirrorOIDs(t *testing.T) {
	m := MirrorOIDs(4)
	if m.Kind() != OID || !equalI64(m.Ints(), []int64{0, 1, 2, 3}) {
		t.Errorf("mirror = %v", m.Ints())
	}
	if MirrorOIDs(0).Len() != 0 {
		t.Error("empty mirror")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	cols := []Column{{"id", Int}, {"name", Str}}
	data := map[string]*BAT{
		"id":   intBAT(1, 2, 3),
		"name": FromStrings([]string{"a", "b", "c"}),
	}
	if err := c.Define("sys", "t", cols, data); err != nil {
		t.Fatal(err)
	}
	b, err := c.Bind("sys", "t", "id")
	if err != nil || b.Len() != 3 {
		t.Fatalf("Bind: %v", err)
	}
	if _, err := c.Bind("sys", "missing", "id"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := c.Bind("sys", "t", "missing"); err == nil {
		t.Error("unknown column accepted")
	}
	tab, _ := c.Table("sys", "t")
	if tab.Rows() != 3 {
		t.Errorf("Rows = %d", tab.Rows())
	}
	k, ok := tab.ColumnKind("name")
	if !ok || k != Str {
		t.Errorf("ColumnKind = %v %v", k, ok)
	}
	if names := c.TableNames(); len(names) != 1 || names[0] != "sys.t" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestCatalogDefineErrors(t *testing.T) {
	c := NewCatalog()
	cols := []Column{{"id", Int}}
	if err := c.Define("s", "t", nil, nil); err == nil {
		t.Error("empty columns accepted")
	}
	if err := c.Define("s", "t", cols, map[string]*BAT{}); err == nil {
		t.Error("missing data accepted")
	}
	if err := c.Define("s", "t", cols, map[string]*BAT{"id": FromStrings([]string{"x"})}); err == nil {
		t.Error("kind mismatch accepted")
	}
	cols2 := []Column{{"a", Int}, {"b", Int}}
	if err := c.Define("s", "t", cols2, map[string]*BAT{"a": intBAT(1), "b": intBAT(1, 2)}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestFootprintBytes(t *testing.T) {
	b := FromStrings([]string{"hello", "world"})
	if b.FootprintBytes() <= 0 {
		t.Error("string footprint should be positive")
	}
	i := intBAT(1, 2, 3)
	if got := i.FootprintBytes(); got < 24 {
		t.Errorf("int footprint = %d", got)
	}
}

func equalI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLikeMatch(t *testing.T) {
	b := FromStrings([]string{"PROMO BURNISHED COPPER", "STANDARD TIN", "PROMOX", "PRO", ""})
	out, err := LikeMatch(b, "PROMO%")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false, false}
	for i, w := range want {
		if out.BoolAt(i) != w {
			t.Errorf("row %d = %v, want %v", i, out.BoolAt(i), w)
		}
	}
	if _, err := LikeMatch(intBAT(1), "%"); err == nil {
		t.Error("like over ints accepted")
	}
}

func TestLikeMatchPatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%c", true},
		{"abc", "c%", false},
		{"abcabc", "%b%b%", true},
		{"mississippi", "%iss%pi", true},
		{"mississippi", "%iss%pz", false},
		{"mississippi", "%iss%ppi", true},
		{"abc", "a%b%c%", true},
		{"ab", "a__", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
