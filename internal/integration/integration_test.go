// Package integration runs the full stack over the adapted TPC-H
// workload: every query is parsed, bound, compiled (partitioned and
// unpartitioned), optimized, executed (sequentially and on the dataflow
// scheduler), profiled, exported to dot, laid out, rendered, and mapped
// back to its trace. It is the end-to-end proof that the reproduction's
// pieces compose.
package integration

import (
	"strings"
	"testing"

	"stethoscope/internal/algebra"
	"stethoscope/internal/compiler"
	"stethoscope/internal/core"
	"stethoscope/internal/dot"
	"stethoscope/internal/engine"
	"stethoscope/internal/layout"
	"stethoscope/internal/mal"
	"stethoscope/internal/optimizer"
	"stethoscope/internal/profiler"
	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
	"stethoscope/internal/tpch"
	"stethoscope/internal/trace"
)

var cat = func() *storage.Catalog {
	c := storage.NewCatalog()
	if err := tpch.Load(c, tpch.Config{SF: 0.002, Seed: 2024}); err != nil {
		panic(err)
	}
	return c
}()

func compile(t *testing.T, q tpch.Query, partitions int, optimize bool) *mal.Plan {
	t.Helper()
	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		t.Fatalf("%s: parse: %v", q.ID, err)
	}
	tree, err := algebra.Bind(stmt, cat)
	if err != nil {
		t.Fatalf("%s: bind: %v", q.ID, err)
	}
	plan, err := compiler.Compile(tree, stmt.Text, compiler.Options{Partitions: partitions})
	if err != nil {
		t.Fatalf("%s: compile: %v", q.ID, err)
	}
	if optimize {
		plan, _, err = optimizer.Default().Run(plan)
		if err != nil {
			t.Fatalf("%s: optimize: %v", q.ID, err)
		}
	}
	return plan
}

func run(t *testing.T, plan *mal.Plan, workers int) *engine.Result {
	t.Helper()
	res, err := engine.New(cat).Run(plan, engine.Options{Workers: workers})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	return res
}

func resultsEqual(t *testing.T, q string, a, b *engine.Result) {
	t.Helper()
	if a.Rows() != b.Rows() {
		t.Fatalf("%s: %d rows vs %d rows", q, a.Rows(), b.Rows())
	}
	if len(a.Cols) != len(b.Cols) {
		t.Fatalf("%s: %d cols vs %d cols", q, len(a.Cols), len(b.Cols))
	}
	for c := range a.Cols {
		for i := 0; i < a.Rows(); i++ {
			if !cellEqual(a.Cols[c], b.Cols[c], i) {
				t.Fatalf("%s: col %d row %d differs", q, c, i)
			}
		}
	}
}

func cellEqual(a, b *storage.BAT, i int) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case storage.Flt:
		d := a.FltAt(i) - b.FltAt(i)
		return d < 1e-6 && d > -1e-6
	case storage.Str:
		return a.StrAt(i) == b.StrAt(i)
	case storage.Bool:
		return a.BoolAt(i) == b.BoolAt(i)
	default:
		return a.IntAt(i) == b.IntAt(i)
	}
}

func TestAllQueriesCompileAndRun(t *testing.T) {
	for _, q := range tpch.Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			plan := compile(t, q, 1, true)
			if err := plan.Validate(); err != nil {
				t.Fatalf("invalid plan: %v", err)
			}
			res := run(t, plan, 1)
			t.Logf("%s (%s): %d instructions, %d result rows", q.ID, q.Name, len(plan.Instrs), res.Rows())
		})
	}
}

func TestOptimizerPreservesResults(t *testing.T) {
	for _, q := range tpch.Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			raw := run(t, compile(t, q, 4, false), 1)
			opt := run(t, compile(t, q, 4, true), 1)
			resultsEqual(t, q.ID, raw, opt)
		})
	}
}

func TestPartitioningPreservesResults(t *testing.T) {
	for _, q := range tpch.Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			base := run(t, compile(t, q, 1, true), 1)
			part := run(t, compile(t, q, 8, true), 1)
			resultsEqual(t, q.ID, base, part)
		})
	}
}

func TestDataflowPreservesResults(t *testing.T) {
	for _, q := range tpch.Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			plan := compile(t, q, 8, true)
			seq := run(t, plan, 1)
			par := run(t, plan, 8)
			resultsEqual(t, q.ID, seq, par)
		})
	}
}

// TestVisualizationPipelinePerQuery pushes every query through the whole
// Stethoscope side: profile -> trace -> dot -> session -> mapping ->
// coloring -> svg.
func TestVisualizationPipelinePerQuery(t *testing.T) {
	for _, q := range tpch.Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			plan := compile(t, q, 4, true)
			sink := &profiler.SliceSink{}
			if _, err := engine.New(cat).Run(plan, engine.Options{Workers: 4, Profiler: profiler.New(sink)}); err != nil {
				t.Fatal(err)
			}
			st := trace.FromEvents(sink.Events())
			if st.Len() != 2*len(plan.Instrs) {
				t.Fatalf("trace %d events for %d instructions", st.Len(), len(plan.Instrs))
			}
			sess, err := core.NewSession(dot.Export(plan), st, core.SessionOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !sess.Mapping.Complete() {
				t.Fatalf("mapping incomplete: unmatched=%v mismatches=%v",
					sess.Mapping.Unmatched, sess.Mapping.LabelMismatches)
			}
			sess.Replay.FastForward(st.Len())
			out, err := sess.RenderSVG()
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, string(core.ColorGreen)) {
				t.Error("completed replay has no green nodes")
			}
			// Analyses run without error on every query's trace.
			_ = core.Utilize(st)
			_ = core.BirdsEye(st, 8)
			_ = core.TopCostly(st, 5)
			_, _ = core.Gradient(st.Events())
		})
	}
}

// TestPrunedPlansStillLayOut exercises the E11 pruning on the whole
// workload: pruned plans remain valid DAGs that lay out cleanly.
func TestPrunedPlansStillLayOut(t *testing.T) {
	for _, q := range tpch.Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			plan := compile(t, q, 4, true)
			pruned, _ := mal.Prune(plan)
			if err := pruned.Validate(); err != nil {
				t.Fatalf("pruned plan invalid: %v", err)
			}
			g := dot.Export(pruned)
			if _, err := layout.Compute(g, layout.DefaultOptions()); err != nil {
				t.Fatal(err)
			}
			if len(pruned.Instrs) >= len(plan.Instrs) {
				t.Errorf("pruning removed nothing (%d -> %d)", len(plan.Instrs), len(pruned.Instrs))
			}
		})
	}
}
