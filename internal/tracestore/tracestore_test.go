package tracestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"stethoscope/internal/profiler"
)

// synthEvents builds a deterministic start/done event stream of n
// instruction pairs with the given per-instruction duration.
func synthEvents(pairs int, durUs int64) []profiler.Event {
	evs := make([]profiler.Event, 0, 2*pairs)
	clk := int64(0)
	for pc := 0; pc < pairs; pc++ {
		stmt := fmt.Sprintf("X_%d := algebra.thetaselect(X_1, %d);", pc, pc)
		evs = append(evs, profiler.Event{Seq: int64(2 * pc), State: profiler.StateStart, PC: pc, ClkUs: clk, Stmt: stmt})
		clk += durUs
		evs = append(evs, profiler.Event{
			Seq: int64(2*pc + 1), State: profiler.StateDone, PC: pc, Thread: pc % 4,
			ClkUs: clk, DurUs: durUs, RSSKB: 64, Reads: 100, Writes: 10, Stmt: stmt,
		})
	}
	return evs
}

// record writes one complete run and returns its id.
func record(t testing.TB, s *Store, sql string, pairs int, durUs int64) uint64 {
	t.Helper()
	w, err := s.Begin(RunMeta{SQL: sql, Dot: "digraph{}", Partitions: 1, Workers: 1, Instructions: pairs})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	w.EmitBatch(synthEvents(pairs, durUs))
	if err := w.Finish(RunStats{ElapsedUs: int64(pairs) * durUs, Rows: pairs}); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return w.ID()
}

func openStore(t testing.TB, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	opts.Logf = t.Logf
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	want := synthEvents(7, 100)
	w, err := s.Begin(RunMeta{SQL: "select 1", Dot: "digraph{n0}", Partitions: 4, Workers: 2, Instructions: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Split the stream over several records, as the batched path would.
	w.EmitBatch(want[:5])
	w.EmitBatch(want[5:])
	if err := w.Finish(RunStats{ElapsedUs: 700, Rows: 3, CacheHit: true}); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store, stage string) {
		t.Helper()
		info, ok := s.Run(w.ID())
		if !ok {
			t.Fatalf("%s: run missing", stage)
		}
		if info.SQL != "select 1" || info.Partitions != 4 || info.Workers != 2 ||
			info.Instructions != 7 || info.Events != len(want) || !info.Complete ||
			info.ElapsedUs != 700 || info.Rows != 3 || !info.CacheHit || info.Err != "" {
			t.Fatalf("%s: info = %+v", stage, info)
		}
		evs, err := s.Events(w.ID())
		if err != nil {
			t.Fatalf("%s: Events: %v", stage, err)
		}
		if !reflect.DeepEqual(evs, want) {
			t.Fatalf("%s: events diverged from what was appended", stage)
		}
		dot, err := s.Dot(w.ID())
		if err != nil || dot != "digraph{n0}" {
			t.Fatalf("%s: Dot = %q, %v", stage, dot, err)
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Index rebuild: reopen and re-verify everything from the segments.
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	check(s2, "reopened")
	// New run ids continue after the recovered ones.
	id2 := record(t, s2, "select 2", 3, 10)
	if id2 <= w.ID() {
		t.Fatalf("id after reopen = %d, want > %d", id2, w.ID())
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{MaxSegmentBytes: 2048})
	var ids []uint64
	for i := 0; i < 8; i++ {
		ids = append(ids, record(t, s, fmt.Sprintf("select %d", i), 10, 50))
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("segments = %d, want >= 2 after rollover", st.Segments)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.tlog"))
	if len(names) != st.Segments {
		t.Fatalf("on-disk segments = %d, stats say %d", len(names), st.Segments)
	}
	// Every run stays readable across the segment boundary.
	for _, id := range ids {
		evs, err := s.Events(id)
		if err != nil {
			t.Fatalf("Events(%d): %v", id, err)
		}
		if len(evs) != 20 {
			t.Fatalf("Events(%d) = %d events, want 20", id, len(evs))
		}
	}
	s.Close()
	// And after an index rebuild.
	s2 := openStore(t, dir, Options{MaxSegmentBytes: 2048})
	defer s2.Close()
	if got := len(s2.Runs()); got != len(ids) {
		t.Fatalf("reopened runs = %d, want %d", got, len(ids))
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	id1 := record(t, s, "select a", 5, 10)
	id2 := record(t, s, "select b", 5, 10)
	s.Close()

	// Simulate a crash mid-append: a header promising more payload than
	// the file holds.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.tlog"))
	if len(names) != 1 {
		t.Fatalf("segments = %d, want 1", len(names))
	}
	f, err := os.OpenFile(names[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r', 't'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var logged []string
	opts := Options{Dir: dir, Logf: func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}}
	s2, err := Open(opts)
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(torn))
	}
	if st.RecoveredEvents != 20 {
		t.Fatalf("RecoveredEvents = %d, want 20", st.RecoveredEvents)
	}
	joined := strings.Join(logged, "\n")
	if !strings.Contains(joined, "recovered 20 events") {
		t.Fatalf("recovery log missing event count:\n%s", joined)
	}
	// Both intact runs survived whole.
	for _, id := range []uint64{id1, id2} {
		evs, err := s2.Events(id)
		if err != nil || len(evs) != 10 {
			t.Fatalf("Events(%d) = %d, %v", id, len(evs), err)
		}
	}
	// The store accepts appends after truncation, and they survive
	// another reopen (the torn bytes are really gone from disk).
	id3 := record(t, s2, "select c", 4, 10)
	s2.Close()
	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	if evs, err := s3.Events(id3); err != nil || len(evs) != 8 {
		t.Fatalf("post-recovery run: %d events, %v", len(evs), err)
	}
	if s3.Stats().TruncatedBytes != 0 {
		t.Fatal("second reopen still reports a torn tail")
	}
}

func TestTornTailChecksumMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	record(t, s, "select a", 5, 10)
	record(t, s, "select b", 5, 10)
	s.Close()
	// Flip one byte inside the LAST record's payload: crc mismatch.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.tlog"))
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	// The corrupted record was the second run's end record; the run
	// survives as incomplete, everything before it intact.
	runs := s2.Runs()
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if !runs[0].Complete || runs[0].Events != 10 {
		t.Fatalf("first run damaged: %+v", runs[0])
	}
	if runs[1].Complete {
		t.Fatalf("second run should have lost its end record: %+v", runs[1])
	}
	if s2.Stats().TruncatedBytes == 0 {
		t.Fatal("no truncation reported for checksum mismatch")
	}
}

func TestRetentionBySize(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{MaxSegmentBytes: 2048, MaxTotalBytes: 5 * 1024})
	defer s.Close()
	for i := 0; i < 24; i++ {
		record(t, s, fmt.Sprintf("select %d", i), 10, 50)
	}
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Bytes > 5*1024 {
		t.Fatalf("store still %d bytes after compaction, budget 5120", after.Bytes)
	}
	if after.DroppedSegments == 0 || after.DroppedRuns == 0 {
		t.Fatalf("nothing dropped: before=%+v after=%+v", before, after)
	}
	// The newest runs survive, the oldest are gone.
	runs := s.Runs()
	if len(runs) == 0 {
		t.Fatal("retention dropped everything")
	}
	if runs[len(runs)-1].SQL != "select 23" {
		t.Fatalf("newest run lost; tail is %q", runs[len(runs)-1].SQL)
	}
	if runs[0].SQL == "select 0" {
		t.Fatal("oldest run survived a size purge")
	}
	// Dropped runs are truly unreadable, survivors readable.
	if _, err := s.Events(1); err == nil {
		t.Fatal("dropped run still readable")
	}
	if _, err := s.Events(runs[0].ID); err != nil {
		t.Fatalf("surviving run unreadable: %v", err)
	}
}

func TestRetentionByAge(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	s := openStore(t, dir, Options{MaxSegmentBytes: 2048, MaxAge: time.Hour, Clock: clock})
	defer s.Close()
	for i := 0; i < 8; i++ {
		record(t, s, fmt.Sprintf("select old %d", i), 10, 50)
	}
	// Two hours later, new runs arrive (sealing the old segments).
	now = now.Add(2 * time.Hour)
	newID := record(t, s, "select new", 10, 50)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	runs := s.Runs()
	for _, r := range runs {
		if strings.HasPrefix(r.SQL, "select old") {
			// Old runs may survive only in the still-active segment.
			if s.Stats().DroppedSegments == 0 {
				t.Fatalf("no segment expired by age; runs=%d", len(runs))
			}
		}
	}
	if s.Stats().DroppedSegments == 0 {
		t.Fatal("age retention dropped nothing")
	}
	if _, err := s.Events(newID); err != nil {
		t.Fatalf("fresh run lost to age retention: %v", err)
	}
}

func TestTopNAndRollups(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	defer s.Close()
	slow := record(t, s, "select slow", 10, 1000)
	fast := record(t, s, "select fast", 10, 10)
	mid := record(t, s, "select mid", 10, 100)
	// An incomplete run never ranks.
	w, _ := s.Begin(RunMeta{SQL: "select crash", Instructions: 1})
	w.EmitBatch(synthEvents(1, 5))

	top := s.TopN(2)
	if len(top) != 2 || top[0].ID != slow || top[1].ID != mid {
		t.Fatalf("TopN(2) = %+v", top)
	}
	if all := s.TopN(0); len(all) != 3 || all[2].ID != fast {
		t.Fatalf("TopN(0) = %+v", all)
	}

	mods, err := s.ModuleRollup(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 || mods[0].Name != "algebra" || mods[0].Calls != 20 {
		t.Fatalf("ModuleRollup = %+v", mods)
	}
	if mods[0].BusyUs != 10*1000+10*10 {
		t.Fatalf("ModuleRollup busy = %d", mods[0].BusyUs)
	}
	ops, err := s.OperatorRollup()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 || ops[0].Name != "algebra.thetaselect" {
		t.Fatalf("OperatorRollup = %+v", ops)
	}

	u, err := s.Utilization(slow)
	if err != nil {
		t.Fatal(err)
	}
	if u.Threads != 4 {
		t.Fatalf("Utilization threads = %d, want 4", u.Threads)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	defer s.Close()
	a := record(t, s, "select x", 10, 100)
	b := record(t, s, "select x", 10, 250) // 2.5x slower: a regression
	other := record(t, s, "select y", 10, 100)

	d, err := s.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Regression {
		t.Fatalf("2.5x slowdown not flagged: %+v", d)
	}
	if d.ElapsedDeltaUs != 10*250-10*100 {
		t.Fatalf("ElapsedDeltaUs = %d", d.ElapsedDeltaUs)
	}
	if len(d.Instrs) != 10 {
		t.Fatalf("instr deltas = %d, want 10", len(d.Instrs))
	}
	for _, id := range d.Instrs {
		if id.DeltaUs != 150 {
			t.Fatalf("instr delta = %+v, want +150us", id)
		}
	}
	if len(d.Modules) != 1 || d.Modules[0].Module != "algebra" || d.Modules[0].DeltaUs != 1500 {
		t.Fatalf("module deltas = %+v", d.Modules)
	}
	// Same cost in both directions: no regression the other way.
	if d2, err := s.Compare(b, a); err != nil || d2.Regression {
		t.Fatalf("reverse compare: %+v, %v", d2, err)
	}
	// Different SQL refuses to diff.
	if _, err := s.Compare(a, other); err == nil {
		t.Fatal("Compare across different SQL succeeded")
	}
}

// TestConcurrentAppendWhileQuery is the append-while-query race test:
// writers record runs while readers aggregate and a compactor enforces
// retention, all concurrently. Run under -race in CI.
func TestConcurrentAppendWhileQuery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{MaxSegmentBytes: 8 << 10, MaxTotalBytes: 256 << 10})
	defer s.Close()
	const writers, readers, runsEach = 4, 3, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+1)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				w, err := s.Begin(RunMeta{SQL: fmt.Sprintf("select w%d_%d", wi, i), Instructions: 6})
				if err != nil {
					errs <- err
					return
				}
				evs := synthEvents(6, int64(10+i))
				w.EmitBatch(evs[:7])
				w.EmitBatch(evs[7:])
				if err := w.Finish(RunStats{ElapsedUs: int64(60 * (10 + i))}); err != nil {
					errs <- err
					return
				}
			}
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				for _, r := range s.TopN(5) {
					evs, err := s.Events(r.ID)
					if err != nil {
						// The run may have been retired by the concurrent
						// compactor between listing and reading — that is
						// the documented race outcome, not corruption.
						continue
					}
					if len(evs) != r.Events {
						errs <- fmt.Errorf("run %d: read %d events, index says %d", r.ID, len(evs), r.Events)
						return
					}
				}
				if _, err := s.ModuleRollup(); err != nil {
					continue
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := s.Compact(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAppendThroughput pins the acceptance floor: the batched append
// path sustains at least 100k events/sec (typical is far higher; the
// bound holds comfortably even under the race detector).
func TestAppendThroughput(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	w, err := s.Begin(RunMeta{SQL: "bench", Instructions: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := synthEvents(128, 10) // 256 events per record
	const total = 200_000
	start := time.Now()
	n := 0
	for n < total {
		w.EmitBatch(batch)
		n += len(batch)
	}
	if err := w.Finish(RunStats{}); err != nil {
		t.Fatal(err)
	}
	rate := float64(n) / time.Since(start).Seconds()
	if rate < 100_000 {
		t.Fatalf("batched append path sustained %.0f events/sec, want >= 100000", rate)
	}
	t.Logf("batched append: %.0f events/sec", rate)
}

func TestConcurrentRunsInterleave(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	// Two runs appending turn by turn land interleaved in one segment
	// and still read back separated.
	w1, _ := s.Begin(RunMeta{SQL: "a", Instructions: 2})
	w2, _ := s.Begin(RunMeta{SQL: "b", Instructions: 2})
	e1 := synthEvents(2, 10)
	e2 := synthEvents(2, 20)
	w1.EmitBatch(e1[:2])
	w2.EmitBatch(e2[:2])
	w1.EmitBatch(e1[2:])
	w2.EmitBatch(e2[2:])
	if err := w2.Finish(RunStats{ElapsedUs: 40}); err != nil {
		t.Fatal(err)
	}
	if err := w1.Finish(RunStats{ElapsedUs: 20}); err != nil {
		t.Fatal(err)
	}
	got1, err := s.Events(w1.ID())
	if err != nil || !reflect.DeepEqual(got1, e1) {
		t.Fatalf("run 1 events diverged: %v", err)
	}
	got2, err := s.Events(w2.ID())
	if err != nil || !reflect.DeepEqual(got2, e2) {
		t.Fatalf("run 2 events diverged: %v", err)
	}
}

func TestWriterLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir, Options{})
	if _, err := Open(Options{Dir: dir, Logf: t.Logf}); err == nil {
		t.Fatal("second writable Open on a locked store succeeded")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open error = %v, want a lock error", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock releases with the first writer.
	s2 := openStore(t, dir, Options{})
	s2.Close()
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	w := openStore(t, dir, Options{})
	id := record(t, w, "select live", 5, 10)

	// A read-only open succeeds while the writer holds the lock, sees
	// the flushed runs, and refuses writes.
	ro := openStore(t, dir, Options{ReadOnly: true})
	if _, err := ro.Events(id); err != nil {
		t.Fatalf("read-only Events: %v", err)
	}
	if got := len(ro.Runs()); got != 1 {
		t.Fatalf("read-only sees %d runs, want 1", got)
	}
	if _, err := ro.Begin(RunMeta{SQL: "nope"}); err == nil {
		t.Fatal("Begin succeeded on a read-only store")
	}
	if err := ro.Compact(); err == nil {
		t.Fatal("Compact succeeded on a read-only store")
	}
	ro.Close()
	w.Close()

	// A torn tail is skipped in memory, never truncated on disk.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.tlog"))
	torn := []byte{200, 0, 0, 0, 1, 2, 3, 4, 'x'}
	f, err := os.OpenFile(names[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn)
	f.Close()
	sizeBefore := fileSize(t, names[0])
	ro2 := openStore(t, dir, Options{ReadOnly: true})
	if got := ro2.Stats().TruncatedBytes; got != int64(len(torn)) {
		t.Fatalf("read-only torn tail = %d bytes, want %d", got, len(torn))
	}
	if evs, err := ro2.Events(id); err != nil || len(evs) != 10 {
		t.Fatalf("read-only Events after torn tail: %d, %v", len(evs), err)
	}
	ro2.Close()
	if got := fileSize(t, names[0]); got != sizeBefore {
		t.Fatalf("read-only open modified the segment: %d -> %d bytes", sizeBefore, got)
	}
	// A writable open then truncates for real.
	w2 := openStore(t, dir, Options{})
	defer w2.Close()
	if got := fileSize(t, names[0]); got != sizeBefore-int64(len(torn)) {
		t.Fatalf("writable open did not truncate: %d bytes", got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestBeginRecordAutoTuneTrailerRoundTrip(t *testing.T) {
	m := RunMeta{
		SQL: "select 1", Dot: "digraph{}", Start: time.Unix(0, 12345),
		Partitions: 8, Workers: 4, Instructions: 17,
		AutoTuned: true, TuneReason: "auto: rows=60175 procs=4 -> 8 partitions",
	}
	id, got, err := decodeBegin(encodeBegin(42, m)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 {
		t.Errorf("id = %d", id)
	}
	if got.AutoTuned != m.AutoTuned || got.TuneReason != m.TuneReason {
		t.Errorf("auto-tune trailer lost: %+v", got)
	}
	if got.Partitions != 8 || got.Workers != 4 || got.SQL != m.SQL || got.Dot != m.Dot {
		t.Errorf("base fields corrupted: %+v", got)
	}
}

// encodeBeginLegacy renders a begin payload in the pre-trailer format,
// byte for byte what old stores contain.
func encodeBeginLegacy(id uint64, m RunMeta) []byte {
	b := []byte{1 /* recBegin */}
	b = binary.AppendUvarint(b, id)
	b = binary.AppendVarint(b, m.Start.UnixNano())
	b = binary.AppendUvarint(b, uint64(m.Partitions))
	b = binary.AppendUvarint(b, uint64(m.Workers))
	b = binary.AppendUvarint(b, uint64(m.Instructions))
	b = appendString(b, m.SQL)
	b = appendString(b, m.Dot)
	return b
}

func TestDecodeBeginToleratesLegacyRecords(t *testing.T) {
	m := RunMeta{SQL: "select 2", Dot: "digraph{}", Start: time.Unix(0, 99), Partitions: 2, Workers: 2, Instructions: 5}
	id, got, err := decodeBegin(encodeBeginLegacy(7, m)[1:])
	if err != nil {
		t.Fatalf("legacy begin record failed to decode: %v", err)
	}
	if id != 7 || got.SQL != m.SQL || got.Partitions != 2 {
		t.Errorf("legacy fields corrupted: id=%d %+v", id, got)
	}
	if got.AutoTuned || got.TuneReason != "" {
		t.Errorf("legacy record decoded with auto-tune set: %+v", got)
	}
}
