package tracestore

import (
	"fmt"
	"sort"

	"stethoscope/internal/core"
	"stethoscope/internal/profiler"
	"stethoscope/internal/trace"
)

// This file is the aggregation query layer over the stored history:
// top-N slowest runs, per-module/per-operator time rollups, utilization
// summaries, and the cross-run diff of two executions of the same SQL.

// TopN returns the n slowest successfully completed runs, slowest
// first. n <= 0 returns all of them.
func (s *Store) TopN(n int) []RunInfo {
	runs := s.Runs()
	ok := runs[:0]
	for _, r := range runs {
		if r.OK() {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].ElapsedUs != ok[j].ElapsedUs {
			return ok[i].ElapsedUs > ok[j].ElapsedUs
		}
		return ok[i].ID < ok[j].ID
	})
	if n > 0 && n < len(ok) {
		ok = ok[:n]
	}
	return append([]RunInfo(nil), ok...)
}

// AggStat is one row of a time rollup: a MAL module or operator with
// its call count, busy time, data volume, and share of the total.
type AggStat struct {
	Name   string
	Calls  int
	BusyUs int64
	Reads  int64
	Writes int64
	// Share is the fraction of the rollup's total busy time, 0..1.
	Share float64
}

// rollup aggregates done events of the selected runs by a key function.
// ids empty selects every indexed run.
func (s *Store) rollup(key func(stmt string) string, ids []uint64) ([]AggStat, error) {
	if len(ids) == 0 {
		for _, r := range s.Runs() {
			ids = append(ids, r.ID)
		}
	}
	byKey := map[string]*AggStat{}
	var total int64
	for _, id := range ids {
		evs, err := s.Events(id)
		if err != nil {
			return nil, err
		}
		for i := range evs {
			e := &evs[i]
			if e.State != profiler.StateDone {
				continue
			}
			k := key(e.Stmt)
			st, ok := byKey[k]
			if !ok {
				st = &AggStat{Name: k}
				byKey[k] = st
			}
			st.Calls++
			st.BusyUs += e.DurUs
			st.Reads += e.Reads
			st.Writes += e.Writes
			total += e.DurUs
		}
	}
	out := make([]AggStat, 0, len(byKey))
	for _, st := range byKey {
		if total > 0 {
			st.Share = float64(st.BusyUs) / float64(total)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusyUs != out[j].BusyUs {
			return out[i].BusyUs > out[j].BusyUs
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// ModuleRollup aggregates busy time per MAL module across the given
// runs (all runs when ids is empty), busiest first.
func (s *Store) ModuleRollup(ids ...uint64) ([]AggStat, error) {
	return s.rollup(moduleOf, ids)
}

// OperatorRollup aggregates busy time per MAL operator
// ("module.function") across the given runs, busiest first.
func (s *Store) OperatorRollup(ids ...uint64) ([]AggStat, error) {
	return s.rollup(callOf, ids)
}

// Utilization summarizes a stored run's multi-core usage through the
// same analysis the live path uses.
func (s *Store) Utilization(id uint64) (core.Utilization, error) {
	evs, err := s.Events(id)
	if err != nil {
		return core.Utilization{}, err
	}
	return core.Utilize(trace.FromEventsOwned(evs)), nil
}

// InstrDelta is one instruction's cost difference between two runs.
type InstrDelta struct {
	PC      int
	Stmt    string
	AUs     int64 // busy time in run A
	BUs     int64 // busy time in run B
	DeltaUs int64 // BUs - AUs
}

// ModuleDelta is one module's cost difference between two runs.
type ModuleDelta struct {
	Module  string
	AUs     int64
	BUs     int64
	DeltaUs int64
}

// Diff compares two recorded runs of the same SQL.
type Diff struct {
	A, B RunInfo
	// ElapsedDeltaUs is B's wall time minus A's.
	ElapsedDeltaUs int64
	// Regression reports whether B is at least 10% slower than A — the
	// cross-run regression signal.
	Regression bool
	// Instrs lists per-instruction busy-time deltas, largest absolute
	// delta first.
	Instrs []InstrDelta
	// Modules lists per-module busy-time deltas, largest absolute delta
	// first.
	Modules []ModuleDelta
}

// Compare diffs two recorded runs of the same SQL: per-instruction and
// per-module busy-time deltas plus the wall-time regression verdict.
// Comparing runs of different SQL is an error.
func (s *Store) Compare(aID, bID uint64) (*Diff, error) {
	a, ok := s.Run(aID)
	if !ok {
		return nil, fmt.Errorf("tracestore: %s: unknown run %d", s.opts.Dir, aID)
	}
	b, ok := s.Run(bID)
	if !ok {
		return nil, fmt.Errorf("tracestore: %s: unknown run %d", s.opts.Dir, bID)
	}
	if a.SQL != b.SQL {
		return nil, fmt.Errorf("tracestore: %s: runs %d and %d executed different SQL (%q vs %q)", s.opts.Dir, aID, bID, a.SQL, b.SQL)
	}
	d := &Diff{A: a, B: b, ElapsedDeltaUs: b.ElapsedUs - a.ElapsedUs}
	if a.OK() && b.OK() && a.ElapsedUs > 0 {
		d.Regression = float64(b.ElapsedUs) >= 1.1*float64(a.ElapsedUs)
	}
	perPC := map[int]*InstrDelta{}
	perMod := map[string]*ModuleDelta{}
	fold := func(id uint64, side func(*InstrDelta) *int64, mside func(*ModuleDelta) *int64) error {
		evs, err := s.Events(id)
		if err != nil {
			return err
		}
		for i := range evs {
			e := &evs[i]
			if e.State != profiler.StateDone {
				continue
			}
			pd, ok := perPC[e.PC]
			if !ok {
				pd = &InstrDelta{PC: e.PC}
				perPC[e.PC] = pd
			}
			if pd.Stmt == "" {
				pd.Stmt = e.Stmt
			}
			*side(pd) += e.DurUs
			m := moduleOf(e.Stmt)
			md, ok := perMod[m]
			if !ok {
				md = &ModuleDelta{Module: m}
				perMod[m] = md
			}
			*mside(md) += e.DurUs
		}
		return nil
	}
	if err := fold(aID,
		func(d *InstrDelta) *int64 { return &d.AUs },
		func(d *ModuleDelta) *int64 { return &d.AUs }); err != nil {
		return nil, err
	}
	if err := fold(bID,
		func(d *InstrDelta) *int64 { return &d.BUs },
		func(d *ModuleDelta) *int64 { return &d.BUs }); err != nil {
		return nil, err
	}
	for _, pd := range perPC {
		pd.DeltaUs = pd.BUs - pd.AUs
		d.Instrs = append(d.Instrs, *pd)
	}
	for _, md := range perMod {
		md.DeltaUs = md.BUs - md.AUs
		d.Modules = append(d.Modules, *md)
	}
	sort.Slice(d.Instrs, func(i, j int) bool {
		ai, aj := abs64(d.Instrs[i].DeltaUs), abs64(d.Instrs[j].DeltaUs)
		if ai != aj {
			return ai > aj
		}
		return d.Instrs[i].PC < d.Instrs[j].PC
	})
	sort.Slice(d.Modules, func(i, j int) bool {
		ai, aj := abs64(d.Modules[i].DeltaUs), abs64(d.Modules[j].DeltaUs)
		if ai != aj {
			return ai > aj
		}
		return d.Modules[i].Module < d.Modules[j].Module
	})
	return d, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
