// On-disk record format of the trace store.
//
// A segment file is a sequence of length-prefixed, checksummed records:
//
//	u32le payloadLen | u32le crc32(payload) | payload
//
// The payload starts with a one-byte record type followed by the run id
// as a uvarint; the rest is type-specific. Three record types exist:
//
//	begin  — run metadata: start time, SQL text, execution settings,
//	         and the plan's dot text (so a stored run replays through
//	         the offline analysis path without recompiling).
//	events — a batch of profiler events, varint-packed.
//	end    — completion statistics: elapsed time, result rows, plan
//	         cache hit, and the execution error (empty on success).
//
// Records of concurrent runs interleave freely within a segment; the
// run id on every record reassembles them. A crash can only tear the
// last record of the last segment (appends are sequential); Open
// detects the torn tail by its short length or checksum mismatch and
// truncates it, losing at most that one record.
package tracestore

import (
	"encoding/binary"
	"fmt"
	"time"

	"stethoscope/internal/fsio"
	"stethoscope/internal/profiler"
)

// Record types.
const (
	recBegin  byte = 1
	recEvents byte = 2
	recEnd    byte = 3
)

// recHeaderLen is the fixed record header: payload length + CRC
// (the shared fsio framing).
const recHeaderLen = fsio.RecordHeaderLen

// maxRecordBytes bounds a single record; anything larger read back from
// disk is treated as corruption rather than allocated.
const maxRecordBytes = 64 << 20

// RunMeta is the metadata written with a run's begin record.
type RunMeta struct {
	SQL          string
	Dot          string // plan dot text, kept for offline replay
	Start        time.Time
	Partitions   int
	Workers      int
	Instructions int
	// AutoTuned reports that Partitions/Workers were chosen adaptively
	// (stethoscope.Auto) rather than configured; TuneReason records what
	// the selection saw (row counts, cores) and what it picked, so a
	// stored trace explains its own fan-out.
	AutoTuned  bool
	TuneReason string
}

// RunStats is the completion accounting written with an end record.
type RunStats struct {
	ElapsedUs int64
	Rows      int
	CacheHit  bool
	Err       string // execution error; empty on success
}

// encodeBegin renders a begin payload.
func encodeBegin(id uint64, m RunMeta) []byte {
	b := make([]byte, 0, 64+len(m.SQL)+len(m.Dot))
	b = append(b, recBegin)
	b = binary.AppendUvarint(b, id)
	b = binary.AppendVarint(b, m.Start.UnixNano())
	b = binary.AppendUvarint(b, uint64(m.Partitions))
	b = binary.AppendUvarint(b, uint64(m.Workers))
	b = binary.AppendUvarint(b, uint64(m.Instructions))
	b = appendString(b, m.SQL)
	b = appendString(b, m.Dot)
	// Auto-tune trailer, appended after the original field set: decoders
	// treat its absence as "not auto-tuned", which keeps pre-trailer
	// stores readable.
	var flags byte
	if m.AutoTuned {
		flags |= 1
	}
	b = append(b, flags)
	b = appendString(b, m.TuneReason)
	return b
}

// encodeEvents renders an events payload.
func encodeEvents(id uint64, evs []profiler.Event) []byte {
	n := 0
	for i := range evs {
		n += 40 + len(evs[i].Stmt)
	}
	b := make([]byte, 0, 16+n)
	b = append(b, recEvents)
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, uint64(len(evs)))
	for i := range evs {
		e := &evs[i]
		b = binary.AppendVarint(b, e.Seq)
		b = append(b, byte(e.State))
		b = binary.AppendVarint(b, int64(e.PC))
		b = binary.AppendVarint(b, int64(e.Thread))
		b = binary.AppendVarint(b, e.ClkUs)
		b = binary.AppendVarint(b, e.DurUs)
		b = binary.AppendVarint(b, e.RSSKB)
		b = binary.AppendVarint(b, e.Reads)
		b = binary.AppendVarint(b, e.Writes)
		b = appendString(b, e.Stmt)
	}
	return b
}

// encodeEnd renders an end payload.
func encodeEnd(id uint64, st RunStats) []byte {
	b := make([]byte, 0, 32+len(st.Err))
	b = append(b, recEnd)
	b = binary.AppendUvarint(b, id)
	b = binary.AppendVarint(b, st.ElapsedUs)
	b = binary.AppendUvarint(b, uint64(st.Rows))
	var flags byte
	if st.CacheHit {
		flags |= 1
	}
	b = append(b, flags)
	b = appendString(b, st.Err)
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// payloadReader decodes a record payload with sticky error handling.
type payloadReader struct {
	b   []byte
	pos int
	err error
}

func (r *payloadReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("tracestore: truncated %s in record payload", what)
	}
}

func (r *payloadReader) byte() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.fail("byte")
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *payloadReader) string() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.pos+n > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

// decodeBegin parses a begin payload (after the type byte).
func decodeBegin(b []byte) (id uint64, m RunMeta, err error) {
	r := &payloadReader{b: b}
	id = r.uvarint()
	m.Start = time.Unix(0, r.varint())
	m.Partitions = int(r.uvarint())
	m.Workers = int(r.uvarint())
	m.Instructions = int(r.uvarint())
	m.SQL = r.string()
	m.Dot = r.string()
	// The auto-tune trailer is optional: begin records written before it
	// existed end here and decode with the zero values.
	if r.err == nil && r.pos < len(r.b) {
		m.AutoTuned = r.byte()&1 != 0
		m.TuneReason = r.string()
	}
	return id, m, r.err
}

// decodeEventsHeader parses just the run id and event count of an events
// payload — what the index scan needs without materializing the batch.
func decodeEventsHeader(b []byte) (id uint64, count int, err error) {
	r := &payloadReader{b: b}
	id = r.uvarint()
	count = int(r.uvarint())
	return id, count, r.err
}

// decodeEvents parses a full events payload, appending to dst.
func decodeEvents(b []byte, dst []profiler.Event) (uint64, []profiler.Event, error) {
	r := &payloadReader{b: b}
	id := r.uvarint()
	count := int(r.uvarint())
	if r.err != nil {
		return id, dst, r.err
	}
	for i := 0; i < count && r.err == nil; i++ {
		var e profiler.Event
		e.Seq = r.varint()
		e.State = profiler.State(r.byte())
		e.PC = int(r.varint())
		e.Thread = int(r.varint())
		e.ClkUs = r.varint()
		e.DurUs = r.varint()
		e.RSSKB = r.varint()
		e.Reads = r.varint()
		e.Writes = r.varint()
		e.Stmt = r.string()
		if r.err == nil {
			dst = append(dst, e)
		}
	}
	return id, dst, r.err
}

// decodeEnd parses an end payload.
func decodeEnd(b []byte) (id uint64, st RunStats, err error) {
	r := &payloadReader{b: b}
	id = r.uvarint()
	st.ElapsedUs = r.varint()
	st.Rows = int(r.uvarint())
	st.CacheHit = r.byte()&1 != 0
	st.Err = r.string()
	return id, st, r.err
}
