// Package tracestore is the durable query-history subsystem: an
// append-only, segmented, checksummed binary store for profiler traces.
// Every executed query becomes a run — a begin record carrying the SQL
// and plan dot text, interleaved batches of profiler events, and an end
// record with completion statistics — so "what ran slowly yesterday?"
// survives process restarts. The store offers size- and age-based
// retention at segment granularity with an optional background
// compactor, crash recovery that truncates a torn tail record instead
// of failing, and an aggregation layer (top-N slowest runs, per-module
// and per-operator rollups, utilization summaries, and cross-run diffs
// of the same SQL). See record.go for the on-disk format.
package tracestore

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"stethoscope/internal/fsio"
	"stethoscope/internal/metrics"
	"stethoscope/internal/profiler"
)

// Defaults for Options zero values.
const (
	DefaultMaxSegmentBytes = 8 << 20
	segPrefix              = "seg-"
	segSuffix              = ".tlog"
)

// DefaultAppendBatch is how many events one durable events record
// carries when the profiler pipeline tees into the store through a
// profiler.Batcher.
const DefaultAppendBatch = 256

// Options configures Open. The zero value (plus Dir) is a store with
// 8 MiB segments, unlimited retention, and no background compactor.
type Options struct {
	// Dir is the store directory, created if missing.
	Dir string
	// MaxSegmentBytes is the rollover threshold (default 8 MiB).
	MaxSegmentBytes int64
	// MaxTotalBytes caps the store size; Compact deletes the oldest
	// sealed segments until under budget. 0 means unlimited.
	MaxTotalBytes int64
	// MaxAge expires sealed segments whose newest record is older.
	// 0 means unlimited.
	MaxAge time.Duration
	// CompactEvery runs Compact on a background ticker. 0 disables the
	// background compactor (Compact can still be called directly).
	CompactEvery time.Duration
	// ReadOnly opens the store for inspection: no writer lock is taken,
	// a torn tail is skipped in memory instead of truncated on disk,
	// and Begin/Compact fail. This is how tooling (tracehist) looks at
	// a store a live server may be appending to.
	ReadOnly bool
	// Logf receives recovery and retention notices (default log.Printf).
	Logf func(format string, args ...any)
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// recRef locates one record of a run.
type recRef struct {
	seg int
	off int64
	typ byte
}

// runEntry is the in-memory index entry of one run.
type runEntry struct {
	info RunInfo
	refs []recRef
}

// RunInfo describes one recorded run.
type RunInfo struct {
	ID           uint64
	SQL          string
	Start        time.Time
	Partitions   int
	Workers      int
	Instructions int
	// AutoTuned/TuneReason record whether (and why) the partition and
	// worker counts were chosen adaptively; see RunMeta.
	AutoTuned  bool
	TuneReason string
	// Events is the number of stored profiler events.
	Events int
	// Complete reports whether the end record was written; ElapsedUs,
	// Rows, CacheHit and Err are only meaningful when it is.
	Complete  bool
	ElapsedUs int64
	Rows      int
	CacheHit  bool
	Err       string
}

// OK reports whether the run completed without an execution error.
func (r RunInfo) OK() bool { return r.Complete && r.Err == "" }

// segMeta tracks one segment file.
type segMeta struct {
	id     int
	size   int64
	newest time.Time // time of the most recent append (mtime on recovery)
}

// StoreStats is a point-in-time snapshot of the store.
type StoreStats struct {
	// Segments and Bytes describe the on-disk footprint.
	Segments int
	Bytes    int64
	// Runs is the indexed run count.
	Runs int
	// RecoveredEvents is the number of events indexed from the last
	// segment during crash recovery; TruncatedBytes is the size of the
	// torn tail cut off — or skipped, on read-only opens — (0 when the
	// store closed cleanly).
	RecoveredEvents int
	TruncatedBytes  int64
	// DroppedSegments and DroppedRuns count what retention removed over
	// this store handle's lifetime.
	DroppedSegments int
	DroppedRuns     int
}

// Store is the durable trace store. All methods are safe for concurrent
// use: appends serialize under one mutex, reads snapshot the index and
// then read immutable records lock-free.
type Store struct {
	opts  Options
	logf  func(format string, args ...any)
	clock func() time.Time

	mu       sync.Mutex
	lockF    *os.File      // flock-held writer lock; nil on read-only opens
	f        *os.File      // active segment, append-only; nil on read-only opens
	w        *bufio.Writer // buffers appends to f; nil on read-only opens
	activeID int
	segs     []*segMeta // ascending by id; last is active
	index    map[uint64]*runEntry
	order    []uint64 // run ids in begin order
	nextID   uint64
	closed   bool

	recoveredEvents int
	truncatedBytes  int64
	droppedSegs     int
	droppedRuns     int

	// Metric cells, nil (no-op) until Instrument attaches a registry.
	mAppends     *metrics.Counter
	mAppendBytes *metrics.Counter
	mCompactions *metrics.Counter

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// Open opens (or creates) the store at opts.Dir, rebuilding the run
// index by scanning the segments. A torn tail record in the last
// segment — the signature of a crash mid-append — is truncated and
// logged, not fatal; at most that one record is lost. Writers take an
// exclusive lock on the directory: a second writable Open fails
// instead of corrupting the live store. Read-only opens (tracehist)
// take no lock and never modify the files.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		//stetho:ignore errfile the rejected Dir is the empty string; there is no file to name
		return nil, fmt.Errorf("tracestore: Dir is required")
	}
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	s := &Store{
		opts:   opts,
		logf:   opts.Logf,
		clock:  opts.Clock,
		index:  map[uint64]*runEntry{},
		nextID: 1,
		done:   make(chan struct{}),
	}
	if s.logf == nil {
		s.logf = log.Printf
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	if !opts.ReadOnly {
		lf, err := fsio.AcquireDirLock(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("tracestore (open it ReadOnly to inspect a live store): %w", err)
		}
		s.lockF = lf
	}
	if err := s.recover(); err != nil {
		s.closeLock()
		return nil, err
	}
	if opts.ReadOnly {
		return s, nil
	}
	// Resume appending to the last segment unless it is already full.
	active := 1
	if n := len(s.segs); n > 0 {
		last := s.segs[n-1]
		if last.size >= opts.MaxSegmentBytes {
			active = last.id + 1
		} else {
			active = last.id
		}
	}
	if err := s.openSegment(active); err != nil {
		s.closeLock()
		return nil, err
	}
	if opts.CompactEvery > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(opts.CompactEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := s.Compact(); err != nil {
						s.logf("tracestore: background compaction: %v", err)
					}
				case <-s.done:
					return
				}
			}
		}()
	}
	return s, nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.opts.Dir, fmt.Sprintf("%s%08d%s", segPrefix, id, segSuffix))
}

// openSegment makes segment id the active append target, creating it if
// needed and registering its segMeta.
func (s *Store) openSegment(id int) error {
	f, err := os.OpenFile(s.segPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, 256<<10)
	s.activeID = id
	if n := len(s.segs); n == 0 || s.segs[n-1].id != id {
		s.segs = append(s.segs, &segMeta{id: id, newest: s.clock()})
	}
	return nil
}

// recover scans all segments in order, rebuilding the index. Only the
// last segment may legitimately end in a torn record.
func (s *Store) recover() error {
	names, err := filepath.Glob(filepath.Join(s.opts.Dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	ids := make([]int, 0, len(names))
	for _, n := range names {
		base := filepath.Base(n)
		var id int
		if _, err := fmt.Sscanf(base, segPrefix+"%d", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for i, id := range ids {
		if err := s.scanSegment(id, i == len(ids)-1); err != nil {
			return err
		}
	}
	return nil
}

// scanSegment reads one segment sequentially, indexing its records. For
// the last segment a torn tail is truncated; for earlier segments a bad
// record is logged and the remainder skipped (the data after it is
// unreachable without valid framing).
func (s *Store) scanSegment(id int, last bool) error {
	path := s.segPath(id)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	meta := &segMeta{id: id, size: fi.Size(), newest: fi.ModTime()}
	s.segs = append(s.segs, meta)

	br := bufio.NewReaderSize(f, 256<<10)
	var off int64
	segEvents, segRuns := 0, 0
	var hdr [recHeaderLen]byte
	payload := make([]byte, 0, 64<<10)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break // clean segment end
			}
			s.handleTorn(path, id, off, fi.Size(), last, segEvents, segRuns, meta)
			return nil
		}
		plen, crc := fsio.ParseRecordHeader(hdr[:])
		if plen == 0 || plen > maxRecordBytes {
			s.handleTorn(path, id, off, fi.Size(), last, segEvents, segRuns, meta)
			return nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			s.handleTorn(path, id, off, fi.Size(), last, segEvents, segRuns, meta)
			return nil
		}
		if fsio.Checksum(payload) != crc {
			s.handleTorn(path, id, off, fi.Size(), last, segEvents, segRuns, meta)
			return nil
		}
		ref := recRef{seg: id, off: off, typ: payload[0]}
		if n := s.indexRecord(ref, payload); n >= 0 {
			segEvents += n
			if payload[0] == recBegin {
				segRuns++
			}
		}
		off += recHeaderLen + int64(plen)
	}
	return nil
}

// handleTorn deals with a record that could not be read whole: the last
// segment is truncated at the torn offset (crash recovery); an earlier
// segment keeps its bytes but the remainder is unreachable. A
// read-only open skips the tail in memory and leaves the file alone —
// the tail may simply be the live writer's partially flushed buffer.
func (s *Store) handleTorn(path string, id int, off, size int64, last bool, segEvents, segRuns int, meta *segMeta) {
	if !last {
		s.logf("tracestore: %s: corrupt record at offset %d; ignoring remainder (%d bytes)", path, off, size-off)
		return
	}
	if s.opts.ReadOnly {
		meta.size = off
		s.truncatedBytes = size - off
		s.recoveredEvents = segEvents
		s.logf("tracestore: %s: ignoring torn tail record at offset %d (%d bytes, read-only open); recovered %d events in %d runs from segment",
			path, off, size-off, segEvents, segRuns)
		return
	}
	if err := os.Truncate(path, off); err != nil {
		s.logf("tracestore: %s: truncating torn tail: %v", path, err)
		return
	}
	meta.size = off
	s.truncatedBytes = size - off
	s.recoveredEvents = segEvents
	s.logf("tracestore: %s: truncated torn tail record at offset %d (%d bytes); recovered %d events in %d runs from segment",
		path, off, size-off, segEvents, segRuns)
}

// indexRecord folds one valid record into the index. It returns the
// number of events the record carries (0 for begin/end, -1 when the
// record was skipped).
func (s *Store) indexRecord(ref recRef, payload []byte) int {
	switch payload[0] {
	case recBegin:
		id, m, err := decodeBegin(payload[1:])
		if err != nil {
			s.logf("tracestore: skipping undecodable begin record: %v", err)
			return -1
		}
		if _, dup := s.index[id]; dup {
			s.logf("tracestore: duplicate run id %d; keeping first", id)
			return -1
		}
		s.index[id] = &runEntry{
			info: RunInfo{
				ID: id, SQL: m.SQL, Start: m.Start,
				Partitions: m.Partitions, Workers: m.Workers, Instructions: m.Instructions,
				AutoTuned: m.AutoTuned, TuneReason: m.TuneReason,
			},
			refs: []recRef{ref},
		}
		s.order = append(s.order, id)
		if id >= s.nextID {
			s.nextID = id + 1
		}
		return 0
	case recEvents:
		id, count, err := decodeEventsHeader(payload[1:])
		if err != nil {
			s.logf("tracestore: skipping undecodable events record: %v", err)
			return -1
		}
		e, ok := s.index[id]
		if !ok {
			return -1 // begin record was retired with an older segment
		}
		e.refs = append(e.refs, ref)
		e.info.Events += count
		return count
	case recEnd:
		id, st, err := decodeEnd(payload[1:])
		if err != nil {
			s.logf("tracestore: skipping undecodable end record: %v", err)
			return -1
		}
		e, ok := s.index[id]
		if !ok {
			return -1
		}
		e.refs = append(e.refs, ref)
		e.info.Complete = true
		e.info.ElapsedUs = st.ElapsedUs
		e.info.Rows = st.Rows
		e.info.CacheHit = st.CacheHit
		e.info.Err = st.Err
		return 0
	default:
		s.logf("tracestore: skipping record of unknown type %d", payload[0])
		return -1
	}
}

// appendLocked writes one record to the active segment, rolling over
// first when the record would push the segment past MaxSegmentBytes.
func (s *Store) appendLocked(payload []byte) (recRef, error) {
	if s.closed {
		return recRef{}, fmt.Errorf("tracestore: store is closed")
	}
	if s.w == nil {
		return recRef{}, fmt.Errorf("tracestore: store is read-only")
	}
	active := s.segs[len(s.segs)-1]
	recLen := int64(recHeaderLen + len(payload))
	if active.size > 0 && active.size+recLen > s.opts.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return recRef{}, err
		}
		active = s.segs[len(s.segs)-1]
	}
	var hdr [recHeaderLen]byte
	fsio.PutRecordHeader(hdr[:], payload)
	off := active.size
	if _, err := s.w.Write(hdr[:]); err != nil {
		return recRef{}, fmt.Errorf("tracestore: %w", err)
	}
	if _, err := s.w.Write(payload); err != nil {
		return recRef{}, fmt.Errorf("tracestore: %w", err)
	}
	active.size += recLen
	active.newest = s.clock()
	s.mAppends.Inc()
	s.mAppendBytes.Add(recLen)
	return recRef{seg: s.activeID, off: off, typ: payload[0]}, nil
}

// rotateLocked seals the active segment (flush + sync + close) and
// starts the next one.
func (s *Store) rotateLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	return s.openSegment(s.activeID + 1)
}

// Begin opens a new run and durably records its metadata. The returned
// RunWriter is the durable sink for the run's profiler events.
func (s *Store) Begin(meta RunMeta) (*RunWriter, error) {
	if meta.Start.IsZero() {
		meta.Start = s.clock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("tracestore: store is closed")
	}
	id := s.nextID
	s.nextID++
	ref, err := s.appendLocked(encodeBegin(id, meta))
	if err != nil {
		return nil, err
	}
	s.index[id] = &runEntry{
		info: RunInfo{
			ID: id, SQL: meta.SQL, Start: meta.Start,
			Partitions: meta.Partitions, Workers: meta.Workers, Instructions: meta.Instructions,
			AutoTuned: meta.AutoTuned, TuneReason: meta.TuneReason,
		},
		refs: []recRef{ref},
	}
	s.order = append(s.order, id)
	return &RunWriter{s: s, id: id}, nil
}

// RunWriter appends one run's events and completion record. It
// implements profiler.Sink and profiler.BatchSink, so it tees directly
// off a Profiler or a Batcher. Append errors are sticky: the first one
// is kept and returned by Finish.
type RunWriter struct {
	s  *Store
	id uint64

	mu   sync.Mutex
	err  error
	done bool
}

// ID returns the run id.
func (w *RunWriter) ID() uint64 { return w.id }

// EmitBatch implements profiler.BatchSink: the batch is encoded into
// one events record. The slice is consumed during the call, honoring
// the BatchSink contract.
func (w *RunWriter) EmitBatch(evs []profiler.Event) {
	if len(evs) == 0 {
		return
	}
	payload := encodeEvents(w.id, evs) // encode outside the store lock
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done || w.err != nil {
		return
	}
	s := w.s
	s.mu.Lock()
	ref, err := s.appendLocked(payload)
	if err == nil {
		if e, ok := s.index[w.id]; ok {
			e.refs = append(e.refs, ref)
			e.info.Events += len(evs)
		}
	}
	s.mu.Unlock()
	w.err = err
}

// Emit implements profiler.Sink (one-event batch).
func (w *RunWriter) Emit(e profiler.Event) { w.EmitBatch([]profiler.Event{e}) }

// Finish writes the end record and flushes the segment buffer so the
// completed run is immediately durable against everything but power
// loss (fsync happens on rollover and Close). It returns the first
// append error of the run, if any.
func (w *RunWriter) Finish(st RunStats) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return fmt.Errorf("tracestore: run %d already finished", w.id)
	}
	w.done = true
	if w.err != nil {
		return w.err
	}
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, err := s.appendLocked(encodeEnd(w.id, st))
	if err != nil {
		return err
	}
	if e, ok := s.index[w.id]; ok {
		e.refs = append(e.refs, ref)
		e.info.Complete = true
		e.info.ElapsedUs = st.ElapsedUs
		e.info.Rows = st.Rows
		e.info.CacheHit = st.CacheHit
		e.info.Err = st.Err
	}
	return s.w.Flush()
}

// Runs lists all indexed runs in begin order.
func (s *Store) Runs() []RunInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunInfo, 0, len(s.order))
	for _, id := range s.order {
		if e, ok := s.index[id]; ok {
			out = append(out, e.info)
		}
	}
	return out
}

// Run returns one run's metadata.
func (s *Store) Run(id uint64) (RunInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return RunInfo{}, false
	}
	return e.info, true
}

// snapshot flushes pending appends and copies a run's index entry, so
// the subsequent record reads need no lock.
func (s *Store) snapshot(id uint64) (RunInfo, []recRef, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return RunInfo{}, nil, fmt.Errorf("tracestore: unknown run %d", id)
	}
	if !s.closed && s.w != nil {
		if err := s.w.Flush(); err != nil {
			return RunInfo{}, nil, fmt.Errorf("tracestore: %w", err)
		}
	}
	return e.info, append([]recRef(nil), e.refs...), nil
}

// readRecordAt reads and verifies one record through the shared fsio
// framing.
func readRecordAt(f *os.File, off int64) ([]byte, error) {
	payload, err := fsio.ReadRecordAt(f, off, maxRecordBytes)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %s: %w", f.Name(), err)
	}
	return payload, nil
}

// readRun visits the run's records of the wanted type in append order.
func (s *Store) readRun(id uint64, want byte, visit func(payload []byte) error) (RunInfo, error) {
	info, refs, err := s.snapshot(id)
	if err != nil {
		return info, err
	}
	var f *os.File
	cur := -1
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for _, ref := range refs {
		if ref.typ != want {
			continue
		}
		if ref.seg != cur {
			if f != nil {
				f.Close()
			}
			f, err = os.Open(s.segPath(ref.seg))
			if err != nil {
				return info, fmt.Errorf("tracestore: run %d: %w", id, err)
			}
			cur = ref.seg
		}
		payload, err := readRecordAt(f, ref.off)
		if err != nil {
			return info, fmt.Errorf("tracestore: run %d: %w", id, err)
		}
		if err := visit(payload[1:]); err != nil {
			return info, err
		}
	}
	return info, nil
}

// Events returns a run's full event stream in append order — identical
// to what the profiler emitted while the query executed.
func (s *Store) Events(id uint64) ([]profiler.Event, error) {
	var out []profiler.Event
	if _, err := s.readRun(id, recEvents, func(payload []byte) error {
		var derr error
		_, out, derr = decodeEvents(payload, out)
		return derr
	}); err != nil {
		return nil, err
	}
	if out == nil {
		out = make([]profiler.Event, 0)
	}
	return out, nil
}

// Dot returns a run's stored plan dot text.
func (s *Store) Dot(id uint64) (string, error) {
	var dot string
	_, err := s.readRun(id, recBegin, func(payload []byte) error {
		_, m, derr := decodeBegin(payload)
		if derr != nil {
			return derr
		}
		dot = m.Dot
		return nil
	})
	return dot, err
}

// Compact enforces the retention policy now: sealed segments are
// deleted oldest-first while the store exceeds MaxTotalBytes, and any
// sealed segment whose newest record is older than MaxAge is deleted.
// Runs with any record in a deleted segment are dropped from the index.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("tracestore: %s: store is closed", s.opts.Dir)
	}
	if s.opts.ReadOnly {
		return fmt.Errorf("tracestore: %s: store is read-only", s.opts.Dir)
	}
	now := s.clock()
	var total int64
	for _, sg := range s.segs {
		total += sg.size
	}
	drop := map[int]bool{}
	// The active segment (last) is never dropped.
	for _, sg := range s.segs[:len(s.segs)-1] {
		expired := s.opts.MaxAge > 0 && now.Sub(sg.newest) > s.opts.MaxAge
		oversize := s.opts.MaxTotalBytes > 0 && total > s.opts.MaxTotalBytes
		if !expired && !oversize {
			break // segments are ordered; newer ones are no more expired
		}
		drop[sg.id] = true
		total -= sg.size
	}
	if len(drop) == 0 {
		return nil
	}
	s.mCompactions.Inc()
	var firstErr error
	kept := s.segs[:0]
	for _, sg := range s.segs {
		if !drop[sg.id] {
			kept = append(kept, sg)
			continue
		}
		if err := os.Remove(s.segPath(sg.id)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tracestore: %w", err)
		}
		s.droppedSegs++
	}
	s.segs = kept
	keptOrder := s.order[:0]
	for _, id := range s.order {
		e, ok := s.index[id]
		if !ok {
			continue
		}
		retire := false
		for _, ref := range e.refs {
			if drop[ref.seg] {
				retire = true
				break
			}
		}
		if retire {
			delete(s.index, id)
			s.droppedRuns++
			continue
		}
		keptOrder = append(keptOrder, id)
	}
	s.order = keptOrder
	return firstErr
}

// Stats snapshots the store's footprint and maintenance counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Segments:        len(s.segs),
		Runs:            len(s.index),
		RecoveredEvents: s.recoveredEvents,
		TruncatedBytes:  s.truncatedBytes,
		DroppedSegments: s.droppedSegs,
		DroppedRuns:     s.droppedRuns,
	}
	for _, sg := range s.segs {
		st.Bytes += sg.size
	}
	return st
}

// Close stops the background compactor, seals the active segment
// (flush + fsync), and releases the writer lock. The store must not be
// used afterwards.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.closed = true
		if s.w != nil {
			if ferr := s.w.Flush(); ferr != nil {
				err = fmt.Errorf("tracestore: %w", ferr)
			}
			if serr := s.f.Sync(); serr != nil && err == nil {
				err = fmt.Errorf("tracestore: %w", serr)
			}
			if cerr := s.f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("tracestore: %w", cerr)
			}
		}
		s.closeLock()
	})
	return err
}

// closeLock releases the writer lock file (flock drops with the fd).
func (s *Store) closeLock() {
	fsio.ReleaseLock(s.lockF)
	s.lockF = nil
}

// callOf extracts the "module.function" call name of a MAL statement
// ("" when the statement has no call).
func callOf(stmt string) string {
	s := stmt
	if i := strings.Index(s, ":="); i >= 0 {
		s = s[i+2:]
	}
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '(')
	if i < 0 {
		return ""
	}
	return strings.TrimSpace(s[:i])
}

// moduleOf extracts the MAL module of a statement (the profiler's
// canonical spelling, mirrored by the core package).
func moduleOf(stmt string) string { return profiler.ModuleOf(stmt) }

// Instrument registers the store's metric cells (stetho_tracestore_*)
// in the registry: append and compaction counters on the write path,
// and gauges over the recovery/retention figures Stats already tracks.
// Call right after Open, before serving writes.
func (s *Store) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.mAppends = reg.Counter("stetho_tracestore_appends_total")
	s.mAppendBytes = reg.Counter("stetho_tracestore_append_bytes_total")
	s.mCompactions = reg.Counter("stetho_tracestore_compactions_total")
	s.mu.Unlock()
	reg.GaugeFunc("stetho_tracestore_recovered_events", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.recoveredEvents)
	})
	reg.GaugeFunc("stetho_tracestore_dropped_segments", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.droppedSegs)
	})
	reg.GaugeFunc("stetho_tracestore_dropped_runs", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.droppedRuns)
	})
	reg.GaugeFunc("stetho_tracestore_bytes", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var total int64
		for _, sg := range s.segs {
			total += sg.size
		}
		return total
	})
}
