//go:build !unix

package fsio

import "os"

// lockFile is a no-op where flock is unavailable; writer exclusivity
// is only enforced on unix platforms.
func lockFile(*os.File) error { return nil }
