//go:build unix

package fsio

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive flock on f. The lock drops
// automatically when the process exits (even via SIGKILL), so a
// crashed writer never bricks the store.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
