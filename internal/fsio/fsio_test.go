package fsio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte{1},
		[]byte("hello record"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var total int64
	for _, p := range payloads {
		n, err := WriteRecord(&buf, p)
		if err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
		if n != RecordHeaderLen+int64(len(p)) {
			t.Errorf("WriteRecord returned %d bytes, want %d", n, RecordHeaderLen+len(p))
		}
		total += n
	}
	if int64(buf.Len()) != total {
		t.Fatalf("buffer holds %d bytes, want %d", buf.Len(), total)
	}
	r := bytes.NewReader(buf.Bytes())
	var scratch []byte
	for i, p := range payloads {
		got, err := ReadRecord(r, scratch, 1<<20)
		if err != nil {
			t.Fatalf("ReadRecord #%d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("record #%d: got %d bytes, want %d", i, len(got), len(p))
		}
		scratch = got
	}
	if _, err := ReadRecord(r, scratch, 1<<20); err != io.EOF {
		t.Fatalf("after last record: err = %v, want io.EOF", err)
	}
}

func TestReadRecordTornTail(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRecord(&buf, []byte("whole record")); err != nil {
		t.Fatal(err)
	}
	whole := append([]byte(nil), buf.Bytes()...)
	for _, cut := range []int{1, RecordHeaderLen - 1, RecordHeaderLen + 3} {
		r := bytes.NewReader(whole[:cut])
		if _, err := ReadRecord(r, nil, 1<<20); err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadRecordCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRecord(&buf, []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: checksum mismatch.
	b := append([]byte(nil), buf.Bytes()...)
	b[RecordHeaderLen+2] ^= 0xFF
	if _, err := ReadRecord(bytes.NewReader(b), nil, 1<<20); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("flipped payload byte: err = %v, want checksum mismatch", err)
	}
	// Implausible length: bigger than maxBytes.
	b = append([]byte(nil), buf.Bytes()...)
	b[3] = 0xFF
	if _, err := ReadRecord(bytes.NewReader(b), nil, 1<<20); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("oversized length: err = %v, want implausible length", err)
	}
}

func TestReadRecordAt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := []int64{0}
	for _, p := range []string{"first", "second", "third"} {
		n, err := WriteRecord(f, []byte(p))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, offs[len(offs)-1]+n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := ReadRecordAt(rf, offs[1], 1<<20)
	if err != nil {
		t.Fatalf("ReadRecordAt: %v", err)
	}
	if string(got) != "second" {
		t.Errorf("record at offset %d = %q, want %q", offs[1], got, "second")
	}
}

func TestDirLockExclusion(t *testing.T) {
	dir := t.TempDir()
	l1, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("first AcquireDirLock: %v", err)
	}
	if _, err := AcquireDirLock(dir); err == nil {
		t.Fatal("second AcquireDirLock succeeded, want writer exclusion")
	}
	ReleaseLock(l1)
	l2, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("AcquireDirLock after release: %v", err)
	}
	ReleaseLock(l2)
	ReleaseLock(nil) // nil-safe
}
