// Package fsio is the shared on-disk discipline of the durable stores:
// the LOCK-file writer exclusion and the length-prefixed, CRC-checksummed
// record framing that internal/tracestore proved out and
// internal/batstore reuses. Keeping one copy here means a torn or
// corrupted file is detected the same way — and reported with the same
// precision — no matter which store wrote it.
//
// The framing is:
//
//	u32le payloadLen | u32le crc32(payload) | payload
//
// A record that cannot be read whole (short header, short payload,
// implausible length, checksum mismatch) is distinguishable from a clean
// end of file, which is what makes torn-tail recovery and
// corruption-naming error messages possible.
package fsio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// LockName is the conventional writer-exclusion lock file inside a store
// directory.
const LockName = "LOCK"

// RecordHeaderLen is the fixed framing header: payload length + CRC.
const RecordHeaderLen = 8

// Checksum is the record checksum both stores stamp and verify (CRC-32,
// IEEE polynomial).
func Checksum(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// PutRecordHeader writes the framing header for payload into hdr, which
// must be at least RecordHeaderLen bytes.
func PutRecordHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], Checksum(payload))
}

// ParseRecordHeader splits a framing header into the payload length and
// its expected checksum.
func ParseRecordHeader(hdr []byte) (plen, crc uint32) {
	return binary.LittleEndian.Uint32(hdr[0:4]), binary.LittleEndian.Uint32(hdr[4:8])
}

// WriteRecord frames payload onto w and returns the number of bytes
// written (header + payload).
func WriteRecord(w io.Writer, payload []byte) (int64, error) {
	var hdr [RecordHeaderLen]byte
	PutRecordHeader(hdr[:], payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return RecordHeaderLen + int64(len(payload)), nil
}

// ReadRecord reads the next framed record from r, reusing buf when it is
// large enough. It returns io.EOF cleanly at a record boundary,
// io.ErrUnexpectedEOF when the file ends mid-record (a torn tail), and a
// checksum/length error when the record is corrupt.
func ReadRecord(r io.Reader, buf []byte, maxBytes uint32) ([]byte, error) {
	var hdr [RecordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	plen, crc := ParseRecordHeader(hdr[:])
	if plen == 0 || plen > maxBytes {
		return nil, fmt.Errorf("implausible record length %d", plen)
	}
	if cap(buf) < int(plen) {
		buf = make([]byte, plen)
	}
	buf = buf[:plen]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if Checksum(buf) != crc {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return buf, nil
}

// ReadRecordAt reads and verifies one framed record at off.
func ReadRecordAt(r io.ReaderAt, off int64, maxBytes uint32) ([]byte, error) {
	var hdr [RecordHeaderLen]byte
	if _, err := r.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	plen, crc := ParseRecordHeader(hdr[:])
	if plen == 0 || plen > maxBytes {
		return nil, fmt.Errorf("implausible record length %d at offset %d", plen, off)
	}
	payload := make([]byte, plen)
	if _, err := r.ReadAt(payload, off+RecordHeaderLen); err != nil {
		return nil, err
	}
	if Checksum(payload) != crc {
		return nil, fmt.Errorf("checksum mismatch at offset %d", off)
	}
	return payload, nil
}

// AcquireDirLock takes the writer-exclusion lock of a store directory:
// it creates (or opens) dir/LOCK and flocks it exclusively without
// blocking. The lock drops automatically when the process exits — even
// via SIGKILL — so a crashed writer never bricks a store. The caller
// keeps the returned file open for the lock's lifetime and releases it
// with ReleaseLock.
func AcquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s is locked by another writer: %w", dir, err)
	}
	return f, nil
}

// ReleaseLock closes the lock file, dropping the flock. Safe on nil.
func ReleaseLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
