// Package adaptive implements the data-driven selection of mitosis
// fan-out and dataflow parallelism. MonetDB's mitosis optimizer sizes
// its partition count from the largest table and the core count rather
// than a static session knob; this package is that policy, shared by
// the facade (WithPartitions(Auto), ExecPartitions(Auto)) and the
// server (SET partitions auto). It also owns the normalization rule
// every execution entry point applies to partition/worker settings, so
// out-of-range values cannot alias plan-cache keys or leak into the
// recorded history metadata.
package adaptive

import (
	"fmt"
	"runtime"
)

// Auto is the sentinel partition/worker count that requests adaptive
// selection: the fan-out is chosen per query from the catalog row
// counts and the machine's core count instead of being fixed.
const Auto = -1

// MinRowsPerPartition is the smallest slice worth a partition: below
// this, the per-fragment instruction overhead (slice, select, pack)
// costs more than the parallelism buys.
const MinRowsPerPartition = 4096

// MaxPartitions caps the fan-out: past this, plan size (instructions
// per column per partition) grows without additional core coverage.
const MaxPartitions = 64

// DefaultMorselRows is the default morsel size for morsel-driven
// execution: 16Ki rows keeps a morsel's working set cache-resident
// while the per-morsel scheduling cost (one atomic fetch-add plus a
// fragment interpretation) stays negligible against the kernel work.
const DefaultMorselRows = 16 << 10

// MorselRowsFor chooses the morsel size for a query whose driver table
// has rows rows, on procs cores. The default is DefaultMorselRows;
// small inputs shrink the morsel so every core still gets at least two
// pulls (the dynamic-balancing minimum), floored at
// MinRowsPerPartition, below which per-morsel overhead dominates. The
// returned reason carries the morsel=N note Result.Stats.TuneReason
// and the history RunMeta record.
func MorselRowsFor(rows, procs int) (int, string) {
	if procs < 1 {
		procs = 1
	}
	m := DefaultMorselRows
	if t := rows / (2 * procs); t < m {
		m = t
		if m < MinRowsPerPartition {
			m = MinRowsPerPartition
		}
	}
	return m, fmt.Sprintf("auto: shape=morsel rows=%d procs=%d -> morsel=%d", rows, procs, m)
}

// Normalize clamps a partition or worker setting into its valid
// domain: Auto is preserved, anything below 1 becomes 1. Every
// execution entry point (Exec, Explain, Debug, server QUERY) must pass
// its settings through here before plan-cache keys are built or
// metadata is recorded — ExecPartitions(0) used to compile the same
// plan as partitions=1 under a distinct cache key and to write the
// bogus 0 into the history RunMeta.
func Normalize(n int) int {
	if n == Auto {
		return Auto
	}
	return Clamp(n)
}

// Clamp is the explicit-value half of the normalization rule: anything
// below 1 becomes 1, with no Auto sentinel pass-through. Entry points
// whose inputs spell adaptive mode out of band (the server's textual
// "auto" keyword) use this so a numeric -1 cannot silently enable
// adaptive sizing.
func Clamp(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// ResolveWorkers turns an Auto worker request into a concrete count
// for a plan compiled with the given partition fan-out; explicit
// counts pass through with an empty reason. Shared by the facade Exec
// path and the server QUERY path so both record identical resolutions.
func ResolveWorkers(requested, partitions int) (int, string) {
	if requested != Auto {
		return requested, ""
	}
	return Workers(partitions, Procs())
}

// JoinReasons combines the partition and worker tuning notes into the
// single reason string Stats and RunMeta carry.
func JoinReasons(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "; " + b
}

// Procs returns the parallelism budget adaptive selection works with:
// GOMAXPROCS(0), the scheduler's actual core allowance.
func Procs() int { return runtime.GOMAXPROCS(0) }

// Partitions chooses the mitosis fan-out for a query whose largest
// scanned table has maxRows rows, on procs cores — the plain-scan cost
// shape. See PartitionsFor for the shape-aware form.
func Partitions(maxRows, procs int) (int, string) {
	return PartitionsFor(maxRows, procs, "scan")
}

// PartitionsFor chooses the mitosis fan-out from the rows that actually
// parallelize under the query's cost shape, on procs cores. shape names
// where the rows came from and is recorded in the tuning note: "scan"
// (largest scanned table), "join-probe" (the probe-side rows of a
// partitioned hash join — the build side is packed and hashed once, so
// a huge build table must not inflate the fan-out), "sort" (the sorted
// input's rows; the k-way merge recombination is sequential, so the
// fan-out only buys per-slice sort time). The policy: one partition per
// MinRowsPerPartition rows, but never more than the core count would
// keep busy (modestly oversubscribed so slices of uneven selectivity
// still balance), and never more than MaxPartitions. The returned
// reason string records the inputs and the decision for Result.Stats
// and the history RunMeta.
func PartitionsFor(rows, procs int, shape string) (int, string) {
	if procs < 1 {
		procs = 1
	}
	if shape == "" {
		shape = "scan"
	}
	if rows < 2*MinRowsPerPartition || procs == 1 {
		return 1, fmt.Sprintf("auto: shape=%s rows=%d procs=%d -> sequential (below %d-row mitosis threshold or single core)",
			shape, rows, procs, 2*MinRowsPerPartition)
	}
	k := rows / MinRowsPerPartition
	// Oversubscribe 2x so uneven slices (skewed selectivity) rebalance
	// across the worker pool instead of serializing on the slowest slice.
	if cap := 2 * procs; k > cap {
		k = cap
	}
	if k > MaxPartitions {
		k = MaxPartitions
	}
	return k, fmt.Sprintf("auto: shape=%s rows=%d procs=%d -> %d partitions (%d-row target slices, 2x core oversubscription)",
		shape, rows, procs, k, MinRowsPerPartition)
}

// Workers chooses the dataflow worker count for a plan compiled with
// the given partition fan-out, on procs cores. Partitioned plans get
// one worker per core up to the fan-out; unpartitioned plans still get
// two workers when cores allow it (independent per-column chains —
// binds, projections — overlap even without mitosis).
func Workers(partitions, procs int) (int, string) {
	if procs < 1 {
		procs = 1
	}
	if partitions <= 1 {
		w := 2
		if procs < w {
			w = procs
		}
		return w, fmt.Sprintf("auto: partitions=%d procs=%d -> %d workers (column-level overlap only)", partitions, procs, w)
	}
	w := procs
	if partitions < w {
		w = partitions
	}
	return w, fmt.Sprintf("auto: partitions=%d procs=%d -> %d workers", partitions, procs, w)
}
