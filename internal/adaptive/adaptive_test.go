package adaptive

import (
	"strings"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want int }{
		{Auto, Auto},
		{0, 1},
		{-2, 1},
		{-17, 1},
		{1, 1},
		{8, 8},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPartitionsPolicy(t *testing.T) {
	cases := []struct {
		rows, procs int
		want        int
	}{
		{0, 8, 1},   // empty table: sequential
		{100, 8, 1}, // tiny table: below threshold
		{2*MinRowsPerPartition - 1, 8, 1} /* just under */, {2 * MinRowsPerPartition, 8, 2},
		{100 * MinRowsPerPartition, 1, 1},                // single core: never partition
		{100 * MinRowsPerPartition, 4, 8},                // capped at 2x cores
		{3 * MinRowsPerPartition, 16, 3},                 // row-bound below core cap
		{10000 * MinRowsPerPartition, 64, MaxPartitions}, // hard cap
	}
	for _, c := range cases {
		got, reason := Partitions(c.rows, c.procs)
		if got != c.want {
			t.Errorf("Partitions(%d, %d) = %d, want %d", c.rows, c.procs, got, c.want)
		}
		if !strings.HasPrefix(reason, "auto:") {
			t.Errorf("Partitions(%d, %d) reason %q lacks auto: prefix", c.rows, c.procs, reason)
		}
	}
}

func TestWorkersPolicy(t *testing.T) {
	cases := []struct {
		partitions, procs int
		want              int
	}{
		{1, 1, 1}, // sequential machine
		{1, 8, 2}, // unpartitioned: column-level overlap only
		{8, 4, 4}, // core-bound
		{2, 8, 2}, // partition-bound
		{16, 16, 16},
	}
	for _, c := range cases {
		got, reason := Workers(c.partitions, c.procs)
		if got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.partitions, c.procs, got, c.want)
		}
		if !strings.HasPrefix(reason, "auto:") {
			t.Errorf("Workers reason %q lacks auto: prefix", reason)
		}
	}
}

func TestPartitionsNeverBelowOne(t *testing.T) {
	for _, rows := range []int{-5, 0, 1, MinRowsPerPartition} {
		for _, procs := range []int{-1, 0, 1, 2} {
			if got, _ := Partitions(rows, procs); got < 1 {
				t.Fatalf("Partitions(%d, %d) = %d < 1", rows, procs, got)
			}
			if got, _ := Workers(rows, procs); got < 1 {
				t.Fatalf("Workers(%d, %d) = %d < 1", rows, procs, got)
			}
		}
	}
}

// TestPartitionsForShape: the shape label flows into the tuning note,
// and the plain Partitions wrapper is the scan shape.
func TestPartitionsForShape(t *testing.T) {
	for _, shape := range []string{"scan", "join-probe", "sort"} {
		k, reason := PartitionsFor(100_000, 8, shape)
		if k < 2 {
			t.Errorf("PartitionsFor(100k, 8, %q) = %d, want parallel", shape, k)
		}
		if !strings.Contains(reason, "shape="+shape) {
			t.Errorf("reason %q lacks shape=%s", reason, shape)
		}
	}
	// Empty shape defaults to scan instead of emitting a bare "shape=".
	if _, reason := PartitionsFor(100, 8, ""); !strings.Contains(reason, "shape=scan") {
		t.Errorf("empty-shape reason = %q", reason)
	}
	k1, r1 := Partitions(100_000, 8)
	k2, r2 := PartitionsFor(100_000, 8, "scan")
	if k1 != k2 || r1 != r2 {
		t.Errorf("Partitions != PartitionsFor scan: (%d,%q) vs (%d,%q)", k1, r1, k2, r2)
	}
}
