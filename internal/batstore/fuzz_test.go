package batstore

import (
	"testing"

	"stethoscope/internal/storage"
)

// FuzzSegmentDecode throws arbitrary bytes at the segment decoder for
// every tail kind: whatever the input, decode must return an error or a
// consistent row count — never panic, never allocate from a corrupt
// length, never hand back short data as success. Exercised at length in
// nightly CI (see .github/workflows/nightly.yml).
func FuzzSegmentDecode(f *testing.F) {
	seed := testCatalogForFuzz()
	for _, col := range []string{"k_int", "k_run", "k_flt", "k_name", "k_flag", "k_bool"} {
		b, _ := seed.Bind("sys", "mixed", col)
		f.Add(encodeSegment(nil, b, 0, b.Len()))
		f.Add(encodeSegment(nil, b, 0, 1))
	}
	f.Add([]byte{})
	f.Add([]byte{encRLEInt, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{encDictStr, 3, 200})
	kinds := []storage.Kind{storage.Int, storage.Flt, storage.Str, storage.Bool, storage.Date, storage.OID}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, k := range kinds {
			dst := storage.New(k, 0)
			n, err := decodeSegment(data, dst, 1<<16)
			if err == nil && dst.Len() != n {
				t.Fatalf("kind %s: decode reported %d rows but produced %d", k, n, dst.Len())
			}
		}
	})
}

// testCatalogForFuzz is a testing.T-free variant of testCatalog for the
// fuzz seed corpus.
func testCatalogForFuzz() *storage.Catalog {
	const rows = 200
	ints := make([]int64, rows)
	runs := make([]int64, rows)
	flts := make([]float64, rows)
	names := make([]string, rows)
	flags := make([]string, rows)
	bools := make([]bool, rows)
	for i := 0; i < rows; i++ {
		ints[i] = int64(i * 3)
		runs[i] = int64(i / 50)
		flts[i] = float64(i) / 3
		names[i] = "n" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		flags[i] = []string{"R", "A", "N"}[i%3]
		bools[i] = i%2 == 0
	}
	cat := storage.NewCatalog()
	_ = cat.Define("sys", "mixed",
		[]storage.Column{
			{Name: "k_int", Kind: storage.Int},
			{Name: "k_run", Kind: storage.Int},
			{Name: "k_flt", Kind: storage.Flt},
			{Name: "k_name", Kind: storage.Str},
			{Name: "k_flag", Kind: storage.Str},
			{Name: "k_bool", Kind: storage.Bool},
		},
		map[string]*storage.BAT{
			"k_int":  storage.FromInts(storage.Int, ints),
			"k_run":  storage.FromInts(storage.Int, runs),
			"k_flt":  storage.FromFloats(flts),
			"k_name": storage.FromStrings(names),
			"k_flag": storage.FromStrings(flags),
			"k_bool": storage.FromBools(bools),
		})
	return cat
}
