// Segment payload codec of the BAT store.
//
// A column file is a sequence of fsio-framed records, one per segment.
// Inside the frame (which already carries length + CRC) a segment
// payload is:
//
//	byte  encoding tag
//	uvarint rowCount
//	encoding-specific data, with no trailing bytes
//
// The encodings are deliberately lightweight — decode speed is the
// point, this is the scan path's disk format:
//
//	encRawInt  — one varint per value (Int, Date, OID tails)
//	encRLEInt  — (varint value, uvarint runLength) pairs; chosen when
//	             the segment has few runs (sorted keys, constants)
//	encRawFlt  — 8-byte little-endian IEEE 754 bits per value
//	encRawStr  — uvarint length + bytes per value
//	encDictStr — uvarint dictSize, the dictionary in first-appearance
//	             order, then one uvarint code per row; chosen for
//	             low-cardinality columns (flags, modes, segments)
//	encBits    — bit-packed booleans, LSB-first within each byte
//
// The writer picks the encoding per segment from the data, so a column
// may mix encodings across segments. The decoder validates everything
// it reads (tag/kind agreement, row counts, dictionary codes, string
// bounds, no trailing bytes): arbitrary bytes must decode to an error,
// never to a panic or a silently wrong column.
package batstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"stethoscope/internal/storage"
)

// Segment encoding tags.
const (
	encRawInt  byte = 1
	encRLEInt  byte = 2
	encRawFlt  byte = 3
	encRawStr  byte = 4
	encDictStr byte = 5
	encBits    byte = 6
)

// dictMaxSize caps the per-segment string dictionary; above this the
// column is not low-cardinality and raw encoding wins.
const dictMaxSize = 4096

// encodeSegment appends the encoded form of rows [lo, hi) of b onto dst
// and returns the extended slice. The encoding is chosen per segment
// from the data.
func encodeSegment(dst []byte, b *storage.BAT, lo, hi int) []byte {
	n := hi - lo
	switch {
	case b.Kind() == storage.Flt:
		dst = append(dst, encRawFlt)
		dst = binary.AppendUvarint(dst, uint64(n))
		for _, v := range b.Flts()[lo:hi] {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case b.Kind() == storage.Str:
		dst = encodeStrings(dst, b.Strs()[lo:hi])
	case b.Kind() == storage.Bool:
		dst = append(dst, encBits)
		dst = binary.AppendUvarint(dst, uint64(n))
		var cur byte
		for i, v := range b.Bools()[lo:hi] {
			if v {
				cur |= 1 << (i % 8)
			}
			if i%8 == 7 {
				dst = append(dst, cur)
				cur = 0
			}
		}
		if n%8 != 0 {
			dst = append(dst, cur)
		}
	default: // integer family: Int, Date, OID
		dst = encodeInts(dst, b.Ints()[lo:hi])
	}
	return dst
}

// encodeInts picks RLE when the segment has at most half as many runs
// as rows (sorted keys, repeated foreign keys, constants), raw varints
// otherwise.
func encodeInts(dst []byte, vals []int64) []byte {
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	if len(vals) > 1 && runs <= len(vals)/2 {
		dst = append(dst, encRLEInt)
		dst = binary.AppendUvarint(dst, uint64(len(vals)))
		for i := 0; i < len(vals); {
			j := i + 1
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			dst = binary.AppendVarint(dst, vals[i])
			dst = binary.AppendUvarint(dst, uint64(j-i))
			i = j
		}
		return dst
	}
	dst = append(dst, encRawInt)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// encodeStrings picks a dictionary when the segment is low-cardinality
// (at most dictMaxSize distinct values and at most half as many as
// rows), raw length-prefixed strings otherwise.
func encodeStrings(dst []byte, vals []string) []byte {
	codes := make(map[string]int, 64)
	order := make([]string, 0, 64)
	for _, v := range vals {
		if _, ok := codes[v]; !ok {
			if len(order) >= dictMaxSize {
				codes = nil
				break
			}
			codes[v] = len(order)
			order = append(order, v)
		}
	}
	if codes != nil && len(vals) > 1 && len(order) <= len(vals)/2 {
		dst = append(dst, encDictStr)
		dst = binary.AppendUvarint(dst, uint64(len(vals)))
		dst = binary.AppendUvarint(dst, uint64(len(order)))
		for _, s := range order {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
		for _, v := range vals {
			dst = binary.AppendUvarint(dst, uint64(codes[v]))
		}
		return dst
	}
	dst = append(dst, encRawStr)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// segReader is a sticky-error cursor over a segment payload.
type segReader struct {
	b   []byte
	pos int
	err error
}

func (r *segReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *segReader) byte() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.fail("truncated segment payload")
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *segReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail("truncated uvarint in segment payload")
		return 0
	}
	r.pos += n
	return v
}

func (r *segReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.fail("truncated varint in segment payload")
		return 0
	}
	r.pos += n
	return v
}

func (r *segReader) string() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || n > len(r.b)-r.pos {
		r.fail("string length %d exceeds segment payload", n)
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

// decodeSegment appends one segment payload's rows onto dst, whose kind
// selects the legal encodings. maxRows bounds the declared row count (a
// corrupt count must not drive allocation). It returns the decoded row
// count. Arbitrary input yields an error, never a panic or short data.
func decodeSegment(payload []byte, dst *storage.BAT, maxRows int) (int, error) {
	r := &segReader{b: payload}
	enc := r.byte()
	n := int(r.uvarint())
	if r.err != nil {
		return 0, r.err
	}
	if n < 0 || n > maxRows {
		return 0, fmt.Errorf("segment declares %d rows (max %d)", n, maxRows)
	}
	switch enc {
	case encRawInt:
		if !intKind(dst.Kind()) {
			return 0, fmt.Errorf("raw-int segment in %s column", dst.Kind())
		}
		for i := 0; i < n && r.err == nil; i++ {
			dst.AppendInt(r.varint())
		}
	case encRLEInt:
		if !intKind(dst.Kind()) {
			return 0, fmt.Errorf("rle-int segment in %s column", dst.Kind())
		}
		for got := 0; got < n && r.err == nil; {
			v := r.varint()
			run := r.uvarint()
			if r.err != nil {
				break
			}
			if run == 0 || run > uint64(n-got) {
				return 0, fmt.Errorf("rle run of %d rows at row %d overflows %d-row segment", run, got, n)
			}
			for i := uint64(0); i < run; i++ {
				dst.AppendInt(v)
			}
			got += int(run)
		}
	case encRawFlt:
		if dst.Kind() != storage.Flt {
			return 0, fmt.Errorf("raw-flt segment in %s column", dst.Kind())
		}
		if len(payload)-r.pos < 8*n {
			return 0, fmt.Errorf("flt segment holds %d bytes for %d rows", len(payload)-r.pos, n)
		}
		for i := 0; i < n; i++ {
			bits := binary.LittleEndian.Uint64(r.b[r.pos:])
			r.pos += 8
			dst.AppendFlt(math.Float64frombits(bits))
		}
	case encRawStr:
		if dst.Kind() != storage.Str {
			return 0, fmt.Errorf("raw-str segment in %s column", dst.Kind())
		}
		for i := 0; i < n && r.err == nil; i++ {
			dst.AppendStr(r.string())
		}
	case encDictStr:
		if dst.Kind() != storage.Str {
			return 0, fmt.Errorf("dict-str segment in %s column", dst.Kind())
		}
		dictLen := int(r.uvarint())
		if r.err != nil {
			return 0, r.err
		}
		if dictLen <= 0 || dictLen > dictMaxSize {
			return 0, fmt.Errorf("dictionary of %d entries (max %d)", dictLen, dictMaxSize)
		}
		dict := make([]string, dictLen)
		for i := range dict {
			dict[i] = r.string()
		}
		for i := 0; i < n && r.err == nil; i++ {
			code := r.uvarint()
			if r.err != nil {
				break
			}
			if code >= uint64(dictLen) {
				return 0, fmt.Errorf("dictionary code %d at row %d exceeds %d entries", code, i, dictLen)
			}
			dst.AppendStr(dict[code])
		}
	case encBits:
		if dst.Kind() != storage.Bool {
			return 0, fmt.Errorf("bit-packed segment in %s column", dst.Kind())
		}
		want := (n + 7) / 8
		if len(payload)-r.pos < want {
			return 0, fmt.Errorf("bool segment holds %d bytes for %d rows", len(payload)-r.pos, n)
		}
		for i := 0; i < n; i++ {
			dst.AppendBool(r.b[r.pos+i/8]&(1<<(i%8)) != 0)
		}
		r.pos += want
	default:
		return 0, fmt.Errorf("unknown segment encoding %d", enc)
	}
	if r.err != nil {
		return 0, r.err
	}
	if r.pos != len(payload) {
		return 0, fmt.Errorf("%d trailing bytes after %d-row segment", len(payload)-r.pos, n)
	}
	return n, nil
}

// segmentRowCount parses only a payload's header — encoding tag plus
// declared row count — validating both, without touching the row data.
// The skip path of windowed reads uses it to advance past segments
// below the requested window at header-parse cost instead of decode
// cost.
func segmentRowCount(payload []byte, maxRows int) (int, error) {
	r := &segReader{b: payload}
	enc := r.byte()
	n := int(r.uvarint())
	if r.err != nil {
		return 0, r.err
	}
	if enc < encRawInt || enc > encBits {
		return 0, fmt.Errorf("unknown segment encoding %d", enc)
	}
	if n < 0 || n > maxRows {
		return 0, fmt.Errorf("segment declares %d rows (max %d)", n, maxRows)
	}
	return n, nil
}

func intKind(k storage.Kind) bool {
	return k == storage.Int || k == storage.Date || k == storage.OID
}
