package batstore

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stethoscope/internal/fsio"
	"stethoscope/internal/storage"
)

// testCatalog builds a small catalog covering every tail kind and both
// compressible and incompressible data, sized to span several segments
// at the given segment size.
func testCatalog(t *testing.T, rows int) *storage.Catalog {
	t.Helper()
	ints := make([]int64, rows)   // unique: raw varint
	runs := make([]int64, rows)   // long runs: RLE
	flts := make([]float64, rows) // raw bits
	names := make([]string, rows) // unique strings: raw
	flags := make([]string, rows) // 3 distinct: dict
	bools := make([]bool, rows)   // bit-packed
	dates := make([]int64, rows)  // date family
	for i := 0; i < rows; i++ {
		ints[i] = int64(i * 7)
		runs[i] = int64(i / 97)
		flts[i] = float64(i) * 0.25
		names[i] = "value-" + strings.Repeat("x", i%5) + "-" + string(rune('a'+i%26))
		flags[i] = []string{"R", "A", "N"}[i%3]
		bools[i] = i%3 == 0
		dates[i] = 8035 + int64(i%2405)
	}
	cat := storage.NewCatalog()
	err := cat.Define("sys", "mixed",
		[]storage.Column{
			{Name: "k_int", Kind: storage.Int},
			{Name: "k_run", Kind: storage.Int},
			{Name: "k_flt", Kind: storage.Flt},
			{Name: "k_name", Kind: storage.Str},
			{Name: "k_flag", Kind: storage.Str},
			{Name: "k_bool", Kind: storage.Bool},
			{Name: "k_date", Kind: storage.Date},
		},
		map[string]*storage.BAT{
			"k_int":  storage.FromInts(storage.Int, ints),
			"k_run":  storage.FromInts(storage.Int, runs),
			"k_flt":  storage.FromFloats(flts),
			"k_name": storage.FromStrings(names),
			"k_flag": storage.FromStrings(flags),
			"k_bool": storage.FromBools(bools),
			"k_date": storage.FromInts(storage.Date, dates),
		})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// batsEqual compares two BATs value by value.
func batsEqual(t *testing.T, got, want *storage.BAT, label string) {
	t.Helper()
	if got.Kind() != want.Kind() || got.Len() != want.Len() {
		t.Fatalf("%s: kind/len %v/%d, want %v/%d", label, got.Kind(), got.Len(), want.Kind(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		switch want.Kind() {
		case storage.Flt:
			if got.FltAt(i) != want.FltAt(i) {
				t.Fatalf("%s: row %d = %v, want %v", label, i, got.FltAt(i), want.FltAt(i))
			}
		case storage.Str:
			if got.StrAt(i) != want.StrAt(i) {
				t.Fatalf("%s: row %d = %q, want %q", label, i, got.StrAt(i), want.StrAt(i))
			}
		case storage.Bool:
			if got.BoolAt(i) != want.BoolAt(i) {
				t.Fatalf("%s: row %d = %v, want %v", label, i, got.BoolAt(i), want.BoolAt(i))
			}
		default:
			if got.IntAt(i) != want.IntAt(i) {
				t.Fatalf("%s: row %d = %d, want %d", label, i, got.IntAt(i), want.IntAt(i))
			}
		}
	}
}

func TestPersistOpenRoundTrip(t *testing.T) {
	const rows, segRows = 1000, 128 // 8 segments, last one partial
	dir := t.TempDir()
	cat := testCatalog(t, rows)
	if err := Persist(dir, cat, map[string]string{"origin": "test"}, segRows); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := st.Meta()["origin"]; got != "test" {
		t.Errorf("meta origin = %q, want %q", got, "test")
	}
	tabs := st.Tables()
	if len(tabs) != 1 || tabs[0].Rows != rows || tabs[0].Columns != 7 {
		t.Fatalf("Tables() = %+v, want one 7-column %d-row table", tabs, rows)
	}
	want, _ := cat.Table("sys", "mixed")
	for _, col := range want.Columns {
		wb, _ := want.Column(col.Name)
		gb, err := st.ReadColumn("sys", "mixed", col.Name)
		if err != nil {
			t.Fatalf("ReadColumn(%s): %v", col.Name, err)
		}
		batsEqual(t, gb, wb, col.Name)
	}
}

func TestLazyCatalogLoadsOnBind(t *testing.T) {
	dir := t.TempDir()
	if err := Persist(dir, testCatalog(t, 300), nil, 64); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := st.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := cat.Table("sys", "mixed")
	if !ok {
		t.Fatal("lazy catalog is missing sys.mixed")
	}
	if tab.Rows() != 300 {
		t.Fatalf("Rows() = %d before any load, want 300", tab.Rows())
	}
	b, err := cat.Bind("sys", "mixed", "k_flag")
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if b.Len() != 300 || b.StrAt(1) != "A" {
		t.Fatalf("bound column: len=%d row1=%q", b.Len(), b.StrAt(1))
	}
	b2, err := cat.Bind("sys", "mixed", "k_flag")
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b {
		t.Error("second bind re-loaded the column instead of reusing the materialized BAT")
	}
	if _, err := cat.Bind("sys", "mixed", "no_such"); err == nil {
		t.Error("bind of unknown column succeeded")
	}
}

func TestWindowedReaderSegmentAtATime(t *testing.T) {
	dir := t.TempDir()
	if err := Persist(dir, testCatalog(t, 1000), nil, 128); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := st.OpenColumn("sys", "mixed", "k_int")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dst := storage.New(r.Kind(), r.Rows())
	var sizes []int
	for {
		n, err := r.Next(dst)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) != 8 {
		t.Fatalf("segments = %d, want 8", len(sizes))
	}
	for i, n := range sizes[:7] {
		if n != 128 {
			t.Errorf("segment %d has %d rows, want 128", i, n)
		}
	}
	if sizes[7] != 1000-7*128 {
		t.Errorf("last segment has %d rows, want %d", sizes[7], 1000-7*128)
	}
	if dst.Len() != 1000 {
		t.Errorf("materialized %d rows, want 1000", dst.Len())
	}
}

// corruptColumnFile flips one byte inside the payload of the given
// segment record of a column file.
func corruptColumnFile(t *testing.T, path string, seg int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(0)
	for i := 0; i < seg; i++ {
		plen, _ := fsio.ParseRecordHeader(data[off:])
		off += fsio.RecordHeaderLen + int64(plen)
	}
	data[off+fsio.RecordHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSegmentNamesFile(t *testing.T) {
	dir := t.TempDir()
	if err := Persist(dir, testCatalog(t, 1000), nil, 128); err != nil {
		t.Fatal(err)
	}
	file := colFileName("sys", "mixed", "k_flt")
	corruptColumnFile(t, filepath.Join(dir, file), 3)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err) // manifest untouched: open must still work
	}
	_, err = st.ReadColumn("sys", "mixed", "k_flt")
	if err == nil {
		t.Fatal("ReadColumn on a corrupt segment succeeded")
	}
	if !strings.Contains(err.Error(), file) || !strings.Contains(err.Error(), "segment 3") {
		t.Errorf("corruption error %q does not name file %q and segment 3", err, file)
	}
	// Other columns are unaffected.
	if _, err := st.ReadColumn("sys", "mixed", "k_int"); err != nil {
		t.Errorf("healthy column failed after sibling corruption: %v", err)
	}
	// The lazy catalog surfaces the same error through Bind.
	cat, err := st.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Bind("sys", "mixed", "k_flt"); err == nil || !strings.Contains(err.Error(), file) {
		t.Errorf("lazy bind error = %v, want segment file named", err)
	}
}

func TestTornTailNamesFile(t *testing.T) {
	dir := t.TempDir()
	if err := Persist(dir, testCatalog(t, 1000), nil, 128); err != nil {
		t.Fatal(err)
	}
	file := colFileName("sys", "mixed", "k_name")
	path := filepath.Join(dir, file)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.ReadColumn("sys", "mixed", "k_name")
	if err == nil || !strings.Contains(err.Error(), file) || !strings.Contains(err.Error(), "torn") {
		t.Errorf("torn-tail error = %v, want file named and torn reported", err)
	}
}

func TestOpenMissingManifest(t *testing.T) {
	_, err := Open(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "not a persisted dataset") {
		t.Fatalf("Open(empty dir) = %v, want not-a-dataset error", err)
	}
}

func TestOpenCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := Persist(dir, testCatalog(t, 64), nil, 32); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[fsio.RecordHeaderLen+4] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Open(corrupt manifest) = %v, want checksum error", err)
	}
}

func TestPersistWriterExclusion(t *testing.T) {
	dir := t.TempDir()
	lock, err := fsio.AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fsio.ReleaseLock(lock)
	if err := Persist(dir, testCatalog(t, 64), nil, 32); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("Persist under a held lock = %v, want locked-by-another-writer error", err)
	}
}

func TestRePersistReplacesDataset(t *testing.T) {
	dir := t.TempDir()
	if err := Persist(dir, testCatalog(t, 500), map[string]string{"gen": "1"}, 128); err != nil {
		t.Fatal(err)
	}
	if err := Persist(dir, testCatalog(t, 200), map[string]string{"gen": "2"}, 64); err != nil {
		t.Fatalf("re-Persist: %v", err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Meta()["gen"] != "2" || st.Tables()[0].Rows != 200 {
		t.Errorf("reopened dataset meta=%v rows=%d, want gen=2 rows=200", st.Meta(), st.Tables()[0].Rows)
	}
	if _, err := st.ReadColumn("sys", "mixed", "k_int"); err != nil {
		t.Errorf("column read after re-persist: %v", err)
	}
}

func TestSegmentEncodingChoices(t *testing.T) {
	// Constant ints must RLE, unique ints must not; low-cardinality
	// strings must dict, unique strings must not.
	constant := make([]int64, 256)
	unique := make([]int64, 256)
	flags := make([]string, 256)
	names := make([]string, 256)
	for i := range unique {
		unique[i] = int64(i)
		flags[i] = []string{"O", "F"}[i%2]
		names[i] = strings.Repeat("u", i%9) + string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	cases := []struct {
		label string
		bat   *storage.BAT
		enc   byte
	}{
		{"constant ints", storage.FromInts(storage.Int, constant), encRLEInt},
		{"unique ints", storage.FromInts(storage.Int, unique), encRawInt},
		{"two-value strings", storage.FromStrings(flags), encDictStr},
		{"unique strings", storage.FromStrings(names), encRawStr},
	}
	for _, tc := range cases {
		payload := encodeSegment(nil, tc.bat, 0, tc.bat.Len())
		if payload[0] != tc.enc {
			t.Errorf("%s: encoding %d, want %d", tc.label, payload[0], tc.enc)
		}
		dst := storage.New(tc.bat.Kind(), tc.bat.Len())
		n, err := decodeSegment(payload, dst, 1<<16)
		if err != nil || n != tc.bat.Len() {
			t.Fatalf("%s: decode = (%d, %v)", tc.label, n, err)
		}
		batsEqual(t, dst, tc.bat, tc.label)
	}
}

// TestReadColumnRangeMatchesFullRead: every window — inside one
// segment, across segment boundaries, clamped past the end, empty,
// inverted — must equal the same slice of a whole-column read, for
// every encoding the store writes.
func TestReadColumnRangeMatchesFullRead(t *testing.T) {
	dir := t.TempDir()
	const rows, segRows = 1000, 128
	if err := Persist(dir, testCatalog(t, rows), nil, segRows); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	windows := [][2]int{
		{0, rows},           // whole column
		{0, 50},             // head of the first segment
		{100, 200},          // spans the first boundary
		{256, 384},          // exactly one aligned segment
		{130, 131},          // single row after a skip
		{600, 2000},         // clamps past the end
		{-5, 10},            // clamps below zero
		{rows - 1, rows},    // last row
		{300, 300},          // empty
		{500, 400},          // inverted -> empty
		{7 * segRows, rows}, // the short tail segment alone
	}
	for _, col := range []string{"k_int", "k_run", "k_flt", "k_name", "k_flag", "k_bool", "k_date"} {
		full, err := st.ReadColumn("sys", "mixed", col)
		if err != nil {
			t.Fatalf("%s: ReadColumn: %v", col, err)
		}
		for _, w := range windows {
			got, err := st.ReadColumnRange("sys", "mixed", col, w[0], w[1])
			if err != nil {
				t.Fatalf("%s[%d,%d): %v", col, w[0], w[1], err)
			}
			lo, hi := w[0], w[1]
			if lo < 0 {
				lo = 0
			}
			if hi > rows {
				hi = rows
			}
			if hi < lo {
				hi = lo
			}
			if got.Len() != hi-lo {
				t.Fatalf("%s[%d,%d): %d rows, want %d", col, w[0], w[1], got.Len(), hi-lo)
			}
			want := full.Slice(lo, hi)
			for i := 0; i < got.Len(); i++ {
				var same bool
				switch got.Kind() {
				case storage.Flt:
					same = got.FltAt(i) == want.FltAt(i)
				case storage.Str:
					same = got.StrAt(i) == want.StrAt(i)
				case storage.Bool:
					same = got.BoolAt(i) == want.BoolAt(i)
				default:
					same = got.IntAt(i) == want.IntAt(i)
				}
				if !same {
					t.Fatalf("%s[%d,%d): row %d differs from full read", col, w[0], w[1], i)
				}
			}
		}
	}
}

// TestSkipSegmentAdvancesWithoutDecode: skipped segments report their
// declared row counts and leave the cursor positioned for a normal
// Next; skipping past the end is io.EOF.
func TestSkipSegmentAdvancesWithoutDecode(t *testing.T) {
	dir := t.TempDir()
	if err := Persist(dir, testCatalog(t, 1000), nil, 128); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := st.OpenColumn("sys", "mixed", "k_int")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	skipped := 0
	for i := 0; i < 3; i++ {
		n, err := r.SkipSegment()
		if err != nil {
			t.Fatalf("skip %d: %v", i, err)
		}
		skipped += n
	}
	if skipped != 3*128 {
		t.Fatalf("skipped %d rows, want %d", skipped, 3*128)
	}
	dst := storage.New(r.Kind(), 128)
	n, err := r.Next(dst)
	if err != nil {
		t.Fatalf("Next after skips: %v", err)
	}
	if n != 128 || dst.IntAt(0) != int64(3*128*7) {
		t.Fatalf("segment after 3 skips starts at %d (%d rows), want value %d", dst.IntAt(0), n, 3*128*7)
	}
	for {
		if _, err := r.SkipSegment(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.SkipSegment(); err != io.EOF {
		t.Fatalf("skip past the end = %v, want io.EOF", err)
	}
}
