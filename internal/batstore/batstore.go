// Package batstore is the durable columnar BAT storage subsystem: a
// catalog persisted to disk as a manifest plus per-column segment
// files, so a database opens from data instead of regenerating it.
//
// On-disk layout of a dataset directory:
//
//	dir/
//	  MANIFEST                       one fsio-framed JSON record: format
//	                                 version, dataset metadata (sf, seed,
//	                                 ...), segment size, and every table's
//	                                 schema, row count, and column files
//	  LOCK                           writer-exclusion flock, held only
//	                                 while Persist writes
//	  <schema>.<table>.<column>.col  fsio-framed segment records
//
// The discipline mirrors internal/tracestore via the shared
// internal/fsio package: every record is length-prefixed and
// CRC-checksummed, writers take an exclusive flock on the directory,
// and opens are read-only (no lock, no mutation — any number of
// processes can serve from one dataset). Persist commits by writing the
// MANIFEST last, atomically (temp file + rename): a crashed Persist
// leaves either the old complete dataset or no manifest at all, never a
// half-dataset that opens.
//
// Reads are windowed and lazy: Open costs one manifest record; column
// data comes off disk on first bind, decoded segment-at-a-time through
// a reused window buffer, and only for the columns queries actually
// scan. A corrupt or torn segment surfaces as an error naming the
// segment file and index — never a silently wrong column.
package batstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"stethoscope/internal/fsio"
	"stethoscope/internal/metrics"
	"stethoscope/internal/storage"
)

const (
	// FormatVersion is the on-disk format revision; Open rejects
	// datasets written by a newer code level.
	FormatVersion = 1
	// DefaultSegmentRows is the fixed segment size Persist uses unless
	// overridden: 64Ki rows per segment keeps the decode window small
	// while a 6M-row SF 1 lineitem column still fits in ~92 segments.
	DefaultSegmentRows = 1 << 16
	// manifestName is the dataset's commit point.
	manifestName = "MANIFEST"
	colSuffix    = ".col"
	// maxSegmentBytes bounds a framed segment record read back from
	// disk; anything larger is corruption, not an allocation request.
	maxSegmentBytes = 64 << 20
	// maxManifestBytes bounds the manifest record.
	maxManifestBytes = 16 << 20
)

// manifest is the persisted catalog description.
type manifest struct {
	Version     int               `json:"version"`
	SegmentRows int               `json:"segment_rows"`
	Meta        map[string]string `json:"meta,omitempty"`
	Tables      []tableManifest   `json:"tables"`
}

// tableManifest describes one persisted table.
type tableManifest struct {
	Schema  string           `json:"schema"`
	Name    string           `json:"name"`
	Rows    int              `json:"rows"`
	Columns []columnManifest `json:"columns"`
}

// columnManifest describes one persisted column file.
type columnManifest struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	File     string `json:"file"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
}

// colFileName is the column file naming scheme inside a dataset.
func colFileName(schema, table, column string) string {
	return schema + "." + table + "." + column + colSuffix
}

// Persist writes cat as a dataset at dir, creating the directory if
// missing and replacing any dataset already there. meta is free-form
// dataset metadata recorded in the manifest (the facade stores the
// generator's sf and seed). segmentRows fixes the segment size
// (DefaultSegmentRows when <= 0). The writer flock is held for the
// whole write; a concurrent Persist on the same directory fails
// instead of interleaving files.
func Persist(dir string, cat *storage.Catalog, meta map[string]string, segmentRows int) error {
	if segmentRows <= 0 {
		segmentRows = DefaultSegmentRows
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("batstore: %w", err)
	}
	lock, err := fsio.AcquireDirLock(dir)
	if err != nil {
		return fmt.Errorf("batstore: %w", err)
	}
	defer fsio.ReleaseLock(lock)

	man := manifest{Version: FormatVersion, SegmentRows: segmentRows, Meta: meta}
	var buf []byte
	for _, qual := range cat.TableNames() {
		schema, bare, ok := strings.Cut(qual, ".")
		if !ok {
			schema, bare = "sys", qual
		}
		t, ok := cat.Table(schema, bare)
		if !ok {
			return fmt.Errorf("batstore: %s: catalog names table %s but does not resolve it", dir, qual)
		}
		tm := tableManifest{Schema: schema, Name: bare, Rows: t.Rows()}
		for _, col := range t.Columns {
			b, err := t.ColumnData(col.Name)
			if err != nil {
				return fmt.Errorf("batstore: %w", err)
			}
			cm, err := writeColumn(dir, schema, bare, col, b, segmentRows, &buf)
			if err != nil {
				return err
			}
			tm.Columns = append(tm.Columns, cm)
		}
		man.Tables = append(man.Tables, tm)
	}
	return writeManifest(dir, man)
}

// writeColumn streams one BAT into its segment file: fixed-size
// segments, each an fsio-framed record whose payload is one encoded
// window. buf is the reused encode buffer.
func writeColumn(dir, schema, table string, col storage.Column, b *storage.BAT, segmentRows int, buf *[]byte) (columnManifest, error) {
	cm := columnManifest{Name: col.Name, Kind: col.Kind.String(), File: colFileName(schema, table, col.Name)}
	path := filepath.Join(dir, cm.File)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return cm, fmt.Errorf("batstore: %w", err)
	}
	w := bufio.NewWriterSize(f, 256<<10)
	rows := b.Len()
	for lo := 0; lo < rows; lo += segmentRows {
		hi := lo + segmentRows
		if hi > rows {
			hi = rows
		}
		*buf = encodeSegment((*buf)[:0], b, lo, hi)
		n, err := fsio.WriteRecord(w, *buf)
		if err != nil {
			f.Close()
			return cm, fmt.Errorf("batstore: %s: %w", path, err)
		}
		cm.Bytes += n
		cm.Segments++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return cm, fmt.Errorf("batstore: %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cm, fmt.Errorf("batstore: %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return cm, fmt.Errorf("batstore: %s: %w", path, err)
	}
	return cm, nil
}

// writeManifest commits the dataset: the framed manifest record is
// written to a temp file, synced, and renamed over MANIFEST, so the
// commit point is atomic.
func writeManifest(dir string, man manifest) error {
	payload, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("batstore: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("batstore: %w", err)
	}
	if _, err := fsio.WriteRecord(f, payload); err != nil {
		f.Close()
		return fmt.Errorf("batstore: %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("batstore: %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("batstore: %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("batstore: %w", err)
	}
	return nil
}

// Store is a read-only handle on a persisted dataset: the manifest is
// resident, column data stays on disk until read. Any number of Stores
// (and processes) can open one dataset concurrently.
type Store struct {
	dir string
	man manifest

	// I/O counters, nil (no-op) until Instrument attaches a registry.
	segDecoded *metrics.Counter
	segSkipped *metrics.Counter
	bytesRead  *metrics.Counter
}

// Instrument registers the store's I/O counters (stetho_batstore_*) in
// the registry. Call before serving reads; cursors opened earlier keep
// counting into their original (possibly nil) cells.
func (s *Store) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.segDecoded = reg.Counter("stetho_batstore_segments_decoded_total")
	s.segSkipped = reg.Counter("stetho_batstore_segments_skipped_total")
	s.bytesRead = reg.Counter("stetho_batstore_bytes_read_total")
}

// Open reads and verifies a dataset's manifest. No lock is taken and
// no column data is read — the cost is one framed record, independent
// of the dataset size.
func Open(dir string) (*Store, error) {
	path := filepath.Join(dir, manifestName)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("batstore: %s is not a persisted dataset (no %s; generate one with tpchgen -persist or DB.Persist)", dir, manifestName)
		}
		return nil, fmt.Errorf("batstore: %w", err)
	}
	defer f.Close()
	payload, err := fsio.ReadRecord(bufio.NewReader(f), nil, maxManifestBytes)
	if err != nil {
		return nil, fmt.Errorf("batstore: %s: %v", path, err)
	}
	var man manifest
	if err := json.Unmarshal(payload, &man); err != nil {
		return nil, fmt.Errorf("batstore: %s: %w", path, err)
	}
	if man.Version != FormatVersion {
		return nil, fmt.Errorf("batstore: %s: format version %d, this build reads %d", path, man.Version, FormatVersion)
	}
	if man.SegmentRows <= 0 {
		return nil, fmt.Errorf("batstore: %s: invalid segment size %d", path, man.SegmentRows)
	}
	for _, tm := range man.Tables {
		for _, cm := range tm.Columns {
			if _, ok := storage.ParseKind(cm.Kind); !ok {
				return nil, fmt.Errorf("batstore: %s: column %s.%s.%s has unknown kind %q", path, tm.Schema, tm.Name, cm.Name, cm.Kind)
			}
		}
	}
	return &Store{dir: dir, man: man}, nil
}

// Meta returns the dataset metadata recorded at Persist time.
func (s *Store) Meta() map[string]string {
	out := make(map[string]string, len(s.man.Meta))
	for k, v := range s.man.Meta {
		out[k] = v
	}
	return out
}

// TableInfo summarizes one persisted table.
type TableInfo struct {
	Schema  string
	Name    string
	Rows    int
	Columns int
	Bytes   int64 // on-disk footprint of the table's column files
}

// Tables lists the persisted tables in manifest order.
func (s *Store) Tables() []TableInfo {
	out := make([]TableInfo, 0, len(s.man.Tables))
	for _, tm := range s.man.Tables {
		ti := TableInfo{Schema: tm.Schema, Name: tm.Name, Rows: tm.Rows, Columns: len(tm.Columns)}
		for _, cm := range tm.Columns {
			ti.Bytes += cm.Bytes
		}
		out = append(out, ti)
	}
	return out
}

// Catalog builds a lazily-loaded storage.Catalog over the dataset:
// table schemas and row counts come from the manifest, column data
// materializes on first bind via ReadColumn. This is what the facade
// serves queries against after OpenPath.
func (s *Store) Catalog() (*storage.Catalog, error) {
	cat := storage.NewCatalog()
	for _, tm := range s.man.Tables {
		tm := tm
		cols := make([]storage.Column, len(tm.Columns))
		for i, cm := range tm.Columns {
			kind, _ := storage.ParseKind(cm.Kind)
			cols[i] = storage.Column{Name: cm.Name, Kind: kind}
		}
		load := func(column string) (*storage.BAT, error) {
			return s.ReadColumn(tm.Schema, tm.Name, column)
		}
		if err := cat.DefineLazy(tm.Schema, tm.Name, cols, tm.Rows, load); err != nil {
			return nil, fmt.Errorf("batstore: %w", err)
		}
	}
	return cat, nil
}

// findColumn resolves a column's manifest entries.
func (s *Store) findColumn(schema, table, column string) (tableManifest, columnManifest, error) {
	for _, tm := range s.man.Tables {
		if tm.Schema != schema || tm.Name != table {
			continue
		}
		for _, cm := range tm.Columns {
			if cm.Name == column {
				return tm, cm, nil
			}
		}
		return tm, columnManifest{}, fmt.Errorf("batstore: no column %s.%s.%s in dataset %s", schema, table, column, s.dir)
	}
	return tableManifest{}, columnManifest{}, fmt.Errorf("batstore: no table %s.%s in dataset %s", schema, table, s.dir)
}

// ReadColumn materializes one column: its segment file is read
// window-at-a-time (one framed segment per read, decode buffer reused)
// into a BAT preallocated at the manifest row count. Peak transient
// memory is one encoded segment, not the encoded column.
func (s *Store) ReadColumn(schema, table, column string) (*storage.BAT, error) {
	r, err := s.OpenColumn(schema, table, column)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	dst := storage.New(r.Kind(), r.Rows())
	for {
		if _, err := r.Next(dst); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// OpenColumn opens a windowed cursor over one column's segments, for
// callers that consume a column segment-at-a-time instead of whole.
func (s *Store) OpenColumn(schema, table, column string) (*ColumnReader, error) {
	tm, cm, err := s.findColumn(schema, table, column)
	if err != nil {
		return nil, err
	}
	kind, _ := storage.ParseKind(cm.Kind)
	path := filepath.Join(s.dir, cm.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("batstore: %w", err)
	}
	return &ColumnReader{
		path:     path,
		f:        f,
		br:       bufio.NewReaderSize(f, 256<<10),
		kind:     kind,
		segRows:  s.man.SegmentRows,
		segments: cm.Segments,
		rows:     tm.Rows,
		decoded:  s.segDecoded,
		skipped:  s.segSkipped,
		bytes:    s.bytesRead,
	}, nil
}

// ColumnReader iterates one column's segments in file order. Each Next
// decodes exactly one segment into the caller's BAT; the encoded window
// buffer is reused across calls.
type ColumnReader struct {
	path     string
	f        *os.File
	br       *bufio.Reader
	buf      []byte
	kind     storage.Kind
	segRows  int
	segments int
	rows     int
	seg      int
	got      int

	// Store counters, copied at open; nil when the store is
	// uninstrumented.
	decoded *metrics.Counter
	skipped *metrics.Counter
	bytes   *metrics.Counter
}

// Kind returns the column's tail kind, from the manifest.
func (r *ColumnReader) Kind() storage.Kind { return r.kind }

// Rows returns the column's total row count, from the manifest.
func (r *ColumnReader) Rows() int { return r.rows }

// Next reads and decodes the next segment, appending its rows onto dst
// (which must have the column's kind). It returns the segment's row
// count, or io.EOF after the last declared segment. Torn or corrupt
// segments error with the segment file and index named.
func (r *ColumnReader) Next(dst *storage.BAT) (int, error) {
	if r.seg >= r.segments {
		if r.got != r.rows {
			return 0, fmt.Errorf("batstore: %s: %d rows across %d segments, manifest declares %d", r.path, r.got, r.segments, r.rows)
		}
		if _, err := r.br.Peek(1); err != io.EOF {
			return 0, fmt.Errorf("batstore: %s: trailing data after segment %d", r.path, r.segments)
		}
		return 0, io.EOF
	}
	payload, err := fsio.ReadRecord(r.br, r.buf, maxSegmentBytes)
	switch {
	case err == io.EOF, err == io.ErrUnexpectedEOF:
		return 0, fmt.Errorf("batstore: %s: segment %d of %d is torn or missing (file truncated)", r.path, r.seg, r.segments)
	case err != nil:
		return 0, fmt.Errorf("batstore: %s: segment %d: %v", r.path, r.seg, err)
	}
	r.buf = payload
	r.decoded.Inc()
	r.bytes.Add(int64(len(payload)))
	n, err := decodeSegment(payload, dst, r.segRows)
	if err != nil {
		return 0, fmt.Errorf("batstore: %s: segment %d: %v", r.path, r.seg, err)
	}
	r.seg++
	r.got += n
	return n, nil
}

// SkipSegment advances past the next segment without decoding its
// rows: the framed record is read (length + CRC still verified) but
// only its header — encoding tag and declared row count — is parsed.
// It returns the skipped segment's row count, or io.EOF after the last
// declared segment. This is how windowed reads seek: whole segments
// below the requested window cost a header parse, not a decode.
func (r *ColumnReader) SkipSegment() (int, error) {
	if r.seg >= r.segments {
		return 0, io.EOF
	}
	payload, err := fsio.ReadRecord(r.br, r.buf, maxSegmentBytes)
	switch {
	case err == io.EOF, err == io.ErrUnexpectedEOF:
		return 0, fmt.Errorf("batstore: %s: segment %d of %d is torn or missing (file truncated)", r.path, r.seg, r.segments)
	case err != nil:
		return 0, fmt.Errorf("batstore: %s: segment %d: %v", r.path, r.seg, err)
	}
	r.buf = payload
	r.skipped.Inc()
	r.bytes.Add(int64(len(payload)))
	n, err := segmentRowCount(payload, r.segRows)
	if err != nil {
		return 0, fmt.Errorf("batstore: %s: segment %d: %v", r.path, r.seg, err)
	}
	r.seg++
	r.got += n
	return n, nil
}

// ReadColumnRange materializes rows [lo, hi) of one column — the
// windowed disk path a morsel-sized scan wants: whole segments below
// the window are skipped at header-parse cost, segments overlapping the
// window decode once, and only the window's rows land in the returned
// BAT, so reading one morsel of a cold column costs one or two segment
// decodes regardless of the column's size. lo and hi clamp to the
// column's row count; an empty or inverted window returns an empty BAT.
func (s *Store) ReadColumnRange(schema, table, column string, lo, hi int) (*storage.BAT, error) {
	r, err := s.OpenColumn(schema, table, column)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if lo < 0 {
		lo = 0
	}
	if hi > r.Rows() {
		hi = r.Rows()
	}
	if hi < lo {
		hi = lo
	}
	dst := storage.New(r.Kind(), hi-lo)
	if lo == hi {
		return dst, nil
	}
	// base tracks the first row of the next segment; full segments hold
	// exactly segRows rows (Persist writes fixed-size segments, short
	// only at the tail), so a segment entirely below lo can be skipped
	// before its row count is known.
	base := 0
	for base < hi {
		if base+r.segRows <= lo {
			n, err := r.SkipSegment()
			if err != nil {
				return nil, err
			}
			base += n
			continue
		}
		seg := storage.New(r.Kind(), r.segRows)
		n, err := r.Next(seg)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		slo, shi := lo-base, hi-base
		if slo < 0 {
			slo = 0
		}
		if shi > n {
			shi = n
		}
		if slo < shi {
			if err := dst.Append(seg.Slice(slo, shi)); err != nil {
				return nil, fmt.Errorf("batstore: %s: %w", r.path, err)
			}
		}
		base += n
	}
	if dst.Len() != hi-lo {
		return nil, fmt.Errorf("batstore: %s: window [%d,%d) yielded %d rows, want %d (short data)", r.path, lo, hi, dst.Len(), hi-lo)
	}
	return dst, nil
}

// Close releases the segment file.
func (r *ColumnReader) Close() error { return r.f.Close() }
