package algebra

import (
	"fmt"
	"strings"

	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
)

// Bind resolves a parsed SELECT against the catalog and returns a typed
// operator tree: scans with pruned column sets, pushed-down single-table
// filters, left-deep equi-joins in declared order, grouping/aggregation,
// projection, distinct, sort and limit.
func Bind(stmt *sql.SelectStmt, cat *storage.Catalog) (Node, error) {
	b := &binder{cat: cat, stmt: stmt}
	return b.bind()
}

// baseRel is one table in the FROM clause with its resolved metadata.
type baseRel struct {
	alias string
	table *storage.Table
	// needed column names, in table declaration order when emitted.
	needed map[string]bool
}

type binder struct {
	cat  *storage.Catalog
	stmt *sql.SelectStmt
	rels []*baseRel
}

func (b *binder) bind() (Node, error) {
	if len(b.stmt.Items) == 0 {
		return nil, fmt.Errorf("algebra: no select items")
	}
	if err := b.resolveTables(); err != nil {
		return nil, err
	}
	if err := b.collectNeeded(); err != nil {
		return nil, err
	}

	// Split WHERE into conjuncts and classify them.
	where := conjuncts(b.stmt.Where)
	perRel := make([][]sql.Expr, len(b.rels))
	var joinCands []sql.Expr // cross-relation equality conjuncts
	var residual []sql.Expr
	for _, c := range where {
		rels, err := b.relsOf(c)
		if err != nil {
			return nil, err
		}
		switch {
		case len(rels) <= 1:
			idx := 0
			for r := range rels {
				idx = r
			}
			if len(rels) == 0 {
				// Constant predicate: keep as residual on the first rel.
				residual = append(residual, c)
			} else {
				perRel[idx] = append(perRel[idx], c)
			}
		case len(rels) == 2 && isEquiJoin(c):
			joinCands = append(joinCands, c)
		default:
			residual = append(residual, c)
		}
	}

	// Build per-relation scan + pushed filters.
	nodes := make([]Node, len(b.rels))
	for i, rel := range b.rels {
		scan, err := b.scanNode(rel)
		if err != nil {
			return nil, err
		}
		var n Node = scan
		for _, pred := range perRel[i] {
			bound, err := b.bindExpr(pred, n.Schema(), false)
			if err != nil {
				return nil, err
			}
			if bound.Kind() != storage.Bool {
				return nil, fmt.Errorf("algebra: filter %s is not boolean", bound)
			}
			n = &Filter{Input: n, Pred: bound}
		}
		nodes[i] = n
	}

	// Left-deep joins in declared order.
	cur := nodes[0]
	inTree := map[int]bool{0: true}
	for ji, jc := range b.stmt.Joins {
		relIdx := ji + 1
		var keyExpr sql.Expr
		var onResidual []sql.Expr
		if jc.On != nil {
			for _, c := range conjuncts(jc.On) {
				if keyExpr == nil && isEquiJoin(c) {
					ok, err := b.connects(c, inTree, relIdx)
					if err != nil {
						return nil, err
					}
					if ok {
						keyExpr = c
						continue
					}
				}
				onResidual = append(onResidual, c)
			}
		} else {
			// Comma join: pull a connecting equality from WHERE.
			for k, c := range joinCands {
				if c == nil {
					continue
				}
				ok, err := b.connects(c, inTree, relIdx)
				if err != nil {
					return nil, err
				}
				if ok {
					keyExpr = c
					joinCands[k] = nil
					break
				}
			}
		}
		if keyExpr == nil {
			return nil, fmt.Errorf("algebra: no equi-join condition connecting %s", b.rels[relIdx].alias)
		}
		j, err := b.joinNode(cur, nodes[relIdx], keyExpr, inTree, relIdx)
		if err != nil {
			return nil, err
		}
		cur = j
		inTree[relIdx] = true
		residual = append(residual, onResidual...)
	}
	// Unused join candidates become residual filters.
	for _, c := range joinCands {
		if c != nil {
			residual = append(residual, c)
		}
	}
	for _, c := range residual {
		bound, err := b.bindExpr(c, cur.Schema(), false)
		if err != nil {
			return nil, err
		}
		if bound.Kind() != storage.Bool {
			return nil, fmt.Errorf("algebra: filter %s is not boolean", bound)
		}
		cur = &Filter{Input: cur, Pred: bound}
	}

	// Grouping and aggregation.
	hasAgg := len(b.stmt.GroupBy) > 0
	for _, it := range b.stmt.Items {
		if containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	var names []string
	if hasAgg {
		var err error
		cur, names, err = b.bindGrouped(cur)
		if err != nil {
			return nil, err
		}
	} else {
		var exprs []Expr
		for _, it := range b.stmt.Items {
			e, err := b.bindExpr(it.Expr, cur.Schema(), false)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			names = append(names, itemName(it))
		}
		cur = &Project{Input: cur, Exprs: exprs, Names: names}
	}

	if b.stmt.Distinct {
		cur = &Distinct{Input: cur}
	}

	if len(b.stmt.OrderBy) > 0 {
		keys, err := b.bindOrderKeys(cur.Schema(), names)
		if err != nil {
			return nil, err
		}
		cur = &Sort{Input: cur, Keys: keys}
	}
	if b.stmt.Limit >= 0 {
		cur = &Limit{Input: cur, N: b.stmt.Limit}
	}
	return cur, nil
}

func (b *binder) resolveTables() error {
	add := func(tr sql.TableRef) error {
		t, ok := b.cat.Table("sys", tr.Name)
		if !ok {
			return fmt.Errorf("algebra: unknown table %q", tr.Name)
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		for _, r := range b.rels {
			if r.alias == alias {
				return fmt.Errorf("algebra: duplicate table alias %q", alias)
			}
		}
		b.rels = append(b.rels, &baseRel{alias: alias, table: t, needed: map[string]bool{}})
		return nil
	}
	if err := add(b.stmt.From); err != nil {
		return err
	}
	for _, j := range b.stmt.Joins {
		if err := add(j.Table); err != nil {
			return err
		}
	}
	return nil
}

// resolveCol maps a possibly-qualified column reference to its relation
// index, checking ambiguity.
func (b *binder) resolveCol(qual, name string) (int, error) {
	found := -1
	for i, rel := range b.rels {
		if qual != "" && rel.alias != qual {
			continue
		}
		if _, ok := rel.table.ColumnKind(name); ok {
			if found >= 0 {
				return -1, fmt.Errorf("algebra: ambiguous column %q", name)
			}
			found = i
		}
	}
	if found < 0 {
		ref := name
		if qual != "" {
			ref = qual + "." + name
		}
		return -1, fmt.Errorf("algebra: unknown column %q", ref)
	}
	return found, nil
}

// collectNeeded walks every expression in the statement and marks the
// referenced columns on their relations, so scans read only what is used.
func (b *binder) collectNeeded() error {
	var visit func(e sql.Expr) error
	visit = func(e sql.Expr) error {
		switch t := e.(type) {
		case nil:
			return nil
		case *sql.ColRef:
			idx, err := b.resolveCol(t.Table, t.Column)
			if err != nil {
				return err
			}
			b.rels[idx].needed[t.Column] = true
		case *sql.BinExpr:
			if err := visit(t.L); err != nil {
				return err
			}
			return visit(t.R)
		case *sql.NotExpr:
			return visit(t.E)
		case *sql.BetweenExpr:
			if err := visit(t.E); err != nil {
				return err
			}
			if err := visit(t.Lo); err != nil {
				return err
			}
			return visit(t.Hi)
		case *sql.LikeExpr:
			return visit(t.E)
		case *sql.InExpr:
			if err := visit(t.E); err != nil {
				return err
			}
			for _, v := range t.List {
				if err := visit(v); err != nil {
					return err
				}
			}
		case *sql.AggExpr:
			if t.Arg != nil {
				return visit(t.Arg)
			}
		}
		return nil
	}
	for _, it := range b.stmt.Items {
		if err := visit(it.Expr); err != nil {
			return err
		}
	}
	if err := visit(b.stmt.Where); err != nil {
		return err
	}
	for _, j := range b.stmt.Joins {
		if err := visit(j.On); err != nil {
			return err
		}
	}
	for _, g := range b.stmt.GroupBy {
		if err := visit(g); err != nil {
			return err
		}
	}
	// Order-by may reference select-list aliases (standard SQL); those
	// are not base columns and resolve later against the output schema.
	aliases := map[string]bool{}
	for _, it := range b.stmt.Items {
		if it.Alias != "" {
			aliases[it.Alias] = true
		}
	}
	for _, o := range b.stmt.OrderBy {
		if cr, ok := o.Expr.(*sql.ColRef); ok && cr.Table == "" && aliases[cr.Column] {
			if _, err := b.resolveCol("", cr.Column); err != nil {
				continue // pure alias reference
			}
		}
		if err := visit(o.Expr); err != nil {
			return err
		}
	}
	return nil
}

func (b *binder) scanNode(rel *baseRel) (*Scan, error) {
	var out Schema
	for _, c := range rel.table.Columns {
		if rel.needed[c.Name] {
			out = append(out, Col{Qual: rel.alias, Name: c.Name, Kind: c.Kind})
		}
	}
	if len(out) == 0 {
		// count(*)-style queries still need one column to scan.
		c := rel.table.Columns[0]
		out = Schema{{Qual: rel.alias, Name: c.Name, Kind: c.Kind}}
	}
	return &Scan{SchemaName: rel.table.Schema, Table: rel.table.Name, Alias: rel.alias, Out: out}, nil
}

// relsOf returns the set of relation indices referenced by an expression.
func (b *binder) relsOf(e sql.Expr) (map[int]bool, error) {
	out := map[int]bool{}
	var visit func(e sql.Expr) error
	visit = func(e sql.Expr) error {
		switch t := e.(type) {
		case nil:
			return nil
		case *sql.ColRef:
			idx, err := b.resolveCol(t.Table, t.Column)
			if err != nil {
				return err
			}
			out[idx] = true
		case *sql.BinExpr:
			if err := visit(t.L); err != nil {
				return err
			}
			return visit(t.R)
		case *sql.NotExpr:
			return visit(t.E)
		case *sql.BetweenExpr:
			if err := visit(t.E); err != nil {
				return err
			}
			if err := visit(t.Lo); err != nil {
				return err
			}
			return visit(t.Hi)
		case *sql.LikeExpr:
			return visit(t.E)
		case *sql.InExpr:
			if err := visit(t.E); err != nil {
				return err
			}
			for _, v := range t.List {
				if err := visit(v); err != nil {
					return err
				}
			}
		case *sql.AggExpr:
			if t.Arg != nil {
				return visit(t.Arg)
			}
		}
		return nil
	}
	if err := visit(e); err != nil {
		return nil, err
	}
	return out, nil
}

// connects reports whether equi-join conjunct c links a relation already
// in the join tree with the relation being added.
func (b *binder) connects(c sql.Expr, inTree map[int]bool, adding int) (bool, error) {
	bin := c.(*sql.BinExpr)
	lRels, err := b.relsOf(bin.L)
	if err != nil {
		return false, err
	}
	rRels, err := b.relsOf(bin.R)
	if err != nil {
		return false, err
	}
	if len(lRels) != 1 || len(rRels) != 1 {
		return false, nil
	}
	var l, r int
	for k := range lRels {
		l = k
	}
	for k := range rRels {
		r = k
	}
	return (inTree[l] && r == adding) || (inTree[r] && l == adding), nil
}

func (b *binder) joinNode(l, r Node, keyExpr sql.Expr, inTree map[int]bool, adding int) (*Join, error) {
	bin := keyExpr.(*sql.BinExpr)
	lc := bin.L.(*sql.ColRef)
	rc := bin.R.(*sql.ColRef)
	// Determine which side belongs to the new relation.
	rcRel, err := b.resolveCol(rc.Table, rc.Column)
	if err != nil {
		return nil, err
	}
	leftRef, rightRef := lc, rc
	if rcRel != adding {
		leftRef, rightRef = rc, lc
	}
	li, err := l.Schema().Find(leftRef.Table, leftRef.Column)
	if err != nil {
		return nil, err
	}
	ri, err := r.Schema().Find(rightRef.Table, rightRef.Column)
	if err != nil {
		return nil, err
	}
	lk, rk := l.Schema()[li].Kind, r.Schema()[ri].Kind
	if !kindsComparable(lk, rk) {
		return nil, fmt.Errorf("algebra: join key kinds %s and %s incompatible", lk, rk)
	}
	return &Join{L: l, R: r, LKey: li, RKey: ri}, nil
}

// bindGrouped builds the GroupAgg + Project pair for aggregate queries.
// Each select item must be either one of the group-by expressions or a
// single aggregate call (standard SQL restriction, simplified: no
// arithmetic over aggregates).
func (b *binder) bindGrouped(in Node) (Node, []string, error) {
	var keys []Expr
	var keyNames []string
	keyText := map[string]int{}
	for _, g := range b.stmt.GroupBy {
		e, err := b.bindExpr(g, in.Schema(), false)
		if err != nil {
			return nil, nil, err
		}
		keyText[g.String()] = len(keys)
		keys = append(keys, e)
		keyNames = append(keyNames, g.String())
	}

	var aggs []AggSpec
	aggText := map[string]int{}
	bindAgg := func(a *sql.AggExpr) (int, error) {
		if i, ok := aggText[a.String()]; ok {
			return i, nil
		}
		spec := AggSpec{Name: a.String(), CountStar: a.Star}
		switch a.Func {
		case "sum":
			spec.Func = storage.AggrSum
		case "count":
			spec.Func = storage.AggrCount
		case "min":
			spec.Func = storage.AggrMin
		case "max":
			spec.Func = storage.AggrMax
		case "avg":
			spec.Func = storage.AggrAvg
		default:
			return 0, fmt.Errorf("algebra: unknown aggregate %q", a.Func)
		}
		if a.Star {
			spec.K = storage.Int
		} else {
			arg, err := b.bindExpr(a.Arg, in.Schema(), false)
			if err != nil {
				return 0, err
			}
			spec.Arg = arg
			switch spec.Func {
			case storage.AggrCount:
				spec.K = storage.Int
			case storage.AggrAvg:
				spec.K = storage.Flt
			default:
				spec.K = arg.Kind()
			}
			if spec.Func == storage.AggrSum && arg.Kind() == storage.Flt {
				spec.K = storage.Flt
			}
		}
		aggText[spec.Name] = len(aggs)
		aggs = append(aggs, spec)
		return len(aggs) - 1, nil
	}

	// Map each select item onto the GroupAgg output.
	type itemRef struct {
		ordinal int // into GroupAgg schema
		name    string
	}
	var refs []itemRef
	for _, it := range b.stmt.Items {
		switch t := it.Expr.(type) {
		case *sql.AggExpr:
			ai, err := bindAgg(t)
			if err != nil {
				return nil, nil, err
			}
			refs = append(refs, itemRef{ordinal: len(keys) + ai, name: itemName(it)})
		default:
			ki, ok := keyText[it.Expr.String()]
			if !ok {
				return nil, nil, fmt.Errorf("algebra: select item %s is neither a group key nor an aggregate", it.Expr)
			}
			refs = append(refs, itemRef{ordinal: ki, name: itemName(it)})
		}
	}
	// Order-by may reference aggregates not in the select list.
	for _, o := range b.stmt.OrderBy {
		if a, ok := o.Expr.(*sql.AggExpr); ok {
			if _, err := bindAgg(a); err != nil {
				return nil, nil, err
			}
		}
	}

	ga := &GroupAgg{Input: in, Keys: keys, KeyNames: keyNames, Aggs: aggs}
	gaSchema := ga.Schema()
	var exprs []Expr
	var names []string
	for _, r := range refs {
		exprs = append(exprs, &ColIdx{Idx: r.ordinal, Col: gaSchema[r.ordinal]})
		names = append(names, r.name)
	}
	return &Project{Input: ga, Exprs: exprs, Names: names}, names, nil
}

// bindOrderKeys resolves order-by expressions against the projected output
// by alias, column name, or textual expression match.
func (b *binder) bindOrderKeys(out Schema, names []string) ([]SortKey, error) {
	var keys []SortKey
	for _, o := range b.stmt.OrderBy {
		target := o.Expr.String()
		idx := -1
		for i, n := range names {
			if n == target {
				idx = i
				break
			}
		}
		if idx < 0 {
			for i, it := range b.stmt.Items {
				if it.Expr.String() == target {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			if cr, ok := o.Expr.(*sql.ColRef); ok {
				for i, c := range out {
					if c.Name == cr.Column {
						idx = i
						break
					}
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("algebra: order-by %s is not in the select list", target)
		}
		keys = append(keys, SortKey{Idx: idx, Desc: o.Desc})
	}
	return keys, nil
}

// bindExpr type-checks and binds e against schema. allowAgg is false
// everywhere aggregates are illegal (filters, join keys, scalar contexts).
func (b *binder) bindExpr(e sql.Expr, schema Schema, allowAgg bool) (Expr, error) {
	switch t := e.(type) {
	case *sql.ColRef:
		idx, err := schema.Find(t.Table, t.Column)
		if err != nil {
			return nil, err
		}
		return &ColIdx{Idx: idx, Col: schema[idx]}, nil
	case *sql.IntLit:
		return &Const{K: storage.Int, I: t.Value}, nil
	case *sql.FltLit:
		return &Const{K: storage.Flt, F: t.Value}, nil
	case *sql.StrLit:
		return &Const{K: storage.Str, S: t.Value}, nil
	case *sql.DateLit:
		return &Const{K: storage.Date, I: t.Days}, nil
	case *sql.NotExpr:
		inner, err := b.bindExpr(t.E, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		if inner.Kind() != storage.Bool {
			return nil, fmt.Errorf("algebra: not over %s", inner.Kind())
		}
		return &Not{E: inner}, nil
	case *sql.BetweenExpr:
		inner, err := b.bindExpr(t.E, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(t.Lo, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(t.Hi, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		if !kindsComparable(inner.Kind(), lo.Kind()) || !kindsComparable(inner.Kind(), hi.Kind()) {
			return nil, fmt.Errorf("algebra: between over %s/%s/%s", inner.Kind(), lo.Kind(), hi.Kind())
		}
		return &Between{E: inner, Lo: lo, Hi: hi}, nil
	case *sql.BinExpr:
		l, err := b.bindExpr(t.L, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(t.R, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		return typeBin(t.Op, l, r)
	case *sql.LikeExpr:
		inner, err := b.bindExpr(t.E, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		if inner.Kind() != storage.Str {
			return nil, fmt.Errorf("algebra: like over %s", inner.Kind())
		}
		var out Expr = &Like{E: inner, Pattern: t.Pattern}
		if t.Not {
			out = &Not{E: out}
		}
		return out, nil
	case *sql.InExpr:
		// Desugar to an equality disjunction: e = v1 or e = v2 or ...
		inner, err := b.bindExpr(t.E, schema, allowAgg)
		if err != nil {
			return nil, err
		}
		var out Expr
		for _, v := range t.List {
			bv, err := b.bindExpr(v, schema, allowAgg)
			if err != nil {
				return nil, err
			}
			eq, err := typeBin("=", inner, bv)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = eq
			} else {
				out = &Bin{Op: "or", L: out, R: eq, K: storage.Bool}
			}
		}
		if out == nil {
			return nil, fmt.Errorf("algebra: empty in-list")
		}
		if t.Not {
			out = &Not{E: out}
		}
		return out, nil
	case *sql.AggExpr:
		return nil, fmt.Errorf("algebra: aggregate %s not allowed here", t)
	}
	return nil, fmt.Errorf("algebra: cannot bind %T", e)
}

func typeBin(op string, l, r Expr) (Expr, error) {
	lk, rk := l.Kind(), r.Kind()
	switch op {
	case "+", "-", "*", "/":
		// Date arithmetic: date ± int stays a date.
		if (op == "+" || op == "-") && lk == storage.Date && intFamily(rk) {
			return &Bin{Op: op, L: l, R: r, K: storage.Date}, nil
		}
		if !numeric(lk) || !numeric(rk) {
			return nil, fmt.Errorf("algebra: arithmetic %s over %s and %s", op, lk, rk)
		}
		k := storage.Int
		if op == "/" || lk == storage.Flt || rk == storage.Flt {
			k = storage.Flt
		}
		return &Bin{Op: op, L: l, R: r, K: k}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		if !kindsComparable(lk, rk) {
			return nil, fmt.Errorf("algebra: comparison %s over %s and %s", op, lk, rk)
		}
		return &Bin{Op: op, L: l, R: r, K: storage.Bool}, nil
	case "and", "or":
		if lk != storage.Bool || rk != storage.Bool {
			return nil, fmt.Errorf("algebra: %s over %s and %s", op, lk, rk)
		}
		return &Bin{Op: op, L: l, R: r, K: storage.Bool}, nil
	}
	return nil, fmt.Errorf("algebra: unknown operator %q", op)
}

func numeric(k storage.Kind) bool {
	return k == storage.Int || k == storage.Flt || k == storage.Date || k == storage.OID
}

func intFamily(k storage.Kind) bool {
	return k == storage.Int || k == storage.Date || k == storage.OID
}

func kindsComparable(a, b storage.Kind) bool {
	if a == b {
		return true
	}
	return numeric(a) && numeric(b)
}

// conjuncts flattens nested ANDs into a list.
func conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if bin, ok := e.(*sql.BinExpr); ok && bin.Op == "and" {
		return append(conjuncts(bin.L), conjuncts(bin.R)...)
	}
	return []sql.Expr{e}
}

// isEquiJoin reports whether the conjunct is "col = col".
func isEquiJoin(e sql.Expr) bool {
	bin, ok := e.(*sql.BinExpr)
	if !ok || bin.Op != "=" {
		return false
	}
	_, lok := bin.L.(*sql.ColRef)
	_, rok := bin.R.(*sql.ColRef)
	return lok && rok
}

func containsAgg(e sql.Expr) bool {
	switch t := e.(type) {
	case *sql.AggExpr:
		return true
	case *sql.BinExpr:
		return containsAgg(t.L) || containsAgg(t.R)
	case *sql.NotExpr:
		return containsAgg(t.E)
	case *sql.BetweenExpr:
		return containsAgg(t.E) || containsAgg(t.Lo) || containsAgg(t.Hi)
	case *sql.LikeExpr:
		return containsAgg(t.E)
	case *sql.InExpr:
		if containsAgg(t.E) {
			return true
		}
		for _, v := range t.List {
			if containsAgg(v) {
				return true
			}
		}
	}
	return false
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sql.ColRef); ok {
		return cr.Column
	}
	return strings.ToLower(it.Expr.String())
}
