package algebra

import (
	"strings"
	"testing"

	"stethoscope/internal/sql"
	"stethoscope/internal/storage"
)

// testCatalog builds a tiny catalog with two joinable tables.
func testCatalog(t testing.TB) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	err := cat.Define("sys", "lineitem",
		[]storage.Column{
			{Name: "l_orderkey", Kind: storage.Int},
			{Name: "l_partkey", Kind: storage.Int},
			{Name: "l_quantity", Kind: storage.Flt},
			{Name: "l_tax", Kind: storage.Flt},
			{Name: "l_returnflag", Kind: storage.Str},
			{Name: "l_shipdate", Kind: storage.Date},
		},
		map[string]*storage.BAT{
			"l_orderkey":   storage.FromInts(storage.Int, []int64{1, 1, 2}),
			"l_partkey":    storage.FromInts(storage.Int, []int64{1, 2, 1}),
			"l_quantity":   storage.FromFloats([]float64{10, 20, 30}),
			"l_tax":        storage.FromFloats([]float64{0.1, 0.2, 0.3}),
			"l_returnflag": storage.FromStrings([]string{"A", "N", "R"}),
			"l_shipdate":   storage.FromInts(storage.Date, []int64{8100, 8200, 8300}),
		})
	if err != nil {
		t.Fatal(err)
	}
	err = cat.Define("sys", "orders",
		[]storage.Column{
			{Name: "o_orderkey", Kind: storage.Int},
			{Name: "o_totalprice", Kind: storage.Flt},
		},
		map[string]*storage.BAT{
			"o_orderkey":   storage.FromInts(storage.Int, []int64{1, 2}),
			"o_totalprice": storage.FromFloats([]float64{100, 200}),
		})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func bindQuery(t *testing.T, q string) Node {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	n, err := Bind(stmt, testCatalog(t))
	if err != nil {
		t.Fatalf("Bind(%q): %v", q, err)
	}
	return n
}

func TestBindPaperQuery(t *testing.T) {
	n := bindQuery(t, "select l_tax from lineitem where l_partkey=1")
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("root = %T, want *Project", n)
	}
	if len(proj.Exprs) != 1 || proj.Names[0] != "l_tax" {
		t.Errorf("projection = %v %v", proj.Exprs, proj.Names)
	}
	filt, ok := proj.Input.(*Filter)
	if !ok {
		t.Fatalf("project input = %T, want *Filter (pushed down)", proj.Input)
	}
	scan, ok := filt.Input.(*Scan)
	if !ok {
		t.Fatalf("filter input = %T", filt.Input)
	}
	// Column pruning: only l_partkey and l_tax are needed.
	if len(scan.Out) != 2 {
		t.Errorf("scan schema = %v", scan.Out)
	}
}

func TestBindSchemaKinds(t *testing.T) {
	n := bindQuery(t, "select l_tax, l_returnflag, l_shipdate from lineitem")
	s := n.Schema()
	want := []storage.Kind{storage.Flt, storage.Str, storage.Date}
	for i, k := range want {
		if s[i].Kind != k {
			t.Errorf("col %d kind = %v, want %v", i, s[i].Kind, k)
		}
	}
}

func TestBindJoinOnClause(t *testing.T) {
	n := bindQuery(t, "select o_totalprice from orders join lineitem on l_orderkey = o_orderkey where l_quantity > 15")
	// Filter on lineitem is pushed below the join.
	var join *Join
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Project:
			walk(t.Input)
		case *Filter:
			walk(t.Input)
		case *Join:
			join = t
		}
	}
	walk(n)
	if join == nil {
		t.Fatal("no join node found")
	}
	if _, ok := join.R.(*Filter); !ok {
		t.Errorf("right side = %T, want pushed *Filter", join.R)
	}
	lk := join.L.Schema()[join.LKey]
	rk := join.R.Schema()[join.RKey]
	if lk.Name != "o_orderkey" || rk.Name != "l_orderkey" {
		t.Errorf("join keys = %s, %s", lk.QName(), rk.QName())
	}
}

func TestBindCommaJoinFromWhere(t *testing.T) {
	n := bindQuery(t, "select l_tax from lineitem, orders where l_orderkey = o_orderkey and o_totalprice > 50")
	if !strings.Contains(Tree(n), "join on") {
		t.Fatalf("comma join not recognized:\n%s", Tree(n))
	}
}

func TestBindGroupAgg(t *testing.T) {
	n := bindQuery(t, "select l_returnflag, sum(l_quantity) as qty, count(*) as n from lineitem group by l_returnflag")
	proj := n.(*Project)
	ga, ok := proj.Input.(*GroupAgg)
	if !ok {
		t.Fatalf("project input = %T", proj.Input)
	}
	if len(ga.Keys) != 1 || len(ga.Aggs) != 2 {
		t.Fatalf("keys=%d aggs=%d", len(ga.Keys), len(ga.Aggs))
	}
	if ga.Aggs[0].Func != storage.AggrSum || ga.Aggs[1].Func != storage.AggrCount || !ga.Aggs[1].CountStar {
		t.Errorf("aggs = %+v", ga.Aggs)
	}
	s := n.Schema()
	if s[0].Kind != storage.Str || s[1].Kind != storage.Flt || s[2].Kind != storage.Int {
		t.Errorf("schema kinds = %v", s)
	}
	if proj.Names[1] != "qty" {
		t.Errorf("alias = %q", proj.Names[1])
	}
}

func TestBindOrderByAndLimit(t *testing.T) {
	n := bindQuery(t, "select l_tax from lineitem order by l_tax desc limit 2")
	lim, ok := n.(*Limit)
	if !ok || lim.N != 2 {
		t.Fatalf("root = %T", n)
	}
	srt, ok := lim.Input.(*Sort)
	if !ok {
		t.Fatalf("limit input = %T", lim.Input)
	}
	if len(srt.Keys) != 1 || !srt.Keys[0].Desc || srt.Keys[0].Idx != 0 {
		t.Errorf("sort keys = %+v", srt.Keys)
	}
}

func TestBindDistinct(t *testing.T) {
	n := bindQuery(t, "select distinct l_returnflag from lineitem")
	found := false
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Distinct:
			found = true
			walk(t.Input)
		case *Project:
			walk(t.Input)
		case *Sort:
			walk(t.Input)
		}
	}
	walk(n)
	if !found {
		t.Errorf("no distinct node:\n%s", Tree(n))
	}
}

func TestBindExpressionTyping(t *testing.T) {
	n := bindQuery(t, "select l_quantity * 2 from lineitem")
	if n.Schema()[0].Kind != storage.Flt {
		t.Errorf("flt*int = %v", n.Schema()[0].Kind)
	}
	n = bindQuery(t, "select l_partkey + 1 from lineitem")
	if n.Schema()[0].Kind != storage.Int {
		t.Errorf("int+int = %v", n.Schema()[0].Kind)
	}
	n = bindQuery(t, "select l_partkey / 2 from lineitem")
	if n.Schema()[0].Kind != storage.Flt {
		t.Errorf("int/int = %v", n.Schema()[0].Kind)
	}
}

func TestBindBetweenDates(t *testing.T) {
	n := bindQuery(t, "select l_tax from lineitem where l_shipdate between date '1992-01-01' and date '1994-01-01'")
	if _, ok := n.(*Project); !ok {
		t.Fatalf("root = %T", n)
	}
	if !strings.Contains(Tree(n), "between") {
		t.Errorf("tree:\n%s", Tree(n))
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"select nope from lineitem",
		"select l_tax from nosuch",
		"select l_tax from lineitem where l_returnflag + 1 = 2",
		"select l_tax from lineitem where l_tax",
		"select sum(l_returnflag) from lineitem group by l_orderkey, sum(l_tax)",
		"select l_tax from lineitem group by l_returnflag",
		"select l_tax from lineitem order by l_quantity",
		"select l_tax from lineitem join orders on l_quantity > 1",
		"select o_orderkey from orders, lineitem",
		"select l_tax from lineitem l join lineitem l on l.l_orderkey = l.l_orderkey",
		"select l_orderkey from lineitem join orders on o_orderkey = o_totalprice",
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			continue // parse-level rejection also fine for some
		}
		if _, err := Bind(stmt, cat); err == nil {
			t.Errorf("Bind(%q) succeeded, want error", q)
		}
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sql.Parse("select l_orderkey from lineitem a join lineitem b on a.l_orderkey = b.l_orderkey")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bind(stmt, cat); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous bind err = %v", err)
	}
}

func TestBindCountStarOnly(t *testing.T) {
	n := bindQuery(t, "select count(*) from lineitem")
	proj := n.(*Project)
	ga := proj.Input.(*GroupAgg)
	if len(ga.Keys) != 0 || len(ga.Aggs) != 1 {
		t.Fatalf("keys=%d aggs=%d", len(ga.Keys), len(ga.Aggs))
	}
	// Scan still reads one column.
	var scan *Scan
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Project:
			walk(t.Input)
		case *GroupAgg:
			walk(t.Input)
		case *Scan:
			scan = t
		}
	}
	walk(n)
	if scan == nil || len(scan.Out) != 1 {
		t.Errorf("scan = %+v", scan)
	}
}

func TestTreeRendering(t *testing.T) {
	n := bindQuery(t, "select l_returnflag, sum(l_quantity) from lineitem where l_partkey = 1 group by l_returnflag order by l_returnflag limit 3")
	tree := Tree(n)
	for _, want := range []string{"limit 3", "sort", "project", "group by", "filter", "scan sys.lineitem"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestDriverRows: the adaptive fan-out must key off the rows that
// actually parallelize — the probe (left) side for joins, the sorted
// input for sorts — with the cost shape reported alongside.
func TestDriverRows(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		q     string
		rows  int
		shape string
	}{
		{"select l_tax from lineitem", 3, "scan"},
		{"select l_tax from lineitem where l_partkey = 1", 3, "scan"},
		{"select l_tax from lineitem order by l_tax", 3, "sort"},
		{"select l_tax from lineitem order by l_tax limit 2", 3, "sort"},
		// lineitem (3 rows) probes, orders (2 rows) builds.
		{"select l_tax, o_totalprice from lineitem, orders where l_orderkey = o_orderkey", 3, "join-probe"},
		// orders (2 rows) probes: the 3-row lineitem build side must not
		// drive the estimate (MaxScanRows would say 3).
		{"select o_totalprice, l_tax from orders, lineitem where o_orderkey = l_orderkey", 2, "join-probe"},
		{"select o_totalprice, l_tax from orders, lineitem where o_orderkey = l_orderkey order by o_totalprice", 2, "join-probe"},
		// The sort runs over the packed (tiny) group-by output, so it is
		// not the cost shape driving the fan-out — the scan below is.
		{"select l_returnflag, count(*) as n from lineitem group by l_returnflag order by l_returnflag", 3, "scan"},
		{"select distinct l_returnflag from lineitem order by l_returnflag", 3, "scan"},
	}
	for _, c := range cases {
		stmt, err := sql.Parse(c.q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.q, err)
		}
		tree, err := Bind(stmt, cat)
		if err != nil {
			t.Fatalf("Bind(%q): %v", c.q, err)
		}
		rows, shape := DriverRows(tree, cat)
		if rows != c.rows || shape != c.shape {
			t.Errorf("DriverRows(%q) = (%d, %q), want (%d, %q)", c.q, rows, shape, c.rows, c.shape)
		}
	}
}
