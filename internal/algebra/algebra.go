// Package algebra implements the relational-algebra layer of the
// reproduction. MonetDB parses SQL into a relational algebra tree before
// lowering it to MAL (paper §2); this package is that middle stage: it
// binds a sql.SelectStmt against the storage catalog, resolves and type-
// checks every expression, extracts equi-join keys, pushes single-table
// filters below joins, and produces a typed operator tree for
// internal/compiler to lower.
package algebra

import (
	"fmt"
	"strings"

	"stethoscope/internal/storage"
)

// Col describes one column of a relation's schema: its qualifier (table
// alias), name and storage kind.
type Col struct {
	Qual string
	Name string
	Kind storage.Kind
}

// QName returns the qualified "alias.column" display name.
func (c Col) QName() string {
	if c.Qual != "" {
		return c.Qual + "." + c.Name
	}
	return c.Name
}

// Schema is an ordered column list.
type Schema []Col

// Find resolves a possibly-qualified column reference to its ordinal.
// Unqualified names must be unambiguous.
func (s Schema) Find(qual, name string) (int, error) {
	found := -1
	for i, c := range s {
		if c.Name != name {
			continue
		}
		if qual != "" && c.Qual != qual {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("algebra: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		ref := name
		if qual != "" {
			ref = qual + "." + name
		}
		return -1, fmt.Errorf("algebra: unknown column %q", ref)
	}
	return found, nil
}

// Expr is a bound, typed expression over a relation's columns.
type Expr interface {
	Kind() storage.Kind
	String() string
}

// ColIdx references the input relation's column by ordinal.
type ColIdx struct {
	Idx int
	Col Col
}

func (c *ColIdx) Kind() storage.Kind { return c.Col.Kind }
func (c *ColIdx) String() string     { return c.Col.QName() }

// Const is a typed literal.
type Const struct {
	K storage.Kind
	I int64
	F float64
	S string
	B bool
}

func (c *Const) Kind() storage.Kind { return c.K }
func (c *Const) String() string {
	switch c.K {
	case storage.Flt:
		return fmt.Sprintf("%g", c.F)
	case storage.Str:
		return "'" + c.S + "'"
	case storage.Bool:
		return fmt.Sprintf("%v", c.B)
	default:
		return fmt.Sprintf("%d", c.I)
	}
}

// Val converts the constant to a storage comparison operand.
func (c *Const) Val() storage.Val {
	return storage.Val{Kind: c.K, I: c.I, F: c.F, S: c.S, B: c.B}
}

// Bin is a typed binary operation; Op is one of + - * / = != < <= > >=
// and or.
type Bin struct {
	Op   string
	L, R Expr
	K    storage.Kind
}

func (b *Bin) Kind() storage.Kind { return b.K }
func (b *Bin) String() string     { return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")" }

// Not negates a boolean expression.
type Not struct{ E Expr }

func (n *Not) Kind() storage.Kind { return storage.Bool }
func (n *Not) String() string     { return "not " + n.E.String() }

// Between is e between lo and hi, inclusive.
type Between struct{ E, Lo, Hi Expr }

func (b *Between) Kind() storage.Kind { return storage.Bool }
func (b *Between) String() string {
	return b.E.String() + " between " + b.Lo.String() + " and " + b.Hi.String()
}

// Like is a SQL LIKE match of a string expression against a constant
// pattern with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern string
}

func (l *Like) Kind() storage.Kind { return storage.Bool }
func (l *Like) String() string     { return l.E.String() + " like '" + l.Pattern + "'" }

// Node is a relational operator; Schema describes its output relation.
type Node interface {
	Schema() Schema
	Describe() string
}

// Scan reads the needed columns of one base table.
type Scan struct {
	SchemaName string
	Table      string
	Alias      string
	Out        Schema
}

func (s *Scan) Schema() Schema   { return s.Out }
func (s *Scan) Describe() string { return "scan " + s.SchemaName + "." + s.Table + " as " + s.Alias }

// Filter keeps rows where Pred (boolean) holds.
type Filter struct {
	Input Node
	Pred  Expr
}

func (f *Filter) Schema() Schema   { return f.Input.Schema() }
func (f *Filter) Describe() string { return "filter " + f.Pred.String() }

// Join is an equi-join on one key pair (ordinals into the left and right
// input schemas); output schema is L ++ R.
type Join struct {
	L, R       Node
	LKey, RKey int
	out        Schema
}

func (j *Join) Schema() Schema {
	if j.out == nil {
		j.out = append(append(Schema{}, j.L.Schema()...), j.R.Schema()...)
	}
	return j.out
}

func (j *Join) Describe() string {
	return fmt.Sprintf("join on %s = %s", j.L.Schema()[j.LKey].QName(), j.R.Schema()[j.RKey].QName())
}

// AggSpec is one aggregate output of a GroupAgg.
type AggSpec struct {
	Func      storage.AggrKind
	Arg       Expr // nil for count(*)
	CountStar bool
	Name      string
	K         storage.Kind
}

// GroupAgg groups by Keys and computes Aggs per group. Output schema is
// keys (named KeyNames) followed by aggregates.
type GroupAgg struct {
	Input    Node
	Keys     []Expr
	KeyNames []string
	Aggs     []AggSpec
	out      Schema
}

func (g *GroupAgg) Schema() Schema {
	if g.out == nil {
		for i, k := range g.Keys {
			g.out = append(g.out, Col{Name: g.KeyNames[i], Kind: k.Kind()})
		}
		for _, a := range g.Aggs {
			g.out = append(g.out, Col{Name: a.Name, Kind: a.K})
		}
	}
	return g.out
}

func (g *GroupAgg) Describe() string {
	var parts []string
	for _, k := range g.Keys {
		parts = append(parts, k.String())
	}
	return "group by " + strings.Join(parts, ", ")
}

// Project computes the output expressions.
type Project struct {
	Input Node
	Exprs []Expr
	Names []string
	out   Schema
}

func (p *Project) Schema() Schema {
	if p.out == nil {
		for i, e := range p.Exprs {
			p.out = append(p.out, Col{Name: p.Names[i], Kind: e.Kind()})
		}
	}
	return p.out
}

func (p *Project) Describe() string { return "project " + strings.Join(p.Names, ", ") }

// Distinct removes duplicate output rows.
type Distinct struct{ Input Node }

func (d *Distinct) Schema() Schema   { return d.Input.Schema() }
func (d *Distinct) Describe() string { return "distinct" }

// SortKey orders by the given output ordinal.
type SortKey struct {
	Idx  int
	Desc bool
}

// Sort orders rows by the given keys (ordinals into the input schema),
// first key most significant.
type Sort struct {
	Input Node
	Keys  []SortKey
}

func (s *Sort) Schema() Schema { return s.Input.Schema() }
func (s *Sort) Describe() string {
	var parts []string
	for _, k := range s.Keys {
		d := "asc"
		if k.Desc {
			d = "desc"
		}
		parts = append(parts, fmt.Sprintf("%s %s", s.Input.Schema()[k.Idx].QName(), d))
	}
	return "sort " + strings.Join(parts, ", ")
}

// Limit keeps the first N rows.
type Limit struct {
	Input Node
	N     int64
}

func (l *Limit) Schema() Schema   { return l.Input.Schema() }
func (l *Limit) Describe() string { return fmt.Sprintf("limit %d", l.N) }

// Scans returns every base-table scan of the tree, in tree order. The
// adaptive partition selection sizes its mitosis fan-out from the row
// counts of these tables.
func Scans(n Node) []*Scan {
	var out []*Scan
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Scan:
			out = append(out, t)
		case *Filter:
			walk(t.Input)
		case *Join:
			walk(t.L)
			walk(t.R)
		case *GroupAgg:
			walk(t.Input)
		case *Project:
			walk(t.Input)
		case *Distinct:
			walk(t.Input)
		case *Sort:
			walk(t.Input)
		case *Limit:
			walk(t.Input)
		}
	}
	walk(n)
	return out
}

// MaxScanRows returns the largest row count among the tree's scanned
// tables under cat (0 when nothing resolves).
func MaxScanRows(n Node, cat *storage.Catalog) int {
	max := 0
	for _, s := range Scans(n) {
		if t, ok := cat.Table(s.SchemaName, s.Table); ok && t.Rows() > max {
			max = t.Rows()
		}
	}
	return max
}

// DriverRows estimates the row count that actually parallelizes under
// the compiler's mitosis lowering, plus the cost shape it came from —
// the driving inputs of the adaptive fan-out selection. Joins only
// partition their probe (left) side — the build side is packed and
// hashed once — so a join's driver is its probe subtree, not the
// largest scanned table: a 6M-row build table above a 60k-row probe
// must size the fan-out from 60k. Shapes: "join-probe" when any join
// drives the estimate, "sort" when a sort sits above a plain scan
// pipeline, "scan" otherwise.
func DriverRows(n Node, cat *storage.Catalog) (rows int, shape string) {
	switch t := n.(type) {
	case *Scan:
		if tb, ok := cat.Table(t.SchemaName, t.Table); ok {
			return tb.Rows(), "scan"
		}
		return 0, "scan"
	case *Join:
		rows, _ = DriverRows(t.L, cat)
		return rows, "join-probe"
	case *Sort:
		rows, shape = DriverRows(t.Input, cat)
		if shape == "scan" && consumesSlices(t.Input) {
			shape = "sort"
		}
		return rows, shape
	case *Filter:
		return DriverRows(t.Input, cat)
	case *GroupAgg:
		return DriverRows(t.Input, cat)
	case *Project:
		return DriverRows(t.Input, cat)
	case *Distinct:
		return DriverRows(t.Input, cat)
	case *Limit:
		return DriverRows(t.Input, cat)
	}
	return 0, "scan"
}

// consumesSlices reports whether a sort above n would receive the
// mitosis (partitioned) form: row-local operators and join outputs stay
// sliced, while aggregation and distinct recombine to a packed — and
// usually tiny — relation whose sort no longer drives the fan-out.
func consumesSlices(n Node) bool {
	switch t := n.(type) {
	case *Scan:
		return true
	case *Filter:
		return consumesSlices(t.Input)
	case *Project:
		return consumesSlices(t.Input)
	case *Join:
		return true
	}
	return false
}

// Tree renders the operator tree as an indented listing, for debugging
// and the server's EXPLAIN-style output.
func Tree(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		switch t := n.(type) {
		case *Filter:
			walk(t.Input, depth+1)
		case *Join:
			walk(t.L, depth+1)
			walk(t.R, depth+1)
		case *GroupAgg:
			walk(t.Input, depth+1)
		case *Project:
			walk(t.Input, depth+1)
		case *Distinct:
			walk(t.Input, depth+1)
		case *Sort:
			walk(t.Input, depth+1)
		case *Limit:
			walk(t.Input, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
