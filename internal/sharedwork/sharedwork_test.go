package sharedwork

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stethoscope/internal/engine"
	"stethoscope/internal/metrics"
)

func key(sql string) Key { return Key{SQL: sql, Partitions: 1, Passes: "cse"} }

func TestFlightDedupesConcurrentCallers(t *testing.T) {
	f := NewFlight()
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	want := &Outcome{Res: &engine.Result{Names: []string{"a"}}, Elapsed: 7 * time.Millisecond}

	lead := func() (*Outcome, error) {
		runs.Add(1)
		close(started)
		<-release
		return want, nil
	}

	var wg sync.WaitGroup
	leaderOut := make(chan *Outcome, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, err, attached, waiters := f.Do(context.Background(), key("q"), lead)
		if err != nil || attached {
			t.Errorf("leader: err=%v attached=%v", err, attached)
		}
		if waiters != 3 {
			t.Errorf("leader saw %d waiters, want 3", waiters)
		}
		leaderOut <- out
	}()
	<-started

	follower := make(chan *Outcome, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err, attached, _ := f.Do(context.Background(), key("q"), func() (*Outcome, error) {
				t.Error("follower ran the function")
				return nil, nil
			})
			if err != nil || !attached {
				t.Errorf("follower: err=%v attached=%v", err, attached)
			}
			follower <- out
		}()
	}
	// Followers must be registered before the leader finishes.
	deadline := time.After(5 * time.Second)
	for {
		f.mu.Lock()
		w := 0
		if c, ok := f.calls[key("q")]; ok {
			w = c.waiters
		}
		f.mu.Unlock()
		if w == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("followers never attached")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("function ran %d times, want 1", got)
	}
	lo := <-leaderOut
	for i := 0; i < 3; i++ {
		if fo := <-follower; fo != lo {
			t.Fatalf("follower outcome %p differs from leader %p", fo, lo)
		}
	}
	if f.Led() != 1 || f.Attached() != 3 {
		t.Fatalf("counters led=%d attached=%d, want 1/3", f.Led(), f.Attached())
	}
	if f.InFlight() != 0 {
		t.Fatalf("registry not drained: %d in flight", f.InFlight())
	}
}

func TestFlightSequentialCallersAllLead(t *testing.T) {
	f := NewFlight()
	for i := 0; i < 3; i++ {
		_, err, attached, waiters := f.Do(context.Background(), key("q"), func() (*Outcome, error) {
			return &Outcome{}, nil
		})
		if err != nil || attached || waiters != 0 {
			t.Fatalf("call %d: err=%v attached=%v waiters=%d", i, err, attached, waiters)
		}
	}
	if f.Led() != 3 || f.Attached() != 0 {
		t.Fatalf("led=%d attached=%d, want 3/0 — the flight must not cache", f.Led(), f.Attached())
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	f := NewFlight()
	var runs atomic.Int64
	block := make(chan struct{})
	var wg sync.WaitGroup
	for _, k := range []Key{key("a"), key("b"), {SQL: "a", Partitions: 2}, {SQL: "a", Partitions: 1, MorselRows: 64, Morsel: true}} {
		wg.Add(1)
		go func(k Key) {
			defer wg.Done()
			f.Do(context.Background(), k, func() (*Outcome, error) {
				runs.Add(1)
				<-block
				return &Outcome{}, nil
			})
		}(k)
	}
	deadline := time.After(5 * time.Second)
	for runs.Load() != 4 {
		select {
		case <-deadline:
			t.Fatalf("only %d of 4 distinct keys running", runs.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(block)
	wg.Wait()
}

func TestFlightPropagatesLeaderError(t *testing.T) {
	f := NewFlight()
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	go f.Do(context.Background(), key("q"), func() (*Outcome, error) {
		close(started)
		<-release
		return nil, boom
	})
	<-started
	done := make(chan error, 1)
	go func() {
		_, err, attached, _ := f.Do(context.Background(), key("q"), func() (*Outcome, error) {
			t.Error("follower ran")
			return nil, nil
		})
		if !attached {
			t.Error("follower did not attach")
		}
		done <- err
	}()
	// Give the follower a moment to attach, then let the leader fail.
	for {
		f.mu.Lock()
		c := f.calls[key("q")]
		w := 0
		if c != nil {
			w = c.waiters
		}
		f.mu.Unlock()
		if w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("follower err = %v, want boom", err)
	}
}

func TestFlightFollowerCancellation(t *testing.T) {
	f := NewFlight()
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go f.Do(context.Background(), key("q"), func() (*Outcome, error) {
		close(started)
		<-release
		return &Outcome{}, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, attached, _ := f.Do(ctx, key("q"), func() (*Outcome, error) { return nil, nil })
	if !attached || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled follower: attached=%v err=%v", attached, err)
	}
}

func TestCloneEvents(t *testing.T) {
	o := &Outcome{}
	if o.CloneEvents() != nil {
		t.Fatal("empty outcome should clone to nil")
	}
}

func TestResultCacheHitMissEvict(t *testing.T) {
	c := NewResultCache(2, time.Minute)
	a, b, d := &Outcome{}, &Outcome{}, &Outcome{}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(key("a"), a)
	c.Put(key("b"), b)
	if got, ok := c.Get(key("a")); !ok || got != a {
		t.Fatal("miss on live entry a")
	}
	c.Put(key("d"), d) // evicts b (LRU: a was just touched)
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("evicted entry b still served")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 || st.Len != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewResultCache(4, 10*time.Second)
	c.SetClock(func() time.Time { return now })
	c.Put(key("q"), &Outcome{})
	if _, ok := c.Get(key("q")); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(9 * time.Second)
	if _, ok := c.Get(key("q")); !ok {
		t.Fatal("entry expired early")
	}
	// A refresh restarts the TTL.
	c.Put(key("q"), &Outcome{})
	now = now.Add(9 * time.Second)
	if _, ok := c.Get(key("q")); !ok {
		t.Fatal("refreshed entry expired early")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get(key("q")); ok {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Len != 0 {
		t.Fatalf("stats after expiry = %+v", st)
	}
}

func TestResultCachePurgeCountsInvalidations(t *testing.T) {
	c := NewResultCache(4, 0)
	c.Put(key("a"), &Outcome{})
	c.Put(key("b"), &Outcome{})
	c.Purge()
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("purged entry served")
	}
	if st := c.Stats(); st.Invalidations != 2 || st.Len != 0 {
		t.Fatalf("stats after purge = %+v", st)
	}
}

func TestResultCacheNilSafe(t *testing.T) {
	var c *ResultCache
	c.Put(key("a"), &Outcome{})
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("nil cache hit")
	}
	c.Purge()
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache reports non-zero")
	}
	var s *Shared
	s.Instrument(metrics.NewRegistry())
}

func TestInstrumentExposesMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	sh := &Shared{Flight: NewFlight(), Cache: NewResultCache(2, time.Minute)}
	sh.Instrument(reg)
	sh.Flight.Do(context.Background(), key("q"), func() (*Outcome, error) { return &Outcome{}, nil })
	sh.Cache.Put(key("q"), &Outcome{})
	sh.Cache.Get(key("q"))
	snap := reg.Snapshot()
	if snap.Value("stetho_sharedwork_led_total") != 1 {
		t.Fatalf("led counter not wired: %d", snap.Value("stetho_sharedwork_led_total"))
	}
	if snap.Value("stetho_resultcache_hits_total") != 1 {
		t.Fatalf("hit counter not wired: %d", snap.Value("stetho_resultcache_hits_total"))
	}
	if snap.Value("stetho_resultcache_entries") != 1 || snap.Value("stetho_resultcache_capacity") != 2 {
		t.Fatal("occupancy gauges not wired")
	}
}
